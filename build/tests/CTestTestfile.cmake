# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/generators_test[1]_include.cmake")
include("/root/repo/build/tests/graph_io_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_cost_test[1]_include.cmake")
include("/root/repo/build/tests/bisection_test[1]_include.cmake")
include("/root/repo/build/tests/partitioner_test[1]_include.cmake")
include("/root/repo/build/tests/machine_graph_test[1]_include.cmake")
include("/root/repo/build/tests/partitioning_cost_test[1]_include.cmake")
include("/root/repo/build/tests/partitioned_graph_test[1]_include.cmake")
include("/root/repo/build/tests/replication_test[1]_include.cmake")
include("/root/repo/build/tests/job_simulation_test[1]_include.cmake")
include("/root/repo/build/tests/propagation_test[1]_include.cmake")
include("/root/repo/build/tests/cascade_test[1]_include.cmake")
include("/root/repo/build/tests/mapreduce_test[1]_include.cmake")
include("/root/repo/build/tests/apps_equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/partition_store_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/udf_source_test[1]_include.cmake")
include("/root/repo/build/tests/special_graphs_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
