# Empty dependencies file for bisection_test.
# This may be replaced when dependencies are built.
