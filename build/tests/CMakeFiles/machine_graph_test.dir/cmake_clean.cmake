file(REMOVE_RECURSE
  "CMakeFiles/machine_graph_test.dir/machine_graph_test.cc.o"
  "CMakeFiles/machine_graph_test.dir/machine_graph_test.cc.o.d"
  "machine_graph_test"
  "machine_graph_test.pdb"
  "machine_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
