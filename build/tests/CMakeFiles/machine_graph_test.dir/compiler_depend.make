# Empty compiler generated dependencies file for machine_graph_test.
# This may be replaced when dependencies are built.
