# Empty dependencies file for special_graphs_test.
# This may be replaced when dependencies are built.
