file(REMOVE_RECURSE
  "CMakeFiles/special_graphs_test.dir/special_graphs_test.cc.o"
  "CMakeFiles/special_graphs_test.dir/special_graphs_test.cc.o.d"
  "special_graphs_test"
  "special_graphs_test.pdb"
  "special_graphs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/special_graphs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
