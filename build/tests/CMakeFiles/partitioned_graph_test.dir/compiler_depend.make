# Empty compiler generated dependencies file for partitioned_graph_test.
# This may be replaced when dependencies are built.
