file(REMOVE_RECURSE
  "CMakeFiles/partitioned_graph_test.dir/partitioned_graph_test.cc.o"
  "CMakeFiles/partitioned_graph_test.dir/partitioned_graph_test.cc.o.d"
  "partitioned_graph_test"
  "partitioned_graph_test.pdb"
  "partitioned_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioned_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
