# Empty dependencies file for metrics_cost_test.
# This may be replaced when dependencies are built.
