file(REMOVE_RECURSE
  "CMakeFiles/metrics_cost_test.dir/metrics_cost_test.cc.o"
  "CMakeFiles/metrics_cost_test.dir/metrics_cost_test.cc.o.d"
  "metrics_cost_test"
  "metrics_cost_test.pdb"
  "metrics_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
