file(REMOVE_RECURSE
  "CMakeFiles/partitioning_cost_test.dir/partitioning_cost_test.cc.o"
  "CMakeFiles/partitioning_cost_test.dir/partitioning_cost_test.cc.o.d"
  "partitioning_cost_test"
  "partitioning_cost_test.pdb"
  "partitioning_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioning_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
