# Empty compiler generated dependencies file for partitioning_cost_test.
# This may be replaced when dependencies are built.
