file(REMOVE_RECURSE
  "CMakeFiles/job_simulation_test.dir/job_simulation_test.cc.o"
  "CMakeFiles/job_simulation_test.dir/job_simulation_test.cc.o.d"
  "job_simulation_test"
  "job_simulation_test.pdb"
  "job_simulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_simulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
