file(REMOVE_RECURSE
  "CMakeFiles/udf_source_test.dir/udf_source_test.cc.o"
  "CMakeFiles/udf_source_test.dir/udf_source_test.cc.o.d"
  "udf_source_test"
  "udf_source_test.pdb"
  "udf_source_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udf_source_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
