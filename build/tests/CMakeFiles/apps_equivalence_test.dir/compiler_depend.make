# Empty compiler generated dependencies file for apps_equivalence_test.
# This may be replaced when dependencies are built.
