file(REMOVE_RECURSE
  "CMakeFiles/apps_equivalence_test.dir/apps_equivalence_test.cc.o"
  "CMakeFiles/apps_equivalence_test.dir/apps_equivalence_test.cc.o.d"
  "apps_equivalence_test"
  "apps_equivalence_test.pdb"
  "apps_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
