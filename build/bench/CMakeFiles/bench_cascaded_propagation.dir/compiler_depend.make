# Empty compiler generated dependencies file for bench_cascaded_propagation.
# This may be replaced when dependencies are built.
