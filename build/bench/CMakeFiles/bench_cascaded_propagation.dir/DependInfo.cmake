
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_cascaded_propagation.cc" "bench/CMakeFiles/bench_cascaded_propagation.dir/bench_cascaded_propagation.cc.o" "gcc" "bench/CMakeFiles/bench_cascaded_propagation.dir/bench_cascaded_propagation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/surfer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/surfer_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/propagation/CMakeFiles/surfer_propagation.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/surfer_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/surfer_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/surfer_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/surfer_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/surfer_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/surfer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
