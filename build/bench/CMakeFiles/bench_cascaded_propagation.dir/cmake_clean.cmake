file(REMOVE_RECURSE
  "CMakeFiles/bench_cascaded_propagation.dir/bench_cascaded_propagation.cc.o"
  "CMakeFiles/bench_cascaded_propagation.dir/bench_cascaded_propagation.cc.o.d"
  "bench_cascaded_propagation"
  "bench_cascaded_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cascaded_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
