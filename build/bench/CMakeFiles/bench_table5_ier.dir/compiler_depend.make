# Empty compiler generated dependencies file for bench_table5_ier.
# This may be replaced when dependencies are built.
