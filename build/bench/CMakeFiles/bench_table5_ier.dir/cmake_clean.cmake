file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_ier.dir/bench_table5_ier.cc.o"
  "CMakeFiles/bench_table5_ier.dir/bench_table5_ier.cc.o.d"
  "bench_table5_ier"
  "bench_table5_ier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_ier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
