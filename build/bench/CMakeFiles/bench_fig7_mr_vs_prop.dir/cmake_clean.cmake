file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_mr_vs_prop.dir/bench_fig7_mr_vs_prop.cc.o"
  "CMakeFiles/bench_fig7_mr_vs_prop.dir/bench_fig7_mr_vs_prop.cc.o.d"
  "bench_fig7_mr_vs_prop"
  "bench_fig7_mr_vs_prop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_mr_vs_prop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
