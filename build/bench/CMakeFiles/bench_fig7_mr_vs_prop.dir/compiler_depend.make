# Empty compiler generated dependencies file for bench_fig7_mr_vs_prop.
# This may be replaced when dependencies are built.
