# Empty compiler generated dependencies file for bench_fig9_delay_sweep.
# This may be replaced when dependencies are built.
