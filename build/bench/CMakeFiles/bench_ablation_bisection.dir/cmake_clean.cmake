file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bisection.dir/bench_ablation_bisection.cc.o"
  "CMakeFiles/bench_ablation_bisection.dir/bench_ablation_bisection.cc.o.d"
  "bench_ablation_bisection"
  "bench_ablation_bisection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bisection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
