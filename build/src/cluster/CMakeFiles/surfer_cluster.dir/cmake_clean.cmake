file(REMOVE_RECURSE
  "CMakeFiles/surfer_cluster.dir/cost_model.cc.o"
  "CMakeFiles/surfer_cluster.dir/cost_model.cc.o.d"
  "CMakeFiles/surfer_cluster.dir/metrics.cc.o"
  "CMakeFiles/surfer_cluster.dir/metrics.cc.o.d"
  "CMakeFiles/surfer_cluster.dir/topology.cc.o"
  "CMakeFiles/surfer_cluster.dir/topology.cc.o.d"
  "libsurfer_cluster.a"
  "libsurfer_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfer_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
