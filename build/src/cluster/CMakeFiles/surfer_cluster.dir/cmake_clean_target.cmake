file(REMOVE_RECURSE
  "libsurfer_cluster.a"
)
