# Empty compiler generated dependencies file for surfer_cluster.
# This may be replaced when dependencies are built.
