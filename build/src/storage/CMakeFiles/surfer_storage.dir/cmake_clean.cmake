file(REMOVE_RECURSE
  "CMakeFiles/surfer_storage.dir/partition_store.cc.o"
  "CMakeFiles/surfer_storage.dir/partition_store.cc.o.d"
  "CMakeFiles/surfer_storage.dir/partitioned_graph.cc.o"
  "CMakeFiles/surfer_storage.dir/partitioned_graph.cc.o.d"
  "CMakeFiles/surfer_storage.dir/replication.cc.o"
  "CMakeFiles/surfer_storage.dir/replication.cc.o.d"
  "libsurfer_storage.a"
  "libsurfer_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfer_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
