# Empty compiler generated dependencies file for surfer_storage.
# This may be replaced when dependencies are built.
