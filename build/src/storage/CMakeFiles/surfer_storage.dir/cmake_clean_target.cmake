file(REMOVE_RECURSE
  "libsurfer_storage.a"
)
