file(REMOVE_RECURSE
  "CMakeFiles/surfer_graph.dir/algorithms.cc.o"
  "CMakeFiles/surfer_graph.dir/algorithms.cc.o.d"
  "CMakeFiles/surfer_graph.dir/generators.cc.o"
  "CMakeFiles/surfer_graph.dir/generators.cc.o.d"
  "CMakeFiles/surfer_graph.dir/graph.cc.o"
  "CMakeFiles/surfer_graph.dir/graph.cc.o.d"
  "CMakeFiles/surfer_graph.dir/graph_builder.cc.o"
  "CMakeFiles/surfer_graph.dir/graph_builder.cc.o.d"
  "CMakeFiles/surfer_graph.dir/graph_io.cc.o"
  "CMakeFiles/surfer_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/surfer_graph.dir/graph_stats.cc.o"
  "CMakeFiles/surfer_graph.dir/graph_stats.cc.o.d"
  "libsurfer_graph.a"
  "libsurfer_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfer_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
