# Empty dependencies file for surfer_graph.
# This may be replaced when dependencies are built.
