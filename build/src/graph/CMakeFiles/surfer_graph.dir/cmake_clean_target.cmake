file(REMOVE_RECURSE
  "libsurfer_graph.a"
)
