file(REMOVE_RECURSE
  "libsurfer_common.a"
)
