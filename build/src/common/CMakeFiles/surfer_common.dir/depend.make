# Empty dependencies file for surfer_common.
# This may be replaced when dependencies are built.
