file(REMOVE_RECURSE
  "CMakeFiles/surfer_common.dir/histogram.cc.o"
  "CMakeFiles/surfer_common.dir/histogram.cc.o.d"
  "CMakeFiles/surfer_common.dir/logging.cc.o"
  "CMakeFiles/surfer_common.dir/logging.cc.o.d"
  "CMakeFiles/surfer_common.dir/status.cc.o"
  "CMakeFiles/surfer_common.dir/status.cc.o.d"
  "CMakeFiles/surfer_common.dir/thread_pool.cc.o"
  "CMakeFiles/surfer_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/surfer_common.dir/units.cc.o"
  "CMakeFiles/surfer_common.dir/units.cc.o.d"
  "libsurfer_common.a"
  "libsurfer_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfer_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
