file(REMOVE_RECURSE
  "libsurfer_engine.a"
)
