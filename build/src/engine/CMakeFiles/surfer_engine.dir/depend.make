# Empty dependencies file for surfer_engine.
# This may be replaced when dependencies are built.
