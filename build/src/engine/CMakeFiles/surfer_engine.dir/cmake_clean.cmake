file(REMOVE_RECURSE
  "CMakeFiles/surfer_engine.dir/job_simulation.cc.o"
  "CMakeFiles/surfer_engine.dir/job_simulation.cc.o.d"
  "libsurfer_engine.a"
  "libsurfer_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfer_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
