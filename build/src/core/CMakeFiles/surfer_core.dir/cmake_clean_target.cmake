file(REMOVE_RECURSE
  "libsurfer_core.a"
)
