# Empty compiler generated dependencies file for surfer_core.
# This may be replaced when dependencies are built.
