file(REMOVE_RECURSE
  "CMakeFiles/surfer_core.dir/pipeline.cc.o"
  "CMakeFiles/surfer_core.dir/pipeline.cc.o.d"
  "CMakeFiles/surfer_core.dir/surfer.cc.o"
  "CMakeFiles/surfer_core.dir/surfer.cc.o.d"
  "libsurfer_core.a"
  "libsurfer_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfer_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
