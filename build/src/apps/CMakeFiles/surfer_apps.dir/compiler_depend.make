# Empty compiler generated dependencies file for surfer_apps.
# This may be replaced when dependencies are built.
