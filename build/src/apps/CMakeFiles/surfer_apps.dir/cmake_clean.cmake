file(REMOVE_RECURSE
  "CMakeFiles/surfer_apps.dir/benchmark_suite.cc.o"
  "CMakeFiles/surfer_apps.dir/benchmark_suite.cc.o.d"
  "CMakeFiles/surfer_apps.dir/udf_source.cc.o"
  "CMakeFiles/surfer_apps.dir/udf_source.cc.o.d"
  "libsurfer_apps.a"
  "libsurfer_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfer_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
