file(REMOVE_RECURSE
  "libsurfer_apps.a"
)
