file(REMOVE_RECURSE
  "CMakeFiles/surfer_partition.dir/bisection.cc.o"
  "CMakeFiles/surfer_partition.dir/bisection.cc.o.d"
  "CMakeFiles/surfer_partition.dir/machine_graph.cc.o"
  "CMakeFiles/surfer_partition.dir/machine_graph.cc.o.d"
  "CMakeFiles/surfer_partition.dir/partition_sketch.cc.o"
  "CMakeFiles/surfer_partition.dir/partition_sketch.cc.o.d"
  "CMakeFiles/surfer_partition.dir/partitioning.cc.o"
  "CMakeFiles/surfer_partition.dir/partitioning.cc.o.d"
  "CMakeFiles/surfer_partition.dir/partitioning_cost.cc.o"
  "CMakeFiles/surfer_partition.dir/partitioning_cost.cc.o.d"
  "CMakeFiles/surfer_partition.dir/recursive_partitioner.cc.o"
  "CMakeFiles/surfer_partition.dir/recursive_partitioner.cc.o.d"
  "CMakeFiles/surfer_partition.dir/vertex_encoding.cc.o"
  "CMakeFiles/surfer_partition.dir/vertex_encoding.cc.o.d"
  "CMakeFiles/surfer_partition.dir/weighted_graph.cc.o"
  "CMakeFiles/surfer_partition.dir/weighted_graph.cc.o.d"
  "libsurfer_partition.a"
  "libsurfer_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfer_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
