
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/bisection.cc" "src/partition/CMakeFiles/surfer_partition.dir/bisection.cc.o" "gcc" "src/partition/CMakeFiles/surfer_partition.dir/bisection.cc.o.d"
  "/root/repo/src/partition/machine_graph.cc" "src/partition/CMakeFiles/surfer_partition.dir/machine_graph.cc.o" "gcc" "src/partition/CMakeFiles/surfer_partition.dir/machine_graph.cc.o.d"
  "/root/repo/src/partition/partition_sketch.cc" "src/partition/CMakeFiles/surfer_partition.dir/partition_sketch.cc.o" "gcc" "src/partition/CMakeFiles/surfer_partition.dir/partition_sketch.cc.o.d"
  "/root/repo/src/partition/partitioning.cc" "src/partition/CMakeFiles/surfer_partition.dir/partitioning.cc.o" "gcc" "src/partition/CMakeFiles/surfer_partition.dir/partitioning.cc.o.d"
  "/root/repo/src/partition/partitioning_cost.cc" "src/partition/CMakeFiles/surfer_partition.dir/partitioning_cost.cc.o" "gcc" "src/partition/CMakeFiles/surfer_partition.dir/partitioning_cost.cc.o.d"
  "/root/repo/src/partition/recursive_partitioner.cc" "src/partition/CMakeFiles/surfer_partition.dir/recursive_partitioner.cc.o" "gcc" "src/partition/CMakeFiles/surfer_partition.dir/recursive_partitioner.cc.o.d"
  "/root/repo/src/partition/vertex_encoding.cc" "src/partition/CMakeFiles/surfer_partition.dir/vertex_encoding.cc.o" "gcc" "src/partition/CMakeFiles/surfer_partition.dir/vertex_encoding.cc.o.d"
  "/root/repo/src/partition/weighted_graph.cc" "src/partition/CMakeFiles/surfer_partition.dir/weighted_graph.cc.o" "gcc" "src/partition/CMakeFiles/surfer_partition.dir/weighted_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/surfer_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/surfer_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/surfer_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
