file(REMOVE_RECURSE
  "libsurfer_partition.a"
)
