# Empty dependencies file for surfer_partition.
# This may be replaced when dependencies are built.
