file(REMOVE_RECURSE
  "libsurfer_propagation.a"
)
