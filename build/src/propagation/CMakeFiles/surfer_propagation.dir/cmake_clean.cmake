file(REMOVE_RECURSE
  "CMakeFiles/surfer_propagation.dir/cascade.cc.o"
  "CMakeFiles/surfer_propagation.dir/cascade.cc.o.d"
  "CMakeFiles/surfer_propagation.dir/config.cc.o"
  "CMakeFiles/surfer_propagation.dir/config.cc.o.d"
  "libsurfer_propagation.a"
  "libsurfer_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfer_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
