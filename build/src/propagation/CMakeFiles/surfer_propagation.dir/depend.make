# Empty dependencies file for surfer_propagation.
# This may be replaced when dependencies are built.
