# CMake generated Testfile for 
# Source directory: /root/repo/src/propagation
# Build directory: /root/repo/build/src/propagation
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
