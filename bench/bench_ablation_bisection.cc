// Ablation (design-choice bench): what each stage of the multilevel
// bisection pipeline buys. Compares, for one bisection of the benchmark
// graph:
//   - random split (no algorithm at all),
//   - GGGP only (initial partitioning, no FM refinement),
//   - GGGP + FM on the original graph (no coarsening),
//   - the full multilevel pipeline (coarsen + GGGP + FM), as used by Surfer.

#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/random.h"
#include "partition/bisection.h"
#include "partition/weighted_graph.h"

int main() {
  using namespace surfer;
  using namespace surfer::bench;
  using Clock = std::chrono::steady_clock;

  const Graph graph = MakeBenchGraph();
  const WeightedGraph wg = WeightedGraph::FromDataGraph(graph);
  std::printf("graph: %s\n", ComputeGraphStats(graph).ToString().c_str());

  PrintHeader("Ablation: multilevel bisection pipeline stages");
  std::printf("%-34s %14s %12s %12s\n", "variant", "cut weight", "imbalance",
              "time (ms)");

  auto report = [&](const char* name, auto&& fn) {
    const auto start = Clock::now();
    const BisectionResult result = fn();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    std::printf("%-34s %14lld %11.2f%% %12.1f\n", name,
                static_cast<long long>(result.cut_weight),
                100.0 * result.Imbalance(), ms);
    return result.cut_weight;
  };

  // Random split.
  const int64_t random_cut = report("random split", [&] {
    Rng rng(7);
    BisectionResult result;
    result.side.resize(wg.num_vertices());
    for (auto& s : result.side) {
      s = static_cast<uint8_t>(rng.Uniform(2));
    }
    result.cut_weight = ComputeCutWeight(wg, result.side);
    for (VertexId v = 0; v < wg.num_vertices(); ++v) {
      result.side_weight[result.side[v]] += wg.vertex_weights[v];
    }
    return result;
  });

  // GGGP only.
  BisectionOptions no_refine;
  no_refine.refine_passes = 0;
  no_refine.coarsen_target = wg.num_vertices();  // disable coarsening
  const int64_t gggp_cut = report("GGGP only (flat, no refinement)", [&] {
    return internal::InitialBisection(wg, no_refine);
  });

  // GGGP + FM, flat.
  BisectionOptions flat;
  flat.coarsen_target = wg.num_vertices();
  const int64_t flat_cut = report("GGGP + FM (flat, no coarsening)", [&] {
    return internal::InitialBisection(wg, flat);
  });

  // Full multilevel.
  BisectionOptions full;
  const int64_t multilevel_cut =
      report("multilevel (coarsen + GGGP + FM)", [&] {
        return Bisect(wg, full);
      });

  std::printf(
      "\ncut reduction vs random: GGGP %.1fx, +FM %.1fx, multilevel %.1fx\n",
      static_cast<double>(random_cut) / gggp_cut,
      static_cast<double>(random_cut) / flat_cut,
      static_cast<double>(random_cut) / multilevel_cut);
  return 0;
}
