// Reproduces Figure 7: performance comparison between MapReduce and
// propagation for all six applications on T1 — response time (a) and
// network traffic (b).
//
// Shape targets (paper): propagation 1.7-5.8x faster on every app except
// VDD (parity); 42.3-96.0% less network I/O.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/units.h"

int main() {
  using namespace surfer;
  using namespace surfer::bench;

  const Graph graph = MakeBenchGraph();
  const Topology topology = MakeScaledT1(32);
  auto engine = BuildEngine(graph, topology, 64);
  std::printf("graph: %s\n", ComputeGraphStats(graph).ToString().c_str());

  PrintHeader("Figure 7: MapReduce vs propagation on T1");
  std::printf("%-5s %14s %14s %9s %14s %14s %11s\n", "App", "MR resp (s)",
              "Prop resp (s)", "Speedup", "MR net (MiB)", "Prop net (MiB)",
              "Net saved");
  for (const BenchmarkApp& app : BenchmarkApps()) {
    const AppRunResult mr = RunMapReduce(*engine, app);
    const AppRunResult prop =
        RunPropagation(*engine, app, OptimizationLevel::kO4);
    const double speedup =
        mr.metrics.response_time_s / prop.metrics.response_time_s;
    const double net_saved =
        mr.metrics.network_bytes > 0
            ? 100.0 * (1.0 -
                       prop.metrics.network_bytes / mr.metrics.network_bytes)
            : 0.0;
    std::printf("%-5s %14.1f %14.1f %8.2fx %14.2f %14.2f %10.1f%%\n",
                app.name.c_str(), mr.metrics.response_time_s,
                prop.metrics.response_time_s, speedup,
                mr.metrics.network_bytes / kMiB,
                prop.metrics.network_bytes / kMiB, net_saved);
  }
  std::printf(
      "\nPaper: propagation is 1.7-5.8x faster with 42.3-96.0%% less "
      "network I/O; VDD (virtual-vertex emulation of MapReduce) is at "
      "parity.\n");
  return 0;
}
