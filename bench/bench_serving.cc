// Serving-plane benchmark: a long-lived GraphService (Engine::Serve) under
// closed-loop client load. Sweeps the client thread count and records QPS,
// p50/p99 latency, cache hit rate, and shed counts per point into the
// machine-readable perf baseline BENCH_serving.json, which CI trends through
// `surfer_trace check`. Every point is cross-checked for bit-identity: a
// sample of k-hop answers must equal a plain BFS truncated at k, and served
// ranks must equal a fresh batch NetworkRanking run — a fast cache that
// changes the answer is a bug, not a win.
//
// `--smoke` runs a reduced sweep (small graph, one thread point, fewer
// queries) so CI can exercise the binary and its artifacts in seconds
// without polluting baselines.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "apps/network_ranking.h"
#include "bench/bench_common.h"
#include "core/engine.h"
#include "graph/algorithms.h"
#include "serve/graph_service.h"

int main(int argc, char** argv) {
  using namespace surfer;
  using namespace surfer::bench;
  using Clock = std::chrono::steady_clock;

  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  BenchGraphOptions graph_options;
  std::vector<uint32_t> thread_points = {1, 2, 4, 8};
  int queries_per_thread = 2000;
  // Clients draw from a hot set much smaller than the graph so repeated
  // queries exercise the result cache the way a real query mix would.
  VertexId hot_set = 512;
  if (smoke) {
    graph_options.num_vertices = 1 << 13;
    graph_options.num_communities = 8;
    thread_points = {2};
    queries_per_thread = 200;
    hot_set = 128;
  }
  const Graph graph = MakeBenchGraph(graph_options);
  const Topology topology = MakeScaledT2(8, 2, 1);
  auto engine = BuildEngine(graph, topology);
  const BenchmarkSetup setup = engine->MakeSetup(OptimizationLevel::kO4);

  PrintHeader(std::string("Serving plane: GraphService QPS / latency") +
              (smoke ? " (smoke)" : ""));

  EngineOptions engine_options;
  engine_options.propagation.iterations = 3;
  engine_options.sim = MakeScaledSimOptions();
  auto session = Engine::Open(setup.graph, setup.placement, setup.topology,
                              engine_options);
  SURFER_CHECK(session.ok()) << session.status().ToString();

  // Correctness oracles, computed once: plain BFS neighborhoods from a few
  // hot vertices and the batch rank vector the serving plane must reproduce
  // bit for bit.
  const std::vector<VertexId> probe_origins = {0, VertexId(hot_set / 2),
                                               VertexId(hot_set - 1)};
  auto reference_khop = [&](VertexId origin, uint32_t k) {
    const std::vector<uint32_t> distances = BfsDistances(graph, origin);
    std::vector<VertexId> expected;
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      if (distances[v] <= k) {
        expected.push_back(v);
      }
    }
    return expected;
  };
  EngineOptions batch_options = engine_options;
  batch_options.propagation.iterations = 3;
  auto batch_session = Engine::Open(setup.graph, setup.placement,
                                    setup.topology, batch_options);
  SURFER_CHECK(batch_session.ok()) << batch_session.status().ToString();
  auto batch_ranks = batch_session->Run(NetworkRankingApp(graph.num_vertices()));
  SURFER_CHECK(batch_ranks.ok()) << batch_ranks.status().ToString();

  obs::JsonValue baseline = MakeBenchBaseline("bench_serving", smoke);
  baseline.Set("num_vertices", static_cast<uint64_t>(graph.num_vertices()));
  baseline.Set("num_machines", static_cast<uint64_t>(topology.num_machines()));
  baseline.Set("queries_per_thread",
               static_cast<uint64_t>(queries_per_thread));
  baseline.Set("hot_set", static_cast<uint64_t>(hot_set));

  std::printf("%-9s %12s %10s %10s %10s %9s %7s\n", "Clients", "QPS",
              "p50 (us)", "p99 (us)", "hit rate", "shed", "ident");
  obs::JsonValue points = obs::JsonValue::MakeArray();
  BenchObservability observability;
  for (const uint32_t threads : thread_points) {
    // A fresh service per point so latency/cache statistics describe this
    // point alone; the startup NetworkRanking pass re-runs each time, which
    // is the real open cost a deployment pays.
    serve::ServeOptions serve_options;
    serve_options.num_workers = std::max(2u, threads / 2);
    serve_options.metrics = &observability.metrics;
    serve_options.tracer = &observability.tracer;
    auto service = session->Serve(serve_options);
    SURFER_CHECK(service.ok()) << service.status().ToString();

    std::atomic<uint64_t> errors{0};
    const auto sweep_start = Clock::now();
    std::vector<std::thread> clients;
    clients.reserve(threads);
    for (uint32_t c = 0; c < threads; ++c) {
      clients.emplace_back([&, c] {
        for (int q = 0; q < queries_per_thread; ++q) {
          const VertexId v =
              static_cast<VertexId>((c * 9973u + q * 131u) % hot_set);
          if (q % 4 == 0) {
            auto response = (*service)->Rank(v).get();
            if (!response.ok()) {
              errors.fetch_add(1);
            }
          } else {
            auto response =
                (*service)->KHop(v, 1 + static_cast<uint32_t>(q % 2)).get();
            if (!response.ok() &&
                response.status().code() != StatusCode::kResourceExhausted) {
              errors.fetch_add(1);
            }
          }
        }
      });
    }
    for (std::thread& client : clients) {
      client.join();
    }
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - sweep_start).count();
    SURFER_CHECK(errors.load() == 0)
        << errors.load() << " queries failed with non-shed errors";

    // Bit-identity: sampled k-hop answers against a plain BFS, and served
    // ranks against the fresh batch run. Cached and bypassed answers must
    // also agree, byte for byte.
    bool bit_identical = true;
    for (const VertexId origin : probe_origins) {
      for (const uint32_t k : {1u, 2u}) {
        auto served = (*service)->KHop(origin, k).get();
        serve::QueryOptions bypass;
        bypass.bypass_cache = true;
        auto fresh = (*service)->KHop(origin, k, bypass).get();
        if (!served.ok() || !fresh.ok() ||
            served->vertices != reference_khop(origin, k) ||
            served->vertices != fresh->vertices) {
          bit_identical = false;
        }
      }
      auto rank = (*service)->Rank(origin).get();
      const double expected = batch_ranks->StateOfOriginal(origin);
      if (!rank.ok() ||
          std::memcmp(&rank->rank, &expected, sizeof(double)) != 0) {
        bit_identical = false;
      }
    }

    const serve::ServiceStats stats = (*service)->stats();
    (*service)->Stop();
    const uint64_t total_queries =
        static_cast<uint64_t>(threads) * queries_per_thread;
    const double qps = wall_s > 0.0 ? total_queries / wall_s : 0.0;
    const double p50_us = stats.latency_us.Percentile(50.0);
    const double p99_us = stats.latency_us.Percentile(99.0);
    const uint64_t cache_lookups = stats.cache_hits + stats.cache_misses;
    const double hit_rate =
        cache_lookups > 0
            ? static_cast<double>(stats.cache_hits) / cache_lookups
            : 0.0;
    const uint64_t shed = stats.shed_admission + stats.shed_deadline;
    std::printf("%-9u %12.0f %10.0f %10.0f %9.1f%% %9llu %7s\n", threads, qps,
                p50_us, p99_us, hit_rate * 100.0,
                static_cast<unsigned long long>(shed),
                bit_identical ? "yes" : "NO");

    obs::JsonValue point = obs::JsonValue::MakeObject();
    point.Set("threads", static_cast<uint64_t>(threads));
    point.Set("wall_s", wall_s);
    point.Set("qps", qps);
    point.Set("p50_us", p50_us);
    point.Set("p99_us", p99_us);
    point.Set("cache_hit_rate", hit_rate);
    point.Set("cache_hits", stats.cache_hits);
    point.Set("cache_misses", stats.cache_misses);
    point.Set("completed", stats.completed);
    point.Set("shed_admission", stats.shed_admission);
    point.Set("shed_deadline", stats.shed_deadline);
    point.Set("bit_identical", bit_identical);
    points.Append(std::move(point));
  }
  baseline.Set("points", std::move(points));

  std::printf("\n");
  WriteBenchBaseline("BENCH_serving.json", baseline);
  WriteBenchArtifacts("bench_serving", nullptr, &observability,
                      "GraphService closed-loop client sweep; spans are "
                      "serve_khop/serve_path/serve_rank");
  return 0;
}
