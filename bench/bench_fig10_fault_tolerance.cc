// Reproduces Figure 10: disk I/O rates over time for network ranking with a
// slave machine killed mid-run, next to the normal execution. The paper
// kills a slave at t = 235 s and reports completion with ~10% overhead over
// the normal run.
//
// Output: the completion times and a bucketed disk-rate time series for
// both executions (the series is the data behind Figure 10's three plots).

#include <cstdio>

#include "apps/network_ranking.h"
#include "bench/bench_common.h"
#include "common/units.h"
#include "propagation/runner.h"

int main() {
  using namespace surfer;
  using namespace surfer::bench;

  const Graph graph = MakeBenchGraph();
  const Topology topology = MakeScaledT1(32);
  auto engine = BuildEngine(graph, topology, 64);
  std::printf("graph: %s\n", ComputeGraphStats(graph).ToString().c_str());

  // The faulted execution is the observed one: its trace carries the
  // machine_failed / fault_detected instants and the re-executed task spans.
  BenchObservability observability;
  auto run = [&](double fail_at_s) {
    const bool observed = fail_at_s > 0.0;
    BenchmarkSetup setup = engine->MakeSetup(OptimizationLevel::kO4);
    setup.sim_options = MakeScaledSimOptions();
    setup.sim_options.timeline_bucket_s = 2.0;
    if (observed) {
      setup.sim_options.tracer = &observability.tracer;
      setup.sim_options.metrics = &observability.metrics;
    }
    JobSimulation sim(setup.topology, setup.sim_options);
    NetworkRankingApp app(graph.num_vertices());
    PropagationConfig config;
    config.iterations = 3;
    if (observed) {
      config.tracer = &observability.tracer;
      config.metrics = &observability.metrics;
    }
    PropagationRunner<NetworkRankingApp> runner(
        setup.graph, setup.placement, setup.topology, app, config);
    if (fail_at_s > 0.0) {
      sim.InjectFault({.machine = 5, .fail_at_s = fail_at_s});
    }
    SURFER_CHECK(runner.RunWith(&sim).ok());
    return sim.metrics();
  };

  const RunMetrics normal = run(0.0);
  // Kill a slave ~40% into the normal run (the paper kills one at t = 235 s
  // of a ~650 s execution).
  const double fail_at = 0.4 * normal.response_time_s;
  const RunMetrics recovered = run(fail_at);
  std::printf("slave machine 5 killed at t = %.1f s\n", fail_at);

  PrintHeader("Figure 10: fault tolerance of network ranking");
  std::printf("normal execution:    %s\n", normal.Summary().c_str());
  std::printf("with machine killed: %s\n", recovered.Summary().c_str());
  std::printf("recovery overhead:   %.1f%% (paper: ~10%%)\n",
              100.0 * (recovered.response_time_s / normal.response_time_s -
                       1.0));
  size_t reexecuted = 0;
  for (const StageMetrics& stage : recovered.stages) {
    reexecuted += stage.num_reexecuted_tasks;
  }
  std::printf("re-executed tasks:   %zu\n", reexecuted);

  auto print_series = [](const char* name, const TimeSeries& series) {
    std::printf("\n%s disk I/O rate (MiB/s per 2 s bucket):\n  ", name);
    const auto rates = series.Rates();
    for (size_t i = 0; i < rates.size(); ++i) {
      std::printf("%6.1f", rates[i] / kMiB);
      if ((i + 1) % 10 == 0) {
        std::printf("\n  ");
      }
    }
    std::printf("\n");
  };
  print_series("normal", normal.disk_rate);
  print_series("faulted", recovered.disk_rate);
  std::printf(
      "\nThe faulted run shows the dip at the failure, the re-execution "
      "burst, and a longer tail - Figure 10's shape.\n");
  WriteBenchArtifacts("bench_fig10_fault_tolerance", &recovered,
                      &observability,
                      "NR at O4, 3 iterations, machine 5 killed 40% into the "
                      "run; trace carries the fault/detection instants");
  return 0;
}
