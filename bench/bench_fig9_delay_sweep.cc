// Reproduces Figure 9: the impact of the simulated cross-pod delay factor on
// network ranking, run on T2(2,1) with the delay swept from 2x to 128x, with
// and without the bandwidth-aware layout.
//
// Shape target: the bandwidth-aware advantage grows with the delay factor
// ("the bandwidth aware algorithm is very helpful when the scale of the
// data center is huge").

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

int main() {
  using namespace surfer;
  using namespace surfer::bench;

  const Graph graph = MakeBenchGraph();
  std::printf("graph: %s\n", ComputeGraphStats(graph).ToString().c_str());

  const BenchmarkApp* nr = FindBenchmarkApp("NR");
  SURFER_CHECK(nr != nullptr);

  PrintHeader("Figure 9: NR on T2(2,1) with the cross-pod delay factor swept");
  std::printf("%-8s %18s %18s %12s\n", "Delay", "ParMetis-like (s)",
              "Bandwidth-aware (s)", "Improvement");
  for (double delay : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0}) {
    const Topology topology =
        MakeScaledT2(32, 2, 1, kDefaultHardwareScale, delay);
    auto engine = BuildEngine(graph, topology, 64);
    const AppRunResult baseline =
        RunPropagation(*engine, *nr, OptimizationLevel::kO3);
    const AppRunResult aware =
        RunPropagation(*engine, *nr, OptimizationLevel::kO4);
    std::printf("%6.0fx %19.1f %19.1f %11.1f%%\n", delay,
                baseline.metrics.response_time_s,
                aware.metrics.response_time_s,
                100.0 * (1.0 - aware.metrics.response_time_s /
                                   baseline.metrics.response_time_s));
  }
  std::printf(
      "\nPaper: the improvement becomes more significant as the simulated "
      "delay grows from 2x to 128x.\n");
  return 0;
}
