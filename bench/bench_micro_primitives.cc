// Google-benchmark microbenchmarks for the hot primitives underneath the
// experiment harness: graph construction, BFS, one multilevel bisection,
// one propagation iteration, and one MapReduce job. These measure *real*
// wall-clock throughput of this library (unlike the table/figure benches,
// whose times are simulated cluster seconds).

#include <benchmark/benchmark.h>

#include <atomic>

#include "apps/network_ranking.h"
#include "bench/bench_common.h"
#include "graph/algorithms.h"
#include "mapreduce/runner.h"
#include "obs/telemetry.h"
#include "partition/bisection.h"
#include "partition/weighted_graph.h"
#include "propagation/runner.h"

namespace {

using namespace surfer;
using namespace surfer::bench;

const Graph& SharedGraph() {
  static const Graph* graph = new Graph(MakeBenchGraph(
      {.num_vertices = 1 << 14, .avg_out_degree = 10.0, .num_communities = 8,
       .seed = 99}));
  return *graph;
}

const SurferEngine& SharedEngine() {
  static const SurferEngine* engine = [] {
    static const Topology* topology = new Topology(MakeScaledT1(16));
    return BuildEngine(SharedGraph(), *topology, 16).release();
  }();
  return *engine;
}

void BM_GraphBuild(benchmark::State& state) {
  RmatOptions options;
  options.num_vertices = static_cast<VertexId>(state.range(0));
  options.num_edges = 8u * options.num_vertices;
  for (auto _ : state) {
    auto graph = GenerateRmat(options);
    benchmark::DoNotOptimize(graph);
  }
  state.SetItemsProcessed(state.iterations() * options.num_edges);
}
BENCHMARK(BM_GraphBuild)->Arg(1 << 10)->Arg(1 << 12)->Arg(1 << 14);

void BM_Bfs(benchmark::State& state) {
  const Graph& graph = SharedGraph();
  VertexId source = 0;
  for (auto _ : state) {
    auto dist = BfsDistances(graph, source);
    benchmark::DoNotOptimize(dist);
    source = (source + 1) % graph.num_vertices();
  }
  state.SetItemsProcessed(state.iterations() * graph.num_edges());
}
BENCHMARK(BM_Bfs);

void BM_ReferencePageRankIteration(benchmark::State& state) {
  const Graph& graph = SharedGraph();
  for (auto _ : state) {
    auto ranks = ReferencePageRank(graph, 1);
    benchmark::DoNotOptimize(ranks);
  }
  state.SetItemsProcessed(state.iterations() * graph.num_edges());
}
BENCHMARK(BM_ReferencePageRankIteration);

void BM_MultilevelBisection(benchmark::State& state) {
  const WeightedGraph wg = WeightedGraph::FromDataGraph(SharedGraph());
  BisectionOptions options;
  for (auto _ : state) {
    options.seed += 1;  // vary the seed so runs are independent
    auto result = Bisect(wg, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * wg.num_half_edges());
}
BENCHMARK(BM_MultilevelBisection);

void BM_PropagationIteration(benchmark::State& state) {
  const SurferEngine& engine = SharedEngine();
  BenchmarkSetup setup = engine.MakeSetup(OptimizationLevel::kO4);
  setup.sim_options = MakeScaledSimOptions();
  NetworkRankingApp app(SharedGraph().num_vertices());
  PropagationConfig config;
  config.iterations = 1;
  for (auto _ : state) {
    PropagationRunner<NetworkRankingApp> runner(
        setup.graph, setup.placement, setup.topology, app, config);
    auto metrics = runner.Run(setup.sim_options);
    benchmark::DoNotOptimize(metrics);
  }
  state.SetItemsProcessed(state.iterations() * SharedGraph().num_edges());
}
BENCHMARK(BM_PropagationIteration);

void BM_TelemetrySampleTick(benchmark::State& state) {
  // One sampling tick of the flight recorder over a gauge population like
  // the runtime's (range = series count; the 8-machine executor registers
  // ~20). The acceptance bar: at the default 1ms period, a tick must cost
  // well under 20us (2% of one core). Atomics stand in for the runtime's
  // relaxed mirrors so the providers price realistically.
  const size_t num_series = static_cast<size_t>(state.range(0));
  std::vector<std::atomic<uint64_t>> gauges(num_series);
  obs::TelemetryOptions options;
  options.enabled = true;
  obs::TelemetryRecorder recorder(options);
  for (size_t i = 0; i < num_series; ++i) {
    gauges[i].store(i, std::memory_order_relaxed);
    recorder.RegisterGauge("g" + std::to_string(i), "items",
                           [&gauges, i] {
                             return static_cast<double>(
                                 gauges[i].load(std::memory_order_relaxed));
                           });
  }
  for (auto _ : state) {
    recorder.SampleNow();
  }
  state.SetItemsProcessed(state.iterations() * num_series);
}
BENCHMARK(BM_TelemetrySampleTick)->Arg(8)->Arg(20)->Arg(64);

void BM_MapReduceJob(benchmark::State& state) {
  const SurferEngine& engine = SharedEngine();
  BenchmarkSetup setup = engine.MakeSetup(OptimizationLevel::kO4);
  setup.sim_options = MakeScaledSimOptions();
  const VertexId n = SharedGraph().num_vertices();
  std::vector<double> ranks(n, 1.0 / n);
  for (auto _ : state) {
    NetworkRankingMrApp app(&ranks, n);
    MapReduceRunner<NetworkRankingMrApp> runner(
        setup.graph, setup.placement, setup.topology, app);
    auto metrics = runner.Run(setup.sim_options);
    benchmark::DoNotOptimize(metrics);
  }
  state.SetItemsProcessed(state.iterations() * SharedGraph().num_edges());
}
BENCHMARK(BM_MapReduceJob);

}  // namespace

BENCHMARK_MAIN();
