// Reproduces Table 4: number of source code lines in user-defined functions
// per application and engine. The propagation/MapReduce columns count this
// repository's UDFs; the paper's counts (Hadoop, home-grown MapReduce,
// propagation) are printed alongside for comparison.

#include <cstdio>

#include "apps/udf_source.h"
#include "bench/bench_common.h"

int main() {
  using namespace surfer;
  using namespace surfer::bench;

  PrintHeader("Table 4: source code lines in user-defined functions");
  std::printf("%-26s", "Engine");
  for (const auto& entry : UdfSources()) {
    std::printf("%7s", entry.app.c_str());
  }
  std::printf("\n");

  std::printf("%-26s", "Hadoop (paper)");
  for (const auto& entry : UdfSources()) {
    std::printf("%7d", entry.paper_hadoop_loc);
  }
  std::printf("\n%-26s", "Home-grown MR (paper)");
  for (const auto& entry : UdfSources()) {
    std::printf("%7d", entry.paper_homegrown_mr_loc);
  }
  std::printf("\n%-26s", "Propagation (paper)");
  for (const auto& entry : UdfSources()) {
    std::printf("%7d", entry.paper_propagation_loc);
  }
  std::printf("\n%-26s", "MapReduce (this repo)");
  for (const auto& entry : UdfSources()) {
    std::printf("%7d", CountUdfLines(entry.mapreduce_source));
  }
  std::printf("\n%-26s", "Propagation (this repo)");
  for (const auto& entry : UdfSources()) {
    std::printf("%7d", CountUdfLines(entry.propagation_source));
  }
  std::printf(
      "\n\nPaper's point: propagation UDFs are several times smaller than "
      "their MapReduce counterparts\n(the gap is smallest for VDD, the one "
      "vertex-oriented task).\n");
  return 0;
}
