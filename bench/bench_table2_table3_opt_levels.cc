// Reproduces Tables 2 and 3: response time, total machine time (Table 2) and
// network + disk I/O (Table 3) for every application at optimization levels
// O1-O4 on the uniform cluster T1.
//
//   O1: ParMetis-like layout, no local optimizations
//   O2: bandwidth-aware layout, no local optimizations
//   O3: ParMetis-like layout, local propagation + combination
//   O4: bandwidth-aware layout, local propagation + combination
//
// Shape targets (paper, Section 6.3): O1 -> O4 combined improvement 36-88%,
// largest for NR and TFL; VDD unaffected by layout; local optimizations cut
// network I/O 30-95% and disk I/O dramatically for message-heavy apps.

#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_common.h"
#include "common/units.h"

int main() {
  using namespace surfer;
  using namespace surfer::bench;

  const Graph graph = MakeBenchGraph();
  const Topology topology = MakeScaledT1(32);
  auto engine = BuildEngine(graph, topology, 64);
  std::printf("graph: %s\n", ComputeGraphStats(graph).ToString().c_str());
  std::printf("partitioning: %s  inner-vertex ratio: %.3f\n",
              engine->quality().ToString().c_str(),
              engine->partitioned_graph().InnerVertexRatio());

  const OptimizationLevel levels[] = {
      OptimizationLevel::kO1, OptimizationLevel::kO2, OptimizationLevel::kO3,
      OptimizationLevel::kO4};

  std::map<std::string, std::map<OptimizationLevel, AppRunResult>> results;
  for (const BenchmarkApp& app : BenchmarkApps()) {
    for (OptimizationLevel level : levels) {
      results[app.name][level] = RunPropagation(*engine, app, level);
    }
  }

  PrintHeader("Table 2: response time and total machine time on T1 (seconds)");
  std::printf("%-4s", "");
  for (const BenchmarkApp& app : BenchmarkApps()) {
    std::printf("  %9s-Res %9s-Tot", app.name.c_str(), app.name.c_str());
  }
  std::printf("\n");
  for (OptimizationLevel level : levels) {
    std::printf("%-4s", OptimizationLevelName(level).c_str());
    for (const BenchmarkApp& app : BenchmarkApps()) {
      const RunMetrics& m = results[app.name][level].metrics;
      std::printf("  %13.1f %13.1f", m.response_time_s,
                  m.total_machine_time_s);
    }
    std::printf("\n");
  }

  PrintHeader("Table 3: network and disk I/O on T1 (MiB)");
  std::printf("%-4s", "");
  for (const BenchmarkApp& app : BenchmarkApps()) {
    std::printf("  %9s-Net %9s-Dsk", app.name.c_str(), app.name.c_str());
  }
  std::printf("\n");
  for (OptimizationLevel level : levels) {
    std::printf("%-4s", OptimizationLevelName(level).c_str());
    for (const BenchmarkApp& app : BenchmarkApps()) {
      const RunMetrics& m = results[app.name][level].metrics;
      std::printf("  %13.2f %13.2f", m.network_bytes / kMiB,
                  m.disk_bytes / kMiB);
    }
    std::printf("\n");
  }

  PrintHeader("Derived improvements (response time, O1 -> O4)");
  for (const BenchmarkApp& app : BenchmarkApps()) {
    const double o1 = results[app.name][OptimizationLevel::kO1]
                          .metrics.response_time_s;
    const double o4 = results[app.name][OptimizationLevel::kO4]
                          .metrics.response_time_s;
    const double o1_net =
        results[app.name][OptimizationLevel::kO1].metrics.network_bytes;
    const double o4_net =
        results[app.name][OptimizationLevel::kO4].metrics.network_bytes;
    std::printf("  %-4s response -%4.0f%%   network -%4.0f%%\n",
                app.name.c_str(), 100.0 * (1.0 - o4 / o1),
                o1_net > 0 ? 100.0 * (1.0 - o4_net / o1_net) : 0.0);
  }
  std::printf(
      "\nPaper: combined O1->O4 improvement 36-88%%, highest for NR and "
      "TFL; VDD flat.\n");
  return 0;
}
