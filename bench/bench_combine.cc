// Microbenchmark of the sort-free combine regroup (runtime/combine_plan.h)
// against the legacy `std::stable_sort` grouping it replaced in the runtime
// hot path. The workload is the shape the combine stage actually sees:
// duplicate-heavy (target, Message) streams over a partition-local vertex
// range, where the target range is far smaller than the message count so
// most vertices carry long runs.
//
// Every point is verified bit-identical: the counting scatter must produce
// exactly the stable_sort permutation, and the measured speedup is gated via
// `surfer_trace check` against the committed BENCH_combine.json — the
// acceptance bar is scatter >= 2x over stable_sort at >= 64k messages
// (enforced as a hard `scatter_speedup` gate in bench_gate, plus a
// tolerance check on `scatter_msgs_per_sec`).
//
// `--smoke` trims to the single 64k point and fewer repetitions so CI can
// exercise the binary, its artifact, and the gate in well under a second.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <random>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "runtime/combine_plan.h"

namespace {

using surfer::VertexId;
using surfer::runtime::CombineScratch;
using Clock = std::chrono::steady_clock;

// Mirrors the footprint of a real combine record: an 8-byte rank payload
// plus a serial that makes permutation differences visible even between
// messages with equal targets (the stability requirement under test).
struct Message {
  double rank = 0.0;
  uint64_t serial = 0;
  bool operator==(const Message& other) const {
    return rank == other.rank && serial == other.serial;
  }
};

std::vector<std::pair<VertexId, Message>> MakeStream(uint64_t seed,
                                                     VertexId range,
                                                     size_t count) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<VertexId> target(0, range - 1);
  std::vector<std::pair<VertexId, Message>> records;
  records.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    records.emplace_back(
        target(rng), Message{1.0 / static_cast<double>(i + 1), i});
  }
  return records;
}

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace surfer;
  using namespace surfer::bench;

  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  // Duplicate-heavy by construction: 16 messages per target vertex on
  // average, the regime the combine stage sees on community-local graphs.
  const uint64_t targets_per_message_shift = 4;
  int repetitions = 7;
  std::vector<size_t> message_points = {size_t{1} << 16, size_t{1} << 18,
                                        size_t{1} << 20};
  if (smoke) {
    repetitions = 3;
    // The acceptance bar is defined at >= 64k messages, so even the smoke
    // sweep keeps that point rather than shrinking below it.
    message_points = {size_t{1} << 16};
  }

  PrintHeader(std::string("Combine regroup: counting scatter vs "
                          "stable_sort grouping") +
              (smoke ? " (smoke)" : ""));
  std::printf("%-12s %9s %12s %12s %9s %16s\n", "Messages", "Targets",
              "Sort (s)", "Scatter (s)", "Speedup", "Scatter msgs/s");

  obs::JsonValue baseline = MakeBenchBaseline("bench_combine", smoke);
  baseline.Set("payload_bytes", static_cast<uint64_t>(sizeof(Message)));
  baseline.Set("messages_per_target",
               static_cast<uint64_t>(1) << targets_per_message_shift);
  baseline.Set("repetitions", static_cast<uint64_t>(repetitions));
  baseline.Set("seed", static_cast<uint64_t>(2010));

  obs::JsonValue points = obs::JsonValue::MakeArray();
  bool all_pass = true;
  double checksum = 0.0;  // keeps the grouped payloads observable
  for (const size_t messages : message_points) {
    const VertexId range =
        static_cast<VertexId>(messages >> targets_per_message_shift);
    const auto records = MakeStream(2010 + messages, range, messages);

    // Legacy grouping: the per-partition stable_sort of (target, Message)
    // pairs the executor used to run before building combine runs. Each
    // repetition sorts a fresh unsorted copy; the copy is made outside the
    // timed region. Best-of-K on both sides keeps scheduler noise out of
    // the ratio.
    double sort_s = 1e100;
    std::vector<std::pair<VertexId, Message>> sorted;
    for (int rep = 0; rep < repetitions; ++rep) {
      auto working = records;
      const auto start = Clock::now();
      std::stable_sort(
          working.begin(), working.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      sort_s = std::min(sort_s, SecondsSince(start));
      sorted = std::move(working);
    }

    // Counting scatter: BeginRange/Count/FinishCounts/PlaceIndex, the exact
    // protocol RunCombineTask drives, with scratch and output buffers
    // reused across repetitions the way the pooled runtime scratch is.
    double scatter_s = 1e100;
    CombineScratch scratch;
    std::vector<Message> grouped;
    for (int rep = 0; rep < repetitions; ++rep) {
      const auto start = Clock::now();
      scratch.BeginRange(0, range);
      for (const auto& [target, message] : records) {
        scratch.Count(target);
      }
      scratch.FinishCounts();
      grouped.clear();
      grouped.resize(scratch.total());
      for (const auto& [target, message] : records) {
        grouped[scratch.PlaceIndex(target)] = message;
      }
      scatter_s = std::min(scatter_s, SecondsSince(start));
      checksum += grouped.front().rank;
      scratch.Reset();
    }

    // Bit-identity: the scatter must reproduce the stable_sort permutation
    // exactly — same payloads in the same order.
    bool bit_identical = grouped.size() == sorted.size();
    for (size_t i = 0; bit_identical && i < grouped.size(); ++i) {
      bit_identical = grouped[i] == sorted[i].second;
    }
    all_pass = all_pass && bit_identical;

    const double speedup = scatter_s > 0.0 ? sort_s / scatter_s : 0.0;
    const double msgs_per_sec =
        scatter_s > 0.0 ? static_cast<double>(messages) / scatter_s : 0.0;
    std::printf("%-12zu %9llu %12.6f %12.6f %8.2fx %16.3g%s\n", messages,
                static_cast<unsigned long long>(range), sort_s, scatter_s,
                speedup, msgs_per_sec,
                bit_identical ? "" : "  BIT-IDENTITY FAILED");

    obs::JsonValue point = obs::JsonValue::MakeObject();
    point.Set("messages", static_cast<uint64_t>(messages));
    point.Set("targets", static_cast<uint64_t>(range));
    point.Set("sort_s", sort_s);
    point.Set("scatter_s", scatter_s);
    point.Set("scatter_speedup", speedup);
    point.Set("scatter_msgs_per_sec", msgs_per_sec);
    point.Set("bit_identical", bit_identical);
    points.Append(std::move(point));
  }
  baseline.Set("points", std::move(points));
  baseline.Set("checksum", checksum);

  std::printf("\n");
  WriteBenchBaseline("BENCH_combine.json", baseline);
  return all_pass ? 0 : 1;
}
