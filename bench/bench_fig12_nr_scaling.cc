// Reproduces Figure 12: MapReduce vs propagation for network ranking as the
// cluster grows from 8 to 32 machines (fixed graph).
//
// Shape target: propagation stays several times faster at every cluster
// size (the paper reports 4.6-7.8x).

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace surfer;
  using namespace surfer::bench;

  const Graph graph = MakeBenchGraph();
  std::printf("graph: %s\n", ComputeGraphStats(graph).ToString().c_str());

  const BenchmarkApp* nr = FindBenchmarkApp("NR");
  SURFER_CHECK(nr != nullptr);

  PrintHeader("Figure 12: NR, MapReduce vs propagation across cluster sizes");
  std::printf("%-10s %14s %16s %9s\n", "Machines", "MR resp (s)",
              "Prop resp (s)", "Speedup");
  for (uint32_t machines : {8u, 16u, 24u, 32u}) {
    const Topology topology = MakeScaledT1(machines);
    auto engine = BuildEngine(graph, topology, 64);
    const AppRunResult mr = RunMapReduce(*engine, *nr);
    const AppRunResult prop =
        RunPropagation(*engine, *nr, OptimizationLevel::kO4);
    std::printf("%-10u %14.1f %16.1f %8.2fx\n", machines,
                mr.metrics.response_time_s, prop.metrics.response_time_s,
                mr.metrics.response_time_s / prop.metrics.response_time_s);
  }
  std::printf("\nPaper: propagation is 4.6-7.8x faster across 8-32 machines.\n");
  return 0;
}
