#ifndef SURFER_BENCH_BENCH_COMMON_H_
#define SURFER_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "apps/benchmark_suite.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/sim_scale.h"
#include "core/surfer.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "obs/bench_gate.h"
#include "obs/metrics_registry.h"
#include "obs/run_report.h"
#include "obs/trace.h"

namespace surfer {
namespace bench {

/// Standard experiment scale. Every bench uses the same social graph recipe
/// (the scaled-down MSN stand-in) unless it sweeps size itself. The graph is
/// sized so each binary finishes in tens of seconds; the simulated hardware
/// is scaled down by the same factor as the data (see core/sim_scale.h), so
/// stage times land in the paper's regime.
struct BenchGraphOptions {
  VertexId num_vertices = 1 << 16;
  double avg_out_degree = 12.0;
  /// Community granularity tuned so that the default 64 partitions subdivide
  /// communities (two partitions per community): partitions keep strong
  /// internal locality while sibling partitions share heavy intra-community
  /// traffic — the proximity regime of Section 4.1 and the inner-edge-ratio
  /// band of Table 5.
  uint32_t num_communities = 32;
  uint64_t seed = 2010;
};

inline Graph MakeBenchGraph(const BenchGraphOptions& options = {}) {
  SocialGraphOptions graph_options;
  graph_options.num_vertices = options.num_vertices;
  graph_options.avg_out_degree = options.avg_out_degree;
  graph_options.num_communities = options.num_communities;
  graph_options.seed = options.seed;
  auto graph = GenerateSocialGraph(graph_options);
  SURFER_CHECK(graph.ok()) << graph.status().ToString();
  return std::move(graph).value();
}

/// Builds a Surfer engine over `graph` on `topology`.
inline std::unique_ptr<SurferEngine> BuildEngine(const Graph& graph,
                                                 const Topology& topology,
                                                 uint32_t partitions = 64) {
  SurferOptions options;
  options.num_partitions = partitions;
  auto engine = SurferEngine::Build(graph, topology, options);
  SURFER_CHECK(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

/// Observability sinks for one benchmark run: a tracer and a metrics
/// registry that the propagation layer and the job simulation both feed.
struct BenchObservability {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
};

/// Runs one benchmark app through propagation at an optimization level.
/// With `observability`, the run records wall-clock compute spans,
/// simulated-clock stage/task spans, and propagation_*/sim_* metrics.
inline AppRunResult RunPropagation(const SurferEngine& engine,
                                   const BenchmarkApp& app,
                                   OptimizationLevel level,
                                   BenchObservability* observability = nullptr) {
  BenchmarkSetup setup = engine.MakeSetup(level);
  setup.sim_options = MakeScaledSimOptions();
  PropagationConfig config = PropagationConfig::ForLevel(level);
  if (observability != nullptr) {
    setup.sim_options.tracer = &observability->tracer;
    setup.sim_options.metrics = &observability->metrics;
    config.tracer = &observability->tracer;
    config.metrics = &observability->metrics;
  }
  auto result = app.run_propagation(setup, config);
  SURFER_CHECK(result.ok()) << app.name << ": " << result.status().ToString();
  return std::move(result).value();
}

/// Runs one benchmark app through MapReduce (always on the bandwidth-aware
/// layout, matching the paper's comparison).
inline AppRunResult RunMapReduce(const SurferEngine& engine,
                                 const BenchmarkApp& app) {
  BenchmarkSetup setup = engine.MakeSetup(OptimizationLevel::kO4);
  setup.sim_options = MakeScaledSimOptions();
  auto result = app.run_mapreduce(setup);
  SURFER_CHECK(result.ok()) << app.name << ": " << result.status().ToString();
  return std::move(result).value();
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Where bench binaries drop their run reports and traces: the
/// SURFER_ARTIFACT_DIR environment variable, or ./bench_artifacts.
inline std::string ArtifactDir() {
  const char* dir = std::getenv("SURFER_ARTIFACT_DIR");
  return (dir != nullptr && dir[0] != '\0') ? dir : "bench_artifacts";
}

/// Starts a BENCH_*.json perf baseline with the shared envelope every bench
/// emits identically: schema version, benchmark name, smoke flag, the
/// host's core count, and a provenance block (timestamp, hostname, build
/// type, sanitizer). Speedup and wall clock are bounded by host cores;
/// recording the bound lets `surfer_trace check` widen its tolerances when a
/// 1-core CI container compares against a beefier recording host, and the
/// provenance block answers "what produced this baseline" when numbers look
/// off months later. Callers append their workload fields and a `points`
/// array next to the envelope.
inline obs::JsonValue MakeBenchBaseline(const std::string& name, bool smoke) {
  obs::JsonValue baseline = obs::JsonValue::MakeObject();
  baseline.Set("schema_version", obs::kBenchBaselineSchemaVersion);
  baseline.Set("name", name);
  baseline.Set("smoke", smoke);
  baseline.Set("host_cores",
               static_cast<uint64_t>(std::thread::hardware_concurrency()));
  baseline.Set("provenance", obs::BuildProvenance());
  return baseline;
}

/// Writes a perf baseline to `<artifact dir>/<filename>`.
inline void WriteBenchBaseline(const std::string& filename,
                               const obs::JsonValue& baseline) {
  const std::string path = ArtifactDir() + "/" + filename;
  if (const Status status = obs::WriteRunReport(path, baseline); status.ok()) {
    std::printf("artifact: %s\n", path.c_str());
  } else {
    SURFER_LOG(kWarning) << "failed to write " << path << ": "
                         << status.ToString();
  }
}

/// Writes `<dir>/<name>.report.json` (schema-validated run report) and
/// `<dir>/<name>.trace.json` (Chrome trace) for one observed run. The global
/// thread pool's counters are folded into the registry first, so reports
/// always carry the host-side execution stats next to the simulated ones.
inline void WriteBenchArtifacts(const std::string& name,
                                const RunMetrics* run_metrics,
                                BenchObservability* observability,
                                const std::string& notes = "") {
  SURFER_CHECK(observability != nullptr);
  obs::ExportThreadPoolStats(GlobalThreadPool().stats(),
                             &observability->metrics);
  obs::RunReportOptions options;
  options.name = name;
  options.notes = notes;
  const obs::JsonValue report = obs::BuildRunReport(
      options, run_metrics, &observability->metrics, &observability->tracer);
  if (const Status status = obs::ValidateRunReport(report); !status.ok()) {
    SURFER_LOG(kWarning) << "run report for " << name
                         << " failed validation: " << status.ToString();
  }
  const std::string dir = ArtifactDir();
  const std::string report_path = dir + "/" + name + ".report.json";
  const std::string trace_path = dir + "/" + name + ".trace.json";
  if (const Status status = obs::WriteRunReport(report_path, report);
      status.ok()) {
    std::printf("artifact: %s\n", report_path.c_str());
  } else {
    SURFER_LOG(kWarning) << "failed to write " << report_path << ": "
                         << status.ToString();
  }
  if (const Status status =
          observability->tracer.WriteChromeTrace(trace_path);
      status.ok()) {
    std::printf("artifact: %s\n", trace_path.c_str());
  } else {
    SURFER_LOG(kWarning) << "failed to write " << trace_path << ": "
                         << status.ToString();
  }
}

}  // namespace bench
}  // namespace surfer

#endif  // SURFER_BENCH_BENCH_COMMON_H_
