#ifndef SURFER_BENCH_BENCH_COMMON_H_
#define SURFER_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "apps/benchmark_suite.h"
#include "common/logging.h"
#include "common/units.h"
#include "core/sim_scale.h"
#include "core/surfer.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"

namespace surfer {
namespace bench {

/// Standard experiment scale. Every bench uses the same social graph recipe
/// (the scaled-down MSN stand-in) unless it sweeps size itself. The graph is
/// sized so each binary finishes in tens of seconds; the simulated hardware
/// is scaled down by the same factor as the data (see core/sim_scale.h), so
/// stage times land in the paper's regime.
struct BenchGraphOptions {
  VertexId num_vertices = 1 << 16;
  double avg_out_degree = 12.0;
  /// Community granularity tuned so that the default 64 partitions subdivide
  /// communities (two partitions per community): partitions keep strong
  /// internal locality while sibling partitions share heavy intra-community
  /// traffic — the proximity regime of Section 4.1 and the inner-edge-ratio
  /// band of Table 5.
  uint32_t num_communities = 32;
  uint64_t seed = 2010;
};

inline Graph MakeBenchGraph(const BenchGraphOptions& options = {}) {
  SocialGraphOptions graph_options;
  graph_options.num_vertices = options.num_vertices;
  graph_options.avg_out_degree = options.avg_out_degree;
  graph_options.num_communities = options.num_communities;
  graph_options.seed = options.seed;
  auto graph = GenerateSocialGraph(graph_options);
  SURFER_CHECK(graph.ok()) << graph.status().ToString();
  return std::move(graph).value();
}

/// Builds a Surfer engine over `graph` on `topology`.
inline std::unique_ptr<SurferEngine> BuildEngine(const Graph& graph,
                                                 const Topology& topology,
                                                 uint32_t partitions = 64) {
  SurferOptions options;
  options.num_partitions = partitions;
  auto engine = SurferEngine::Build(graph, topology, options);
  SURFER_CHECK(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

/// Runs one benchmark app through propagation at an optimization level.
inline AppRunResult RunPropagation(const SurferEngine& engine,
                                   const BenchmarkApp& app,
                                   OptimizationLevel level) {
  BenchmarkSetup setup = engine.MakeSetup(level);
  setup.sim_options = MakeScaledSimOptions();
  auto result = app.run_propagation(setup, PropagationConfig::ForLevel(level));
  SURFER_CHECK(result.ok()) << app.name << ": " << result.status().ToString();
  return std::move(result).value();
}

/// Runs one benchmark app through MapReduce (always on the bandwidth-aware
/// layout, matching the paper's comparison).
inline AppRunResult RunMapReduce(const SurferEngine& engine,
                                 const BenchmarkApp& app) {
  BenchmarkSetup setup = engine.MakeSetup(OptimizationLevel::kO4);
  setup.sim_options = MakeScaledSimOptions();
  auto result = app.run_mapreduce(setup);
  SURFER_CHECK(result.ok()) << app.name << ": " << result.status().ToString();
  return std::move(result).value();
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace bench
}  // namespace surfer

#endif  // SURFER_BENCH_BENCH_COMMON_H_
