// Reproduces the Section 6.3 multi-iteration experiment: cascaded
// propagation for network ranking across iteration counts. The paper reports
// that ~7% of MSN vertices are in V_k (k >= 2), and that at three iterations
// cascading improves response time by ~8% and cuts disk I/O by ~12%, with a
// stable improvement as iterations grow.

#include <cstdio>

#include "apps/network_ranking.h"
#include "bench/bench_common.h"
#include "common/units.h"
#include "propagation/cascade.h"
#include "propagation/runner.h"

int main() {
  using namespace surfer;
  using namespace surfer::bench;

  // Coarse partitions raise the inner share, giving cascading vertices to
  // work with (V_k >= 2 needs interior depth).
  BenchGraphOptions graph_options;
  graph_options.num_communities = 4;
  const Graph graph = MakeBenchGraph(graph_options);
  const Topology topology = MakeScaledT1(32);
  auto engine = BuildEngine(graph, topology, 32);
  std::printf("graph: %s\n", ComputeGraphStats(graph).ToString().c_str());

  const CascadeInfo info = ComputeCascadeInfo(engine->partitioned_graph());
  PrintHeader("Cascaded propagation (Section 6.3)");
  std::printf("V_k ratios:  k>=1: %.1f%%   k>=2: %.1f%%   k>=3: %.1f%%   "
              "(paper: k>=2 is ~7%%)\n",
              100.0 * info.RatioAtLeast(1), 100.0 * info.RatioAtLeast(2),
              100.0 * info.RatioAtLeast(3));
  std::printf("d_min (cascade phase length): %u\n\n", info.d_min);

  std::printf("%-11s %14s %16s %12s %14s %14s %10s\n", "Iterations",
              "Naive resp (s)", "Cascaded resp (s)", "Resp saved",
              "Naive disk MiB", "Casc disk MiB", "Disk saved");
  for (int iterations : {2, 3, 5, 8}) {
    BenchmarkSetup setup = engine->MakeSetup(OptimizationLevel::kO4);
    setup.sim_options = MakeScaledSimOptions();
    NetworkRankingApp app(graph.num_vertices());

    PropagationConfig naive;
    naive.iterations = iterations;
    PropagationRunner<NetworkRankingApp> naive_runner(
        setup.graph, setup.placement, setup.topology, app, naive);
    auto naive_metrics = naive_runner.Run(setup.sim_options);
    SURFER_CHECK(naive_metrics.ok());

    PropagationConfig cascaded = naive;
    cascaded.cascaded = true;
    PropagationRunner<NetworkRankingApp> cascaded_runner(
        setup.graph, setup.placement, setup.topology, app, cascaded);
    auto cascaded_metrics = cascaded_runner.Run(setup.sim_options);
    SURFER_CHECK(cascaded_metrics.ok());

    std::printf("%-11d %14.1f %16.1f %11.1f%% %14.1f %14.1f %9.1f%%\n",
                iterations, naive_metrics->response_time_s,
                cascaded_metrics->response_time_s,
                100.0 * (1.0 - cascaded_metrics->response_time_s /
                                   naive_metrics->response_time_s),
                naive_metrics->disk_bytes / kMiB,
                cascaded_metrics->disk_bytes / kMiB,
                100.0 * (1.0 - cascaded_metrics->disk_bytes /
                                   naive_metrics->disk_bytes));
  }
  std::printf(
      "\nPaper: ~8%% response and ~12%% disk I/O saved at 3 iterations, "
      "stable as iterations grow,\nmatching the V_k (k>=2) ratio.\n");
  return 0;
}
