// Host-side scaling of the concurrent execution runtime: NR at O4 runs once
// through the sequential PropagationRunner (host wall clock) and then through
// the RuntimeExecutor at 1/2/4/8 workers. Emits the machine-readable perf
// baseline BENCH_runtime.json so CI trends wall-clock speedup over time.
// Results are cross-checked for bit-identity on every point — a speedup that
// changes the answer is a bug, not a win. Profiling stays on for every point
// (sharded trace + superstep timeline), so the baseline prices the
// instrumented configuration users actually run.
//
// `--smoke` runs a reduced sweep (small graph, fewer iterations, one worker
// point) so CI can exercise the binary and its artifacts in seconds without
// polluting baselines.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "apps/network_ranking.h"
#include "bench/bench_common.h"
#include "propagation/runner.h"
#include "runtime/executor.h"
#include "runtime/report.h"
#include "runtime/timeline.h"

int main(int argc, char** argv) {
  using namespace surfer;
  using namespace surfer::bench;
  using Clock = std::chrono::steady_clock;

  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  int iterations = 5;
  BenchGraphOptions graph_options;
  std::vector<uint32_t> worker_points = {1, 2, 4, 8};
  if (smoke) {
    iterations = 2;
    graph_options.num_vertices = 1 << 13;
    graph_options.num_communities = 8;
    worker_points = {2};
  }
  const Graph graph = MakeBenchGraph(graph_options);
  const Topology topology = MakeScaledT2(8, 2, 1);
  auto engine = BuildEngine(graph, topology);
  const BenchmarkSetup setup = engine->MakeSetup(OptimizationLevel::kO4);
  PropagationConfig config = PropagationConfig::ForLevel(OptimizationLevel::kO4);
  config.iterations = iterations;
  NetworkRankingApp app(graph.num_vertices());

  PrintHeader(std::string("Runtime scaling: concurrent executor vs "
                          "sequential runner") +
              (smoke ? " (smoke)" : ""));

  PropagationRunner<NetworkRankingApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  const auto seq_start = Clock::now();
  auto seq_metrics = runner.Run(MakeScaledSimOptions());
  SURFER_CHECK(seq_metrics.ok()) << seq_metrics.status().ToString();
  const double sequential_wall_s =
      std::chrono::duration<double>(Clock::now() - seq_start).count();
  std::printf("sequential runner: %.3f s (host wall clock)\n\n",
              sequential_wall_s);

  obs::JsonValue baseline = MakeBenchBaseline("bench_runtime_scaling", smoke);
  baseline.Set("app", std::string("NR"));
  baseline.Set("optimization_level",
               OptimizationLevelName(OptimizationLevel::kO4));
  baseline.Set("iterations", static_cast<uint64_t>(iterations));
  baseline.Set("num_vertices", static_cast<uint64_t>(graph.num_vertices()));
  baseline.Set("num_machines", static_cast<uint64_t>(topology.num_machines()));
  baseline.Set("sequential_wall_s", sequential_wall_s);

  std::printf("%-9s %12s %9s %13s %15s\n", "Workers", "Wall (s)", "Speedup",
              "Send stalls", "Barrier wait(s)");
  obs::JsonValue points = obs::JsonValue::MakeArray();
  obs::JsonValue last_runtime_block = obs::JsonValue::MakeObject();
  obs::JsonValue last_timeline_block = obs::JsonValue::MakeObject();
  BenchObservability observability;
  for (uint32_t workers : worker_points) {
    // Profiling on: per-task events flow through the sharded tracer into
    // this tracer, and the executor builds the superstep timeline.
    config.tracer = &observability.tracer;
    config.metrics = &observability.metrics;
    runtime::RuntimeOptions options;
    options.max_workers = workers;
    runtime::RuntimeExecutor<NetworkRankingApp> executor(
        setup.graph, setup.placement, setup.topology, app, config, options);
    const Status status = executor.Run();
    SURFER_CHECK(status.ok()) << status.ToString();
    SURFER_CHECK(runner.states().size() == executor.states().size());
    SURFER_CHECK(std::memcmp(runner.states().data(), executor.states().data(),
                             runner.states().size() *
                                 sizeof(NetworkRankingApp::VertexState)) == 0)
        << "runtime diverged from the sequential runner at " << workers
        << " workers";
    const runtime::RuntimeStats& stats = executor.stats();
    const double speedup = sequential_wall_s / stats.wall_seconds;
    std::printf("%-9u %12.3f %8.2fx %13llu %15.3f\n", workers,
                stats.wall_seconds, speedup,
                static_cast<unsigned long long>(stats.send_stalls),
                stats.barrier_wait_seconds);
    obs::JsonValue point = obs::JsonValue::MakeObject();
    point.Set("workers", static_cast<uint64_t>(workers));
    point.Set("wall_s", stats.wall_seconds);
    point.Set("speedup", speedup);
    point.Set("bit_identical", true);
    point.Set("send_stalls", stats.send_stalls);
    point.Set("barrier_wait_seconds", stats.barrier_wait_seconds);
    point.Set("network_bytes", stats.TotalNetworkBytes());
    point.Set("trace_events_dropped", stats.trace_events_dropped);
    points.Append(std::move(point));
    last_runtime_block = runtime::RuntimeStatsToJson(stats);
    last_timeline_block = runtime::TimelineToJson(stats.timeline);
  }
  baseline.Set("points", std::move(points));

  std::printf("\n");
  WriteBenchBaseline("BENCH_runtime.json", baseline);

  // The widest run also ships as a standard run report with the `runtime`
  // and schema-v2 `timeline` blocks populated, plus the Chrome trace with
  // the per-task lanes from the sharded profiler — the same artifacts CI
  // uploads and `surfer_trace summary` reads.
  obs::ExportThreadPoolStats(GlobalThreadPool().stats(),
                             &observability.metrics);
  obs::RunReportOptions report_options;
  report_options.name = "bench_runtime_scaling";
  report_options.notes =
      "NR at O4 through the concurrent runtime; runtime/timeline blocks are "
      "the widest worker point";
  const obs::JsonValue report = obs::BuildRunReport(
      report_options, nullptr, &observability.metrics, &observability.tracer,
      &last_runtime_block, &last_timeline_block);
  if (const Status status = obs::ValidateRunReport(report); !status.ok()) {
    SURFER_LOG(kWarning) << "run report failed validation: "
                         << status.ToString();
  }
  const std::string report_path =
      ArtifactDir() + "/bench_runtime_scaling.report.json";
  if (const Status status = obs::WriteRunReport(report_path, report);
      status.ok()) {
    std::printf("artifact: %s\n", report_path.c_str());
  }
  const std::string trace_path =
      ArtifactDir() + "/bench_runtime_scaling.trace.json";
  if (const Status status =
          observability.tracer.WriteChromeTrace(trace_path);
      status.ok()) {
    std::printf("artifact: %s\n", trace_path.c_str());
  }
  return 0;
}
