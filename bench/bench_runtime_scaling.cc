// Host-side scaling of the concurrent execution runtime: NR at O4 runs once
// through the sequential PropagationRunner (host wall clock) and then through
// the RuntimeExecutor at 1/2/4/8 workers. Emits the machine-readable perf
// baseline BENCH_runtime.json so CI trends wall-clock speedup over time.
// Results are cross-checked for bit-identity on every point — a speedup that
// changes the answer is a bug, not a win. Profiling stays on for every point
// (sharded trace + superstep timeline + telemetry flight recorder), so the
// baseline prices the instrumented configuration users actually run. The
// first worker point additionally runs once with the flight recorder off,
// and the wall-clock delta ships as `telemetry_overhead_frac` — the measured
// price of the sampler, trended alongside the timings it prices.
//
// `--smoke` runs a reduced sweep (small graph, fewer iterations, one worker
// point) so CI can exercise the binary and its artifacts in seconds without
// polluting baselines.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "apps/network_ranking.h"
#include "bench/bench_common.h"
#include "core/engine.h"
#include "runtime/report.h"
#include "runtime/timeline.h"

int main(int argc, char** argv) {
  using namespace surfer;
  using namespace surfer::bench;
  using Clock = std::chrono::steady_clock;

  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  int iterations = 5;
  BenchGraphOptions graph_options;
  std::vector<uint32_t> worker_points = {1, 2, 4, 8};
  if (smoke) {
    iterations = 2;
    graph_options.num_vertices = 1 << 13;
    graph_options.num_communities = 8;
    worker_points = {2};
  }
  const Graph graph = MakeBenchGraph(graph_options);
  const Topology topology = MakeScaledT2(8, 2, 1);
  auto engine = BuildEngine(graph, topology);
  const BenchmarkSetup setup = engine->MakeSetup(OptimizationLevel::kO4);
  PropagationConfig config = PropagationConfig::ForLevel(OptimizationLevel::kO4);
  config.iterations = iterations;
  // Frontier gating pinned on: NR's Combine is not skippable so the results
  // are unchanged, but the counting scatter + frontier bitmap + incremental
  // receive-side overlap path runs live on every point — the CI smoke run
  // then gates that path under --strict-drops.
  config.frontier_gating = true;
  NetworkRankingApp app(graph.num_vertices());

  PrintHeader(std::string("Runtime scaling: concurrent executor vs "
                          "sequential runner") +
              (smoke ? " (smoke)" : ""));

  EngineOptions sequential_options;
  sequential_options.propagation = config;
  sequential_options.sim = MakeScaledSimOptions();
  auto sequential_session = Engine::Open(setup.graph, setup.placement,
                                         setup.topology, sequential_options);
  SURFER_CHECK(sequential_session.ok())
      << sequential_session.status().ToString();
  const auto seq_start = Clock::now();
  auto sequential = sequential_session->Run(app);
  SURFER_CHECK(sequential.ok()) << sequential.status().ToString();
  const double sequential_wall_s =
      std::chrono::duration<double>(Clock::now() - seq_start).count();
  std::printf("sequential runner: %.3f s (host wall clock)\n\n",
              sequential_wall_s);

  obs::JsonValue baseline = MakeBenchBaseline("bench_runtime_scaling", smoke);
  baseline.Set("app", std::string("NR"));
  baseline.Set("optimization_level",
               OptimizationLevelName(OptimizationLevel::kO4));
  baseline.Set("iterations", static_cast<uint64_t>(iterations));
  baseline.Set("num_vertices", static_cast<uint64_t>(graph.num_vertices()));
  baseline.Set("num_machines", static_cast<uint64_t>(topology.num_machines()));
  baseline.Set("sequential_wall_s", sequential_wall_s);
  baseline.Set("frontier_gating", true);

  std::printf("%-9s %12s %9s %13s %15s %13s\n", "Workers", "Wall (s)",
              "Speedup", "Send stalls", "Barrier wait(s)", "Peak RSS(MB)");
  obs::JsonValue points = obs::JsonValue::MakeArray();
  obs::JsonValue last_runtime_block = obs::JsonValue::MakeObject();
  obs::JsonValue last_timeline_block = obs::JsonValue::MakeObject();
  obs::JsonValue last_telemetry_block = obs::JsonValue::MakeObject();
  bool have_telemetry_block = false;
  double telemetry_overhead_frac = 0.0;
  BenchObservability observability;
  for (size_t point_index = 0; point_index < worker_points.size();
       ++point_index) {
    const uint32_t workers = worker_points[point_index];
    // Profiling on: per-task events flow through the sharded tracer into
    // this tracer, the executor builds the superstep timeline, and the
    // flight recorder samples the runtime gauges at its default period.
    EngineOptions engine_options;
    engine_options.engine = EngineKind::kConcurrent;
    engine_options.propagation = config;
    engine_options.propagation.tracer = &observability.tracer;
    engine_options.propagation.metrics = &observability.metrics;
    engine_options.runtime.max_workers = workers;
    engine_options.runtime.telemetry.enabled = true;
    if (point_index == 0) {
      // Price the sampler: run the first point once with only the recorder
      // off (tracer and metrics stay on, so the delta isolates telemetry
      // from the rest of the instrumentation), then again fully
      // instrumented. The wall_s fields are tolerance-gated elsewhere and
      // would absorb far more than the sampler's ~1% — so the overhead is
      // reported for trending rather than gated here; the hard <=2% bar is
      // the per-tick telemetry_sample microbenchmark.
      EngineOptions plain_options = engine_options;
      plain_options.runtime.telemetry.enabled = false;
      auto plain_session = Engine::Open(setup.graph, setup.placement,
                                        setup.topology, plain_options);
      SURFER_CHECK(plain_session.ok()) << plain_session.status().ToString();
      const auto plain_start = Clock::now();
      auto plain = plain_session->Run(app);
      const double plain_wall_s =
          std::chrono::duration<double>(Clock::now() - plain_start).count();
      SURFER_CHECK(plain.ok()) << plain.status().ToString();
      auto warm_session = Engine::Open(setup.graph, setup.placement,
                                       setup.topology, engine_options);
      SURFER_CHECK(warm_session.ok()) << warm_session.status().ToString();
      const auto instrumented_start = Clock::now();
      auto warm = warm_session->Run(app);
      const double instrumented_wall_s =
          std::chrono::duration<double>(Clock::now() - instrumented_start)
              .count();
      SURFER_CHECK(warm.ok()) << warm.status().ToString();
      if (plain_wall_s > 0.0) {
        telemetry_overhead_frac =
            (instrumented_wall_s - plain_wall_s) / plain_wall_s;
      }
      std::printf("telemetry overhead at %u worker(s): %+.2f%% "
                  "(%.3f s off, %.3f s on)\n",
                  workers, telemetry_overhead_frac * 100.0, plain_wall_s,
                  instrumented_wall_s);
    }
    auto concurrent_session = Engine::Open(setup.graph, setup.placement,
                                           setup.topology, engine_options);
    SURFER_CHECK(concurrent_session.ok())
        << concurrent_session.status().ToString();
    auto concurrent = concurrent_session->Run(app);
    SURFER_CHECK(concurrent.ok()) << concurrent.status().ToString();
    SURFER_CHECK(sequential->states.size() == concurrent->states.size());
    SURFER_CHECK(std::memcmp(sequential->states.data(),
                             concurrent->states.data(),
                             sequential->states.size() *
                                 sizeof(NetworkRankingApp::VertexState)) == 0)
        << "runtime diverged from the sequential runner at " << workers
        << " workers";
    const runtime::RuntimeStats& stats = *concurrent->runtime_stats;
    const double speedup = sequential_wall_s / stats.wall_seconds;
    std::printf("%-9u %12.3f %8.2fx %13llu %15.3f %13.1f\n", workers,
                stats.wall_seconds, speedup,
                static_cast<unsigned long long>(stats.send_stalls),
                stats.barrier_wait_seconds,
                static_cast<double>(stats.peak_rss_bytes) / (1024.0 * 1024.0));
    obs::JsonValue point = obs::JsonValue::MakeObject();
    point.Set("workers", static_cast<uint64_t>(workers));
    point.Set("wall_s", stats.wall_seconds);
    point.Set("speedup", speedup);
    point.Set("bit_identical", true);
    point.Set("send_stalls", stats.send_stalls);
    point.Set("items_stalled", stats.items_stalled);
    point.Set("barrier_wait_seconds", stats.barrier_wait_seconds);
    point.Set("barrier_wait_mean_s", stats.barrier_wait_mean_s);
    point.Set("barrier_wait_max_s", stats.barrier_wait_max_s);
    point.Set("network_bytes", stats.TotalNetworkBytes());
    point.Set("messages_sent", stats.messages_sent);
    point.Set("wire_batches_sent", stats.wire_batches_sent);
    point.Set("wire_segments_sent", stats.wire_segments_sent);
    point.Set("wire_payload_bytes", stats.wire_payload_bytes);
    point.Set("wire_messages_combined", stats.wire_messages_combined);
    point.Set("batch_fill_mean", stats.batch_fill.Mean());
    // The combine-plan counters introduced with the sort-free regroup: how
    // many messages went through the counting scatter, how long the scatter
    // itself took (the bench-gated throughput), and how many silent
    // vertices the frontier gate skipped (0 for NR, whose Combine is not
    // skippable — pinning that the gate stays inert here).
    point.Set("combine_messages_scattered", stats.combine_messages_scattered);
    point.Set("combine_scatter_seconds", stats.combine_scatter_seconds);
    point.Set("frontier_vertices_skipped", stats.frontier_vertices_skipped);
    // Per-stage host-time split summed from the superstep timeline (all
    // steps x machines), so the baseline trends where the wall clock goes:
    // UDF compute vs wire-batch serialization.
    double timeline_compute_s = 0.0;
    double timeline_serialize_s = 0.0;
    for (const runtime::SuperstepProfile& step : stats.timeline) {
      for (const runtime::PhaseSeconds& machine : step.machines) {
        timeline_compute_s += machine.compute_s;
        timeline_serialize_s += machine.serialize_s;
      }
    }
    point.Set("compute_s", timeline_compute_s);
    point.Set("serialize_s", timeline_serialize_s);
    point.Set("trace_events_dropped", stats.trace_events_dropped);
    point.Set("telemetry_samples", stats.telemetry_samples);
    point.Set("telemetry_samples_dropped", stats.telemetry_samples_dropped);
    point.Set("peak_rss_bytes", stats.peak_rss_bytes);
    points.Append(std::move(point));
    last_runtime_block = runtime::RuntimeStatsToJson(stats);
    last_timeline_block = runtime::TimelineToJson(stats.timeline);
    if (concurrent->telemetry.has_value()) {
      last_telemetry_block = *concurrent->telemetry;
      have_telemetry_block = true;
    }
  }
  baseline.Set("telemetry_overhead_frac", telemetry_overhead_frac);
  baseline.Set("points", std::move(points));

  std::printf("\n");
  WriteBenchBaseline("BENCH_runtime.json", baseline);

  // The widest run also ships as a standard run report with the `runtime`,
  // schema-v2 `timeline`, and schema-v3 `telemetry` blocks populated, plus
  // the Chrome trace with the per-task lanes from the sharded profiler and
  // the flight recorder's counter lanes — the same artifacts CI uploads and
  // `surfer_trace summary` / `surfer_trace telemetry` read.
  obs::ExportThreadPoolStats(GlobalThreadPool().stats(),
                             &observability.metrics);
  obs::RunReportOptions report_options;
  report_options.name = "bench_runtime_scaling";
  report_options.notes =
      "NR at O4 through the concurrent runtime; runtime/timeline/telemetry "
      "blocks are the widest worker point";
  const obs::JsonValue report = obs::BuildRunReport(
      report_options, nullptr, &observability.metrics, &observability.tracer,
      &last_runtime_block, &last_timeline_block,
      have_telemetry_block ? &last_telemetry_block : nullptr);
  if (const Status status = obs::ValidateRunReport(report); !status.ok()) {
    SURFER_LOG(kWarning) << "run report failed validation: "
                         << status.ToString();
  }
  const std::string report_path =
      ArtifactDir() + "/bench_runtime_scaling.report.json";
  if (const Status status = obs::WriteRunReport(report_path, report);
      status.ok()) {
    std::printf("artifact: %s\n", report_path.c_str());
  }
  const std::string trace_path =
      ArtifactDir() + "/bench_runtime_scaling.trace.json";
  if (const Status status =
          observability.tracer.WriteChromeTrace(trace_path);
      status.ok()) {
    std::printf("artifact: %s\n", trace_path.c_str());
  }
  return 0;
}
