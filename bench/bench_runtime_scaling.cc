// Host-side scaling of the concurrent execution runtime: NR at O4 runs once
// through the sequential PropagationRunner (host wall clock) and then through
// the RuntimeExecutor at 1/2/4/8 workers. Emits the machine-readable perf
// baseline BENCH_runtime.json so CI trends wall-clock speedup over time.
// Results are cross-checked for bit-identity on every point — a speedup that
// changes the answer is a bug, not a win.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "apps/network_ranking.h"
#include "bench/bench_common.h"
#include "propagation/runner.h"
#include "runtime/executor.h"
#include "runtime/report.h"

int main() {
  using namespace surfer;
  using namespace surfer::bench;
  using Clock = std::chrono::steady_clock;

  constexpr int kIterations = 5;
  const Graph graph = MakeBenchGraph();
  const Topology topology = MakeScaledT2(8, 2, 1);
  auto engine = BuildEngine(graph, topology);
  const BenchmarkSetup setup = engine->MakeSetup(OptimizationLevel::kO4);
  PropagationConfig config = PropagationConfig::ForLevel(OptimizationLevel::kO4);
  config.iterations = kIterations;
  NetworkRankingApp app(graph.num_vertices());

  PrintHeader("Runtime scaling: concurrent executor vs sequential runner");

  PropagationRunner<NetworkRankingApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  const auto seq_start = Clock::now();
  auto seq_metrics = runner.Run(MakeScaledSimOptions());
  SURFER_CHECK(seq_metrics.ok()) << seq_metrics.status().ToString();
  const double sequential_wall_s =
      std::chrono::duration<double>(Clock::now() - seq_start).count();
  std::printf("sequential runner: %.3f s (host wall clock)\n\n",
              sequential_wall_s);

  obs::JsonValue baseline = obs::JsonValue::MakeObject();
  baseline.Set("name", std::string("bench_runtime_scaling"));
  baseline.Set("app", std::string("NR"));
  baseline.Set("optimization_level",
               OptimizationLevelName(OptimizationLevel::kO4));
  baseline.Set("iterations", static_cast<uint64_t>(kIterations));
  baseline.Set("num_vertices", static_cast<uint64_t>(graph.num_vertices()));
  baseline.Set("num_machines", static_cast<uint64_t>(topology.num_machines()));
  // Speedup is bounded by host cores (the sequential runner's per-partition
  // compute already spreads over the global thread pool); record the bound so
  // baselines from different hosts compare meaningfully.
  baseline.Set("host_cores",
               static_cast<uint64_t>(std::thread::hardware_concurrency()));
  baseline.Set("sequential_wall_s", sequential_wall_s);

  std::printf("%-9s %12s %9s %13s %15s\n", "Workers", "Wall (s)", "Speedup",
              "Send stalls", "Barrier wait(s)");
  obs::JsonValue points = obs::JsonValue::MakeArray();
  obs::JsonValue last_runtime_block = obs::JsonValue::MakeObject();
  for (uint32_t workers : {1u, 2u, 4u, 8u}) {
    runtime::RuntimeOptions options;
    options.max_workers = workers;
    runtime::RuntimeExecutor<NetworkRankingApp> executor(
        setup.graph, setup.placement, setup.topology, app, config, options);
    const Status status = executor.Run();
    SURFER_CHECK(status.ok()) << status.ToString();
    SURFER_CHECK(runner.states().size() == executor.states().size());
    SURFER_CHECK(std::memcmp(runner.states().data(), executor.states().data(),
                             runner.states().size() *
                                 sizeof(NetworkRankingApp::VertexState)) == 0)
        << "runtime diverged from the sequential runner at " << workers
        << " workers";
    const runtime::RuntimeStats& stats = executor.stats();
    const double speedup = sequential_wall_s / stats.wall_seconds;
    std::printf("%-9u %12.3f %8.2fx %13llu %15.3f\n", workers,
                stats.wall_seconds, speedup,
                static_cast<unsigned long long>(stats.send_stalls),
                stats.barrier_wait_seconds);
    obs::JsonValue point = obs::JsonValue::MakeObject();
    point.Set("workers", static_cast<uint64_t>(workers));
    point.Set("wall_s", stats.wall_seconds);
    point.Set("speedup", speedup);
    point.Set("bit_identical", true);
    point.Set("send_stalls", stats.send_stalls);
    point.Set("barrier_wait_seconds", stats.barrier_wait_seconds);
    point.Set("network_bytes", stats.TotalNetworkBytes());
    points.Append(std::move(point));
    last_runtime_block = runtime::RuntimeStatsToJson(stats);
  }
  baseline.Set("points", std::move(points));

  const std::string baseline_path = ArtifactDir() + "/BENCH_runtime.json";
  if (const Status status = obs::WriteRunReport(baseline_path, baseline);
      status.ok()) {
    std::printf("\nartifact: %s\n", baseline_path.c_str());
  } else {
    SURFER_LOG(kWarning) << "failed to write " << baseline_path << ": "
                         << status.ToString();
  }

  // The full-width (8-worker) run also ships as a standard run report with
  // the `runtime` block populated, exercising the same schema CI validates.
  obs::RunReportOptions report_options;
  report_options.name = "bench_runtime_scaling";
  report_options.notes = "NR at O4 through the concurrent runtime; runtime "
                         "block is the 8-worker point";
  const obs::JsonValue report = obs::BuildRunReport(
      report_options, nullptr, nullptr, nullptr, &last_runtime_block);
  if (const Status status = obs::ValidateRunReport(report); !status.ok()) {
    SURFER_LOG(kWarning) << "run report failed validation: "
                         << status.ToString();
  }
  const std::string report_path =
      ArtifactDir() + "/bench_runtime_scaling.report.json";
  if (const Status status = obs::WriteRunReport(report_path, report);
      status.ok()) {
    std::printf("artifact: %s\n", report_path.c_str());
  }
  return 0;
}
