// Host-side scaling of the concurrent execution runtime: NR at O4 runs once
// through the sequential PropagationRunner (host wall clock) and then through
// the RuntimeExecutor at 1/2/4/8 workers. Emits the machine-readable perf
// baseline BENCH_runtime.json so CI trends wall-clock speedup over time.
// Results are cross-checked for bit-identity on every point — a speedup that
// changes the answer is a bug, not a win. Profiling stays on for every point
// (sharded trace + superstep timeline), so the baseline prices the
// instrumented configuration users actually run.
//
// `--smoke` runs a reduced sweep (small graph, fewer iterations, one worker
// point) so CI can exercise the binary and its artifacts in seconds without
// polluting baselines.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "apps/network_ranking.h"
#include "bench/bench_common.h"
#include "core/run_app.h"
#include "runtime/report.h"
#include "runtime/timeline.h"

int main(int argc, char** argv) {
  using namespace surfer;
  using namespace surfer::bench;
  using Clock = std::chrono::steady_clock;

  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  int iterations = 5;
  BenchGraphOptions graph_options;
  std::vector<uint32_t> worker_points = {1, 2, 4, 8};
  if (smoke) {
    iterations = 2;
    graph_options.num_vertices = 1 << 13;
    graph_options.num_communities = 8;
    worker_points = {2};
  }
  const Graph graph = MakeBenchGraph(graph_options);
  const Topology topology = MakeScaledT2(8, 2, 1);
  auto engine = BuildEngine(graph, topology);
  const BenchmarkSetup setup = engine->MakeSetup(OptimizationLevel::kO4);
  PropagationConfig config = PropagationConfig::ForLevel(OptimizationLevel::kO4);
  config.iterations = iterations;
  NetworkRankingApp app(graph.num_vertices());

  PrintHeader(std::string("Runtime scaling: concurrent executor vs "
                          "sequential runner") +
              (smoke ? " (smoke)" : ""));

  EngineOptions sequential_options;
  sequential_options.propagation = config;
  sequential_options.sim = MakeScaledSimOptions();
  const auto seq_start = Clock::now();
  auto sequential = RunApp(setup.graph, setup.placement, setup.topology, app,
                           sequential_options);
  SURFER_CHECK(sequential.ok()) << sequential.status().ToString();
  const double sequential_wall_s =
      std::chrono::duration<double>(Clock::now() - seq_start).count();
  std::printf("sequential runner: %.3f s (host wall clock)\n\n",
              sequential_wall_s);

  obs::JsonValue baseline = MakeBenchBaseline("bench_runtime_scaling", smoke);
  baseline.Set("app", std::string("NR"));
  baseline.Set("optimization_level",
               OptimizationLevelName(OptimizationLevel::kO4));
  baseline.Set("iterations", static_cast<uint64_t>(iterations));
  baseline.Set("num_vertices", static_cast<uint64_t>(graph.num_vertices()));
  baseline.Set("num_machines", static_cast<uint64_t>(topology.num_machines()));
  baseline.Set("sequential_wall_s", sequential_wall_s);

  std::printf("%-9s %12s %9s %13s %15s\n", "Workers", "Wall (s)", "Speedup",
              "Send stalls", "Barrier wait(s)");
  obs::JsonValue points = obs::JsonValue::MakeArray();
  obs::JsonValue last_runtime_block = obs::JsonValue::MakeObject();
  obs::JsonValue last_timeline_block = obs::JsonValue::MakeObject();
  BenchObservability observability;
  for (uint32_t workers : worker_points) {
    // Profiling on: per-task events flow through the sharded tracer into
    // this tracer, and the executor builds the superstep timeline.
    EngineOptions engine_options;
    engine_options.engine = EngineKind::kConcurrent;
    engine_options.propagation = config;
    engine_options.propagation.tracer = &observability.tracer;
    engine_options.propagation.metrics = &observability.metrics;
    engine_options.runtime.max_workers = workers;
    auto concurrent = RunApp(setup.graph, setup.placement, setup.topology,
                             app, engine_options);
    SURFER_CHECK(concurrent.ok()) << concurrent.status().ToString();
    SURFER_CHECK(sequential->states.size() == concurrent->states.size());
    SURFER_CHECK(std::memcmp(sequential->states.data(),
                             concurrent->states.data(),
                             sequential->states.size() *
                                 sizeof(NetworkRankingApp::VertexState)) == 0)
        << "runtime diverged from the sequential runner at " << workers
        << " workers";
    const runtime::RuntimeStats& stats = *concurrent->runtime_stats;
    const double speedup = sequential_wall_s / stats.wall_seconds;
    std::printf("%-9u %12.3f %8.2fx %13llu %15.3f\n", workers,
                stats.wall_seconds, speedup,
                static_cast<unsigned long long>(stats.send_stalls),
                stats.barrier_wait_seconds);
    obs::JsonValue point = obs::JsonValue::MakeObject();
    point.Set("workers", static_cast<uint64_t>(workers));
    point.Set("wall_s", stats.wall_seconds);
    point.Set("speedup", speedup);
    point.Set("bit_identical", true);
    point.Set("send_stalls", stats.send_stalls);
    point.Set("items_stalled", stats.items_stalled);
    point.Set("barrier_wait_seconds", stats.barrier_wait_seconds);
    point.Set("network_bytes", stats.TotalNetworkBytes());
    point.Set("messages_sent", stats.messages_sent);
    point.Set("wire_batches_sent", stats.wire_batches_sent);
    point.Set("wire_segments_sent", stats.wire_segments_sent);
    point.Set("wire_payload_bytes", stats.wire_payload_bytes);
    point.Set("wire_messages_combined", stats.wire_messages_combined);
    point.Set("batch_fill_mean", stats.batch_fill.Mean());
    point.Set("trace_events_dropped", stats.trace_events_dropped);
    points.Append(std::move(point));
    last_runtime_block = runtime::RuntimeStatsToJson(stats);
    last_timeline_block = runtime::TimelineToJson(stats.timeline);
  }
  baseline.Set("points", std::move(points));

  std::printf("\n");
  WriteBenchBaseline("BENCH_runtime.json", baseline);

  // The widest run also ships as a standard run report with the `runtime`
  // and schema-v2 `timeline` blocks populated, plus the Chrome trace with
  // the per-task lanes from the sharded profiler — the same artifacts CI
  // uploads and `surfer_trace summary` reads.
  obs::ExportThreadPoolStats(GlobalThreadPool().stats(),
                             &observability.metrics);
  obs::RunReportOptions report_options;
  report_options.name = "bench_runtime_scaling";
  report_options.notes =
      "NR at O4 through the concurrent runtime; runtime/timeline blocks are "
      "the widest worker point";
  const obs::JsonValue report = obs::BuildRunReport(
      report_options, nullptr, &observability.metrics, &observability.tracer,
      &last_runtime_block, &last_timeline_block);
  if (const Status status = obs::ValidateRunReport(report); !status.ok()) {
    SURFER_LOG(kWarning) << "run report failed validation: "
                         << status.ToString();
  }
  const std::string report_path =
      ArtifactDir() + "/bench_runtime_scaling.report.json";
  if (const Status status = obs::WriteRunReport(report_path, report);
      status.ok()) {
    std::printf("artifact: %s\n", report_path.c_str());
  }
  const std::string trace_path =
      ArtifactDir() + "/bench_runtime_scaling.trace.json";
  if (const Status status =
          observability.tracer.WriteChromeTrace(trace_path);
      status.ok()) {
    std::printf("artifact: %s\n", trace_path.c_str());
  }
  return 0;
}
