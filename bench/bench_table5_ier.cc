// Reproduces Table 5: inner-edge ratio (ier) of the multilevel partitioner
// vs random partitioning as the number of partitions varies. The paper
// reports, on the MSN graph:
//
//   partitions      128     64     32     16
//   ier (ours)     50.3%  57.7%  65.5%  72.7%
//   ier (random)    1.4%   2.2%   4.1%   6.8%
//
// Shape targets: ier grows monotonically with partition size (monotonicity,
// Section 4.1) and the partitioner beats random by an order of magnitude.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/units.h"
#include "partition/recursive_partitioner.h"

int main() {
  using namespace surfer;
  using namespace surfer::bench;

  // Communities sized between the sweep's extremes: coarse partitions pack
  // whole communities (high ier), fine partitions split them (lower ier) --
  // the monotone regime of Table 5.
  BenchGraphOptions graph_options;
  graph_options.num_vertices = 1 << 15;
  graph_options.num_communities = 32;
  graph_options.avg_out_degree = 12.0;
  const Graph graph = MakeBenchGraph(graph_options);
  std::printf("graph: %s\n", ComputeGraphStats(graph).ToString().c_str());

  const std::vector<uint32_t> partition_counts = {128, 64, 32, 16};

  PrintHeader("Table 5: inner edge ratios with different partition counts");
  std::printf("%-28s", "Number of partitions");
  for (uint32_t p : partition_counts) {
    std::printf("%12u", p);
  }
  std::printf("\n%-28s", "Partition granularity");
  for (uint32_t p : partition_counts) {
    std::printf("%12s",
                FormatBytes(static_cast<double>(graph.StoredBytes()) / p)
                    .c_str());
  }

  std::printf("\n%-28s", "ier of our partitioning (%)");
  for (uint32_t p : partition_counts) {
    RecursivePartitionerOptions options;
    options.num_partitions = p;
    auto result = RecursivePartition(graph, options);
    SURFER_CHECK(result.ok()) << result.status().ToString();
    const PartitionQuality q = ComputeQuality(graph, result->partitioning);
    std::printf("%12.1f", 100.0 * q.inner_edge_ratio);
  }

  std::printf("\n%-28s", "ier of random partitioning (%)");
  for (uint32_t p : partition_counts) {
    auto random = RandomPartition(graph, p, 7);
    SURFER_CHECK(random.ok());
    const PartitionQuality q = ComputeQuality(graph, *random);
    std::printf("%12.1f", 100.0 * q.inner_edge_ratio);
  }
  std::printf(
      "\n\nPaper: ier falls from 72.7%% (16 partitions) to 50.3%% (128); "
      "random stays at ~1/P.\n");
  return 0;
}
