// Process-count scaling of the distributed TCP engine: NR at O4 runs once
// through the sequential PropagationRunner (host wall clock), once through
// the threaded RuntimeExecutor, and then through the distributed engine at
// 1/3/8 worker processes over localhost TCP. Every point is cross-checked
// for bit-identity against the sequential states and for exact per-link
// reconciliation against the analytic link_network_bytes() matrix — the two
// standing invariants of the engine. Emits BENCH_distributed.json for
// trending; the numbers are not tolerance-gated (localhost TCP wall clock is
// dominated by loopback and scheduler noise, and the correctness invariants
// are already hard-asserted here and in net_distributed_test).
//
// `--smoke` runs a reduced sweep (small graph, fewer iterations, one
// process point) so CI can exercise the binary in seconds.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "apps/network_ranking.h"
#include "bench/bench_common.h"
#include "core/engine.h"

int main(int argc, char** argv) {
  using namespace surfer;
  using namespace surfer::bench;
  using Clock = std::chrono::steady_clock;

  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  int iterations = 5;
  BenchGraphOptions graph_options;
  std::vector<uint32_t> process_points = {1, 3, 8};
  if (smoke) {
    iterations = 2;
    graph_options.num_vertices = 1 << 13;
    graph_options.num_communities = 8;
    process_points = {3};
  }
  const Graph graph = MakeBenchGraph(graph_options);
  const Topology topology = MakeScaledT2(8, 2, 1);
  auto engine = BuildEngine(graph, topology);
  BenchmarkSetup setup = engine->MakeSetup(OptimizationLevel::kO4);
  setup.sim_options = MakeScaledSimOptions();
  PropagationConfig config = PropagationConfig::ForLevel(OptimizationLevel::kO4);
  config.iterations = iterations;
  NetworkRankingApp app(graph.num_vertices());

  PrintHeader(std::string("Distributed engine: processes over localhost TCP"
                          " vs threads vs sequential") +
              (smoke ? " (smoke)" : ""));

  EngineOptions sequential_options;
  sequential_options.propagation = config;
  auto sequential_session = Engine::Open(setup, sequential_options);
  SURFER_CHECK(sequential_session.ok())
      << sequential_session.status().ToString();
  const auto seq_start = Clock::now();
  auto sequential = sequential_session->Run(app);
  SURFER_CHECK(sequential.ok()) << sequential.status().ToString();
  const double sequential_wall_s =
      std::chrono::duration<double>(Clock::now() - seq_start).count();
  std::printf("sequential runner: %.3f s (host wall clock)\n", sequential_wall_s);

  EngineOptions threaded_options = sequential_options;
  threaded_options.engine = EngineKind::kConcurrent;
  threaded_options.runtime.max_workers = 4;
  auto threaded_session = Engine::Open(setup, threaded_options);
  SURFER_CHECK(threaded_session.ok()) << threaded_session.status().ToString();
  auto threaded = threaded_session->Run(app);
  SURFER_CHECK(threaded.ok()) << threaded.status().ToString();
  const double threaded_wall_s = threaded->runtime_stats->wall_seconds;
  std::printf("threaded executor (4 workers): %.3f s\n\n", threaded_wall_s);

  obs::JsonValue baseline = MakeBenchBaseline("bench_distributed", smoke);
  baseline.Set("app", std::string("NR"));
  baseline.Set("optimization_level",
               OptimizationLevelName(OptimizationLevel::kO4));
  baseline.Set("iterations", static_cast<uint64_t>(iterations));
  baseline.Set("num_vertices", static_cast<uint64_t>(graph.num_vertices()));
  baseline.Set("num_machines", static_cast<uint64_t>(topology.num_machines()));
  baseline.Set("sequential_wall_s", sequential_wall_s);
  baseline.Set("threaded_wall_s", threaded_wall_s);

  std::printf("%-9s %12s %14s %14s %12s %13s\n", "Procs", "Wall (s)",
              "TCP frames", "TCP bytes", "Tasks", "Peak RSS(MB)");
  obs::JsonValue points = obs::JsonValue::MakeArray();
  const uint32_t n = topology.num_machines();
  for (const uint32_t procs : process_points) {
    EngineOptions distributed_options = sequential_options;
    distributed_options.engine = EngineKind::kDistributed;
    distributed_options.distributed.max_processes = procs;
    auto distributed_session = Engine::Open(setup, distributed_options);
    SURFER_CHECK(distributed_session.ok())
        << distributed_session.status().ToString();
    auto distributed = distributed_session->Run(app);
    SURFER_CHECK(distributed.ok()) << distributed.status().ToString();
    SURFER_CHECK(sequential->states.size() == distributed->states.size());
    SURFER_CHECK(std::memcmp(sequential->states.data(),
                             distributed->states.data(),
                             sequential->states.size() *
                                 sizeof(NetworkRankingApp::VertexState)) == 0)
        << "distributed engine diverged from the sequential runner at "
        << procs << " processes";
    for (uint32_t src = 0; src < n; ++src) {
      for (uint32_t dst = 0; dst < n; ++dst) {
        const size_t i = static_cast<size_t>(src) * n + dst;
        SURFER_CHECK(sequential->link_network_bytes[i] ==
                     distributed->link_network_bytes[i])
            << "link " << src << "->" << dst
            << " bytes diverge from the analytic model at " << procs
            << " processes";
      }
    }
    const runtime::RuntimeStats& stats = *distributed->runtime_stats;
    std::printf("%-9u %12.3f %14llu %14llu %12llu %13.1f\n", procs,
                stats.wall_seconds,
                static_cast<unsigned long long>(stats.tcp_frames_sent),
                static_cast<unsigned long long>(stats.tcp_bytes_sent),
                static_cast<unsigned long long>(stats.tasks_executed),
                static_cast<double>(stats.peak_rss_bytes) / (1024.0 * 1024.0));
    obs::JsonValue point = obs::JsonValue::MakeObject();
    point.Set("processes", static_cast<uint64_t>(procs));
    point.Set("wall_s", stats.wall_seconds);
    point.Set("bit_identical", true);
    point.Set("links_reconciled", true);
    point.Set("tcp_frames_sent", stats.tcp_frames_sent);
    point.Set("tcp_bytes_sent", stats.tcp_bytes_sent);
    point.Set("network_bytes", stats.TotalNetworkBytes());
    point.Set("tasks_executed", stats.tasks_executed);
    point.Set("barrier_generations", stats.barrier_generations);
    // Combine-plan counters, folded coordinator-side from the per-process
    // WorkerStatsMsg fields (NR is not frontier-skippable, so the skipped
    // count doubles as a pin that the gate stays inert for it).
    point.Set("combine_messages_scattered", stats.combine_messages_scattered);
    point.Set("combine_scatter_seconds", stats.combine_scatter_seconds);
    point.Set("frontier_vertices_skipped", stats.frontier_vertices_skipped);
    point.Set("peak_rss_bytes", stats.peak_rss_bytes);
    points.Append(std::move(point));
  }
  baseline.Set("points", std::move(points));

  std::printf("\n");
  WriteBenchBaseline("BENCH_distributed.json", baseline);
  return 0;
}
