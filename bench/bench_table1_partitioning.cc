// Reproduces Table 1: elapsed time of distributed partitioning under the
// ParMetis-like (bandwidth-oblivious) policy vs the bandwidth-aware policy
// on T1, T2(2,1), T2(4,1), T2(4,2) and T3, for the paper's 100 GB graph and
// 64 partitions on 32 machines.
//
// Paper (hours):      T1    T2(2,1)  T2(4,1)  T2(4,2)   T3
//   ParMetis         27.1     67.6     87.6    131.0   108.0
//   Bandwidth aware  27.1     33.8     43.9     58.3    64.9

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "partition/partitioning_cost.h"

int main() {
  using namespace surfer;
  using namespace surfer::bench;

  constexpr size_t kGraphBytes = 100ull << 30;
  constexpr uint32_t kPartitions = 64;

  struct Row {
    const char* name;
    Topology topology;
  };
  std::vector<Row> rows;
  rows.push_back({"T1", Topology::T1(32)});
  rows.push_back({"T2(2,1)", Topology::T2(32, 2, 1)});
  rows.push_back({"T2(4,1)", Topology::T2(32, 4, 1)});
  rows.push_back({"T2(4,2)", Topology::T2(32, 4, 2)});
  rows.push_back({"T3", Topology::T3(32)});

  PrintHeader(
      "Table 1: elapsed time of partitioning on different topologies (hours)");
  std::printf("%-18s", "Topology");
  for (const Row& row : rows) {
    std::printf("%10s", row.name);
  }
  std::printf("\n");

  std::vector<double> parmetis_hours;
  std::vector<double> ba_hours;
  for (const Row& row : rows) {
    auto parmetis = EstimatePartitioningTime(
        row.topology, kGraphBytes, kPartitions, MachineGroupingPolicy::kRandom);
    auto ba = EstimatePartitioningTime(row.topology, kGraphBytes, kPartitions,
                                       MachineGroupingPolicy::kBandwidthAware);
    SURFER_CHECK(parmetis.ok() && ba.ok());
    parmetis_hours.push_back(parmetis->total_seconds / 3600.0);
    ba_hours.push_back(ba->total_seconds / 3600.0);
  }

  std::printf("%-18s", "ParMetis-like");
  for (double h : parmetis_hours) {
    std::printf("%10.1f", h);
  }
  std::printf("\n%-18s", "Bandwidth aware");
  for (double h : ba_hours) {
    std::printf("%10.1f", h);
  }
  std::printf("\n%-18s", "Improvement");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::printf("%9.0f%%", 100.0 * (1.0 - ba_hours[i] / parmetis_hours[i]));
  }
  std::printf(
      "\n\nPaper: improvement 0%% on T1 (uniform bandwidth) and 39-55%% on "
      "the uneven topologies.\n");
  return 0;
}
