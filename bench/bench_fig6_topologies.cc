// Reproduces Figure 6: impact of bandwidth-aware partitioning on different
// network topologies. Optimized propagation (local optimizations on) runs
// with the bandwidth-aware storage layout vs the ParMetis-like layout on the
// T2 variants and T3.
//
// Shape target: the bandwidth-aware layout's advantage grows with topology
// unevenness, up to ~71% in the paper.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

int main() {
  using namespace surfer;
  using namespace surfer::bench;

  const Graph graph = MakeBenchGraph();
  std::printf("graph: %s\n", ComputeGraphStats(graph).ToString().c_str());

  struct Row {
    const char* name;
    Topology topology;
  };
  std::vector<Row> rows;
  rows.push_back({"T2(2,1)", MakeScaledT2(32, 2, 1)});
  rows.push_back({"T2(4,1)", MakeScaledT2(32, 4, 1)});
  rows.push_back({"T2(4,2)", MakeScaledT2(32, 4, 2)});
  rows.push_back({"T3", MakeScaledT3(32)});

  const BenchmarkApp* nr = FindBenchmarkApp("NR");
  SURFER_CHECK(nr != nullptr);

  PrintHeader(
      "Figure 6: optimized propagation (NR) with vs without bandwidth-aware "
      "layout");
  std::printf("%-10s %16s %16s %14s\n", "Topology", "ParMetis-like (s)",
              "Bandwidth-aware (s)", "Improvement");
  for (Row& row : rows) {
    auto engine = BuildEngine(graph, row.topology, 64);
    const AppRunResult baseline =
        RunPropagation(*engine, *nr, OptimizationLevel::kO3);
    const AppRunResult aware =
        RunPropagation(*engine, *nr, OptimizationLevel::kO4);
    std::printf("%-10s %16.1f %16.1f %13.1f%%\n", row.name,
                baseline.metrics.response_time_s,
                aware.metrics.response_time_s,
                100.0 * (1.0 - aware.metrics.response_time_s /
                                   baseline.metrics.response_time_s));
  }
  std::printf(
      "\nPaper: bandwidth-aware partitioning improves propagation by up to "
      "71%% on uneven topologies.\n");
  return 0;
}
