// Reproduces Figure 11: scalability of propagation-based Surfer — the number
// of machines grows from 8 to 32 while the synthetic graph grows
// proportionally. Shape target: response time stays roughly flat (slightly
// decreasing in the paper), i.e. Surfer absorbs proportional load growth
// with proportional hardware.

#include <bit>
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace surfer;
  using namespace surfer::bench;

  const BenchmarkApp* nr = FindBenchmarkApp("NR");
  SURFER_CHECK(nr != nullptr);

  PrintHeader("Figure 11: response time of P-Surfer, graph scaled with cluster");
  std::printf("%-10s %-12s %-12s %16s\n", "Machines", "Vertices", "Edges",
              "NR response (s)");
  // One observability sink across the sweep: the trace shows the four
  // cluster sizes back to back; the metrics accumulate over all of them.
  BenchObservability observability;
  RunMetrics last_metrics;
  for (uint32_t machines : {8u, 16u, 24u, 32u}) {
    BenchGraphOptions graph_options;
    // Scale vertices with machines; keep the per-machine share constant.
    graph_options.num_vertices = (1u << 14) * machines / 8;
    graph_options.num_communities = machines / 2;
    const Graph graph = MakeBenchGraph(graph_options);
    const Topology topology = MakeScaledT1(machines);
    // Partitions scale with the data (the paper's memory rule), rounded up
    // to the next power of two as the sketch requires.
    auto engine = BuildEngine(graph, topology, std::bit_ceil(2 * machines));
    const AppRunResult result =
        RunPropagation(*engine, *nr, OptimizationLevel::kO4, &observability);
    last_metrics = result.metrics;
    std::printf("%-10u %-12u %-12llu %16.1f\n", machines,
                graph.num_vertices(),
                static_cast<unsigned long long>(graph.num_edges()),
                result.metrics.response_time_s);
  }
  std::printf(
      "\nPaper: response time slightly decreases as machines and graph size "
      "grow together - good scalability.\n");
  WriteBenchArtifacts("bench_fig11_scalability", &last_metrics, &observability,
                      "NR at O4; machines swept 8..32 with the graph scaled "
                      "proportionally; run section is the 32-machine point");
  return 0;
}
