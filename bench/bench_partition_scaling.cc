// Host-side scaling of the task-parallel multilevel partitioner: the
// standard bench graph is partitioned 64 ways once through the sequential
// path (num_threads = 0) and then at 1/2/4/8 worker threads. Emits the
// machine-readable perf baseline BENCH_partition.json so CI trends
// partitioning wall clock — the headline preprocessing cost of PAPER.md
// Table 1 — over time. Every threaded point is cross-checked for
// bit-identity against the sequential assignment and sketch cuts: a speedup
// that changes the partitioning is a bug, not a win.
//
// `--smoke` runs a reduced sweep (small graph, one threaded point) so CI can
// exercise the binary in seconds without polluting baselines.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "bench/bench_common.h"
#include "partition/recursive_partitioner.h"

int main(int argc, char** argv) {
  using namespace surfer;
  using namespace surfer::bench;
  using Clock = std::chrono::steady_clock;

  const bool smoke =
      argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  BenchGraphOptions graph_options;
  uint32_t num_partitions = 64;
  std::vector<uint32_t> thread_points = {1, 2, 4, 8};
  if (smoke) {
    graph_options.num_vertices = 1 << 13;
    graph_options.num_communities = 8;
    num_partitions = 16;
    thread_points = {2};
  }
  const Graph graph = MakeBenchGraph(graph_options);

  PrintHeader(std::string("Partition scaling: task-parallel recursive "
                          "bisection vs sequential") +
              (smoke ? " (smoke)" : ""));

  RecursivePartitionerOptions options;
  options.num_partitions = num_partitions;
  options.num_threads = 0;
  const auto seq_start = Clock::now();
  auto sequential = RecursivePartition(graph, options);
  const double sequential_wall_s =
      std::chrono::duration<double>(Clock::now() - seq_start).count();
  SURFER_CHECK(sequential.ok()) << sequential.status().ToString();
  std::printf("sequential partitioner: %.3f s (host wall clock)\n\n",
              sequential_wall_s);

  obs::JsonValue baseline = MakeBenchBaseline("bench_partition_scaling", smoke);
  baseline.Set("num_vertices", static_cast<uint64_t>(graph.num_vertices()));
  baseline.Set("num_edges", static_cast<uint64_t>(graph.num_edges()));
  baseline.Set("num_partitions", static_cast<uint64_t>(num_partitions));
  baseline.Set("sequential_wall_s", sequential_wall_s);

  std::printf("%-9s %12s %9s %14s\n", "Threads", "Wall (s)", "Speedup",
              "Bit-identical");
  obs::JsonValue points = obs::JsonValue::MakeArray();
  for (uint32_t threads : thread_points) {
    options.num_threads = threads;
    const auto start = Clock::now();
    auto threaded = RecursivePartition(graph, options);
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    SURFER_CHECK(threaded.ok()) << threaded.status().ToString();
    bool identical = threaded->partitioning.assignment ==
                     sequential->partitioning.assignment;
    for (uint32_t node = 1; node < num_partitions; ++node) {
      identical = identical && threaded->sketch.BisectionCut(node) ==
                                   sequential->sketch.BisectionCut(node);
    }
    SURFER_CHECK(identical)
        << "partitioner diverged from the sequential path at " << threads
        << " threads";
    const double speedup = sequential_wall_s / wall_s;
    std::printf("%-9u %12.3f %8.2fx %14s\n", threads, wall_s, speedup, "yes");
    obs::JsonValue point = obs::JsonValue::MakeObject();
    point.Set("threads", static_cast<uint64_t>(threads));
    point.Set("wall_s", wall_s);
    point.Set("speedup", speedup);
    point.Set("bit_identical", identical);
    points.Append(std::move(point));
  }
  baseline.Set("points", std::move(points));

  std::printf("\n");
  WriteBenchBaseline("BENCH_partition.json", baseline);
  return 0;
}
