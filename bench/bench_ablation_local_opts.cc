// Ablation (design-choice bench, not a paper table): local propagation and
// local combination in isolation. The paper evaluates them only jointly
// (O3/O4); this bench separates the two effects:
//   - local propagation alone removes the inner-message disk materialization
//     but leaves cross-partition traffic unmerged;
//   - local combination alone merges cross-partition messages but still
//     spills inner messages to disk.

#include <cstdio>

#include "apps/network_ranking.h"
#include "apps/two_hop_friends.h"
#include "bench/bench_common.h"
#include "common/units.h"
#include "propagation/runner.h"

namespace {

using namespace surfer;
using namespace surfer::bench;

template <typename App>
RunMetrics RunWithFlags(const SurferEngine& engine, App app,
                        bool local_propagation, bool local_combination,
                        int iterations) {
  BenchmarkSetup setup = engine.MakeSetup(OptimizationLevel::kO4);
  setup.sim_options = MakeScaledSimOptions();
  PropagationConfig config;
  config.local_propagation = local_propagation;
  config.local_combination = local_combination;
  config.iterations = iterations;
  PropagationRunner<App> runner(setup.graph, setup.placement, setup.topology,
                                app, config);
  auto metrics = runner.Run(setup.sim_options);
  SURFER_CHECK(metrics.ok());
  return *metrics;
}

template <typename App>
void Report(const char* name, const SurferEngine& engine, App app,
            int iterations) {
  struct Config {
    const char* label;
    bool local_propagation;
    bool local_combination;
  };
  const Config configs[] = {
      {"neither (O1-style)", false, false},
      {"local propagation only", true, false},
      {"local combination only", false, true},
      {"both (O4-style)", true, true},
  };
  std::printf("\n%s:\n%-26s %14s %14s %14s\n", name, "configuration",
              "response (s)", "network MiB", "disk MiB");
  for (const Config& config : configs) {
    const RunMetrics m =
        RunWithFlags(engine, app, config.local_propagation,
                     config.local_combination, iterations);
    std::printf("%-26s %14.1f %14.2f %14.2f\n", config.label,
                m.response_time_s, m.network_bytes / kMiB,
                m.disk_bytes / kMiB);
  }
}

}  // namespace

int main() {
  const Graph graph = MakeBenchGraph();
  const Topology topology = MakeScaledT1(32);
  auto engine = BuildEngine(graph, topology, 64);
  std::printf("graph: %s\n", ComputeGraphStats(graph).ToString().c_str());

  PrintHeader("Ablation: local propagation vs local combination");
  Report("NR (message-light, associative)", *engine,
         NetworkRankingApp(graph.num_vertices()), 3);
  Report("TFL (message-heavy lists)", *engine,
         TwoHopFriendsApp(&engine->partitioned_graph().encoding()), 1);
  std::printf(
      "\nReading: local combination (per-target merging of local and remote "
      "messages) carries most of the\nsavings on these graphs; local "
      "propagation's share tracks the inner-vertex ratio, which is modest\n"
      "at this scale. Both effects compose in the 'both' row (the paper's "
      "O4).\n");
  return 0;
}
