#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"

namespace surfer {
namespace {

TEST(RmatTest, ProducesRequestedScale) {
  RmatOptions opt;
  opt.num_vertices = 1000;  // rounded up to 1024
  opt.num_edges = 8000;
  auto g = GenerateRmat(opt);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 1024u);
  // Dedupe removes some edges, but most survive.
  EXPECT_GT(g->num_edges(), 6000u);
  EXPECT_LE(g->num_edges(), 8000u);
}

TEST(RmatTest, DeterministicBySeed) {
  RmatOptions opt;
  opt.num_vertices = 256;
  opt.num_edges = 1024;
  opt.seed = 99;
  auto a = GenerateRmat(opt);
  auto b = GenerateRmat(opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  opt.seed = 100;
  auto c = GenerateRmat(opt);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(*a == *c);
}

TEST(RmatTest, NoSelfLoops) {
  auto g = GenerateRmat({.num_vertices = 128, .num_edges = 1024, .seed = 3});
  ASSERT_TRUE(g.ok());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_FALSE(g->HasEdge(v, v));
  }
}

TEST(RmatTest, SkewedQuadrantsProduceSkewedDegrees) {
  RmatOptions skewed;
  skewed.num_vertices = 1 << 12;
  skewed.num_edges = 1 << 15;
  skewed.a = 0.7;
  skewed.b = 0.1;
  skewed.c = 0.1;
  skewed.d = 0.1;
  RmatOptions uniform = skewed;
  uniform.a = uniform.b = uniform.c = uniform.d = 0.25;
  auto gs = GenerateRmat(skewed);
  auto gu = GenerateRmat(uniform);
  ASSERT_TRUE(gs.ok());
  ASSERT_TRUE(gu.ok());
  EXPECT_GT(ComputeGraphStats(*gs).degree_gini,
            ComputeGraphStats(*gu).degree_gini);
}

TEST(RmatTest, RejectsBadProbabilities) {
  RmatOptions opt;
  opt.a = 0.5;
  opt.b = 0.5;
  opt.c = 0.5;
  opt.d = 0.5;
  EXPECT_FALSE(GenerateRmat(opt).ok());
  opt = RmatOptions{};
  opt.num_vertices = 1;
  EXPECT_FALSE(GenerateRmat(opt).ok());
}

TEST(ErdosRenyiTest, ScaleAndDeterminism) {
  ErdosRenyiOptions opt;
  opt.num_vertices = 500;
  opt.num_edges = 3000;
  auto a = GenerateErdosRenyi(opt);
  auto b = GenerateErdosRenyi(opt);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->num_vertices(), 500u);
  EXPECT_GT(a->num_edges(), 2900u);
  EXPECT_EQ(*a, *b);
}

TEST(ErdosRenyiTest, RejectsTinyGraph) {
  ErdosRenyiOptions opt;
  opt.num_vertices = 1;
  EXPECT_FALSE(GenerateErdosRenyi(opt).ok());
}

TEST(CompositeTest, ComponentsAreConnectedByRewiredEdges) {
  CompositeSmallWorldOptions opt;
  opt.num_components = 8;
  opt.vertices_per_component = 256;
  opt.edges_per_component = 2048;
  opt.rewire_ratio = 0.05;
  auto g = GenerateCompositeSmallWorld(opt);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 8u * 256u);
  // Count cross-component edges: should be roughly the rewired share.
  uint64_t cross = 0;
  for (VertexId u = 0; u < g->num_vertices(); ++u) {
    for (VertexId v : g->OutNeighbors(u)) {
      if (u / 256 != v / 256) {
        ++cross;
      }
    }
  }
  const double ratio =
      static_cast<double>(cross) / static_cast<double>(g->num_edges());
  EXPECT_GT(ratio, 0.02);
  EXPECT_LT(ratio, 0.10);
}

TEST(CompositeTest, ZeroRewireKeepsComponentsDisconnected) {
  CompositeSmallWorldOptions opt;
  opt.num_components = 4;
  opt.vertices_per_component = 128;
  opt.edges_per_component = 1024;
  opt.rewire_ratio = 0.0;
  auto g = GenerateCompositeSmallWorld(opt);
  ASSERT_TRUE(g.ok());
  for (VertexId u = 0; u < g->num_vertices(); ++u) {
    for (VertexId v : g->OutNeighbors(u)) {
      EXPECT_EQ(u / 128, v / 128);
    }
  }
}

TEST(CompositeTest, RejectsBadOptions) {
  CompositeSmallWorldOptions opt;
  opt.num_components = 0;
  EXPECT_FALSE(GenerateCompositeSmallWorld(opt).ok());
  opt = CompositeSmallWorldOptions{};
  opt.rewire_ratio = 1.5;
  EXPECT_FALSE(GenerateCompositeSmallWorld(opt).ok());
}

TEST(SocialGraphTest, HasSocialShape) {
  SocialGraphOptions opt;
  opt.num_vertices = 1 << 13;
  opt.avg_out_degree = 10.0;
  opt.num_communities = 16;
  auto g = GenerateSocialGraph(opt);
  ASSERT_TRUE(g.ok());
  const GraphStats stats = ComputeGraphStats(*g);
  EXPECT_EQ(stats.num_vertices, 1u << 13);
  // Heavy-tailed: Gini well above a uniform random graph's.
  EXPECT_GT(stats.degree_gini, 0.5);
  // Most of the requested volume survives dedupe.
  EXPECT_GT(stats.avg_out_degree, 5.0);
}

TEST(SocialGraphTest, DeterministicBySeed) {
  SocialGraphOptions opt;
  opt.num_vertices = 1 << 10;
  auto a = GenerateSocialGraph(opt);
  auto b = GenerateSocialGraph(opt);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, *b);
}

class GeneratorSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorSeedSweep, SocialGraphAlwaysValid) {
  SocialGraphOptions opt;
  opt.num_vertices = 1 << 10;
  opt.seed = GetParam();
  auto g = GenerateSocialGraph(opt);
  ASSERT_TRUE(g.ok());
  // CSR invariants: neighbors sorted, in range, no self loops from RMAT.
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    const auto nbrs = g->OutNeighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    for (VertexId n : nbrs) {
      EXPECT_LT(n, g->num_vertices());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedSweep,
                         ::testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
}  // namespace surfer
