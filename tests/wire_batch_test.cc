#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "propagation/app_traits.h"
#include "runtime/wire_batch.h"

namespace surfer {
namespace runtime {
namespace {

/// Minimal mergeable app for staging tests: uint32 messages, Merge = sum.
struct SumApp {
  using VertexState = uint32_t;
  using Message = uint32_t;

  VertexState InitState(VertexId v, std::span<const VertexId>) const {
    return v;
  }
  void Transfer(VertexId, const VertexState&, std::span<const VertexId>,
                PropagationEmitter<Message>&) const {}
  void Combine(VertexId, VertexState& state, std::span<const VertexId>,
               std::vector<Message>& messages) const {
    for (Message m : messages) {
      state += m;
    }
  }
  Message Merge(const Message& a, const Message& b) const { return a + b; }
  size_t MessageBytes(const Message&) const { return sizeof(Message); }
  size_t StateBytes(const VertexState&) const { return sizeof(VertexState); }
};
static_assert(PropagationApp<SumApp>);
static_assert(MergeableApp<SumApp>);
static_assert(WireSerializableApp<SumApp>);

using Real = std::vector<std::pair<VertexId, uint32_t>>;
using Virtual = std::vector<std::pair<uint64_t, uint32_t>>;

/// Stages one task through a fresh stager and collects every sealed batch.
struct Harness {
  SumApp app;
  WireBufferPool pool;
  WireBatchOptions options;
  std::vector<WireBatch> sent;

  explicit Harness(WireBatchOptions opts = {}) : options(opts) {}

  WireStager<SumApp> MakeStager(bool combine = true) {
    return WireStager<SumApp>(&app, options, &pool, /*src_machine=*/0,
                              /*num_machines=*/4, combine);
  }
  auto Sender() {
    return [this](WireBatch&& batch) {
      sent.push_back(std::move(batch));
      return 0.0;
    };
  }
  /// Decodes all sent batches back into per-kind record streams,
  /// concatenating chunked segments in arrival order.
  std::pair<Real, Virtual> Decode() const {
    Real real;
    Virtual virtuals;
    for (const WireBatch& batch : sent) {
      WireBatchReader<uint32_t> reader(batch);
      while (auto segment = reader.Next()) {
        real.insert(real.end(), segment->real.begin(), segment->real.end());
        virtuals.insert(virtuals.end(), segment->virtuals.begin(),
                        segment->virtuals.end());
      }
    }
    return {std::move(real), std::move(virtuals)};
  }
};

// ------------------------------------------------------- round trips

TEST(WireBatchTest, EmptyTaskSealsNothing) {
  Harness h;
  WireStager<SumApp> stager = h.MakeStager();
  Real real;
  Virtual virtuals;
  stager.StageTask(0, 1, /*dst_machine=*/1, real, virtuals, h.Sender());
  stager.FlushAll(h.Sender());
  EXPECT_TRUE(h.sent.empty());
  EXPECT_EQ(stager.stats().batches_sealed, 0u);
  EXPECT_EQ(stager.stats().segments_sealed, 0u);
}

TEST(WireBatchTest, SingleMessageRoundTrip) {
  Harness h;
  WireStager<SumApp> stager = h.MakeStager();
  Real real = {{VertexId{42}, 7u}};
  Virtual virtuals;
  stager.StageTask(3, 5, /*dst_machine=*/2, real, virtuals, h.Sender());
  stager.FlushAll(h.Sender());

  ASSERT_EQ(h.sent.size(), 1u);
  const WireBatch& batch = h.sent[0];
  EXPECT_EQ(batch.src_machine, 0u);
  EXPECT_EQ(batch.dst_machine, 2u);
  EXPECT_EQ(batch.num_segments, 1u);
  EXPECT_EQ(batch.num_messages, 1u);
  EXPECT_EQ(batch.priced_bytes, sizeof(uint32_t));
  WireBatchReader<uint32_t> reader(batch);
  auto segment = reader.Next();
  ASSERT_TRUE(segment.has_value());
  EXPECT_EQ(segment->header.src_partition, 3u);
  EXPECT_EQ(segment->header.dst_partition, 5u);
  EXPECT_EQ(segment->header.kind, kWireSegmentReal);
  ASSERT_EQ(segment->real.size(), 1u);
  EXPECT_EQ(segment->real[0], (std::pair<VertexId, uint32_t>{42u, 7u}));
  EXPECT_FALSE(reader.Next().has_value());
}

TEST(WireBatchTest, VirtualRecordsRoundTripWith64BitTargets) {
  Harness h;
  WireStager<SumApp> stager = h.MakeStager();
  Real real = {{1u, 10u}};
  Virtual virtuals = {{1ull << 40, 3u}, {7u, 4u}};
  stager.StageTask(0, 2, /*dst_machine=*/1, real, virtuals, h.Sender());
  stager.FlushAll(h.Sender());

  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].num_segments, 2u);  // one real + one virtual
  auto [got_real, got_virtual] = h.Decode();
  EXPECT_EQ(got_real, (Real{{1u, 10u}}));
  EXPECT_EQ(got_virtual, (Virtual{{1ull << 40, 3u}, {7u, 4u}}));
}

TEST(WireBatchTest, FullBatchChunksStreamAcrossBatchesLosslessly) {
  // A cap that fits the header plus only a few records forces mid-stream
  // size flushes: the stream must arrive chunked but complete, in order,
  // with the priced bytes preserved across chunks.
  WireBatchOptions options;
  options.max_batch_bytes = sizeof(WireSegmentHeader) + 4 * 8;
  Harness h(options);
  WireStager<SumApp> stager = h.MakeStager();
  Real real;
  for (uint32_t i = 0; i < 100; ++i) {
    real.emplace_back(VertexId{i}, i * 2 + 1);
  }
  const Real expected = real;
  Virtual virtuals;
  stager.StageTask(1, 2, /*dst_machine=*/3, real, virtuals, h.Sender());
  stager.FlushAll(h.Sender());

  EXPECT_GT(h.sent.size(), 1u);
  uint64_t priced_total = 0;
  for (const WireBatch& batch : h.sent) {
    EXPECT_LE(batch.wire_size(), options.max_batch_bytes);
    priced_total += batch.priced_bytes;
  }
  EXPECT_EQ(priced_total, 100 * sizeof(uint32_t));
  auto [got_real, got_virtual] = h.Decode();
  EXPECT_EQ(got_real, expected);
  EXPECT_TRUE(got_virtual.empty());
  EXPECT_GT(stager.stats().flush_size, 0u);
}

// --------------------------------------------------- wire combination

TEST(WireBatchTest, StageTaskMergesDuplicateTargetsBeforePricing) {
  Harness h;
  WireStager<SumApp> stager = h.MakeStager(/*combine=*/true);
  Real real = {{5u, 1u}, {9u, 10u}, {5u, 2u}, {5u, 4u}};
  Virtual virtuals = {{77u, 1u}, {77u, 1u}};
  stager.StageTask(0, 1, /*dst_machine=*/1, real, virtuals, h.Sender());
  stager.FlushAll(h.Sender());

  EXPECT_EQ(stager.stats().messages_combined, 3u);  // two real + one virtual
  ASSERT_EQ(h.sent.size(), 1u);
  // 4 + 2 records collapse to 2 + 1; only post-merge records are priced.
  EXPECT_EQ(h.sent[0].num_messages, 3u);
  EXPECT_EQ(h.sent[0].priced_bytes, 3 * sizeof(uint32_t));
  auto [got_real, got_virtual] = h.Decode();
  ASSERT_EQ(got_real.size(), 2u);
  for (const auto& [target, value] : got_real) {
    EXPECT_EQ(value, target == 5u ? 7u : 10u);  // 1+2+4 merged by sum
  }
  EXPECT_EQ(got_virtual, (Virtual{{77u, 2u}}));
}

TEST(WireBatchTest, CombineOffKeepsEveryRecord) {
  Harness h;
  WireStager<SumApp> stager = h.MakeStager(/*combine=*/false);
  Real real = {{5u, 1u}, {5u, 2u}, {5u, 4u}};
  Virtual virtuals;
  stager.StageTask(0, 1, /*dst_machine=*/1, real, virtuals, h.Sender());
  stager.FlushAll(h.Sender());
  EXPECT_EQ(stager.stats().messages_combined, 0u);
  auto [got_real, got_virtual] = h.Decode();
  EXPECT_EQ(got_real, (Real{{5u, 1u}, {5u, 2u}, {5u, 4u}}));
}

// ------------------------------------------------------- flush policy

TEST(WireBatchTest, DeadlineFlushShipsIdleBatches) {
  WireBatchOptions options;
  options.flush_deadline_seconds = 0.0;  // everything is instantly overdue
  Harness h(options);
  WireStager<SumApp> stager = h.MakeStager();
  Real real = {{1u, 1u}};
  Virtual virtuals;
  stager.StageTask(0, 1, /*dst_machine=*/1, real, virtuals, h.Sender());
  EXPECT_TRUE(h.sent.empty());  // still open after the task
  stager.FlushExpired(h.Sender());
  EXPECT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(stager.stats().flush_deadline, 1u);
  EXPECT_EQ(stager.stats().flush_stage_end, 0u);
  stager.FlushExpired(h.Sender());  // nothing left open
  EXPECT_EQ(h.sent.size(), 1u);
}

TEST(WireBatchTest, StageEndFlushSealsEveryOpenDestination) {
  Harness h;
  WireStager<SumApp> stager = h.MakeStager();
  Virtual virtuals;
  for (MachineId dst = 1; dst < 4; ++dst) {
    Real real = {{dst, dst}};
    stager.StageTask(0, dst, dst, real, virtuals, h.Sender());
  }
  EXPECT_TRUE(h.sent.empty());
  stager.FlushAll(h.Sender());
  EXPECT_EQ(h.sent.size(), 3u);
  EXPECT_EQ(stager.stats().flush_stage_end, 3u);
  EXPECT_EQ(stager.stats().batches_sealed, 3u);
}

// ------------------------------------------------------- buffer pool

TEST(WireBufferPoolTest, RecyclesAllocationsWithoutLeakingOldBytes) {
  WireBufferPool pool;
  std::vector<uint8_t> buffer = pool.Acquire();
  EXPECT_EQ(pool.stats().acquires, 1u);
  EXPECT_EQ(pool.stats().reuses, 0u);

  buffer.assign(1024, 0xAB);
  const uint8_t* allocation = buffer.data();
  pool.Release(std::move(buffer));

  std::vector<uint8_t> recycled = pool.Acquire();
  EXPECT_EQ(pool.stats().acquires, 2u);
  EXPECT_EQ(pool.stats().reuses, 1u);
  // Same allocation back (capacity retained), handed out empty.
  EXPECT_EQ(recycled.data(), allocation);
  EXPECT_TRUE(recycled.empty());
  EXPECT_GE(recycled.capacity(), 1024u);
  // Growing it again must never expose the previous batch's bytes: the
  // release path poisons the stored contents with 0xDD and re-extension
  // value-initializes, so 0xAB is unrecoverable.
  recycled.resize(1024);
  for (uint8_t byte : recycled) {
    ASSERT_NE(byte, 0xAB);
  }
  pool.Release(std::move(recycled));
}

TEST(WireBufferPoolTest, EmptyBuffersAreNotPooled) {
  WireBufferPool pool;
  pool.Release(std::vector<uint8_t>{});  // capacity 0: nothing worth keeping
  std::vector<uint8_t> buffer = pool.Acquire();
  EXPECT_EQ(pool.stats().reuses, 0u);
  EXPECT_EQ(buffer.capacity(), 0u);
}

}  // namespace
}  // namespace runtime
}  // namespace surfer
