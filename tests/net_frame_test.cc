// Wire-framing contract tests over real socketpairs: magic/version
// validation, torn frames, mid-frame EOF, partial reads under a trickling
// writer, and the control-message codecs the distributed engine rides on.

#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/control.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/transport.h"

namespace surfer {
namespace net {
namespace {

std::pair<Socket, Socket> MustPair() {
  auto pair = Socket::Pair();
  EXPECT_TRUE(pair.ok()) << pair.status().ToString();
  return std::move(pair).value();
}

std::vector<uint8_t> Bytes(std::initializer_list<int> values) {
  std::vector<uint8_t> out;
  for (int v : values) {
    out.push_back(static_cast<uint8_t>(v));
  }
  return out;
}

TEST(NetFrameTest, RoundTripsTypedPayloads) {
  auto [a, b] = MustPair();
  const std::vector<uint8_t> payload = Bytes({1, 2, 3, 4, 5});
  ASSERT_TRUE(WriteFrame(a, FrameType::kData, payload).ok());
  ASSERT_TRUE(WriteFrame(a, FrameType::kEos).ok());

  auto first = ReadFrame(b);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->type, FrameType::kData);
  EXPECT_EQ(first->payload, payload);

  auto second = ReadFrame(b);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->type, FrameType::kEos);
  EXPECT_TRUE(second->payload.empty());
}

TEST(NetFrameTest, CleanEofBetweenFramesIsUnavailable) {
  auto [a, b] = MustPair();
  ASSERT_TRUE(WriteFrame(a, FrameType::kReady).ok());
  ASSERT_TRUE(ReadFrame(b).ok());
  a.Close();  // orderly peer exit
  auto eof = ReadFrame(b);
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kUnavailable);
}

TEST(NetFrameTest, EofInsideHeaderIsTornFrame) {
  auto [a, b] = MustPair();
  FrameHeader header;
  header.type = static_cast<uint16_t>(FrameType::kData);
  header.payload_bytes = 0;
  // Half a header, then close: the stream died mid-frame.
  ASSERT_TRUE(a.WriteFull(&header, sizeof(header) / 2).ok());
  a.Close();
  auto torn = ReadFrame(b);
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), StatusCode::kCorruption);
}

TEST(NetFrameTest, EofInsidePayloadIsTornFrame) {
  auto [a, b] = MustPair();
  FrameHeader header;
  header.type = static_cast<uint16_t>(FrameType::kData);
  header.payload_bytes = 100;
  ASSERT_TRUE(a.WriteFull(&header, sizeof(header)).ok());
  const std::vector<uint8_t> partial(10, 0xAB);
  ASSERT_TRUE(a.WriteFull(partial.data(), partial.size()).ok());
  a.Close();
  auto torn = ReadFrame(b);
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), StatusCode::kCorruption);
}

TEST(NetFrameTest, MagicMismatchIsCorruption) {
  auto [a, b] = MustPair();
  FrameHeader header;
  header.magic = 0xDEADBEEF;
  header.type = static_cast<uint16_t>(FrameType::kData);
  ASSERT_TRUE(a.WriteFull(&header, sizeof(header)).ok());
  auto bad = ReadFrame(b);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
}

TEST(NetFrameTest, VersionMismatchIsNotSupported) {
  auto [a, b] = MustPair();
  FrameHeader header;
  header.version = kFrameVersion + 1;
  header.type = static_cast<uint16_t>(FrameType::kData);
  ASSERT_TRUE(a.WriteFull(&header, sizeof(header)).ok());
  auto bad = ReadFrame(b);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotSupported);
}

TEST(NetFrameTest, OversizedLengthFieldIsRejectedBeforeAllocation) {
  auto [a, b] = MustPair();
  FrameHeader header;
  header.type = static_cast<uint16_t>(FrameType::kData);
  header.payload_bytes = kMaxFramePayloadBytes + 1;
  ASSERT_TRUE(a.WriteFull(&header, sizeof(header)).ok());
  auto bad = ReadFrame(b);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
}

TEST(NetFrameTest, PartialWritesReassembleIntoOneFrame) {
  // A writer that trickles the frame one byte at a time forces the reader
  // through its short-read loop on every byte; the frame must reassemble
  // exactly.
  auto [a, b] = MustPair();
  std::vector<uint8_t> payload(4096);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 31);
  }
  FrameHeader header;
  header.type = static_cast<uint16_t>(FrameType::kData);
  header.payload_bytes = payload.size();
  std::vector<uint8_t> stream(sizeof(header) + payload.size());
  std::memcpy(stream.data(), &header, sizeof(header));
  std::memcpy(stream.data() + sizeof(header), payload.data(), payload.size());

  std::thread writer([&a, &stream] {
    for (size_t i = 0; i < stream.size(); ++i) {
      ASSERT_TRUE(a.WriteFull(&stream[i], 1).ok());
    }
  });
  auto frame = ReadFrame(b);
  writer.join();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kData);
  EXPECT_EQ(frame->payload, payload);
}

TEST(NetFrameTest, WireBatchRoundTripsThroughAFrame) {
  runtime::WireBatch batch;
  batch.src_machine = 3;
  batch.dst_machine = 5;
  batch.num_segments = 2;
  batch.num_messages = 77;
  batch.priced_bytes = 1234;
  batch.payload = Bytes({9, 8, 7, 6, 5, 4});

  auto [a, b] = MustPair();
  ASSERT_TRUE(WriteFrame(a, FrameType::kData, EncodeWireBatch(batch)).ok());
  auto frame = ReadFrame(b);
  ASSERT_TRUE(frame.ok());
  auto decoded = DecodeWireBatch(frame->payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->src_machine, batch.src_machine);
  EXPECT_EQ(decoded->dst_machine, batch.dst_machine);
  EXPECT_EQ(decoded->num_segments, batch.num_segments);
  EXPECT_EQ(decoded->num_messages, batch.num_messages);
  EXPECT_EQ(decoded->priced_bytes, batch.priced_bytes);
  EXPECT_EQ(decoded->payload, batch.payload);
}

TEST(NetFrameTest, TruncatedWireBatchPayloadIsCorruption) {
  runtime::WireBatch batch;
  batch.src_machine = 1;
  batch.dst_machine = 2;
  batch.payload = Bytes({1, 2, 3, 4});
  std::vector<uint8_t> encoded = EncodeWireBatch(batch);
  encoded.pop_back();  // inner length field now disagrees with reality
  auto decoded = DecodeWireBatch(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(NetControlTest, RoundMsgRoundTrips) {
  RoundMsg msg;
  msg.seq = 42;
  msg.iteration = 3;
  msg.kind = RoundKind::kResend;
  msg.recovery = 1;
  msg.alive = {1, 0, 1};
  msg.exec = {0, kInvalidMachine, 2};
  msg.route = {0, 2, 2};
  msg.reexec = {kInvalidMachine, kInvalidMachine, 1};
  auto decoded = DecodeRound(EncodeRound(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->seq, msg.seq);
  EXPECT_EQ(decoded->iteration, msg.iteration);
  EXPECT_EQ(decoded->kind, msg.kind);
  EXPECT_EQ(decoded->recovery, msg.recovery);
  EXPECT_EQ(decoded->alive, msg.alive);
  EXPECT_EQ(decoded->exec, msg.exec);
  EXPECT_EQ(decoded->route, msg.route);
  EXPECT_EQ(decoded->reexec, msg.reexec);
}

TEST(NetControlTest, WorkerStatsRoundTripWithLinkMatrix) {
  WorkerStatsMsg msg;
  msg.tasks_executed = 10;
  msg.tasks_reexecuted = 2;
  msg.messages_sent = 12345;
  msg.tcp_bytes_sent = 999;
  msg.resend_bytes = 7;
  msg.replication_bytes = 13;
  msg.peak_rss_bytes = 1 << 20;
  msg.link_bytes = {0, 5, 10, 0};
  auto decoded = DecodeWorkerStats(EncodeWorkerStats(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->tasks_executed, msg.tasks_executed);
  EXPECT_EQ(decoded->tasks_reexecuted, msg.tasks_reexecuted);
  EXPECT_EQ(decoded->messages_sent, msg.messages_sent);
  EXPECT_EQ(decoded->tcp_bytes_sent, msg.tcp_bytes_sent);
  EXPECT_EQ(decoded->resend_bytes, msg.resend_bytes);
  EXPECT_EQ(decoded->replication_bytes, msg.replication_bytes);
  EXPECT_EQ(decoded->peak_rss_bytes, msg.peak_rss_bytes);
  EXPECT_EQ(decoded->link_bytes, msg.link_bytes);
}

TEST(NetControlTest, StateUpdateRoundTrips) {
  StateUpdateMsg msg;
  msg.partition = 4;
  msg.iteration = 2;
  msg.begin = 100;
  msg.count = 3;
  msg.states = Bytes({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});
  msg.virtual_count = 1;
  msg.virtuals = Bytes({42, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4});
  auto decoded = DecodeStateUpdate(EncodeStateUpdate(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->partition, msg.partition);
  EXPECT_EQ(decoded->iteration, msg.iteration);
  EXPECT_EQ(decoded->begin, msg.begin);
  EXPECT_EQ(decoded->count, msg.count);
  EXPECT_EQ(decoded->states, msg.states);
  EXPECT_EQ(decoded->virtual_count, msg.virtual_count);
  EXPECT_EQ(decoded->virtuals, msg.virtuals);
}

TEST(NetControlTest, PlacementCarriesFaultPlansAndTolerance) {
  PlacementMsg msg;
  msg.num_machines = 8;
  msg.num_partitions = 2;
  msg.replication = 3;
  msg.fault_tolerant = 1;
  msg.replicas = {0, 1, 2, 3, 4, 5};
  runtime::RuntimeFaultPlan plan;
  plan.machine = 5;
  plan.iteration = 1;
  plan.stage = runtime::RuntimeStage::kCombine;
  plan.after_tasks = 2;
  msg.faults.push_back(plan);
  auto decoded = DecodePlacement(EncodePlacement(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_machines, msg.num_machines);
  EXPECT_EQ(decoded->fault_tolerant, 1);
  EXPECT_EQ(decoded->replicas, msg.replicas);
  ASSERT_EQ(decoded->faults.size(), 1u);
  EXPECT_EQ(decoded->faults[0].machine, plan.machine);
  EXPECT_EQ(decoded->faults[0].iteration, plan.iteration);
  EXPECT_EQ(decoded->faults[0].stage, plan.stage);
  EXPECT_EQ(decoded->faults[0].after_tasks, plan.after_tasks);
}

TEST(NetFrameTest, FramesCarryPerLinkSequenceAndSendStamp) {
  auto [a, b] = MustPair();
  ASSERT_TRUE(WriteFrame(a, FrameType::kData, Bytes({1})).ok());
  ASSERT_TRUE(WriteFrame(a, FrameType::kEos).ok());
  ASSERT_TRUE(WriteFrame(a, FrameType::kData, Bytes({2})).ok());

  uint64_t prev_seq = 0;
  for (int i = 0; i < 3; ++i) {
    auto frame = ReadFrame(b);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    // Sequence numbers are per link and dense: 1, 2, 3 across frame types.
    EXPECT_EQ(frame->link_seq, prev_seq + 1);
    prev_seq = frame->link_seq;
    EXPECT_GT(frame->send_unix_us, 0u);
    // Same host, same clock: receive cannot precede send.
    EXPECT_GE(frame->recv_unix_us, frame->send_unix_us);
  }
  EXPECT_EQ(a.frames_written(), 3u);
}

// v2 header evolution: a frame from a hypothetical v1 peer (pre-stamp
// 16-byte header era, still sending version=1) must be refused as
// NotSupported — protocol mismatch, not corruption.
TEST(NetFrameTest, OldVersionPeerFrameIsNotSupported) {
  auto [a, b] = MustPair();
  FrameHeader header;
  header.version = 1;
  header.type = static_cast<uint16_t>(FrameType::kHeartbeat);
  ASSERT_TRUE(a.WriteFull(&header, sizeof(header)).ok());
  auto bad = ReadFrame(b);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotSupported);
}

TEST(NetFrameTest, HeartbeatFrameRoundTrips) {
  HeartbeatMsg msg;
  msg.proc = 2;
  msg.stage = 1;
  msg.iteration = 4;
  msg.round_seq = 17;
  msg.mailbox_frames = 5;
  msg.inflight_bytes = 4096;
  msg.staged_wire_bytes = 512;
  msg.rss_bytes = 10 << 20;
  msg.barrier_waiting = 1;
  msg.unix_us = 1234567890;

  auto [a, b] = MustPair();
  ASSERT_TRUE(WriteFrame(a, FrameType::kHeartbeat, EncodeHeartbeat(msg)).ok());
  auto frame = ReadFrame(b);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kHeartbeat);
  auto decoded = DecodeHeartbeat(frame->payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->proc, msg.proc);
  EXPECT_EQ(decoded->stage, msg.stage);
  EXPECT_EQ(decoded->iteration, msg.iteration);
  EXPECT_EQ(decoded->round_seq, msg.round_seq);
  EXPECT_EQ(decoded->mailbox_frames, msg.mailbox_frames);
  EXPECT_EQ(decoded->inflight_bytes, msg.inflight_bytes);
  EXPECT_EQ(decoded->staged_wire_bytes, msg.staged_wire_bytes);
  EXPECT_EQ(decoded->rss_bytes, msg.rss_bytes);
  EXPECT_EQ(decoded->barrier_waiting, msg.barrier_waiting);
  EXPECT_EQ(decoded->unix_us, msg.unix_us);
}

TEST(NetFrameTest, TornHeartbeatFrameIsCorruption) {
  // The stream dies mid-heartbeat: header promises a full payload, the
  // socket closes after half of it — corruption taxonomy, not clean EOF.
  HeartbeatMsg msg;
  msg.proc = 1;
  const std::vector<uint8_t> payload = EncodeHeartbeat(msg);
  auto [a, b] = MustPair();
  FrameHeader header;
  header.type = static_cast<uint16_t>(FrameType::kHeartbeat);
  header.payload_bytes = payload.size();
  ASSERT_TRUE(a.WriteFull(&header, sizeof(header)).ok());
  ASSERT_TRUE(a.WriteFull(payload.data(), payload.size() / 2).ok());
  a.Close();
  auto torn = ReadFrame(b);
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), StatusCode::kCorruption);
}

TEST(NetControlTest, ShortHeartbeatPayloadIsCorruption) {
  HeartbeatMsg msg;
  std::vector<uint8_t> encoded = EncodeHeartbeat(msg);
  encoded.resize(encoded.size() - 3);
  auto decoded = DecodeHeartbeat(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(NetControlTest, ClockSyncPayloadsRoundTrip) {
  ClockPingMsg ping;
  ping.seq = 3;
  auto ping_decoded = DecodeClockPing(EncodeClockPing(ping));
  ASSERT_TRUE(ping_decoded.ok()) << ping_decoded.status().ToString();
  EXPECT_EQ(ping_decoded->seq, ping.seq);

  ClockPongMsg pong;
  pong.seq = 3;
  pong.t1 = 1000;
  pong.t2 = 1800;
  auto pong_decoded = DecodeClockPong(EncodeClockPong(pong));
  ASSERT_TRUE(pong_decoded.ok()) << pong_decoded.status().ToString();
  EXPECT_EQ(pong_decoded->seq, pong.seq);
  EXPECT_EQ(pong_decoded->t1, pong.t1);
  EXPECT_EQ(pong_decoded->t2, pong.t2);

  ClockOffsetMsg offset;
  offset.offset_us = -4200;
  offset.uncertainty_us = 37;
  auto offset_decoded = DecodeClockOffset(EncodeClockOffset(offset));
  ASSERT_TRUE(offset_decoded.ok()) << offset_decoded.status().ToString();
  EXPECT_EQ(offset_decoded->offset_us, offset.offset_us);
  EXPECT_EQ(offset_decoded->uncertainty_us, offset.uncertainty_us);
}

TEST(NetControlTest, WorkerStatsRoundTripsHealthPlaneFields) {
  WorkerStatsMsg msg;
  msg.heartbeats_sent = 9;
  msg.clock_synced = 1;
  msg.clock_offset_us = {0, -150, 2300};
  msg.clock_uncertainty_us = {0, 12, 40};
  RoundLinkStat link;
  link.seq = 6;
  link.iteration = 2;
  link.kind = 1;
  link.from_proc = 1;
  link.frames = 4;
  link.bytes = 8192;
  link.latency_sum_us = 1200;
  link.latency_max_us = 500;
  link.first_send_us = 111;
  link.last_recv_us = 999;
  msg.round_link_stats.push_back(link);
  auto decoded = DecodeWorkerStats(EncodeWorkerStats(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->heartbeats_sent, msg.heartbeats_sent);
  EXPECT_EQ(decoded->clock_synced, msg.clock_synced);
  EXPECT_EQ(decoded->clock_offset_us, msg.clock_offset_us);
  EXPECT_EQ(decoded->clock_uncertainty_us, msg.clock_uncertainty_us);
  ASSERT_EQ(decoded->round_link_stats.size(), 1u);
  EXPECT_EQ(decoded->round_link_stats[0].seq, link.seq);
  EXPECT_EQ(decoded->round_link_stats[0].iteration, link.iteration);
  EXPECT_EQ(decoded->round_link_stats[0].kind, link.kind);
  EXPECT_EQ(decoded->round_link_stats[0].from_proc, link.from_proc);
  EXPECT_EQ(decoded->round_link_stats[0].frames, link.frames);
  EXPECT_EQ(decoded->round_link_stats[0].bytes, link.bytes);
  EXPECT_EQ(decoded->round_link_stats[0].latency_sum_us, link.latency_sum_us);
  EXPECT_EQ(decoded->round_link_stats[0].latency_max_us, link.latency_max_us);
}

TEST(NetControlTest, PlacementCarriesHealthPlaneKnobs) {
  PlacementMsg msg;
  msg.num_machines = 4;
  msg.num_partitions = 4;
  msg.replication = 2;
  msg.replicas = {0, 1, 1, 2, 2, 3, 3, 0};
  msg.heartbeat_period_ms = 50;
  msg.clock_sync_pings = 8;
  msg.stall_proc = 1;
  msg.stall_iteration = 2;
  msg.stall_ms = 300;
  auto decoded = DecodePlacement(EncodePlacement(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->heartbeat_period_ms, msg.heartbeat_period_ms);
  EXPECT_EQ(decoded->clock_sync_pings, msg.clock_sync_pings);
  EXPECT_EQ(decoded->stall_proc, msg.stall_proc);
  EXPECT_EQ(decoded->stall_iteration, msg.stall_iteration);
  EXPECT_EQ(decoded->stall_ms, msg.stall_ms);
}

// Fork-free NTP exchange over a socketpair (TSan-safe): both halves agree
// on the estimated offset with opposite signs, and on one host with one
// clock the estimate must land near zero.
TEST(NetTransportTest, ClockSyncAgreesAcrossASocketpair) {
  auto [client_sock, server_sock] = MustPair();
  Result<ClockOffsetMsg> server_result =
      Status::Unavailable("server never ran");
  std::thread server([&server_sock, &server_result] {
    server_result = RunClockSyncServer(server_sock);
  });
  auto client_result = RunClockSyncClient(client_sock, /*pings=*/8);
  server.join();
  ASSERT_TRUE(client_result.ok()) << client_result.status().ToString();
  ASSERT_TRUE(server_result.ok()) << server_result.status().ToString();
  EXPECT_EQ(client_result->offset_us, -server_result->offset_us);
  EXPECT_EQ(client_result->uncertainty_us, server_result->uncertainty_us);
  // Loopback round trips are microseconds; a same-clock estimate beyond
  // 100ms would mean the math, not the link, is broken.
  EXPECT_LT(std::abs(client_result->offset_us), 100 * 1000);
}

TEST(NetControlTest, TruncatedControlPayloadIsCorruption) {
  WorkerStatsMsg msg;
  msg.link_bytes = {1, 2, 3, 4};
  std::vector<uint8_t> encoded = EncodeWorkerStats(msg);
  encoded.resize(encoded.size() / 2);
  auto decoded = DecodeWorkerStats(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace net
}  // namespace surfer
