// Property tests of the sort-free combine regroup (runtime/combine_plan.h):
// the stable counting scatter must reproduce, byte for byte, the permutation
// of the legacy `std::stable_sort` on any input — in particular on
// duplicate-heavy streams where ties exercise the stability requirement.

#include <algorithm>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/combine_plan.h"

namespace surfer {
namespace runtime {
namespace {

// Payload carrying a unique serial number so permutation differences are
// visible even between records with equal targets.
struct Tagged {
  uint64_t serial = 0;
  double value = 0.0;
  bool operator==(const Tagged& other) const {
    return serial == other.serial && value == other.value;
  }
};

std::vector<std::pair<VertexId, Tagged>> RandomRecords(std::mt19937& rng,
                                                       VertexId begin,
                                                       VertexId end,
                                                       size_t count) {
  // Duplicate-heavy by construction: targets are drawn from a range far
  // smaller than the record count, so most vertices get long runs.
  std::uniform_int_distribution<VertexId> target(begin, end - 1);
  std::vector<std::pair<VertexId, Tagged>> records;
  records.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    records.emplace_back(target(rng),
                         Tagged{i, static_cast<double>(target(rng))});
  }
  return records;
}

std::vector<Tagged> ReferenceGroup(
    std::vector<std::pair<VertexId, Tagged>> records) {
  std::stable_sort(
      records.begin(), records.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Tagged> grouped;
  grouped.reserve(records.size());
  for (auto& [target, payload] : records) {
    grouped.push_back(payload);
  }
  return grouped;
}

TEST(CombinePlanTest, ScatterMatchesStableSortOnRandomDuplicateHeavyInputs) {
  std::mt19937 rng(7);
  for (int round = 0; round < 20; ++round) {
    const VertexId begin = 100 + round * 13;
    const VertexId end = begin + 1 + (round * 37) % 257;
    const size_t count = static_cast<size_t>(1) << (4 + round % 10);
    auto records = RandomRecords(rng, begin, end, count);
    const std::vector<Tagged> expected = ReferenceGroup(records);

    CombineScratch scratch;
    std::vector<Tagged> grouped;
    GroupMessagesByVertex(scratch, begin, end, records, grouped);
    ASSERT_EQ(grouped.size(), expected.size());
    for (size_t i = 0; i < grouped.size(); ++i) {
      ASSERT_EQ(grouped[i], expected[i]) << "round " << round << " pos " << i;
    }

    // Run offsets partition the grouped vector into per-vertex runs whose
    // keys are homogeneous and ascending.
    ASSERT_EQ(scratch.total(), count);
    size_t total_run = 0;
    for (size_t i = 0; i < scratch.range_size(); ++i) {
      total_run += scratch.RunEnd(i) - scratch.RunBegin(i);
      EXPECT_EQ(scratch.RunEnd(i) - scratch.RunBegin(i) > 0,
                scratch.Received(i));
    }
    EXPECT_EQ(total_run, count);
    scratch.Reset();
    EXPECT_FALSE(scratch.active());
  }
}

TEST(CombinePlanTest, ChunkedScatterMatchesConcatenatedReference) {
  std::mt19937 rng(11);
  struct Chunk {
    std::vector<std::pair<VertexId, Tagged>> real;
  };
  for (int round = 0; round < 10; ++round) {
    const VertexId begin = 5;
    const VertexId end = begin + 64 + round;
    std::vector<Chunk> chunks(3 + round % 4);
    std::vector<std::pair<VertexId, Tagged>> flat;
    uint64_t serial = 0;
    for (Chunk& chunk : chunks) {
      std::uniform_int_distribution<VertexId> target(begin, end - 1);
      const size_t n = 1 + (rng() % 300);
      for (size_t i = 0; i < n; ++i) {
        chunk.real.emplace_back(target(rng), Tagged{serial++, 0.0});
      }
      flat.insert(flat.end(), chunk.real.begin(), chunk.real.end());
    }
    const std::vector<Tagged> expected = ReferenceGroup(flat);

    CombineScratch scratch;
    std::vector<Tagged> grouped;
    const uint64_t scattered =
        GroupChunkedMessages(scratch, begin, end, chunks, grouped);
    EXPECT_EQ(scattered, flat.size());
    ASSERT_EQ(grouped.size(), expected.size());
    for (size_t i = 0; i < grouped.size(); ++i) {
      ASSERT_EQ(grouped[i], expected[i]);
    }
  }
}

TEST(CombinePlanTest, IncrementalCountingMatchesOneShotGrouping) {
  // The concurrent executor counts chunk-by-chunk at arrival (any order) and
  // places in sorted-chunk order afterwards; counting order must not matter.
  const VertexId begin = 0;
  const VertexId end = 32;
  std::mt19937 rng(23);
  auto records = RandomRecords(rng, begin, end, 4096);

  CombineScratch scratch;
  scratch.BeginRange(begin, end);
  // Count in reverse order — the frontier and counts are order-independent.
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    scratch.Count(it->first);
  }
  scratch.FinishCounts();
  std::vector<Tagged> grouped(records.size());
  for (auto& [target, payload] : records) {
    grouped[scratch.PlaceIndex(target)] = payload;
  }
  const std::vector<Tagged> expected = ReferenceGroup(records);
  ASSERT_EQ(grouped.size(), expected.size());
  for (size_t i = 0; i < grouped.size(); ++i) {
    ASSERT_EQ(grouped[i], expected[i]);
  }
}

TEST(CombinePlanTest, FrontierBitmapTracksReceivingVertices) {
  CombineScratch scratch;
  scratch.BeginRange(10, 300);  // spans several 64-bit frontier words
  const std::vector<VertexId> hit = {10, 11, 75, 76, 77, 200, 299};
  for (VertexId v : hit) {
    scratch.Count(v);
  }
  scratch.FinishCounts();
  EXPECT_EQ(scratch.ReceivedCount(), hit.size());
  std::vector<VertexId> seen;
  for (size_t i = scratch.NextReceived(0); i < scratch.range_size();
       i = scratch.NextReceived(i + 1)) {
    seen.push_back(static_cast<VertexId>(10 + i));
  }
  EXPECT_EQ(seen, hit);
  EXPECT_EQ(scratch.NextReceived(scratch.range_size()), scratch.range_size());
  EXPECT_EQ(scratch.NextReceived(scratch.range_size() + 100),
            scratch.range_size());
  EXPECT_TRUE(scratch.Received(0));   // vertex 10
  EXPECT_TRUE(scratch.Received(1));   // vertex 11
  EXPECT_FALSE(scratch.Received(2));  // vertex 12 got nothing
}

TEST(CombinePlanTest, EmptyRangeAndEmptyInputAreSafe) {
  CombineScratch scratch;
  scratch.BeginRange(42, 42);
  scratch.FinishCounts();
  EXPECT_EQ(scratch.total(), 0u);
  EXPECT_EQ(scratch.range_size(), 0u);
  EXPECT_EQ(scratch.NextReceived(0), 0u);
  EXPECT_EQ(scratch.ReceivedCount(), 0u);

  scratch.BeginRange(0, 17);
  scratch.FinishCounts();
  EXPECT_EQ(scratch.NextReceived(0), scratch.range_size());
  for (size_t i = 0; i < scratch.range_size(); ++i) {
    EXPECT_EQ(scratch.RunBegin(i), scratch.RunEnd(i));
  }
}

TEST(CombinePlanTest, VirtualGroupingMatchesStableSortById) {
  std::mt19937 rng(31);
  for (int round = 0; round < 10; ++round) {
    // IDs are arbitrary, non-dense 64-bit values (VDD uses raw degrees).
    std::vector<uint64_t> id_pool;
    for (int i = 0; i < 20; ++i) {
      id_pool.push_back((static_cast<uint64_t>(rng()) << 32) | rng());
    }
    std::vector<std::pair<uint64_t, Tagged>> records;
    for (size_t i = 0; i < 2000; ++i) {
      records.emplace_back(id_pool[rng() % id_pool.size()], Tagged{i, 0.0});
    }
    auto reference = records;
    std::stable_sort(
        reference.begin(), reference.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });

    VirtualGroupScratch scratch;
    std::vector<Tagged> grouped;
    GroupVirtualMessages(scratch, records, grouped);
    ASSERT_EQ(grouped.size(), reference.size());
    ASSERT_EQ(scratch.offsets.size(), scratch.ids.size() + 1);
    // ids ascending, groups contiguous, contents in stable order.
    size_t flat = 0;
    for (size_t i = 0; i < scratch.ids.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(scratch.ids[i - 1], scratch.ids[i]);
      }
      for (size_t j = scratch.offsets[i]; j < scratch.offsets[i + 1]; ++j) {
        ASSERT_EQ(reference[flat].first, scratch.ids[i]);
        ASSERT_EQ(grouped[j], reference[flat].second);
        ++flat;
      }
    }
    EXPECT_EQ(flat, reference.size());
  }
}

TEST(CombinePlanTest, PoolRecyclesScratchObjects) {
  CombineScratchPool pool;
  CombineScratch a = pool.Acquire();
  a.BeginRange(0, 1000);
  a.Count(3);
  pool.Release(std::move(a));
  CombineScratch b = pool.Acquire();
  // Released scratch comes back disarmed; storage capacity is an
  // implementation detail, but state must be clean.
  EXPECT_FALSE(b.active());
  EXPECT_EQ(b.total(), 0u);
  b.BeginRange(5, 10);
  b.Count(7);
  b.FinishCounts();
  EXPECT_EQ(b.total(), 1u);
  EXPECT_TRUE(b.Received(2));
  EXPECT_EQ(b.ReceivedCount(), 1u);
}

}  // namespace
}  // namespace runtime
}  // namespace surfer
