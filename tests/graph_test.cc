#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/graph_stats.h"

namespace surfer {
namespace {

Graph MakeChain(VertexId n) {
  GraphBuilder builder(n);
  for (VertexId v = 0; v + 1 < n; ++v) {
    EXPECT_TRUE(builder.AddEdge(v, v + 1).ok());
  }
  return std::move(builder).Build();
}

// A directed 5-vertex graph used across tests:
//   0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0, 3 -> 4
Graph MakeSmall() {
  GraphBuilder builder(5);
  EXPECT_TRUE(builder.AddEdges({{0, 1}, {0, 2}, {1, 2}, {2, 0}, {3, 4}}).ok());
  return std::move(builder).Build();
}

// ----------------------------------------------------------- GraphBuilder

TEST(GraphBuilderTest, BuildsSortedCsr) {
  GraphBuilder builder(4);
  ASSERT_TRUE(builder.AddEdges({{1, 3}, {1, 0}, {1, 2}, {0, 3}}).ok());
  const Graph g = std::move(builder).Build();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  const auto nbrs = g.OutNeighbors(1);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(g.OutDegree(1), 3u);
  EXPECT_EQ(g.OutDegree(2), 0u);
}

TEST(GraphBuilderTest, DedupeRemovesParallelEdges) {
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdges({{0, 1}, {0, 1}, {0, 2}, {0, 1}}).ok());
  const Graph g = std::move(builder).Build(/*dedupe=*/true);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphBuilderTest, NoDedupeKeepsParallelEdges) {
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdges({{0, 1}, {0, 1}}).ok());
  const Graph g = std::move(builder).Build(/*dedupe=*/false);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphBuilderTest, RejectsOutOfRange) {
  GraphBuilder builder(2);
  EXPECT_TRUE(builder.AddEdge(0, 1).ok());
  EXPECT_FALSE(builder.AddEdge(0, 2).ok());
  EXPECT_FALSE(builder.AddEdge(5, 0).ok());
}

TEST(GraphBuilderTest, UndirectedAddsBothDirections) {
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddUndirectedEdge(0, 2).ok());
  ASSERT_TRUE(builder.AddUndirectedEdge(1, 1).ok());  // self-loop added once
  const Graph g = std::move(builder).Build();
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(GraphBuilderTest, FromEdgesConvenience) {
  auto g = GraphBuilder::FromEdges(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
  auto bad = GraphBuilder::FromEdges(2, {{0, 5}});
  EXPECT_FALSE(bad.ok());
}

// ------------------------------------------------------------------ Graph

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.StoredBytes(), 0u);
}

TEST(GraphTest, StoredBytesMatchPaperFormat) {
  const Graph g = MakeSmall();
  // 5 vertices * (8 + 4) + 5 edges * 8 = 60 + 40 = 100.
  EXPECT_EQ(g.StoredBytes(), 100u);
  EXPECT_EQ(g.StoredBytesOfRange(0, 1), 12u + 2 * 8u);
  EXPECT_EQ(g.StoredBytesOfRange(3, 3), 0u);
}

TEST(GraphTest, ReversedTransposesEdges) {
  const Graph g = MakeSmall();
  const Graph r = g.Reversed();
  EXPECT_EQ(r.num_edges(), g.num_edges());
  EXPECT_TRUE(r.HasEdge(1, 0));
  EXPECT_TRUE(r.HasEdge(2, 0));
  EXPECT_TRUE(r.HasEdge(2, 1));
  EXPECT_TRUE(r.HasEdge(0, 2));
  EXPECT_TRUE(r.HasEdge(4, 3));
  EXPECT_FALSE(r.HasEdge(0, 1));
}

TEST(GraphTest, ReversedTwiceIsIdentity) {
  auto g = GenerateRmat({.num_vertices = 256, .num_edges = 2048, .seed = 4});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->Reversed().Reversed(), *g);
}

TEST(GraphTest, UndirectedSymmetrizesAndDedupes) {
  const Graph g = MakeSmall();
  const Graph u = g.Undirected();
  // Edges {0,1},{0,2},{1,2},{3,4} as half-edge pairs: 8 entries.
  EXPECT_EQ(u.num_edges(), 8u);
  for (VertexId a = 0; a < 5; ++a) {
    for (VertexId b : u.OutNeighbors(a)) {
      EXPECT_TRUE(u.HasEdge(b, a)) << a << "->" << b;
    }
  }
  // 0<->2 appears once even though both 0->2 and 2->0 exist.
  EXPECT_EQ(u.OutDegree(0), 2u);
}

TEST(GraphTest, UndirectedDropsSelfLoops) {
  GraphBuilder builder(2);
  ASSERT_TRUE(builder.AddEdges({{0, 0}, {0, 1}}).ok());
  const Graph g = std::move(builder).Build();
  const Graph u = g.Undirected();
  EXPECT_EQ(u.num_edges(), 2u);
  EXPECT_FALSE(u.HasEdge(0, 0));
}

TEST(GraphTest, HasEdge) {
  const Graph g = MakeSmall();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(4, 3));
}

// ------------------------------------------------------------- Algorithms

TEST(AlgorithmsTest, BfsDistancesChain) {
  const Graph g = MakeChain(5);
  const auto dist = BfsDistances(g, 0);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(dist[v], v);
  }
  const auto from_end = BfsDistances(g, 4);
  EXPECT_EQ(from_end[0], kUnreachableDistance);
  EXPECT_EQ(from_end[4], 0u);
}

TEST(AlgorithmsTest, MultiSourceBfs) {
  const Graph g = MakeChain(9);
  const auto dist = MultiSourceBfsDistances(g, {0, 8});
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[8], 0u);
  EXPECT_EQ(dist[4], 4u);  // only reachable from 0 in a directed chain
}

TEST(AlgorithmsTest, WeaklyConnectedComponents) {
  const Graph g = MakeSmall();
  const auto labels = WeaklyConnectedComponents(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_EQ(CountWeaklyConnectedComponents(g), 2u);
}

TEST(AlgorithmsTest, DiameterOfChain) {
  const Graph g = MakeChain(7);
  EXPECT_EQ(EstimateDiameter(g, /*samples=*/100), 6u);
}

TEST(AlgorithmsTest, PageRankSumsToOneWithoutLeaks) {
  // A directed cycle has no dangling vertices: total rank mass stays 1.
  GraphBuilder builder(6);
  for (VertexId v = 0; v < 6; ++v) {
    ASSERT_TRUE(builder.AddEdge(v, (v + 1) % 6).ok());
  }
  const Graph g = std::move(builder).Build();
  const auto ranks = ReferencePageRank(g, 20);
  double sum = 0.0;
  for (double r : ranks) {
    sum += r;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Symmetry: all cycle vertices tie.
  for (double r : ranks) {
    EXPECT_NEAR(r, 1.0 / 6, 1e-12);
  }
}

TEST(AlgorithmsTest, PageRankFavorsHighInDegree) {
  // Star: everyone points at 0.
  GraphBuilder builder(5);
  for (VertexId v = 1; v < 5; ++v) {
    ASSERT_TRUE(builder.AddEdge(v, 0).ok());
  }
  const Graph g = std::move(builder).Build();
  const auto ranks = ReferencePageRank(g, 10);
  for (VertexId v = 1; v < 5; ++v) {
    EXPECT_GT(ranks[0], ranks[v]);
  }
}

TEST(AlgorithmsTest, TriangleCountSmall) {
  // Triangle 0-1-2 (one direction each) + dangling edge.
  GraphBuilder builder(4);
  ASSERT_TRUE(builder.AddEdges({{0, 1}, {1, 2}, {2, 0}, {2, 3}}).ok());
  const Graph g = std::move(builder).Build();
  EXPECT_EQ(ReferenceTriangleCount(g), 1u);
}

TEST(AlgorithmsTest, TriangleCountCompleteGraph) {
  // K5 has C(5,3) = 10 triangles.
  GraphBuilder builder(5);
  for (VertexId a = 0; a < 5; ++a) {
    for (VertexId b = a + 1; b < 5; ++b) {
      ASSERT_TRUE(builder.AddEdge(a, b).ok());
    }
  }
  const Graph g = std::move(builder).Build();
  EXPECT_EQ(ReferenceTriangleCount(g), 10u);
}

// Brute-force triangle oracle over the symmetrized graph.
uint64_t BruteForceTriangles(const Graph& g) {
  const Graph u = g.Undirected();
  uint64_t count = 0;
  for (VertexId a = 0; a < u.num_vertices(); ++a) {
    for (VertexId b = a + 1; b < u.num_vertices(); ++b) {
      if (!u.HasEdge(a, b)) {
        continue;
      }
      for (VertexId c = b + 1; c < u.num_vertices(); ++c) {
        if (u.HasEdge(a, c) && u.HasEdge(b, c)) {
          ++count;
        }
      }
    }
  }
  return count;
}

class TriangleCountPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TriangleCountPropertyTest, MatchesBruteForce) {
  auto g = GenerateRmat(
      {.num_vertices = 64, .num_edges = 512, .seed = GetParam()});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(ReferenceTriangleCount(*g), BruteForceTriangles(*g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriangleCountPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(AlgorithmsTest, TwoHopNeighbors) {
  const Graph g = MakeSmall();
  // 0 -> {1, 2}; 1 -> {2}; 2 -> {0}. Two-hop of 0 = {2} (via 1) and {0}
  // excluded (via 2 back to 0).
  const auto two_hop = ReferenceTwoHopNeighbors(g, 0);
  EXPECT_EQ(two_hop, (std::vector<VertexId>{2}));
}

TEST(AlgorithmsTest, DegreeHistogram) {
  const Graph g = MakeSmall();
  const auto hist = ReferenceDegreeHistogram(g);
  // Degrees: 0:2, 1:1, 2:1, 3:1, 4:0.
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 3u);
  EXPECT_EQ(hist[2], 1u);
}

// ------------------------------------------------------------ GraphStats

TEST(GraphStatsTest, BasicCounts) {
  const Graph g = MakeSmall();
  const GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_vertices, 5u);
  EXPECT_EQ(stats.num_edges, 5u);
  EXPECT_EQ(stats.max_out_degree, 2u);
  EXPECT_EQ(stats.num_isolated, 1u);
  EXPECT_DOUBLE_EQ(stats.avg_out_degree, 1.0);
  EXPECT_EQ(stats.stored_bytes, g.StoredBytes());
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(GraphStatsTest, GiniZeroForRegularGraph) {
  GraphBuilder builder(4);
  for (VertexId v = 0; v < 4; ++v) {
    ASSERT_TRUE(builder.AddEdge(v, (v + 1) % 4).ok());
  }
  const GraphStats stats = ComputeGraphStats(std::move(builder).Build());
  EXPECT_NEAR(stats.degree_gini, 0.0, 1e-12);
}

}  // namespace
}  // namespace surfer
