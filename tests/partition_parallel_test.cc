// Bit-identity of the task-parallel partitioner: RecursivePartition must
// produce exactly the same assignment and sketch cuts at every thread count,
// including the sequential num_threads = 0 path. The fixtures stress the
// shapes that break naive parallel partitioners: power-law degree skew
// (uneven subtree sizes), stars (coarsening stalls, one giant vertex), grids
// (deep balanced recursion), and disconnected graphs (the GGGP frontier
// empties and the first-unassigned cursor takes over).

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "partition/bisection.h"
#include "partition/recursive_partitioner.h"
#include "partition/weighted_graph.h"

namespace surfer {
namespace {

Graph PowerLawGraph(uint64_t seed = 3) {
  auto g = GenerateRmat(
      {.num_vertices = 4096, .num_edges = 32768, .seed = seed});
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

Graph StarGraph(VertexId n = 2048) {
  GraphBuilder builder(n);
  for (VertexId v = 1; v < n; ++v) {
    EXPECT_TRUE(builder.AddEdge(0, v).ok());
  }
  return std::move(builder).Build();
}

Graph GridGraph(VertexId rows = 48, VertexId cols = 48) {
  GraphBuilder builder(rows * cols);
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      const VertexId v = r * cols + c;
      if (c + 1 < cols) {
        EXPECT_TRUE(builder.AddEdge(v, v + 1).ok());
      }
      if (r + 1 < rows) {
        EXPECT_TRUE(builder.AddEdge(v, v + cols).ok());
      }
    }
  }
  return std::move(builder).Build();
}

Graph DisconnectedGraph() {
  // Eight disjoint 64-cliques followed by 512 isolated vertices; nothing
  // bridges them, so every bisection below the top level sees disconnected
  // remainders.
  constexpr VertexId kCliques = 8;
  constexpr VertexId kCliqueSize = 64;
  constexpr VertexId kIsolated = 512;
  GraphBuilder builder(kCliques * kCliqueSize + kIsolated);
  for (VertexId k = 0; k < kCliques; ++k) {
    const VertexId base = k * kCliqueSize;
    for (VertexId a = 0; a < kCliqueSize; ++a) {
      for (VertexId b = a + 1; b < kCliqueSize; ++b) {
        EXPECT_TRUE(builder.AddEdge(base + a, base + b).ok());
      }
    }
  }
  return std::move(builder).Build();
}

RecursivePartitionResult Partition(const Graph& graph, uint32_t num_threads,
                                   uint32_t num_partitions = 8,
                                   uint64_t seed = 17) {
  RecursivePartitionerOptions options;
  options.num_partitions = num_partitions;
  options.num_threads = num_threads;
  options.bisection.seed = seed;
  auto result = RecursivePartition(graph, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

void ExpectIdentical(const RecursivePartitionResult& baseline,
                     const RecursivePartitionResult& other,
                     const std::string& label) {
  ASSERT_EQ(baseline.partitioning.assignment.size(),
            other.partitioning.assignment.size());
  EXPECT_EQ(baseline.partitioning.assignment, other.partitioning.assignment)
      << label << ": assignment diverged";
  for (uint32_t node = 1; node < baseline.sketch.num_partitions(); ++node) {
    EXPECT_EQ(baseline.sketch.BisectionCut(node),
              other.sketch.BisectionCut(node))
        << label << ": sketch cut diverged at node " << node;
  }
}

class ParallelPartitionerFixtures
    : public ::testing::TestWithParam<const char*> {
 protected:
  Graph MakeGraph() const {
    const std::string name = GetParam();
    if (name == "power_law") {
      return PowerLawGraph();
    }
    if (name == "star") {
      return StarGraph();
    }
    if (name == "grid") {
      return GridGraph();
    }
    return DisconnectedGraph();
  }
};

TEST_P(ParallelPartitionerFixtures, BitIdenticalAcrossThreadCounts) {
  const Graph graph = MakeGraph();
  const RecursivePartitionResult baseline = Partition(graph, /*threads=*/0);
  for (uint32_t threads : {1u, 2u, 8u}) {
    const RecursivePartitionResult parallel = Partition(graph, threads);
    ExpectIdentical(baseline, parallel,
                    std::string(GetParam()) + " @ " +
                        std::to_string(threads) + " threads");
  }
}

TEST_P(ParallelPartitionerFixtures, RepeatedRunsDeterministic) {
  const Graph graph = MakeGraph();
  const RecursivePartitionResult first = Partition(graph, /*threads=*/8);
  const RecursivePartitionResult second = Partition(graph, /*threads=*/8);
  ExpectIdentical(first, second, std::string(GetParam()) + " repeat @ 8");
}

INSTANTIATE_TEST_SUITE_P(Shapes, ParallelPartitionerFixtures,
                         ::testing::Values("power_law", "star", "grid",
                                           "disconnected"),
                         [](const auto& info) { return info.param; });

TEST(ParallelPartitionerTest, LargerGraphManyPartitionsBitIdentical) {
  // A bigger power-law instance at 32 partitions crosses the intra-node
  // parallelism thresholds (subgraphs above 8192 vertices shard their
  // extraction, coarsening, and refinement over the pool), so this covers
  // the sharded paths, not just the subtree fan-out.
  auto g = GenerateRmat(
      {.num_vertices = 1 << 14, .num_edges = 1 << 17, .seed = 9});
  ASSERT_TRUE(g.ok());
  const RecursivePartitionResult baseline = Partition(*g, 0, 32, 23);
  for (uint32_t threads : {2u, 8u}) {
    const RecursivePartitionResult parallel = Partition(*g, threads, 32, 23);
    ExpectIdentical(baseline, parallel,
                    "large @ " + std::to_string(threads) + " threads");
  }
}

TEST(ParallelPartitionerTest, ParallelFromDataGraphMatchesSequential) {
  const Graph graph = PowerLawGraph(21);
  const WeightedGraph sequential = WeightedGraph::FromDataGraph(graph);
  ThreadPool pool(4);
  const WeightedGraph parallel = WeightedGraph::FromDataGraph(graph, &pool);
  EXPECT_EQ(sequential.offsets, parallel.offsets);
  EXPECT_EQ(sequential.neighbors, parallel.neighbors);
  EXPECT_EQ(sequential.edge_weights, parallel.edge_weights);
  EXPECT_EQ(sequential.vertex_weights, parallel.vertex_weights);
}

TEST(ParallelPartitionerTest, PooledBisectionHelpersMatchSequential) {
  const Graph graph = PowerLawGraph(27);
  const WeightedGraph wg = WeightedGraph::FromDataGraph(graph);
  ThreadPool pool(4);

  std::vector<uint8_t> side(wg.num_vertices());
  for (VertexId v = 0; v < wg.num_vertices(); ++v) {
    side[v] = static_cast<uint8_t>((v * 2654435761u) >> 31);
  }
  EXPECT_EQ(ComputeCutWeight(wg, side), ComputeCutWeight(wg, side, &pool));

  std::vector<VertexId> seq_map;
  const WeightedGraph seq_coarse = internal::CoarsenOnce(wg, 5, &seq_map);
  std::vector<VertexId> par_map;
  const WeightedGraph par_coarse =
      internal::CoarsenOnce(wg, 5, &par_map, &pool);
  EXPECT_EQ(seq_map, par_map);
  EXPECT_EQ(seq_coarse.offsets, par_coarse.offsets);
  EXPECT_EQ(seq_coarse.neighbors, par_coarse.neighbors);
  EXPECT_EQ(seq_coarse.edge_weights, par_coarse.edge_weights);
  EXPECT_EQ(seq_coarse.vertex_weights, par_coarse.vertex_weights);

  BisectionOptions sequential_options;
  sequential_options.seed = 31;
  BisectionOptions pooled_options = sequential_options;
  pooled_options.pool = &pool;
  const BisectionResult seq_result = Bisect(wg, sequential_options);
  const BisectionResult par_result = Bisect(wg, pooled_options);
  EXPECT_EQ(seq_result.side, par_result.side);
  EXPECT_EQ(seq_result.cut_weight, par_result.cut_weight);
  EXPECT_EQ(seq_result.side_weight[0], par_result.side_weight[0]);
  EXPECT_EQ(seq_result.side_weight[1], par_result.side_weight[1]);
}

TEST(ParallelPartitionerTest, DifferentSeedsStillDiffer) {
  // Guard against the seed plumbing collapsing to a constant: two base
  // seeds should (overwhelmingly) produce different partitionings.
  const Graph graph = PowerLawGraph(33);
  const RecursivePartitionResult a = Partition(graph, 2, 8, 100);
  const RecursivePartitionResult b = Partition(graph, 2, 8, 101);
  EXPECT_NE(a.partitioning.assignment, b.partitioning.assignment);
}

}  // namespace
}  // namespace surfer
