#include <gtest/gtest.h>

#include "apps/degree_distribution.h"
#include "apps/network_ranking.h"
#include "apps/reverse_link_graph.h"
#include "graph/algorithms.h"
#include "mapreduce/runner.h"
#include "tests/test_fixtures.h"

namespace surfer {
namespace {

using testing_fixtures::EngineFixture;
using testing_fixtures::MakeEngineFixture;

const EngineFixture& Fixture() {
  static const EngineFixture* fixture =
      new EngineFixture(MakeEngineFixture());
  return *fixture;
}

TEST(MapReduceTest, PageRankMatchesReference) {
  const EngineFixture& f = Fixture();
  BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  JobSimulation sim(setup.topology, setup.sim_options);
  auto ranks = RunNetworkRankingMapReduce(*setup.graph, *setup.placement,
                                          *setup.topology, &sim, 4);
  ASSERT_TRUE(ranks.ok());
  const auto reference = ReferencePageRank(f.graph, 4);
  const VertexEncoding& enc = setup.graph->encoding();
  for (VertexId v = 0; v < f.graph.num_vertices(); ++v) {
    EXPECT_NEAR((*ranks)[enc.ToEncoded(v)], reference[v], 1e-12);
  }
}

TEST(MapReduceTest, DegreeDistributionMatchesHistogram) {
  const EngineFixture& f = Fixture();
  BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  DegreeDistributionMrApp app;
  MapReduceRunner<DegreeDistributionMrApp> runner(
      setup.graph, setup.placement, setup.topology, app);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());
  const auto reference = ReferenceDegreeHistogram(f.graph);
  for (uint64_t degree = 0; degree < reference.size(); ++degree) {
    if (reference[degree] != 0) {
      auto it = runner.outputs().find(degree);
      ASSERT_NE(it, runner.outputs().end());
      EXPECT_EQ(it->second, reference[degree]);
    }
  }
}

TEST(MapReduceTest, ReverseLinkGraphMatchesReversed) {
  const EngineFixture& f = Fixture();
  BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  ReverseLinkGraphMrApp app;
  MapReduceRunner<ReverseLinkGraphMrApp> runner(
      setup.graph, setup.placement, setup.topology, app);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());
  const Graph reversed = f.graph.Reversed();
  const VertexEncoding& enc = setup.graph->encoding();
  uint64_t total = 0;
  for (const auto& [v, list] : runner.outputs()) {
    const auto expected = reversed.OutNeighbors(enc.ToOriginal(v));
    ASSERT_EQ(list.size(), expected.size());
    total += list.size();
  }
  EXPECT_EQ(total, f.graph.num_edges());
}

TEST(MapReduceTest, ShuffleIsNetworkHeavy) {
  // The core deficiency of Section 3.1: the hash shuffle ignores graph
  // partitions, so MapReduce moves far more bytes than propagation.
  const EngineFixture& f = Fixture();
  BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);

  JobSimulation mr_sim(setup.topology, setup.sim_options);
  ASSERT_TRUE(RunNetworkRankingMapReduce(*setup.graph, *setup.placement,
                                         *setup.topology, &mr_sim, 3)
                  .ok());

  NetworkRankingApp app(f.graph.num_vertices());
  PropagationConfig config;
  config.iterations = 3;
  PropagationRunner<NetworkRankingApp> prop(
      setup.graph, setup.placement, setup.topology, app, config);
  auto prop_metrics = prop.Run(setup.sim_options);
  ASSERT_TRUE(prop_metrics.ok());

  EXPECT_GT(mr_sim.metrics().network_bytes,
            prop_metrics->network_bytes * 1.5);
}

TEST(MapReduceTest, CombinerReducesShuffleBytes) {
  // NR's map-side hash table (Appendix D Algorithm 2) is the combiner; an
  // app without it ships one pair per edge.
  const EngineFixture& f = Fixture();
  BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);

  // Strip the combiner by wrapping the app without CombineValues.
  struct NoCombinerNr {
    using Key = VertexId;
    using Value = double;
    using Output = double;
    const std::vector<double>* ranks;
    VertexId n;
    void Map(const PartitionView& partition,
             MapEmitter<Key, Value>& emitter) const {
      for (VertexId v = partition.begin(); v < partition.end(); ++v) {
        const auto neighbors = partition.OutNeighbors(v);
        if (neighbors.empty()) {
          continue;
        }
        const double share =
            (*ranks)[v] * kDefaultDamping / neighbors.size();
        for (VertexId neighbor : neighbors) {
          emitter.Emit(neighbor, share);
        }
      }
    }
    Output Reduce(const Key&, std::vector<Value>& values) const {
      double rank = (1.0 - kDefaultDamping) / n;
      for (double v : values) {
        rank += v;
      }
      return rank;
    }
    size_t PairBytes(const Key&, const Value&) const { return 16; }
    size_t OutputBytes(const Output&) const { return 16; }
  };

  const VertexId n = f.graph.num_vertices();
  std::vector<double> ranks(n, 1.0 / n);

  NetworkRankingMrApp with_combiner(&ranks, n);
  MapReduceRunner<NetworkRankingMrApp> combined(
      setup.graph, setup.placement, setup.topology, with_combiner);
  auto combined_metrics = combined.Run(setup.sim_options);
  ASSERT_TRUE(combined_metrics.ok());

  NoCombinerNr without{&ranks, n};
  MapReduceRunner<NoCombinerNr> uncombined(setup.graph, setup.placement,
                                           setup.topology, without);
  auto uncombined_metrics = uncombined.Run(setup.sim_options);
  ASSERT_TRUE(uncombined_metrics.ok());

  EXPECT_LT(combined_metrics->network_bytes,
            uncombined_metrics->network_bytes);
  // Both compute identical ranks.
  for (const auto& [v, rank] : combined.outputs()) {
    auto it = uncombined.outputs().find(v);
    ASSERT_NE(it, uncombined.outputs().end());
    EXPECT_NEAR(rank, it->second, 1e-12);
  }
}

TEST(MapReduceTest, RejectsNullInputs) {
  const EngineFixture& f = Fixture();
  BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  DegreeDistributionMrApp app;
  MapReduceRunner<DegreeDistributionMrApp> runner(nullptr, setup.placement,
                                                  setup.topology, app);
  EXPECT_FALSE(runner.Run(setup.sim_options).ok());
}

TEST(MapReduceTest, SurvivesMachineFailure) {
  const EngineFixture& f = Fixture();
  BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  JobSimulation sim(setup.topology, setup.sim_options);
  sim.InjectFault({.machine = 2, .fail_at_s = 1.0});
  DegreeDistributionMrApp app;
  MapReduceRunner<DegreeDistributionMrApp> runner(
      setup.graph, setup.placement, setup.topology, app);
  ASSERT_TRUE(runner.RunWith(&sim).ok());
  // Results are still exact.
  const auto reference = ReferenceDegreeHistogram(f.graph);
  for (uint64_t degree = 0; degree < reference.size(); ++degree) {
    if (reference[degree] != 0) {
      EXPECT_EQ(runner.outputs().at(degree), reference[degree]);
    }
  }
}

}  // namespace
}  // namespace surfer
