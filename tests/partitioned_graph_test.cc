#include <gtest/gtest.h>

#include "graph/generators.h"
#include "partition/recursive_partitioner.h"
#include "storage/partitioned_graph.h"

namespace surfer {
namespace {

struct Fixture {
  Graph graph;
  Partitioning partitioning;
  PartitionedGraph pg;
};

Fixture MakeFixture(uint32_t partitions = 8, uint64_t seed = 21) {
  auto g = GenerateCompositeSmallWorld({.num_components = 8,
                                        .vertices_per_component = 128,
                                        .edges_per_component = 1024,
                                        .rewire_ratio = 0.05,
                                        .seed = seed});
  EXPECT_TRUE(g.ok());
  RecursivePartitionerOptions options;
  options.num_partitions = partitions;
  auto result = RecursivePartition(*g, options);
  EXPECT_TRUE(result.ok());
  auto pg = PartitionedGraph::Create(*g, result->partitioning);
  EXPECT_TRUE(pg.ok());
  return Fixture{std::move(g).value(), std::move(result->partitioning),
                 std::move(pg).value()};
}

TEST(PartitionedGraphTest, RejectsMismatchedPartitioning) {
  auto g = GenerateRmat({.num_vertices = 64, .num_edges = 128, .seed = 1});
  ASSERT_TRUE(g.ok());
  Partitioning bad;
  bad.num_partitions = 2;
  bad.assignment = {0, 1};  // wrong size
  EXPECT_FALSE(PartitionedGraph::Create(*g, bad).ok());
}

TEST(PartitionedGraphTest, MetaRangesTileVertices) {
  const Fixture f = MakeFixture();
  VertexId expected_begin = 0;
  for (PartitionId p = 0; p < f.pg.num_partitions(); ++p) {
    const PartitionMeta& meta = f.pg.partition(p);
    EXPECT_EQ(meta.id, p);
    EXPECT_EQ(meta.begin, expected_begin);
    EXPECT_GT(meta.end, meta.begin);
    expected_begin = meta.end;
  }
  EXPECT_EQ(expected_begin, f.graph.num_vertices());
}

TEST(PartitionedGraphTest, EdgeCountsConsistent) {
  const Fixture f = MakeFixture();
  uint64_t inner = 0;
  uint64_t cross_out = 0;
  uint64_t cross_in = 0;
  for (PartitionId p = 0; p < f.pg.num_partitions(); ++p) {
    const PartitionMeta& meta = f.pg.partition(p);
    inner += meta.inner_edges;
    cross_out += meta.cross_out_edges;
    cross_in += meta.cross_in_edges;
    // The per-destination map sums to the total.
    uint64_t by_partition = 0;
    for (uint64_t c : meta.cross_out_by_partition) {
      by_partition += c;
    }
    EXPECT_EQ(by_partition, meta.cross_out_edges);
    EXPECT_EQ(meta.cross_out_by_partition[p], 0u);
  }
  EXPECT_EQ(cross_out, cross_in);
  EXPECT_EQ(inner + cross_out, f.graph.num_edges());
}

TEST(PartitionedGraphTest, BoundaryFlagsMatchBruteForce) {
  const Fixture f = MakeFixture(4);
  const Graph& encoded = f.pg.encoded_graph();
  // Brute force: a vertex is boundary iff it has a cross-partition edge in
  // either direction.
  std::vector<uint8_t> expected(encoded.num_vertices(), 0);
  for (VertexId u = 0; u < encoded.num_vertices(); ++u) {
    for (VertexId v : encoded.OutNeighbors(u)) {
      if (f.pg.PartitionOf(u) != f.pg.PartitionOf(v)) {
        expected[u] = 1;
        expected[v] = 1;
      }
    }
  }
  for (PartitionId p = 0; p < f.pg.num_partitions(); ++p) {
    const PartitionMeta& meta = f.pg.partition(p);
    for (VertexId v = meta.begin; v < meta.end; ++v) {
      EXPECT_EQ(meta.boundary[v - meta.begin], expected[v]) << "vertex " << v;
    }
    uint64_t boundary_count = 0;
    for (uint8_t b : meta.boundary) {
      boundary_count += b;
    }
    EXPECT_EQ(meta.num_boundary, boundary_count);
    EXPECT_EQ(meta.num_inner + meta.num_boundary, meta.num_vertices());
  }
}

TEST(PartitionedGraphTest, StoredBytesMatchRanges) {
  const Fixture f = MakeFixture();
  uint64_t total = 0;
  for (PartitionId p = 0; p < f.pg.num_partitions(); ++p) {
    const PartitionMeta& meta = f.pg.partition(p);
    EXPECT_EQ(meta.stored_bytes,
              f.pg.encoded_graph().StoredBytesOfRange(meta.begin, meta.end));
    total += meta.stored_bytes;
  }
  EXPECT_EQ(total, f.pg.total_stored_bytes());
  EXPECT_EQ(total, f.graph.StoredBytes());
}

TEST(PartitionedGraphTest, InnerVertexRatioBounds) {
  const Fixture f = MakeFixture();
  const double ratio = f.pg.InnerVertexRatio();
  EXPECT_GE(ratio, 0.0);
  EXPECT_LE(ratio, 1.0);
  // With 5% rewiring and aligned partitions, a sizeable share is inner.
  EXPECT_GT(ratio, 0.1);
}

TEST(PartitionedGraphTest, SinglePartitionHasNoBoundary) {
  auto g = GenerateRmat({.num_vertices = 64, .num_edges = 256, .seed = 2});
  ASSERT_TRUE(g.ok());
  Partitioning p;
  p.num_partitions = 1;
  p.assignment.assign(g->num_vertices(), 0);
  auto pg = PartitionedGraph::Create(*g, p);
  ASSERT_TRUE(pg.ok());
  EXPECT_EQ(pg->partition(0).num_boundary, 0u);
  EXPECT_EQ(pg->partition(0).cross_out_edges, 0u);
  EXPECT_DOUBLE_EQ(pg->InnerVertexRatio(), 1.0);
}

}  // namespace
}  // namespace surfer
