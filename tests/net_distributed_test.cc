// End-to-end tests of the multi-process distributed engine: bit-identity
// against the sequential PropagationRunner at several process counts, exact
// per-link byte reconciliation with the analytic model, recovery from real
// child-process kills, and graceful SIGTERM decommission with artifact
// flush. Every test forks real OS processes and moves real bytes over
// localhost TCP.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "apps/degree_distribution.h"
#include "apps/network_ranking.h"
#include "core/engine.h"
#include "obs/json.h"
#include "obs/trace_merge.h"
#include "propagation/config.h"
#include "propagation/runner.h"
#include "tests/test_fixtures.h"

namespace surfer {
namespace {

using testing_fixtures::EngineFixture;
using testing_fixtures::MakeEngineFixture;

const EngineFixture& Fixture() {
  static const EngineFixture* fixture =
      new EngineFixture(MakeEngineFixture());
  return *fixture;
}

PropagationConfig ConfigFor(OptimizationLevel level, int iterations) {
  PropagationConfig config = PropagationConfig::ForLevel(level);
  config.iterations = iterations;
  return config;
}

/// Each test configures its own fault/process/artifact options, so every run
/// opens a fresh session over the shared fixture.
template <typename App>
Result<RunAppResult<App>> RunViaEngine(const BenchmarkSetup& setup, App app,
                                       const EngineOptions& options) {
  SURFER_ASSIGN_OR_RETURN(Engine engine, Engine::Open(setup, options));
  return engine.Run(std::move(app));
}

template <typename State>
void ExpectBitIdentical(const std::vector<State>& expected,
                        const std::vector<State>& actual,
                        const std::string& what) {
  ASSERT_EQ(expected.size(), actual.size()) << what;
  if (std::memcmp(expected.data(), actual.data(),
                  expected.size() * sizeof(State)) == 0) {
    return;
  }
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_EQ(std::memcmp(&expected[v], &actual[v], sizeof(State)), 0)
        << what << ": first bit difference at vertex " << v;
  }
}

TEST(NetDistributedTest, NetworkRankingBitIdenticalAcrossProcessCounts) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  const PropagationConfig config =
      ConfigFor(OptimizationLevel::kO4, /*iterations=*/3);
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationRunner<NetworkRankingApp> runner(setup.graph, setup.placement,
                                              setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());

  // 1 process = all machines in one child (pure local delivery); 3 forces
  // machine multiplexing across uneven groups; 8 is one process per machine
  // with every exchange crossing a real TCP link.
  for (uint32_t procs : {1u, 3u, 8u}) {
    EngineOptions options;
    options.engine = EngineKind::kDistributed;
    options.propagation = config;
    options.distributed.max_processes = procs;
    auto result = RunViaEngine(setup, app, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectBitIdentical(runner.states(), result->states,
                       "distributed @ " + std::to_string(procs) + " procs");
    ASSERT_TRUE(result->runtime_stats.has_value());
    EXPECT_EQ(result->runtime_stats->num_processes, procs);
    EXPECT_EQ(result->runtime_stats->machine_failures, 0u);
    EXPECT_GT(result->runtime_stats->messages_sent, 0u);
    if (procs > 1) {
      EXPECT_GT(result->runtime_stats->tcp_bytes_sent, 0u);
      EXPECT_GT(result->runtime_stats->tcp_frames_sent, 0u);
    }

    // Per-link reconciliation: the TCP engine's priced bytes equal the
    // analytic model's, link by link, exactly.
    const std::vector<double> model = runner.link_network_bytes();
    ASSERT_EQ(model.size(), result->link_network_bytes.size());
    const uint32_t n = f.topology.num_machines();
    for (uint32_t src = 0; src < n; ++src) {
      for (uint32_t dst = 0; dst < n; ++dst) {
        const size_t i = static_cast<size_t>(src) * n + dst;
        if (src == dst) {
          EXPECT_EQ(result->link_network_bytes[i], 0.0);
          continue;
        }
        EXPECT_EQ(model[i], result->link_network_bytes[i])
            << "link " << src << "->" << dst << " @ " << procs << " procs";
      }
    }
  }
}

TEST(NetDistributedTest, VirtualOutputsMatchSequentialAcrossProcessCounts) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  const PropagationConfig config =
      ConfigFor(OptimizationLevel::kO4, /*iterations=*/1);
  DegreeDistributionApp app;
  PropagationRunner<DegreeDistributionApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());
  ASSERT_FALSE(runner.virtual_outputs().empty());

  for (uint32_t procs : {1u, 3u, 8u}) {
    EngineOptions options;
    options.engine = EngineKind::kDistributed;
    options.propagation = config;
    options.distributed.max_processes = procs;
    auto result = RunViaEngine(setup, app, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectBitIdentical(runner.states(), result->states,
                       "VDD @ " + std::to_string(procs) + " procs");
    EXPECT_EQ(runner.virtual_outputs(), result->virtual_outputs)
        << procs << " procs";
  }
}

/// A SilentVertexSkippableApp with real messages (mirrors the runtime test's
/// SkippableSumApp): Combine with no messages is a genuine no-op, so the
/// distributed engine may skip silent vertices under frontier gating.
struct DistSkippableSumApp {
  using VertexState = double;
  using Message = double;

  VertexState InitState(VertexId v, std::span<const VertexId>) const {
    return 1.0 + static_cast<double>(v % 7);
  }
  void Transfer(VertexId v, const VertexState& state,
                std::span<const VertexId> neighbors,
                PropagationEmitter<Message>& emitter) const {
    if (v % 2 != 0 || neighbors.empty()) {
      return;
    }
    const double share = state / static_cast<double>(neighbors.size());
    for (VertexId n : neighbors) {
      emitter.Emit(n, share);
    }
  }
  void Combine(VertexId, VertexState& state, std::span<const VertexId>,
               std::vector<Message>& messages) const {
    for (const Message& m : messages) {
      state += m;
    }
  }
  size_t MessageBytes(const Message&) const { return sizeof(Message); }
  size_t StateBytes(const VertexState&) const { return sizeof(VertexState); }

  static constexpr bool kSkipSilentVertices = true;
};

TEST(NetDistributedTest, FrontierGatingBitIdenticalAcrossProcessCounts) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  DistSkippableSumApp app;

  // Ungated sequential reference (exact legacy full-range loop).
  PropagationConfig reference_config =
      ConfigFor(OptimizationLevel::kO4, /*iterations=*/3);
  reference_config.frontier_gating = false;
  PropagationRunner<DistSkippableSumApp> runner(
      setup.graph, setup.placement, setup.topology, app, reference_config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());

  for (uint32_t procs : {1u, 3u}) {
    for (bool gating : {false, true}) {
      EngineOptions options;
      options.engine = EngineKind::kDistributed;
      options.propagation = reference_config;
      options.propagation.frontier_gating = gating;
      options.distributed.max_processes = procs;
      auto result = RunViaEngine(setup, app, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectBitIdentical(runner.states(), result->states,
                         std::string("gating ") + (gating ? "on" : "off") +
                             " @ " + std::to_string(procs) + " procs");
      ASSERT_TRUE(result->runtime_stats.has_value());
      EXPECT_GT(result->runtime_stats->combine_messages_scattered, 0u);
      if (gating) {
        EXPECT_GT(result->runtime_stats->frontier_vertices_skipped, 0u);
      } else {
        EXPECT_EQ(result->runtime_stats->frontier_vertices_skipped, 0u);
      }
    }
  }
}

TEST(NetDistributedTest, ProcessKillMidSuperstepRecoversBitIdentically) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  const PropagationConfig config =
      ConfigFor(OptimizationLevel::kO4, /*iterations=*/3);
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationRunner<NetworkRankingApp> runner(setup.graph, setup.placement,
                                              setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());

  // One process per machine, so the plan kills a whole OS process midway
  // through iteration 1's transfer stage (after one of its two tasks) — its
  // unflushed work, retained batches, and inboxes die with it, and recovery
  // must rebuild everything on the first alive replica.
  EngineOptions options;
  options.engine = EngineKind::kDistributed;
  options.propagation = config;
  options.distributed.max_processes = 8;
  runtime::RuntimeFaultPlan plan;
  plan.machine = 2;
  plan.iteration = 1;
  plan.stage = runtime::RuntimeStage::kTransfer;
  plan.after_tasks = 1;
  options.distributed.faults.push_back(plan);
  auto result = RunViaEngine(setup, app, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectBitIdentical(runner.states(), result->states,
                     "recovery after process kill");
  ASSERT_TRUE(result->runtime_stats.has_value());
  EXPECT_GE(result->runtime_stats->machine_failures, 1u);
  EXPECT_GT(result->runtime_stats->tasks_reexecuted, 0u);
  // The replacement executor is a non-primary replica, so it re-fetched the
  // spills the primary had already consumed.
  EXPECT_GT(result->runtime_stats->refetch_bytes, 0u);
  EXPECT_GT(result->runtime_stats->resend_bytes, 0u);
}

TEST(NetDistributedTest, KillDuringCombineStageAlsoRecovers) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  const PropagationConfig config =
      ConfigFor(OptimizationLevel::kO4, /*iterations=*/3);
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationRunner<NetworkRankingApp> runner(setup.graph, setup.placement,
                                              setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());

  EngineOptions options;
  options.engine = EngineKind::kDistributed;
  options.propagation = config;
  options.distributed.max_processes = 8;
  runtime::RuntimeFaultPlan plan;
  plan.machine = 5;
  plan.iteration = 1;
  plan.stage = runtime::RuntimeStage::kCombine;
  plan.after_tasks = 1;
  options.distributed.faults.push_back(plan);
  auto result = RunViaEngine(setup, app, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectBitIdentical(runner.states(), result->states,
                     "recovery after combine-stage kill");
  EXPECT_GE(result->runtime_stats->machine_failures, 1u);
  EXPECT_GT(result->runtime_stats->tasks_reexecuted, 0u);
}

TEST(NetDistributedTest, SigtermFlushesReportBeforeExit) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  const PropagationConfig config =
      ConfigFor(OptimizationLevel::kO4, /*iterations=*/3);
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationRunner<NetworkRankingApp> runner(setup.graph, setup.placement,
                                              setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("surfer_dist_sigterm_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  EngineOptions options;
  options.engine = EngineKind::kDistributed;
  options.propagation = config;
  options.distributed.max_processes = 8;
  options.distributed.artifact_dir = dir.string();
  // Machine 6's process receives a real SIGTERM before iteration 1; it must
  // flush staged batches + its run report and exit 0, and the run must
  // converge bit-identically on the survivors.
  options.distributed.sigterm_machine = 6;
  options.distributed.sigterm_iteration = 1;
  auto result = RunViaEngine(setup, app, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectBitIdentical(runner.states(), result->states,
                     "graceful SIGTERM decommission");
  EXPECT_GE(result->runtime_stats->machine_failures, 1u);

  // The victim's report landed on disk despite the mid-run termination.
  const std::filesystem::path victim = dir / "dist_worker_6.report.json";
  ASSERT_TRUE(std::filesystem::exists(victim)) << victim;
  std::ifstream in(victim);
  std::ostringstream text;
  text << in.rdbuf();
  auto parsed = obs::ParseJson(text.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue* runtime_block = parsed->Find("runtime");
  ASSERT_NE(runtime_block, nullptr);
  const obs::JsonValue* tasks = runtime_block->Find("tasks_executed");
  ASSERT_NE(tasks, nullptr);
  EXPECT_GT(tasks->as_number(), 0.0);
  std::filesystem::remove_all(dir);
}

TEST(NetDistributedTest, ArtifactsLandForEveryProcessAndMerge) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  const PropagationConfig config =
      ConfigFor(OptimizationLevel::kO4, /*iterations=*/2);
  NetworkRankingApp app(f.graph.num_vertices());

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("surfer_dist_artifacts_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  EngineOptions options;
  options.engine = EngineKind::kDistributed;
  options.propagation = config;
  options.distributed.max_processes = 3;
  options.distributed.artifact_dir = dir.string();
  auto result = RunViaEngine(setup, app, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::vector<obs::TraceMergeInput> inputs;
  for (uint32_t proc = 0; proc < 3; ++proc) {
    const std::filesystem::path report =
        dir / ("dist_worker_" + std::to_string(proc) + ".report.json");
    const std::filesystem::path trace =
        dir / ("dist_worker_" + std::to_string(proc) + ".trace.json");
    ASSERT_TRUE(std::filesystem::exists(report)) << report;
    ASSERT_TRUE(std::filesystem::exists(trace)) << trace;
    std::ifstream in(trace);
    std::ostringstream text;
    text << in.rdbuf();
    auto parsed = obs::ParseJson(text.str());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    inputs.push_back({"worker " + std::to_string(proc),
                      std::move(parsed).value()});
  }
  auto merged = obs::MergeChromeTraces(inputs);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  const obs::JsonValue* events = merged->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->as_array().size(), 3u);
  const obs::JsonValue* aligned = merged->Find("aligned");
  ASSERT_NE(aligned, nullptr);
  EXPECT_TRUE(aligned->is_bool() && aligned->as_bool());
  // Without clock sync the shards anchor on raw wall-clock origins only.
  const obs::JsonValue* alignment = merged->Find("alignment");
  ASSERT_NE(alignment, nullptr);
  EXPECT_EQ(alignment->as_string(), "origin");
  std::filesystem::remove_all(dir);
}

TEST(NetDistributedTest, InjectedStallIsFlaggedOnlineWithoutAborting) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  const PropagationConfig config =
      ConfigFor(OptimizationLevel::kO4, /*iterations=*/3);
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationRunner<NetworkRankingApp> runner(setup.graph, setup.placement,
                                              setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());

  // Process 2 sleeps 600ms inside iteration 2's combine round. With the
  // detector's floor pulled down to 60ms, the other workers' heartbeats
  // keep the coordinator's event loop ticking while it waits, so the stall
  // must be flagged online — and the round must still complete normally
  // once the sleeper wakes: a straggler is an alert, not a fault.
  EngineOptions options;
  options.engine = EngineKind::kDistributed;
  options.propagation = config;
  options.distributed.max_processes = 4;
  options.distributed.heartbeat_period_ms = 15;
  options.distributed.clock_sync_pings = 4;
  options.distributed.straggler_multiple = 3.0;
  options.distributed.straggler_min_ms = 60;
  options.distributed.stall_proc = 2;
  options.distributed.stall_iteration = 2;
  options.distributed.stall_ms = 600;
  std::string status_tables;
  options.distributed.status_sink = [&status_tables](
                                        const std::string& table) {
    status_tables += table;
  };
  auto result = RunViaEngine(setup, app, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectBitIdentical(runner.states(), result->states,
                     "bit-identity with an injected straggler");
  ASSERT_TRUE(result->runtime_stats.has_value());
  EXPECT_EQ(result->runtime_stats->machine_failures, 0u);

  ASSERT_TRUE(result->cluster.has_value());
  const obs::JsonValue* flagged = result->cluster->Find("stragglers_flagged");
  ASSERT_NE(flagged, nullptr);
  EXPECT_GE(flagged->as_number(), 1.0);
  // The live status table the sink streamed marked the sleeper.
  EXPECT_NE(status_tables.find("STRAGGLE"), std::string::npos);

  // The cluster critical path covers every round the coordinator drove,
  // and clock sync produced offset-corrected link samples.
  const obs::JsonValue* critical = result->cluster->Find("critical_path");
  ASSERT_NE(critical, nullptr);
  const obs::JsonValue* steps = critical->Find("steps");
  ASSERT_NE(steps, nullptr);
  EXPECT_EQ(steps->as_array().size(),
            result->runtime_stats->barrier_generations);
  const obs::JsonValue* links = result->cluster->Find("links");
  ASSERT_NE(links, nullptr);
  EXPECT_FALSE(links->as_array().empty());
}

TEST(NetDistributedTest, RecoveryStaysBitIdenticalWithHealthPlaneEnabled) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  const PropagationConfig config =
      ConfigFor(OptimizationLevel::kO4, /*iterations=*/3);
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationRunner<NetworkRankingApp> runner(setup.graph, setup.placement,
                                              setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());

  // Heartbeats, clock sync, and frame stamping are all observation planes:
  // with every one of them enabled, first-alive-replica recovery from a
  // real process kill must still reproduce the sequential states bit for
  // bit.
  EngineOptions options;
  options.engine = EngineKind::kDistributed;
  options.propagation = config;
  options.distributed.max_processes = 8;
  options.distributed.heartbeat_period_ms = 10;
  options.distributed.clock_sync_pings = 4;
  runtime::RuntimeFaultPlan plan;
  plan.machine = 2;
  plan.iteration = 1;
  plan.stage = runtime::RuntimeStage::kTransfer;
  plan.after_tasks = 1;
  options.distributed.faults.push_back(plan);
  auto result = RunViaEngine(setup, app, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectBitIdentical(runner.states(), result->states,
                     "recovery with the health plane enabled");
  EXPECT_GE(result->runtime_stats->machine_failures, 1u);
  EXPECT_GT(result->runtime_stats->tasks_reexecuted, 0u);
}

TEST(NetDistributedTest, ClockSyncedTracesMergeWithOffsetAlignment) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  const PropagationConfig config =
      ConfigFor(OptimizationLevel::kO4, /*iterations=*/2);
  NetworkRankingApp app(f.graph.num_vertices());

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("surfer_dist_clocksync_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  EngineOptions options;
  options.engine = EngineKind::kDistributed;
  options.propagation = config;
  options.distributed.max_processes = 3;
  options.distributed.artifact_dir = dir.string();
  options.distributed.clock_sync_pings = 4;
  auto result = RunViaEngine(setup, app, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::vector<obs::TraceMergeInput> inputs;
  for (uint32_t proc = 0; proc < 3; ++proc) {
    const std::filesystem::path trace =
        dir / ("dist_worker_" + std::to_string(proc) + ".trace.json");
    ASSERT_TRUE(std::filesystem::exists(trace)) << trace;
    std::ifstream in(trace);
    std::ostringstream text;
    text << in.rdbuf();
    auto parsed = obs::ParseJson(text.str());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    // Every shard carries the handshake-estimated offset table.
    const obs::JsonValue* sync = parsed->Find("clock_sync");
    ASSERT_NE(sync, nullptr) << "worker " << proc;
    const obs::JsonValue* offsets = sync->Find("offsets_us");
    ASSERT_NE(offsets, nullptr);
    EXPECT_EQ(offsets->as_array().size(), 3u);
    inputs.push_back({"worker " + std::to_string(proc),
                      std::move(parsed).value()});
  }
  auto merged = obs::MergeChromeTraces(inputs);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  const obs::JsonValue* alignment = merged->Find("alignment");
  ASSERT_NE(alignment, nullptr);
  EXPECT_EQ(alignment->as_string(), "offset");
  const obs::JsonValue* unanchored = merged->Find("unanchored");
  ASSERT_NE(unanchored, nullptr);
  EXPECT_TRUE(unanchored->as_array().empty());

  // The merged cluster report landed alongside the worker artifacts.
  const std::filesystem::path cluster = dir / "dist_cluster.report.json";
  ASSERT_TRUE(std::filesystem::exists(cluster)) << cluster;
  std::filesystem::remove_all(dir);
}

TEST(NetDistributedTest, DeathWithoutFaultToleranceAborts) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  // A fault plan *is* what makes the placement fault-tolerant — so instead
  // exercise the validation arm: distributed rejects bad inputs up front.
  EngineOptions options;
  options.engine = EngineKind::kDistributed;
  options.propagation = ConfigFor(OptimizationLevel::kO4, 0);  // invalid
  auto result = RunViaEngine(
      setup, NetworkRankingApp(f.graph.num_vertices()), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace surfer
