#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "cluster/topology.h"
#include "partition/machine_graph.h"
#include "partition/partition_sketch.h"

namespace surfer {
namespace {

TEST(MachineGraphTest, CompleteWithBandwidthWeights) {
  const Topology topo = Topology::T2(8, 2, 1);
  const WeightedGraph mg = BuildMachineGraph(topo);
  EXPECT_EQ(mg.num_vertices(), 8u);
  // Complete graph: every vertex has 7 neighbors.
  for (VertexId v = 0; v < 8; ++v) {
    EXPECT_EQ(mg.Neighbors(v).size(), 7u);
  }
  // Intra-pod weight exceeds cross-pod weight by the delay factor.
  const auto weights = mg.EdgeWeights(0);
  const auto nbrs = mg.Neighbors(0);
  int64_t intra = 0;
  int64_t cross = 0;
  for (size_t i = 0; i < nbrs.size(); ++i) {
    if (topo.machine(nbrs[i]).pod == topo.machine(0).pod) {
      intra = weights[i];
    } else {
      cross = weights[i];
    }
  }
  EXPECT_NEAR(static_cast<double>(intra) / static_cast<double>(cross), 16.0,
              0.5);
}

TEST(BandwidthAwarePlacementTest, EveryPartitionPlaced) {
  const Topology topo = Topology::T2(16, 4, 1);
  PartitionSketch sketch(32);
  auto placement = ComputeBandwidthAwarePlacement(topo, sketch);
  ASSERT_TRUE(placement.ok());
  ASSERT_EQ(placement->partition_to_machine.size(), 32u);
  for (MachineId m : placement->partition_to_machine) {
    EXPECT_LT(m, 16u);
  }
  // With P = 2M, every machine holds exactly 2 partitions.
  std::vector<int> load(16, 0);
  for (MachineId m : placement->partition_to_machine) {
    ++load[m];
  }
  for (int l : load) {
    EXPECT_EQ(l, 2);
  }
}

TEST(BandwidthAwarePlacementTest, RootSplitsMachinesInHalf) {
  const Topology topo = Topology::T2(16, 2, 1);
  PartitionSketch sketch(16);
  auto placement = ComputeBandwidthAwarePlacement(topo, sketch);
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(placement->node_machines[1].size(), 16u);
  EXPECT_EQ(placement->node_machines[2].size(), 8u);
  EXPECT_EQ(placement->node_machines[3].size(), 8u);
}

TEST(BandwidthAwarePlacementTest, PodsStayTogetherOnT2) {
  // Minimizing cut bandwidth must split the cluster along the pod boundary:
  // the root split separates the two pods.
  const Topology topo = Topology::T2(16, 2, 1);
  PartitionSketch sketch(16);
  auto placement = ComputeBandwidthAwarePlacement(topo, sketch);
  ASSERT_TRUE(placement.ok());
  const auto& left = placement->node_machines[2];
  const auto& right = placement->node_machines[3];
  std::set<uint32_t> left_pods;
  std::set<uint32_t> right_pods;
  for (MachineId m : left) {
    left_pods.insert(topo.machine(m).pod);
  }
  for (MachineId m : right) {
    right_pods.insert(topo.machine(m).pod);
  }
  EXPECT_EQ(left_pods.size(), 1u);
  EXPECT_EQ(right_pods.size(), 1u);
  EXPECT_NE(*left_pods.begin(), *right_pods.begin());
}

TEST(BandwidthAwarePlacementTest, SiblingPartitionsCoLocatedMoreThanRandom) {
  // P3: sibling partitions (many mutual cross edges) should land on the
  // same machine or pod far more often under the bandwidth-aware mapping
  // than under random placement.
  const Topology topo = Topology::T2(16, 4, 1);
  PartitionSketch sketch(64);
  auto ba = ComputeBandwidthAwarePlacement(topo, sketch);
  ASSERT_TRUE(ba.ok());
  const auto random = RandomPlacement(64, topo, 5);

  auto same_pod_siblings = [&](const std::vector<MachineId>& placement) {
    int same = 0;
    for (PartitionId p = 0; p < 64; p += 2) {
      if (topo.machine(placement[p]).pod == topo.machine(placement[p + 1]).pod) {
        ++same;
      }
    }
    return same;
  };
  EXPECT_EQ(same_pod_siblings(ba->partition_to_machine), 32);
  EXPECT_LT(same_pod_siblings(random), 24);
}

TEST(BandwidthAwarePlacementTest, T3FastMachinesCarryMorePartitions) {
  // On T3 the capability-weighted machine bisection gives HIGH machines a
  // larger share of the partitions, so the slow half does not gate the
  // makespan (the load-balancing generalization of Section 4.2's "same
  // number of machines" constraint).
  const Topology topo = Topology::T3(16, 0.5, /*seed=*/3);
  PartitionSketch sketch(32);
  auto placement = ComputeBandwidthAwarePlacement(topo, sketch);
  ASSERT_TRUE(placement.ok());
  double max_nic = 0;
  for (MachineId m = 0; m < 16; ++m) {
    max_nic = std::max(max_nic, topo.machine(m).nic_bytes_per_sec);
  }
  int fast_partitions = 0;
  int slow_partitions = 0;
  for (PartitionId p = 0; p < 32; ++p) {
    const MachineId m = placement->partition_to_machine[p];
    if (topo.machine(m).nic_bytes_per_sec == max_nic) {
      ++fast_partitions;
    } else {
      ++slow_partitions;
    }
  }
  EXPECT_GT(fast_partitions, slow_partitions);
  // Count-balanced mode (used by the partitioning-time model) splits the
  // root machine set evenly instead.
  BandwidthAwarePlacementOptions count_balanced;
  count_balanced.capability_weights = false;
  auto counted = ComputeBandwidthAwarePlacement(topo, sketch, count_balanced);
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->node_machines[2].size(), 8u);
  EXPECT_EQ(counted->node_machines[3].size(), 8u);
}

TEST(BandwidthAwarePlacementTest, SingleMachineTakesEverything) {
  const Topology topo = Topology::T1(1);
  PartitionSketch sketch(8);
  auto placement = ComputeBandwidthAwarePlacement(topo, sketch);
  ASSERT_TRUE(placement.ok());
  for (MachineId m : placement->partition_to_machine) {
    EXPECT_EQ(m, 0u);
  }
}

TEST(BandwidthAwarePlacementTest, MoreMachinesThanPartitions) {
  const Topology topo = Topology::T1(16);
  PartitionSketch sketch(4);
  auto placement = ComputeBandwidthAwarePlacement(topo, sketch);
  ASSERT_TRUE(placement.ok());
  // All partitions placed on distinct machines (each leaf had 4 machines to
  // choose from).
  std::set<MachineId> used(placement->partition_to_machine.begin(),
                           placement->partition_to_machine.end());
  EXPECT_EQ(used.size(), 4u);
}

TEST(RandomPlacementTest, BalancedRoundRobin) {
  const Topology topo = Topology::T1(8);
  const auto placement = RandomPlacement(32, topo, 9);
  ASSERT_EQ(placement.size(), 32u);
  std::vector<int> load(8, 0);
  for (MachineId m : placement) {
    ASSERT_LT(m, 8u);
    ++load[m];
  }
  for (int l : load) {
    EXPECT_EQ(l, 4);
  }
}

TEST(RandomPlacementTest, SeedVariesAssignment) {
  const Topology topo = Topology::T1(8);
  EXPECT_NE(RandomPlacement(32, topo, 1), RandomPlacement(32, topo, 2));
  EXPECT_EQ(RandomPlacement(32, topo, 1), RandomPlacement(32, topo, 1));
}

}  // namespace
}  // namespace surfer
