#include <gtest/gtest.h>

#include "cluster/cost_model.h"
#include "cluster/metrics.h"
#include "cluster/topology.h"
#include "common/histogram.h"

namespace surfer {
namespace {

// ------------------------------------------------------------ TimeSeries

TEST(TimeSeriesTest, SpanSmearsUniformly) {
  TimeSeries ts(1.0);
  ts.AddSpan(0.0, 4.0, 40.0);
  for (int b = 0; b < 4; ++b) {
    EXPECT_DOUBLE_EQ(ts.ValueAt(b + 0.5), 10.0);
  }
  EXPECT_DOUBLE_EQ(ts.ValueAt(4.5), 0.0);
}

TEST(TimeSeriesTest, PartialBucketOverlap) {
  TimeSeries ts(1.0);
  ts.AddSpan(0.5, 1.5, 10.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(0.25), 5.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(1.25), 5.0);
}

TEST(TimeSeriesTest, TotalMassPreserved) {
  TimeSeries ts(2.0);
  ts.AddSpan(1.3, 9.7, 123.0);
  ts.AddSpan(0.0, 0.5, 7.0);
  double total = 0.0;
  for (double b : ts.buckets()) {
    total += b;
  }
  EXPECT_NEAR(total, 130.0, 1e-9);
}

TEST(TimeSeriesTest, IgnoresDegenerateSpans) {
  TimeSeries ts(1.0);
  ts.AddSpan(5.0, 5.0, 10.0);
  ts.AddSpan(5.0, 4.0, 10.0);
  ts.AddSpan(0.0, 1.0, 0.0);
  EXPECT_EQ(ts.num_buckets(), 0u);
}

TEST(TimeSeriesTest, RatesDivideByWidth) {
  TimeSeries ts(2.0);
  ts.AddSpan(0.0, 2.0, 10.0);
  const auto rates = ts.Rates();
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 5.0);
}

TEST(TimeSeriesTest, SpanWithinOneBucketLandsThereEntirely) {
  TimeSeries ts(1.0);
  ts.AddSpan(3.2, 3.7, 8.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(3.5), 8.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(2.5), 0.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(4.5), 0.0);
}

TEST(TimeSeriesTest, AsymmetricPartialBucketsSplitByOverlap) {
  // [0.75, 3.5) over 1 s buckets: overlaps are 0.25, 1, 1, 0.5 of the
  // 2.75 s span — the smeared mass must follow those fractions exactly.
  TimeSeries ts(1.0);
  ts.AddSpan(0.75, 3.5, 27.5);
  EXPECT_DOUBLE_EQ(ts.ValueAt(0.5), 2.5);
  EXPECT_DOUBLE_EQ(ts.ValueAt(1.5), 10.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(2.5), 10.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(3.5), 5.0);
}

TEST(TimeSeriesTest, OverlappingSpansAccumulate) {
  TimeSeries ts(1.0);
  ts.AddSpan(0.0, 2.0, 2.0);
  ts.AddSpan(1.0, 3.0, 4.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(0.5), 1.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(1.5), 3.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(2.5), 2.0);
}

// ------------------------------------------------------------- Histogram

TEST(HistogramEdgeTest, EmptyPercentilesAreZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(HistogramEdgeTest, SingleValueCollapsesAllPercentiles) {
  Histogram h;
  h.Add(3.5);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 3.5);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 3.5);
  EXPECT_DOUBLE_EQ(h.Percentile(99.9), 3.5);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.5);
  EXPECT_DOUBLE_EQ(h.StdDev(), 0.0);
}

TEST(HistogramEdgeTest, PercentilesClampToObservedRange) {
  Histogram h;
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    h.Add(v);
  }
  EXPECT_GE(h.Percentile(0.0), h.min());
  EXPECT_LE(h.Percentile(100.0), h.max());
  EXPECT_LE(h.Percentile(50.0), h.Percentile(90.0));
  EXPECT_LE(h.Percentile(90.0), h.Percentile(99.0));
}

TEST(HistogramEdgeTest, MergeIntoEmptyEqualsCopy) {
  Histogram a;
  a.Add(1.0);
  a.Add(10.0);
  Histogram empty;
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.min(), 1.0);
  EXPECT_DOUBLE_EQ(empty.max(), 10.0);
  EXPECT_DOUBLE_EQ(empty.sum(), 11.0);
  // Merging an empty histogram changes nothing.
  a.Merge(Histogram{});
  EXPECT_EQ(a.count(), 2u);
}

TEST(HistogramEdgeTest, CrossBucketMergeMatchesCombinedAdds) {
  // One histogram holds small values, the other holds values dozens of log2
  // buckets away; the merge must agree with adding everything to one.
  Histogram small;
  Histogram large;
  Histogram combined;
  for (double v : {0.001, 0.002, 0.004}) {
    small.Add(v);
    combined.Add(v);
  }
  for (double v : {1e6, 2e6, 4e6}) {
    large.Add(v);
    combined.Add(v);
  }
  small.Merge(large);
  EXPECT_EQ(small.count(), combined.count());
  EXPECT_DOUBLE_EQ(small.sum(), combined.sum());
  EXPECT_DOUBLE_EQ(small.min(), combined.min());
  EXPECT_DOUBLE_EQ(small.max(), combined.max());
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    EXPECT_DOUBLE_EQ(small.Percentile(p), combined.Percentile(p)) << p;
  }
}

// -------------------------------------------------------------- TaskCost

TEST(TaskCostTest, AddNetworkAccumulatesPerDestination) {
  TaskCost cost;
  cost.AddNetwork(3, 100.0);
  cost.AddNetwork(5, 50.0);
  cost.AddNetwork(3, 25.0);
  cost.AddNetwork(7, 0.0);  // ignored
  EXPECT_EQ(cost.network_out.size(), 2u);
  EXPECT_DOUBLE_EQ(cost.TotalNetworkBytes(), 175.0);
}

TEST(TaskCostTest, MergeFromCombinesEverything) {
  TaskCost a;
  a.disk_read_bytes = 10;
  a.cpu_bytes = 5;
  a.AddNetwork(1, 100);
  TaskCost b;
  b.disk_write_bytes = 20;
  b.random_io = true;
  b.AddNetwork(1, 50);
  b.AddNetwork(2, 25);
  a.MergeFrom(b);
  EXPECT_DOUBLE_EQ(a.disk_read_bytes, 10);
  EXPECT_DOUBLE_EQ(a.disk_write_bytes, 20);
  EXPECT_TRUE(a.random_io);
  EXPECT_DOUBLE_EQ(a.TotalNetworkBytes(), 175.0);
}

// ------------------------------------------------------------- CostModel

TEST(CostModelTest, PricesDiskCpuNetwork) {
  Topology topo = Topology::T1(2);
  CostParameters params;
  params.task_overhead_s = 1.0;
  params.cpu_bytes_per_sec = 100.0;
  CostModel model(&topo, params);

  TaskCost cost;
  cost.disk_read_bytes = topo.machine(0).disk_bytes_per_sec;  // 1 s of disk
  cost.cpu_bytes = 200.0;                                     // 2 s of CPU
  cost.AddNetwork(1, topo.Bandwidth(0, 1));                   // 1 s of net
  EXPECT_NEAR(model.TaskSeconds(0, cost), 1.0 + 1.0 + 2.0 + 1.0, 1e-9);
}

TEST(CostModelTest, LocalNetworkIsFree) {
  Topology topo = Topology::T1(2);
  CostParameters params;
  params.task_overhead_s = 0.0;
  CostModel model(&topo, params);
  TaskCost cost;
  cost.AddNetwork(0, 1e12);  // to itself
  EXPECT_DOUBLE_EQ(model.TaskSeconds(0, cost), 0.0);
}

TEST(CostModelTest, RandomIoPenalty) {
  Topology topo = Topology::T1(1);
  CostParameters params;
  params.task_overhead_s = 0.0;
  params.random_io_penalty = 8.0;
  CostModel model(&topo, params);
  TaskCost sequential;
  sequential.disk_read_bytes = 1e6;
  TaskCost random = sequential;
  random.random_io = true;
  EXPECT_NEAR(model.TaskSeconds(0, random) / model.TaskSeconds(0, sequential),
              8.0, 1e-9);
}

TEST(CostModelTest, SlowerLinkCostsMore) {
  Topology topo = Topology::T2(4, 2, 1);
  CostParameters params;
  params.task_overhead_s = 0.0;
  CostModel model(&topo, params);
  TaskCost intra;
  intra.AddNetwork(1, 1e6);  // same pod as machine 0
  TaskCost cross;
  cross.AddNetwork(2, 1e6);  // other pod
  EXPECT_GT(model.TaskSeconds(0, cross), model.TaskSeconds(0, intra) * 15.0);
}

// ---------------------------------------------------- Stage / RunMetrics

TEST(MetricsTest, AccumulateSumsStages) {
  RunMetrics metrics;
  StageMetrics s1;
  s1.name = "a";
  s1.duration_s = 2.0;
  s1.busy_machine_seconds = 6.0;
  s1.network_bytes = 100.0;
  s1.disk_read_bytes = 10.0;
  s1.disk_write_bytes = 5.0;
  StageMetrics s2;
  s2.name = "b";
  s2.duration_s = 3.0;
  s2.busy_machine_seconds = 4.0;
  s2.network_bytes = 50.0;
  metrics.Accumulate(s1);
  metrics.Accumulate(s2);
  EXPECT_DOUBLE_EQ(metrics.response_time_s, 5.0);
  EXPECT_DOUBLE_EQ(metrics.total_machine_time_s, 10.0);
  EXPECT_DOUBLE_EQ(metrics.network_bytes, 150.0);
  EXPECT_DOUBLE_EQ(metrics.disk_bytes, 15.0);
  ASSERT_EQ(metrics.stages.size(), 2u);
  EXPECT_FALSE(metrics.Summary().empty());
  EXPECT_FALSE(metrics.stages[0].ToString().empty());
}

}  // namespace
}  // namespace surfer
