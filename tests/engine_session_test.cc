// The surfer::Engine session front-end: option validation (every rejection
// EngineOptions::Validate makes), app-type naming in engine-capability
// errors, null-argument handling, and the deprecated free-function RunApp
// shims still forwarding correctly.

#include <string>

#include <gtest/gtest.h>

#include "apps/network_ranking.h"
#include "apps/reverse_link_graph.h"
#include "core/engine.h"
#include "core/run_app.h"
#include "propagation/config.h"
#include "tests/test_fixtures.h"

namespace surfer {
namespace {

using testing_fixtures::EngineFixture;
using testing_fixtures::MakeEngineFixture;

const EngineFixture& Fixture() {
  static const EngineFixture* fixture = new EngineFixture(MakeEngineFixture());
  return *fixture;
}

EngineOptions OptionsFor(EngineKind kind, int iterations = 2) {
  EngineOptions options;
  options.engine = kind;
  options.propagation.iterations = iterations;
  return options;
}

// ------------------------------------------------ EngineOptions::Validate

TEST(EngineOptionsValidateTest, DefaultOptionsAreValidForEveryEngine) {
  for (EngineKind kind : {EngineKind::kAnalytic, EngineKind::kConcurrent,
                          EngineKind::kDistributed}) {
    EXPECT_TRUE(OptionsFor(kind).Validate().ok()) << EngineKindName(kind);
  }
}

TEST(EngineOptionsValidateTest, RejectsNegativeIterations) {
  EngineOptions options = OptionsFor(EngineKind::kAnalytic, -1);
  const Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("iterations"), std::string::npos);
}

TEST(EngineOptionsValidateTest, RejectsAnalyticWithWorkerCount) {
  EngineOptions options = OptionsFor(EngineKind::kAnalytic);
  options.runtime.max_workers = 4;
  const Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("max_workers"), std::string::npos);
}

TEST(EngineOptionsValidateTest, RejectsAnalyticWithChannelWindow) {
  EngineOptions options = OptionsFor(EngineKind::kAnalytic);
  options.runtime.channel_window_bytes = 4096;
  const Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("channel_window_bytes"), std::string::npos);
}

TEST(EngineOptionsValidateTest, RejectsAnalyticWithRuntimeTelemetry) {
  EngineOptions options = OptionsFor(EngineKind::kAnalytic);
  options.runtime.telemetry.enabled = true;
  const Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("telemetry"), std::string::npos);
}

TEST(EngineOptionsValidateTest, RejectsAnalyticWithRuntimeFaults) {
  EngineOptions options = OptionsFor(EngineKind::kAnalytic);
  options.runtime.faults.push_back({});
  const Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("sim_faults"), std::string::npos);
}

TEST(EngineOptionsValidateTest, RejectsSimFaultsOnRealEngines) {
  for (EngineKind kind :
       {EngineKind::kConcurrent, EngineKind::kDistributed}) {
    EngineOptions options = OptionsFor(kind);
    options.sim_faults.push_back({});
    const Status status = options.Validate();
    ASSERT_FALSE(status.ok()) << EngineKindName(kind);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    // The message points at the right knob for the selected engine.
    EXPECT_NE(status.message().find(EngineKindName(kind)), std::string::npos);
  }
}

TEST(EngineOptionsValidateTest, RejectsConcurrentWithZeroChannelWindow) {
  EngineOptions options = OptionsFor(EngineKind::kConcurrent);
  options.runtime.channel_window_bytes = 0;
  const Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("channel_window_bytes"), std::string::npos);
}

TEST(EngineOptionsValidateTest, RejectsDistributedKnobsOnOtherEngines) {
  for (EngineKind kind : {EngineKind::kAnalytic, EngineKind::kConcurrent}) {
    EngineOptions options = OptionsFor(kind);
    options.distributed.max_processes = 4;
    const Status status = options.Validate();
    ASSERT_FALSE(status.ok()) << EngineKindName(kind);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("max_processes"), std::string::npos);
  }
}

TEST(EngineOptionsValidateTest, RejectsRuntimeFaultsOnDistributed) {
  EngineOptions options = OptionsFor(EngineKind::kDistributed);
  options.runtime.faults.push_back({});
  const Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("distributed.faults"), std::string::npos);
}

TEST(EngineOptionsValidateTest, AcceptsEngineSpecificKnobsOnTheirEngine) {
  EngineOptions concurrent = OptionsFor(EngineKind::kConcurrent);
  concurrent.runtime.max_workers = 4;
  concurrent.runtime.channel_window_bytes = 4096;
  concurrent.runtime.telemetry.enabled = true;
  EXPECT_TRUE(concurrent.Validate().ok());

  EngineOptions distributed = OptionsFor(EngineKind::kDistributed);
  distributed.distributed.max_processes = 3;
  EXPECT_TRUE(distributed.Validate().ok());

  EngineOptions analytic = OptionsFor(EngineKind::kAnalytic);
  analytic.sim_faults.push_back({});
  EXPECT_TRUE(analytic.Validate().ok());
}

// -------------------------------------------------------- Engine::Open

TEST(EngineSessionTest, OpenRejectsNullArguments) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO2);
  auto session = Engine::Open(nullptr, setup.placement, setup.topology);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineSessionTest, OpenRejectsInvalidOptions) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO2);
  EngineOptions options = OptionsFor(EngineKind::kAnalytic);
  options.runtime.max_workers = 2;
  auto session = Engine::Open(setup, options);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineSessionTest, SetupOverloadAppliesTheBundledSimOptions) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO2);
  auto session = Engine::Open(setup, OptionsFor(EngineKind::kAnalytic));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(session->options().sim.heartbeat_interval_s,
            setup.sim_options.heartbeat_interval_s);
  EXPECT_EQ(session->graph(), setup.graph);
  EXPECT_EQ(session->topology(), setup.topology);
}

TEST(EngineSessionTest, OneSessionRunsManyApps) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  auto session = Engine::Open(setup, OptionsFor(EngineKind::kAnalytic, 2));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto first = session->Run(NetworkRankingApp(f.graph.num_vertices()));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = session->Run(NetworkRankingApp(f.graph.num_vertices()));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_EQ(first->states.size(), second->states.size());
  for (size_t v = 0; v < first->states.size(); ++v) {
    ASSERT_EQ(first->states[v], second->states[v]) << "vertex " << v;
  }
}

// --------------------------------------- app-capability error reporting

TEST(EngineSessionTest, ConcurrentRejectionNamesTheAppAndSupportedEngines) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO2);
  auto session =
      Engine::Open(setup, OptionsFor(EngineKind::kConcurrent, 1));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto result = session->Run(ReverseLinkGraphApp());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // Names the offending app type (demangled) ...
  EXPECT_NE(result.status().message().find("ReverseLinkGraphApp"),
            std::string::npos)
      << result.status().message();
  // ... and lists the engines that can run it.
  EXPECT_NE(result.status().message().find("kAnalytic"), std::string::npos)
      << result.status().message();
}

TEST(EngineSessionTest, DistributedRejectionNamesTheAppAndSupportedEngines) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO2);
  auto session =
      Engine::Open(setup, OptionsFor(EngineKind::kDistributed, 1));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto result = session->Run(ReverseLinkGraphApp());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("ReverseLinkGraphApp"),
            std::string::npos)
      << result.status().message();
  EXPECT_NE(result.status().message().find("kAnalytic"), std::string::npos)
      << result.status().message();
  // RLG is not wire-serializable, so kConcurrent must NOT be listed as
  // supported.
  EXPECT_EQ(result.status().message().find("kConcurrent"), std::string::npos)
      << result.status().message();
}

TEST(EngineSessionTest,
     DistributedRejectionListsConcurrentForWireSerializableApps) {
  // An app whose Message is trivially copyable but whose VertexState is not:
  // the threaded runtime carries it, the multi-process engine (which also
  // replicates states) does not.
  struct WireOnlyApp {
    using VertexState = std::vector<double>;
    using Message = double;
    VertexState InitState(VertexId, std::span<const VertexId>) const {
      return {1.0};
    }
    void Transfer(VertexId, const VertexState&, std::span<const VertexId>,
                  PropagationEmitter<Message>&) const {}
    void Combine(VertexId, VertexState&, std::span<const VertexId>,
                 std::vector<Message>&) const {}
    size_t MessageBytes(const Message&) const { return sizeof(Message); }
    size_t StateBytes(const VertexState&) const { return sizeof(double); }
  };
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO2);
  auto session =
      Engine::Open(setup, OptionsFor(EngineKind::kDistributed, 1));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto result = session->Run(WireOnlyApp());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("WireOnlyApp"), std::string::npos)
      << result.status().message();
  EXPECT_NE(result.status().message().find("kConcurrent"), std::string::npos)
      << result.status().message();
}

TEST(EngineSessionTest, ExternalSimRejectionNamesTheSessionEngine) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO2);
  auto session =
      Engine::Open(setup, OptionsFor(EngineKind::kConcurrent, 1));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  JobSimulation sim(setup.topology, setup.sim_options);
  auto result =
      session->Run(NetworkRankingApp(f.graph.num_vertices()), &sim);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("kConcurrent"), std::string::npos)
      << result.status().message();
}

// ------------------------------------------------------ deprecated shims

// The three free-function overloads must keep working (and now also
// validate options) until external callers finish migrating.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(EngineSessionTest, DeprecatedRunAppShimsForwardThroughTheSession) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO2);
  EngineOptions options = OptionsFor(EngineKind::kAnalytic, 2);

  auto via_setup =
      RunApp(setup, NetworkRankingApp(f.graph.num_vertices()), options);
  ASSERT_TRUE(via_setup.ok()) << via_setup.status().ToString();

  // The setup overload injects the bundle's sim options; the raw overload
  // runs whatever the caller passes.
  EngineOptions raw_options = options;
  raw_options.sim = setup.sim_options;
  auto via_pointers =
      RunApp(setup.graph, setup.placement, setup.topology,
             NetworkRankingApp(f.graph.num_vertices()), raw_options);
  ASSERT_TRUE(via_pointers.ok()) << via_pointers.status().ToString();
  ASSERT_EQ(via_setup->states.size(), via_pointers->states.size());
  for (size_t v = 0; v < via_setup->states.size(); ++v) {
    ASSERT_EQ(via_setup->states[v], via_pointers->states[v]);
  }

  JobSimulation sim(setup.topology, setup.sim_options);
  auto via_sim = RunApp(setup.graph, setup.placement, setup.topology,
                        NetworkRankingApp(f.graph.num_vertices()),
                        raw_options, &sim);
  ASSERT_TRUE(via_sim.ok()) << via_sim.status().ToString();
  EXPECT_GT(sim.metrics().response_time_s, 0.0);

  // The shims now validate: a nonsense combination fails loudly instead of
  // being silently ignored as it was pre-session-API.
  EngineOptions bad = options;
  bad.runtime.max_workers = 2;
  auto rejected =
      RunApp(setup, NetworkRankingApp(f.graph.num_vertices()), bad);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

#pragma GCC diagnostic pop

}  // namespace
}  // namespace surfer
