#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/topology.h"
#include "runtime/barrier.h"
#include "runtime/channel.h"
#include "runtime/channel_plan.h"
#include "runtime/fault.h"

namespace surfer {
namespace runtime {
namespace {

// ------------------------------------------------------------ channels

TEST(BoundedChannelTest, FifoOrderAndStats) {
  BoundedChannel<int> ch(4);
  for (int i = 0; i < 4; ++i) {
    int item = i;
    EXPECT_TRUE(ch.TrySend(item));
  }
  EXPECT_EQ(ch.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    auto item = ch.TryRecv();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_FALSE(ch.TryRecv().has_value());
  const ChannelStats stats = ch.stats();
  EXPECT_EQ(stats.capacity, 4u);
  EXPECT_EQ(stats.sends, 4u);
  EXPECT_EQ(stats.receives, 4u);
  EXPECT_EQ(stats.stall_attempts, 0u);
  EXPECT_EQ(stats.items_stalled, 0u);
  EXPECT_EQ(stats.max_depth, 4u);
  EXPECT_EQ(stats.depth_on_send.count(), 4u);
}

TEST(BoundedChannelTest, FullChannelRejectsAndCountsStalls) {
  BoundedChannel<int> ch(2);
  int item = 1;
  EXPECT_TRUE(ch.TrySend(item));
  item = 2;
  EXPECT_TRUE(ch.TrySend(item));
  item = 99;
  EXPECT_FALSE(ch.TrySend(item));
  EXPECT_EQ(item, 99);  // failed send leaves the item intact
  EXPECT_FALSE(
      ch.TrySendFor(item, std::chrono::milliseconds(5)));
  EXPECT_EQ(ch.stats().stall_attempts, 2u);
  // Both failures defaulted to is_retry=false, so each counts as a fresh
  // stalled item.
  EXPECT_EQ(ch.stats().items_stalled, 2u);
  EXPECT_EQ(ch.size(), 2u);
}

TEST(BoundedChannelTest, RetriesCountAttemptsNotItems) {
  BoundedChannel<int> ch(1);
  int item = 1;
  ASSERT_TRUE(ch.TrySend(item));
  item = 2;
  EXPECT_FALSE(ch.TrySend(item));  // first failure: a new stalled item
  EXPECT_FALSE(ch.TrySend(item, /*weight=*/1, /*is_retry=*/true));
  EXPECT_FALSE(ch.TrySend(item, /*weight=*/1, /*is_retry=*/true));
  const ChannelStats stats = ch.stats();
  EXPECT_EQ(stats.stall_attempts, 3u);
  EXPECT_EQ(stats.items_stalled, 1u);
}

TEST(BoundedChannelTest, WeightedAdmissionModelsBytesInFlight) {
  BoundedChannel<int> ch(100);
  int item = 1;
  EXPECT_TRUE(ch.TrySend(item, /*weight=*/60));
  item = 2;
  EXPECT_FALSE(ch.TrySend(item, /*weight=*/50));  // 60 + 50 > 100
  EXPECT_TRUE(ch.TrySend(item, /*weight=*/40));   // 60 + 40 == 100 fits
  EXPECT_EQ(ch.size(), 2u);
  ASSERT_TRUE(ch.TryRecv().has_value());  // frees 60
  item = 3;
  EXPECT_TRUE(ch.TrySend(item, /*weight=*/50));  // 40 + 50 <= 100
}

TEST(BoundedChannelTest, OversizedItemAdmittedOnlyWhenEmpty) {
  BoundedChannel<int> ch(10);
  int big = 1;
  // Heavier than the whole capacity, but the queue is empty: progress wins.
  EXPECT_TRUE(ch.TrySend(big, /*weight=*/64));
  int next = 2;
  EXPECT_FALSE(ch.TrySend(next, /*weight=*/1));  // queue non-empty, over budget
  ASSERT_TRUE(ch.TryRecv().has_value());
  EXPECT_TRUE(ch.TrySend(next, /*weight=*/1));
}

TEST(BoundedChannelTest, ProducerBlocksOnFullChannelUntilConsumerDrains) {
  BoundedChannel<int> ch(1);
  int item = 1;
  ASSERT_TRUE(ch.TrySend(item));

  std::atomic<bool> sent{false};
  std::thread producer([&] {
    ch.Send(2);  // must block: the single slot is taken
    sent.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(sent.load()) << "producer should be blocked on the full channel";

  auto first = ch.TryRecv();  // frees the slot, unblocking the producer
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 1);
  producer.join();
  EXPECT_TRUE(sent.load());
  auto second = ch.TryRecv();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 2);
}

TEST(BoundedChannelTest, MinimumCapacityIsOne) {
  BoundedChannel<int> ch(0);
  EXPECT_EQ(ch.capacity(), 1u);
}

// ------------------------------------------------------------- barrier

TEST(BspBarrierTest, GenerationsAdvanceAcrossThreads) {
  constexpr uint32_t kThreads = 4;
  constexpr int kRounds = 25;
  BspBarrier barrier(kThreads);
  std::atomic<uint32_t> inside{0};
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        inside.fetch_add(1);
        barrier.ArriveAndWait();
        // Everyone must have entered this round before anyone proceeds.
        EXPECT_GE(inside.load(), (round + 1) * kThreads);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(barrier.generation(), static_cast<uint64_t>(kRounds));
}

TEST(BspBarrierTest, PollCallbackRunsWhileWaiting) {
  BspBarrier barrier(2);
  std::atomic<uint64_t> polls{0};
  std::thread waiter([&] {
    barrier.ArriveAndWait([&] { polls.fetch_add(1); });
  });
  // Give the waiter time to spin on the poll loop before releasing it.
  while (polls.load() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  barrier.ArriveAndWait();
  waiter.join();
  EXPECT_GE(polls.load(), 3u);
}

TEST(BspBarrierTest, DefectReleasesCurrentGeneration) {
  // Two of three participants arrive; the third defects (worker death) and
  // the generation must complete for the two waiters.
  BspBarrier barrier(3);
  std::thread a([&] { barrier.ArriveAndWait(); });
  std::thread b([&] { barrier.ArriveAndWait(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(barrier.generation(), 0u);
  barrier.Defect();
  a.join();
  b.join();
  EXPECT_EQ(barrier.generation(), 1u);
  EXPECT_EQ(barrier.participants(), 2u);
  // The barrier stays usable at the reduced membership.
  std::thread c([&] { barrier.ArriveAndWait(); });
  barrier.ArriveAndWait();
  c.join();
  EXPECT_EQ(barrier.generation(), 2u);
}

// -------------------------------------------------------- channel plan

TEST(ChannelPlanTest, UniformTopologyGetsUniformCapacities) {
  const Topology t1 = Topology::T1(4);
  const std::vector<size_t> caps = PlanChannelCapacities(t1, 32);
  ASSERT_EQ(caps.size(), 16u);
  for (size_t cap : caps) {
    EXPECT_EQ(cap, 32u);
  }
}

TEST(ChannelPlanTest, CrossPodLinksAreNarrow) {
  // T2 with two pods and a 16x cross-pod slowdown: intra-pod pairs keep the
  // base capacity, cross-pod pairs get base/16, self links stay at base.
  const Topology t2 = Topology::T2(4, 2, 1, /*second_level_factor=*/16.0);
  const uint32_t n = t2.num_machines();
  const std::vector<size_t> caps = PlanChannelCapacities(t2, 32);
  for (uint32_t a = 0; a < n; ++a) {
    for (uint32_t b = 0; b < n; ++b) {
      const size_t cap = caps[a * n + b];
      if (a == b) {
        EXPECT_EQ(cap, 32u);
      } else if (t2.machine(a).pod == t2.machine(b).pod) {
        EXPECT_EQ(cap, 32u);
      } else {
        EXPECT_EQ(cap, 2u);  // 32 / 16
      }
    }
  }
}

TEST(ChannelPlanTest, CapacityNeverDropsBelowOne) {
  const Topology t2 = Topology::T2(4, 2, 1, /*second_level_factor=*/128.0);
  const std::vector<size_t> caps = PlanChannelCapacities(t2, 4);
  for (size_t cap : caps) {
    EXPECT_GE(cap, 1u);  // 4/128 rounds to 0 and must clamp
  }
}

// --------------------------------------------------------------- fault

TEST(FaultControllerTest, KillsAtTaskGranularity) {
  FaultController controller({RuntimeFaultPlan{
      .machine = 3, .iteration = 1, .stage = RuntimeStage::kTransfer,
      .after_tasks = 2}});
  EXPECT_FALSE(controller.ShouldKill(3, 1, RuntimeStage::kTransfer, 0));
  EXPECT_FALSE(controller.ShouldKill(3, 1, RuntimeStage::kTransfer, 1));
  EXPECT_TRUE(controller.ShouldKill(3, 1, RuntimeStage::kTransfer, 2));
  EXPECT_TRUE(controller.ShouldKill(3, 1, RuntimeStage::kTransfer, 5));
  // Wrong machine / iteration / stage never fire.
  EXPECT_FALSE(controller.ShouldKill(2, 1, RuntimeStage::kTransfer, 9));
  EXPECT_FALSE(controller.ShouldKill(3, 0, RuntimeStage::kTransfer, 9));
  EXPECT_FALSE(controller.ShouldKill(3, 1, RuntimeStage::kCombine, 9));
  EXPECT_TRUE(FaultController{}.empty());
}

}  // namespace
}  // namespace runtime
}  // namespace surfer
