#include <cstdint>
#include <cstring>
#include <map>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "apps/degree_distribution.h"
#include "apps/network_ranking.h"
#include "apps/reverse_link_graph.h"
#include "core/engine.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "propagation/app_traits.h"
#include "propagation/config.h"
#include "propagation/runner.h"
#include "runtime/executor.h"
#include "runtime/stats.h"
#include "runtime/timeline.h"
#include "tests/test_fixtures.h"

namespace surfer {
namespace {

using runtime::RuntimeExecutor;
using runtime::RuntimeFaultPlan;
using runtime::RuntimeOptions;
using runtime::RuntimeStage;
using testing_fixtures::EngineFixture;
using testing_fixtures::MakeEngineFixture;

const EngineFixture& Fixture() {
  static const EngineFixture* fixture =
      new EngineFixture(MakeEngineFixture());
  return *fixture;
}

constexpr OptimizationLevel kAllLevels[] = {
    OptimizationLevel::kO1, OptimizationLevel::kO2, OptimizationLevel::kO3,
    OptimizationLevel::kO4};

/// Bitwise comparison of two state vectors; on mismatch reports the first
/// differing vertex so failures are debuggable.
template <typename State>
void ExpectBitIdentical(const std::vector<State>& expected,
                        const std::vector<State>& actual,
                        const std::string& what) {
  ASSERT_EQ(expected.size(), actual.size()) << what;
  if (std::memcmp(expected.data(), actual.data(),
                  expected.size() * sizeof(State)) == 0) {
    return;
  }
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_EQ(std::memcmp(&expected[v], &actual[v], sizeof(State)), 0)
        << what << ": first bit difference at vertex " << v << " (expected "
        << expected[v] << ", got " << actual[v] << ")";
  }
}

PropagationConfig ConfigFor(OptimizationLevel level, int iterations) {
  PropagationConfig config = PropagationConfig::ForLevel(level);
  config.iterations = iterations;
  return config;
}

// ----------------------------------------------- bit-identity contract

TEST(RuntimeTest, NetworkRankingBitIdenticalAcrossLevelsAndWorkerCounts) {
  const EngineFixture& f = Fixture();
  for (OptimizationLevel level : kAllLevels) {
    const BenchmarkSetup setup = f.Setup(level);
    const PropagationConfig config = ConfigFor(level, /*iterations=*/3);
    NetworkRankingApp app(f.graph.num_vertices());
    PropagationRunner<NetworkRankingApp> runner(
        setup.graph, setup.placement, setup.topology, app, config);
    ASSERT_TRUE(runner.Run(setup.sim_options).ok());

    // Worker count 1 is the single-worker degeneracy case (pure sequential
    // execution through the same code path); 3 forces machine multiplexing;
    // 8 is one worker per machine.
    for (uint32_t workers : {1u, 3u, 8u}) {
      RuntimeOptions options;
      options.max_workers = workers;
      RuntimeExecutor<NetworkRankingApp> executor(
          setup.graph, setup.placement, setup.topology, app, config, options);
      ASSERT_TRUE(executor.Run().ok());
      ExpectBitIdentical(runner.states(), executor.states(),
                         OptimizationLevelName(level) + " with " +
                             std::to_string(workers) + " workers");
      EXPECT_EQ(executor.stats().num_workers, workers);
      EXPECT_GT(executor.stats().messages_sent, 0u);
      EXPECT_GT(executor.stats().barrier_generations, 0u);
    }
  }
}

TEST(RuntimeTest, DegreeDistributionVirtualOutputsMatchSequential) {
  const EngineFixture& f = Fixture();
  for (OptimizationLevel level : kAllLevels) {
    const BenchmarkSetup setup = f.Setup(level);
    const PropagationConfig config = ConfigFor(level, /*iterations=*/1);
    DegreeDistributionApp app;
    PropagationRunner<DegreeDistributionApp> runner(
        setup.graph, setup.placement, setup.topology, app, config);
    ASSERT_TRUE(runner.Run(setup.sim_options).ok());
    ASSERT_FALSE(runner.virtual_outputs().empty());

    RuntimeExecutor<DegreeDistributionApp> executor(
        setup.graph, setup.placement, setup.topology, app, config);
    ASSERT_TRUE(executor.Run().ok());
    EXPECT_EQ(runner.virtual_outputs(), executor.virtual_outputs())
        << OptimizationLevelName(level);
  }
}

TEST(RuntimeTest, BitIdenticalUnderMaximumBackpressure) {
  // Capacity-1 channels force every link to stall constantly; the
  // drain-while-blocked send loop must still complete with exact results.
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  const PropagationConfig config =
      ConfigFor(OptimizationLevel::kO4, /*iterations=*/2);
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationRunner<NetworkRankingApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());

  RuntimeOptions options;
  // A 1-byte window means every batch is oversized and only admitted on an
  // empty queue — the strongest backpressure the weighted channel can exert.
  options.channel_window_bytes = 1;
  RuntimeExecutor<NetworkRankingApp> executor(
      setup.graph, setup.placement, setup.topology, app, config, options);
  ASSERT_TRUE(executor.Run().ok());
  ExpectBitIdentical(runner.states(), executor.states(),
                     "capacity-1 channels");
}

TEST(RuntimeTest, BitIdenticalWithWireCombineDisabled) {
  // With wire-level combination off, the executor must match a sequential
  // run that also skips local combination: both move the same uncombined
  // message multiset, and the per-link bytes must still reconcile exactly.
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  PropagationConfig config = ConfigFor(OptimizationLevel::kO4, /*iterations=*/2);
  config.local_combination = false;
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationRunner<NetworkRankingApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());

  for (uint32_t workers : {1u, 3u, 8u}) {
    RuntimeOptions options;
    options.max_workers = workers;
    options.wire.wire_combine = false;
    RuntimeExecutor<NetworkRankingApp> executor(
        setup.graph, setup.placement, setup.topology, app, config, options);
    ASSERT_TRUE(executor.Run().ok());
    ExpectBitIdentical(runner.states(), executor.states(),
                       "wire-combine off, " + std::to_string(workers) +
                           " workers");
    EXPECT_EQ(executor.stats().wire_messages_combined, 0u);

    const std::vector<double>& analytic = runner.link_network_bytes();
    const std::vector<uint64_t>& measured = executor.stats().link_bytes;
    const uint32_t n = f.topology.num_machines();
    for (uint32_t src = 0; src < n; ++src) {
      for (uint32_t dst = 0; dst < n; ++dst) {
        if (src == dst) {
          continue;
        }
        const size_t i = static_cast<size_t>(src) * n + dst;
        EXPECT_EQ(analytic[i], static_cast<double>(measured[i]))
            << "uncombined link " << src << "->" << dst;
      }
    }
  }
}

TEST(RuntimeTest, WireBatchStatsAreCoherent) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  const PropagationConfig config =
      ConfigFor(OptimizationLevel::kO4, /*iterations=*/3);
  NetworkRankingApp app(f.graph.num_vertices());
  RuntimeOptions options;
  options.max_workers = 8;
  RuntimeExecutor<NetworkRankingApp> executor(
      setup.graph, setup.placement, setup.topology, app, config, options);
  ASSERT_TRUE(executor.Run().ok());

  const runtime::RuntimeStats& stats = executor.stats();
  // Every channel item is a sealed batch; every batch holds >= 1 segment.
  EXPECT_EQ(stats.wire_batches_sent, stats.buffers_sent);
  EXPECT_GE(stats.wire_segments_sent, stats.wire_batches_sent);
  EXPECT_GT(stats.wire_payload_bytes, 0u);
  // NR is mergeable and the fixture has parallel edges into shared targets,
  // so wire combination must fire under O4 (local combination on).
  EXPECT_GT(stats.wire_messages_combined, 0u);
  EXPECT_EQ(stats.batch_fill.count(), stats.wire_batches_sent);
  EXPECT_EQ(stats.wire_flush_size + stats.wire_flush_deadline +
                stats.wire_flush_stage_end,
            stats.wire_batches_sent);
  // Across 3 iterations the pool must be recycling buffers, not allocating
  // one per batch.
  EXPECT_EQ(stats.pool_buffers_acquired, stats.wire_batches_sent);
  EXPECT_GT(stats.pool_buffers_reused, 0u);
}

// ------------------------------------ cost-model cross-validation (bytes)

TEST(RuntimeTest, PerLinkBytesReconcileWithCostModel) {
  const EngineFixture& f = Fixture();
  const uint32_t n = f.topology.num_machines();
  for (OptimizationLevel level : kAllLevels) {
    const BenchmarkSetup setup = f.Setup(level);
    const PropagationConfig config = ConfigFor(level, /*iterations=*/2);
    NetworkRankingApp app(f.graph.num_vertices());
    PropagationRunner<NetworkRankingApp> runner(
        setup.graph, setup.placement, setup.topology, app, config);
    ASSERT_TRUE(runner.Run(setup.sim_options).ok());

    RuntimeExecutor<NetworkRankingApp> executor(
        setup.graph, setup.placement, setup.topology, app, config);
    ASSERT_TRUE(executor.Run().ok());

    const std::vector<double>& analytic = runner.link_network_bytes();
    const std::vector<uint64_t>& measured = executor.stats().link_bytes;
    ASSERT_EQ(analytic.size(), static_cast<size_t>(n) * n);
    ASSERT_EQ(measured.size(), analytic.size());
    double analytic_total = 0.0;
    for (uint32_t src = 0; src < n; ++src) {
      for (uint32_t dst = 0; dst < n; ++dst) {
        const size_t i = static_cast<size_t>(src) * n + dst;
        if (src == dst) {
          EXPECT_EQ(analytic[i], 0.0) << "analytic diagonal must be empty";
          continue;  // runtime diagonal carries local (non-network) traffic
        }
        EXPECT_EQ(analytic[i], static_cast<double>(measured[i]))
            << OptimizationLevelName(level) << " link " << src << "->" << dst;
        analytic_total += analytic[i];
      }
    }
    EXPECT_GT(analytic_total, 0.0);
    EXPECT_EQ(static_cast<double>(executor.stats().TotalNetworkBytes()),
              analytic_total);
  }
}

TEST(RuntimeStatsTest, TotalNetworkBytesToleratesShortOrEmptyMatrix) {
  // Stats objects are plain data that reports and tests build by hand; an
  // absent or truncated link matrix must read as "no traffic", not UB.
  runtime::RuntimeStats stats;
  stats.num_machines = 4;
  EXPECT_EQ(stats.TotalNetworkBytes(), 0u);  // empty link_bytes

  stats.link_bytes = {0, 7, 9};  // 3 of the expected 16 entries
  EXPECT_EQ(stats.TotalNetworkBytes(), 16u);  // [0][1] + [0][2], diag skipped

  stats.link_bytes.assign(16, 1);
  EXPECT_EQ(stats.TotalNetworkBytes(), 12u);  // full matrix, 4 diagonal zeros
}

// ------------------------------------------- superstep profiler (timeline)

TEST(RuntimeTest, ProfilingEnabledRunStaysBitIdenticalWithTimeline) {
  // The profiler's core promise: turning it on changes nothing about the
  // computation. Compare against the sequential runner with the tracer and
  // metrics attached and the sharded hot path active.
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  constexpr int kIterations = 3;
  PropagationConfig config = ConfigFor(OptimizationLevel::kO4, kIterations);
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationRunner<NetworkRankingApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  config.tracer = &tracer;
  config.metrics = &metrics;
  RuntimeOptions options;
  options.max_workers = 3;
  RuntimeExecutor<NetworkRankingApp> executor(
      setup.graph, setup.placement, setup.topology, app, config, options);
  ASSERT_TRUE(executor.Run().ok());
  ExpectBitIdentical(runner.states(), executor.states(),
                     "profiling enabled");

  const runtime::RuntimeStats& stats = executor.stats();
  // One profile per (iteration, stage), in execution order.
  ASSERT_EQ(stats.timeline.size(), static_cast<size_t>(kIterations) * 2);
  for (size_t step = 0; step < stats.timeline.size(); ++step) {
    const runtime::SuperstepProfile& profile = stats.timeline[step];
    EXPECT_EQ(profile.iteration, static_cast<int>(step / 2));
    EXPECT_EQ(profile.stage, step % 2 == 0 ? RuntimeStage::kTransfer
                                           : RuntimeStage::kCombine);
    ASSERT_EQ(profile.machines.size(), stats.num_machines);
    double step_busy = 0.0;
    for (const runtime::PhaseSeconds& phases : profile.machines) {
      EXPECT_GE(phases.compute_s, 0.0);
      EXPECT_GE(phases.serialize_s, 0.0);
      EXPECT_GE(phases.blocked_s, 0.0);
      EXPECT_GE(phases.barrier_s, 0.0);
      step_busy += phases.Busy();
    }
    // Every superstep did real work on this fixture.
    EXPECT_GT(step_busy, 0.0) << "step " << step;
    const runtime::StragglerStats straggler =
        runtime::ComputeStraggler(profile);
    EXPECT_NE(straggler.machine, kInvalidMachine);
    EXPECT_GE(straggler.skew, 1.0);  // max/mean is >= 1 by construction
    EXPECT_GE(straggler.max_busy_s, straggler.mean_busy_s);
  }

  const std::vector<runtime::CriticalPathEntry> path =
      runtime::ComputeCriticalPath(stats.timeline);
  ASSERT_EQ(path.size(), stats.timeline.size());
  for (const runtime::CriticalPathEntry& entry : path) {
    ASSERT_NE(entry.machine, kInvalidMachine);
    // The chained machine is the straggler of its step.
    EXPECT_DOUBLE_EQ(
        entry.busy_s,
        stats.timeline[entry.step].machines[entry.machine].Busy());
  }

  // At the default shard capacity this workload never overflows a ring.
  EXPECT_EQ(stats.trace_events_dropped, 0u);
  if (obs::Tracer::CompiledIn()) {
    // The sharded hot path delivered per-task spans into the sink tracer.
    size_t task_spans = 0;
    for (const obs::TraceEvent& event : tracer.Events()) {
      if (event.name == "rt_task_transfer" ||
          event.name == "rt_task_combine") {
        ++task_spans;
      }
    }
    EXPECT_GT(task_spans, 0u);
  }
}

TEST(RuntimeTest, TelemetryEnabledRunStaysBitIdentical) {
  // The flight recorder's core promise mirrors the profiler's: sampling the
  // runtime's gauges changes nothing about the computation. Run with the
  // sampler at an aggressive period (plus tracer/metrics, the full
  // instrumented configuration) and compare against the sequential runner.
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  constexpr int kIterations = 3;
  PropagationConfig config = ConfigFor(OptimizationLevel::kO4, kIterations);
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationRunner<NetworkRankingApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  config.tracer = &tracer;
  config.metrics = &metrics;
  RuntimeOptions options;
  options.max_workers = 3;
  options.telemetry.enabled = true;
  options.telemetry.period_seconds = 0.0002;
  RuntimeExecutor<NetworkRankingApp> executor(
      setup.graph, setup.placement, setup.topology, app, config, options);
  ASSERT_TRUE(executor.Run().ok());
  ExpectBitIdentical(runner.states(), executor.states(),
                     "telemetry enabled");

  const runtime::RuntimeStats& stats = executor.stats();
  // The sampler ran: at least the first tick and the final stop-edge tick.
  EXPECT_GE(stats.telemetry_samples, 2u);
  ASSERT_NE(executor.telemetry(), nullptr);
  EXPECT_TRUE(executor.telemetry()->enabled());
  const std::vector<obs::TelemetrySeries> snapshot =
      executor.telemetry()->Snapshot();
  EXPECT_FALSE(snapshot.empty());
  bool saw_pool_series = false;
  for (const obs::TelemetrySeries& series : snapshot) {
    if (series.name == "rt_pool_free_buffers") {
      saw_pool_series = true;
      EXPECT_EQ(series.samples_taken,
                series.samples.size() + series.samples_dropped);
    }
  }
  EXPECT_TRUE(saw_pool_series);

  // The memory probe populated the end-of-run stats (Linux CI hosts).
  EXPECT_GT(stats.rss_bytes, 0u);
  EXPECT_GE(stats.peak_rss_bytes, stats.rss_bytes);

  // Superstep wall-clock bounds: present, ordered, and nested in run time.
  ASSERT_EQ(stats.timeline.size(), static_cast<size_t>(kIterations) * 2);
  double previous_start = 0.0;
  for (const runtime::SuperstepProfile& profile : stats.timeline) {
    EXPECT_GE(profile.start_s, previous_start);
    EXPECT_GE(profile.end_s, profile.start_s);
    EXPECT_LE(profile.end_s, stats.wall_seconds + 0.001);
    previous_start = profile.start_s;
  }

  // Worker-side barrier decomposition: the mean never exceeds the max, and
  // both are bounded by the run itself (unlike the summed counter).
  EXPECT_GE(stats.barrier_wait_max_s, stats.barrier_wait_mean_s);
  EXPECT_LE(stats.barrier_wait_max_s, stats.wall_seconds + 0.001);

  if (obs::Tracer::CompiledIn()) {
    // Counter lanes were merged into the trace stream.
    size_t counter_events = 0;
    for (const obs::TraceEvent& event : tracer.Events()) {
      if (event.phase == 'C') {
        EXPECT_EQ(event.category, "telemetry");
        ++counter_events;
      }
    }
    EXPECT_GT(counter_events, 0u);
  }
}

TEST(RuntimeTest, TimelineJsonCarriesStepsAndCriticalPath) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO2);
  const PropagationConfig config =
      ConfigFor(OptimizationLevel::kO2, /*iterations=*/2);
  NetworkRankingApp app(f.graph.num_vertices());
  RuntimeExecutor<NetworkRankingApp> executor(setup.graph, setup.placement,
                                              setup.topology, app, config);
  ASSERT_TRUE(executor.Run().ok());

  const obs::JsonValue block =
      runtime::TimelineToJson(executor.stats().timeline);
  const obs::JsonValue* steps = block.Find("steps");
  ASSERT_NE(steps, nullptr);
  ASSERT_EQ(steps->as_array().size(), 4u);
  const obs::JsonValue& first = steps->as_array()[0];
  EXPECT_EQ(first.Find("stage")->as_string(), "transfer");
  ASSERT_FALSE(first.Find("machines")->as_array().empty());
  const obs::JsonValue& row = first.Find("machines")->as_array()[0];
  for (const char* key :
       {"machine", "compute_s", "serialize_s", "blocked_s", "barrier_s",
        "busy_s"}) {
    ASSERT_NE(row.Find(key), nullptr) << key;
    EXPECT_TRUE(row.Find(key)->is_number()) << key;
  }
  const obs::JsonValue* critical = block.Find("critical_path");
  ASSERT_NE(critical, nullptr);
  EXPECT_GT(critical->Find("total_busy_s")->as_number(), 0.0);
  EXPECT_EQ(critical->Find("steps")->as_array().size(), 4u);
}

// -------------------------------------------------- fault injection (B)

TEST(RuntimeTest, TransferStageFaultRecoversBitIdentically) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  const PropagationConfig config =
      ConfigFor(OptimizationLevel::kO4, /*iterations=*/3);
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationRunner<NetworkRankingApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());

  const MachineId victim = setup.placement->primary(0);
  RuntimeOptions options;
  options.faults = {RuntimeFaultPlan{.machine = victim,
                                     .iteration = 1,
                                     .stage = RuntimeStage::kTransfer,
                                     .after_tasks = 1}};
  RuntimeExecutor<NetworkRankingApp> executor(
      setup.graph, setup.placement, setup.topology, app, config, options);
  ASSERT_TRUE(executor.Run().ok());
  ExpectBitIdentical(runner.states(), executor.states(),
                     "transfer-stage fault");
  EXPECT_EQ(executor.stats().machine_failures, 1u);
  EXPECT_GT(executor.stats().tasks_reexecuted, 0u);
  EXPECT_EQ(executor.alive()[victim], 0u);
  // The victim's later Combine tasks ran on a replica, which re-fetches the
  // message spills the dead primary had received (Appendix B).
  EXPECT_GT(executor.stats().refetch_bytes, 0u);
}

TEST(RuntimeTest, CombineStageFaultRecoversBitIdentically) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO1);
  const PropagationConfig config =
      ConfigFor(OptimizationLevel::kO1, /*iterations=*/2);
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationRunner<NetworkRankingApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());

  const MachineId victim = setup.placement->primary(1);
  RuntimeOptions options;
  options.faults = {RuntimeFaultPlan{.machine = victim,
                                     .iteration = 0,
                                     .stage = RuntimeStage::kCombine,
                                     .after_tasks = 0}};
  RuntimeExecutor<NetworkRankingApp> executor(
      setup.graph, setup.placement, setup.topology, app, config, options);
  ASSERT_TRUE(executor.Run().ok());
  ExpectBitIdentical(runner.states(), executor.states(),
                     "combine-stage fault");
  EXPECT_EQ(executor.stats().machine_failures, 1u);
  EXPECT_GT(executor.stats().tasks_reexecuted, 0u);
  EXPECT_GT(executor.stats().refetch_bytes, 0u);
}

TEST(RuntimeTest, UnrecoverableJobFailsCleanly) {
  // Kill every machine in the first transfer stage: at some point a pending
  // partition has no alive replica left and the run must fail (not hang).
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  const PropagationConfig config =
      ConfigFor(OptimizationLevel::kO4, /*iterations=*/1);
  NetworkRankingApp app(f.graph.num_vertices());
  RuntimeOptions options;
  for (MachineId m = 0; m < f.topology.num_machines(); ++m) {
    options.faults.push_back(RuntimeFaultPlan{.machine = m,
                                              .iteration = 0,
                                              .stage = RuntimeStage::kTransfer,
                                              .after_tasks = 0});
  }
  RuntimeExecutor<NetworkRankingApp> executor(
      setup.graph, setup.placement, setup.topology, app, config, options);
  const Status status = executor.Run();
  EXPECT_FALSE(status.ok());
  EXPECT_GT(executor.stats().machine_failures, 0u);
}

// ----------------------------------------------------- edge-case apps

/// An app whose Transfer emits nothing: exercises zero-message stages (the
/// BSP machinery must still run Combine for every vertex each iteration).
struct SilentApp {
  using VertexState = uint32_t;
  using Message = uint32_t;

  VertexState InitState(VertexId v, std::span<const VertexId>) const {
    return v;
  }
  void Transfer(VertexId, const VertexState&, std::span<const VertexId>,
                PropagationEmitter<Message>&) const {}
  void Combine(VertexId, VertexState& state, std::span<const VertexId>,
               std::vector<Message>& messages) const {
    state += 1 + static_cast<uint32_t>(messages.size());
  }
  size_t MessageBytes(const Message&) const { return sizeof(Message); }
  size_t StateBytes(const VertexState&) const { return sizeof(VertexState); }
};
static_assert(PropagationApp<SilentApp>);

TEST(RuntimeTest, ZeroMessageStagesStillCombineEveryVertex) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  const PropagationConfig config =
      ConfigFor(OptimizationLevel::kO4, /*iterations=*/2);
  SilentApp app;
  PropagationRunner<SilentApp> runner(setup.graph, setup.placement,
                                      setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());

  RuntimeExecutor<SilentApp> executor(setup.graph, setup.placement,
                                      setup.topology, app, config);
  ASSERT_TRUE(executor.Run().ok());
  ExpectBitIdentical(runner.states(), executor.states(), "zero-message app");
  // No messages were emitted, so nothing traveled the channels...
  EXPECT_EQ(executor.stats().messages_sent, 0u);
  EXPECT_EQ(executor.stats().TotalNetworkBytes(), 0u);
  // ...yet Combine ran twice for every vertex.
  for (VertexId v = 0; v < f.graph.num_vertices(); ++v) {
    ASSERT_EQ(executor.states()[v], v + 2);
  }
}

// -------------------------------------------------- frontier gating

/// A SilentVertexSkippableApp with real messages: Combine is pure
/// accumulation, so calling it with an empty vector is a genuine no-op and
/// frontier gating may legally skip silent vertices. Only even-numbered
/// vertices transfer, so a fat slice of every partition stays silent each
/// iteration and the gate has real work to skip.
struct SkippableSumApp {
  using VertexState = double;
  using Message = double;

  VertexState InitState(VertexId v, std::span<const VertexId>) const {
    return 1.0 + static_cast<double>(v % 7);
  }
  void Transfer(VertexId v, const VertexState& state,
                std::span<const VertexId> neighbors,
                PropagationEmitter<Message>& emitter) const {
    if (v % 2 != 0 || neighbors.empty()) {
      return;
    }
    const double share = state / static_cast<double>(neighbors.size());
    for (VertexId n : neighbors) {
      emitter.Emit(n, share);
    }
  }
  void Combine(VertexId, VertexState& state, std::span<const VertexId>,
               std::vector<Message>& messages) const {
    for (const Message& m : messages) {
      state += m;  // empty vector => identity, as the trait promises
    }
  }
  size_t MessageBytes(const Message&) const { return sizeof(Message); }
  size_t StateBytes(const VertexState&) const { return sizeof(VertexState); }

  static constexpr bool kSkipSilentVertices = true;
};
static_assert(PropagationApp<SkippableSumApp>);
static_assert(SilentVertexSkippableApp<SkippableSumApp>);
static_assert(!SilentVertexSkippableApp<NetworkRankingApp>);
static_assert(SilentVertexSkippableApp<DegreeDistributionApp>);

TEST(RuntimeTest, FrontierGatingBitIdenticalOnAndOffAcrossWorkerCounts) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  SkippableSumApp app;

  // Ungated sequential reference: the exact legacy full-range loop.
  PropagationConfig reference_config =
      ConfigFor(OptimizationLevel::kO4, /*iterations=*/3);
  reference_config.frontier_gating = false;
  PropagationRunner<SkippableSumApp> reference(
      setup.graph, setup.placement, setup.topology, app, reference_config);
  ASSERT_TRUE(reference.Run(setup.sim_options).ok());
  EXPECT_EQ(reference.counters().frontier_vertices_skipped, 0u);

  // Gated sequential run: identical states, nonzero skip counter.
  PropagationConfig gated_config = reference_config;
  gated_config.frontier_gating = true;
  PropagationRunner<SkippableSumApp> gated(
      setup.graph, setup.placement, setup.topology, app, gated_config);
  ASSERT_TRUE(gated.Run(setup.sim_options).ok());
  ExpectBitIdentical(reference.states(), gated.states(), "gated runner");
  EXPECT_GT(gated.counters().frontier_vertices_skipped, 0u);

  for (uint32_t workers : {1u, 3u, 8u}) {
    for (bool gating : {false, true}) {
      PropagationConfig config = reference_config;
      config.frontier_gating = gating;
      RuntimeOptions options;
      options.max_workers = workers;
      RuntimeExecutor<SkippableSumApp> executor(
          setup.graph, setup.placement, setup.topology, app, config, options);
      ASSERT_TRUE(executor.Run().ok());
      ExpectBitIdentical(reference.states(), executor.states(),
                         std::string("frontier gating ") +
                             (gating ? "on" : "off") + ", " +
                             std::to_string(workers) + " workers");
      EXPECT_GT(executor.stats().combine_messages_scattered, 0u);
      if (gating) {
        EXPECT_GT(executor.stats().frontier_vertices_skipped, 0u);
      } else {
        EXPECT_EQ(executor.stats().frontier_vertices_skipped, 0u);
      }
    }
  }
}

TEST(RuntimeTest, FrontierGatingIsInertForNonConformingApps) {
  // NR's Combine overwrites the rank with the random-jump term even on empty
  // messages, so it must not (and does not) declare kSkipSilentVertices; the
  // gating flag being on must leave it on the exact full-range loop.
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  PropagationConfig config = ConfigFor(OptimizationLevel::kO4, /*iterations=*/3);
  ASSERT_TRUE(config.frontier_gating);  // default-on, still inert for NR
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationRunner<NetworkRankingApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());
  EXPECT_EQ(runner.counters().frontier_vertices_skipped, 0u);

  RuntimeExecutor<NetworkRankingApp> executor(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(executor.Run().ok());
  ExpectBitIdentical(runner.states(), executor.states(), "NR gating inert");
  EXPECT_EQ(executor.stats().frontier_vertices_skipped, 0u);
  EXPECT_GT(executor.stats().combine_messages_scattered, 0u);
}

TEST(RuntimeTest, FrontierGatingPreservesVirtualOutputs) {
  // VDD opts in (its real-vertex Combine is empty — all aggregation rides
  // virtual vertices), so under gating every real vertex is skipped and the
  // virtual outputs must be untouched.
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  DegreeDistributionApp app;
  for (uint32_t workers : {1u, 3u, 8u}) {
    std::map<uint64_t, DegreeDistributionApp::VirtualOutput> outputs[2];
    uint64_t skipped[2] = {0, 0};
    for (bool gating : {false, true}) {
      PropagationConfig config =
          ConfigFor(OptimizationLevel::kO4, /*iterations=*/1);
      config.frontier_gating = gating;
      RuntimeOptions options;
      options.max_workers = workers;
      RuntimeExecutor<DegreeDistributionApp> executor(
          setup.graph, setup.placement, setup.topology, app, config, options);
      ASSERT_TRUE(executor.Run().ok());
      outputs[gating ? 1 : 0] = executor.virtual_outputs();
      skipped[gating ? 1 : 0] = executor.stats().frontier_vertices_skipped;
    }
    EXPECT_EQ(outputs[0], outputs[1]) << workers << " workers";
    EXPECT_FALSE(outputs[1].empty());
    EXPECT_EQ(skipped[0], 0u);
    EXPECT_GT(skipped[1], 0u);
  }
}

// -------------------------------------------------- Engine session front-end

TEST(RunAppTest, EnginesAgreeBitwiseThroughTheUnifiedFrontEnd) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);

  EngineOptions analytic_options;
  analytic_options.propagation = ConfigFor(OptimizationLevel::kO4, 3);
  auto analytic_session = Engine::Open(setup, analytic_options);
  ASSERT_TRUE(analytic_session.ok()) << analytic_session.status().ToString();
  auto analytic =
      analytic_session->Run(NetworkRankingApp(f.graph.num_vertices()));
  ASSERT_TRUE(analytic.ok()) << analytic.status().ToString();
  ASSERT_TRUE(analytic->metrics.has_value());
  ASSERT_TRUE(analytic->counters.has_value());
  EXPECT_FALSE(analytic->runtime_stats.has_value());
  EXPECT_GT(analytic->metrics->response_time_s, 0.0);

  EngineOptions concurrent_options;
  concurrent_options.engine = EngineKind::kConcurrent;
  concurrent_options.propagation = analytic_options.propagation;
  concurrent_options.runtime.max_workers = 3;
  auto concurrent_session = Engine::Open(setup, concurrent_options);
  ASSERT_TRUE(concurrent_session.ok())
      << concurrent_session.status().ToString();
  auto concurrent =
      concurrent_session->Run(NetworkRankingApp(f.graph.num_vertices()));
  ASSERT_TRUE(concurrent.ok()) << concurrent.status().ToString();
  ASSERT_TRUE(concurrent->runtime_stats.has_value());
  EXPECT_FALSE(concurrent->metrics.has_value());
  EXPECT_EQ(concurrent->runtime_stats->num_workers, 3u);
  ExpectBitIdentical(analytic->states, concurrent->states,
                     "RunApp analytic vs concurrent");

  // The unified link matrix reconciles exactly across engines, including
  // empty diagonals on both sides.
  ASSERT_EQ(analytic->link_network_bytes.size(),
            concurrent->link_network_bytes.size());
  const uint32_t n = f.topology.num_machines();
  for (uint32_t src = 0; src < n; ++src) {
    for (uint32_t dst = 0; dst < n; ++dst) {
      const size_t i = static_cast<size_t>(src) * n + dst;
      if (src == dst) {
        EXPECT_EQ(concurrent->link_network_bytes[i], 0.0);
      }
      EXPECT_EQ(analytic->link_network_bytes[i],
                concurrent->link_network_bytes[i])
          << "link " << src << "->" << dst;
    }
  }

  // Original-ID addressing works through the unified result.
  EXPECT_EQ(analytic->StateOfOriginal(0), concurrent->StateOfOriginal(0));
}

TEST(RunAppTest, ConcurrentEngineRejectsNonWireSerializableApps) {
  // RLG messages are std::vector<VertexId> — not trivially copyable, so the
  // wire-batch plane cannot carry them. The front-end must say so instead
  // of failing to compile or silently misbehaving.
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  EngineOptions options;
  options.engine = EngineKind::kConcurrent;
  options.propagation = ConfigFor(OptimizationLevel::kO4, 1);
  auto session = Engine::Open(setup, options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto result = session->Run(ReverseLinkGraphApp());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  // The analytic engine still runs the same app fine.
  options.engine = EngineKind::kAnalytic;
  auto analytic_session = Engine::Open(setup, options);
  ASSERT_TRUE(analytic_session.ok()) << analytic_session.status().ToString();
  auto analytic = analytic_session->Run(ReverseLinkGraphApp());
  EXPECT_TRUE(analytic.ok()) << analytic.status().ToString();
}

TEST(RunAppTest, ExternalSimulationOnlyAppliesToTheAnalyticEngine) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO2);
  EngineOptions options;
  options.propagation = ConfigFor(OptimizationLevel::kO2, 2);
  JobSimulation sim(setup.topology, setup.sim_options);
  auto session = Engine::Open(setup.graph, setup.placement, setup.topology,
                              options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto analytic =
      session->Run(NetworkRankingApp(f.graph.num_vertices()), &sim);
  ASSERT_TRUE(analytic.ok()) << analytic.status().ToString();
  // Metrics accumulated into the caller's simulation, and the result
  // mirrors them.
  EXPECT_GT(sim.metrics().response_time_s, 0.0);
  EXPECT_EQ(analytic->metrics->response_time_s, sim.metrics().response_time_s);

  options.engine = EngineKind::kConcurrent;
  auto concurrent_session = Engine::Open(setup.graph, setup.placement,
                                         setup.topology, options);
  ASSERT_TRUE(concurrent_session.ok())
      << concurrent_session.status().ToString();
  auto rejected = concurrent_session->Run(
      NetworkRankingApp(f.graph.num_vertices()), &sim);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace surfer
