#include <cstdint>
#include <cstring>
#include <map>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "apps/degree_distribution.h"
#include "apps/network_ranking.h"
#include "propagation/app_traits.h"
#include "propagation/config.h"
#include "propagation/runner.h"
#include "runtime/executor.h"
#include "tests/test_fixtures.h"

namespace surfer {
namespace {

using runtime::RuntimeExecutor;
using runtime::RuntimeFaultPlan;
using runtime::RuntimeOptions;
using runtime::RuntimeStage;
using testing_fixtures::EngineFixture;
using testing_fixtures::MakeEngineFixture;

const EngineFixture& Fixture() {
  static const EngineFixture* fixture =
      new EngineFixture(MakeEngineFixture());
  return *fixture;
}

constexpr OptimizationLevel kAllLevels[] = {
    OptimizationLevel::kO1, OptimizationLevel::kO2, OptimizationLevel::kO3,
    OptimizationLevel::kO4};

/// Bitwise comparison of two state vectors; on mismatch reports the first
/// differing vertex so failures are debuggable.
template <typename State>
void ExpectBitIdentical(const std::vector<State>& expected,
                        const std::vector<State>& actual,
                        const std::string& what) {
  ASSERT_EQ(expected.size(), actual.size()) << what;
  if (std::memcmp(expected.data(), actual.data(),
                  expected.size() * sizeof(State)) == 0) {
    return;
  }
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_EQ(std::memcmp(&expected[v], &actual[v], sizeof(State)), 0)
        << what << ": first bit difference at vertex " << v << " (expected "
        << expected[v] << ", got " << actual[v] << ")";
  }
}

PropagationConfig ConfigFor(OptimizationLevel level, int iterations) {
  PropagationConfig config = PropagationConfig::ForLevel(level);
  config.iterations = iterations;
  return config;
}

// ----------------------------------------------- bit-identity contract

TEST(RuntimeTest, NetworkRankingBitIdenticalAcrossLevelsAndWorkerCounts) {
  const EngineFixture& f = Fixture();
  for (OptimizationLevel level : kAllLevels) {
    const BenchmarkSetup setup = f.Setup(level);
    const PropagationConfig config = ConfigFor(level, /*iterations=*/3);
    NetworkRankingApp app(f.graph.num_vertices());
    PropagationRunner<NetworkRankingApp> runner(
        setup.graph, setup.placement, setup.topology, app, config);
    ASSERT_TRUE(runner.Run(setup.sim_options).ok());

    // Worker count 1 is the single-worker degeneracy case (pure sequential
    // execution through the same code path); 3 forces machine multiplexing;
    // 8 is one worker per machine.
    for (uint32_t workers : {1u, 3u, 8u}) {
      RuntimeOptions options;
      options.max_workers = workers;
      RuntimeExecutor<NetworkRankingApp> executor(
          setup.graph, setup.placement, setup.topology, app, config, options);
      ASSERT_TRUE(executor.Run().ok());
      ExpectBitIdentical(runner.states(), executor.states(),
                         OptimizationLevelName(level) + " with " +
                             std::to_string(workers) + " workers");
      EXPECT_EQ(executor.stats().num_workers, workers);
      EXPECT_GT(executor.stats().messages_sent, 0u);
      EXPECT_GT(executor.stats().barrier_generations, 0u);
    }
  }
}

TEST(RuntimeTest, DegreeDistributionVirtualOutputsMatchSequential) {
  const EngineFixture& f = Fixture();
  for (OptimizationLevel level : kAllLevels) {
    const BenchmarkSetup setup = f.Setup(level);
    const PropagationConfig config = ConfigFor(level, /*iterations=*/1);
    DegreeDistributionApp app;
    PropagationRunner<DegreeDistributionApp> runner(
        setup.graph, setup.placement, setup.topology, app, config);
    ASSERT_TRUE(runner.Run(setup.sim_options).ok());
    ASSERT_FALSE(runner.virtual_outputs().empty());

    RuntimeExecutor<DegreeDistributionApp> executor(
        setup.graph, setup.placement, setup.topology, app, config);
    ASSERT_TRUE(executor.Run().ok());
    EXPECT_EQ(runner.virtual_outputs(), executor.virtual_outputs())
        << OptimizationLevelName(level);
  }
}

TEST(RuntimeTest, BitIdenticalUnderMaximumBackpressure) {
  // Capacity-1 channels force every link to stall constantly; the
  // drain-while-blocked send loop must still complete with exact results.
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  const PropagationConfig config =
      ConfigFor(OptimizationLevel::kO4, /*iterations=*/2);
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationRunner<NetworkRankingApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());

  RuntimeOptions options;
  options.base_channel_capacity = 1;
  RuntimeExecutor<NetworkRankingApp> executor(
      setup.graph, setup.placement, setup.topology, app, config, options);
  ASSERT_TRUE(executor.Run().ok());
  ExpectBitIdentical(runner.states(), executor.states(),
                     "capacity-1 channels");
}

// ------------------------------------ cost-model cross-validation (bytes)

TEST(RuntimeTest, PerLinkBytesReconcileWithCostModel) {
  const EngineFixture& f = Fixture();
  const uint32_t n = f.topology.num_machines();
  for (OptimizationLevel level : kAllLevels) {
    const BenchmarkSetup setup = f.Setup(level);
    const PropagationConfig config = ConfigFor(level, /*iterations=*/2);
    NetworkRankingApp app(f.graph.num_vertices());
    PropagationRunner<NetworkRankingApp> runner(
        setup.graph, setup.placement, setup.topology, app, config);
    ASSERT_TRUE(runner.Run(setup.sim_options).ok());

    RuntimeExecutor<NetworkRankingApp> executor(
        setup.graph, setup.placement, setup.topology, app, config);
    ASSERT_TRUE(executor.Run().ok());

    const std::vector<double>& analytic = runner.link_network_bytes();
    const std::vector<uint64_t>& measured = executor.stats().link_bytes;
    ASSERT_EQ(analytic.size(), static_cast<size_t>(n) * n);
    ASSERT_EQ(measured.size(), analytic.size());
    double analytic_total = 0.0;
    for (uint32_t src = 0; src < n; ++src) {
      for (uint32_t dst = 0; dst < n; ++dst) {
        const size_t i = static_cast<size_t>(src) * n + dst;
        if (src == dst) {
          EXPECT_EQ(analytic[i], 0.0) << "analytic diagonal must be empty";
          continue;  // runtime diagonal carries local (non-network) traffic
        }
        EXPECT_EQ(analytic[i], static_cast<double>(measured[i]))
            << OptimizationLevelName(level) << " link " << src << "->" << dst;
        analytic_total += analytic[i];
      }
    }
    EXPECT_GT(analytic_total, 0.0);
    EXPECT_EQ(static_cast<double>(executor.stats().TotalNetworkBytes()),
              analytic_total);
  }
}

// -------------------------------------------------- fault injection (B)

TEST(RuntimeTest, TransferStageFaultRecoversBitIdentically) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  const PropagationConfig config =
      ConfigFor(OptimizationLevel::kO4, /*iterations=*/3);
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationRunner<NetworkRankingApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());

  const MachineId victim = setup.placement->primary(0);
  RuntimeOptions options;
  options.faults = {RuntimeFaultPlan{.machine = victim,
                                     .iteration = 1,
                                     .stage = RuntimeStage::kTransfer,
                                     .after_tasks = 1}};
  RuntimeExecutor<NetworkRankingApp> executor(
      setup.graph, setup.placement, setup.topology, app, config, options);
  ASSERT_TRUE(executor.Run().ok());
  ExpectBitIdentical(runner.states(), executor.states(),
                     "transfer-stage fault");
  EXPECT_EQ(executor.stats().machine_failures, 1u);
  EXPECT_GT(executor.stats().tasks_reexecuted, 0u);
  EXPECT_EQ(executor.alive()[victim], 0u);
  // The victim's later Combine tasks ran on a replica, which re-fetches the
  // message spills the dead primary had received (Appendix B).
  EXPECT_GT(executor.stats().refetch_bytes, 0u);
}

TEST(RuntimeTest, CombineStageFaultRecoversBitIdentically) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO1);
  const PropagationConfig config =
      ConfigFor(OptimizationLevel::kO1, /*iterations=*/2);
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationRunner<NetworkRankingApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());

  const MachineId victim = setup.placement->primary(1);
  RuntimeOptions options;
  options.faults = {RuntimeFaultPlan{.machine = victim,
                                     .iteration = 0,
                                     .stage = RuntimeStage::kCombine,
                                     .after_tasks = 0}};
  RuntimeExecutor<NetworkRankingApp> executor(
      setup.graph, setup.placement, setup.topology, app, config, options);
  ASSERT_TRUE(executor.Run().ok());
  ExpectBitIdentical(runner.states(), executor.states(),
                     "combine-stage fault");
  EXPECT_EQ(executor.stats().machine_failures, 1u);
  EXPECT_GT(executor.stats().tasks_reexecuted, 0u);
  EXPECT_GT(executor.stats().refetch_bytes, 0u);
}

TEST(RuntimeTest, UnrecoverableJobFailsCleanly) {
  // Kill every machine in the first transfer stage: at some point a pending
  // partition has no alive replica left and the run must fail (not hang).
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  const PropagationConfig config =
      ConfigFor(OptimizationLevel::kO4, /*iterations=*/1);
  NetworkRankingApp app(f.graph.num_vertices());
  RuntimeOptions options;
  for (MachineId m = 0; m < f.topology.num_machines(); ++m) {
    options.faults.push_back(RuntimeFaultPlan{.machine = m,
                                              .iteration = 0,
                                              .stage = RuntimeStage::kTransfer,
                                              .after_tasks = 0});
  }
  RuntimeExecutor<NetworkRankingApp> executor(
      setup.graph, setup.placement, setup.topology, app, config, options);
  const Status status = executor.Run();
  EXPECT_FALSE(status.ok());
  EXPECT_GT(executor.stats().machine_failures, 0u);
}

// ----------------------------------------------------- edge-case apps

/// An app whose Transfer emits nothing: exercises zero-message stages (the
/// BSP machinery must still run Combine for every vertex each iteration).
struct SilentApp {
  using VertexState = uint32_t;
  using Message = uint32_t;

  VertexState InitState(VertexId v, std::span<const VertexId>) const {
    return v;
  }
  void Transfer(VertexId, const VertexState&, std::span<const VertexId>,
                PropagationEmitter<Message>&) const {}
  void Combine(VertexId, VertexState& state, std::span<const VertexId>,
               std::vector<Message>& messages) const {
    state += 1 + static_cast<uint32_t>(messages.size());
  }
  size_t MessageBytes(const Message&) const { return sizeof(Message); }
  size_t StateBytes(const VertexState&) const { return sizeof(VertexState); }
};
static_assert(PropagationApp<SilentApp>);

TEST(RuntimeTest, ZeroMessageStagesStillCombineEveryVertex) {
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  const PropagationConfig config =
      ConfigFor(OptimizationLevel::kO4, /*iterations=*/2);
  SilentApp app;
  PropagationRunner<SilentApp> runner(setup.graph, setup.placement,
                                      setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());

  RuntimeExecutor<SilentApp> executor(setup.graph, setup.placement,
                                      setup.topology, app, config);
  ASSERT_TRUE(executor.Run().ok());
  ExpectBitIdentical(runner.states(), executor.states(), "zero-message app");
  // No messages were emitted, so nothing traveled the channels...
  EXPECT_EQ(executor.stats().messages_sent, 0u);
  EXPECT_EQ(executor.stats().TotalNetworkBytes(), 0u);
  // ...yet Combine ran twice for every vertex.
  for (VertexId v = 0; v < f.graph.num_vertices(); ++v) {
    ASSERT_EQ(executor.states()[v], v + 2);
  }
}

}  // namespace
}  // namespace surfer
