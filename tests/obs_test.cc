#include <atomic>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/log_capture.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "graph/generators.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "obs/trace_merge.h"
#include "partition/recursive_partitioner.h"

namespace surfer {
namespace obs {
namespace {

// ------------------------------------------------------------------ JSON

TEST(JsonTest, WritesPrimitives) {
  EXPECT_EQ(JsonValue().Write(), "null");
  EXPECT_EQ(JsonValue(true).Write(), "true");
  EXPECT_EQ(JsonValue(false).Write(), "false");
  EXPECT_EQ(JsonValue(42).Write(), "42");
  EXPECT_EQ(JsonValue(-1.5).Write(), "-1.5");
  EXPECT_EQ(JsonValue("hi").Write(), "\"hi\"");
}

TEST(JsonTest, IntegersPrintWithoutFraction) {
  EXPECT_EQ(JsonValue(uint64_t{1234567}).Write(), "1234567");
  EXPECT_EQ(JsonValue(0).Write(), "0");
}

TEST(JsonTest, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(JsonValue("a\"b\\c\n").Write(), "\"a\\\"b\\\\c\\n\"");
  const std::string written = JsonValue(std::string("\x01", 1)).Write();
  EXPECT_EQ(written, "\"\\u0001\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("zebra", 1);
  obj.Set("alpha", 2);
  EXPECT_EQ(obj.Write(), "{\"zebra\":1,\"alpha\":2}");
  ASSERT_NE(obj.Find("alpha"), nullptr);
  EXPECT_EQ(obj.Find("alpha")->as_number(), 2.0);
  EXPECT_EQ(obj.Find("missing"), nullptr);
}

TEST(JsonTest, ParseRoundTrip) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("name", "run");
  obj.Set("ok", true);
  obj.Set("nothing", nullptr);
  JsonValue arr = JsonValue::MakeArray();
  arr.Append(1);
  arr.Append(2.5);
  arr.Append("three");
  obj.Set("values", std::move(arr));
  const std::string text = obj.Write(/*indent=*/2);

  auto parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Write(), obj.Write());
  EXPECT_EQ(parsed->Find("values")->as_array()[2].as_string(), "three");
}

TEST(JsonTest, ParseHandlesEscapesAndNumbers) {
  auto parsed = ParseJson(R"({"s":"a\u0041\n","n":-1.25e2})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("s")->as_string(), "aA\n");
  EXPECT_EQ(parsed->Find("n")->as_number(), -125.0);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1,}").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
}

TEST(JsonTest, EscapedStringsSurviveWriteParseCycles) {
  // Every escape class the writer can emit must come back bitwise equal:
  // quotes, backslashes, control characters, tabs/newlines, and non-ASCII
  // bytes (UTF-8 passes through untouched).
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("tricky", std::string("quote\" slash\\ nl\n tab\t cr\r") +
                        std::string(1, '\x01') + "\x1f bell\x07 high\xc3\xa9");
  obj.Set("empty", "");
  obj.Set("key with \"quotes\"", 1);
  std::string text = obj.Write();
  for (int cycle = 0; cycle < 3; ++cycle) {
    auto parsed = ParseJson(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->Write(), text) << "cycle " << cycle;
    text = parsed->Write();
  }
  auto parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("tricky")->as_string(),
            obj.Find("tricky")->as_string());
}

TEST(JsonTest, DeeplyNestedStructuresRoundTrip) {
  // 200 levels of [[[...{"k": 42}...]]]: deep but legitimate documents
  // (timeline blocks nest several levels; give generous headroom).
  constexpr int kDepth = 200;
  std::string text;
  for (int i = 0; i < kDepth; ++i) {
    text += "[";
  }
  text += R"({"k": 42})";
  for (int i = 0; i < kDepth; ++i) {
    text += "]";
  }
  auto parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* cursor = &*parsed;
  for (int i = 0; i < kDepth; ++i) {
    ASSERT_TRUE(cursor->is_array());
    ASSERT_EQ(cursor->as_array().size(), 1u);
    cursor = &cursor->as_array()[0];
  }
  EXPECT_EQ(cursor->Find("k")->as_number(), 42.0);
}

TEST(JsonTest, LargeIntegersKeepExactValuesUpTo2Pow53) {
  // Doubles hold integers exactly up to 2^53; byte counters in the reports
  // live in that range and must not lose precision through a round trip.
  const uint64_t exact = (uint64_t{1} << 53) - 1;  // 9007199254740991
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("bytes", exact);
  const std::string text = obj.Write();
  EXPECT_NE(text.find("9007199254740991"), std::string::npos) << text;
  auto parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(static_cast<uint64_t>(parsed->Find("bytes")->as_number()), exact);

  auto negative = ParseJson(R"({"n": -9007199254740991})");
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(static_cast<int64_t>(negative->Find("n")->as_number()),
            -9007199254740991LL);
}

TEST(JsonTest, RejectsNonFiniteNumbers) {
  // JSON has no NaN/Infinity literals, and overflowing scientific notation
  // must not smuggle an infinity into a report either.
  EXPECT_FALSE(ParseJson("NaN").ok());
  EXPECT_FALSE(ParseJson("Infinity").ok());
  EXPECT_FALSE(ParseJson("-Infinity").ok());
  EXPECT_FALSE(ParseJson(R"({"x": NaN})").ok());
  EXPECT_FALSE(ParseJson(R"({"x": 1e999})").ok());
  EXPECT_FALSE(ParseJson(R"({"x": -1e999})").ok());
  // The largest finite double still parses.
  auto parsed = ParseJson(R"({"x": 1.7976931348623157e308})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_GT(parsed->Find("x")->as_number(), 1e308);
}

// ------------------------------------------------------- MetricsRegistry

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry registry;
  registry.CounterRef("events").Increment();
  registry.CounterRef("events").Increment(4);
  EXPECT_EQ(registry.CounterRef("events").value(), 5u);
}

TEST(MetricsRegistryTest, LabelsIdentifyDistinctSeries) {
  MetricsRegistry registry;
  registry.CounterRef("cut", {{"level", "0"}}).Increment(10);
  registry.CounterRef("cut", {{"level", "1"}}).Increment(20);
  EXPECT_EQ(registry.CounterRef("cut", {{"level", "0"}}).value(), 10u);
  EXPECT_EQ(registry.CounterRef("cut", {{"level", "1"}}).value(), 20u);
  EXPECT_EQ(registry.Snapshot().size(), 2u);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  registry.GaugeRef("depth").Set(3.0);
  registry.GaugeRef("depth").Add(1.5);
  EXPECT_DOUBLE_EQ(registry.GaugeRef("depth").value(), 4.5);
}

TEST(MetricsRegistryTest, HistogramObservesAndSnapshots) {
  MetricsRegistry registry;
  auto& h = registry.HistogramRef("latency");
  h.Observe(1.0);
  h.Observe(2.0);
  h.Observe(3.0);
  const Histogram snapshot = h.Snapshot();
  EXPECT_EQ(snapshot.count(), 3u);
  EXPECT_DOUBLE_EQ(snapshot.Mean(), 2.0);
}

TEST(MetricsRegistryTest, RefsAreStableUnderConcurrentUpdates) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      auto& counter = registry.CounterRef("shared");
      for (int i = 0; i < kIncrements; ++i) {
        counter.Increment();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(registry.CounterRef("shared").value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndTyped) {
  MetricsRegistry registry;
  registry.GaugeRef("b_gauge").Set(1.0);
  registry.CounterRef("a_counter").Increment();
  registry.HistogramRef("c_hist").Observe(2.0);
  const auto samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a_counter");
  EXPECT_EQ(samples[0].kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(samples[1].name, "b_gauge");
  EXPECT_EQ(samples[1].kind, MetricSample::Kind::kGauge);
  EXPECT_EQ(samples[2].name, "c_hist");
  EXPECT_EQ(samples[2].kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(samples[2].histogram.count(), 1u);
}

TEST(MetricsRegistryTest, PrometheusTextFormat) {
  MetricsRegistry registry;
  registry.CounterRef("messages_total", {{"kind", "real"}}).Increment(7);
  registry.GaugeRef("clock_seconds").Set(1.5);
  registry.HistogramRef("task_seconds").Observe(0.25);
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE messages_total counter"), std::string::npos);
  EXPECT_NE(text.find("messages_total{kind=\"real\"} 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE clock_seconds gauge"), std::string::npos);
  EXPECT_NE(text.find("clock_seconds 1.5"), std::string::npos);
  EXPECT_NE(text.find("task_seconds_count"), std::string::npos);
}

TEST(MetricsRegistryTest, ToJsonSectionsParse) {
  MetricsRegistry registry;
  registry.CounterRef("n").Increment(3);
  registry.HistogramRef("h").Observe(1.0);
  auto parsed = ParseJson(registry.ToJson().Write());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_NE(parsed->Find("counters"), nullptr);
  ASSERT_NE(parsed->Find("gauges"), nullptr);
  ASSERT_NE(parsed->Find("histograms"), nullptr);
  const auto& counters = parsed->Find("counters")->as_array();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].Find("name")->as_string(), "n");
  EXPECT_EQ(counters[0].Find("value")->as_number(), 3.0);
}

TEST(MetricsRegistryTest, ClearDropsEverything) {
  MetricsRegistry registry;
  registry.CounterRef("x").Increment();
  registry.Clear();
  EXPECT_TRUE(registry.Snapshot().empty());
  EXPECT_EQ(registry.CounterRef("x").value(), 0u);
}

// ---------------------------------------------------------------- Tracer

TEST(TracerTest, RecordsCompleteAndInstantEvents) {
  Tracer tracer;
  tracer.RecordComplete(TraceClock::kSimulated, "stage", "sim", 0.0, 100.0, 0);
  tracer.RecordInstant(TraceClock::kSimulated, "fault", "sim", 50.0, 1);
  if (!Tracer::CompiledIn()) {
    EXPECT_EQ(tracer.num_events(), 0u);
    return;
  }
  ASSERT_EQ(tracer.num_events(), 2u);
  const auto events = tracer.Events();
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_EQ(events[1].phase, 'i');
}

TEST(TracerTest, SpanSummaryAggregatesByNameAndSortsByTotal) {
  if (!Tracer::CompiledIn()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  Tracer tracer;
  tracer.RecordComplete(TraceClock::kWall, "small", "", 0.0, 10.0, 0);
  tracer.RecordComplete(TraceClock::kWall, "big", "", 0.0, 100.0, 0);
  tracer.RecordComplete(TraceClock::kWall, "big", "", 200.0, 50.0, 0);
  const auto summary = tracer.SpanSummary();
  ASSERT_EQ(summary.size(), 2u);
  EXPECT_EQ(summary[0].name, "big");
  EXPECT_EQ(summary[0].count, 2u);
  EXPECT_DOUBLE_EQ(summary[0].total_us, 150.0);
  EXPECT_DOUBLE_EQ(summary[0].max_us, 100.0);
  EXPECT_EQ(summary[1].name, "small");
}

TEST(TracerTest, SpanSummaryTracksMinAndTailPercentiles) {
  if (!Tracer::CompiledIn()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  Tracer tracer;
  // 99 spans at 10us and one 1000us outlier: the mean hides the outlier,
  // min/p50/p99 pin it down (within log2-bucket resolution).
  for (int i = 0; i < 99; ++i) {
    tracer.RecordComplete(TraceClock::kWall, "op", "", i * 10.0, 10.0, 0);
  }
  tracer.RecordComplete(TraceClock::kWall, "op", "", 1000.0, 1000.0, 0);
  const auto summary = tracer.SpanSummary();
  ASSERT_EQ(summary.size(), 1u);
  const SpanStat& stat = summary[0];
  EXPECT_EQ(stat.count, 100u);
  EXPECT_DOUBLE_EQ(stat.min_us, 10.0);
  EXPECT_DOUBLE_EQ(stat.max_us, 1000.0);
  // Log2 buckets report midpoints: p50 resolves to within a power of two
  // of the 10us bulk, p99 at or above it and no higher than the outlier.
  EXPECT_GE(stat.p50_us, 8.0);
  EXPECT_LE(stat.p50_us, 32.0);
  EXPECT_GE(stat.p99_us, stat.p50_us);
  EXPECT_LE(stat.p99_us, 2048.0);
  // Ordering invariant holds in general.
  EXPECT_LE(stat.min_us, stat.p50_us);
  EXPECT_LE(stat.p99_us, stat.max_us * 2.049);  // bucket upper-bound slack
}

TEST(TracerTest, ChromeJsonHasEventsAndProcessMetadata) {
  if (!Tracer::CompiledIn()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  Tracer tracer;
  tracer.RecordComplete(TraceClock::kWall, "compute", "cat", 1.0, 2.0, 3,
                        {{"k", "v"}});
  tracer.RecordInstant(TraceClock::kSimulated, "fault", "sim", 4.0, 5);
  auto parsed = ParseJson(tracer.ToChromeJson().Write());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Two metadata rows (process names) + the two recorded events.
  ASSERT_EQ(events->as_array().size(), 4u);
  size_t metadata = 0;
  size_t complete = 0;
  size_t instants = 0;
  for (const JsonValue& event : events->as_array()) {
    const std::string phase = event.Find("ph")->as_string();
    if (phase == "M") {
      ++metadata;
      EXPECT_EQ(event.Find("name")->as_string(), "process_name");
    } else if (phase == "X") {
      ++complete;
      EXPECT_EQ(event.Find("dur")->as_number(), 2.0);
      EXPECT_EQ(event.Find("args")->Find("k")->as_string(), "v");
    } else if (phase == "i") {
      ++instants;
    }
  }
  EXPECT_EQ(metadata, 2u);
  EXPECT_EQ(complete, 1u);
  EXPECT_EQ(instants, 1u);
}

TEST(TracerTest, ScopedSpanIsNullSafeAndRecords) {
  { ScopedSpan noop(nullptr, "nothing"); }
  Tracer tracer;
  {
    ScopedSpan span(&tracer, "work", "test");
    SURFER_TRACE_SCOPE(&tracer, "macro_work", "test");
  }
  if (Tracer::CompiledIn()) {
    EXPECT_EQ(tracer.num_events(), 2u);
  } else {
    EXPECT_EQ(tracer.num_events(), 0u);
  }
}

TEST(TracerTest, WriteChromeTraceProducesParsableFile) {
  Tracer tracer;
  tracer.RecordComplete(TraceClock::kWall, "span", "", 0.0, 1.0, 0);
  const std::string path =
      (std::filesystem::temp_directory_path() / "surfer_obs_test.trace.json")
          .string();
  ASSERT_TRUE(tracer.WriteChromeTrace(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::filesystem::remove(path);
}

TEST(TracerTest, ClearResetsBuffer) {
  Tracer tracer;
  tracer.RecordComplete(TraceClock::kWall, "x", "", 0.0, 1.0, 0);
  tracer.Clear();
  EXPECT_EQ(tracer.num_events(), 0u);
}

// ---------------------------------------------------- log sink & capture

TEST(LogSinkTest, SinkReceivesFormattedLines) {
  SetLogLevel(LogLevel::kInfo);
  std::vector<std::string> lines;
  LogSink previous = SetLogSink(
      [&lines](LogLevel, const std::string& line) { lines.push_back(line); });
  SURFER_LOG(kInfo) << "sink test message";
  SetLogSink(std::move(previous));
  SetLogLevel(LogLevel::kWarning);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("sink test message"), std::string::npos);
  EXPECT_NE(lines[0].find("INFO"), std::string::npos);
}

TEST(LogSinkTest, ScopedLogCaptureCollectsAndRestores) {
  {
    ScopedLogCapture capture;
    SURFER_LOG(kDebug) << "debug line";
    SURFER_LOG(kWarning) << "warning line";
    EXPECT_EQ(capture.size(), 2u);
    EXPECT_TRUE(capture.Contains("warning line"));
    EXPECT_FALSE(capture.Contains("absent"));
    EXPECT_EQ(capture.CountAtLevel(LogLevel::kDebug), 1u);
    EXPECT_EQ(capture.CountAtLevel(LogLevel::kWarning), 1u);
    capture.Clear();
    EXPECT_EQ(capture.size(), 0u);
  }
  // After the capture, the default level (kWarning) is restored, so a debug
  // log is dropped rather than reaching a stale sink.
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST(LogSinkTest, CapturesRespectLevelFilter) {
  ScopedLogCapture capture(LogLevel::kWarning);
  SURFER_LOG(kInfo) << "filtered out";
  SURFER_LOG(kError) << "kept";
  EXPECT_EQ(capture.size(), 1u);
  EXPECT_TRUE(capture.Contains("kept"));
}

// --------------------------------------------------- thread pool metrics

TEST(ThreadPoolStatsTest, CountsSubmittedAndCompletedTasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 10);
  const ThreadPoolStats stats = pool.stats();
  EXPECT_EQ(stats.tasks_submitted, 10u);
  EXPECT_EQ(stats.tasks_completed, 10u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.task_run_seconds.count(), 10u);
  EXPECT_EQ(stats.queue_wait_seconds.count(), 10u);
}

TEST(ThreadPoolStatsTest, ExportPublishesThreadpoolMetrics) {
  ThreadPool pool(2);
  pool.ParallelFor(16, [](size_t) {});
  MetricsRegistry registry;
  ExportThreadPoolStats(pool.stats(), &registry);
  EXPECT_GT(registry.CounterRef("threadpool_tasks_submitted").value(), 0u);
  EXPECT_EQ(registry.CounterRef("threadpool_tasks_submitted").value(),
            registry.CounterRef("threadpool_tasks_completed").value());
  EXPECT_GT(
      registry.HistogramRef("threadpool_task_run_seconds").Snapshot().count(),
      0u);
}

// ------------------------------------------------ partitioner instruments

TEST(PartitionerObservabilityTest, BisectionsEmitSpansAndMetrics) {
  SocialGraphOptions graph_options;
  graph_options.num_vertices = 1 << 10;
  graph_options.avg_out_degree = 6.0;
  graph_options.num_communities = 4;
  graph_options.seed = 7;
  auto graph = GenerateSocialGraph(graph_options);
  ASSERT_TRUE(graph.ok());

  Tracer tracer;
  MetricsRegistry registry;
  RecursivePartitionerOptions options;
  options.num_partitions = 8;
  options.tracer = &tracer;
  options.metrics = &registry;
  auto result = RecursivePartition(*graph, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // 8 partitions -> 7 bisections across 3 levels.
  EXPECT_EQ(registry.CounterRef("partition_bisections_total").value(), 7u);
  for (int level = 0; level < 3; ++level) {
    const Labels labels = {{"level", std::to_string(level)}};
    EXPECT_EQ(
        registry.HistogramRef("partition_bisection_seconds", labels)
            .Snapshot()
            .count(),
        static_cast<size_t>(1) << level)
        << "level " << level;
    EXPECT_GE(registry.GaugeRef("partition_edge_cut", labels).value(), 0.0);
  }
  if (Tracer::CompiledIn()) {
    EXPECT_EQ(tracer.num_events(), 7u);
    for (const TraceEvent& event : tracer.Events()) {
      EXPECT_EQ(event.category, "partition");
      EXPECT_EQ(event.clock, TraceClock::kWall);
    }
  }
}

// ------------------------------------------------------------ trace merge

namespace {

JsonValue MakeProcessTrace(uint64_t origin_unix_us, double first_ts,
                           const std::string& process_name) {
  JsonValue name_args = JsonValue::MakeObject();
  name_args.Set("name", process_name);
  JsonValue name_event = JsonValue::MakeObject();
  name_event.Set("name", "process_name");
  name_event.Set("ph", "M");
  name_event.Set("pid", 1);
  name_event.Set("tid", 0);
  name_event.Set("args", std::move(name_args));

  JsonValue span = JsonValue::MakeObject();
  span.Set("name", "transfer");
  span.Set("ph", "X");
  span.Set("pid", 1);
  span.Set("tid", 7);
  span.Set("ts", first_ts);
  span.Set("dur", 50.0);

  JsonValue events = JsonValue::MakeArray();
  events.Append(std::move(name_event));
  events.Append(std::move(span));
  JsonValue trace = JsonValue::MakeObject();
  trace.Set("traceEvents", std::move(events));
  if (origin_unix_us != 0) trace.Set("origin_unix_us", origin_unix_us);
  return trace;
}

}  // namespace

TEST(TraceMergeTest, RemapsLanesAndAlignsOnCommonClock) {
  std::vector<TraceMergeInput> inputs;
  // Worker 1's tracer started 2000us after worker 0's: its local ts values
  // must shift forward by 2000 to land on the shared timeline.
  inputs.push_back({"worker0", MakeProcessTrace(5'000'000, 100.0, "wall")});
  inputs.push_back({"worker1", MakeProcessTrace(5'002'000, 100.0, "wall")});
  auto merged = MergeChromeTraces(inputs);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  EXPECT_EQ(merged->Find("merged_processes")->as_number(), 2.0);
  EXPECT_TRUE(merged->Find("aligned")->as_bool());
  const auto& events = merged->Find("traceEvents")->as_array();
  ASSERT_EQ(events.size(), 4u);

  // Input 0 keeps pid 1; input 1 moves to the 1000-stride lane.
  EXPECT_EQ(events[0].Find("pid")->as_number(), 1.0);
  EXPECT_EQ(events[2].Find("pid")->as_number(), 1001.0);
  // Metadata names gain the per-input label prefix.
  EXPECT_EQ(events[0].Find("args")->Find("name")->as_string(),
            "worker0: wall");
  EXPECT_EQ(events[2].Find("args")->Find("name")->as_string(),
            "worker1: wall");
  // Same local ts, but worker 1 started 2000us later in wall time.
  EXPECT_EQ(events[1].Find("ts")->as_number(), 100.0);
  EXPECT_EQ(events[3].Find("ts")->as_number(), 2100.0);
}

TEST(TraceMergeTest, SkipsAlignmentUnlessEveryInputHasAnchor) {
  std::vector<TraceMergeInput> inputs;
  inputs.push_back({"a", MakeProcessTrace(5'000'000, 100.0, "wall")});
  inputs.push_back({"b", MakeProcessTrace(0, 100.0, "wall")});  // no anchor
  auto merged = MergeChromeTraces(inputs);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_FALSE(merged->Find("aligned")->as_bool());
  const auto& events = merged->Find("traceEvents")->as_array();
  ASSERT_EQ(events.size(), 4u);
  // With a partial anchor set, no timestamps move at all.
  EXPECT_EQ(events[1].Find("ts")->as_number(), 100.0);
  EXPECT_EQ(events[3].Find("ts")->as_number(), 100.0);
}

TEST(TraceMergeTest, RejectsEmptyAndMalformedInputs) {
  EXPECT_FALSE(MergeChromeTraces({}).ok());
  std::vector<TraceMergeInput> inputs;
  inputs.push_back({"bad", JsonValue::MakeObject()});
  auto merged = MergeChromeTraces(inputs);
  EXPECT_FALSE(merged.ok());
}

}  // namespace
}  // namespace obs
}  // namespace surfer
