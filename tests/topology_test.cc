#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "cluster/topology.h"
#include "core/sim_scale.h"

namespace surfer {
namespace {

TEST(TopologyTest, T1IsUniform) {
  const Topology t = Topology::T1(8);
  EXPECT_EQ(t.num_machines(), 8u);
  EXPECT_TRUE(t.IsUniform());
  EXPECT_EQ(t.Name(), "T1");
  const double bw = t.Bandwidth(0, 1);
  EXPECT_GT(bw, 0.0);
  for (MachineId a = 0; a < 8; ++a) {
    for (MachineId b = 0; b < 8; ++b) {
      if (a != b) {
        EXPECT_DOUBLE_EQ(t.Bandwidth(a, b), bw);
      }
    }
  }
}

TEST(TopologyTest, SelfBandwidthIsInfinite) {
  const Topology t = Topology::T1(4);
  EXPECT_TRUE(std::isinf(t.Bandwidth(2, 2)));
}

TEST(TopologyTest, T2OneLevelPods) {
  const Topology t = Topology::T2(32, /*num_pods=*/2, /*num_levels=*/1);
  EXPECT_EQ(t.Name(), "T2(2,1)");
  EXPECT_FALSE(t.IsUniform());
  // Machines 0..15 in pod 0, 16..31 in pod 1.
  EXPECT_EQ(t.machine(0).pod, 0u);
  EXPECT_EQ(t.machine(15).pod, 0u);
  EXPECT_EQ(t.machine(16).pod, 1u);
  const double intra = t.Bandwidth(0, 1);
  const double cross = t.Bandwidth(0, 16);
  // One-level tree: cross-pod pairs cross the (only) second-level switch.
  EXPECT_DOUBLE_EQ(intra / cross, 16.0);
}

TEST(TopologyTest, T2TwoLevelGroups) {
  const Topology t = Topology::T2(32, /*num_pods=*/4, /*num_levels=*/2);
  EXPECT_EQ(t.Name(), "T2(4,2)");
  // Pods 0,1 in group 0; pods 2,3 in group 1.
  EXPECT_EQ(t.machine(0).pod_group, 0u);
  EXPECT_EQ(t.machine(8).pod_group, 0u);   // pod 1
  EXPECT_EQ(t.machine(16).pod_group, 1u);  // pod 2
  const double intra_pod = t.Bandwidth(0, 7);
  const double same_group = t.Bandwidth(0, 8);    // pod 0 -> pod 1
  const double cross_group = t.Bandwidth(0, 16);  // pod 0 -> pod 2
  EXPECT_DOUBLE_EQ(intra_pod / same_group, 16.0);
  EXPECT_DOUBLE_EQ(intra_pod / cross_group, 32.0);
  EXPECT_LT(cross_group, same_group);
}

TEST(TopologyTest, T2CustomDelayFactor) {
  const Topology t =
      Topology::T2(8, 2, 1, /*second_level_factor=*/128.0);
  EXPECT_DOUBLE_EQ(t.Bandwidth(0, 1) / t.Bandwidth(0, 4), 128.0);
}

TEST(TopologyTest, T2Validation) {
  TopologyOptions opt;
  opt.kind = TopologyKind::kT2;
  opt.num_machines = 10;
  opt.num_pods = 3;  // does not divide 10
  EXPECT_FALSE(Topology::Make(opt).ok());
  opt.num_pods = 2;
  opt.num_levels = 3;  // unsupported
  EXPECT_FALSE(Topology::Make(opt).ok());
  opt.num_levels = 2;
  opt.num_pods = 5;  // odd pods cannot form two groups
  opt.num_machines = 10;
  EXPECT_FALSE(Topology::Make(opt).ok());
}

TEST(TopologyTest, T3HalvesBandwidth) {
  const Topology t = Topology::T3(16, /*low_ratio=*/0.5, /*seed=*/3);
  EXPECT_EQ(t.Name(), "T3");
  EXPECT_FALSE(t.IsUniform());
  // Exactly half the machines have a halved NIC.
  const double full = t.machine(0).nic_bytes_per_sec;
  uint32_t low = 0;
  double max_nic = 0;
  for (MachineId m = 0; m < 16; ++m) {
    max_nic = std::max(max_nic, t.machine(m).nic_bytes_per_sec);
  }
  for (MachineId m = 0; m < 16; ++m) {
    if (t.machine(m).nic_bytes_per_sec < max_nic) {
      ++low;
    }
  }
  (void)full;
  EXPECT_EQ(low, 8u);
  // A pair's bandwidth is min of endpoint NICs.
  for (MachineId a = 0; a < 16; ++a) {
    for (MachineId b = 0; b < 16; ++b) {
      if (a == b) {
        continue;
      }
      EXPECT_DOUBLE_EQ(t.Bandwidth(a, b),
                       std::min(t.machine(a).nic_bytes_per_sec,
                                t.machine(b).nic_bytes_per_sec));
    }
  }
}

TEST(TopologyTest, T3Validation) {
  TopologyOptions opt;
  opt.kind = TopologyKind::kT3;
  opt.num_machines = 8;
  opt.low_bandwidth_ratio = 0.0;
  EXPECT_FALSE(Topology::Make(opt).ok());
  opt.low_bandwidth_ratio = 1.5;
  EXPECT_FALSE(Topology::Make(opt).ok());
}

TEST(TopologyTest, EmptyTopologyRejected) {
  TopologyOptions opt;
  opt.num_machines = 0;
  EXPECT_FALSE(Topology::Make(opt).ok());
}

TEST(TopologyTest, AggregatedBandwidth) {
  const Topology t = Topology::T1(4);
  const double pair_bw = t.Bandwidth(0, 1);
  EXPECT_DOUBLE_EQ(t.AggregatedBandwidth({0, 1}, {2, 3}), 4 * pair_bw);
  EXPECT_DOUBLE_EQ(t.AggregatedBandwidth({0}, {1}), pair_bw);
  // Shared machines are skipped (no self pairs).
  EXPECT_DOUBLE_EQ(t.AggregatedBandwidth({0}, {0}), 0.0);
}

TEST(SimScaleTest, ScalesHardwareDown) {
  const Topology base = Topology::T1(4);
  const Topology scaled = MakeScaledT1(4, 100.0);
  EXPECT_DOUBLE_EQ(base.Bandwidth(0, 1) / scaled.Bandwidth(0, 1), 100.0);
  EXPECT_DOUBLE_EQ(
      base.machine(0).disk_bytes_per_sec / scaled.machine(0).disk_bytes_per_sec,
      100.0);
}

TEST(SimScaleTest, ScaledTopologiesKeepStructure) {
  const Topology t2 = MakeScaledT2(32, 4, 2, 1000.0);
  EXPECT_EQ(t2.Name(), "T2(4,2)");
  EXPECT_DOUBLE_EQ(t2.Bandwidth(0, 7) / t2.Bandwidth(0, 16), 32.0);
  const Topology t3 = MakeScaledT3(16, 1000.0);
  EXPECT_EQ(t3.Name(), "T3");
}

TEST(SimScaleTest, ScaledSimOptions) {
  // CPU scales by a quarter of the I/O factor (compute overlaps with I/O on
  // the real cluster; see ScaleSimOptions).
  const JobSimulationOptions opt = MakeScaledSimOptions(100.0);
  JobSimulationOptions base;
  EXPECT_DOUBLE_EQ(base.cost.cpu_bytes_per_sec / opt.cost.cpu_bytes_per_sec,
                   25.0);
}

}  // namespace
}  // namespace surfer
