#include <gtest/gtest.h>

#include "apps/network_ranking.h"
#include "apps/reverse_link_graph.h"
#include "core/pipeline.h"
#include "graph/algorithms.h"
#include "tests/test_fixtures.h"

namespace surfer {
namespace {

using testing_fixtures::EngineFixture;
using testing_fixtures::MakeEngineFixture;

const EngineFixture& Fixture() {
  static const EngineFixture* fixture =
      new EngineFixture(MakeEngineFixture(1 << 11, 8, 91));
  return *fixture;
}

TEST(PipelineTest, EmptyPipelineRejected) {
  const EngineFixture& f = Fixture();
  JobPipeline pipeline(f.engine.get(), OptimizationLevel::kO4);
  EXPECT_FALSE(pipeline.Run().ok());
}

TEST(PipelineTest, ChainsJobsAndAttributesCosts) {
  const EngineFixture& f = Fixture();
  JobPipeline pipeline(f.engine.get(), OptimizationLevel::kO4);
  pipeline.set_sim_options(MakeScaledSimOptions());

  std::vector<double> ranks;
  PropagationConfig nr_config;
  nr_config.iterations = 2;
  pipeline.AddPropagation<NetworkRankingApp>(
      "rank", NetworkRankingApp(f.graph.num_vertices()), nr_config,
      [&](const RunAppResult<NetworkRankingApp>& result) {
        ranks = result.states;
      });

  uint64_t reversed_edges = 0;
  pipeline.AddPropagation<ReverseLinkGraphApp>(
      "reverse", ReverseLinkGraphApp(), PropagationConfig{},
      [&](const RunAppResult<ReverseLinkGraphApp>& result) {
        for (const auto& list : result.states) {
          reversed_edges += list.size();
        }
      });

  auto report = pipeline.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->steps.size(), 2u);
  EXPECT_EQ(report->steps[0].name, "rank");
  EXPECT_EQ(report->steps[1].name, "reverse");
  // Per-step metrics are positive and sum to the totals.
  double total_response = 0.0;
  for (const auto& step : report->steps) {
    EXPECT_GT(step.response_time_s, 0.0);
    EXPECT_GT(step.disk_bytes, 0.0);
    total_response += step.response_time_s;
  }
  EXPECT_NEAR(total_response, report->totals.response_time_s, 1e-9);
  EXPECT_FALSE(report->ToString().empty());

  // Both steps computed real results.
  ASSERT_EQ(ranks.size(), f.graph.num_vertices());
  const auto reference = ReferencePageRank(f.graph, 2);
  double sum = 0.0;
  double reference_sum = 0.0;
  for (VertexId v = 0; v < f.graph.num_vertices(); ++v) {
    sum += ranks[v];
    reference_sum += reference[v];
  }
  EXPECT_NEAR(sum, reference_sum, 1e-9);
  EXPECT_EQ(reversed_edges, f.graph.num_edges());
}

TEST(PipelineTest, LevelFlagsOverrideStepConfigs) {
  // A pipeline built at O1 must run its propagation steps without local
  // optimizations even if the step's config asked for them.
  const EngineFixture& f = Fixture();

  auto run_at = [&](OptimizationLevel level) {
    JobPipeline pipeline(f.engine.get(), level);
    pipeline.set_sim_options(MakeScaledSimOptions());
    PropagationConfig config;  // defaults: local optimizations on
    config.iterations = 1;
    pipeline.AddPropagation<NetworkRankingApp>(
        "rank", NetworkRankingApp(f.graph.num_vertices()), config);
    auto report = pipeline.Run();
    EXPECT_TRUE(report.ok());
    return report->totals.network_bytes;
  };

  EXPECT_GT(run_at(OptimizationLevel::kO1), run_at(OptimizationLevel::kO4));
}

TEST(PipelineTest, FaultSurvivesAcrossSteps) {
  const EngineFixture& f = Fixture();
  JobPipeline pipeline(f.engine.get(), OptimizationLevel::kO4);
  pipeline.set_sim_options(MakeScaledSimOptions());
  pipeline.InjectFault({.machine = 1, .fail_at_s = 0.5});

  PropagationConfig config;
  config.iterations = 1;
  pipeline.AddPropagation<NetworkRankingApp>(
      "first", NetworkRankingApp(f.graph.num_vertices()), config);
  bool second_ran = false;
  pipeline.Add("check", [&](JobPipeline::JobContext& ctx) {
    // The machine killed in step one stays dead for later steps.
    EXPECT_FALSE(ctx.sim->IsAlive(1));
    second_ran = true;
    return Status::OK();
  });
  auto report = pipeline.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(second_ran);
}

TEST(PipelineTest, StepErrorPropagates) {
  const EngineFixture& f = Fixture();
  JobPipeline pipeline(f.engine.get(), OptimizationLevel::kO4);
  pipeline.Add("boom", [](JobPipeline::JobContext&) {
    return Status::Internal("step failed");
  });
  auto report = pipeline.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace surfer
