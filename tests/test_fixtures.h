#ifndef SURFER_TESTS_TEST_FIXTURES_H_
#define SURFER_TESTS_TEST_FIXTURES_H_

#include <memory>

#include <gtest/gtest.h>

#include "apps/common.h"
#include "core/sim_scale.h"
#include "core/surfer.h"
#include "graph/generators.h"

namespace surfer {
namespace testing_fixtures {

/// A small social graph + engine + scaled 8-machine T2 cluster shared by the
/// propagation/MapReduce test suites.
struct EngineFixture {
  Graph graph;
  Topology topology;
  std::unique_ptr<SurferEngine> engine;

  BenchmarkSetup Setup(OptimizationLevel level) const {
    BenchmarkSetup setup = engine->MakeSetup(level);
    setup.sim_options = MakeScaledSimOptions();
    return setup;
  }
};

inline EngineFixture MakeEngineFixture(uint32_t num_vertices = 1 << 12,
                                       uint32_t partitions = 16,
                                       uint64_t seed = 33) {
  EngineFixture f{Graph{}, MakeScaledT2(8, 2, 1), nullptr};
  SocialGraphOptions graph_options;
  graph_options.num_vertices = num_vertices;
  graph_options.avg_out_degree = 8.0;
  // Fewer communities than partitions: partitions subdivide communities,
  // so sibling partitions share heavy intra-community traffic — the regime
  // where the bandwidth-aware layout matters (proximity, Section 4.1).
  graph_options.num_communities = 4;
  graph_options.seed = seed;
  auto graph = GenerateSocialGraph(graph_options);
  EXPECT_TRUE(graph.ok());
  f.graph = std::move(graph).value();
  SurferOptions options;
  options.num_partitions = partitions;
  auto engine = SurferEngine::Build(f.graph, f.topology, options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  f.engine = std::move(engine).value();
  return f;
}

/// Reference for the TC app's semantics: directed triangles a->b, b->c,
/// a->c with all three vertices sampled.
inline uint64_t ReferenceSampledDirectedTriangles(const Graph& g,
                                                  const VertexSampler& s) {
  uint64_t count = 0;
  for (VertexId a = 0; a < g.num_vertices(); ++a) {
    if (!s.SelectedOriginal(a)) {
      continue;
    }
    for (VertexId b : g.OutNeighbors(a)) {
      if (!s.SelectedOriginal(b)) {
        continue;
      }
      // c in out(a) ∩ out(b), sampled.
      for (VertexId c : g.OutNeighbors(b)) {
        if (s.SelectedOriginal(c) && g.HasEdge(a, c)) {
          ++count;
        }
      }
    }
  }
  return count;
}

/// Reference for the TFL app's semantics on the *original* graph: the
/// distinct out-neighbors of v's sampled in-neighbors, minus v.
inline std::vector<VertexId> ReferenceSampledTwoHop(const Graph& g,
                                                    const Graph& reversed,
                                                    const VertexSampler& s,
                                                    VertexId v) {
  std::vector<VertexId> result;
  for (VertexId u : reversed.OutNeighbors(v)) {
    if (!s.SelectedOriginal(u)) {
      continue;
    }
    for (VertexId w : g.OutNeighbors(u)) {
      result.push_back(w);
    }
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  auto self = std::lower_bound(result.begin(), result.end(), v);
  if (self != result.end() && *self == v) {
    result.erase(self);
  }
  return result;
}

}  // namespace testing_fixtures
}  // namespace surfer

#endif  // SURFER_TESTS_TEST_FIXTURES_H_
