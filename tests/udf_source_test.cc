#include <gtest/gtest.h>

#include "apps/udf_source.h"

namespace surfer {
namespace {

TEST(UdfSourceTest, CountsSkipBlanksBracesComments) {
  EXPECT_EQ(CountUdfLines(""), 0);
  EXPECT_EQ(CountUdfLines("\n\n"), 0);
  EXPECT_EQ(CountUdfLines("a = 1;\n"), 1);
  EXPECT_EQ(CountUdfLines("a = 1;\n}\n{\n// comment\nb = 2;\n"), 2);
  EXPECT_EQ(CountUdfLines("  indented;  \n"), 1);
}

TEST(UdfSourceTest, AllSixAppsPresent) {
  const auto& entries = UdfSources();
  ASSERT_EQ(entries.size(), 6u);
  for (const auto& entry : entries) {
    EXPECT_FALSE(entry.propagation_source.empty()) << entry.app;
    EXPECT_FALSE(entry.mapreduce_source.empty()) << entry.app;
    EXPECT_GT(entry.paper_hadoop_loc, 0) << entry.app;
  }
}

TEST(UdfSourceTest, PropagationIsSmallerThanMapReduceForEveryApp) {
  // Table 4's headline: propagation UDFs are far smaller.
  for (const auto& entry : UdfSources()) {
    const int prop = CountUdfLines(entry.propagation_source);
    const int mr = CountUdfLines(entry.mapreduce_source);
    if (entry.app == "VDD") {
      // VDD is the vertex-oriented task MapReduce fits naturally; the paper
      // still reports fewer propagation lines (18 vs 33) but the gap is the
      // smallest of the suite.
      EXPECT_LE(prop, mr) << entry.app;
    } else {
      EXPECT_LT(prop, mr) << entry.app;
    }
  }
}

TEST(UdfSourceTest, PropagationLocInPaperBallpark) {
  // The paper's propagation UDFs are 18-27 lines; ours should land in a
  // comparable band (8-35 allowing style differences).
  for (const auto& entry : UdfSources()) {
    const int prop = CountUdfLines(entry.propagation_source);
    EXPECT_GE(prop, 5) << entry.app;
    EXPECT_LE(prop, 35) << entry.app;
    EXPECT_GE(entry.paper_propagation_loc, 18);
    EXPECT_LE(entry.paper_propagation_loc, 27);
  }
}

TEST(UdfSourceTest, PaperNumbersMatchTable4) {
  // Spot-check the quoted Table 4 values.
  for (const auto& entry : UdfSources()) {
    if (entry.app == "NR") {
      EXPECT_EQ(entry.paper_hadoop_loc, 147);
      EXPECT_EQ(entry.paper_homegrown_mr_loc, 163);
      EXPECT_EQ(entry.paper_propagation_loc, 21);
    }
    if (entry.app == "TFL") {
      EXPECT_EQ(entry.paper_hadoop_loc, 171);
      EXPECT_EQ(entry.paper_homegrown_mr_loc, 194);
      EXPECT_EQ(entry.paper_propagation_loc, 25);
    }
  }
}

}  // namespace
}  // namespace surfer
