#include <gtest/gtest.h>

#include "cluster/topology.h"
#include "engine/job_simulation.h"

namespace surfer {
namespace {

JobSimulationOptions NoOverheadOptions() {
  JobSimulationOptions options;
  options.cost.task_overhead_s = 0.0;
  options.heartbeat_interval_s = 1.0;
  return options;
}

SimTask MakeTask(MachineId machine, double disk_read,
                 SimTaskKind kind = SimTaskKind::kGeneric) {
  SimTask task;
  task.kind = kind;
  task.candidate_machines = {machine};
  task.cost.disk_read_bytes = disk_read;
  return task;
}

TEST(JobSimulationTest, SingleStageTimingMath) {
  const Topology topo = Topology::T1(2);
  JobSimulation sim(&topo, NoOverheadOptions());
  const double disk_bw = topo.machine(0).disk_bytes_per_sec;
  // Machine 0 gets two 1-second tasks, machine 1 one 1-second task.
  std::vector<SimTask> tasks = {MakeTask(0, disk_bw), MakeTask(0, disk_bw),
                                MakeTask(1, disk_bw)};
  auto stage = sim.RunStage("s", tasks);
  ASSERT_TRUE(stage.ok());
  EXPECT_NEAR(stage->duration_s, 2.0, 1e-9);           // makespan
  EXPECT_NEAR(stage->busy_machine_seconds, 3.0, 1e-9);  // total work
  EXPECT_EQ(stage->num_tasks, 3u);
  EXPECT_NEAR(sim.now(), 2.0, 1e-9);
}

TEST(JobSimulationTest, StagesAccumulate) {
  const Topology topo = Topology::T1(1);
  JobSimulation sim(&topo, NoOverheadOptions());
  const double disk_bw = topo.machine(0).disk_bytes_per_sec;
  ASSERT_TRUE(sim.RunStage("a", {MakeTask(0, disk_bw)}).ok());
  ASSERT_TRUE(sim.RunStage("b", {MakeTask(0, 2 * disk_bw)}).ok());
  EXPECT_NEAR(sim.metrics().response_time_s, 3.0, 1e-9);
  EXPECT_EQ(sim.metrics().stages.size(), 2u);
  EXPECT_NEAR(sim.metrics().disk_bytes, 3 * disk_bw, 1e-6);
}

TEST(JobSimulationTest, NetworkBytesCountOnlyRemote) {
  const Topology topo = Topology::T1(2);
  JobSimulation sim(&topo, NoOverheadOptions());
  SimTask task = MakeTask(0, 0.0);
  task.cost.AddNetwork(0, 500.0);  // local: free
  task.cost.AddNetwork(1, 300.0);  // remote
  auto stage = sim.RunStage("net", {task});
  ASSERT_TRUE(stage.ok());
  EXPECT_NEAR(stage->network_bytes, 300.0, 1e-9);
  EXPECT_NEAR(stage->duration_s, 300.0 / topo.Bandwidth(0, 1), 1e-9);
}

TEST(JobSimulationTest, DiskTimelineMassMatches) {
  const Topology topo = Topology::T1(2);
  JobSimulation sim(&topo, NoOverheadOptions());
  const double disk_bw = topo.machine(0).disk_bytes_per_sec;
  ASSERT_TRUE(
      sim.RunStage("io", {MakeTask(0, 2 * disk_bw), MakeTask(1, disk_bw)})
          .ok());
  double mass = 0.0;
  for (double b : sim.metrics().disk_rate.buckets()) {
    mass += b;
  }
  EXPECT_NEAR(mass, 3 * disk_bw, 1.0);
}

TEST(JobSimulationTest, FaultBeforeStageRoutesToFallback) {
  const Topology topo = Topology::T1(3);
  JobSimulation sim(&topo, NoOverheadOptions());
  sim.InjectFault({.machine = 0, .fail_at_s = 0.0});
  SimTask task = MakeTask(0, topo.machine(0).disk_bytes_per_sec);
  task.candidate_machines = {0, 2};
  auto stage = sim.RunStage("s", {task});
  ASSERT_TRUE(stage.ok());
  EXPECT_FALSE(sim.IsAlive(0));
  EXPECT_NEAR(stage->duration_s, 1.0, 1e-9);
}

TEST(JobSimulationTest, NoAliveReplicaFailsStage) {
  const Topology topo = Topology::T1(2);
  JobSimulation sim(&topo, NoOverheadOptions());
  sim.InjectFault({.machine = 1, .fail_at_s = 0.0});
  SimTask task = MakeTask(1, 100.0);
  auto stage = sim.RunStage("s", {task});
  EXPECT_FALSE(stage.ok());
  EXPECT_TRUE(stage.status().IsUnavailable());
}

TEST(JobSimulationTest, MidStageFaultReexecutesRemainingTasks) {
  const Topology topo = Topology::T1(2);
  JobSimulationOptions options = NoOverheadOptions();
  options.heartbeat_interval_s = 0.5;
  JobSimulation sim(&topo, options);
  const double disk_bw = topo.machine(0).disk_bytes_per_sec;

  // Four 1-second tasks, balanced two per machine; machine 0 dies at
  // t = 1.5 with its second task in flight.
  sim.InjectFault({.machine = 0, .fail_at_s = 1.5});
  std::vector<SimTask> tasks;
  for (int i = 0; i < 4; ++i) {
    SimTask task = MakeTask(0, disk_bw, SimTaskKind::kTransfer);
    task.candidate_machines = {0, 1};
    tasks.push_back(task);
  }
  auto stage = sim.RunStage("s", tasks);
  ASSERT_TRUE(stage.ok());
  // The balanced schedule gives each machine tasks at [0,1) and [1,2).
  // Machine 0 finished one task, lost the in-flight one at 1.5; the retry
  // lands on machine 1 at detection (2.0) and finishes at 3.0.
  EXPECT_NEAR(stage->duration_s, 3.0, 1e-6);
  EXPECT_EQ(stage->num_reexecuted_tasks, 1u);
  EXPECT_FALSE(sim.IsAlive(0));
  // Busy time: 3 completed + 0.5 partial lost + 1 re-run = 4.5.
  EXPECT_NEAR(stage->busy_machine_seconds, 4.5, 1e-6);
}

TEST(JobSimulationTest, RecoveryOverheadIsModest) {
  // The Figure 10 shape: recovery adds ~10% to the normal completion.
  const Topology topo = Topology::T1(8);
  const double disk_bw = topo.machine(0).disk_bytes_per_sec;

  auto run = [&](bool with_fault) {
    JobSimulationOptions options = NoOverheadOptions();
    options.heartbeat_interval_s = 0.2;
    JobSimulation sim(&topo, options);
    if (with_fault) {
      sim.InjectFault({.machine = 3, .fail_at_s = 2.5});
    }
    std::vector<SimTask> tasks;
    for (MachineId m = 0; m < 8; ++m) {
      for (int i = 0; i < 8; ++i) {
        SimTask task = MakeTask(m, disk_bw, SimTaskKind::kTransfer);
        task.candidate_machines = {m, static_cast<MachineId>((m + 1) % 8)};
        tasks.push_back(task);
      }
    }
    auto stage = sim.RunStage("s", tasks);
    EXPECT_TRUE(stage.ok());
    return stage->duration_s;
  };

  const double normal = run(false);
  const double recovered = run(true);
  EXPECT_GT(recovered, normal);
  EXPECT_LT(recovered, normal * 2.0);
}

TEST(JobSimulationTest, CombineRecoveryPaysRefetch) {
  // Three machines so the recovering machine still has an alive peer to
  // re-fetch the Combine inputs from.
  const Topology topo = Topology::T1(3);
  JobSimulationOptions options = NoOverheadOptions();
  options.heartbeat_interval_s = 0.0;
  const double disk_bw = topo.machine(0).disk_bytes_per_sec;

  auto run = [&](double refetch_bytes) {
    JobSimulation sim(&topo, options);
    sim.InjectFault({.machine = 0, .fail_at_s = 0.25});
    SimTask task = MakeTask(0, disk_bw, SimTaskKind::kCombine);
    task.candidate_machines = {0, 1};
    task.recovery_refetch_bytes = refetch_bytes;
    auto stage = sim.RunStage("s", {task});
    EXPECT_TRUE(stage.ok());
    return stage->duration_s;
  };

  const double without = run(0.0);
  const double with = run(topo.Bandwidth(0, 1));  // ~1 s of re-transfer
  EXPECT_NEAR(with - without, 1.0, 0.05);
}

TEST(JobSimulationTest, DeadMachineAvoidedInLaterStages) {
  const Topology topo = Topology::T1(2);
  JobSimulation sim(&topo, NoOverheadOptions());
  sim.InjectFault({.machine = 0, .fail_at_s = 0.1});
  SimTask first = MakeTask(0, topo.machine(0).disk_bytes_per_sec);
  first.candidate_machines = {0, 1};
  ASSERT_TRUE(sim.RunStage("a", {first}).ok());
  EXPECT_FALSE(sim.IsAlive(0));
  // The next stage routes directly to the fallback.
  SimTask second = MakeTask(0, topo.machine(0).disk_bytes_per_sec);
  second.candidate_machines = {0, 1};
  auto stage = sim.RunStage("b", {second});
  ASSERT_TRUE(stage.ok());
  EXPECT_EQ(stage->num_reexecuted_tasks, 0u);
}

TEST(JobSimulationTest, EmptyStage) {
  const Topology topo = Topology::T1(2);
  JobSimulation sim(&topo, NoOverheadOptions());
  auto stage = sim.RunStage("empty", {});
  ASSERT_TRUE(stage.ok());
  EXPECT_DOUBLE_EQ(stage->duration_s, 0.0);
}

}  // namespace
}  // namespace surfer
