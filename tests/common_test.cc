#include <atomic>
#include <bit>
#include <functional>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/units.h"

namespace surfer {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

Status FailsWhenNegative(int x) {
  if (x < 0) {
    return Status::InvalidArgument("negative");
  }
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  SURFER_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------- Result

Result<int> ParsePositive(int x) {
  if (x <= 0) {
    return Status::OutOfRange("not positive");
  }
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(0), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.value_or(42), 42);
}

Result<int> DoubleIt(int x) {
  SURFER_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = DoubleIt(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 8);
  EXPECT_FALSE(DoubleIt(0).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(MixSeedTest, DistinctStreamsDecorrelate) {
  // Nearby (seed, stream) pairs must land on distinct derived seeds — the
  // additive schemes this replaced (seed + depth * 7919) collided across
  // (seed, depth) pairs and correlated nearby shuffles.
  std::set<uint64_t> derived;
  for (uint64_t seed = 0; seed < 32; ++seed) {
    for (uint64_t stream = 0; stream < 32; ++stream) {
      derived.insert(MixSeed(seed, stream));
    }
  }
  EXPECT_EQ(derived.size(), 32u * 32u);
}

TEST(MixSeedTest, DeterministicAndAvalanching) {
  EXPECT_EQ(MixSeed(1, 2), MixSeed(1, 2));
  // A one-bit stream change should flip roughly half the output bits.
  const uint64_t diff = MixSeed(42, 7) ^ MixSeed(42, 6);
  EXPECT_GT(std::popcount(diff), 16);
  EXPECT_LT(std::popcount(diff), 48);
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    differing += a.Next() != b.Next();
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(rng.Uniform(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    hits += rng.Bernoulli(0.25);
  }
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

// ----------------------------------------------------------------- Units

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KiB");
  EXPECT_EQ(FormatBytes(3.5 * kMiB), "3.50 MiB");
  EXPECT_EQ(FormatBytes(1.25 * kGiB), "1.25 GiB");
}

TEST(UnitsTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(0.002), "2.0 ms");
  EXPECT_EQ(FormatSeconds(2.5), "2.50 s");
  EXPECT_EQ(FormatSeconds(120.0), "2.0 min");
  EXPECT_EQ(FormatSeconds(7200.0), "2.00 h");
}

TEST(UnitsTest, BitsToBytes) {
  EXPECT_DOUBLE_EQ(BitsPerSecToBytesPerSec(8e9), 1e9);
}

// ------------------------------------------------------------- Histogram

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    h.Add(v);
  }
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_NEAR(h.StdDev(), 1.118, 0.01);
}

TEST(HistogramTest, PercentileApproximation) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Add(static_cast<double>(i));
  }
  // Log-bucketed percentiles are coarse; allow 2x slack.
  EXPECT_GT(h.Percentile(99), 300.0);
  EXPECT_LT(h.Percentile(10), 256.0);
}

TEST(HistogramTest, MergeMatchesCombinedAdds) {
  Histogram a;
  Histogram b;
  Histogram combined;
  for (int i = 0; i < 50; ++i) {
    a.Add(i);
    combined.Add(i);
  }
  for (int i = 50; i < 100; ++i) {
    b.Add(i);
    combined.Add(i);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.Mean(), combined.Mean());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(FrequencyCounterTest, CountsAndMerges) {
  FrequencyCounter a;
  a.Add(3);
  a.Add(3);
  a.Add(5, 4);
  EXPECT_EQ(a.Get(3), 2u);
  EXPECT_EQ(a.Get(5), 4u);
  EXPECT_EQ(a.Get(99), 0u);
  EXPECT_EQ(a.total(), 6u);
  FrequencyCounter b;
  b.Add(3, 1);
  b.Add(7, 2);
  a.Merge(b);
  EXPECT_EQ(a.Get(3), 3u);
  EXPECT_EQ(a.Get(7), 2u);
  EXPECT_EQ(a.distinct(), 3u);
  const auto sorted = a.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].first, 3u);
  EXPECT_EQ(sorted[2].first, 7u);
}

// ----------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

// ------------------------------------------------------------ TaskGroup

TEST(TaskGroupTest, WaitsOnlyForItsOwnTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 64; ++i) {
    group.Submit([&] { counter.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 64);
  // Reusable after a wait.
  group.Submit([&] { counter.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(counter.load(), 65);
}

TEST(TaskGroupTest, NullPoolRunsInline) {
  TaskGroup group(nullptr);
  int order = 0;
  int first = -1;
  int second = -1;
  group.Submit([&] { first = order++; });
  group.Submit([&] { second = order++; });
  group.Wait();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(TaskGroupTest, TasksMaySpawnMoreTasks) {
  // Recursive fan-out: every task submits two children until a depth cap.
  // The group must count the late submissions and Wait for all of them.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  TaskGroup group(&pool);
  std::function<void(int)> spawn = [&](int depth) {
    counter.fetch_add(1);
    if (depth < 5) {
      group.Submit([&spawn, depth] { spawn(depth + 1); });
      group.Submit([&spawn, depth] { spawn(depth + 1); });
    }
  };
  group.Submit([&spawn] { spawn(0); });
  group.Wait();
  EXPECT_EQ(counter.load(), (1 << 6) - 1);
}

TEST(TaskGroupTest, NestedWaitInsideWorkerDoesNotDeadlock) {
  // Every worker blocks in a nested group Wait at once; helping (the waiter
  // drains the shared queue itself) is what keeps this from deadlocking.
  ThreadPool pool(2);
  std::atomic<int> inner_runs{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 4; ++i) {
    outer.Submit([&] {
      TaskGroup inner(&pool);
      for (int j = 0; j < 8; ++j) {
        inner.Submit([&] { inner_runs.fetch_add(1); });
      }
      inner.Wait();
    });
  }
  outer.Wait();
  EXPECT_EQ(inner_runs.load(), 32);
}

TEST(TaskGroupTest, ParallelForChunkedCoversDisjointRanges) {
  ThreadPool pool(3);
  std::vector<int> hits(10000, 0);
  ParallelForChunked(&pool, hits.size(), /*grain=*/64,
                     [&](size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                         ++hits[i];  // disjoint ranges: no atomics needed
                       }
                     });
  for (int h : hits) {
    ASSERT_EQ(h, 1);
  }
  // Null pool and tiny n run inline.
  int calls = 0;
  ParallelForChunked(nullptr, 5, 64, [&](size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 5u);
  });
  EXPECT_EQ(calls, 1);
  ParallelForChunked(&pool, 0, 64, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

// -------------------------------------------------------------- Logging

TEST(LoggingTest, LevelGate) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_FALSE(SURFER_LOG_ENABLED(kInfo));
  EXPECT_TRUE(SURFER_LOG_ENABLED(kError));
  SetLogLevel(LogLevel::kDebug);
  EXPECT_TRUE(SURFER_LOG_ENABLED(kInfo));
  SetLogLevel(original);
}

}  // namespace
}  // namespace surfer
