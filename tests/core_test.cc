#include <gtest/gtest.h>

#include "core/sim_scale.h"
#include "core/surfer.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace surfer {
namespace {

Graph TestGraph() {
  auto g = GenerateSocialGraph({.num_vertices = 1 << 11,
                                .avg_out_degree = 8.0,
                                .num_communities = 8,
                                .seed = 12});
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(SurferEngineTest, BuildsWithExplicitPartitions) {
  const Graph g = TestGraph();
  SurferOptions options;
  options.num_partitions = 8;
  auto engine = SurferEngine::Build(g, Topology::T1(4), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->num_partitions(), 8u);
  EXPECT_EQ((*engine)->partitioned_graph().num_partitions(), 8u);
  EXPECT_EQ((*engine)->bandwidth_aware_placement().num_partitions(), 8u);
  EXPECT_EQ((*engine)->random_placement().num_partitions(), 8u);
  EXPECT_GT((*engine)->quality().inner_edge_ratio, 0.0);
}

TEST(SurferEngineTest, DerivesPartitionCountFromMemoryRule) {
  const Graph g = TestGraph();
  SurferOptions options;
  options.num_partitions = 0;
  options.partition_memory_budget = g.StoredBytes() / 5;  // forces P = 8
  auto engine = SurferEngine::Build(g, Topology::T1(4), options);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->num_partitions(), 8u);
}

TEST(SurferEngineTest, MinPartitionsFloorApplies) {
  const Graph g = TestGraph();
  SurferOptions options;
  options.num_partitions = 0;
  options.partition_memory_budget = 1ull << 40;  // graph fits in one
  options.min_partitions = 4;
  auto engine = SurferEngine::Build(g, Topology::T1(4), options);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->num_partitions(), 4u);
}

TEST(SurferEngineTest, RejectsBadInputs) {
  SurferOptions options;
  options.num_partitions = 8;
  EXPECT_FALSE(SurferEngine::Build(Graph{}, Topology::T1(4), options).ok());
  const Graph g = TestGraph();
  options.num_partitions = 6;  // not a power of two
  EXPECT_FALSE(SurferEngine::Build(g, Topology::T1(4), options).ok());
}

TEST(SurferEngineTest, SetupsPointAtTheRightLayout) {
  const Graph g = TestGraph();
  SurferOptions options;
  options.num_partitions = 8;
  auto engine = SurferEngine::Build(g, Topology::T2(8, 2, 1), options);
  ASSERT_TRUE(engine.ok());
  const BenchmarkSetup o1 = (*engine)->MakeSetup(OptimizationLevel::kO1);
  const BenchmarkSetup o2 = (*engine)->MakeSetup(OptimizationLevel::kO2);
  const BenchmarkSetup o3 = (*engine)->MakeSetup(OptimizationLevel::kO3);
  const BenchmarkSetup o4 = (*engine)->MakeSetup(OptimizationLevel::kO4);
  EXPECT_EQ(o1.placement, &(*engine)->random_placement());
  EXPECT_EQ(o3.placement, &(*engine)->random_placement());
  EXPECT_EQ(o2.placement, &(*engine)->bandwidth_aware_placement());
  EXPECT_EQ(o4.placement, &(*engine)->bandwidth_aware_placement());
  EXPECT_EQ(o1.graph, &(*engine)->partitioned_graph());
  EXPECT_EQ(o1.topology, &(*engine)->topology());
}

TEST(SurferEngineTest, PartitionCountCappedByVertices) {
  // A tiny graph cannot have more partitions than vertices.
  GraphBuilder builder(8);
  for (VertexId v = 0; v + 1 < 8; ++v) {
    ASSERT_TRUE(builder.AddEdge(v, v + 1).ok());
  }
  const Graph g = std::move(builder).Build();
  SurferOptions options;
  options.num_partitions = 0;
  options.partition_memory_budget = 1;  // absurdly small: huge derived P
  auto engine = SurferEngine::Build(g, Topology::T1(2), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_LE((*engine)->num_partitions(), 8u);
}

TEST(OptimizationLevelTest, NamesAndFlags) {
  EXPECT_EQ(OptimizationLevelName(OptimizationLevel::kO1), "O1");
  EXPECT_EQ(OptimizationLevelName(OptimizationLevel::kO4), "O4");
  EXPECT_FALSE(UsesBandwidthAwareLayout(OptimizationLevel::kO1));
  EXPECT_TRUE(UsesBandwidthAwareLayout(OptimizationLevel::kO2));
  EXPECT_FALSE(UsesLocalOptimizations(OptimizationLevel::kO2));
  EXPECT_TRUE(UsesLocalOptimizations(OptimizationLevel::kO3));
  const PropagationConfig c1 = PropagationConfig::ForLevel(OptimizationLevel::kO1);
  EXPECT_FALSE(c1.local_propagation);
  EXPECT_FALSE(c1.local_combination);
  const PropagationConfig c4 = PropagationConfig::ForLevel(OptimizationLevel::kO4);
  EXPECT_TRUE(c4.local_propagation);
  EXPECT_TRUE(c4.local_combination);
}

}  // namespace
}  // namespace surfer
