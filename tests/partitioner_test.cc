#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "partition/partition_sketch.h"
#include "partition/partitioning.h"
#include "partition/recursive_partitioner.h"
#include "partition/vertex_encoding.h"

namespace surfer {
namespace {

Graph TestGraph(uint64_t seed = 42) {
  auto g = GenerateCompositeSmallWorld({.num_components = 8,
                                        .vertices_per_component = 256,
                                        .edges_per_component = 2048,
                                        .rewire_ratio = 0.05,
                                        .seed = seed});
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

// ---------------------------------------------------------- Partitioning

TEST(RecursivePartitionTest, RejectsBadPartitionCounts) {
  const Graph g = TestGraph();
  RecursivePartitionerOptions options;
  options.num_partitions = 3;
  EXPECT_FALSE(RecursivePartition(g, options).ok());
  options.num_partitions = 0;
  EXPECT_FALSE(RecursivePartition(g, options).ok());
}

TEST(RecursivePartitionTest, SinglePartitionIsTrivial) {
  const Graph g = TestGraph();
  RecursivePartitionerOptions options;
  options.num_partitions = 1;
  auto result = RecursivePartition(g, options);
  ASSERT_TRUE(result.ok());
  for (PartitionId p : result->partitioning.assignment) {
    EXPECT_EQ(p, 0u);
  }
}

TEST(RecursivePartitionTest, CoversAllPartitions) {
  const Graph g = TestGraph();
  RecursivePartitionerOptions options;
  options.num_partitions = 16;
  auto result = RecursivePartition(g, options);
  ASSERT_TRUE(result.ok());
  std::set<PartitionId> seen(result->partitioning.assignment.begin(),
                             result->partitioning.assignment.end());
  EXPECT_EQ(seen.size(), 16u);
  EXPECT_EQ(*seen.rbegin(), 15u);
}

TEST(RecursivePartitionTest, BalancedByStoredBytes) {
  const Graph g = TestGraph();
  RecursivePartitionerOptions options;
  options.num_partitions = 8;
  auto result = RecursivePartition(g, options);
  ASSERT_TRUE(result.ok());
  const PartitionQuality q = ComputeQuality(g, result->partitioning);
  EXPECT_LT(q.balance, 1.35);
}

TEST(RecursivePartitionTest, BeatsRandomPartitioning) {
  const Graph g = TestGraph();
  RecursivePartitionerOptions options;
  options.num_partitions = 8;
  auto result = RecursivePartition(g, options);
  ASSERT_TRUE(result.ok());
  auto random = RandomPartition(g, 8, 7);
  ASSERT_TRUE(random.ok());
  const double our_ier = ComputeQuality(g, result->partitioning).inner_edge_ratio;
  const double random_ier = ComputeQuality(g, *random).inner_edge_ratio;
  EXPECT_GT(our_ier, 3.0 * random_ier);
}

TEST(RecursivePartitionTest, MonotonicityOfPartitionSketch) {
  // T_l is non-decreasing in l (Section 4.1 monotonicity).
  const Graph g = TestGraph();
  RecursivePartitionerOptions options;
  options.num_partitions = 16;
  auto result = RecursivePartition(g, options);
  ASSERT_TRUE(result.ok());
  const PartitionSketch& sketch = result->sketch;
  uint64_t previous = 0;
  for (uint32_t level = 0; level < sketch.num_levels(); ++level) {
    const uint64_t t_l =
        sketch.TotalCrossEdgesAtLevel(g, result->partitioning, level);
    EXPECT_GE(t_l, previous) << "level " << level;
    previous = t_l;
  }
  // Level 0 has a single node: no cross edges.
  EXPECT_EQ(sketch.TotalCrossEdgesAtLevel(g, result->partitioning, 0), 0u);
}

TEST(RecursivePartitionTest, ProximityHoldsOnAverage) {
  // Proximity (Section 4.1): sibling partitions share more cross edges than
  // partitions whose common ancestor is higher. Exact per-node optimality is
  // NP-hard, so assert the aggregate trend.
  const Graph g = TestGraph();
  RecursivePartitionerOptions options;
  options.num_partitions = 16;
  auto result = RecursivePartition(g, options);
  ASSERT_TRUE(result.ok());
  const PartitionSketch& sketch = result->sketch;

  double sibling_sum = 0.0;
  int sibling_count = 0;
  double cousin_sum = 0.0;
  int cousin_count = 0;
  for (PartitionId a = 0; a < 16; ++a) {
    for (PartitionId b = a + 1; b < 16; ++b) {
      const uint32_t lca =
          sketch.LowestCommonAncestor(sketch.LeafNode(a), sketch.LeafNode(b));
      const uint32_t lca_level = sketch.LevelOf(lca);
      const uint64_t cross =
          CrossEdgesBetween(g, result->partitioning, a, b);
      if (lca_level == sketch.num_levels() - 2) {  // siblings
        sibling_sum += static_cast<double>(cross);
        ++sibling_count;
      } else if (lca_level == 0) {  // opposite halves of the root
        cousin_sum += static_cast<double>(cross);
        ++cousin_count;
      }
    }
  }
  ASSERT_GT(sibling_count, 0);
  ASSERT_GT(cousin_count, 0);
  EXPECT_GT(sibling_sum / sibling_count, cousin_sum / cousin_count);
}

TEST(RecursivePartitionTest, SketchCutsRecorded) {
  const Graph g = TestGraph();
  RecursivePartitionerOptions options;
  options.num_partitions = 8;
  auto result = RecursivePartition(g, options);
  ASSERT_TRUE(result.ok());
  // The root bisection must have been recorded with a positive cut (the
  // graph is connected across any split).
  EXPECT_GT(result->sketch.BisectionCut(1), 0);
}

// --------------------------------------------------------------- Quality

TEST(QualityTest, InnerPlusCrossEqualsTotal) {
  const Graph g = TestGraph();
  auto random = RandomPartition(g, 4, 3);
  ASSERT_TRUE(random.ok());
  const PartitionQuality q = ComputeQuality(g, *random);
  EXPECT_EQ(q.inner_edges + q.cross_edges, g.num_edges());
  uint64_t vertex_total = 0;
  for (uint64_t c : q.partition_vertices) {
    vertex_total += c;
  }
  EXPECT_EQ(vertex_total, g.num_vertices());
}

TEST(QualityTest, RandomPartitionIerNearOneOverP) {
  const Graph g = TestGraph();
  for (uint32_t p : {4u, 16u}) {
    auto random = RandomPartition(g, p, 3);
    ASSERT_TRUE(random.ok());
    const PartitionQuality q = ComputeQuality(g, *random);
    EXPECT_NEAR(q.inner_edge_ratio, 1.0 / p, 0.05);
  }
}

TEST(QualityTest, RandomPartitionBalanced) {
  const Graph g = TestGraph();
  auto random = RandomPartition(g, 8, 3);
  ASSERT_TRUE(random.ok());
  EXPECT_LT(ComputeQuality(g, *random).balance, 1.05);
}

TEST(QualityTest, ChooseNumPartitionsRule) {
  EXPECT_EQ(ChooseNumPartitions(100, 1000), 1u);
  EXPECT_EQ(ChooseNumPartitions(1000, 1000), 1u);
  EXPECT_EQ(ChooseNumPartitions(1001, 1000), 2u);
  EXPECT_EQ(ChooseNumPartitions(3000, 1000), 4u);
  EXPECT_EQ(ChooseNumPartitions(100ull << 30, 8ull << 30), 16u);
  EXPECT_EQ(ChooseNumPartitions(1000, 0), 1u);
}

// -------------------------------------------------------- VertexEncoding

TEST(VertexEncodingTest, RoundTripAndRanges) {
  const Graph g = TestGraph();
  RecursivePartitionerOptions options;
  options.num_partitions = 8;
  auto result = RecursivePartition(g, options);
  ASSERT_TRUE(result.ok());
  const VertexEncoding enc = VertexEncoding::Create(result->partitioning);

  EXPECT_EQ(enc.num_vertices(), g.num_vertices());
  EXPECT_EQ(enc.num_partitions(), 8u);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(enc.ToOriginal(enc.ToEncoded(v)), v);
    // Encoded ID falls inside its partition's range.
    const PartitionId p = result->partitioning.assignment[v];
    const auto [begin, end] = enc.Range(p);
    const VertexId e = enc.ToEncoded(v);
    EXPECT_GE(e, begin);
    EXPECT_LT(e, end);
    EXPECT_EQ(enc.PartitionOf(e), p);
  }
  // Ranges tile [0, n).
  EXPECT_EQ(enc.Range(0).first, 0u);
  EXPECT_EQ(enc.Range(7).second, g.num_vertices());
  for (PartitionId p = 0; p + 1 < 8; ++p) {
    EXPECT_EQ(enc.Range(p).second, enc.Range(p + 1).first);
  }
}

TEST(VertexEncodingTest, ReencodePreservesStructure) {
  const Graph g = TestGraph();
  auto random = RandomPartition(g, 4, 9);
  ASSERT_TRUE(random.ok());
  const VertexEncoding enc = VertexEncoding::Create(*random);
  const Graph encoded = enc.Reencode(g);
  ASSERT_EQ(encoded.num_vertices(), g.num_vertices());
  ASSERT_EQ(encoded.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(encoded.OutDegree(enc.ToEncoded(v)), g.OutDegree(v));
    for (VertexId n : g.OutNeighbors(v)) {
      EXPECT_TRUE(encoded.HasEdge(enc.ToEncoded(v), enc.ToEncoded(n)));
    }
  }
}

class PartitionCountSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PartitionCountSweep, IerDecreasesWithMorePartitions) {
  // The monotonicity behind Table 5: smaller partitions, more cross edges.
  static const Graph g = TestGraph(11);
  RecursivePartitionerOptions options;
  options.num_partitions = GetParam();
  auto result = RecursivePartition(g, options);
  ASSERT_TRUE(result.ok());
  const double ier = ComputeQuality(g, result->partitioning).inner_edge_ratio;
  static double previous_ier = 1.1;
  // Sweep runs in declaration order: 4, 8, 16, 32.
  EXPECT_LT(ier, previous_ier + 0.02);
  previous_ier = ier;
}

INSTANTIATE_TEST_SUITE_P(PartitionCounts, PartitionCountSweep,
                         ::testing::Values(4, 8, 16, 32));

}  // namespace
}  // namespace surfer
