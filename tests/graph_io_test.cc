#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_io.h"

namespace surfer {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("surfer_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(GraphIoTest, BinaryRoundTrip) {
  auto g = GenerateRmat({.num_vertices = 512, .num_edges = 4096, .seed = 5});
  ASSERT_TRUE(g.ok());
  const std::string path = Path("graph.bin");
  ASSERT_TRUE(WriteGraphFile(*g, path).ok());
  auto loaded = ReadGraphFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, *g);
}

TEST_F(GraphIoTest, BinaryRoundTripEmptyGraph) {
  Graph g(std::vector<EdgeIndex>{0, 0, 0}, {});
  const std::string path = Path("empty.bin");
  ASSERT_TRUE(WriteGraphFile(g, path).ok());
  auto loaded = ReadGraphFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices(), 2u);
  EXPECT_EQ(loaded->num_edges(), 0u);
}

TEST_F(GraphIoTest, ReadMissingFileFails) {
  auto result = ReadGraphFile(Path("nope.bin"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST_F(GraphIoTest, ReadRejectsBadMagic) {
  const std::string path = Path("bad.bin");
  std::ofstream out(path, std::ios::binary);
  out << "this is not a surfer graph file at all";
  out.close();
  auto result = ReadGraphFile(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST_F(GraphIoTest, ReadRejectsTruncatedFile) {
  auto g = GenerateRmat({.num_vertices = 128, .num_edges = 512, .seed = 6});
  ASSERT_TRUE(g.ok());
  const std::string path = Path("trunc.bin");
  ASSERT_TRUE(WriteGraphFile(*g, path).ok());
  // Chop the tail off.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  auto result = ReadGraphFile(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST_F(GraphIoTest, TextRoundTrip) {
  auto g = GenerateRmat({.num_vertices = 128, .num_edges = 512, .seed = 8});
  ASSERT_TRUE(g.ok());
  const std::string path = Path("graph.txt");
  ASSERT_TRUE(WriteEdgeListText(*g, path).ok());
  auto loaded = ReadEdgeListText(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Text round trip can lose trailing isolated vertices (no edges mention
  // them); compare edges via containment both ways on the common range.
  EXPECT_EQ(loaded->num_edges(), g->num_edges());
  for (VertexId v = 0; v < loaded->num_vertices(); ++v) {
    for (VertexId n : loaded->OutNeighbors(v)) {
      EXPECT_TRUE(g->HasEdge(v, n));
    }
  }
}

TEST_F(GraphIoTest, TextReaderSkipsComments) {
  const std::string path = Path("comments.txt");
  std::ofstream out(path);
  out << "# a comment\n0 1\n\n1 2\n";
  out.close();
  auto g = ReadEdgeListText(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 3u);
  EXPECT_EQ(g->num_edges(), 2u);
}

TEST_F(GraphIoTest, TextReaderRejectsGarbage) {
  const std::string path = Path("garbage.txt");
  std::ofstream out(path);
  out << "0 1\nfoo bar\n";
  out.close();
  EXPECT_FALSE(ReadEdgeListText(path).ok());
}

TEST_F(GraphIoTest, WriteToUnwritablePathFails) {
  auto g = GenerateRmat({.num_vertices = 64, .num_edges = 64, .seed = 9});
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(WriteGraphFile(*g, "/nonexistent_dir_xyz/graph.bin").ok());
  EXPECT_FALSE(WriteEdgeListText(*g, "/nonexistent_dir_xyz/graph.txt").ok());
}

}  // namespace
}  // namespace surfer
