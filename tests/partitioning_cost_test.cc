#include <gtest/gtest.h>

#include "cluster/topology.h"
#include "partition/partitioning_cost.h"

namespace surfer {
namespace {

constexpr size_t kGraphBytes = 100ull << 30;  // the paper's 100 GB graph

double Estimate(const Topology& topo, MachineGroupingPolicy policy) {
  auto result = EstimatePartitioningTime(topo, kGraphBytes, 64, policy);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result->total_seconds;
}

TEST(PartitioningCostTest, IdenticalOnUniformT1) {
  // "Both techniques on T1 behave the same, since every machine pair in T1
  // has the same network bandwidth" (Section 6.2).
  const Topology t1 = Topology::T1(32);
  const double ba = Estimate(t1, MachineGroupingPolicy::kBandwidthAware);
  const double random = Estimate(t1, MachineGroupingPolicy::kRandom);
  EXPECT_NEAR(ba, random, ba * 0.01);
}

TEST(PartitioningCostTest, BandwidthAwareWinsOnT2) {
  for (auto [pods, levels] : {std::pair{2u, 1u}, {4u, 1u}, {4u, 2u}}) {
    const Topology t2 = Topology::T2(32, pods, levels);
    const double ba = Estimate(t2, MachineGroupingPolicy::kBandwidthAware);
    const double random = Estimate(t2, MachineGroupingPolicy::kRandom);
    // Paper improvement band: 39-55%; accept a generous 20-70%.
    const double improvement = 1.0 - ba / random;
    EXPECT_GT(improvement, 0.20) << "T2(" << pods << "," << levels << ")";
    EXPECT_LT(improvement, 0.70) << "T2(" << pods << "," << levels << ")";
  }
}

TEST(PartitioningCostTest, BandwidthAwareWinsOnT3) {
  const Topology t3 = Topology::T3(32);
  const double ba = Estimate(t3, MachineGroupingPolicy::kBandwidthAware);
  const double random = Estimate(t3, MachineGroupingPolicy::kRandom);
  EXPECT_LT(ba, random);
}

TEST(PartitioningCostTest, Table1Ordering) {
  // ParMetis-like times grow with tree unevenness:
  // T1 < T2(2,1) < T2(4,1) < T2(4,2), as in Table 1.
  const double t1 = Estimate(Topology::T1(32), MachineGroupingPolicy::kRandom);
  const double t2_21 =
      Estimate(Topology::T2(32, 2, 1), MachineGroupingPolicy::kRandom);
  const double t2_41 =
      Estimate(Topology::T2(32, 4, 1), MachineGroupingPolicy::kRandom);
  const double t2_42 =
      Estimate(Topology::T2(32, 4, 2), MachineGroupingPolicy::kRandom);
  EXPECT_LT(t1, t2_21);
  EXPECT_LT(t2_21, t2_41 * 1.05);  // close but ordered
  EXPECT_LT(t2_41, t2_42);
}

TEST(PartitioningCostTest, ScalesWithGraphSize) {
  const Topology t1 = Topology::T1(32);
  auto small = EstimatePartitioningTime(t1, 1ull << 30, 64,
                                        MachineGroupingPolicy::kRandom);
  auto large = EstimatePartitioningTime(t1, 8ull << 30, 64,
                                        MachineGroupingPolicy::kRandom);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_NEAR(large->total_seconds / small->total_seconds, 8.0, 0.5);
}

TEST(PartitioningCostTest, BreakdownConsistent) {
  const Topology t2 = Topology::T2(32, 4, 2);
  auto result = EstimatePartitioningTime(t2, kGraphBytes, 64,
                                         MachineGroupingPolicy::kBandwidthAware);
  ASSERT_TRUE(result.ok());
  double level_sum = 0.0;
  for (double s : result->level_seconds) {
    EXPECT_GE(s, 0.0);
    level_sum += s;
  }
  EXPECT_NEAR(result->total_seconds,
              level_sum + result->local_phase_seconds, 1e-9);
  EXPECT_GT(result->local_phase_seconds, 0.0);
  EXPECT_FALSE(result->ToString().empty());
}

TEST(PartitioningCostTest, Validation) {
  const Topology t1 = Topology::T1(4);
  EXPECT_FALSE(EstimatePartitioningTime(t1, 1000, 3,
                                        MachineGroupingPolicy::kRandom)
                   .ok());
  EXPECT_FALSE(EstimatePartitioningTime(t1, 1000, 0,
                                        MachineGroupingPolicy::kRandom)
                   .ok());
}

TEST(PartitioningCostTest, DelaySweepMonotone) {
  // Figure 9's driver: higher cross-pod delay, bigger ParMetis penalty.
  double previous_gap = 0.0;
  for (double delay : {2.0, 8.0, 32.0, 128.0}) {
    const Topology t2 = Topology::T2(32, 2, 1, delay);
    const double ba = Estimate(t2, MachineGroupingPolicy::kBandwidthAware);
    const double random = Estimate(t2, MachineGroupingPolicy::kRandom);
    const double gap = random - ba;
    EXPECT_GE(gap, previous_gap * 0.99) << "delay " << delay;
    previous_gap = gap;
  }
}

}  // namespace
}  // namespace surfer
