#include "obs/trace_shard.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace surfer {
namespace obs {
namespace {

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

// Record/Drain are no-ops when tracing is compiled out; only the structural
// tests (capacity rounding, interning) are meaningful in that build.
#define SKIP_IF_TRACING_COMPILED_OUT()         \
  if (!Tracer::CompiledIn()) {                 \
    GTEST_SKIP() << "tracing compiled out";    \
  }                                            \
  static_assert(true, "")

ShardEvent MakeEvent(uint32_t name_id, double ts_us, uint64_t arg = 0) {
  ShardEvent event;
  event.name_id = name_id;
  event.lane = 7;
  event.ts_us = ts_us;
  event.dur_us = 1.0;
  event.arg = arg;
  return event;
}

TEST(TraceShardTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceShard(1).capacity(), 2u);
  EXPECT_EQ(TraceShard(2).capacity(), 2u);
  EXPECT_EQ(TraceShard(5).capacity(), 8u);
  EXPECT_EQ(TraceShard(8).capacity(), 8u);
  EXPECT_EQ(TraceShard(1000).capacity(), 1024u);
}

TEST(TraceShardTest, RecordsAndDrainsInOrder) {
  SKIP_IF_TRACING_COMPILED_OUT();
  TraceShard shard(16);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(shard.Record(MakeEvent(3, i, 100 + i)));
  }
  std::vector<ShardEvent> out;
  EXPECT_EQ(shard.Drain(&out), 10u);
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i].name_id, 3u);
    EXPECT_EQ(out[i].lane, 7u);
    EXPECT_DOUBLE_EQ(out[i].ts_us, i);
    EXPECT_EQ(out[i].arg, 100u + i);
  }
  // Empty after a drain.
  out.clear();
  EXPECT_EQ(shard.Drain(&out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(TraceShardTest, WrapsAroundAcrossDrainCycles) {
  SKIP_IF_TRACING_COMPILED_OUT();
  TraceShard shard(4);
  std::vector<ShardEvent> out;
  // Three full fill/drain cycles push head/tail well past capacity.
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(shard.Record(MakeEvent(1, cycle * 4 + i)));
    }
    out.clear();
    EXPECT_EQ(shard.Drain(&out), 4u);
    for (int i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(out[i].ts_us, cycle * 4 + i);
    }
  }
  EXPECT_EQ(shard.dropped(), 0u);
}

TEST(TraceShardTest, DropsWhenFullAndRecoversAfterDrain) {
  SKIP_IF_TRACING_COMPILED_OUT();
  TraceShard shard(2);
  EXPECT_TRUE(shard.Record(MakeEvent(1, 0)));
  EXPECT_TRUE(shard.Record(MakeEvent(1, 1)));
  EXPECT_FALSE(shard.Record(MakeEvent(1, 2)));
  EXPECT_FALSE(shard.Record(MakeEvent(1, 3)));
  EXPECT_EQ(shard.dropped(), 2u);

  std::vector<ShardEvent> out;
  EXPECT_EQ(shard.Drain(&out), 2u);
  EXPECT_DOUBLE_EQ(out[0].ts_us, 0);
  EXPECT_DOUBLE_EQ(out[1].ts_us, 1);
  // Slots freed: recording works again; the drop counter is cumulative.
  EXPECT_TRUE(shard.Record(MakeEvent(1, 4)));
  EXPECT_EQ(shard.dropped(), 2u);
}

TEST(TraceShardTest, ConcurrentProducerAndFlusherLoseNothing) {
  SKIP_IF_TRACING_COMPILED_OUT();
  // One producer hammers the shard while the consumer drains in a loop —
  // the SPSC contract under real concurrency (the TSan CI job runs this).
  constexpr uint64_t kEvents = 50000;
  TraceShard shard(256);
  std::vector<ShardEvent> drained;
  std::atomic<bool> done{false};
  std::thread producer([&shard, &done] {
    for (uint64_t i = 0; i < kEvents; ++i) {
      shard.Record(MakeEvent(1, static_cast<double>(i)));
    }
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) {
    shard.Drain(&drained);
  }
  producer.join();
  shard.Drain(&drained);

  EXPECT_EQ(drained.size() + shard.dropped(), kEvents);
  // Delivered timestamps must be strictly increasing: SPSC order holds even
  // when drops punch holes in the sequence.
  for (size_t i = 1; i < drained.size(); ++i) {
    EXPECT_LT(drained[i - 1].ts_us, drained[i].ts_us);
  }
}

TEST(ShardedTracerTest, InternNameDeduplicates) {
  ShardedTracer sharded(nullptr, 1);
  const uint32_t a = sharded.InternName("task", "runtime", "partition");
  const uint32_t b = sharded.InternName("task", "runtime", "partition");
  const uint32_t c = sharded.InternName("task", "runtime", "bytes");
  const uint32_t d = sharded.InternName("other", "runtime", "partition");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_NE(c, d);
}

TEST(ShardedTracerTest, FlushConvertsEventsIntoSinkTracer) {
  SKIP_IF_TRACING_COMPILED_OUT();
  Tracer sink;
  ShardedTracer sharded(&sink, 2, 64);
  const uint32_t task_id = sharded.InternName("task", "runtime", "partition");
  const uint32_t mark_id = sharded.InternName("mark", "runtime");

  ShardEvent span;
  span.name_id = task_id;
  span.lane = 4;
  span.ts_us = 10.0;
  span.dur_us = 5.0;
  span.arg = 42;
  ASSERT_TRUE(sharded.shard(0).Record(span));

  ShardEvent instant;
  instant.name_id = mark_id;
  instant.lane = 9;
  instant.ts_us = 20.0;
  instant.dur_us = -1.0;  // instant marker
  ASSERT_TRUE(sharded.shard(1).Record(instant));

  EXPECT_EQ(sharded.Flush(), 2u);
  const std::vector<TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 2u);

  EXPECT_EQ(events[0].name, "task");
  EXPECT_EQ(events[0].category, "runtime");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_DOUBLE_EQ(events[0].ts_us, 10.0);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 5.0);
  EXPECT_EQ(events[0].tid, 4u);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "partition");
  EXPECT_EQ(events[0].args[0].second, "42");

  EXPECT_EQ(events[1].name, "mark");
  EXPECT_EQ(events[1].phase, 'i');
  EXPECT_EQ(events[1].tid, 9u);
  EXPECT_TRUE(events[1].args.empty());  // no arg_key interned for "mark"

  // A second flush has nothing left.
  EXPECT_EQ(sharded.Flush(), 0u);
}

TEST(ShardedTracerTest, FlushSkipsUnknownNameIdsAndWorksWithNullSink) {
  SKIP_IF_TRACING_COMPILED_OUT();
  Tracer sink;
  {
    ShardedTracer sharded(&sink, 1);
    ShardEvent bogus;
    bogus.name_id = 999;  // never interned
    ASSERT_TRUE(sharded.shard(0).Record(bogus));
    sharded.Flush();
    EXPECT_EQ(sink.num_events(), 0u);
  }
  {
    ShardedTracer sharded(nullptr, 1);
    const uint32_t id = sharded.InternName("task");
    ASSERT_TRUE(sharded.shard(0).Record(MakeEvent(id, 1.0)));
    EXPECT_EQ(sharded.Flush(), 1u);  // counted even though discarded
  }
}

TEST(ShardedTracerTest, TotalDroppedSumsShards) {
  SKIP_IF_TRACING_COMPILED_OUT();
  ShardedTracer sharded(nullptr, 2, 2);
  const uint32_t id = sharded.InternName("task");
  for (int i = 0; i < 5; ++i) {
    sharded.shard(0).Record(MakeEvent(id, i));
  }
  for (int i = 0; i < 3; ++i) {
    sharded.shard(1).Record(MakeEvent(id, i));
  }
  EXPECT_EQ(sharded.total_dropped(), 3u + 1u);
}

// The acceptance microbenchmark: under 8 producer threads, the sharded
// hot path must record at least 10x more events per second than the mutex
// Tracer path the executor used before this change (per-event string
// assembly + args vector + global lock). Sanitizers inflate both sides
// unevenly, so the bar drops there; the unsanitized CI build holds 10x.
TEST(ShardedTracerTest, MicrobenchShardedBeats10xOverMutexTracer) {
  if (!Tracer::CompiledIn()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  constexpr int kThreads = 8;
  constexpr uint64_t kEventsPerThread = 20000;
  using Clock = std::chrono::steady_clock;

  Tracer sink;
  ShardedTracer sharded(&sink, kThreads, kEventsPerThread);
  const uint32_t task_id = sharded.InternName("rt_task", "runtime", "p");

  const auto sharded_start = Clock::now();
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&sharded, task_id, t] {
        TraceShard& shard = sharded.shard(t);
        ShardEvent event;
        event.name_id = task_id;
        event.lane = static_cast<uint32_t>(t);
        for (uint64_t i = 0; i < kEventsPerThread; ++i) {
          event.ts_us = static_cast<double>(i);
          event.dur_us = 1.0;
          event.arg = i;
          shard.Record(event);
        }
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  const double sharded_s =
      std::chrono::duration<double>(Clock::now() - sharded_start).count();
  EXPECT_EQ(sharded.total_dropped(), 0u);

  Tracer mutex_tracer;
  const auto mutex_start = Clock::now();
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&mutex_tracer, t] {
        for (uint64_t i = 0; i < kEventsPerThread; ++i) {
          // What the executor's hot path used to do per task: build the
          // span name and args strings, then take the global lock.
          mutex_tracer.RecordComplete(
              TraceClock::kWall,
              "rt_transfer[" + std::to_string(t) + "]:p" + std::to_string(i),
              "runtime", static_cast<double>(i), 1.0,
              static_cast<uint32_t>(t),
              {{"machine", std::to_string(t)}});
        }
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  const double mutex_s =
      std::chrono::duration<double>(Clock::now() - mutex_start).count();

  const double ratio = mutex_s / sharded_s;
  const double required = kSanitized ? 3.0 : 10.0;
  EXPECT_GE(ratio, required)
      << "sharded path recorded " << kThreads * kEventsPerThread
      << " events in " << sharded_s << "s vs mutex tracer " << mutex_s << "s";

  // And the events are real: flushing hands them to the sink.
  EXPECT_EQ(sharded.Flush(), kThreads * kEventsPerThread);
  EXPECT_EQ(sink.num_events(), kThreads * kEventsPerThread);
}

}  // namespace
}  // namespace obs
}  // namespace surfer
