#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include <gtest/gtest.h>

#include "apps/network_ranking.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "obs/run_report.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "propagation/runner.h"
#include "runtime/executor.h"
#include "runtime/report.h"
#include "runtime/timeline.h"
#include "tests/test_fixtures.h"

namespace surfer {
namespace {

using testing_fixtures::EngineFixture;
using testing_fixtures::MakeEngineFixture;

const EngineFixture& Fixture() {
  static const EngineFixture* fixture =
      new EngineFixture(MakeEngineFixture());
  return *fixture;
}

/// Runs NR through propagation with the observability hooks attached.
RunMetrics RunObserved(OptimizationLevel level, int iterations,
                       obs::Tracer* tracer, obs::MetricsRegistry* metrics,
                       PropagationCounters* counters = nullptr) {
  const EngineFixture& f = Fixture();
  BenchmarkSetup setup = f.Setup(level);
  setup.sim_options.tracer = tracer;
  setup.sim_options.metrics = metrics;
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationConfig config = PropagationConfig::ForLevel(level);
  config.iterations = iterations;
  config.tracer = tracer;
  config.metrics = metrics;
  PropagationRunner<NetworkRankingApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  auto metrics_result = runner.Run(setup.sim_options);
  EXPECT_TRUE(metrics_result.ok()) << metrics_result.status().ToString();
  if (counters != nullptr) {
    *counters = runner.counters();
  }
  return std::move(metrics_result).value();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// ------------------------------------------------- report schema & files

TEST(RunReportTest, BuildValidateWriteParseRoundTrip) {
  obs::Tracer tracer;
  obs::MetricsRegistry registry;
  const RunMetrics run = RunObserved(OptimizationLevel::kO4, /*iterations=*/2,
                                     &tracer, &registry);

  obs::RunReportOptions options;
  options.name = "run_report_test";
  options.notes = "NR at O4, 2 iterations";
  const obs::JsonValue report =
      obs::BuildRunReport(options, &run, &registry, &tracer);
  ASSERT_TRUE(obs::ValidateRunReport(report).ok())
      << obs::ValidateRunReport(report).ToString();

  const auto dir = std::filesystem::temp_directory_path() /
                   "surfer_run_report_test" / "nested";
  std::filesystem::remove_all(dir.parent_path());
  const std::string report_path = (dir / "run.report.json").string();
  ASSERT_TRUE(obs::WriteRunReport(report_path, report).ok());

  auto parsed = obs::ParseJson(ReadFile(report_path));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(obs::ValidateRunReport(*parsed).ok())
      << obs::ValidateRunReport(*parsed).ToString();

  // Spot-check the documented schema: identity, run totals, stage list, and
  // metrics/trace sections all survive the disk round trip.
  EXPECT_EQ(parsed->Find("schema_version")->as_number(),
            obs::kRunReportSchemaVersion);
  EXPECT_EQ(parsed->Find("name")->as_string(), "run_report_test");
  const obs::JsonValue* run_section = parsed->Find("run");
  ASSERT_NE(run_section, nullptr);
  EXPECT_GT(run_section->Find("response_time_s")->as_number(), 0.0);
  // 2 iterations -> transfer + combine stages each.
  EXPECT_EQ(run_section->Find("stages")->as_array().size(), 4u);
  const obs::JsonValue* metrics_section = parsed->Find("metrics");
  ASSERT_NE(metrics_section, nullptr);
  bool found_emitted = false;
  for (const obs::JsonValue& counter :
       metrics_section->Find("counters")->as_array()) {
    if (counter.Find("name")->as_string() == "propagation_messages_emitted") {
      found_emitted = true;
      EXPECT_GT(counter.Find("value")->as_number(), 0.0);
    }
  }
  EXPECT_TRUE(found_emitted);
  const obs::JsonValue* trace_section = parsed->Find("trace");
  ASSERT_NE(trace_section, nullptr);
  if (obs::Tracer::CompiledIn()) {
    EXPECT_GT(trace_section->Find("num_events")->as_number(), 0.0);
    EXPECT_FALSE(trace_section->Find("spans")->as_array().empty());
  }
  std::filesystem::remove_all(dir.parent_path());
}

TEST(RunReportTest, ValidateRejectsBrokenReports) {
  obs::JsonValue report = obs::JsonValue::MakeObject();
  EXPECT_FALSE(obs::ValidateRunReport(report).ok());  // no version/name
  report.Set("schema_version", obs::kRunReportSchemaVersion);
  report.Set("name", "x");
  EXPECT_TRUE(obs::ValidateRunReport(report).ok());  // minimal report
  obs::JsonValue bad_run = obs::JsonValue::MakeObject();
  bad_run.Set("response_time_s", "not a number");
  report.Set("run", std::move(bad_run));
  EXPECT_FALSE(obs::ValidateRunReport(report).ok());

  obs::JsonValue wrong_version = obs::JsonValue::MakeObject();
  wrong_version.Set("schema_version", obs::kRunReportSchemaVersion + 1);
  wrong_version.Set("name", "x");
  EXPECT_FALSE(obs::ValidateRunReport(wrong_version).ok());
}

TEST(RunReportTest, ChromeTraceCarriesBothClockDomains) {
  if (!obs::Tracer::CompiledIn()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  obs::Tracer tracer;
  obs::MetricsRegistry registry;
  (void)RunObserved(OptimizationLevel::kO4, /*iterations=*/1, &tracer,
                    &registry);
  const std::string path = (std::filesystem::temp_directory_path() /
                            "surfer_run_report_test.trace.json")
                               .string();
  ASSERT_TRUE(tracer.WriteChromeTrace(path).ok());
  auto parsed = obs::ParseJson(ReadFile(path));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_wall = false;
  bool saw_simulated = false;
  for (const obs::JsonValue& event : events->as_array()) {
    if (event.Find("ph")->as_string() == "M") {
      continue;
    }
    const double pid = event.Find("pid")->as_number();
    saw_wall = saw_wall || pid == 1.0;
    saw_simulated = saw_simulated || pid == 2.0;
  }
  // The propagation layer records wall-clock compute spans; the simulation
  // records stage/task spans — one run populates both domains.
  EXPECT_TRUE(saw_wall);
  EXPECT_TRUE(saw_simulated);
  std::filesystem::remove(path);
}

TEST(RunReportTest, RuntimeBlockValidatesAndRoundTrips) {
  // A real runtime run's stats become the report's optional `runtime` block.
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationConfig config = PropagationConfig::ForLevel(OptimizationLevel::kO4);
  config.iterations = 2;
  runtime::RuntimeExecutor<NetworkRankingApp> executor(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(executor.Run().ok());
  const obs::JsonValue runtime_block =
      runtime::RuntimeStatsToJson(executor.stats());

  obs::RunReportOptions options;
  options.name = "run_report_test_runtime";
  const obs::JsonValue report = obs::BuildRunReport(
      options, nullptr, nullptr, nullptr, &runtime_block);
  ASSERT_TRUE(obs::ValidateRunReport(report).ok())
      << obs::ValidateRunReport(report).ToString();

  auto parsed = obs::ParseJson(report.Write());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue* rt = parsed->Find("runtime");
  ASSERT_NE(rt, nullptr);
  EXPECT_EQ(rt->Find("num_machines")->as_number(),
            f.topology.num_machines());
  EXPECT_GT(rt->Find("tasks_executed")->as_number(), 0.0);
  EXPECT_GT(rt->Find("network_bytes")->as_number(), 0.0);
  EXPECT_GT(rt->Find("barrier_generations")->as_number(), 0.0);
  EXPECT_FALSE(rt->Find("channels")->as_array().empty());
  for (const obs::JsonValue& channel : rt->Find("channels")->as_array()) {
    EXPECT_GE(channel.Find("capacity")->as_number(), 1.0);
  }
}

TEST(RunReportTest, TimelineBlockValidatesAndRoundTrips) {
  // Schema v2: a profiled executor run's timeline becomes the report's
  // optional `timeline` block and survives a serialize/parse round trip.
  const EngineFixture& f = Fixture();
  const BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationConfig config =
      PropagationConfig::ForLevel(OptimizationLevel::kO4);
  config.iterations = 2;
  runtime::RuntimeExecutor<NetworkRankingApp> executor(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(executor.Run().ok());
  const obs::JsonValue timeline_block =
      runtime::TimelineToJson(executor.stats().timeline);

  obs::RunReportOptions options;
  options.name = "run_report_test_timeline";
  const obs::JsonValue report =
      obs::BuildRunReport(options, nullptr, nullptr, nullptr,
                          /*runtime_block=*/nullptr, &timeline_block);
  ASSERT_TRUE(obs::ValidateRunReport(report).ok())
      << obs::ValidateRunReport(report).ToString();

  auto parsed = obs::ParseJson(report.Write());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(obs::ValidateRunReport(*parsed).ok())
      << obs::ValidateRunReport(*parsed).ToString();
  const obs::JsonValue* timeline = parsed->Find("timeline");
  ASSERT_NE(timeline, nullptr);
  ASSERT_EQ(timeline->Find("steps")->as_array().size(), 4u);
  for (const obs::JsonValue& step : timeline->Find("steps")->as_array()) {
    const std::string stage = step.Find("stage")->as_string();
    EXPECT_TRUE(stage == "transfer" || stage == "combine") << stage;
    ASSERT_NE(step.Find("straggler"), nullptr);
    EXPECT_GE(step.Find("straggler")->Find("skew")->as_number(), 0.0);
  }
  EXPECT_GT(timeline->Find("critical_path")->Find("total_busy_s")
                ->as_number(),
            0.0);
}

TEST(RunReportTest, ValidateAcceptsMinSupportedVersion) {
  // A v1 report (pre-timeline) must stay loadable.
  obs::JsonValue report = obs::JsonValue::MakeObject();
  report.Set("schema_version", obs::kMinSupportedRunReportSchemaVersion);
  report.Set("name", "legacy");
  EXPECT_TRUE(obs::ValidateRunReport(report).ok());
}

TEST(RunReportTest, ValidateAcceptsEveryVersionSinceMinSupported) {
  // v1 (pre-timeline) and v2 (pre-telemetry/provenance) reports both stay
  // loadable under the v3 validator: the new blocks are optional.
  for (int version = obs::kMinSupportedRunReportSchemaVersion;
       version <= obs::kRunReportSchemaVersion; ++version) {
    obs::JsonValue report = obs::JsonValue::MakeObject();
    report.Set("schema_version", version);
    report.Set("name", "versioned");
    EXPECT_TRUE(obs::ValidateRunReport(report).ok()) << "v" << version;
  }
}

TEST(RunReportTest, ProvenanceStampedAndValidated) {
  // Schema v3: every built report carries a provenance header answering
  // "what produced this file" — timestamp, host, build flavor.
  obs::RunReportOptions options;
  options.name = "run_report_test_provenance";
  const obs::JsonValue report =
      obs::BuildRunReport(options, nullptr, nullptr, nullptr);
  ASSERT_TRUE(obs::ValidateRunReport(report).ok())
      << obs::ValidateRunReport(report).ToString();
  const obs::JsonValue* provenance = report.Find("provenance");
  ASSERT_NE(provenance, nullptr);
  const std::string timestamp =
      provenance->Find("timestamp")->as_string();
  // ISO-8601 UTC: "2026-08-08T12:34:56Z".
  ASSERT_EQ(timestamp.size(), 20u) << timestamp;
  EXPECT_EQ(timestamp[4], '-');
  EXPECT_EQ(timestamp[10], 'T');
  EXPECT_EQ(timestamp.back(), 'Z');
  EXPECT_FALSE(provenance->Find("hostname")->as_string().empty());
  EXPECT_GE(provenance->Find("host_cores")->as_number(), 1.0);
  EXPECT_FALSE(provenance->Find("build_type") == nullptr);
  EXPECT_FALSE(provenance->Find("sanitizer") == nullptr);

  // A malformed provenance block (wrong type) must be rejected.
  obs::JsonValue bad = obs::JsonValue::MakeObject();
  bad.Set("schema_version", obs::kRunReportSchemaVersion);
  bad.Set("name", "x");
  obs::JsonValue bad_provenance = obs::JsonValue::MakeObject();
  bad_provenance.Set("host_cores", "four");
  bad.Set("provenance", std::move(bad_provenance));
  EXPECT_FALSE(obs::ValidateRunReport(bad).ok());
}

TEST(RunReportTest, TelemetryBlockValidatesAndRoundTrips) {
  // Schema v3: a flight recorder's ToJson becomes the report's optional
  // `telemetry` block and survives a serialize/parse round trip.
  obs::TelemetryOptions telemetry_options;
  telemetry_options.enabled = true;
  obs::TelemetryRecorder recorder(telemetry_options);
  double value = 0.0;
  recorder.RegisterGauge("test_gauge", "items", [&value] { return value; },
                         /*ceiling=*/100.0);
  recorder.RegisterGauge("flat_zero", "items", [] { return 0.0; });
  for (int i = 0; i < 5; ++i) {
    value = static_cast<double>(i * 10);
    recorder.SampleNow();
  }
  const obs::JsonValue telemetry_block = recorder.ToJson();

  obs::RunReportOptions options;
  options.name = "run_report_test_telemetry";
  const obs::JsonValue report = obs::BuildRunReport(
      options, nullptr, nullptr, nullptr, /*runtime_block=*/nullptr,
      /*timeline_block=*/nullptr, &telemetry_block);
  ASSERT_TRUE(obs::ValidateRunReport(report).ok())
      << obs::ValidateRunReport(report).ToString();

  auto parsed = obs::ParseJson(report.Write());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(obs::ValidateRunReport(*parsed).ok())
      << obs::ValidateRunReport(*parsed).ToString();
  const obs::JsonValue* telemetry = parsed->Find("telemetry");
  ASSERT_NE(telemetry, nullptr);
  EXPECT_GT(telemetry->Find("period_seconds")->as_number(), 0.0);
  EXPECT_EQ(telemetry->Find("samples_taken")->as_number(), 5.0);
  const obs::JsonValue* series = telemetry->Find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->as_array().size(), 2u);
  const obs::JsonValue& gauge = series->as_array()[0];
  EXPECT_EQ(gauge.Find("name")->as_string(), "test_gauge");
  EXPECT_EQ(gauge.Find("max")->as_number(), 40.0);
  ASSERT_NE(gauge.Find("samples"), nullptr);
  EXPECT_EQ(gauge.Find("samples")->as_array().size(), 5u);
  // The all-zero series ships summary-only: no samples array.
  const obs::JsonValue& flat = series->as_array()[1];
  EXPECT_EQ(flat.Find("name")->as_string(), "flat_zero");
  EXPECT_EQ(flat.Find("samples"), nullptr);
}

TEST(RunReportTest, ValidateRejectsMalformedTelemetryBlock) {
  obs::JsonValue base = obs::JsonValue::MakeObject();
  base.Set("schema_version", obs::kRunReportSchemaVersion);
  base.Set("name", "x");

  {
    obs::JsonValue report = base;  // telemetry must be an object
    report.Set("telemetry", "nope");
    EXPECT_FALSE(obs::ValidateRunReport(report).ok());
  }
  {
    obs::JsonValue report = base;  // series entries need summary numbers
    auto parsed = obs::ParseJson(
        R"({"period_seconds": 0.001, "samples_taken": 1,
            "samples_dropped": 0,
            "series": [{"name": "g", "count": 1}]})");
    ASSERT_TRUE(parsed.ok());
    report.Set("telemetry", std::move(*parsed));
    EXPECT_FALSE(obs::ValidateRunReport(report).ok());
  }
  {
    obs::JsonValue report = base;  // samples must be [t_us, value] pairs
    auto parsed = obs::ParseJson(
        R"({"period_seconds": 0.001, "samples_taken": 1,
            "samples_dropped": 0,
            "series": [{"name": "g", "unit": "items", "count": 1,
                        "samples_dropped": 0, "min": 0, "mean": 0,
                        "max": 0, "p99": 0, "samples": [[1.0]]}]})");
    ASSERT_TRUE(parsed.ok());
    report.Set("telemetry", std::move(*parsed));
    EXPECT_FALSE(obs::ValidateRunReport(report).ok());
  }
}

TEST(RunReportTest, ValidateRejectsMalformedTimelineBlock) {
  obs::JsonValue base = obs::JsonValue::MakeObject();
  base.Set("schema_version", obs::kRunReportSchemaVersion);
  base.Set("name", "x");

  {
    obs::JsonValue report = base;  // timeline must be an object
    report.Set("timeline", "nope");
    EXPECT_FALSE(obs::ValidateRunReport(report).ok());
  }
  {
    obs::JsonValue report = base;  // steps[].stage must be a known stage
    auto parsed = obs::ParseJson(
        R"({"steps": [{"iteration": 0, "stage": "warp", "machines": [],
             "straggler": {"max_busy_s": 0, "mean_busy_s": 0, "skew": 0}}],
            "critical_path": {"total_busy_s": 0, "steps": []}})");
    ASSERT_TRUE(parsed.ok());
    report.Set("timeline", std::move(*parsed));
    EXPECT_FALSE(obs::ValidateRunReport(report).ok());
  }
  {
    obs::JsonValue report = base;  // machine rows need the phase fields
    auto parsed = obs::ParseJson(
        R"({"steps": [{"iteration": 0, "stage": "transfer",
             "machines": [{"machine": 0, "compute_s": 0.5}],
             "straggler": {"max_busy_s": 0, "mean_busy_s": 0, "skew": 0}}],
            "critical_path": {"total_busy_s": 0, "steps": []}})");
    ASSERT_TRUE(parsed.ok());
    report.Set("timeline", std::move(*parsed));
    EXPECT_FALSE(obs::ValidateRunReport(report).ok());
  }
  {
    obs::JsonValue report = base;  // critical_path needs total_busy_s
    auto parsed = obs::ParseJson(
        R"({"steps": [], "critical_path": {"steps": []}})");
    ASSERT_TRUE(parsed.ok());
    report.Set("timeline", std::move(*parsed));
    EXPECT_FALSE(obs::ValidateRunReport(report).ok());
  }
}

TEST(RunReportTest, ValidateRejectsMalformedRuntimeBlock) {
  obs::JsonValue report = obs::JsonValue::MakeObject();
  report.Set("schema_version", obs::kRunReportSchemaVersion);
  report.Set("name", "x");
  obs::JsonValue bad_runtime = obs::JsonValue::MakeObject();
  bad_runtime.Set("num_workers", 4);  // missing every other required field
  report.Set("runtime", std::move(bad_runtime));
  EXPECT_FALSE(obs::ValidateRunReport(report).ok());
}

// -------------------------------------- counters vs. optimization levels

TEST(RunReportTest, CountersConsistentWithoutLocalOptimizations) {
  obs::MetricsRegistry registry;
  PropagationCounters counters;
  (void)RunObserved(OptimizationLevel::kO1, /*iterations=*/2, nullptr,
                    &registry, &counters);
  // O1: no local propagation, no local combination — every emitted message
  // is materialized.
  EXPECT_GT(counters.messages_emitted, 0u);
  EXPECT_EQ(counters.messages_locally_propagated, 0u);
  EXPECT_EQ(counters.messages_locally_combined, 0u);
  EXPECT_EQ(counters.messages_materialized, counters.messages_emitted);
  EXPECT_LE(counters.messages_network, counters.messages_materialized);
  // The registry saw the same numbers.
  EXPECT_EQ(registry.CounterRef("propagation_messages_emitted").value(),
            counters.messages_emitted);
  EXPECT_EQ(registry.CounterRef("propagation_messages_network").value(),
            counters.messages_network);
}

TEST(RunReportTest, CountersConsistentWithLocalOptimizations) {
  obs::MetricsRegistry registry;
  PropagationCounters counters;
  (void)RunObserved(OptimizationLevel::kO4, /*iterations=*/2, nullptr,
                    &registry, &counters);
  // O4: local propagation keeps inner-vertex messages in memory and local
  // combination merges same-target messages; both must fire on the social
  // graph, and the conservation invariant must hold exactly.
  EXPECT_GT(counters.messages_emitted, 0u);
  EXPECT_GT(counters.messages_locally_propagated, 0u);
  EXPECT_GT(counters.messages_locally_combined, 0u);
  EXPECT_EQ(counters.messages_emitted,
            counters.messages_locally_propagated +
                counters.messages_locally_combined +
                counters.messages_materialized);
  EXPECT_LT(counters.messages_materialized, counters.messages_emitted);
  EXPECT_LE(counters.messages_network, counters.messages_materialized);
  EXPECT_GT(counters.messages_network, 0u);
}

TEST(RunReportTest, SimulatedStageCountersMatchRunMetrics) {
  obs::Tracer tracer;
  obs::MetricsRegistry registry;
  const RunMetrics run = RunObserved(OptimizationLevel::kO4, /*iterations=*/2,
                                     &tracer, &registry);
  EXPECT_EQ(registry.CounterRef("sim_stages_total").value(),
            run.stages.size());
  size_t total_tasks = 0;
  for (const StageMetrics& stage : run.stages) {
    total_tasks += stage.num_tasks;
  }
  EXPECT_EQ(registry.CounterRef("sim_tasks_total").value(), total_tasks);
  EXPECT_DOUBLE_EQ(registry.GaugeRef("sim_clock_seconds").value(),
                   run.response_time_s);
  EXPECT_EQ(registry.HistogramRef("sim_task_seconds").Snapshot().count(),
            total_tasks);
}

}  // namespace
}  // namespace surfer
