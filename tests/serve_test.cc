// The GraphService query-serving plane: k-hop answers bit-identical to a
// fresh BFS over the original graph, cached ranks bit-identical to a fresh
// batch run, cache hits returning exactly the computed bytes, deterministic
// admission-window shedding with kResourceExhausted (never blocking),
// deadline shedding, partition-local paths, and a concurrent-client stress
// mix run under the TSan/ASan CI matrix.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/network_ranking.h"
#include "core/engine.h"
#include "graph/algorithms.h"
#include "obs/metrics_registry.h"
#include "serve/frontier.h"
#include "serve/graph_service.h"
#include "serve/lru_cache.h"
#include "tests/test_fixtures.h"

namespace surfer {
namespace {

using serve::GraphService;
using serve::ServeOptions;
using testing_fixtures::EngineFixture;
using testing_fixtures::MakeEngineFixture;

const EngineFixture& Fixture() {
  static const EngineFixture* fixture = new EngineFixture(MakeEngineFixture());
  return *fixture;
}

Engine Session() {
  const EngineFixture& f = Fixture();
  static const BenchmarkSetup* setup =
      new BenchmarkSetup(f.Setup(OptimizationLevel::kO4));
  EngineOptions options;
  options.propagation.iterations = 3;
  auto session = Engine::Open(*setup, options);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return std::move(session).value();
}

/// Reference k-hop set over *original* IDs: plain BFS truncated at depth k.
std::vector<VertexId> ReferenceKHop(const Graph& graph, VertexId origin,
                                    uint32_t k) {
  const std::vector<uint32_t> distances = BfsDistances(graph, origin);
  std::vector<VertexId> result;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (distances[v] <= k) {
      result.push_back(v);
    }
  }
  return result;  // already sorted: v ascends
}

// ------------------------------------------------------------ LRU cache

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  serve::LruCache<int, int> cache(2);
  cache.Put(1, std::make_shared<const int>(10));
  cache.Put(2, std::make_shared<const int>(20));
  ASSERT_NE(cache.Get(1), nullptr);  // promotes 1; 2 is now LRU
  cache.Put(3, std::make_shared<const int>(30));
  EXPECT_EQ(cache.Get(2), nullptr);
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(1), 10);
  ASSERT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, PutRefreshesExistingKey) {
  serve::LruCache<int, int> cache(2);
  cache.Put(1, std::make_shared<const int>(10));
  cache.Put(2, std::make_shared<const int>(20));
  cache.Put(1, std::make_shared<const int>(11));  // refresh, 2 becomes LRU
  cache.Put(3, std::make_shared<const int>(30));
  EXPECT_EQ(cache.Get(2), nullptr);
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(1), 11);
}

// ---------------------------------------------------- frontier expansion

TEST(FrontierTest, PushAndPullDirectionsAgreeOnEveryK) {
  const EngineFixture& f = Fixture();
  const Graph& graph = f.graph;
  const Graph reversed = graph.Reversed();
  // A hub: the highest out-degree vertex, so the frontier actually grows for
  // several hops (low-degree sources can die out after one step).
  VertexId hub = 0;
  for (VertexId v = 1; v < graph.num_vertices(); ++v) {
    if (graph.OutDegree(v) > graph.OutDegree(hub)) {
      hub = v;
    }
  }
  for (uint32_t k : {1u, 2u, 3u}) {
    serve::KHopStats stats;
    std::vector<VertexId> frontier =
        serve::KHopFrontier(graph, reversed, hub, k, &stats);
    std::sort(frontier.begin(), frontier.end());
    EXPECT_EQ(frontier, ReferenceKHop(graph, hub, k)) << "k=" << k;
    EXPECT_EQ(stats.push_steps + stats.pull_steps, k) << "k=" << k;
  }
  // A social graph's 3-hop frontier from a hub is dense enough that the pull
  // direction must have engaged at least once — otherwise the direction
  // optimization is dead code.
  serve::KHopStats stats;
  serve::KHopFrontier(graph, reversed, hub, 3, &stats);
  EXPECT_GT(stats.pull_steps, 0u);
}

// ------------------------------------------------- correctness vs batch

TEST(GraphServiceTest, KHopBitIdenticalToFreshBfs) {
  Engine session = Session();
  auto service = session.Serve(ServeOptions{});
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const Graph& graph = Fixture().graph;
  for (VertexId origin : {VertexId{0}, VertexId{17}, VertexId{4095}}) {
    for (uint32_t k : {1u, 2u}) {
      auto response = (*service)->KHop(origin, k).get();
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      EXPECT_EQ(response->vertices, ReferenceKHop(graph, origin, k))
          << "origin=" << origin << " k=" << k;
      EXPECT_EQ(response->k, k);
    }
  }
}

TEST(GraphServiceTest, RankBitIdenticalToFreshBatchRun) {
  Engine session = Session();
  ServeOptions options;
  options.rank_iterations = 3;
  auto service = session.Serve(options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  // Fresh batch run through the same session at the same iteration count.
  EngineOptions batch_options = session.options();
  batch_options.propagation.iterations = 3;
  auto batch_session =
      Engine::Open(session.graph(), session.placement(), session.topology(),
                   batch_options);
  ASSERT_TRUE(batch_session.ok());
  auto batch = batch_session->Run(
      NetworkRankingApp(Fixture().graph.num_vertices()));
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  for (VertexId v : {VertexId{0}, VertexId{123}, VertexId{4000}}) {
    auto response = (*service)->Rank(v).get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    const double fresh = batch->StateOfOriginal(v);
    EXPECT_EQ(std::memcmp(&response->rank, &fresh, sizeof(double)), 0)
        << "rank of vertex " << v << " not bit-identical";
  }
}

TEST(GraphServiceTest, CachedResultsBitIdenticalToFreshComputation) {
  Engine session = Session();
  auto service = session.Serve(ServeOptions{});
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  auto first = (*service)->KHop(42, 2).get();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->from_cache);

  auto cached = (*service)->KHop(42, 2).get();
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  EXPECT_TRUE(cached->from_cache);

  serve::QueryOptions bypass;
  bypass.bypass_cache = true;
  auto fresh = (*service)->KHop(42, 2, bypass).get();
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_FALSE(fresh->from_cache);

  ASSERT_EQ(cached->vertices.size(), fresh->vertices.size());
  EXPECT_EQ(std::memcmp(cached->vertices.data(), fresh->vertices.data(),
                        fresh->vertices.size() * sizeof(VertexId)),
            0)
      << "cached k-hop differs from fresh computation";

  const serve::ServiceStats stats = (*service)->stats();
  EXPECT_GE(stats.cache_hits, 1u);
  EXPECT_GE(stats.cache_misses, 1u);
}

TEST(GraphServiceTest, PartitionPathMatchesLocalBfs) {
  Engine session = Session();
  auto service = session.Serve(ServeOptions{});
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const PartitionedGraph& pg = *session.graph();

  // Pick two encoded vertices of partition 0 connected by a local edge so a
  // path certainly exists.
  const PartitionMeta& meta = pg.partition(0);
  VertexId src_enc = meta.begin;
  VertexId dst_enc = kInvalidVertex;
  for (VertexId v = meta.begin; v < meta.end && dst_enc == kInvalidVertex;
       ++v) {
    for (VertexId u : pg.encoded_graph().OutNeighbors(v)) {
      if (u >= meta.begin && u < meta.end && u != v) {
        src_enc = v;
        dst_enc = u;
        break;
      }
    }
  }
  ASSERT_NE(dst_enc, kInvalidVertex) << "partition 0 has no inner edge";
  const VertexId src = pg.encoding().ToOriginal(src_enc);
  const VertexId dst = pg.encoding().ToOriginal(dst_enc);

  auto response = (*service)->PartitionPath(src, dst).get();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->distance, 1u);
  EXPECT_EQ(response->partition, 0u);

  // Self-path is 0 hops.
  auto self = (*service)->PartitionPath(src, src).get();
  ASSERT_TRUE(self.ok()) << self.status().ToString();
  EXPECT_EQ(self->distance, 0u);
}

TEST(GraphServiceTest, PartitionPathRejectsCrossPartitionEndpoints) {
  Engine session = Session();
  auto service = session.Serve(ServeOptions{});
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const PartitionedGraph& pg = *session.graph();
  const VertexId a = pg.encoding().ToOriginal(pg.partition(0).begin);
  const VertexId b = pg.encoding().ToOriginal(pg.partition(1).begin);
  auto response = (*service)->PartitionPath(a, b).get();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------ validation paths

TEST(GraphServiceTest, RejectsOutOfRangeAndOversizedQueriesImmediately) {
  Engine session = Session();
  auto service = session.Serve(ServeOptions{});
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const VertexId n = Fixture().graph.num_vertices();

  auto out_of_range = (*service)->Rank(n).get();
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kInvalidArgument);

  auto oversized_k = (*service)->KHop(0, /*k=*/999).get();
  ASSERT_FALSE(oversized_k.ok());
  EXPECT_EQ(oversized_k.status().code(), StatusCode::kInvalidArgument);

  EXPECT_GE((*service)->stats().rejected, 2u);
}

TEST(GraphServiceTest, ServeOptionsValidateRejectsNonsense) {
  Engine session = Session();
  ServeOptions zero_workers;
  zero_workers.num_workers = 0;
  EXPECT_FALSE(session.Serve(zero_workers).ok());

  ServeOptions zero_window;
  zero_window.admission_window_bytes = 0;
  EXPECT_FALSE(session.Serve(zero_window).ok());

  ServeOptions bad_damping;
  bad_damping.rank_damping = 1.5;
  EXPECT_FALSE(session.Serve(bad_damping).ok());
}

// ------------------------------------------------------- load shedding

TEST(GraphServiceTest, ShedsWithResourceExhaustedWhenAdmissionWindowFull) {
  Engine session = Session();
  ServeOptions options;
  options.start_workers = false;  // nothing drains: fill deterministically
  // One max-k k-hop weighs 16 KiB (EstimateCostBytes cap); a 20 KiB window
  // admits the first (it fits) and the second only via... it does not fit:
  // 16 KiB + 16 KiB > 20 KiB, so the second must shed.
  options.admission_window_bytes = 20 << 10;
  auto service = session.Serve(options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  auto first = (*service)->KHop(0, 8);
  auto second = (*service)->KHop(1, 8);

  // The shed future resolves IMMEDIATELY (workers are not even running), so
  // a bounded get() proves submission never blocks.
  ASSERT_EQ(second.wait_for(std::chrono::seconds(5)),
            std::future_status::ready)
      << "full admission window blocked the caller";
  auto shed = second.get();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ((*service)->stats().shed_admission, 1u);

  // The admitted query completes once workers start.
  (*service)->Start();
  auto admitted = first.get();
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  (*service)->Stop();
}

TEST(GraphServiceTest, ShedsExpiredQueriesAtDequeueWithResourceExhausted) {
  Engine session = Session();
  ServeOptions options;
  options.start_workers = false;
  auto service = session.Serve(options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  serve::QueryOptions tight;
  tight.deadline = std::chrono::milliseconds(1);
  auto future = (*service)->KHop(0, 2, tight);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  (*service)->Start();  // worker dequeues a long-expired query
  auto response = future.get();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ((*service)->stats().shed_deadline, 1u);
}

TEST(GraphServiceTest, StopResolvesQueuedQueriesWithUnavailable) {
  Engine session = Session();
  ServeOptions options;
  options.start_workers = false;
  auto service = session.Serve(options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  auto future = (*service)->Rank(0);
  (*service)->Stop();  // never started: the queued query must not hang
  auto response = future.get();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
}

// ------------------------------------------------ concurrency + metrics

TEST(GraphServiceTest, ConcurrentClientsUnderSmallAdmissionWindow) {
  Engine session = Session();
  ServeOptions options;
  options.num_workers = 3;
  // Small window so admission shedding genuinely happens under load.
  options.admission_window_bytes = 8 << 10;
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  auto service = session.Serve(options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 40;
  const VertexId n = Fixture().graph.num_vertices();
  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> wrong{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const VertexId v = static_cast<VertexId>((c * 9973 + q * 131) % n);
        if (q % 3 == 0) {
          auto response = (*service)->Rank(v).get();
          if (response.ok()) {
            answered.fetch_add(1);
          } else if (response.status().code() ==
                     StatusCode::kResourceExhausted) {
            shed.fetch_add(1);
          } else {
            wrong.fetch_add(1);
          }
        } else {
          auto response = (*service)->KHop(v, 1 + (q % 2)).get();
          if (response.ok()) {
            answered.fetch_add(1);
          } else if (response.status().code() ==
                     StatusCode::kResourceExhausted) {
            shed.fetch_add(1);
          } else {
            wrong.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  (*service)->Stop();

  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_GT(answered.load(), 0u);
  const serve::ServiceStats stats = (*service)->stats();
  EXPECT_EQ(stats.completed, answered.load());
  EXPECT_EQ(answered.load() + shed.load(),
            static_cast<uint64_t>(kClients * kQueriesPerClient));
  // Every completed query priced the latency histogram (shed queries never
  // reach execution, so they record no latency).
  EXPECT_EQ(stats.latency_us.count(), stats.completed);

  // serve_* metrics exported through the registry.
  uint64_t exported_queries = 0;
  for (const obs::MetricSample& sample : metrics.Snapshot()) {
    if (sample.name == "serve_queries_total") {
      exported_queries += static_cast<uint64_t>(sample.value);
    }
  }
  EXPECT_EQ(exported_queries,
            static_cast<uint64_t>(kClients * kQueriesPerClient));
}

}  // namespace
}  // namespace surfer
