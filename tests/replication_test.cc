#include <set>

#include <gtest/gtest.h>

#include "cluster/topology.h"
#include "storage/replication.h"

namespace surfer {
namespace {

TEST(ReplicationTest, ThreeDistinctReplicasOnBigCluster) {
  const Topology topo = Topology::T2(16, 4, 1);
  std::vector<MachineId> primary = {0, 5, 10, 15};
  auto placement = MakeReplicatedPlacement(primary, topo, 3);
  ASSERT_TRUE(placement.ok());
  ASSERT_EQ(placement->num_partitions(), 4u);
  for (PartitionId p = 0; p < 4; ++p) {
    const auto& reps = placement->replicas[p];
    EXPECT_EQ(reps[0], primary[p]);
    std::set<MachineId> distinct(reps.begin(), reps.end());
    EXPECT_EQ(distinct.size(), kReplicationFactor);
    EXPECT_EQ(distinct.count(kInvalidMachine), 0u);
  }
}

TEST(ReplicationTest, GfsStylePodPolicy) {
  const Topology topo = Topology::T2(16, 4, 1);
  std::vector<MachineId> primary = {0};
  auto placement = MakeReplicatedPlacement(primary, topo, 3);
  ASSERT_TRUE(placement.ok());
  const auto& reps = placement->replicas[0];
  // Second replica same pod, third a different pod.
  EXPECT_EQ(topo.machine(reps[1]).pod, topo.machine(reps[0]).pod);
  EXPECT_NE(reps[1], reps[0]);
  EXPECT_NE(topo.machine(reps[2]).pod, topo.machine(reps[0]).pod);
}

TEST(ReplicationTest, TinyClusterDegradesGracefully) {
  const Topology topo = Topology::T1(2);
  auto placement = MakeReplicatedPlacement({0, 1}, topo, 3);
  ASSERT_TRUE(placement.ok());
  for (PartitionId p = 0; p < 2; ++p) {
    const auto& reps = placement->replicas[p];
    EXPECT_NE(reps[0], kInvalidMachine);
    EXPECT_NE(reps[1], kInvalidMachine);
    EXPECT_NE(reps[0], reps[1]);
    // No third distinct machine exists.
    EXPECT_EQ(reps[2], kInvalidMachine);
  }
}

TEST(ReplicationTest, SingleMachineCluster) {
  const Topology topo = Topology::T1(1);
  auto placement = MakeReplicatedPlacement({0}, topo, 3);
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(placement->replicas[0][0], 0u);
  EXPECT_EQ(placement->replicas[0][1], kInvalidMachine);
}

TEST(ReplicationTest, RejectsOutOfRangePrimary) {
  const Topology topo = Topology::T1(4);
  EXPECT_FALSE(MakeReplicatedPlacement({7}, topo, 3).ok());
}

TEST(ReplicationTest, FirstAliveReplicaFallsThrough) {
  const Topology topo = Topology::T2(8, 2, 1);
  auto placement = MakeReplicatedPlacement({1}, topo, 5);
  ASSERT_TRUE(placement.ok());
  const auto& reps = placement->replicas[0];
  std::vector<uint8_t> alive(8, 1);
  EXPECT_EQ(placement->FirstAliveReplica(0, alive), reps[0]);
  alive[reps[0]] = 0;
  EXPECT_EQ(placement->FirstAliveReplica(0, alive), reps[1]);
  alive[reps[1]] = 0;
  EXPECT_EQ(placement->FirstAliveReplica(0, alive), reps[2]);
  alive[reps[2]] = 0;
  EXPECT_EQ(placement->FirstAliveReplica(0, alive), kInvalidMachine);
}

TEST(ReplicationTest, DeterministicBySeed) {
  const Topology topo = Topology::T2(16, 4, 1);
  std::vector<MachineId> primary = {0, 1, 2, 3, 4, 5, 6, 7};
  auto a = MakeReplicatedPlacement(primary, topo, 9);
  auto b = MakeReplicatedPlacement(primary, topo, 9);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->replicas, b->replicas);
}

}  // namespace
}  // namespace surfer
