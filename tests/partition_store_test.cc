#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "partition/recursive_partitioner.h"
#include "storage/partition_store.h"
#include "storage/replication.h"

namespace surfer {
namespace {

class PartitionStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("surfer_store_test_" + std::to_string(::getpid())))
               .string();

    auto g = GenerateCompositeSmallWorld({.num_components = 4,
                                          .vertices_per_component = 128,
                                          .edges_per_component = 1024,
                                          .rewire_ratio = 0.05,
                                          .seed = 61});
    ASSERT_TRUE(g.ok());
    graph_ = std::move(g).value();
    RecursivePartitionerOptions options;
    options.num_partitions = 8;
    auto result = RecursivePartition(graph_, options);
    ASSERT_TRUE(result.ok());
    auto pg = PartitionedGraph::Create(graph_, result->partitioning);
    ASSERT_TRUE(pg.ok());
    pg_ = std::make_unique<PartitionedGraph>(std::move(pg).value());

    const Topology topo = Topology::T2(8, 2, 1);
    std::vector<MachineId> primary;
    for (PartitionId p = 0; p < 8; ++p) {
      primary.push_back(p % 8);
    }
    auto placement = MakeReplicatedPlacement(primary, topo, 4);
    ASSERT_TRUE(placement.ok());
    placement_ = std::move(placement).value();
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  Graph graph_;
  std::unique_ptr<PartitionedGraph> pg_;
  ReplicatedPlacement placement_;
};

TEST_F(PartitionStoreTest, RoundTripPreservesEverything) {
  ASSERT_TRUE(PartitionStore::Write(*pg_, placement_, dir_).ok());
  auto loaded = PartitionStore::Load(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const PartitionedGraph& reloaded = loaded->graph;
  EXPECT_EQ(reloaded.encoded_graph(), pg_->encoded_graph());
  EXPECT_EQ(reloaded.num_partitions(), pg_->num_partitions());
  for (PartitionId p = 0; p < pg_->num_partitions(); ++p) {
    const PartitionMeta& original = pg_->partition(p);
    const PartitionMeta& restored = reloaded.partition(p);
    EXPECT_EQ(restored.begin, original.begin);
    EXPECT_EQ(restored.end, original.end);
    // Derived data is recomputed, so it must match exactly.
    EXPECT_EQ(restored.inner_edges, original.inner_edges);
    EXPECT_EQ(restored.cross_out_edges, original.cross_out_edges);
    EXPECT_EQ(restored.boundary, original.boundary);
  }
  // Encoding round trip.
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    EXPECT_EQ(reloaded.encoding().ToEncoded(v), pg_->encoding().ToEncoded(v));
  }
  // Placement survives.
  EXPECT_EQ(loaded->placement.replicas, placement_.replicas);
}

TEST_F(PartitionStoreTest, LoadPartitionRows) {
  ASSERT_TRUE(PartitionStore::Write(*pg_, placement_, dir_).ok());
  const PartitionMeta& meta = pg_->partition(3);
  auto rows = PartitionStore::LoadPartitionRows(dir_, 3);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->num_vertices(), pg_->encoded_graph().num_vertices());
  for (VertexId v = 0; v < rows->num_vertices(); ++v) {
    if (v >= meta.begin && v < meta.end) {
      EXPECT_EQ(rows->OutDegree(v), pg_->encoded_graph().OutDegree(v));
    } else {
      EXPECT_EQ(rows->OutDegree(v), 0u);
    }
  }
  EXPECT_FALSE(PartitionStore::LoadPartitionRows(dir_, 99).ok());
}

TEST_F(PartitionStoreTest, LoadMissingDirectoryFails) {
  auto result = PartitionStore::Load(dir_ + "_nope");
  EXPECT_FALSE(result.ok());
}

TEST_F(PartitionStoreTest, CorruptManifestRejected) {
  ASSERT_TRUE(PartitionStore::Write(*pg_, placement_, dir_).ok());
  std::ofstream out(dir_ + "/MANIFEST", std::ios::trunc);
  out << "not a manifest\n";
  out.close();
  EXPECT_FALSE(PartitionStore::Load(dir_).ok());
}

TEST_F(PartitionStoreTest, TruncatedPartitionRejected) {
  ASSERT_TRUE(PartitionStore::Write(*pg_, placement_, dir_).ok());
  const std::string victim = dir_ + "/partition-0002.bin";
  const auto size = std::filesystem::file_size(victim);
  std::filesystem::resize_file(victim, size / 2);
  auto result = PartitionStore::Load(dir_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST_F(PartitionStoreTest, MismatchedPlacementRejected) {
  ReplicatedPlacement wrong;
  wrong.replicas.resize(3);  // graph has 8 partitions
  EXPECT_FALSE(PartitionStore::Write(*pg_, wrong, dir_).ok());
}

TEST(VertexEncodingFromMappingTest, Validation) {
  // Not a permutation.
  EXPECT_FALSE(VertexEncoding::FromMapping({0, 0, 1}, {0, 3}).ok());
  // Starts do not tile.
  EXPECT_FALSE(VertexEncoding::FromMapping({0, 1, 2}, {0, 2}).ok());
  EXPECT_FALSE(VertexEncoding::FromMapping({0, 1, 2}, {1, 3}).ok());
  // Good.
  auto enc = VertexEncoding::FromMapping({2, 0, 1}, {0, 1, 3});
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->ToOriginal(0), 2u);
  EXPECT_EQ(enc->ToEncoded(2), 0u);
  EXPECT_EQ(enc->PartitionOf(0), 0u);
  EXPECT_EQ(enc->PartitionOf(2), 1u);
}

}  // namespace
}  // namespace surfer
