#include "obs/bench_gate.h"

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace surfer {
namespace obs {
namespace {

JsonValue ParseOrDie(const std::string& text) {
  auto parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

JsonValue LoadCommittedPartitionBaseline() {
  const std::string path =
      std::string(SURFER_SOURCE_DIR) + "/BENCH_partition.json";
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing committed baseline " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return ParseOrDie(text.str());
}

JsonValue* FindMutable(JsonValue& obj, const std::string& key) {
  for (auto& [k, v] : obj.as_object()) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

/// A minimal well-formed baseline pair for targeted checks.
JsonValue MakeBaselineDoc() {
  return ParseOrDie(R"({
    "schema_version": 1,
    "name": "bench_x",
    "smoke": false,
    "num_vertices": 1024,
    "host_cores": 8,
    "sequential_wall_s": 10.0,
    "points": [
      {"threads": 1, "wall_s": 10.0, "bit_identical": true,
       "network_bytes": 5000},
      {"threads": 2, "wall_s": 6.0, "bit_identical": true,
       "network_bytes": 5000}
    ]
  })");
}

TEST(BenchGateTest, CommittedPartitionBaselineSelfChecks) {
  // The acceptance contract: `surfer_trace check BENCH_partition.json` from
  // the repo root (current == baseline == the committed file) exits 0.
  const JsonValue doc = LoadCommittedPartitionBaseline();
  const JsonValue* version = doc.Find("schema_version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(static_cast<int>(version->as_number()),
            kBenchBaselineSchemaVersion);
  const BenchCheckResult result = CheckBenchBaseline(doc, doc);
  EXPECT_TRUE(result.ok) << (result.failures.empty()
                                 ? ""
                                 : result.failures.front());
  EXPECT_TRUE(result.failures.empty());
}

TEST(BenchGateTest, PerturbedWallClockFailsAgainstCommittedBaseline) {
  const JsonValue baseline = LoadCommittedPartitionBaseline();
  JsonValue current = LoadCommittedPartitionBaseline();
  JsonValue* points = FindMutable(current, "points");
  ASSERT_NE(points, nullptr);
  ASSERT_FALSE(points->as_array().empty());
  JsonValue* wall = FindMutable(points->as_array()[0], "wall_s");
  ASSERT_NE(wall, nullptr);
  *wall = JsonValue(wall->as_number() * 10.0);  // far past any tolerance

  const BenchCheckResult result = CheckBenchBaseline(current, baseline);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.failures.empty());
  EXPECT_NE(result.failures.front().find("wall_s regressed"),
            std::string::npos)
      << result.failures.front();
}

TEST(BenchGateTest, BitIdentityFalseFailsEvenWhenWorkloadsDiffer) {
  const JsonValue baseline = MakeBaselineDoc();
  JsonValue current = MakeBaselineDoc();
  // Different workload (timings skipped) AND a broken invariant: the
  // invariant must still fail — correctness is never tolerance-gated.
  *FindMutable(current, "num_vertices") = JsonValue(uint64_t{2048});
  JsonValue* points = FindMutable(current, "points");
  *FindMutable(points->as_array()[1], "bit_identical") = JsonValue(false);

  const BenchCheckResult result = CheckBenchBaseline(current, baseline);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.failures.empty());
  EXPECT_NE(result.failures.front().find("bit_identical"), std::string::npos);
}

TEST(BenchGateTest, CollapsedWireBatchingFailsRegardlessOfWorkload) {
  const JsonValue baseline = MakeBaselineDoc();
  JsonValue current = MakeBaselineDoc();
  // Different workload (timings skipped), but the batching invariant is a
  // correctness gate: barely more than one segment per batch means the
  // message plane degenerated to per-stream channel sends.
  *FindMutable(current, "num_vertices") = JsonValue(uint64_t{2048});
  JsonValue* points = FindMutable(current, "points");
  points->as_array()[0].Set("wire_segments_sent", uint64_t{400});
  points->as_array()[0].Set("wire_batches_sent", uint64_t{100});

  const BenchCheckResult result = CheckBenchBaseline(current, baseline);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.failures.empty());
  EXPECT_NE(result.failures.front().find("batching collapsed"),
            std::string::npos);

  // At >= 5x coalescing the same document passes.
  *FindMutable(points->as_array()[0], "wire_segments_sent") =
      JsonValue(uint64_t{500});
  EXPECT_TRUE(CheckBenchBaseline(current, baseline).ok);
  // Points without the wire counters (older baselines) are not gated.
  *FindMutable(points->as_array()[0], "wire_batches_sent") =
      JsonValue(uint64_t{0});
  EXPECT_TRUE(CheckBenchBaseline(current, baseline).ok);
}

TEST(BenchGateTest, NetworkBytesMustMatchExactly) {
  const JsonValue baseline = MakeBaselineDoc();
  JsonValue current = MakeBaselineDoc();
  JsonValue* points = FindMutable(current, "points");
  *FindMutable(points->as_array()[0], "network_bytes") =
      JsonValue(uint64_t{5001});

  const BenchCheckResult result = CheckBenchBaseline(current, baseline);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.failures.empty());
  EXPECT_NE(result.failures.front().find("network_bytes"), std::string::npos);
}

TEST(BenchGateTest, MismatchedNamesFail) {
  JsonValue current = MakeBaselineDoc();
  *FindMutable(current, "name") = JsonValue(std::string("bench_y"));
  EXPECT_FALSE(CheckBenchBaseline(current, MakeBaselineDoc()).ok);
}

TEST(BenchGateTest, WorkloadMismatchSkipsTimingComparisons) {
  const JsonValue baseline = MakeBaselineDoc();
  JsonValue current = MakeBaselineDoc();
  *FindMutable(current, "num_vertices") = JsonValue(uint64_t{4096});
  JsonValue* points = FindMutable(current, "points");
  *FindMutable(points->as_array()[0], "wall_s") = JsonValue(500.0);

  const BenchCheckResult result = CheckBenchBaseline(current, baseline);
  EXPECT_TRUE(result.ok);  // 50x slower, but on a different workload
  EXPECT_FALSE(result.notes.empty());
}

TEST(BenchGateTest, SmokeFlagMismatchSkipsTimingComparisons) {
  const JsonValue baseline = MakeBaselineDoc();
  JsonValue current = MakeBaselineDoc();
  *FindMutable(current, "smoke") = JsonValue(true);
  *FindMutable(current, "sequential_wall_s") = JsonValue(999.0);
  const BenchCheckResult result = CheckBenchBaseline(current, baseline);
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(result.notes.empty());
}

TEST(BenchGateTest, CrossHostCoresWidensTolerance) {
  const JsonValue baseline = MakeBaselineDoc();  // host_cores 8
  JsonValue current = MakeBaselineDoc();
  JsonValue* points = FindMutable(current, "points");
  // 1.8x slower: beyond the 35% same-host tolerance...
  *FindMutable(points->as_array()[0], "wall_s") = JsonValue(18.0);
  EXPECT_FALSE(CheckBenchBaseline(current, baseline).ok);

  // ...but acceptable when the current run came from a 1-core container
  // (cross-host + small-host slack: 0.35 + 1.0 + 0.65 = 2.0 → up to 3x).
  *FindMutable(current, "host_cores") = JsonValue(uint64_t{1});
  EXPECT_TRUE(CheckBenchBaseline(current, baseline).ok);
}

TEST(BenchGateTest, ImprovementsAreNotesNotFailures) {
  const JsonValue baseline = MakeBaselineDoc();
  JsonValue current = MakeBaselineDoc();
  JsonValue* points = FindMutable(current, "points");
  *FindMutable(points->as_array()[1], "wall_s") = JsonValue(0.5);
  const BenchCheckResult result = CheckBenchBaseline(current, baseline);
  EXPECT_TRUE(result.ok);
  ASSERT_FALSE(result.notes.empty());
  EXPECT_NE(result.notes.front().find("improved"), std::string::npos);
}

TEST(BenchGateTest, ExtraPointsAreNoted) {
  const JsonValue baseline = MakeBaselineDoc();
  JsonValue current = MakeBaselineDoc();
  JsonValue* points = FindMutable(current, "points");
  JsonValue extra = ParseOrDie(
      R"({"threads": 16, "wall_s": 1.0, "bit_identical": true})");
  points->Append(std::move(extra));
  const BenchCheckResult result = CheckBenchBaseline(current, baseline);
  EXPECT_TRUE(result.ok);
  ASSERT_FALSE(result.notes.empty());
  EXPECT_NE(result.notes.back().find("no baseline counterpart"),
            std::string::npos);
}

TEST(BenchGateTest, DropCountersNoteByDefaultFailWhenStrict) {
  const JsonValue baseline = MakeBaselineDoc();
  JsonValue current = MakeBaselineDoc();
  JsonValue* points = FindMutable(current, "points");
  points->as_array()[0].Set("trace_events_dropped", uint64_t{3});
  points->as_array()[1].Set("telemetry_samples_dropped", uint64_t{7});

  // Default: drops mean the *recording* is partial, not that the run
  // misbehaved — advisory notes, check still passes.
  const BenchCheckResult lenient = CheckBenchBaseline(current, baseline);
  EXPECT_TRUE(lenient.ok);
  int drop_notes = 0;
  for (const std::string& note : lenient.notes) {
    if (note.find("incomplete") != std::string::npos) {
      ++drop_notes;
    }
  }
  EXPECT_EQ(drop_notes, 2);

  // Strict (CI smoke): an undersized ring is a configuration bug.
  BenchCheckOptions strict;
  strict.strict_drops = true;
  const BenchCheckResult failed = CheckBenchBaseline(current, baseline, strict);
  EXPECT_FALSE(failed.ok);
  EXPECT_EQ(failed.failures.size(), 2u);
  EXPECT_NE(failed.failures.front().find("strict drops"), std::string::npos);

  // Zero drops stay silent even under strict.
  *FindMutable(points->as_array()[0], "trace_events_dropped") =
      JsonValue(uint64_t{0});
  *FindMutable(points->as_array()[1], "telemetry_samples_dropped") =
      JsonValue(uint64_t{0});
  EXPECT_TRUE(CheckBenchBaseline(current, baseline, strict).ok);
}

TEST(BenchGateTest, PeakRssGatedWithHostAwareTolerance) {
  JsonValue baseline = MakeBaselineDoc();
  JsonValue* base_points = FindMutable(baseline, "points");
  base_points->as_array()[0].Set("peak_rss_bytes", uint64_t{100000000});
  JsonValue current = baseline;

  // Within the same-host 35% tolerance: fine.
  JsonValue* points = FindMutable(current, "points");
  *FindMutable(points->as_array()[0], "peak_rss_bytes") =
      JsonValue(uint64_t{120000000});
  EXPECT_TRUE(CheckBenchBaseline(current, baseline).ok);

  // 2x the baseline: a memory regression, gated like a timing one.
  *FindMutable(points->as_array()[0], "peak_rss_bytes") =
      JsonValue(uint64_t{200000000});
  const BenchCheckResult result = CheckBenchBaseline(current, baseline);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.failures.empty());
  EXPECT_NE(result.failures.front().find("peak_rss_bytes"),
            std::string::npos);

  // A zero on either side means "probe unavailable", never a regression.
  *FindMutable(points->as_array()[0], "peak_rss_bytes") =
      JsonValue(uint64_t{0});
  EXPECT_TRUE(CheckBenchBaseline(current, baseline).ok);
  *FindMutable(points->as_array()[0], "peak_rss_bytes") =
      JsonValue(uint64_t{200000000});
  *FindMutable(base_points->as_array()[0], "peak_rss_bytes") =
      JsonValue(uint64_t{0});
  EXPECT_TRUE(CheckBenchBaseline(current, baseline).ok);
}

TEST(BenchGateTest, TelemetryOverheadFracIsNotAWorkloadField) {
  // The measured sampler overhead varies run to run; it must not disable
  // timing comparisons the way a genuine workload-shape mismatch does.
  const JsonValue baseline = MakeBaselineDoc();
  JsonValue current = MakeBaselineDoc();
  current.Set("telemetry_overhead_frac", 0.013);
  JsonValue* points = FindMutable(current, "points");
  *FindMutable(points->as_array()[0], "wall_s") = JsonValue(500.0);
  // Timings are still compared (and fail): the overhead field was ignored.
  EXPECT_FALSE(CheckBenchBaseline(current, baseline).ok);
}

TEST(JsonDiffTest, ReportsChangedNumericLeavesWithPaths) {
  const JsonValue before = ParseOrDie(
      R"({"a": 1, "b": {"c": 2.5, "d": "text"},
          "points": [{"x": 1}, {"x": 2}]})");
  const JsonValue after = ParseOrDie(
      R"({"a": 1, "b": {"c": 3.5, "d": "text"},
          "points": [{"x": 1}, {"x": 9}], "extra": 42})");
  const std::vector<JsonDelta> deltas = DiffNumbers(before, after);
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas[0].path, "b.c");
  EXPECT_DOUBLE_EQ(deltas[0].before, 2.5);
  EXPECT_DOUBLE_EQ(deltas[0].after, 3.5);
  EXPECT_EQ(deltas[1].path, "points[1].x");
  EXPECT_DOUBLE_EQ(deltas[1].before, 2);
  EXPECT_DOUBLE_EQ(deltas[1].after, 9);
}

TEST(JsonDiffTest, IdenticalDocumentsProduceNoDeltas) {
  const JsonValue doc = MakeBaselineDoc();
  EXPECT_TRUE(DiffNumbers(doc, doc).empty());
}

}  // namespace
}  // namespace obs
}  // namespace surfer
