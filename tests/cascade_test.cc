#include <gtest/gtest.h>

#include "apps/network_ranking.h"
#include "graph/algorithms.h"
#include "graph/graph_builder.h"
#include "propagation/cascade.h"
#include "propagation/runner.h"
#include "tests/test_fixtures.h"

namespace surfer {
namespace {

using testing_fixtures::EngineFixture;
using testing_fixtures::MakeEngineFixture;

TEST(CascadeTest, LevelsOnHandBuiltPartition) {
  // Chain 0 -> 1 -> 2 -> 3 -> 4 -> 5 split into {0..2} and {3..5}.
  // IDs are already contiguous per partition, so encoding is identity.
  GraphBuilder builder(6);
  for (VertexId v = 0; v + 1 < 6; ++v) {
    ASSERT_TRUE(builder.AddEdge(v, v + 1).ok());
  }
  const Graph g = std::move(builder).Build();
  Partitioning partitioning;
  partitioning.num_partitions = 2;
  partitioning.assignment = {0, 0, 0, 1, 1, 1};
  auto pg = PartitionedGraph::Create(g, partitioning);
  ASSERT_TRUE(pg.ok());

  const CascadeInfo info = ComputeCascadeInfo(*pg);
  // Partition 0: only vertex 2 is boundary (edge 2 -> 3). Levels: 2 -> 0,
  // nothing reachable from it inside the partition, so 0 and 1 are V_inf.
  EXPECT_EQ(info.level[2], 0u);
  EXPECT_EQ(info.level[0], kCascadeInf);
  EXPECT_EQ(info.level[1], kCascadeInf);
  // Partition 1: vertex 3 is boundary (incoming cross edge); 4 is one hop,
  // 5 two hops downstream.
  EXPECT_EQ(info.level[3], 0u);
  EXPECT_EQ(info.level[4], 1u);
  EXPECT_EQ(info.level[5], 2u);
  EXPECT_EQ(info.partition_diameter[1], 3u);
  EXPECT_GE(info.d_min, 1u);
}

TEST(CascadeTest, RatioAtLeastCountsInfAndDeepVertices) {
  CascadeInfo info;
  info.level = {0, 1, 2, kCascadeInf};
  EXPECT_DOUBLE_EQ(info.RatioAtLeast(2), 0.5);   // {2, inf}
  EXPECT_DOUBLE_EQ(info.RatioAtLeast(1), 0.75);  // {1, 2, inf}
  EXPECT_DOUBLE_EQ(info.RatioAtLeast(100), 0.25);
}

TEST(CascadeTest, BoundaryVerticesAreLevelZero) {
  const EngineFixture f = MakeEngineFixture(1 << 11, 8, 77);
  const CascadeInfo info = ComputeCascadeInfo(f.engine->partitioned_graph());
  const PartitionedGraph& pg = f.engine->partitioned_graph();
  for (PartitionId p = 0; p < pg.num_partitions(); ++p) {
    const PartitionMeta& meta = pg.partition(p);
    for (VertexId v = meta.begin; v < meta.end; ++v) {
      if (meta.boundary[v - meta.begin]) {
        EXPECT_EQ(info.level[v], 0u);
      } else {
        EXPECT_NE(info.level[v], 0u);
      }
    }
  }
}

TEST(CascadeTest, CascadedResultsIdenticalToNaive) {
  const EngineFixture f = MakeEngineFixture(1 << 11, 8, 78);
  BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  NetworkRankingApp app(f.graph.num_vertices());

  PropagationConfig naive;
  naive.iterations = 4;
  naive.cascaded = false;
  PropagationRunner<NetworkRankingApp> naive_runner(
      setup.graph, setup.placement, setup.topology, app, naive);
  ASSERT_TRUE(naive_runner.Run(setup.sim_options).ok());

  PropagationConfig cascaded = naive;
  cascaded.cascaded = true;
  PropagationRunner<NetworkRankingApp> cascaded_runner(
      setup.graph, setup.placement, setup.topology, app, cascaded);
  ASSERT_TRUE(cascaded_runner.Run(setup.sim_options).ok());

  for (VertexId v = 0; v < f.graph.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(naive_runner.states()[v], cascaded_runner.states()[v]);
  }
}

TEST(CascadeTest, CascadedReducesDiskIo) {
  const EngineFixture f = MakeEngineFixture(1 << 12, 8, 79);
  BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  NetworkRankingApp app(f.graph.num_vertices());

  PropagationConfig naive;
  naive.iterations = 6;
  PropagationRunner<NetworkRankingApp> naive_runner(
      setup.graph, setup.placement, setup.topology, app, naive);
  auto naive_metrics = naive_runner.Run(setup.sim_options);
  ASSERT_TRUE(naive_metrics.ok());

  PropagationConfig cascaded = naive;
  cascaded.cascaded = true;
  PropagationRunner<NetworkRankingApp> cascaded_runner(
      setup.graph, setup.placement, setup.topology, app, cascaded);
  auto cascaded_metrics = cascaded_runner.Run(setup.sim_options);
  ASSERT_TRUE(cascaded_metrics.ok());

  const double v2_ratio = cascaded_runner.cascade_info().RatioAtLeast(2);
  if (v2_ratio > 0.01) {
    EXPECT_LT(cascaded_metrics->disk_bytes, naive_metrics->disk_bytes);
  } else {
    EXPECT_LE(cascaded_metrics->disk_bytes, naive_metrics->disk_bytes);
  }
  // Network is untouched by cascading.
  EXPECT_NEAR(cascaded_metrics->network_bytes, naive_metrics->network_bytes,
              naive_metrics->network_bytes * 1e-9);
}

TEST(CascadeTest, SingleIterationNeverCascades) {
  const EngineFixture f = MakeEngineFixture(1 << 10, 4, 80);
  BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationConfig config;
  config.iterations = 1;
  config.cascaded = true;  // ignored for single iterations
  PropagationRunner<NetworkRankingApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());
  EXPECT_TRUE(runner.cascade_info().level.empty());
}

}  // namespace
}  // namespace surfer
