#include <numeric>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "partition/bisection.h"
#include "partition/weighted_graph.h"

namespace surfer {
namespace {

// Two k-cliques joined by a single bridge edge: the optimal bisection cuts
// exactly the bridge.
WeightedGraph TwoCliques(VertexId k) {
  GraphBuilder builder(2 * k);
  for (VertexId a = 0; a < k; ++a) {
    for (VertexId b = a + 1; b < k; ++b) {
      EXPECT_TRUE(builder.AddEdge(a, b).ok());
      EXPECT_TRUE(builder.AddEdge(k + a, k + b).ok());
    }
  }
  EXPECT_TRUE(builder.AddEdge(0, k).ok());
  WeightedGraph wg = WeightedGraph::FromDataGraph(std::move(builder).Build());
  // Unit vertex weights keep the clique halves exactly balanced.
  std::fill(wg.vertex_weights.begin(), wg.vertex_weights.end(), 1);
  return wg;
}

TEST(WeightedGraphTest, FromDataGraphSymmetrizesWithMultiplicity) {
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdges({{0, 1}, {1, 0}, {1, 2}}).ok());
  const WeightedGraph wg =
      WeightedGraph::FromDataGraph(std::move(builder).Build());
  EXPECT_EQ(wg.num_vertices(), 3u);
  // 0<->1 has weight 2 (both directions), 1<->2 weight 1.
  const auto nbrs = wg.Neighbors(1);
  const auto weights = wg.EdgeWeights(1);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(weights[0], 2);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_EQ(weights[1], 1);
  // Vertex weight = stored record bytes.
  EXPECT_EQ(wg.vertex_weights[0],
            static_cast<int64_t>(StoredVertexRecordBytes(1)));
  EXPECT_EQ(wg.vertex_weights[1],
            static_cast<int64_t>(StoredVertexRecordBytes(2)));
}

TEST(WeightedGraphTest, CompleteFromWeights) {
  const std::vector<std::vector<double>> bw = {
      {0, 10, 1}, {10, 0, 1}, {1, 1, 0}};
  const WeightedGraph wg = WeightedGraph::CompleteFromWeights(bw);
  EXPECT_EQ(wg.num_vertices(), 3u);
  EXPECT_EQ(wg.Neighbors(0).size(), 2u);
  // Ratios preserved: weight(0,1) / weight(0,2) == 10.
  const auto w0 = wg.EdgeWeights(0);
  EXPECT_NEAR(static_cast<double>(w0[0]) / static_cast<double>(w0[1]), 10.0,
              0.01);
  EXPECT_EQ(wg.TotalVertexWeight(), 3);
}

TEST(BisectionTest, ComputeCutWeight) {
  WeightedGraph wg = TwoCliques(4);
  std::vector<uint8_t> perfect(8, 0);
  for (VertexId v = 4; v < 8; ++v) {
    perfect[v] = 1;
  }
  EXPECT_EQ(ComputeCutWeight(wg, perfect), 1);
  std::vector<uint8_t> all_same(8, 0);
  EXPECT_EQ(ComputeCutWeight(wg, all_same), 0);
}

TEST(BisectionTest, FindsBridgeCut) {
  WeightedGraph wg = TwoCliques(16);
  BisectionOptions options;
  options.seed = 7;
  const BisectionResult result = Bisect(wg, options);
  EXPECT_EQ(result.cut_weight, 1);
  EXPECT_EQ(result.side_weight[0], 16);
  EXPECT_EQ(result.side_weight[1], 16);
  // The two cliques must land on opposite sides, intact.
  for (VertexId v = 1; v < 16; ++v) {
    EXPECT_EQ(result.side[v], result.side[0]);
    EXPECT_EQ(result.side[16 + v], result.side[16]);
  }
  EXPECT_NE(result.side[0], result.side[16]);
}

TEST(BisectionTest, CoarseningPreservesTotals) {
  auto g = GenerateRmat({.num_vertices = 512, .num_edges = 4096, .seed = 2});
  ASSERT_TRUE(g.ok());
  const WeightedGraph wg = WeightedGraph::FromDataGraph(*g);
  std::vector<VertexId> map;
  const WeightedGraph coarse = internal::CoarsenOnce(wg, 11, &map);
  EXPECT_LT(coarse.num_vertices(), wg.num_vertices());
  EXPECT_GE(coarse.num_vertices(), wg.num_vertices() / 2);
  EXPECT_EQ(coarse.TotalVertexWeight(), wg.TotalVertexWeight());
  // Total edge weight is preserved minus collapsed intra-pair edges.
  int64_t fine_total = 0;
  for (int64_t w : wg.edge_weights) {
    fine_total += w;
  }
  int64_t coarse_total = 0;
  for (int64_t w : coarse.edge_weights) {
    coarse_total += w;
  }
  EXPECT_LE(coarse_total, fine_total);
  EXPECT_GT(coarse_total, 0);
  // Every fine vertex maps to a valid coarse vertex.
  for (VertexId c : map) {
    EXPECT_LT(c, coarse.num_vertices());
  }
}

TEST(BisectionTest, CutConsistentWithSides) {
  auto g = GenerateRmat({.num_vertices = 1024, .num_edges = 8192, .seed = 5});
  ASSERT_TRUE(g.ok());
  const WeightedGraph wg = WeightedGraph::FromDataGraph(*g);
  BisectionOptions options;
  const BisectionResult result = Bisect(wg, options);
  EXPECT_EQ(result.cut_weight, ComputeCutWeight(wg, result.side));
  int64_t w0 = 0;
  int64_t w1 = 0;
  for (VertexId v = 0; v < wg.num_vertices(); ++v) {
    (result.side[v] == 0 ? w0 : w1) += wg.vertex_weights[v];
  }
  EXPECT_EQ(result.side_weight[0], w0);
  EXPECT_EQ(result.side_weight[1], w1);
}

class BisectionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BisectionPropertyTest, BalancedAndBetterThanRandom) {
  auto g = GenerateCompositeSmallWorld({.num_components = 4,
                                        .vertices_per_component = 256,
                                        .edges_per_component = 2048,
                                        .rewire_ratio = 0.05,
                                        .seed = GetParam()});
  ASSERT_TRUE(g.ok());
  const WeightedGraph wg = WeightedGraph::FromDataGraph(*g);
  BisectionOptions options;
  options.seed = GetParam();
  const BisectionResult result = Bisect(wg, options);

  // Balance: within epsilon of half (the giant-vertex caveat aside, these
  // graphs have no vertex heavier than the slack).
  EXPECT_LE(result.Imbalance(), options.balance_epsilon + 0.01);

  // Quality: far better than a random split.
  Rng rng(GetParam() * 17 + 1);
  std::vector<uint8_t> random_side(wg.num_vertices());
  for (auto& s : random_side) {
    s = static_cast<uint8_t>(rng.Uniform(2));
  }
  const int64_t random_cut = ComputeCutWeight(wg, random_side);
  EXPECT_LT(result.cut_weight, random_cut / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BisectionPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(BisectionTest, FmRefineImprovesBadStart) {
  WeightedGraph wg = TwoCliques(8);
  BisectionResult result;
  // Alternating sides: terrible cut through both cliques.
  result.side.resize(16);
  for (VertexId v = 0; v < 16; ++v) {
    result.side[v] = v % 2;
  }
  result.cut_weight = ComputeCutWeight(wg, result.side);
  result.side_weight[0] = 8;
  result.side_weight[1] = 8;
  const int64_t before = result.cut_weight;
  BisectionOptions options;
  internal::FmRefine(wg, options, &result);
  EXPECT_LT(result.cut_weight, before);
  EXPECT_EQ(result.cut_weight, ComputeCutWeight(wg, result.side));
}

TEST(BisectionTest, HandlesTinyGraphs) {
  // Two vertices, one edge.
  GraphBuilder builder(2);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  const WeightedGraph wg =
      WeightedGraph::FromDataGraph(std::move(builder).Build());
  const BisectionResult result = Bisect(wg, BisectionOptions{});
  EXPECT_EQ(result.side.size(), 2u);
  EXPECT_NE(result.side[0], result.side[1]);
}

TEST(BisectionTest, HandlesDisconnectedGraph) {
  // Four isolated vertices: any balanced split has cut 0.
  GraphBuilder builder(4);
  const WeightedGraph wg =
      WeightedGraph::FromDataGraph(std::move(builder).Build());
  const BisectionResult result = Bisect(wg, BisectionOptions{});
  EXPECT_EQ(result.cut_weight, 0);
  // Note: stored-record weights are uniform for isolated vertices.
  EXPECT_EQ(result.side_weight[0], result.side_weight[1]);
}

}  // namespace
}  // namespace surfer
