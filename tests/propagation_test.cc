#include <cmath>

#include <gtest/gtest.h>

#include "apps/degree_distribution.h"
#include "apps/network_ranking.h"
#include "apps/recommender.h"
#include "apps/reverse_link_graph.h"
#include "apps/triangle_counting.h"
#include "apps/two_hop_friends.h"
#include "graph/algorithms.h"
#include "propagation/runner.h"
#include "tests/test_fixtures.h"

namespace surfer {
namespace {

using testing_fixtures::EngineFixture;
using testing_fixtures::MakeEngineFixture;

const EngineFixture& Fixture() {
  static const EngineFixture* fixture =
      new EngineFixture(MakeEngineFixture());
  return *fixture;
}

// ------------------------------------------------- correctness: PageRank

TEST(PropagationTest, PageRankMatchesReference) {
  const EngineFixture& f = Fixture();
  BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationConfig config;
  config.iterations = 4;
  PropagationRunner<NetworkRankingApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());
  const auto reference = ReferencePageRank(f.graph, 4);
  for (VertexId v = 0; v < f.graph.num_vertices(); ++v) {
    EXPECT_NEAR(runner.StateOfOriginal(v), reference[v], 1e-12);
  }
}

TEST(PropagationTest, ResultsIdenticalAcrossOptimizationLevels) {
  const EngineFixture& f = Fixture();
  double reference_checksum = 0.0;
  for (OptimizationLevel level :
       {OptimizationLevel::kO1, OptimizationLevel::kO2,
        OptimizationLevel::kO3, OptimizationLevel::kO4}) {
    BenchmarkSetup setup = f.Setup(level);
    NetworkRankingApp app(f.graph.num_vertices());
    PropagationConfig config = PropagationConfig::ForLevel(level);
    config.iterations = 3;
    PropagationRunner<NetworkRankingApp> runner(
        setup.graph, setup.placement, setup.topology, app, config);
    ASSERT_TRUE(runner.Run(setup.sim_options).ok());
    double checksum = 0.0;
    for (double rank : runner.states()) {
      checksum += rank;
    }
    if (level == OptimizationLevel::kO1) {
      reference_checksum = checksum;
    } else {
      EXPECT_NEAR(checksum, reference_checksum, 1e-9);
    }
  }
}

// ------------------------------------------ optimization-level orderings

struct LevelMetrics {
  RunMetrics o1, o2, o3, o4;
};

LevelMetrics RunNrAtAllLevels() {
  const EngineFixture& f = Fixture();
  LevelMetrics out;
  for (OptimizationLevel level :
       {OptimizationLevel::kO1, OptimizationLevel::kO2,
        OptimizationLevel::kO3, OptimizationLevel::kO4}) {
    BenchmarkSetup setup = f.Setup(level);
    NetworkRankingApp app(f.graph.num_vertices());
    PropagationConfig config = PropagationConfig::ForLevel(level);
    config.iterations = 3;
    PropagationRunner<NetworkRankingApp> runner(
        setup.graph, setup.placement, setup.topology, app, config);
    auto metrics = runner.Run(setup.sim_options);
    EXPECT_TRUE(metrics.ok());
    switch (level) {
      case OptimizationLevel::kO1:
        out.o1 = *metrics;
        break;
      case OptimizationLevel::kO2:
        out.o2 = *metrics;
        break;
      case OptimizationLevel::kO3:
        out.o3 = *metrics;
        break;
      case OptimizationLevel::kO4:
        out.o4 = *metrics;
        break;
    }
  }
  return out;
}

TEST(PropagationTest, LocalOptimizationsReduceNetworkAndDisk) {
  const LevelMetrics m = RunNrAtAllLevels();
  // O1 -> O3: local combination merges partial ranks per remote vertex.
  EXPECT_LT(m.o3.network_bytes, m.o1.network_bytes);
  // O1 -> O3: local propagation stops materializing inner messages.
  EXPECT_LT(m.o3.disk_bytes, m.o1.disk_bytes);
  // Same effect on the bandwidth-aware layout.
  EXPECT_LT(m.o4.network_bytes, m.o2.network_bytes);
  EXPECT_LT(m.o4.disk_bytes, m.o2.disk_bytes);
}

TEST(PropagationTest, BandwidthAwareLayoutReducesNetwork) {
  const LevelMetrics m = RunNrAtAllLevels();
  // O1 -> O2 and O3 -> O4: co-located sibling partitions skip the network.
  EXPECT_LT(m.o2.network_bytes, m.o1.network_bytes);
  EXPECT_LE(m.o4.network_bytes, m.o3.network_bytes);
}

TEST(PropagationTest, ResponseTimeImprovesMonotonically) {
  const LevelMetrics m = RunNrAtAllLevels();
  EXPECT_LT(m.o4.response_time_s, m.o1.response_time_s);
  EXPECT_LT(m.o3.response_time_s, m.o1.response_time_s);
  EXPECT_LE(m.o2.response_time_s, m.o1.response_time_s * 1.02);
}

// ----------------------------------------------- correctness: other apps

TEST(PropagationTest, ReverseLinkGraphMatchesReversed) {
  const EngineFixture& f = Fixture();
  BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  ReverseLinkGraphApp app;
  PropagationConfig config;
  PropagationRunner<ReverseLinkGraphApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());

  const Graph reversed = f.graph.Reversed();
  const VertexEncoding& enc = setup.graph->encoding();
  for (VertexId v = 0; v < f.graph.num_vertices(); ++v) {
    const auto& state = runner.StateOfOriginal(v);
    const auto expected = reversed.OutNeighbors(v);
    ASSERT_EQ(state.size(), expected.size()) << "vertex " << v;
    // States hold encoded IDs; translate and compare as sets.
    std::vector<VertexId> translated;
    translated.reserve(state.size());
    for (VertexId e : state) {
      translated.push_back(enc.ToOriginal(e));
    }
    std::sort(translated.begin(), translated.end());
    std::vector<VertexId> expected_sorted(expected.begin(), expected.end());
    std::sort(expected_sorted.begin(), expected_sorted.end());
    EXPECT_EQ(translated, expected_sorted) << "vertex " << v;
  }
}

TEST(PropagationTest, TriangleCountMatchesReference) {
  const EngineFixture& f = Fixture();
  BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  TriangleCountingApp app(&setup.graph->encoding());
  PropagationConfig config;
  PropagationRunner<TriangleCountingApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());
  uint64_t total = 0;
  for (uint64_t c : runner.states()) {
    total += c;
  }
  const VertexSampler sampler(&setup.graph->encoding(),
                              kDefaultSamplePermille, 3);
  EXPECT_EQ(total, testing_fixtures::ReferenceSampledDirectedTriangles(
                       f.graph, sampler));
  EXPECT_GT(total, 0u) << "sample produced no triangles; enlarge the graph";
}

TEST(PropagationTest, TwoHopFriendsMatchesReference) {
  const EngineFixture& f = Fixture();
  BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  TwoHopFriendsApp app(&setup.graph->encoding());
  PropagationConfig config;
  PropagationRunner<TwoHopFriendsApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());

  const Graph reversed = f.graph.Reversed();
  const VertexSampler sampler(&setup.graph->encoding(),
                              kDefaultSamplePermille, 17);
  const VertexEncoding& enc = setup.graph->encoding();
  uint64_t nonempty = 0;
  for (VertexId v = 0; v < f.graph.num_vertices(); ++v) {
    const auto expected = testing_fixtures::ReferenceSampledTwoHop(
        f.graph, reversed, sampler, v);
    const auto& state = runner.StateOfOriginal(v);
    std::vector<VertexId> translated;
    translated.reserve(state.size());
    for (VertexId e : state) {
      translated.push_back(enc.ToOriginal(e));
    }
    std::sort(translated.begin(), translated.end());
    ASSERT_EQ(translated, expected) << "vertex " << v;
    nonempty += !expected.empty();
  }
  EXPECT_GT(nonempty, 0u);
}

TEST(PropagationTest, DegreeDistributionMatchesHistogram) {
  const EngineFixture& f = Fixture();
  BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  DegreeDistributionApp app;
  PropagationConfig config;
  PropagationRunner<DegreeDistributionApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());

  const auto reference = ReferenceDegreeHistogram(f.graph);
  const auto& outputs = runner.virtual_outputs();
  for (uint64_t degree = 0; degree < reference.size(); ++degree) {
    if (reference[degree] == 0) {
      EXPECT_EQ(outputs.count(degree), 0u);
    } else {
      auto it = outputs.find(degree);
      ASSERT_NE(it, outputs.end()) << "degree " << degree;
      EXPECT_EQ(it->second, reference[degree]) << "degree " << degree;
    }
  }
}

TEST(PropagationTest, RecommenderSpreadsMonotonically) {
  const EngineFixture& f = Fixture();
  BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  RecommenderApp app(&setup.graph->encoding(), RecommenderParams{});
  PropagationConfig config;
  config.iterations = 3;
  PropagationRunner<RecommenderApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());

  uint64_t seeds = 0;
  uint64_t adopted = 0;
  for (uint32_t s : runner.states()) {
    seeds += s == 1;
    adopted += s != 0;
  }
  EXPECT_GT(seeds, 0u);
  EXPECT_GT(adopted, seeds) << "recommendation produced no adoption";
  // Adoption epochs are within the simulated range.
  for (uint32_t s : runner.states()) {
    EXPECT_LE(s, 4u);
  }
}

TEST(PropagationTest, RecommenderDeterministicAcrossLayouts) {
  const EngineFixture& f = Fixture();
  double checksums[2] = {0, 0};
  int i = 0;
  for (OptimizationLevel level :
       {OptimizationLevel::kO1, OptimizationLevel::kO4}) {
    BenchmarkSetup setup = f.Setup(level);
    RecommenderApp app(&setup.graph->encoding(), RecommenderParams{});
    PropagationConfig config = PropagationConfig::ForLevel(level);
    config.iterations = 3;
    PropagationRunner<RecommenderApp> runner(
        setup.graph, setup.placement, setup.topology, app, config);
    ASSERT_TRUE(runner.Run(setup.sim_options).ok());
    const VertexEncoding& enc = setup.graph->encoding();
    for (VertexId v = 0; v < runner.states().size(); ++v) {
      checksums[i] += static_cast<double>(runner.states()[v]) *
                      (1 + enc.ToOriginal(v) % 97);
    }
    ++i;
  }
  EXPECT_DOUBLE_EQ(checksums[0], checksums[1]);
}

// --------------------------------------------------------------- errors

TEST(PropagationTest, ValidatesInputs) {
  const EngineFixture& f = Fixture();
  BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationConfig config;
  config.iterations = 0;
  PropagationRunner<NetworkRankingApp> bad_iters(
      setup.graph, setup.placement, setup.topology, app, config);
  EXPECT_FALSE(bad_iters.Run(setup.sim_options).ok());

  config.iterations = 1;
  PropagationRunner<NetworkRankingApp> null_graph(
      nullptr, setup.placement, setup.topology, app, config);
  EXPECT_FALSE(null_graph.Run(setup.sim_options).ok());
}

TEST(PropagationTest, MemoryLimitTriggersRandomIoPenalty) {
  const EngineFixture& f = Fixture();
  BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationConfig fits;
  fits.iterations = 1;
  fits.memory_limit_bytes = 1ull << 40;
  PropagationConfig thrashes = fits;
  thrashes.memory_limit_bytes = 1;  // everything exceeds this

  PropagationRunner<NetworkRankingApp> fast(
      setup.graph, setup.placement, setup.topology, app, fits);
  PropagationRunner<NetworkRankingApp> slow(
      setup.graph, setup.placement, setup.topology, app, thrashes);
  auto fast_metrics = fast.Run(setup.sim_options);
  auto slow_metrics = slow.Run(setup.sim_options);
  ASSERT_TRUE(fast_metrics.ok());
  ASSERT_TRUE(slow_metrics.ok());
  // P2: partitions that outgrow memory pay the random-I/O penalty.
  EXPECT_GT(slow_metrics->response_time_s,
            fast_metrics->response_time_s * 2.0);
}

}  // namespace
}  // namespace surfer
