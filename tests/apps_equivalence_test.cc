#include <cmath>

#include <gtest/gtest.h>

#include "apps/benchmark_suite.h"
#include "tests/test_fixtures.h"

namespace surfer {
namespace {

using testing_fixtures::EngineFixture;
using testing_fixtures::MakeEngineFixture;

const EngineFixture& Fixture() {
  static const EngineFixture* fixture =
      new EngineFixture(MakeEngineFixture(1 << 11, 8, 55));
  return *fixture;
}

/// Every benchmark app must compute the same answer through propagation and
/// MapReduce — the two primitives are interchangeable implementations of
/// the same job (Section 3).
class AppEquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AppEquivalenceTest, PrimitivesAgree) {
  const BenchmarkApp* app = FindBenchmarkApp(GetParam());
  ASSERT_NE(app, nullptr);
  BenchmarkSetup setup = Fixture().Setup(OptimizationLevel::kO4);
  PropagationConfig config = PropagationConfig::ForLevel(OptimizationLevel::kO4);

  auto prop = app->run_propagation(setup, config);
  ASSERT_TRUE(prop.ok()) << prop.status().ToString();
  auto mr = app->run_mapreduce(setup);
  ASSERT_TRUE(mr.ok()) << mr.status().ToString();

  const double tolerance =
      1e-9 * std::max(1.0, std::abs(prop->checksum));
  EXPECT_NEAR(prop->checksum, mr->checksum, tolerance) << app->name;
  EXPECT_NE(prop->checksum, 0.0) << app->name << " computed nothing";
}

TEST_P(AppEquivalenceTest, OptimizationLevelsAgree) {
  const BenchmarkApp* app = FindBenchmarkApp(GetParam());
  ASSERT_NE(app, nullptr);
  double reference = 0.0;
  bool first = true;
  for (OptimizationLevel level :
       {OptimizationLevel::kO1, OptimizationLevel::kO2,
        OptimizationLevel::kO3, OptimizationLevel::kO4}) {
    BenchmarkSetup setup = Fixture().Setup(level);
    auto result =
        app->run_propagation(setup, PropagationConfig::ForLevel(level));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (first) {
      reference = result->checksum;
      first = false;
    } else {
      const double tolerance = 1e-9 * std::max(1.0, std::abs(reference));
      EXPECT_NEAR(result->checksum, reference, tolerance)
          << app->name << " at " << OptimizationLevelName(level);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppEquivalenceTest,
                         ::testing::Values("VDD", "RS", "NR", "RLG", "TC",
                                           "TFL"));

TEST(BenchmarkSuiteTest, RegistryComplete) {
  EXPECT_EQ(BenchmarkApps().size(), 6u);
  EXPECT_NE(FindBenchmarkApp("NR"), nullptr);
  EXPECT_EQ(FindBenchmarkApp("XYZ"), nullptr);
  for (const BenchmarkApp& app : BenchmarkApps()) {
    EXPECT_FALSE(app.full_name.empty());
    EXPECT_GE(app.default_iterations, 1);
  }
}

}  // namespace
}  // namespace surfer
