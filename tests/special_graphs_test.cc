// Apps and engines on hand-built degenerate graphs (chains, cycles, stars,
// disconnected pieces) plus seed-sweep property tests: the distributed
// results must match single-machine references on every input shape.

#include <gtest/gtest.h>

#include "apps/network_ranking.h"
#include "apps/reverse_link_graph.h"
#include "core/sim_scale.h"
#include "core/surfer.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "mapreduce/runner.h"
#include "propagation/runner.h"

namespace surfer {
namespace {

struct MiniCluster {
  Topology topology = MakeScaledT1(4);
  std::unique_ptr<SurferEngine> engine;
  BenchmarkSetup setup;

  explicit MiniCluster(const Graph& graph, uint32_t partitions = 4) {
    SurferOptions options;
    options.num_partitions = partitions;
    auto result = SurferEngine::Build(graph, topology, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    engine = std::move(result).value();
    setup = engine->MakeSetup(OptimizationLevel::kO4);
    setup.sim_options = MakeScaledSimOptions();
  }
};

std::vector<double> RunPageRank(const MiniCluster& cluster, VertexId n,
                                int iterations) {
  NetworkRankingApp app(n);
  PropagationConfig config;
  config.iterations = iterations;
  PropagationRunner<NetworkRankingApp> runner(
      cluster.setup.graph, cluster.setup.placement, cluster.setup.topology,
      app, config);
  EXPECT_TRUE(runner.Run(cluster.setup.sim_options).ok());
  std::vector<double> by_original(n);
  for (VertexId v = 0; v < n; ++v) {
    by_original[v] = runner.StateOfOriginal(v);
  }
  return by_original;
}

TEST(SpecialGraphsTest, PageRankOnDirectedCycle) {
  GraphBuilder builder(16);
  for (VertexId v = 0; v < 16; ++v) {
    ASSERT_TRUE(builder.AddEdge(v, (v + 1) % 16).ok());
  }
  const Graph g = std::move(builder).Build();
  MiniCluster cluster(g);
  const auto ranks = RunPageRank(cluster, 16, 8);
  for (double r : ranks) {
    EXPECT_NEAR(r, 1.0 / 16, 1e-12);  // symmetry: all equal, mass preserved
  }
}

TEST(SpecialGraphsTest, PageRankOnStar) {
  // Everyone points at the hub; the hub dangles (rank leaks, per the
  // paper's update rule).
  GraphBuilder builder(9);
  for (VertexId v = 1; v < 9; ++v) {
    ASSERT_TRUE(builder.AddEdge(v, 0).ok());
  }
  const Graph g = std::move(builder).Build();
  MiniCluster cluster(g);
  const auto ranks = RunPageRank(cluster, 9, 5);
  const auto reference = ReferencePageRank(g, 5);
  for (VertexId v = 0; v < 9; ++v) {
    EXPECT_NEAR(ranks[v], reference[v], 1e-12);
  }
  EXPECT_GT(ranks[0], ranks[1] * 5);
}

TEST(SpecialGraphsTest, PageRankOnDisconnectedPieces) {
  // Two cycles, no inter-edges: partitioning must still cover both, and
  // each piece keeps its own mass.
  GraphBuilder builder(12);
  for (VertexId v = 0; v < 6; ++v) {
    ASSERT_TRUE(builder.AddEdge(v, (v + 1) % 6).ok());
    ASSERT_TRUE(builder.AddEdge(6 + v, 6 + (v + 1) % 6).ok());
  }
  const Graph g = std::move(builder).Build();
  MiniCluster cluster(g);
  const auto ranks = RunPageRank(cluster, 12, 10);
  for (double r : ranks) {
    EXPECT_NEAR(r, 1.0 / 12, 1e-12);
  }
}

TEST(SpecialGraphsTest, ReverseLinkGraphOnChain) {
  GraphBuilder builder(10);
  for (VertexId v = 0; v + 1 < 10; ++v) {
    ASSERT_TRUE(builder.AddEdge(v, v + 1).ok());
  }
  const Graph g = std::move(builder).Build();
  MiniCluster cluster(g);
  ReverseLinkGraphApp app;
  PropagationRunner<ReverseLinkGraphApp> runner(
      cluster.setup.graph, cluster.setup.placement, cluster.setup.topology,
      app, PropagationConfig{});
  ASSERT_TRUE(runner.Run(cluster.setup.sim_options).ok());
  const VertexEncoding& enc = cluster.setup.graph->encoding();
  EXPECT_TRUE(runner.StateOfOriginal(0).empty());  // head has no in-edges
  for (VertexId v = 1; v < 10; ++v) {
    const auto& in = runner.StateOfOriginal(v);
    ASSERT_EQ(in.size(), 1u);
    EXPECT_EQ(enc.ToOriginal(in[0]), v - 1);
  }
}

TEST(SpecialGraphsTest, SingleVertexGraph) {
  GraphBuilder builder(2);  // two isolated vertices, 2 partitions
  const Graph g = std::move(builder).Build();
  SurferOptions options;
  options.num_partitions = 2;
  Topology topo = MakeScaledT1(2);
  auto engine = SurferEngine::Build(g, topo, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  BenchmarkSetup setup = (*engine)->MakeSetup(OptimizationLevel::kO4);
  setup.sim_options = MakeScaledSimOptions();
  NetworkRankingApp app(2);
  PropagationConfig config;
  PropagationRunner<NetworkRankingApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(runner.Run(setup.sim_options).ok());
  // No edges: ranks collapse to the jump term.
  for (double r : runner.states()) {
    EXPECT_NEAR(r, (1.0 - kDefaultDamping) / 2.0, 1e-15);
  }
}

// ------------------------------------------------- seed-sweep properties

class SeedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweepTest, PropagationMatchesReferenceAcrossSeeds) {
  auto graph = GenerateSocialGraph({.num_vertices = 1 << 10,
                                    .avg_out_degree = 6.0,
                                    .num_communities = 4,
                                    .seed = GetParam()});
  ASSERT_TRUE(graph.ok());
  MiniCluster cluster(*graph, 8);
  const auto ranks = RunPageRank(cluster, graph->num_vertices(), 3);
  const auto reference = ReferencePageRank(*graph, 3);
  for (VertexId v = 0; v < graph->num_vertices(); ++v) {
    ASSERT_NEAR(ranks[v], reference[v], 1e-12) << "seed " << GetParam();
  }
}

TEST_P(SeedSweepTest, MapReduceMatchesPropagationAcrossSeeds) {
  auto graph = GenerateSocialGraph({.num_vertices = 1 << 10,
                                    .avg_out_degree = 6.0,
                                    .num_communities = 4,
                                    .seed = GetParam() * 31});
  ASSERT_TRUE(graph.ok());
  MiniCluster cluster(*graph, 8);
  const auto prop = RunPageRank(cluster, graph->num_vertices(), 2);
  JobSimulation sim(cluster.setup.topology, cluster.setup.sim_options);
  auto mr = RunNetworkRankingMapReduce(*cluster.setup.graph,
                                       *cluster.setup.placement,
                                       *cluster.setup.topology, &sim, 2);
  ASSERT_TRUE(mr.ok());
  const VertexEncoding& enc = cluster.setup.graph->encoding();
  for (VertexId v = 0; v < graph->num_vertices(); ++v) {
    ASSERT_NEAR(prop[v], (*mr)[enc.ToEncoded(v)], 1e-12)
        << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

// ------------------------------------- combiner window is semantics-free

TEST(CombinerWindowTest, OutputsIdenticalAcrossWindowSizes) {
  auto graph = GenerateSocialGraph({.num_vertices = 1 << 10,
                                    .avg_out_degree = 6.0,
                                    .num_communities = 4,
                                    .seed = 77});
  ASSERT_TRUE(graph.ok());
  MiniCluster cluster(*graph, 8);
  const VertexId n = graph->num_vertices();
  std::vector<double> ranks(n, 1.0 / n);

  std::map<VertexId, double> reference_outputs;
  bool first = true;
  double small_network = 0.0;
  double large_network = 0.0;
  for (size_t window : {1u, 16u, 1u << 20}) {
    NetworkRankingMrApp app(&ranks, n);
    MapReduceOptions options;
    options.combiner_window_entries = window;
    MapReduceRunner<NetworkRankingMrApp> runner(
        cluster.setup.graph, cluster.setup.placement, cluster.setup.topology,
        app, options);
    auto metrics = runner.Run(cluster.setup.sim_options);
    ASSERT_TRUE(metrics.ok());
    if (window == 1u) {
      small_network = metrics->network_bytes;
    }
    if (window == (1u << 20)) {
      large_network = metrics->network_bytes;
    }
    if (first) {
      for (const auto& [k, v] : runner.outputs()) {
        reference_outputs[k] = v;
      }
      first = false;
    } else {
      for (const auto& [k, v] : runner.outputs()) {
        ASSERT_NEAR(v, reference_outputs.at(k), 1e-12) << "window " << window;
      }
    }
  }
  // Bigger windows combine more: network monotone non-increasing.
  EXPECT_LT(large_network, small_network);
}

}  // namespace
}  // namespace surfer
