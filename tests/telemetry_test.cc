// Tests of the telemetry flight recorder (obs/telemetry.h) and of the
// MetricsRegistry gauge contract it shares a concurrency model with: hot
// paths publish through relaxed atomics, observers read them from other
// threads without tearing or locks.

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>
#include <unistd.h>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace surfer {
namespace {

// ------------------------------------------------ MetricsRegistry gauges

TEST(MetricsGaugeConcurrencyTest, ParallelSetAndAddAreNotTorn) {
  obs::MetricsRegistry registry;
  obs::Gauge& shared = registry.GaugeRef("shared_adds");
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &shared, t] {
      // Each thread also resolves its own gauge by name, exercising the
      // registry's map under concurrent insertion.
      obs::Gauge& own =
          registry.GaugeRef("own", {{"thread", std::to_string(t)}});
      for (int i = 0; i < kAddsPerThread; ++i) {
        shared.Add(1.0);
        own.Set(static_cast<double>(i));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  // fetch_add on an atomic<double> loses no increments.
  EXPECT_DOUBLE_EQ(shared.value(), kThreads * kAddsPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_DOUBLE_EQ(
        registry.GaugeRef("own", {{"thread", std::to_string(t)}}).value(),
        kAddsPerThread - 1);
  }
}

TEST(MetricsGaugeConcurrencyTest, SnapshotWhileWritersRun) {
  obs::MetricsRegistry registry;
  obs::Gauge& gauge = registry.GaugeRef("live");
  std::atomic<bool> stop{false};
  std::thread writer([&gauge, &stop] {
    double v = 0.0;
    while (!stop.load(std::memory_order_relaxed)) {
      gauge.Set(v);
      v += 1.0;
    }
  });
  // Concurrent snapshots must observe *some* written value — relaxed
  // atomics guarantee no torn doubles — and never crash or deadlock.
  for (int i = 0; i < 100; ++i) {
    for (const obs::MetricSample& sample : registry.Snapshot()) {
      EXPECT_GE(sample.value, 0.0);
      EXPECT_EQ(sample.value, std::floor(sample.value));
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

// ------------------------------------------------------- flight recorder

TEST(TelemetryRecorderTest, DisabledRecorderIsInert) {
  obs::TelemetryOptions options;  // enabled defaults to false
  obs::TelemetryRecorder recorder(options);
  int calls = 0;
  recorder.RegisterGauge("g", "items", [&calls] {
    ++calls;
    return 1.0;
  });
  recorder.Start();
  EXPECT_FALSE(recorder.running());
  recorder.SampleNow();
  recorder.Stop();
  EXPECT_EQ(calls, 0);  // the provider is never invoked
  EXPECT_EQ(recorder.samples_taken(), 0u);
  const std::vector<obs::TelemetrySeries> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_TRUE(snapshot[0].samples.empty());
}

TEST(TelemetryRecorderTest, RingKeepsNewestWindowAndCountsDrops) {
  obs::TelemetryOptions options;
  options.enabled = true;
  options.ring_capacity = 4;
  obs::TelemetryRecorder recorder(options);
  double value = 0.0;
  recorder.RegisterGauge("g", "items", [&value] { return value; });
  for (int i = 0; i < 10; ++i) {
    value = static_cast<double>(i);
    recorder.SampleNow();
  }
  EXPECT_EQ(recorder.samples_taken(), 10u);
  EXPECT_EQ(recorder.total_dropped(), 6u);
  const std::vector<obs::TelemetrySeries> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  const obs::TelemetrySeries& series = snapshot[0];
  EXPECT_EQ(series.samples_taken, 10u);
  EXPECT_EQ(series.samples_dropped, 6u);
  // Flight-recorder semantics: the newest window survives, oldest first.
  ASSERT_EQ(series.samples.size(), 4u);
  EXPECT_DOUBLE_EQ(series.samples[0].value, 6.0);
  EXPECT_DOUBLE_EQ(series.samples[3].value, 9.0);
  for (size_t i = 1; i < series.samples.size(); ++i) {
    EXPECT_GE(series.samples[i].t_us, series.samples[i - 1].t_us);
  }
}

TEST(TelemetryRecorderTest, PeriodMultipleSubsamples) {
  obs::TelemetryOptions options;
  options.enabled = true;
  obs::TelemetryRecorder recorder(options);
  recorder.RegisterGauge("every_tick", "items", [] { return 1.0; });
  recorder.RegisterGauge("every_fourth", "items", [] { return 2.0; },
                         /*ceiling=*/0.0, /*period_multiple=*/4);
  for (int i = 0; i < 9; ++i) {
    recorder.SampleNow();
  }
  const std::vector<obs::TelemetrySeries> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].samples.size(), 9u);
  EXPECT_EQ(snapshot[1].samples.size(), 3u);  // ticks 0, 4, 8
}

TEST(TelemetryRecorderTest, BackgroundSamplerTicksAndStops) {
  obs::TelemetryOptions options;
  options.enabled = true;
  options.period_seconds = 0.0005;
  obs::TelemetryRecorder recorder(options);
  std::atomic<uint64_t> gauge{42};
  recorder.RegisterGauge("bg", "items", [&gauge] {
    return static_cast<double>(gauge.load(std::memory_order_relaxed));
  });
  recorder.Start();
  EXPECT_TRUE(recorder.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  recorder.Stop();
  EXPECT_FALSE(recorder.running());
  const uint64_t ticks = recorder.samples_taken();
  EXPECT_GE(ticks, 2u);  // at least the first and the final stop-edge tick
  recorder.Stop();  // idempotent
  EXPECT_EQ(recorder.samples_taken(), ticks);
  const std::vector<obs::TelemetrySeries> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  for (const obs::TelemetrySample& sample : snapshot[0].samples) {
    EXPECT_DOUBLE_EQ(sample.value, 42.0);
    EXPECT_GE(sample.t_us, 0.0);
  }
}

TEST(TelemetryRecorderTest, SummaryStatisticsAreExact) {
  std::vector<obs::TelemetrySample> samples;
  for (int i = 1; i <= 100; ++i) {
    samples.push_back({static_cast<double>(i), static_cast<double>(i)});
  }
  const obs::TelemetrySeriesSummary summary =
      obs::SummarizeTelemetrySeries(samples);
  EXPECT_DOUBLE_EQ(summary.min, 1.0);
  EXPECT_DOUBLE_EQ(summary.max, 100.0);
  EXPECT_DOUBLE_EQ(summary.mean, 50.5);
  EXPECT_DOUBLE_EQ(summary.p99, 100.0);  // nearest-rank over 100 values
  EXPECT_DOUBLE_EQ(summary.peak_t_us, 100.0);

  // The peak timestamp is the *first* maximal sample.
  std::vector<obs::TelemetrySample> plateau = {
      {1.0, 5.0}, {2.0, 9.0}, {3.0, 9.0}, {4.0, 2.0}};
  EXPECT_DOUBLE_EQ(obs::SummarizeTelemetrySeries(plateau).peak_t_us, 2.0);

  EXPECT_DOUBLE_EQ(obs::SummarizeTelemetrySeries({}).mean, 0.0);
}

TEST(TelemetryRecorderTest, ExportCounterEventsMapsOntoTracerClock) {
  if (!obs::Tracer::CompiledIn()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  obs::TelemetryOptions options;
  options.enabled = true;
  obs::TelemetryRecorder recorder(options);
  double value = 0.0;
  recorder.RegisterGauge("active", "items", [&value] { return value; });
  recorder.RegisterGauge("idle", "items", [] { return 0.0; });
  for (int i = 0; i < 3; ++i) {
    value = static_cast<double>(i + 1);
    recorder.SampleNow();
  }

  obs::Tracer tracer;
  constexpr double kOffsetUs = 1000.0;
  recorder.ExportCounterEvents(&tracer, kOffsetUs);
  const std::vector<obs::TraceEvent> events = tracer.Events();
  // The flat-zero series is skipped; the active one ships every sample.
  ASSERT_EQ(events.size(), 3u);
  for (const obs::TraceEvent& event : events) {
    EXPECT_EQ(event.phase, 'C');
    EXPECT_EQ(event.name, "active");
    EXPECT_EQ(event.category, "telemetry");
    EXPECT_GE(event.ts_us, kOffsetUs);
    EXPECT_GT(event.counter_value, 0.0);
  }
}

TEST(TelemetryRecorderTest, ReadMemoryUsageReportsResidentSet) {
  const obs::MemoryUsage usage = obs::ReadMemoryUsage();
  // On Linux both fields are populated and the high-water mark bounds the
  // current resident set. (available=false would mean /proc is unreadable,
  // which the API allows — but the CI hosts this test gates on are Linux.)
  EXPECT_TRUE(usage.available);
  EXPECT_GT(usage.rss_bytes, 0u);
  EXPECT_GE(usage.peak_rss_bytes, usage.rss_bytes);
}

TEST(TelemetryRecorderTest, MemoryProbeFailsExplicitlyNotWithZeros) {
  // A missing status file is an unavailable probe, not a zero measurement.
  const obs::MemoryUsage missing = obs::ReadMemoryUsageFrom(
      "/nonexistent/surfer_no_such_proc_status");
  EXPECT_FALSE(missing.available);
  EXPECT_EQ(missing.rss_bytes, 0u);
  EXPECT_EQ(missing.peak_rss_bytes, 0u);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("surfer_memprobe_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  // A file with no Vm lines (a non-Linux /proc shape) is also unavailable.
  const std::filesystem::path empty_shape = dir / "no_vm_lines";
  {
    std::ofstream out(empty_shape);
    out << "Name:\tsurfer\nState:\tR (running)\n";
  }
  const obs::MemoryUsage unparsed =
      obs::ReadMemoryUsageFrom(empty_shape.string());
  EXPECT_FALSE(unparsed.available);
  EXPECT_EQ(unparsed.rss_bytes, 0u);

  // A well-formed status file parses both counters (kB -> bytes).
  const std::filesystem::path shaped = dir / "vm_lines";
  {
    std::ofstream out(shaped);
    out << "Name:\tsurfer\nVmHWM:\t    2048 kB\nVmRSS:\t    1024 kB\n";
  }
  const obs::MemoryUsage parsed = obs::ReadMemoryUsageFrom(shaped.string());
  EXPECT_TRUE(parsed.available);
  EXPECT_EQ(parsed.rss_bytes, 1024u * 1024u);
  EXPECT_EQ(parsed.peak_rss_bytes, 2048u * 1024u);
  std::filesystem::remove_all(dir);
}

TEST(TelemetryRecorderTest, ConcurrentSnapshotsWhileSamplerRuns) {
  // Snapshot/ToJson are documented as safe while the sampler is live: they
  // synchronize on the recorder mutex. Hammer them against a fast sampler.
  obs::TelemetryOptions options;
  options.enabled = true;
  options.period_seconds = 0.0002;
  options.ring_capacity = 16;
  obs::TelemetryRecorder recorder(options);
  std::atomic<uint64_t> gauge{0};
  recorder.RegisterGauge("hot", "items", [&gauge] {
    return static_cast<double>(gauge.load(std::memory_order_relaxed));
  });
  recorder.Start();
  std::atomic<bool> stop{false};
  std::thread mutator([&gauge, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      gauge.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int i = 0; i < 50; ++i) {
    const std::vector<obs::TelemetrySeries> snapshot = recorder.Snapshot();
    ASSERT_EQ(snapshot.size(), 1u);
    (void)recorder.ToJson();
  }
  stop.store(true, std::memory_order_relaxed);
  mutator.join();
  recorder.Stop();
  EXPECT_GT(recorder.samples_taken(), 0u);
}

}  // namespace
}  // namespace surfer
