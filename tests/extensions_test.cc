// Tests for behaviours beyond the paper's core algorithms: the
// per-partition cascade depth extension, multi-failure scheduling, and the
// interplay of replica routing with placement.

#include <gtest/gtest.h>

#include "apps/network_ranking.h"
#include "graph/algorithms.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "propagation/runner.h"
#include "tests/test_fixtures.h"

namespace surfer {
namespace {

using testing_fixtures::EngineFixture;
using testing_fixtures::MakeEngineFixture;

const EngineFixture& Fixture() {
  static const EngineFixture* fixture =
      new EngineFixture(MakeEngineFixture(1 << 12, 8, 101));
  return *fixture;
}

TEST(CascadeExtensionTest, PerPartitionDepthElidesAtLeastAsMuch) {
  const EngineFixture& f = Fixture();
  BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  NetworkRankingApp app(f.graph.num_vertices());

  auto run = [&](bool per_partition) {
    PropagationConfig config;
    config.iterations = 6;
    config.cascaded = true;
    config.cascade_per_partition_depth = per_partition;
    PropagationRunner<NetworkRankingApp> runner(
        setup.graph, setup.placement, setup.topology, app, config);
    auto metrics = runner.Run(setup.sim_options);
    EXPECT_TRUE(metrics.ok());
    return std::pair(metrics->disk_bytes, runner.states());
  };

  const auto [dmin_disk, dmin_states] = run(false);
  const auto [per_partition_disk, per_partition_states] = run(true);

  // Both variants elide relative to the non-cascaded baseline. (Neither
  // dominates the other in general: a short d_min phase re-skips shallow
  // vertices more often, a long per-partition phase skips deep vertices
  // longer — which wins depends on the level distribution.)
  PropagationConfig naive;
  naive.iterations = 6;
  PropagationRunner<NetworkRankingApp> naive_runner(
      setup.graph, setup.placement, setup.topology, app, naive);
  auto naive_metrics = naive_runner.Run(setup.sim_options);
  ASSERT_TRUE(naive_metrics.ok());
  EXPECT_LE(dmin_disk, naive_metrics->disk_bytes);
  EXPECT_LE(per_partition_disk, naive_metrics->disk_bytes);

  // Results identical: elision is an accounting property.
  ASSERT_EQ(dmin_states.size(), per_partition_states.size());
  for (size_t v = 0; v < dmin_states.size(); ++v) {
    EXPECT_DOUBLE_EQ(dmin_states[v], per_partition_states[v]);
  }
}

TEST(MultiFaultTest, SequentialFailuresInOneRun) {
  const EngineFixture& f = Fixture();
  BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  JobSimulation sim(setup.topology, setup.sim_options);
  sim.InjectFault({.machine = 2, .fail_at_s = 1.0});
  sim.InjectFault({.machine = 5, .fail_at_s = 3.0});

  NetworkRankingApp app(f.graph.num_vertices());
  PropagationConfig config;
  config.iterations = 3;
  PropagationRunner<NetworkRankingApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(runner.RunWith(&sim).ok());
  EXPECT_FALSE(sim.IsAlive(2));
  EXPECT_FALSE(sim.IsAlive(5));

  // Exact results despite two machine losses.
  const auto reference = ReferencePageRank(f.graph, 3);
  for (VertexId v = 0; v < f.graph.num_vertices(); ++v) {
    ASSERT_NEAR(runner.StateOfOriginal(v), reference[v], 1e-12);
  }
}

TEST(MultiFaultTest, FaultsSlowTheRunDown) {
  const EngineFixture& f = Fixture();
  BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  NetworkRankingApp app(f.graph.num_vertices());
  PropagationConfig config;
  config.iterations = 3;

  auto response = [&](int faults) {
    JobSimulation sim(setup.topology, setup.sim_options);
    for (int i = 0; i < faults; ++i) {
      sim.InjectFault({.machine = static_cast<MachineId>(2 + i),
                       .fail_at_s = 1.0 + i});
    }
    PropagationRunner<NetworkRankingApp> runner(
        setup.graph, setup.placement, setup.topology, app, config);
    EXPECT_TRUE(runner.RunWith(&sim).ok());
    return sim.metrics().response_time_s;
  };

  const double clean = response(0);
  const double one = response(1);
  const double two = response(2);
  EXPECT_GE(one, clean);
  EXPECT_GE(two, one * 0.999);
  // Recovery overhead stays bounded (replicas + rebalancing absorb it).
  EXPECT_LT(two, clean * 2.0);
}

TEST(ReplicaRoutingTest, SchedulerUsesReplicasWhenPrimarySlow) {
  // Two machines: all four tasks prefer machine 0 but can run on machine 1.
  // The balanced scheduler must split them.
  const Topology topo = Topology::T1(2);
  JobSimulationOptions options;
  options.cost.task_overhead_s = 0.0;
  JobSimulation sim(&topo, options);
  const double disk_bw = topo.machine(0).disk_bytes_per_sec;
  std::vector<SimTask> tasks;
  for (int i = 0; i < 4; ++i) {
    SimTask task;
    task.candidate_machines = {0, 1};
    task.cost.disk_read_bytes = disk_bw;  // 1 second each
    tasks.push_back(task);
  }
  auto stage = sim.RunStage("balance", tasks);
  ASSERT_TRUE(stage.ok());
  EXPECT_NEAR(stage->duration_s, 2.0, 1e-9);  // 2 + 2, not 4 + 0
}

TEST(ReplicaRoutingTest, PinnedTasksStaySerial) {
  const Topology topo = Topology::T1(2);
  JobSimulationOptions options;
  options.cost.task_overhead_s = 0.0;
  JobSimulation sim(&topo, options);
  const double disk_bw = topo.machine(0).disk_bytes_per_sec;
  std::vector<SimTask> tasks;
  for (int i = 0; i < 4; ++i) {
    SimTask task;
    task.candidate_machines = {0};  // no replicas
    task.cost.disk_read_bytes = disk_bw;
    tasks.push_back(task);
  }
  auto stage = sim.RunStage("pinned", tasks);
  ASSERT_TRUE(stage.ok());
  EXPECT_NEAR(stage->duration_s, 4.0, 1e-9);
}

TEST(FaultObservabilityTest, TraceCarriesFaultInstantsAndRetriedTasks) {
  const EngineFixture& f = Fixture();
  obs::Tracer tracer;
  obs::MetricsRegistry registry;
  BenchmarkSetup setup = f.Setup(OptimizationLevel::kO4);
  setup.sim_options.tracer = &tracer;
  setup.sim_options.metrics = &registry;
  JobSimulation sim(setup.topology, setup.sim_options);
  sim.InjectFault({.machine = 2, .fail_at_s = 1.0});
  sim.InjectFault({.machine = 5, .fail_at_s = 3.0});

  NetworkRankingApp app(f.graph.num_vertices());
  PropagationConfig config;
  config.iterations = 3;
  config.tracer = &tracer;
  config.metrics = &registry;
  PropagationRunner<NetworkRankingApp> runner(
      setup.graph, setup.placement, setup.topology, app, config);
  ASSERT_TRUE(runner.RunWith(&sim).ok());

  EXPECT_EQ(registry.CounterRef("sim_machine_failures_total").value(), 2u);
  EXPECT_GT(registry.CounterRef("sim_tasks_reexecuted_total").value(), 0u);
  size_t reexecuted = 0;
  for (const StageMetrics& stage : sim.metrics().stages) {
    reexecuted += stage.num_reexecuted_tasks;
  }
  EXPECT_EQ(registry.CounterRef("sim_tasks_reexecuted_total").value(),
            reexecuted);

  if (obs::Tracer::CompiledIn()) {
    size_t failures = 0;
    size_t detections = 0;
    size_t retried_spans = 0;
    for (const obs::TraceEvent& event : tracer.Events()) {
      if (event.name == "machine_failed") {
        ++failures;
        EXPECT_EQ(event.phase, 'i');
        EXPECT_EQ(event.clock, obs::TraceClock::kSimulated);
      } else if (event.name == "fault_detected") {
        ++detections;
      } else if (event.phase == 'X') {
        for (const auto& [key, value] : event.args) {
          if (key == "retry" && value == "true") {
            ++retried_spans;
          }
        }
      }
    }
    EXPECT_EQ(failures, 2u);
    EXPECT_EQ(detections, 2u);
    EXPECT_EQ(retried_spans, reexecuted);
  }
}

}  // namespace
}  // namespace surfer
