// Operational fault drill: persist a partitioned graph to a store directory
// (the durable format a real deployment would replicate), reload it, then
// run PageRank while killing slave machines mid-job — once survivably, once
// beyond the replication factor — and report how the job manager responds.
//
//   $ ./build/examples/fault_drill

#include <cstdio>
#include <filesystem>

#include "apps/network_ranking.h"
#include "core/sim_scale.h"
#include "core/surfer.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "storage/partition_store.h"

int main() {
  using namespace surfer;

  SocialGraphOptions graph_options;
  graph_options.num_vertices = 1 << 14;
  graph_options.num_communities = 16;
  auto graph_result = GenerateSocialGraph(graph_options);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "graph: %s\n",
                 graph_result.status().ToString().c_str());
    return 1;
  }
  const Graph& graph = *graph_result;

  Topology topology = MakeScaledT2(16, 4, 1);
  SurferOptions options;
  options.num_partitions = 32;
  auto engine_result = SurferEngine::Build(graph, topology, options);
  if (!engine_result.ok()) {
    std::fprintf(stderr, "engine: %s\n",
                 engine_result.status().ToString().c_str());
    return 1;
  }
  SurferEngine& engine = **engine_result;
  std::printf("graph: %s\n", ComputeGraphStats(graph).ToString().c_str());
  std::printf("cluster: %s, %u machines, %u partitions, 3 replicas each\n",
              topology.Name().c_str(), topology.num_machines(),
              engine.num_partitions());

  // 1. Persist and reload through the durable store.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "surfer_fault_drill").string();
  std::filesystem::remove_all(dir);
  Status stored = PartitionStore::Write(engine.partitioned_graph(),
                                        engine.bandwidth_aware_placement(),
                                        dir);
  if (!stored.ok()) {
    std::fprintf(stderr, "store: %s\n", stored.ToString().c_str());
    return 1;
  }
  auto reloaded = PartitionStore::Load(dir);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "reload: %s\n", reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("store round trip: %u partitions, %llu edges restored from %s\n",
              reloaded->graph.num_partitions(),
              static_cast<unsigned long long>(
                  reloaded->graph.encoded_graph().num_edges()),
              dir.c_str());

  // 2. Run PageRank on the *reloaded* data with escalating failures.
  auto run = [&](std::vector<FaultPlan> faults, const char* label) {
    BenchmarkSetup setup;
    setup.graph = &reloaded->graph;
    setup.placement = &reloaded->placement;
    setup.topology = &topology;
    setup.sim_options = MakeScaledSimOptions();
    EngineOptions engine_options;
    engine_options.propagation.iterations = 3;
    engine_options.sim_faults = std::move(faults);
    auto session = Engine::Open(setup, engine_options);
    if (!session.ok()) {
      std::printf("%-28s -> %s\n", label, session.status().ToString().c_str());
      return session.status();
    }
    auto result = session->Run(NetworkRankingApp(graph.num_vertices()));
    if (!result.ok()) {
      std::printf("%-28s -> %s\n", label, result.status().ToString().c_str());
      return result.status();
    }
    size_t reexecuted = 0;
    for (const StageMetrics& stage : result->metrics->stages) {
      reexecuted += stage.num_reexecuted_tasks;
    }
    std::printf("%-28s -> %s  (re-executed tasks: %zu)\n", label,
                result->metrics->Summary().c_str(), reexecuted);
    return Status::OK();
  };

  std::printf("\n--- drill ---\n");
  run({}, "baseline, no failures");
  run({{.machine = 3, .fail_at_s = 5.0}}, "one slave killed");
  run({{.machine = 3, .fail_at_s = 5.0}, {.machine = 7, .fail_at_s = 9.0}},
      "two slaves killed");
  // Beyond the replication factor: kill every replica holder of partition 0.
  std::vector<FaultPlan> catastrophic;
  double when = 2.0;
  for (MachineId m : reloaded->placement.replicas[0]) {
    if (m != kInvalidMachine) {
      catastrophic.push_back({.machine = m, .fail_at_s = when});
      when += 1.0;
    }
  }
  const Status lost =
      run(catastrophic, "all replicas of partition 0 killed");
  if (!lost.ok()) {
    std::printf(
        "\nAs expected, losing every replica of a partition is unrecoverable "
        "(Unavailable); anything\nless is absorbed by re-execution on "
        "replica holders, as in the paper's Figure 10 experiment.\n");
  }
  std::filesystem::remove_all(dir);
  return lost.ok() ? 1 : 0;
}
