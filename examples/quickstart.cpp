// Quickstart: build a social graph, partition it with Surfer, and run
// PageRank through both primitives on a simulated 32-machine cloud.
//
//   $ ./build/examples/quickstart
//
// This walks the whole public API surface: generators -> SurferEngine
// (partitioning + placement) -> propagation and MapReduce runners ->
// metrics.

#include <cstdio>

#include "apps/benchmark_suite.h"
#include "apps/network_ranking.h"
#include "cluster/topology.h"
#include "common/units.h"
#include "core/engine.h"
#include "core/sim_scale.h"
#include "core/surfer.h"
#include "serve/graph_service.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

int main() {
  using namespace surfer;

  // 1. A scaled-down stand-in for the MSN social snapshot (Appendix F.1's
  //    synthetic recipe: small-world communities stitched by rewired edges).
  SocialGraphOptions graph_options;
  graph_options.num_vertices = 1 << 15;
  graph_options.avg_out_degree = 12.0;
  graph_options.num_communities = 16;
  auto graph_result = GenerateSocialGraph(graph_options);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "graph generation failed: %s\n",
                 graph_result.status().ToString().c_str());
    return 1;
  }
  const Graph& graph = *graph_result;
  std::printf("graph: %s\n", ComputeGraphStats(graph).ToString().c_str());

  // 2. A 32-machine cluster with the paper's default tree topology T2(4,2).
  // Hardware is scaled down by the same factor as the data so byte-volume
  // costs dominate fixed overheads, as on the paper's real cluster.
  Topology topology = MakeScaledT2(/*machines=*/32, /*pods=*/4, /*levels=*/2);
  std::printf("cluster: %u machines, topology %s\n", topology.num_machines(),
              topology.Name().c_str());

  // 3. Partition + place the graph (bandwidth-aware and baseline layouts).
  SurferOptions options;
  options.num_partitions = 64;
  auto engine_result = SurferEngine::Build(graph, topology, options);
  if (!engine_result.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 engine_result.status().ToString().c_str());
    return 1;
  }
  SurferEngine& engine = **engine_result;
  std::printf("partitioning: %s\n", engine.quality().ToString().c_str());
  std::printf("inner vertex ratio: %.3f\n",
              engine.partitioned_graph().InnerVertexRatio());

  // 4. PageRank via propagation (three iterations, all optimizations on).
  //    The tracer and metrics registry observe the run: wall-clock compute
  //    spans, simulated stage/task spans, and message-routing counters.
  obs::Tracer tracer;
  obs::MetricsRegistry metrics_registry;
  BenchmarkSetup setup = engine.MakeSetup(OptimizationLevel::kO4);
  setup.sim_options = MakeScaledSimOptions();
  setup.sim_options.tracer = &tracer;
  setup.sim_options.metrics = &metrics_registry;
  EngineOptions engine_options;
  engine_options.propagation.iterations = 3;
  engine_options.propagation.tracer = &tracer;
  engine_options.propagation.metrics = &metrics_registry;
  auto session = Engine::Open(setup, engine_options);
  if (!session.ok()) {
    std::fprintf(stderr, "session open failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  auto run = session->Run(NetworkRankingApp(graph.num_vertices()));
  if (!run.ok()) {
    std::fprintf(stderr, "propagation failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const RunMetrics& metrics = *run->metrics;
  std::printf("propagation NR:  %s\n", metrics.Summary().c_str());

  // Sanity: compare with the single-machine reference PageRank.
  const auto reference = ReferencePageRank(graph, 3);
  double max_err = 0.0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const double err = reference[v] - run->StateOfOriginal(v);
    max_err = std::max(max_err, err < 0 ? -err : err);
  }
  std::printf("max |surfer - reference| rank error: %.3e\n", max_err);

  // 4b. The same job on the concurrent runtime: real threads exchanging
  //     pooled wire batches. Bit-identical states, measured statistics.
  EngineOptions runtime_options;
  runtime_options.engine = EngineKind::kConcurrent;
  runtime_options.propagation.iterations = 3;
  auto runtime_session = Engine::Open(setup.graph, setup.placement,
                                      setup.topology, runtime_options);
  if (!runtime_session.ok()) {
    std::fprintf(stderr, "runtime session open failed: %s\n",
                 runtime_session.status().ToString().c_str());
    return 1;
  }
  auto concurrent =
      runtime_session->Run(NetworkRankingApp(graph.num_vertices()));
  if (!concurrent.ok()) {
    std::fprintf(stderr, "runtime failed: %s\n",
                 concurrent.status().ToString().c_str());
    return 1;
  }
  const auto& rt = *concurrent->runtime_stats;
  std::printf(
      "runtime     NR:  %u workers, %.3f s wall, %llu msgs in %llu wire "
      "batches (%.0f%% mean fill, %llu merged on the wire)\n",
      rt.num_workers, rt.wall_seconds,
      static_cast<unsigned long long>(rt.messages_sent),
      static_cast<unsigned long long>(rt.wire_batches_sent),
      100.0 * rt.batch_fill.Mean(),
      static_cast<unsigned long long>(rt.wire_messages_combined));
  bool identical = concurrent->states.size() == run->states.size();
  for (VertexId v = 0; identical && v < concurrent->states.size(); ++v) {
    identical = concurrent->states[v] == run->states[v];
  }
  std::printf("engines bit-identical: %s\n", identical ? "yes" : "NO");

  // 5. The same job through the MapReduce primitive, for comparison.
  JobSimulation sim(setup.topology, setup.sim_options);
  auto mr_ranks = RunNetworkRankingMapReduce(
      *setup.graph, *setup.placement, *setup.topology, &sim, 3);
  if (!mr_ranks.ok()) {
    std::fprintf(stderr, "mapreduce failed: %s\n",
                 mr_ranks.status().ToString().c_str());
    return 1;
  }
  std::printf("mapreduce  NR:  %s\n", sim.metrics().Summary().c_str());
  std::printf(
      "propagation speedup: %.2fx response, %.1f%% less network I/O\n",
      sim.metrics().response_time_s / metrics.response_time_s,
      100.0 * (1.0 - metrics.network_bytes / sim.metrics().network_bytes));

  // 6. What the observability layer saw during the propagation run.
  std::printf("\nobservability (%zu trace events%s):\n", tracer.num_events(),
              obs::Tracer::CompiledIn() ? "" : "; tracing compiled out");
  const auto spans = tracer.SpanSummary();
  for (size_t i = 0; i < spans.size() && i < 5; ++i) {
    std::printf("  span %-24s x%-4llu total %8.3f s (%s clock)\n",
                spans[i].name.c_str(),
                static_cast<unsigned long long>(spans[i].count),
                spans[i].total_us * 1e-6,
                spans[i].clock == obs::TraceClock::kSimulated ? "simulated"
                                                              : "wall");
  }
  for (const auto& sample : metrics_registry.Snapshot()) {
    if (sample.kind == obs::MetricSample::Kind::kCounter &&
        sample.name.rfind("propagation_messages_", 0) == 0) {
      std::printf("  counter %-38s %llu\n", sample.name.c_str(),
                  static_cast<unsigned long long>(sample.value));
    }
  }

  // 7. The long-lived serving plane: Engine::Serve precomputes NetworkRanking
  //    scores with one batch pass, then answers point queries (k-hop
  //    neighborhoods, cached ranks) from a worker pool at interactive
  //    latency, shedding load with kResourceExhausted when the admission
  //    window fills instead of queueing unboundedly.
  serve::ServeOptions serve_options;
  serve_options.num_workers = 2;
  auto service = session->Serve(serve_options);
  if (!service.ok()) {
    std::fprintf(stderr, "serve open failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  // Query from a hub (the max-out-degree vertex) so the neighborhood is
  // interesting; a sink's 2-hop set is just itself.
  VertexId hub = 0;
  for (VertexId v = 1; v < graph.num_vertices(); ++v) {
    if (graph.OutDegree(v) > graph.OutDegree(hub)) {
      hub = v;
    }
  }
  auto hop = (*service)->KHop(hub, /*k=*/2).get();
  auto rank = (*service)->Rank(hub).get();
  auto hop_again = (*service)->KHop(hub, /*k=*/2).get();
  if (hop.ok() && rank.ok() && hop_again.ok()) {
    std::printf(
        "\nserving: |2-hop(%u)| = %zu vertices, rank(%u) = %.3e, repeat "
        "query from cache: %s\n",
        hub, hop->vertices.size(), hub, rank->rank,
        hop_again->from_cache ? "yes" : "NO");
  }
  const serve::ServiceStats sstats = (*service)->stats();
  std::printf("serving: %llu answered, %llu cache hits, p99 %.0f us\n",
              static_cast<unsigned long long>(sstats.completed),
              static_cast<unsigned long long>(sstats.cache_hits),
              sstats.latency_us.Percentile(99.0));
  return 0;
}
