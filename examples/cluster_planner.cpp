// Cluster planning: a cloud operator's view of Surfer. Given a data graph
// and a menu of cluster topologies, estimate (a) how long partitioning will
// take under the bandwidth-aware algorithm vs a bandwidth-oblivious one
// (the Table 1 model), (b) what partition count the memory rule picks and
// the resulting partition quality, and (c) the PageRank response time each
// configuration would deliver — then recommend a configuration.
//
//   $ ./build/examples/cluster_planner

#include <cstdio>
#include <string>
#include <vector>

#include "apps/network_ranking.h"
#include "common/units.h"
#include "core/sim_scale.h"
#include "core/surfer.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "partition/partitioning_cost.h"

int main() {
  using namespace surfer;

  SocialGraphOptions graph_options;
  graph_options.num_vertices = 1 << 15;
  graph_options.avg_out_degree = 12.0;
  graph_options.num_communities = 16;
  auto graph_result = GenerateSocialGraph(graph_options);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "graph: %s\n",
                 graph_result.status().ToString().c_str());
    return 1;
  }
  const Graph& graph = *graph_result;
  std::printf("data graph: %s\n", ComputeGraphStats(graph).ToString().c_str());

  // The memory rule (Section 4.2): partitions sized to fit main memory.
  const uint32_t partitions = std::max(
      2u, ChooseNumPartitions(graph.StoredBytes(), /*memory=*/128 << 10));
  std::printf("memory rule picks P = %u partitions (%s each)\n\n", partitions,
              FormatBytes(static_cast<double>(graph.StoredBytes()) /
                          partitions)
                  .c_str());

  struct Candidate {
    std::string name;
    Topology topology;       // hardware-scaled, for the propagation run
    Topology full_topology;  // real-scale, for the partitioning-time model
  };
  std::vector<Candidate> candidates;
  candidates.push_back(
      {"flat pod (T1)", MakeScaledT1(32), Topology::T1(32)});
  candidates.push_back(
      {"2 pods (T2(2,1))", MakeScaledT2(32, 2, 1), Topology::T2(32, 2, 1)});
  candidates.push_back(
      {"4 pods (T2(4,1))", MakeScaledT2(32, 4, 1), Topology::T2(32, 4, 1)});
  candidates.push_back({"2-level tree (T2(4,2))", MakeScaledT2(32, 4, 2),
                        Topology::T2(32, 4, 2)});
  candidates.push_back({"mixed hardware (T3)", MakeScaledT3(32),
                        Topology::T3(32)});

  std::printf("%-24s %14s %14s %16s %8s\n", "cluster",
              "partition (h)*", "oblivious (h)*", "NR response (s)", "ier");
  std::string best_name;
  double best_response = 0.0;
  for (Candidate& candidate : candidates) {
    // (a) partitioning time model — estimated at the paper's 100 GB scale.
    auto aware = EstimatePartitioningTime(
        candidate.full_topology, 100ull << 30, 64,
        MachineGroupingPolicy::kBandwidthAware);
    auto oblivious =
        EstimatePartitioningTime(candidate.full_topology, 100ull << 30, 64,
                                 MachineGroupingPolicy::kRandom);
    if (!aware.ok() || !oblivious.ok()) {
      std::fprintf(stderr, "estimate failed\n");
      return 1;
    }

    // (b) + (c): partition for real and measure PageRank.
    SurferOptions options;
    options.num_partitions = partitions;
    auto engine = SurferEngine::Build(graph, candidate.topology, options);
    if (!engine.ok()) {
      std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
      return 1;
    }
    BenchmarkSetup setup = (*engine)->MakeSetup(OptimizationLevel::kO4);
    setup.sim_options = MakeScaledSimOptions();
    EngineOptions engine_options;
    engine_options.propagation.iterations = 3;
    auto session = Engine::Open(setup, engine_options);
    if (!session.ok()) {
      std::fprintf(stderr, "open: %s\n", session.status().ToString().c_str());
      return 1;
    }
    auto run = session->Run(NetworkRankingApp(graph.num_vertices()));
    if (!run.ok()) {
      std::fprintf(stderr, "run: %s\n", run.status().ToString().c_str());
      return 1;
    }
    const RunMetrics& metrics = *run->metrics;
    std::printf("%-24s %14.1f %14.1f %16.1f %7.2f\n", candidate.name.c_str(),
                aware->total_seconds / 3600.0,
                oblivious->total_seconds / 3600.0,
                metrics.response_time_s,
                (*engine)->quality().inner_edge_ratio);
    if (best_name.empty() || metrics.response_time_s < best_response) {
      best_name = candidate.name;
      best_response = metrics.response_time_s;
    }
  }
  std::printf(
      "\n(*) partitioning hours estimated for the paper's 100 GB graph.\n"
      "recommendation: '%s' gives the best NR response (%.1f s) for this "
      "workload.\n",
      best_name.c_str(), best_response);
  return 0;
}
