// Social-network analytics: the paper's motivating scenario. Builds a
// social graph, then runs the full Surfer workload suite as one pipeline —
// ranking (NR), product-adoption simulation (RS), triangle counting (TC),
// degree distribution (VDD), reverse link graph (RLG) and two-hop friends
// (TFL) — and prints analyst-facing findings plus the per-step cost report.
//
//   $ ./build/examples/social_analytics

#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/degree_distribution.h"
#include "apps/network_ranking.h"
#include "apps/recommender.h"
#include "apps/reverse_link_graph.h"
#include "apps/triangle_counting.h"
#include "apps/two_hop_friends.h"
#include "core/pipeline.h"
#include "core/sim_scale.h"
#include "core/surfer.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"

int main() {
  using namespace surfer;

  SocialGraphOptions graph_options;
  graph_options.num_vertices = 1 << 15;
  graph_options.avg_out_degree = 12.0;
  graph_options.num_communities = 16;
  auto graph_result = GenerateSocialGraph(graph_options);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "graph: %s\n",
                 graph_result.status().ToString().c_str());
    return 1;
  }
  const Graph& graph = *graph_result;
  std::printf("social graph: %s\n",
              ComputeGraphStats(graph).ToString().c_str());

  Topology topology = MakeScaledT2(32, 4, 2);
  SurferOptions options;
  options.num_partitions = 64;
  auto engine_result = SurferEngine::Build(graph, topology, options);
  if (!engine_result.ok()) {
    std::fprintf(stderr, "engine: %s\n",
                 engine_result.status().ToString().c_str());
    return 1;
  }
  SurferEngine& engine = **engine_result;
  const VertexEncoding& encoding = engine.partitioned_graph().encoding();

  JobPipeline pipeline(&engine, OptimizationLevel::kO4);
  pipeline.set_sim_options(MakeScaledSimOptions());

  // --- collectors filled by the pipeline steps ---
  std::vector<double> ranks;
  uint64_t adopted = 0;
  uint64_t seeds = 0;
  uint64_t triangles = 0;
  std::vector<std::pair<uint64_t, uint64_t>> degree_histogram;
  uint64_t max_in_degree = 0;
  double avg_two_hop = 0.0;

  PropagationConfig nr_config;
  nr_config.iterations = 5;
  nr_config.cascaded = true;
  pipeline.AddPropagation<NetworkRankingApp>(
      "rank(NR)", NetworkRankingApp(graph.num_vertices()), nr_config,
      [&](const RunAppResult<NetworkRankingApp>& result) {
        ranks = result.states;
      });

  PropagationConfig rs_config;
  rs_config.iterations = 3;
  pipeline.AddPropagation<RecommenderApp>(
      "recommend(RS)", RecommenderApp(&encoding, RecommenderParams{}),
      rs_config, [&](const RunAppResult<RecommenderApp>& result) {
        for (uint32_t s : result.states) {
          seeds += s == 1;
          adopted += s != 0;
        }
      });

  pipeline.AddPropagation<TriangleCountingApp>(
      "triangles(TC)", TriangleCountingApp(&encoding), PropagationConfig{},
      [&](const RunAppResult<TriangleCountingApp>& result) {
        for (uint64_t c : result.states) {
          triangles += c;
        }
      });

  pipeline.AddPropagation<DegreeDistributionApp>(
      "degrees(VDD)", DegreeDistributionApp(), PropagationConfig{},
      [&](const RunAppResult<DegreeDistributionApp>& result) {
        degree_histogram.assign(result.virtual_outputs.begin(),
                                result.virtual_outputs.end());
      });

  pipeline.AddPropagation<ReverseLinkGraphApp>(
      "reverse(RLG)", ReverseLinkGraphApp(), PropagationConfig{},
      [&](const RunAppResult<ReverseLinkGraphApp>& result) {
        for (const auto& list : result.states) {
          max_in_degree = std::max<uint64_t>(max_in_degree, list.size());
        }
      });

  pipeline.AddPropagation<TwoHopFriendsApp>(
      "two-hop(TFL)", TwoHopFriendsApp(&encoding), PropagationConfig{},
      [&](const RunAppResult<TwoHopFriendsApp>& result) {
        uint64_t total = 0;
        uint64_t nonempty = 0;
        for (const auto& list : result.states) {
          total += list.size();
          nonempty += !list.empty();
        }
        avg_two_hop = nonempty == 0
                          ? 0.0
                          : static_cast<double>(total) /
                                static_cast<double>(nonempty);
      });

  auto report = pipeline.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("\n--- findings ---\n");
  // Top influencers by PageRank.
  std::vector<VertexId> order(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    order[v] = v;
  }
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](VertexId a, VertexId b) { return ranks[a] > ranks[b]; });
  std::printf("top influencers (original IDs): ");
  for (int i = 0; i < 5; ++i) {
    std::printf("%u%s", encoding.ToOriginal(order[i]), i < 4 ? ", " : "\n");
  }
  std::printf("product adoption: %llu seeds grew to %llu users (%.1fx)\n",
              static_cast<unsigned long long>(seeds),
              static_cast<unsigned long long>(adopted),
              seeds == 0 ? 0.0
                         : static_cast<double>(adopted) /
                               static_cast<double>(seeds));
  std::printf("directed triangles in the 10%% sample: %llu\n",
              static_cast<unsigned long long>(triangles));
  std::printf("max in-degree (from the reverse link graph): %llu\n",
              static_cast<unsigned long long>(max_in_degree));
  std::printf("avg two-hop reach via sampled intermediaries: %.1f friends\n",
              avg_two_hop);
  if (degree_histogram.size() >= 2) {
    std::printf("degree distribution: %zu distinct degrees, %llu isolated, "
                "power-law tail visible\n",
                degree_histogram.size(),
                static_cast<unsigned long long>(
                    degree_histogram.front().first == 0
                        ? degree_histogram.front().second
                        : 0));
  }

  std::printf("\n--- per-step simulated cluster cost ---\n%s",
              report->ToString().c_str());
  return 0;
}
