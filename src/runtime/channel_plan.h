#ifndef SURFER_RUNTIME_CHANNEL_PLAN_H_
#define SURFER_RUNTIME_CHANNEL_PLAN_H_

#include <cstddef>
#include <vector>

#include "cluster/topology.h"

namespace surfer {
namespace runtime {

/// Derives per-link channel capacities from the topology bandwidth matrix.
///
/// The widest pair link in the topology gets `base_capacity` slots; every
/// other link is scaled down proportionally to its bandwidth (minimum 1).
/// Under T2/T3 topologies this gives intra-pod channels `base_capacity`
/// slots while cross-pod channels get a narrow queue, so a worker flooding
/// a cross-pod link hits backpressure much earlier — the runtime analogue
/// of the paper's scarce inter-switch bandwidth. Self links (m == m) carry
/// locally materialized traffic and always get the full base capacity.
///
/// Returns a row-major M x M matrix: entry [src * M + dst].
std::vector<size_t> PlanChannelCapacities(const Topology& topology,
                                          size_t base_capacity);

}  // namespace runtime
}  // namespace surfer

#endif  // SURFER_RUNTIME_CHANNEL_PLAN_H_
