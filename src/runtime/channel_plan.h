#ifndef SURFER_RUNTIME_CHANNEL_PLAN_H_
#define SURFER_RUNTIME_CHANNEL_PLAN_H_

#include <cstddef>
#include <vector>

#include "cluster/topology.h"

namespace surfer {
namespace runtime {

/// Derives per-link channel capacities from the topology bandwidth matrix.
///
/// Capacities are admission *weight* budgets in whatever unit the caller's
/// BoundedChannel items are weighed in — bytes-in-flight for the runtime's
/// WireBatch traffic (`base_capacity` = channel_window_bytes), plain item
/// counts when every send uses the default weight of 1. The widest pair
/// link in the topology gets the full `base_capacity`; every other link is
/// scaled down proportionally to its bandwidth (minimum 1). Under T2/T3
/// topologies this gives intra-pod channels the full window while
/// cross-pod channels get a narrow one, so a worker flooding a cross-pod
/// link hits backpressure much earlier — the runtime analogue of the
/// paper's scarce inter-switch bandwidth. Self links (m == m) carry
/// locally materialized traffic and always get the full base capacity.
///
/// Returns a row-major M x M matrix: entry [src * M + dst].
std::vector<size_t> PlanChannelCapacities(const Topology& topology,
                                          size_t base_capacity);

}  // namespace runtime
}  // namespace surfer

#endif  // SURFER_RUNTIME_CHANNEL_PLAN_H_
