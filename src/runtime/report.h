#ifndef SURFER_RUNTIME_REPORT_H_
#define SURFER_RUNTIME_REPORT_H_

#include "obs/json.h"
#include "runtime/stats.h"

namespace surfer {
namespace runtime {

/// Serializes RuntimeStats into the run-report `runtime` block (see
/// obs::ValidateRunReport for the schema contract). Built here rather than
/// in obs/ so the observability layer stays independent of the runtime.
obs::JsonValue RuntimeStatsToJson(const RuntimeStats& stats);

}  // namespace runtime
}  // namespace surfer

#endif  // SURFER_RUNTIME_REPORT_H_
