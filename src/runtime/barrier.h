#ifndef SURFER_RUNTIME_BARRIER_H_
#define SURFER_RUNTIME_BARRIER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

namespace surfer {
namespace runtime {

/// Reusable BSP barrier with dynamic membership.
///
/// Workers call ArriveAndWait between superstep stages; the last arriver
/// flips the generation and releases everyone. Two extensions over a plain
/// std::barrier drive the runtime's needs:
///   - ArriveAndWait accepts a `poll` callback invoked periodically while
///     waiting, so a blocked worker keeps draining its inbound channels
///     (without this, a full channel could deadlock against the barrier).
///   - Defect() removes a participant for all future generations, used when
///     a worker thread exits early; if the defector was the last straggler
///     of the current generation, the generation completes.
class BspBarrier {
 public:
  explicit BspBarrier(uint32_t participants);

  BspBarrier(const BspBarrier&) = delete;
  BspBarrier& operator=(const BspBarrier&) = delete;

  /// Blocks until all current participants have arrived. Returns the wall
  /// seconds spent waiting. `poll`, when set, is invoked outside the barrier
  /// lock roughly once per millisecond while waiting.
  double ArriveAndWait(const std::function<void()>& poll = {});

  /// Permanently removes one participant (caller must not arrive afterwards).
  void Defect();

  uint64_t generation() const;
  uint32_t participants() const;

  /// Participants currently parked inside ArriveAndWait. Lock-free mirror
  /// for the telemetry sampler: a sustained value near participants() - 1
  /// means everyone is idling behind one straggler.
  uint32_t ApproxWaiting() const {
    return waiting_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable released_;
  uint32_t participants_;
  uint32_t arrived_ = 0;
  uint64_t generation_ = 0;
  std::atomic<uint32_t> waiting_{0};
};

}  // namespace runtime
}  // namespace surfer

#endif  // SURFER_RUNTIME_BARRIER_H_
