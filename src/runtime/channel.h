#ifndef SURFER_RUNTIME_CHANNEL_H_
#define SURFER_RUNTIME_CHANNEL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/histogram.h"

namespace surfer {
namespace runtime {

/// Execution statistics of one channel, snapshot via BoundedChannel::stats().
struct ChannelStats {
  size_t capacity = 0;          ///< admission weight (bytes for wire links)
  uint64_t sends = 0;           ///< items accepted into the queue
  uint64_t receives = 0;        ///< items popped
  uint64_t stall_attempts = 0;  ///< every failed TrySend/TrySendFor (full)
  uint64_t items_stalled = 0;   ///< distinct items that hit a full channel
  size_t max_depth = 0;         ///< high-water queue depth (items)
  Histogram depth_on_send;      ///< queue depth observed after each send
};

/// A bounded multi-producer single-consumer queue connecting two runtime
/// workers. Capacity is a *weight* budget: each item carries a weight
/// (bytes for the runtime's WireBatch traffic; 1 by default, which recovers
/// plain item-count semantics), and admission requires the queued weight
/// plus the new item to fit. An item heavier than the whole capacity is
/// still admitted when the queue is empty, so oversized batches make
/// progress instead of deadlocking. Capacities model each link's bandwidth
/// share (see PlanChannelCapacities): narrow links accept fewer bytes in
/// flight and exert backpressure on their producers sooner, which is
/// exactly the behaviour the paper's uneven cloud networks impose on
/// cross-pod traffic.
///
/// Producers that find the channel full must not block-and-hold: the runtime
/// send loop retries with TrySendFor while draining the sender's own inbound
/// channels, which guarantees global progress (every blocked producer keeps
/// its consumer side moving, so some channel always drains). Retries pass
/// `is_retry` so the stall statistics can tell distinct blocked items
/// (items_stalled) apart from repeated attempts for the same item
/// (stall_attempts).
template <typename T>
class BoundedChannel {
 public:
  explicit BoundedChannel(size_t capacity) : capacity_(capacity > 0 ? capacity : 1) {}

  BoundedChannel(const BoundedChannel&) = delete;
  BoundedChannel& operator=(const BoundedChannel&) = delete;

  /// Moves `item` into the channel if its weight fits; on failure the item
  /// is left untouched and the stall is counted (as a new stalled item
  /// unless `is_retry`).
  bool TrySend(T& item, size_t weight = 1, bool is_retry = false) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!HasRoom(weight)) {
      CountStall(is_retry);
      return false;
    }
    Push(std::move(item), weight);
    return true;
  }

  /// TrySend that waits up to `timeout` for room before giving up.
  template <typename Rep, typename Period>
  bool TrySendFor(T& item, std::chrono::duration<Rep, Period> timeout,
                  size_t weight = 1, bool is_retry = false) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!not_full_.wait_for(lock, timeout, [&] { return HasRoom(weight); })) {
      CountStall(is_retry);
      return false;
    }
    Push(std::move(item), weight);
    return true;
  }

  /// Blocks until room is available (tests; the runtime itself always uses
  /// the TrySendFor/drain loop to stay deadlock-free).
  void Send(T item, size_t weight = 1) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return HasRoom(weight); });
    Push(std::move(item), weight);
  }

  /// Pops the oldest item; std::nullopt when empty.
  std::optional<T> TryRecv() {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty()) {
      return std::nullopt;
    }
    T item = std::move(queue_.front().first);
    queued_weight_ -= queue_.front().second;
    queue_.pop_front();
    ++stats_.receives;
    approx_queued_weight_.store(queued_weight_, std::memory_order_relaxed);
    approx_depth_.store(queue_.size(), std::memory_order_relaxed);
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }
  size_t capacity() const { return capacity_; }

  /// Lock-free mirrors of the queue occupancy, for telemetry providers
  /// sampling from another thread. Relaxed loads of values written under
  /// mu_: momentarily stale, never torn — exactly what a gauge needs.
  uint64_t ApproxQueuedWeight() const {
    return approx_queued_weight_.load(std::memory_order_relaxed);
  }
  uint64_t ApproxDepth() const {
    return approx_depth_.load(std::memory_order_relaxed);
  }

  ChannelStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    ChannelStats s = stats_;
    s.capacity = capacity_;
    return s;
  }

 private:
  /// With all weights 1 this degenerates to the classic `size < capacity`;
  /// the empty-queue escape hatch is what admits oversized single items.
  bool HasRoom(size_t weight) const {
    return queue_.empty() || queued_weight_ + weight <= capacity_;
  }

  void CountStall(bool is_retry) {
    ++stats_.stall_attempts;
    if (!is_retry) {
      ++stats_.items_stalled;
    }
  }

  void Push(T&& item, size_t weight) {
    queue_.emplace_back(std::move(item), weight);
    queued_weight_ += weight;
    ++stats_.sends;
    stats_.max_depth = std::max(stats_.max_depth, queue_.size());
    stats_.depth_on_send.Add(static_cast<double>(queue_.size()));
    approx_queued_weight_.store(queued_weight_, std::memory_order_relaxed);
    approx_depth_.store(queue_.size(), std::memory_order_relaxed);
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::deque<std::pair<T, size_t>> queue_;
  size_t queued_weight_ = 0;
  ChannelStats stats_;
  /// Written under mu_, read lock-free by the telemetry sampler.
  std::atomic<uint64_t> approx_queued_weight_{0};
  std::atomic<uint64_t> approx_depth_{0};
};

}  // namespace runtime
}  // namespace surfer

#endif  // SURFER_RUNTIME_CHANNEL_H_
