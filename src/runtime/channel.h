#ifndef SURFER_RUNTIME_CHANNEL_H_
#define SURFER_RUNTIME_CHANNEL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/histogram.h"

namespace surfer {
namespace runtime {

/// Execution statistics of one channel, snapshot via BoundedChannel::stats().
struct ChannelStats {
  size_t capacity = 0;
  uint64_t sends = 0;           ///< items accepted into the queue
  uint64_t receives = 0;        ///< items popped
  uint64_t send_stalls = 0;     ///< failed TrySend/TrySendFor attempts (full)
  size_t max_depth = 0;         ///< high-water queue depth
  Histogram depth_on_send;      ///< queue depth observed after each send
};

/// A bounded multi-producer single-consumer queue connecting two runtime
/// workers. Capacity models the link's bandwidth share (see
/// PlanChannelCapacities): narrow links fill up sooner and exert
/// backpressure on their producers, which is exactly the behaviour the
/// paper's uneven cloud networks impose on cross-pod traffic.
///
/// Producers that find the channel full must not block-and-hold: the runtime
/// send loop retries with TrySendFor while draining the sender's own inbound
/// channels, which guarantees global progress (every blocked producer keeps
/// its consumer side moving, so some channel always drains).
template <typename T>
class BoundedChannel {
 public:
  explicit BoundedChannel(size_t capacity) : capacity_(capacity > 0 ? capacity : 1) {}

  BoundedChannel(const BoundedChannel&) = delete;
  BoundedChannel& operator=(const BoundedChannel&) = delete;

  /// Moves `item` into the channel if space is available; on failure the
  /// item is left untouched and the stall is counted.
  bool TrySend(T& item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.size() >= capacity_) {
      ++stats_.send_stalls;
      return false;
    }
    Push(std::move(item));
    return true;
  }

  /// TrySend that waits up to `timeout` for space before giving up.
  template <typename Rep, typename Period>
  bool TrySendFor(T& item, std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!not_full_.wait_for(lock, timeout,
                            [&] { return queue_.size() < capacity_; })) {
      ++stats_.send_stalls;
      return false;
    }
    Push(std::move(item));
    return true;
  }

  /// Blocks until space is available (tests; the runtime itself always uses
  /// the TrySendFor/drain loop to stay deadlock-free).
  void Send(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return queue_.size() < capacity_; });
    Push(std::move(item));
  }

  /// Pops the oldest item; std::nullopt when empty.
  std::optional<T> TryRecv() {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty()) {
      return std::nullopt;
    }
    T item = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.receives;
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }
  size_t capacity() const { return capacity_; }

  ChannelStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    ChannelStats s = stats_;
    s.capacity = capacity_;
    return s;
  }

 private:
  void Push(T&& item) {
    queue_.push_back(std::move(item));
    ++stats_.sends;
    stats_.max_depth = std::max(stats_.max_depth, queue_.size());
    stats_.depth_on_send.Add(static_cast<double>(queue_.size()));
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  ChannelStats stats_;
};

}  // namespace runtime
}  // namespace surfer

#endif  // SURFER_RUNTIME_CHANNEL_H_
