#include "runtime/wire_batch.h"

#include <algorithm>

namespace surfer {
namespace runtime {

std::vector<uint8_t> WireBufferPool::Acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.acquires;
  approx_outstanding_.fetch_add(1, std::memory_order_relaxed);
  if (free_.empty()) {
    return {};
  }
  ++stats_.reuses;
  std::vector<uint8_t> buffer = std::move(free_.back());
  free_.pop_back();
  approx_free_.store(free_.size(), std::memory_order_relaxed);
  buffer.clear();  // keeps capacity: the recycled allocation is the point
  return buffer;
}

void WireBufferPool::Release(std::vector<uint8_t> buffer) {
  approx_outstanding_.fetch_sub(1, std::memory_order_relaxed);
  if (buffer.capacity() == 0) {
    return;  // nothing worth pooling
  }
  // Poison the stored bytes so any reader holding a stale view of this
  // buffer sees garbage deterministically (asserted by the pool tests)
  // instead of the next batch's content.
  std::fill(buffer.begin(), buffer.end(), uint8_t{0xDD});
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(buffer));
  approx_free_.store(free_.size(), std::memory_order_relaxed);
}

WireBufferPool::Stats WireBufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace runtime
}  // namespace surfer
