#include "runtime/barrier.h"

#include <chrono>

namespace surfer {
namespace runtime {

BspBarrier::BspBarrier(uint32_t participants) : participants_(participants) {}

double BspBarrier::ArriveAndWait(const std::function<void()>& poll) {
  const auto start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t my_generation = generation_;
  if (++arrived_ >= participants_) {
    arrived_ = 0;
    ++generation_;
    lock.unlock();
    released_.notify_all();
    return 0.0;
  }
  waiting_.fetch_add(1, std::memory_order_relaxed);
  while (generation_ == my_generation) {
    if (poll) {
      // Drop the lock so the poll callback can touch channels freely; the
      // generation check re-reads under the lock afterwards.
      lock.unlock();
      poll();
      lock.lock();
      if (generation_ != my_generation) {
        break;
      }
      // Short timeout: the poll callback is typically a channel drain, and
      // its cadence bounds the service rate of narrow (low-capacity) links
      // whose consumers are already parked here.
      released_.wait_for(lock, std::chrono::microseconds(100));
    } else {
      released_.wait(lock, [&] { return generation_ != my_generation; });
    }
  }
  waiting_.fetch_sub(1, std::memory_order_relaxed);
  lock.unlock();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

void BspBarrier::Defect() {
  std::unique_lock<std::mutex> lock(mu_);
  if (participants_ > 0) {
    --participants_;
  }
  if (arrived_ > 0 && arrived_ >= participants_) {
    arrived_ = 0;
    ++generation_;
    lock.unlock();
    released_.notify_all();
    return;
  }
  lock.unlock();
}

uint64_t BspBarrier::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

uint32_t BspBarrier::participants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return participants_;
}

}  // namespace runtime
}  // namespace surfer
