#ifndef SURFER_RUNTIME_FAULT_H_
#define SURFER_RUNTIME_FAULT_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace surfer {
namespace runtime {

/// Which half of a BSP superstep a fault lands in.
enum class RuntimeStage : uint8_t { kTransfer = 0, kCombine = 1 };

/// Kills `machine` during `iteration` (0-based) once it has completed
/// `after_tasks` tasks of `stage`. Task-granular rather than time-granular so
/// failure tests are deterministic under TSan and arbitrary scheduling.
struct RuntimeFaultPlan {
  MachineId machine = kInvalidMachine;
  int iteration = 0;
  RuntimeStage stage = RuntimeStage::kTransfer;
  uint32_t after_tasks = 0;
};

/// Immutable fault schedule consulted by workers before each task. Mirrors
/// the Appendix-B model in JobSimulation: a failed machine loses its
/// unfinished work, which is re-executed from the next alive replica holder.
class FaultController {
 public:
  FaultController() = default;
  explicit FaultController(std::vector<RuntimeFaultPlan> plans)
      : plans_(std::move(plans)) {}

  /// True when `machine` should die now, i.e. before starting its
  /// (tasks_completed + 1)-th task of the given stage.
  bool ShouldKill(MachineId machine, int iteration, RuntimeStage stage,
                  uint32_t tasks_completed) const {
    for (const RuntimeFaultPlan& plan : plans_) {
      if (plan.machine == machine && plan.iteration == iteration &&
          plan.stage == stage && tasks_completed >= plan.after_tasks) {
        return true;
      }
    }
    return false;
  }

  bool empty() const { return plans_.empty(); }

 private:
  std::vector<RuntimeFaultPlan> plans_;
};

}  // namespace runtime
}  // namespace surfer

#endif  // SURFER_RUNTIME_FAULT_H_
