#ifndef SURFER_RUNTIME_WIRE_BATCH_H_
#define SURFER_RUNTIME_WIRE_BATCH_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <optional>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "graph/types.h"
#include "propagation/app_traits.h"

namespace surfer {
namespace runtime {

/// Apps whose messages can go on the wire: serialization is a raw memcpy of
/// the message value, so the type must be trivially copyable. Every paper
/// app with O(1)-sized messages (NR, VDD, the recommender, ...) qualifies;
/// list-valued messages (RLG, TC, TFL) stay on the analytic engine.
template <typename App>
concept WireSerializableApp =
    std::is_trivially_copyable_v<typename App::Message>;

/// Tuning knobs of the wire plane. Batches seal when they reach
/// `max_batch_bytes` (size flush), when they have been open longer than
/// `flush_deadline_seconds` (deadline flush, checked between tasks), or at
/// the end of a machine's stage work (stage-end flush). `wire_combine`
/// gates the seal-time local combination for MergeableApps; the combination
/// still only runs when the job's PropagationConfig enables it.
struct WireBatchOptions {
  size_t max_batch_bytes = 64 << 10;
  double flush_deadline_seconds = 0.002;
  bool wire_combine = true;
};

/// A sealed chunk of wire traffic between two machines: the unit of channel
/// transfer. The payload is a pooled byte buffer holding one or more
/// *segments*, each a contiguous run of one (src partition -> dst partition)
/// message stream. Channel capacity weighs batches by wire_size(), so a
/// link's bounded channel models bytes-in-flight rather than item count.
struct WireBatch {
  MachineId src_machine = kInvalidMachine;
  MachineId dst_machine = kInvalidMachine;
  uint32_t num_segments = 0;
  uint64_t num_messages = 0;
  /// Post-combine cost-model bytes (sum of app MessageBytes), the quantity
  /// the analytic runner prices; distinct from wire_size(), which includes
  /// framing and fixed-width record encoding.
  uint64_t priced_bytes = 0;
  std::vector<uint8_t> payload;

  size_t wire_size() const { return payload.size(); }
};

inline constexpr uint32_t kWireSegmentReal = 0;
inline constexpr uint32_t kWireSegmentVirtual = 1;

/// Frames one segment inside a batch payload. `count` records follow the
/// header: a real record is (VertexId, Message), a virtual record is
/// (uint64_t id, Message), both raw little-endian pods. A stream split
/// across batches by a size/deadline flush appears as several segments with
/// the same (src_partition, dst_partition); per-segment priced_bytes sum to
/// the stream's post-combine cost, which keeps recovery refetch accounting
/// exact at chunk granularity.
struct WireSegmentHeader {
  uint32_t src_partition = 0;
  uint32_t dst_partition = 0;
  uint32_t kind = kWireSegmentReal;
  uint32_t count = 0;
  uint64_t priced_bytes = 0;
};
static_assert(std::is_trivially_copyable_v<WireSegmentHeader>);
static_assert(sizeof(WireSegmentHeader) == 24);

template <typename T>
inline void AppendPod(std::vector<uint8_t>& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const size_t offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

template <typename T>
inline T ReadPod(const uint8_t* data) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  std::memcpy(&value, data, sizeof(T));
  return value;
}

/// Freelist of payload buffers shared by all staging machines of one run.
/// Released buffers are poisoned with 0xDD (the whole stored size) so a
/// reader holding a stale view of a recycled buffer fails loudly in tests
/// rather than silently seeing the next batch's bytes; Acquire clears the
/// buffer (keeping its capacity) before handing it out, so steady state
/// performs no per-message — and after warm-up no per-batch — allocation.
class WireBufferPool {
 public:
  struct Stats {
    uint64_t acquires = 0;
    uint64_t reuses = 0;
  };

  std::vector<uint8_t> Acquire();
  void Release(std::vector<uint8_t> buffer);
  Stats stats() const;

  /// Lock-free occupancy mirrors for the telemetry sampler. Outstanding is
  /// acquires minus releases: buffers currently filling or in flight.
  /// Sustained zero free with nonzero outstanding means every acquire
  /// allocates fresh — pool exhaustion.
  uint64_t ApproxFreeBuffers() const {
    return approx_free_.load(std::memory_order_relaxed);
  }
  uint64_t ApproxOutstandingBuffers() const {
    return approx_outstanding_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<uint8_t>> free_;
  Stats stats_;
  std::atomic<uint64_t> approx_free_{0};
  std::atomic<uint64_t> approx_outstanding_{0};
};

/// Decodes a batch payload segment by segment. The reader copies records out
/// into typed vectors (the executor moves them straight into inbox chunks).
template <typename Message>
class WireBatchReader {
  static_assert(std::is_trivially_copyable_v<Message>);

 public:
  struct Segment {
    WireSegmentHeader header;
    std::vector<std::pair<VertexId, Message>> real;
    std::vector<std::pair<uint64_t, Message>> virtuals;
  };

  explicit WireBatchReader(const WireBatch& batch) : batch_(batch) {}

  std::optional<Segment> Next() {
    Segment segment;
    if (!NextInto(segment)) {
      return std::nullopt;
    }
    return segment;
  }

  /// Decode-into variant that reuses the segment's record-vector capacity:
  /// the executor feeds recycled inbox-chunk buffers through this, so after
  /// warm-up deserialization performs no per-segment allocation. Returns
  /// false (with both vectors cleared) once the payload is exhausted.
  bool NextInto(Segment& segment) {
    segment.real.clear();
    segment.virtuals.clear();
    if (offset_ >= batch_.payload.size()) {
      return false;
    }
    const uint8_t* base = batch_.payload.data();
    segment.header = ReadPod<WireSegmentHeader>(base + offset_);
    offset_ += sizeof(WireSegmentHeader);
    if (segment.header.kind == kWireSegmentReal) {
      segment.real.reserve(segment.header.count);
      for (uint32_t i = 0; i < segment.header.count; ++i) {
        const VertexId target = ReadPod<VertexId>(base + offset_);
        offset_ += sizeof(VertexId);
        segment.real.emplace_back(target,
                                  ReadPod<Message>(base + offset_));
        offset_ += sizeof(Message);
      }
    } else {
      segment.virtuals.reserve(segment.header.count);
      for (uint32_t i = 0; i < segment.header.count; ++i) {
        const uint64_t target = ReadPod<uint64_t>(base + offset_);
        offset_ += sizeof(uint64_t);
        segment.virtuals.emplace_back(target,
                                      ReadPod<Message>(base + offset_));
        offset_ += sizeof(Message);
      }
    }
    return true;
  }

 private:
  const WireBatch& batch_;
  size_t offset_ = 0;
};

/// Wire-plane counters of one staging machine, merged into RuntimeStats
/// after the workers join.
struct WireStagerStats {
  uint64_t batches_sealed = 0;
  uint64_t segments_sealed = 0;
  uint64_t payload_bytes = 0;       ///< wire bytes across sealed batches
  uint64_t messages_staged = 0;     ///< records serialized (post-combine)
  uint64_t messages_combined = 0;   ///< duplicates folded at seal time
  uint64_t flush_size = 0;
  uint64_t flush_deadline = 0;
  uint64_t flush_stage_end = 0;
  Histogram batch_fill;             ///< payload/max_batch_bytes at each seal
};

/// Serializes one machine's outbound message streams into pooled WireBatch
/// payloads, one open batch per destination machine. Accessed only by the
/// machine's owner worker, so it needs no locking of its own.
///
/// Wire-level local combination happens here, at staging time: a task hands
/// over its complete (src -> dst) stream, duplicates merge through the same
/// insertion-ordered map replay the analytic runner uses, and only the
/// post-merge records are serialized and priced. Because the whole stream is
/// combined before any of it is written, a mid-stream size flush can split
/// the stream across batches without changing the priced byte count — the
/// invariant that keeps the runtime's per-link bytes reconciling exactly
/// with PropagationRunner::link_network_bytes().
template <typename App>
  requires PropagationApp<App> && WireSerializableApp<App>
class WireStager {
 public:
  using Message = typename App::Message;
  using Clock = std::chrono::steady_clock;

  WireStager(const App* app, const WireBatchOptions& options,
             WireBufferPool* pool, MachineId src_machine,
             uint32_t num_machines, bool combine)
      : app_(app),
        options_(options),
        pool_(pool),
        src_machine_(src_machine),
        combine_(combine),
        open_(num_machines) {}

  /// Stages one task's complete (src -> dst) stream: merges duplicates (when
  /// combination is on), prices the post-merge records, and serializes them
  /// into the destination machine's open batch, sealing and shipping batches
  /// that hit the size cap along the way. `send` takes a sealed WireBatch
  /// and returns the seconds it spent blocked on channel backpressure; the
  /// summed blocked time is returned to the caller for phase attribution.
  /// Both record vectors are consumed.
  template <typename SendFn>
  double StageTask(PartitionId src, PartitionId dst, MachineId dst_machine,
                   std::vector<std::pair<VertexId, Message>>& real,
                   std::vector<std::pair<uint64_t, Message>>& virtuals,
                   SendFn&& send) {
    if (combine_) {
      if constexpr (MergeableApp<App>) {
        MergeDuplicates(real);
        MergeDuplicates(virtuals);
      }
    }
    double blocked_s = 0.0;
    if (!real.empty()) {
      blocked_s +=
          WriteSegment(src, dst, dst_machine, kWireSegmentReal, real, send);
      real.clear();
    }
    if (!virtuals.empty()) {
      blocked_s += WriteSegment(src, dst, dst_machine, kWireSegmentVirtual,
                                virtuals, send);
      virtuals.clear();
    }
    return blocked_s;
  }

  /// Seals and ships open batches older than the flush deadline. Called
  /// between tasks so a trickle of traffic to a quiet destination is not
  /// held hostage to the stage end.
  template <typename SendFn>
  double FlushExpired(SendFn&& send) {
    double blocked_s = 0.0;
    const auto now = Clock::now();
    for (OpenBatch& open : open_) {
      if (open.active &&
          std::chrono::duration<double>(now - open.opened).count() >=
              options_.flush_deadline_seconds) {
        ++stats_.flush_deadline;
        blocked_s += Seal(open, send);
      }
    }
    return blocked_s;
  }

  /// Seals and ships every open batch (stage end, or a machine kill whose
  /// completed tasks' output must still reach its destinations).
  template <typename SendFn>
  double FlushAll(SendFn&& send) {
    double blocked_s = 0.0;
    for (OpenBatch& open : open_) {
      if (open.active) {
        ++stats_.flush_stage_end;
        blocked_s += Seal(open, send);
      }
    }
    return blocked_s;
  }

  const WireStagerStats& stats() const { return stats_; }

  /// Payload bytes sitting in open (unsealed) batches right now — the
  /// staging backlog a worker heartbeat reports as staged_wire_bytes.
  size_t OpenBytes() const {
    size_t total = 0;
    for (const OpenBatch& open : open_) {
      if (open.active) {
        total += open.batch.payload.size();
      }
    }
    return total;
  }

 private:
  struct OpenBatch {
    WireBatch batch;
    Clock::time_point opened;
    bool active = false;
  };

  /// Merges duplicate targets by replaying the records through an
  /// insertion-ordered map walk, exactly the sequence of emplace/Merge calls
  /// the analytic runner performs — so merged values are bit-identical. The
  /// map's iteration order is irrelevant downstream: a merged stream carries
  /// at most one message per target, and the combine side's stable sort by
  /// target normalizes stream-internal order away.
  template <typename K>
  void MergeDuplicates(std::vector<std::pair<K, Message>>& records) {
    if (records.size() < 2) {
      return;
    }
    std::unordered_map<K, Message> merged;
    merged.reserve(records.size());
    for (auto& [key, message] : records) {
      auto it = merged.find(key);
      if (it == merged.end()) {
        merged.emplace(key, std::move(message));
      } else {
        it->second = app_->Merge(it->second, message);
        ++stats_.messages_combined;
      }
    }
    if (merged.size() == records.size()) {
      return;  // no duplicates: keep emission order as-is
    }
    records.clear();
    for (auto& [key, message] : merged) {
      records.emplace_back(key, std::move(message));
    }
  }

  template <typename K, typename SendFn>
  double WriteSegment(PartitionId src, PartitionId dst, MachineId dst_machine,
                      uint32_t kind,
                      std::vector<std::pair<K, Message>>& records,
                      SendFn&& send) {
    constexpr size_t kRecordBytes = sizeof(K) + sizeof(Message);
    double blocked_s = 0.0;
    OpenBatch& open = open_[dst_machine];
    // A batch close to the cap seals before the segment starts, so a fresh
    // segment header is never immediately orphaned by a size flush.
    if (open.active && !open.batch.payload.empty() &&
        open.batch.payload.size() + sizeof(WireSegmentHeader) + kRecordBytes >
            options_.max_batch_bytes) {
      ++stats_.flush_size;
      blocked_s += Seal(open, send);
    }
    if (!open.active) {
      Open(open, dst_machine);
    }
    size_t header_at = BeginSegment(open.batch, src, dst, kind);
    uint32_t count = 0;
    uint64_t priced = 0;
    for (auto& [key, message] : records) {
      if (count > 0 &&
          open.batch.payload.size() + kRecordBytes >
              options_.max_batch_bytes) {
        // Chunk the stream: close this segment, ship the batch, continue the
        // same (src, dst) stream in a fresh segment. Records were combined
        // and priced for the whole task above, so chunking cannot change the
        // cost model's byte count.
        CloseSegment(open.batch, header_at, count, priced);
        ++stats_.flush_size;
        blocked_s += Seal(open, send);
        Open(open, dst_machine);
        header_at = BeginSegment(open.batch, src, dst, kind);
        count = 0;
        priced = 0;
      }
      AppendPod(open.batch.payload, key);
      AppendPod(open.batch.payload, message);
      priced += app_->MessageBytes(message);
      ++count;
    }
    CloseSegment(open.batch, header_at, count, priced);
    return blocked_s;
  }

  static size_t BeginSegment(WireBatch& batch, PartitionId src,
                             PartitionId dst, uint32_t kind) {
    const size_t at = batch.payload.size();
    WireSegmentHeader header;
    header.src_partition = src;
    header.dst_partition = dst;
    header.kind = kind;
    AppendPod(batch.payload, header);
    return at;
  }

  void CloseSegment(WireBatch& batch, size_t header_at, uint32_t count,
                    uint64_t priced) {
    WireSegmentHeader header =
        ReadPod<WireSegmentHeader>(batch.payload.data() + header_at);
    header.count = count;
    header.priced_bytes = priced;
    std::memcpy(batch.payload.data() + header_at, &header, sizeof(header));
    batch.num_segments += 1;
    batch.num_messages += count;
    batch.priced_bytes += priced;
    ++stats_.segments_sealed;
    stats_.messages_staged += count;
  }

  void Open(OpenBatch& open, MachineId dst_machine) {
    open.batch = WireBatch{};
    open.batch.src_machine = src_machine_;
    open.batch.dst_machine = dst_machine;
    open.batch.payload = pool_->Acquire();
    open.opened = Clock::now();
    open.active = true;
  }

  template <typename SendFn>
  double Seal(OpenBatch& open, SendFn&& send) {
    ++stats_.batches_sealed;
    stats_.payload_bytes += open.batch.payload.size();
    stats_.batch_fill.Add(static_cast<double>(open.batch.payload.size()) /
                          static_cast<double>(options_.max_batch_bytes));
    open.active = false;
    return send(std::move(open.batch));
  }

  const App* app_;
  WireBatchOptions options_;
  WireBufferPool* pool_;
  MachineId src_machine_;
  bool combine_;
  std::vector<OpenBatch> open_;
  WireStagerStats stats_;
};

}  // namespace runtime
}  // namespace surfer

#endif  // SURFER_RUNTIME_WIRE_BATCH_H_
