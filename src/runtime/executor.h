#ifndef SURFER_RUNTIME_EXECUTOR_H_
#define SURFER_RUNTIME_EXECUTOR_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/topology.h"
#include "common/result.h"
#include "obs/metrics_registry.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "obs/trace_shard.h"
#include "propagation/app_traits.h"
#include "propagation/config.h"
#include "runtime/barrier.h"
#include "runtime/channel.h"
#include "runtime/channel_plan.h"
#include "runtime/combine_plan.h"
#include "runtime/fault.h"
#include "runtime/stats.h"
#include "runtime/timeline.h"
#include "runtime/wire_batch.h"
#include "storage/partitioned_graph.h"
#include "storage/replication.h"

namespace surfer {
namespace runtime {

/// Knobs of the concurrent runtime. Observability hooks come from the
/// PropagationConfig so runner and runtime share one configuration surface.
struct RuntimeOptions {
  /// Default admission window; named so EngineOptions::Validate can tell
  /// "left at default" apart from "deliberately configured".
  static constexpr size_t kDefaultChannelWindowBytes = 256 << 10;

  /// Worker threads; 0 means one per simulated machine. With fewer workers
  /// than machines, machine m is owned by worker (m % num_workers).
  uint32_t max_workers = 0;
  /// Bytes-in-flight granted to the widest topology link's channel; narrower
  /// links are scaled down proportionally (see PlanChannelCapacities), so
  /// cross-pod links backpressure sooner at equal traffic. Channels weigh
  /// each WireBatch by its wire size; a batch larger than the whole window
  /// is still admitted once the queue is empty (progress guarantee), so a
  /// tiny window maximizes backpressure without deadlocking.
  size_t channel_window_bytes = kDefaultChannelWindowBytes;
  /// Wire-plane staging knobs: batch size cap, flush deadline, and the
  /// wire-level local combination toggle (see WireBatchOptions).
  WireBatchOptions wire;
  /// Ring slots of each worker's SPSC trace shard (rounded up to a power of
  /// two). Per-task profiling events overflow into drop counts, never into
  /// blocking; see RuntimeStats::trace_events_dropped.
  size_t trace_shard_capacity = obs::ShardedTracer::kDefaultShardCapacity;
  /// Flight-recorder sampling of runtime gauges (channel occupancy, pool
  /// pressure, barrier membership, RSS): off by default. The instrumented
  /// hot paths only ever update relaxed atomics — one store per batch-level
  /// event, never per message — whether or not the sampler runs; enabling
  /// telemetry only starts the background sampling thread.
  obs::TelemetryOptions telemetry;
  /// Machines to kill mid-stage (Appendix-B recovery drills).
  std::vector<RuntimeFaultPlan> faults;
};

/// Concurrent BSP executor for propagation apps: the wall-clock counterpart
/// of the analytic PropagationRunner.
///
/// One worker thread per simulated machine runs that machine's Transfer and
/// Combine tasks. Messages travel as serialized WireBatches: each machine's
/// WireStager packs its outbound (src partition -> dst partition) streams
/// into pooled per-destination-machine byte buffers, performing wire-level
/// local combination at seal time, and ships them through bounded channels
/// whose byte capacities mirror the topology's bandwidth matrix; a barrier
/// separates the BSP supersteps. The executor's contract, asserted by
/// tests/runtime_test.cc, is *bit-identical* results to the sequential
/// runner at every optimization level:
///   - each Combine sees its messages in the exact sequential order. The
///     sequential runner fills a partition's inbox in ascending source
///     partition order (its own local buffer landing at the src == dst
///     slot) and then stable-sorts by target. On the wire, a (src, dst)
///     stream may be chunked across batches by size/deadline flushes, but
///     only one machine ever produces a given stream (tasks are atomic) and
///     channels are FIFO, so chunks arrive in emission order; the receiver
///     stable-sorts its chunks by src, concatenates, and applies the same
///     target sort;
///   - wire combination merges a task's complete per-stream records before
///     pricing or serializing any of them (WireStager::StageTask), so a
///     merged stream carries at most one message per target per source and
///     chunking never changes the priced byte count;
///   - cascaded propagation and memory limits change the *accounted* cost
///     only, so the runtime ignores them without affecting results.
///
/// Fault injection follows Appendix B at task granularity: a machine killed
/// mid-stage keeps the buffers of tasks it completed (its disk replicas
/// survive), while its unfinished tasks are re-assigned to the next alive
/// replica holder on the following round; re-executed Combine tasks
/// re-fetch their remote inputs (counted in RuntimeStats::refetch_bytes).
/// Dead machines' worker threads stay up purely to drain their inbound
/// channels, so senders never deadlock against a corpse.
template <typename App>
  requires PropagationApp<App> && WireSerializableApp<App>
class RuntimeExecutor {
 public:
  using VertexState = typename App::VertexState;
  using Message = typename App::Message;
  using VirtualOutput = typename internal::VirtualOutputOf<App>::type;

  RuntimeExecutor(const PartitionedGraph* graph,
                  const ReplicatedPlacement* placement,
                  const Topology* topology, App app, PropagationConfig config,
                  RuntimeOptions options = {})
      : graph_(graph),
        placement_(placement),
        topology_(topology),
        app_(std::move(app)),
        config_(config),
        options_(options),
        fault_(options.faults) {}

  /// Executes config.iterations supersteps. Fails when every replica of a
  /// partition is dead (the job is unrecoverable, as in Appendix B).
  Status Run() {
    SURFER_RETURN_IF_ERROR(Validate());
    const auto wall_start = std::chrono::steady_clock::now();
    run_start_ = wall_start;
    // Tracer time at the run's start instant: the offset that maps the
    // flight recorder's run-relative timestamps onto the tracer's origin
    // when counter events merge into the Chrome trace.
    const double wall_start_tracer_us =
        config_.tracer != nullptr ? config_.tracer->WallNowUs() : 0.0;
    InitializeStates();
    virtual_outputs_.clear();
    stats_ = RuntimeStats{};

    const uint32_t num_machines = topology_->num_machines();
    const uint32_t num_workers =
        options_.max_workers == 0
            ? num_machines
            : std::min(options_.max_workers, num_machines);
    num_machines_ = num_machines;
    num_workers_ = num_workers;

    owned_machines_.assign(num_workers, {});
    for (MachineId m = 0; m < num_machines; ++m) {
      owned_machines_[m % num_workers].push_back(m);
    }
    const size_t num_channels = static_cast<size_t>(num_machines) * num_machines;
    const std::vector<size_t> capacities =
        PlanChannelCapacities(*topology_, options_.channel_window_bytes);
    channels_.clear();
    channels_.reserve(num_channels);
    for (size_t i = 0; i < num_channels; ++i) {
      channels_.push_back(
          std::make_unique<BoundedChannel<WireBatch>>(capacities[i]));
    }
    // One stager per machine, touched only by the machine's owner worker.
    // Wire combination needs the job to allow local combination *and* the
    // app to be mergeable *and* the wire toggle to be on.
    const bool wire_combine =
        config_.local_combination && MergeableApp<App> &&
        options_.wire.wire_combine;
    pool_ = std::make_unique<WireBufferPool>();
    stagers_.clear();
    stagers_.reserve(num_machines);
    for (MachineId m = 0; m < num_machines; ++m) {
      stagers_.emplace_back(&app_, options_.wire, pool_.get(), m, num_machines,
                            wire_combine);
    }

    const uint32_t num_partitions = graph_->num_partitions();
    inboxes_.assign(num_partitions, {});
    combine_scratch_.assign(num_partitions, CombineScratch{});
    virtual_results_.assign(num_partitions, {});
    done_.assign(num_partitions, 0);
    alive_.assign(num_machines, 1);
    stage_tasks_done_.assign(num_machines, 0);
    locals_.assign(num_workers + 1, WorkerLocal{});
    for (WorkerLocal& local : locals_) {
      local.link_bytes.assign(num_channels, 0);
    }
    worker_scratch_.assign(num_workers, WorkerScratch{});
    drain_phase_.assign(num_workers, DrainPhase{});
    barrier_ = std::make_unique<BspBarrier>(num_workers + 1);
    phase_ = Phase{};

    // Telemetry mirrors live whether or not the sampler runs: each is one
    // relaxed atomic touched at batch granularity, so keeping them
    // unconditional avoids a branch on the same paths.
    inbox_chunk_counts_ =
        std::make_unique<std::atomic<uint64_t>[]>(num_partitions);
    for (uint32_t p = 0; p < num_partitions; ++p) {
      inbox_chunk_counts_[p].store(0, std::memory_order_relaxed);
    }
    staged_wire_bytes_ =
        std::make_unique<std::atomic<uint64_t>[]>(num_machines);
    for (MachineId m = 0; m < num_machines; ++m) {
      staged_wire_bytes_[m].store(0, std::memory_order_relaxed);
    }
    worker_state_ = std::make_unique<std::atomic<uint32_t>[]>(num_workers);
    for (uint32_t w = 0; w < num_workers; ++w) {
      worker_state_[w].store(0, std::memory_order_relaxed);
    }
    step_bounds_.assign(static_cast<size_t>(config_.iterations) * 2,
                        {0.0, 0.0});
    telemetry_ = std::make_unique<obs::TelemetryRecorder>(options_.telemetry);
    if (options_.telemetry.enabled) {
      RegisterTelemetryGauges();
    }

    // Superstep timeline: one slot per (stage, machine). Slot [step][m] is
    // written only by m's owner worker, so the matrix needs no locking; the
    // main thread reads it after the join.
    step_phases_.assign(static_cast<size_t>(config_.iterations) * 2,
                        std::vector<PhaseSeconds>(num_machines));
    sharded_.reset();
    if (config_.tracer != nullptr && obs::Tracer::CompiledIn()) {
      sharded_ = std::make_unique<obs::ShardedTracer>(
          config_.tracer, num_workers, options_.trace_shard_capacity);
      transfer_name_id_ =
          sharded_->InternName("rt_task_transfer", "runtime", "partition");
      combine_name_id_ =
          sharded_->InternName("rt_task_combine", "runtime", "partition");
    }

    telemetry_->Start(wall_start);

    std::vector<std::thread> workers;
    workers.reserve(num_workers);
    for (uint32_t w = 0; w < num_workers; ++w) {
      workers.emplace_back([this, w] { WorkerMain(w); });
    }

    Status status = Status::OK();
    for (int iteration = 0; iteration < config_.iterations; ++iteration) {
      if constexpr (IterationAwareApp<App>) {
        app_.OnIterationStart(iteration);
      }
      status = RunStage(PhaseKind::kTransfer, iteration);
      if (!status.ok()) {
        break;
      }
      status = RunStage(PhaseKind::kCombine, iteration);
      if (!status.ok()) {
        break;
      }
      // Flush point: workers are parked at the next start barrier, so their
      // shards only grow while we drain (SPSC-safe either way). One flush
      // per iteration keeps ring occupancy bounded without touching the
      // global tracer mutex from the hot path.
      if (sharded_ != nullptr) {
        sharded_->Flush();
      }
      // Fold this iteration's virtual-vertex outputs in partition order,
      // exactly as the sequential runner does at the end of RunIteration.
      if constexpr (VirtualVertexApp<App>) {
        for (auto& per_partition : virtual_results_) {
          for (auto& [id, output] : per_partition) {
            virtual_outputs_[id] = std::move(output);
          }
          per_partition.clear();
        }
      }
    }

    // Publish the shutdown phase whether or not the run succeeded; workers
    // are all parked at the start barrier by construction.
    phase_.kind = PhaseKind::kShutdown;
    MainBarrier();
    for (std::thread& t : workers) {
      t.join();
    }
    if (sharded_ != nullptr) {
      sharded_->Flush();
    }
    // The sampler must stop before stats finalization tears anything down:
    // its providers read the channels, pool, and barrier it outlives here.
    telemetry_->Stop();
    if (config_.tracer != nullptr) {
      telemetry_->ExportCounterEvents(config_.tracer, wall_start_tracer_us);
    }
    stats_.wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
    FinalizeStats();
    return status;
  }

  const std::vector<VertexState>& states() const { return states_; }

  /// State of a vertex addressed by its *original* (pre-encoding) ID.
  const VertexState& StateOfOriginal(VertexId original) const {
    return states_[graph_->encoding().ToEncoded(original)];
  }

  const std::map<uint64_t, VirtualOutput>& virtual_outputs() const {
    return virtual_outputs_;
  }

  const RuntimeStats& stats() const { return stats_; }

  /// The run's flight recorder (null before the first Run call; inert when
  /// RuntimeOptions::telemetry is off). Valid until the next Run call.
  const obs::TelemetryRecorder* telemetry() const { return telemetry_.get(); }

  /// Machine liveness after the run (all ones without injected faults).
  const std::vector<uint8_t>& alive() const { return alive_; }

 private:
  enum class PhaseKind : uint8_t { kIdle, kTransfer, kCombine, kShutdown };

  /// One stage round published by the main thread before the start barrier;
  /// workers read it (immutably) after the barrier releases them.
  struct Phase {
    PhaseKind kind = PhaseKind::kIdle;
    int iteration = 0;
    bool recovery = false;
    /// tasks[m]: partitions machine m executes this round, ascending.
    std::vector<std::vector<PartitionId>> tasks;
  };

  /// One deserialized wire segment: a contiguous chunk of one
  /// (src partition -> dst partition) message stream, either real or
  /// virtual records. A stream may arrive as several chunks when size or
  /// deadline flushes split it across batches; exactly one machine produces
  /// a given stream per stage (tasks are atomic under fault injection) and
  /// channels are FIFO, so within a src the arrival order of chunks is the
  /// emission order, and a stable sort on src reconstructs the sequential
  /// inbox.
  struct InboxChunk {
    PartitionId src = kInvalidPartition;
    MachineId src_machine = kInvalidMachine;
    uint64_t priced_bytes = 0;
    std::vector<std::pair<VertexId, Message>> real;
    std::vector<std::pair<uint64_t, Message>> virtuals;
  };

  /// The stage a worker is currently draining for; written by the worker
  /// after the start barrier and read only by that worker inside Drain, so
  /// deserialization time lands in the right superstep slot.
  struct DrainPhase {
    int iteration = 0;
    PhaseKind kind = PhaseKind::kTransfer;
  };

  /// Per-thread tallies, merged into RuntimeStats after the join.
  struct WorkerLocal {
    uint64_t tasks_executed = 0;
    uint64_t tasks_reexecuted = 0;
    uint64_t messages_sent = 0;
    uint64_t buffers_sent = 0;
    uint64_t refetch_bytes = 0;
    uint64_t combine_messages_scattered = 0;
    uint64_t frontier_vertices_skipped = 0;
    double combine_scatter_seconds = 0.0;
    uint32_t machine_failures = 0;
    double barrier_wait_seconds = 0.0;
    Histogram barrier_wait;
    std::vector<uint64_t> link_bytes;
  };

  /// Per-worker reusable buffers (distinct from WorkerLocal, which is pure
  /// stats): grouped-message output, per-vertex/-group staging vectors, the
  /// recycled inbox-chunk freelist, and the transfer task's per-destination
  /// stream buffers. All touched only by their worker, never merged.
  struct WorkerScratch {
    std::vector<Message> grouped;          ///< combine placement output
    std::vector<Message> vertex_messages;  ///< one vertex's message list
    std::vector<std::pair<uint64_t, Message>> virtual_messages;
    std::vector<Message> virtual_grouped;
    std::vector<Message> virtual_group;
    VirtualGroupScratch vgroups;
    /// Consumed InboxChunks parked here (record capacity kept) instead of
    /// the legacy clear + shrink_to_fit, so steady-state deserialization
    /// allocates nothing. Bounded: overflow chunks just deallocate.
    std::vector<InboxChunk> chunk_pool;
    std::vector<std::vector<std::pair<VertexId, Message>>> real_out;
    std::vector<std::vector<std::pair<uint64_t, Message>>> virtual_out;
  };

  static constexpr size_t kChunkPoolCap = 256;

  Status Validate() const {
    if (graph_ == nullptr || placement_ == nullptr || topology_ == nullptr) {
      return Status::InvalidArgument("executor inputs must be non-null");
    }
    if (placement_->num_partitions() != graph_->num_partitions()) {
      return Status::InvalidArgument(
          "placement partition count does not match graph");
    }
    if (config_.iterations < 1) {
      return Status::InvalidArgument("iterations must be >= 1");
    }
    for (PartitionId p = 0; p < placement_->num_partitions(); ++p) {
      if (placement_->primary(p) >= topology_->num_machines()) {
        return Status::InvalidArgument("placement machine out of range");
      }
    }
    return Status::OK();
  }

  void InitializeStates() {
    const Graph& g = graph_->encoded_graph();
    states_.clear();
    states_.reserve(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      states_.push_back(app_.InitState(v, g.OutNeighbors(v)));
    }
  }

  double MainBarrier() { return barrier_->ArriveAndWait(); }

  static double Seconds(std::chrono::steady_clock::duration d) {
    return std::chrono::duration<double>(d).count();
  }

  /// Superstep index in execution order: two stages per BSP iteration.
  static size_t StepIndex(int iteration, PhaseKind kind) {
    return static_cast<size_t>(iteration) * 2 +
           (kind == PhaseKind::kCombine ? 1 : 0);
  }

  PhaseSeconds& PhaseSlot(int iteration, PhaseKind kind, MachineId m) {
    return step_phases_[StepIndex(iteration, kind)][m];
  }

  /// Books a worker's barrier idle time against its owned machines, split
  /// evenly: with workers == machines the attribution is exact; with fewer
  /// workers each hosted machine shares its worker's idle time.
  void AttributeBarrierWait(int iteration, PhaseKind kind, uint32_t w,
                            double seconds) {
    const std::vector<MachineId>& owned = owned_machines_[w];
    if (owned.empty() || seconds <= 0.0) {
      return;
    }
    const double share = seconds / static_cast<double>(owned.size());
    for (MachineId m : owned) {
      PhaseSlot(iteration, kind, m).barrier_s += share;
    }
  }

  /// Attaches the runtime's gauge providers to the flight recorder. Every
  /// provider reads only relaxed atomics (the mirrors maintained next to
  /// the mutex-protected structures), so sampling never contends with the
  /// run. Per-entity series are registered up to a small fan-out cap and
  /// fall back to aggregates beyond it — M^2 channel series at large M
  /// would dominate the recorder's own memory; all-zero series are elided
  /// at export either way.
  void RegisterTelemetryGauges() {
    constexpr uint32_t kPerEntityCap = 8;
    const std::vector<size_t> capacities =
        PlanChannelCapacities(*topology_, options_.channel_window_bytes);
    double total_capacity = 0.0;
    for (size_t c : capacities) {
      total_capacity += static_cast<double>(c);
    }
    if (num_machines_ <= kPerEntityCap) {
      for (MachineId s = 0; s < num_machines_; ++s) {
        for (MachineId d = 0; d < num_machines_; ++d) {
          const size_t i = static_cast<size_t>(s) * num_machines_ + d;
          BoundedChannel<WireBatch>* ch = channels_[i].get();
          telemetry_->RegisterGauge(
              "rt_channel_bytes_in_flight.m" + std::to_string(s) + ".m" +
                  std::to_string(d),
              "bytes",
              [ch] { return static_cast<double>(ch->ApproxQueuedWeight()); },
              static_cast<double>(capacities[i]));
        }
      }
    }
    telemetry_->RegisterGauge(
        "rt_channel_bytes_in_flight.total", "bytes",
        [this] {
          double total = 0.0;
          for (const auto& ch : channels_) {
            total += static_cast<double>(ch->ApproxQueuedWeight());
          }
          return total;
        },
        total_capacity);
    telemetry_->RegisterGauge("rt_channel_queued_batches.total", "batches",
                              [this] {
                                double total = 0.0;
                                for (const auto& ch : channels_) {
                                  total += static_cast<double>(
                                      ch->ApproxDepth());
                                }
                                return total;
                              });
    if (num_machines_ <= kPerEntityCap) {
      for (MachineId m = 0; m < num_machines_; ++m) {
        std::atomic<uint64_t>* staged = &staged_wire_bytes_[m];
        telemetry_->RegisterGauge(
            "rt_staged_wire_bytes.m" + std::to_string(m), "bytes", [staged] {
              return static_cast<double>(
                  staged->load(std::memory_order_relaxed));
            });
      }
    }
    telemetry_->RegisterGauge("rt_staged_wire_bytes.total", "bytes", [this] {
      double total = 0.0;
      for (MachineId m = 0; m < num_machines_; ++m) {
        total += static_cast<double>(
            staged_wire_bytes_[m].load(std::memory_order_relaxed));
      }
      return total;
    });
    WireBufferPool* pool = pool_.get();
    telemetry_->RegisterGauge("rt_pool_free_buffers", "buffers", [pool] {
      return static_cast<double>(pool->ApproxFreeBuffers());
    });
    telemetry_->RegisterGauge(
        "rt_pool_outstanding_buffers", "buffers", [pool] {
          return static_cast<double>(pool->ApproxOutstandingBuffers());
        });
    if (num_machines_ <= kPerEntityCap) {
      for (MachineId m = 0; m < num_machines_; ++m) {
        telemetry_->RegisterGauge(
            "rt_inbox_chunks.m" + std::to_string(m), "chunks", [this, m] {
              double total = 0.0;
              for (PartitionId p = 0; p < placement_->num_partitions(); ++p) {
                if (placement_->primary(p) == m) {
                  total += static_cast<double>(inbox_chunk_counts_[p].load(
                      std::memory_order_relaxed));
                }
              }
              return total;
            });
      }
    }
    telemetry_->RegisterGauge("rt_inbox_chunks.total", "chunks", [this] {
      double total = 0.0;
      const uint32_t num_partitions = graph_->num_partitions();
      for (PartitionId p = 0; p < num_partitions; ++p) {
        total += static_cast<double>(
            inbox_chunk_counts_[p].load(std::memory_order_relaxed));
      }
      return total;
    });
    if (num_workers_ <= kPerEntityCap) {
      for (uint32_t w = 0; w < num_workers_; ++w) {
        std::atomic<uint32_t>* state = &worker_state_[w];
        telemetry_->RegisterGauge(
            "rt_worker_state.w" + std::to_string(w), "phase", [state] {
              return static_cast<double>(
                  state->load(std::memory_order_relaxed));
            });
      }
    }
    telemetry_->RegisterGauge(
        "rt_workers_busy", "workers",
        [this] {
          double busy = 0.0;
          for (uint32_t w = 0; w < num_workers_; ++w) {
            if (worker_state_[w].load(std::memory_order_relaxed) != 0) {
              busy += 1.0;
            }
          }
          return busy;
        },
        static_cast<double>(num_workers_));
    BspBarrier* barrier = barrier_.get();
    telemetry_->RegisterGauge(
        "rt_barrier_waiting", "threads",
        [barrier] { return static_cast<double>(barrier->ApproxWaiting()); },
        static_cast<double>(num_workers_ + 1));
    // The /proc probe costs a file read; subsampled so the base tick stays
    // cheap (see telemetry_sample microbenchmark). Not registered at all
    // when the probe is unavailable — an all-zero series would read as a
    // measurement.
    if (obs::ReadMemoryUsage().available) {
      telemetry_->RegisterGauge(
          "proc_rss_bytes", "bytes",
          [] { return static_cast<double>(obs::ReadMemoryUsage().rss_bytes); },
          /*ceiling=*/0.0, /*period_multiple=*/16);
    }
  }

  static RuntimeStage StageOf(PhaseKind kind) {
    return kind == PhaseKind::kTransfer ? RuntimeStage::kTransfer
                                        : RuntimeStage::kCombine;
  }

  static const char* StageName(PhaseKind kind) {
    return kind == PhaseKind::kTransfer ? "transfer" : "combine";
  }

  /// Drives one BSP stage to completion, re-assigning the tasks of machines
  /// that die mid-round to their next alive replica holder until every
  /// partition's task has run. Each extra round implies a fresh machine
  /// death, so the loop terminates within num_machines rounds.
  Status RunStage(PhaseKind kind, int iteration) {
    obs::ScopedSpan stage_span(
        config_.tracer,
        std::string("rt_") + StageName(kind) + "[" +
            std::to_string(iteration) + "]",
        "runtime");
    const uint32_t num_partitions = graph_->num_partitions();
    std::fill(done_.begin(), done_.end(), uint8_t{0});
    std::fill(stage_tasks_done_.begin(), stage_tasks_done_.end(), 0u);
    // Stage bounds relative to the run's start: the same clock and origin
    // the flight recorder samples against, so telemetry windows correlate
    // with supersteps by plain timestamp comparison.
    const size_t step = StepIndex(iteration, kind);
    step_bounds_[step].first =
        Seconds(std::chrono::steady_clock::now() - run_start_);
    bool recovery = false;
    for (;;) {
      // Assign every pending partition to its first alive replica holder
      // (Appendix B's recovery rule; round one degenerates to the primary).
      Phase phase;
      phase.kind = kind;
      phase.iteration = iteration;
      phase.recovery = recovery;
      phase.tasks.assign(num_machines_, {});
      uint32_t pending = 0;
      for (PartitionId p = 0; p < num_partitions; ++p) {
        if (done_[p]) {
          continue;
        }
        const MachineId m = placement_->FirstAliveReplica(p, alive_);
        if (m == kInvalidMachine) {
          // Workers stay parked at the start barrier; Run publishes the
          // shutdown phase and joins them before surfacing this error.
          return Status::Internal(
              "all replicas of partition " + std::to_string(p) +
              " are dead; " + StageName(kind) + " stage cannot recover");
        }
        phase.tasks[m].push_back(p);
        ++pending;
      }
      if (pending == 0) {
        step_bounds_[step].second =
            Seconds(std::chrono::steady_clock::now() - run_start_);
        return Status::OK();
      }
      phase_ = std::move(phase);
      locals_[num_workers_].barrier_wait_seconds += MainBarrier();  // start
      locals_[num_workers_].barrier_wait_seconds += MainBarrier();  // work done
      locals_[num_workers_].barrier_wait_seconds += MainBarrier();  // drained
      recovery = true;
    }
  }

  // --------------------------------------------------------- worker side

  void WorkerMain(uint32_t w) {
    WorkerLocal& local = locals_[w];
    for (;;) {
      const double start_wait = barrier_->ArriveAndWait();  // start barrier
      RecordBarrierWait(local, start_wait);
      if (phase_.kind == PhaseKind::kShutdown) {
        return;
      }
      const Phase& phase = phase_;
      // Copied out because phase_ is only stable until our last barrier of
      // this round releases the main thread to publish the next phase.
      const int iteration = phase.iteration;
      const PhaseKind kind = phase.kind;
      drain_phase_[w] = DrainPhase{iteration, kind};
      // Run-state gauge: the stage being worked (PhaseKind value), 0 while
      // parked at a barrier. One relaxed store per stage round.
      worker_state_[w].store(static_cast<uint32_t>(kind),
                             std::memory_order_relaxed);
      for (MachineId m : owned_machines_[w]) {
        if (!alive_[m]) {
          continue;
        }
        for (PartitionId p : phase.tasks[m]) {
          if (fault_.ShouldKill(m, iteration, StageOf(kind),
                                stage_tasks_done_[m])) {
            KillMachine(m, iteration, kind, w, local);
            break;
          }
          if (kind == PhaseKind::kTransfer) {
            RunTransferTask(p, m, iteration, w, local);
          } else {
            RunCombineTask(p, m, iteration, w, local);
          }
          done_[p] = 1;
          ++stage_tasks_done_[m];
          ++local.tasks_executed;
          if (phase.recovery) {
            ++local.tasks_reexecuted;
          }
          if (kind == PhaseKind::kTransfer) {
            // Ship batches whose flush deadline lapsed while the task ran,
            // so a quiet destination is not held hostage to the stage end.
            PhaseSlot(iteration, kind, m).blocked_s +=
                stagers_[m].FlushExpired(
                    [&](WireBatch&& batch) {
                      return SendBatch(std::move(batch), w, local);
                    });
          }
          Drain(w);  // keep inbound channels moving between tasks
        }
        if (kind == PhaseKind::kTransfer && alive_[m]) {
          // Stage-end flush: every batch must be on the wire before the
          // work-done barrier (the runtime's send-completeness contract).
          PhaseSlot(iteration, kind, m).blocked_s +=
              stagers_[m].FlushAll([&](WireBatch&& batch) {
                return SendBatch(std::move(batch), w, local);
              });
        }
      }
      worker_state_[w].store(0, std::memory_order_relaxed);
      const double work_wait =
          barrier_->ArriveAndWait([this, w] { Drain(w); });
      RecordBarrierWait(local, work_wait);
      // All sends of this stage were accepted before the work-done barrier
      // released, so one final sweep leaves every owned channel empty.
      Drain(w);
      const double drain_wait = barrier_->ArriveAndWait();  // drain done
      RecordBarrierWait(local, drain_wait);
      AttributeBarrierWait(iteration, kind, w,
                           start_wait + work_wait + drain_wait);
    }
  }

  void RecordBarrierWait(WorkerLocal& local, double seconds) {
    local.barrier_wait_seconds += seconds;
    local.barrier_wait.Add(seconds);
  }

  void KillMachine(MachineId m, int iteration, PhaseKind kind, uint32_t w,
                   WorkerLocal& local) {
    // Batches staged by this machine's *completed* tasks still ship: a
    // completed task's output survives the crash (its disk replicas do,
    // Appendix B), so the wire plane must not lose it. Flush before marking
    // the machine dead.
    if (kind == PhaseKind::kTransfer) {
      PhaseSlot(iteration, kind, m).blocked_s +=
          stagers_[m].FlushAll([&](WireBatch&& batch) {
            return SendBatch(std::move(batch), w, local);
          });
    }
    alive_[m] = 0;
    ++local.machine_failures;
    if (config_.tracer != nullptr) {
      config_.tracer->RecordInstant(
          obs::TraceClock::kWall, "rt_machine_failed", "runtime",
          config_.tracer->WallNowUs(), obs::Tracer::CurrentThreadLane(),
          {{"machine", std::to_string(m)}});
    }
  }

  /// Moves every batch waiting in worker w's inbound channels into the
  /// per-partition inboxes (deserializing segments into chunks). Only w ever
  /// consumes these channels (and only w writes inboxes of partitions whose
  /// primary it owns), so no lock is needed beyond the channels' own.
  void Drain(uint32_t w) {
    for (MachineId d : owned_machines_[w]) {
      for (MachineId s = 0; s < num_machines_; ++s) {
        BoundedChannel<WireBatch>& ch =
            *channels_[static_cast<size_t>(s) * num_machines_ + d];
        while (std::optional<WireBatch> batch = ch.TryRecv()) {
          ReceiveBatch(std::move(*batch), d, w);
        }
      }
    }
  }

  /// Unpacks a received batch into inbox chunks and recycles its payload.
  /// Deserialization cost is booked as serialize time of the *receiving*
  /// machine in the current stage's slot (single-writer discipline holds:
  /// d's owner worker is the one draining).
  ///
  /// Compute/communicate overlap: each real record is *counted* into the
  /// destination partition's combine scratch (counts + frontier bits) right
  /// here, while senders are still computing, so by the time the combine
  /// task runs only the prefix sum and one O(M) placement pass remain of
  /// the inbox reconstruction. Counting is order-independent, so arrival
  /// order does not matter; the placement pass walks chunks in sorted-src
  /// order and is what fixes the sequential message order.
  void ReceiveBatch(WireBatch batch, MachineId d, uint32_t w) {
    const auto unpack_start = std::chrono::steady_clock::now();
    const double wire_bytes = static_cast<double>(batch.wire_size());
    WireBatchReader<Message> reader(batch);
    WorkerScratch& ws = worker_scratch_[w];
    for (;;) {
      // Decode into a recycled chunk's record vectors (capacity kept), so
      // steady-state unpacking allocates nothing.
      InboxChunk chunk;
      if (!ws.chunk_pool.empty()) {
        chunk = std::move(ws.chunk_pool.back());
        ws.chunk_pool.pop_back();
      }
      typename WireBatchReader<Message>::Segment segment;
      segment.real = std::move(chunk.real);
      segment.virtuals = std::move(chunk.virtuals);
      const bool decoded = reader.NextInto(segment);
      chunk.real = std::move(segment.real);
      chunk.virtuals = std::move(segment.virtuals);
      if (!decoded) {
        if (ws.chunk_pool.size() < kChunkPoolCap) {
          ws.chunk_pool.push_back(std::move(chunk));
        }
        break;
      }
      const PartitionId dst = segment.header.dst_partition;
      chunk.src = segment.header.src_partition;
      chunk.src_machine = batch.src_machine;
      chunk.priced_bytes = segment.header.priced_bytes;
      CombineScratch& plan = combine_scratch_[dst];
      if (!plan.active()) {
        const PartitionMeta& meta = graph_->partition(dst);
        plan.BeginRange(meta.begin, meta.end);
      }
      for (const auto& record : chunk.real) {
        plan.Count(record.first);
      }
      inbox_chunk_counts_[dst].fetch_add(1, std::memory_order_relaxed);
      inboxes_[dst].push_back(std::move(chunk));
    }
    pool_->Release(std::move(batch.payload));
    const DrainPhase phase = drain_phase_[w];
    PhaseSeconds& slot = PhaseSlot(phase.iteration, phase.kind, d);
    slot.serialize_s +=
        Seconds(std::chrono::steady_clock::now() - unpack_start);
    slot.wire_bytes += wire_bytes;
  }

  /// Books a sealed batch against its link and moves it into the channel.
  /// Returns the seconds the send spent blocked on channel backpressure
  /// (0 when the first TrySend lands), which flows back through the stager
  /// into the superstep timeline's blocked phase.
  double SendBatch(WireBatch&& batch, uint32_t w, WorkerLocal& local) {
    local.link_bytes[static_cast<size_t>(batch.src_machine) * num_machines_ +
                     batch.dst_machine] += batch.priced_bytes;
    local.messages_sent += batch.num_messages;
    ++local.buffers_sent;
    staged_wire_bytes_[batch.src_machine].fetch_add(
        batch.wire_size(), std::memory_order_relaxed);
    BoundedChannel<WireBatch>& ch =
        *channels_[static_cast<size_t>(batch.src_machine) * num_machines_ +
                   batch.dst_machine];
    const size_t weight = batch.wire_size() > 0 ? batch.wire_size() : 1;
    if (ch.TrySend(batch, weight)) {
      return 0.0;
    }
    // Backpressure loop: while the link is saturated, keep draining our own
    // inbound channels so the system as a whole cannot wedge. Drain before
    // the timed wait: when the full channel is one this worker owns (always
    // true at one worker), draining it is what frees the window, and waiting
    // first would just burn the timeout. Retries pass is_retry so the stall
    // stats count this batch once in items_stalled however long it waits.
    const auto stall_start = std::chrono::steady_clock::now();
    do {
      Drain(w);
      if (ch.TrySendFor(batch, std::chrono::microseconds(200), weight,
                        /*is_retry=*/true)) {
        break;
      }
    } while (!ch.TrySend(batch, weight, /*is_retry=*/true));
    return Seconds(std::chrono::steady_clock::now() - stall_start);
  }

  /// Runs the Transfer task of partition p on `exec_machine`. The task body
  /// only routes raw emissions into per-destination streams; local
  /// combination, pricing, and serialization all happen at staging time in
  /// the machine's WireStager (which replays the sequential runner's merge
  /// sequence, keeping results bit-identical).
  void RunTransferTask(PartitionId p, MachineId exec_machine, int iteration,
                       uint32_t w, WorkerLocal& local) {
    // Hot path: per-task events go through this worker's lock-free shard
    // (flushed into the tracer between supersteps), never the tracer mutex.
    const double task_start_us =
        sharded_ != nullptr ? config_.tracer->WallNowUs() : 0.0;
    const auto compute_start = std::chrono::steady_clock::now();
    const Graph& g = graph_->encoded_graph();
    const PartitionMeta& meta = graph_->partition(p);
    const uint32_t num_partitions = graph_->num_partitions();

    // Raw (emission-order) streams per destination partition, reused across
    // the worker's tasks (cleared, capacity kept). The whole task
    // accumulates before anything is staged so wire combination spans the
    // full stream — the precondition for exact byte reconciliation.
    WorkerScratch& ws = worker_scratch_[w];
    auto& real_out = ws.real_out;
    auto& virtual_out = ws.virtual_out;
    real_out.resize(num_partitions);
    virtual_out.resize(num_partitions);
    for (auto& stream : real_out) {
      stream.clear();
    }
    for (auto& stream : virtual_out) {
      stream.clear();
    }

    PropagationEmitter<Message> emitter;
    for (VertexId v = meta.begin; v < meta.end; ++v) {
      app_.Transfer(v, states_[v], g.OutNeighbors(v), emitter);
      emitter.Drain(
          [&](VertexId target, Message message) {
            real_out[graph_->PartitionOf(target)].emplace_back(
                target, std::move(message));
          },
          [&](uint64_t target, Message message) {
            virtual_out[target % num_partitions].emplace_back(
                target, std::move(message));
          });
    }
    const auto serialize_start = std::chrono::steady_clock::now();
    double blocked_s = 0.0;

    // Stage every non-empty stream in ascending destination order
    // (deterministic wire traffic); the stager seals and ships batches as
    // they fill.
    WireStager<App>& stager = stagers_[exec_machine];
    for (PartitionId dst = 0; dst < num_partitions; ++dst) {
      if (real_out[dst].empty() && virtual_out[dst].empty()) {
        continue;
      }
      blocked_s += stager.StageTask(
          p, dst, placement_->primary(dst), real_out[dst], virtual_out[dst],
          [&](WireBatch&& batch) {
            return SendBatch(std::move(batch), w, local);
          });
    }

    const auto task_end = std::chrono::steady_clock::now();
    PhaseSeconds& slot = PhaseSlot(iteration, PhaseKind::kTransfer,
                                   exec_machine);
    slot.compute_s += Seconds(serialize_start - compute_start);
    slot.serialize_s += Seconds(task_end - serialize_start) - blocked_s;
    slot.blocked_s += blocked_s;
    if (sharded_ != nullptr) {
      sharded_->shard(w).Record(obs::ShardEvent{
          transfer_name_id_, exec_machine, task_start_us,
          config_.tracer->WallNowUs() - task_start_us, p});
    }
  }

  /// Runs the Combine task of partition p: finishes the sort-free regroup of
  /// the received chunks (counts were accumulated at arrival) and applies
  /// Combine per vertex — every vertex for legacy apps, only frontier
  /// vertices for SilentVertexSkippableApps under gating — then folds
  /// virtual groups.
  void RunCombineTask(PartitionId p, MachineId exec_machine, int iteration,
                      uint32_t w, WorkerLocal& local) {
    const double task_start_us =
        sharded_ != nullptr ? config_.tracer->WallNowUs() : 0.0;
    const auto inbox_start = std::chrono::steady_clock::now();
    const Graph& g = graph_->encoded_graph();
    const PartitionMeta& meta = graph_->partition(p);
    std::vector<InboxChunk>& chunks = inboxes_[p];
    // Ascending src order recreates the sequential delivery loop (the
    // partition's own chunks land at the src == p slot automatically). The
    // sort must be *stable*: a stream split across batches arrives as
    // several chunks with the same src whose relative (emission) order
    // carries the sequential message order. Only chunks are sorted (a few
    // per stage); the per-message sort is gone.
    std::stable_sort(chunks.begin(), chunks.end(),
                     [](const InboxChunk& a, const InboxChunk& b) {
                       return a.src < b.src;
                     });
    if (exec_machine != placement_->primary(p)) {
      // Appendix-B recovery: the replica holder re-fetches the incoming
      // message spills that the dead primary had already received.
      for (const InboxChunk& chunk : chunks) {
        if (chunk.src_machine != exec_machine) {
          local.refetch_bytes += chunk.priced_bytes;
        }
      }
    }

    // Placement pass of the counting scatter: counts and frontier bits were
    // built as chunks arrived (ReceiveBatch), so reconstruction is one
    // prefix sum plus a single O(M) walk of the sorted chunks that drops
    // each message straight into its grouped position. A stable counting
    // sort yields the exact permutation of the legacy stable_sort, so
    // grouped runs are byte-identical to the sequential inbox order.
    WorkerScratch& ws = worker_scratch_[w];
    CombineScratch& plan = combine_scratch_[p];
    if (!plan.active()) {
      plan.BeginRange(meta.begin, meta.end);  // partition received nothing
    }
    const auto scatter_start = std::chrono::steady_clock::now();
    plan.FinishCounts();
    std::vector<Message>& grouped = ws.grouped;
    grouped.clear();
    grouped.resize(static_cast<size_t>(plan.total()));
    auto& virtual_messages = ws.virtual_messages;
    virtual_messages.clear();
    for (InboxChunk& chunk : chunks) {
      for (auto& [target, message] : chunk.real) {
        grouped[plan.PlaceIndex(target)] = std::move(message);
      }
      std::move(chunk.virtuals.begin(), chunk.virtuals.end(),
                std::back_inserter(virtual_messages));
    }
    const uint64_t scattered = plan.total();
    local.combine_scatter_seconds +=
        Seconds(std::chrono::steady_clock::now() - scatter_start);
    local.combine_messages_scattered += scattered;
    RecycleChunks(chunks, ws);
    inbox_chunk_counts_[p].store(0, std::memory_order_relaxed);

    // Everything up to here reconstructed the sequential inbox from wire
    // buffers: serialization time. The rest is user compute.
    const auto compute_start = std::chrono::steady_clock::now();
    std::vector<Message>& vertex_messages = ws.vertex_messages;
    const size_t range = plan.range_size();
    auto combine_vertex = [&](size_t i) {
      const VertexId v = meta.begin + static_cast<VertexId>(i);
      vertex_messages.clear();
      for (size_t j = plan.RunBegin(i), end = plan.RunEnd(i); j < end; ++j) {
        vertex_messages.push_back(std::move(grouped[j]));
      }
      app_.Combine(v, states_[v], g.OutNeighbors(v), vertex_messages);
    };
    uint64_t skipped = 0;
    bool gated = false;
    if constexpr (SilentVertexSkippableApp<App>) {
      if (config_.frontier_gating) {
        // Frontier-gated loop: visit only vertices whose received bit is
        // set; the app's kSkipSilentVertices contract makes skipping the
        // rest the identity.
        gated = true;
        uint64_t visited = 0;
        for (size_t i = plan.NextReceived(0); i < range;
             i = plan.NextReceived(i + 1)) {
          combine_vertex(i);
          ++visited;
        }
        skipped = static_cast<uint64_t>(range) - visited;
      }
    }
    if (!gated) {
      for (size_t i = 0; i < range; ++i) {
        combine_vertex(i);
      }
    }
    local.frontier_vertices_skipped += skipped;
    plan.Reset();

    if constexpr (VirtualVertexApp<App>) {
      // Virtual IDs are arbitrary 64-bit values: rank the distinct IDs and
      // scatter (combine_plan.h) instead of sorting all M records.
      GroupVirtualMessages(ws.vgroups, virtual_messages, ws.virtual_grouped);
      std::vector<Message>& group = ws.virtual_group;
      for (size_t i = 0; i < ws.vgroups.ids.size(); ++i) {
        const uint64_t id = ws.vgroups.ids[i];
        group.clear();
        for (size_t j = ws.vgroups.offsets[i]; j < ws.vgroups.offsets[i + 1];
             ++j) {
          group.push_back(std::move(ws.virtual_grouped[j]));
        }
        virtual_results_[p].emplace_back(id, app_.CombineVirtual(id, group));
      }
    }

    const auto task_end = std::chrono::steady_clock::now();
    PhaseSeconds& slot = PhaseSlot(iteration, PhaseKind::kCombine,
                                   exec_machine);
    slot.serialize_s += Seconds(compute_start - inbox_start);
    slot.compute_s += Seconds(task_end - compute_start);
    slot.scatter_messages += static_cast<double>(scattered);
    slot.frontier_skipped += static_cast<double>(skipped);
    if (sharded_ != nullptr) {
      sharded_->shard(w).Record(obs::ShardEvent{
          combine_name_id_, exec_machine, task_start_us,
          config_.tracer->WallNowUs() - task_start_us, p});
    }
  }

  /// Parks consumed chunks on the worker's freelist (record capacity kept)
  /// instead of the legacy per-task clear + shrink_to_fit churn; overflow
  /// beyond the cap simply deallocates. The inbox vector itself keeps its
  /// capacity across iterations.
  void RecycleChunks(std::vector<InboxChunk>& chunks, WorkerScratch& ws) {
    for (InboxChunk& chunk : chunks) {
      if (ws.chunk_pool.size() >= kChunkPoolCap) {
        break;
      }
      chunk.real.clear();
      chunk.virtuals.clear();
      ws.chunk_pool.push_back(std::move(chunk));
    }
    chunks.clear();
  }

  // ------------------------------------------------------------- wrap-up

  void FinalizeStats() {
    stats_.num_workers = num_workers_;
    stats_.num_machines = num_machines_;
    stats_.iterations = config_.iterations;
    stats_.barrier_generations = barrier_->generation();
    stats_.link_bytes.assign(
        static_cast<size_t>(num_machines_) * num_machines_, 0);
    for (const WorkerLocal& local : locals_) {
      stats_.tasks_executed += local.tasks_executed;
      stats_.tasks_reexecuted += local.tasks_reexecuted;
      stats_.machine_failures += local.machine_failures;
      stats_.messages_sent += local.messages_sent;
      stats_.buffers_sent += local.buffers_sent;
      stats_.refetch_bytes += local.refetch_bytes;
      stats_.combine_messages_scattered += local.combine_messages_scattered;
      stats_.combine_scatter_seconds += local.combine_scatter_seconds;
      stats_.frontier_vertices_skipped += local.frontier_vertices_skipped;
      stats_.barrier_wait_seconds += local.barrier_wait_seconds;
      stats_.barrier_wait.Merge(local.barrier_wait);
      for (size_t i = 0; i < local.link_bytes.size(); ++i) {
        stats_.link_bytes[i] += local.link_bytes[i];
      }
    }
    // Mean/max over *workers only* (locals_[num_workers_] is the main
    // thread, whose waits overlap every worker's): the per-thread view that
    // stays comparable to wall_seconds where the overlapping sum does not.
    double wait_total = 0.0;
    for (uint32_t w = 0; w < num_workers_; ++w) {
      wait_total += locals_[w].barrier_wait_seconds;
      stats_.barrier_wait_max_s =
          std::max(stats_.barrier_wait_max_s, locals_[w].barrier_wait_seconds);
    }
    stats_.barrier_wait_mean_s =
        num_workers_ > 0 ? wait_total / num_workers_ : 0.0;
    stats_.channels.reserve(channels_.size());
    for (const auto& channel : channels_) {
      ChannelStats snapshot = channel->stats();
      stats_.send_stalls += snapshot.stall_attempts;
      stats_.items_stalled += snapshot.items_stalled;
      stats_.channel_depth.Merge(snapshot.depth_on_send);
      stats_.channels.push_back(std::move(snapshot));
    }
    for (const WireStager<App>& stager : stagers_) {
      const WireStagerStats& ws = stager.stats();
      stats_.wire_batches_sent += ws.batches_sealed;
      stats_.wire_segments_sent += ws.segments_sealed;
      stats_.wire_payload_bytes += ws.payload_bytes;
      stats_.wire_messages_combined += ws.messages_combined;
      stats_.wire_flush_size += ws.flush_size;
      stats_.wire_flush_deadline += ws.flush_deadline;
      stats_.wire_flush_stage_end += ws.flush_stage_end;
      stats_.batch_fill.Merge(ws.batch_fill);
    }
    if (pool_ != nullptr) {
      const WireBufferPool::Stats pool = pool_->stats();
      stats_.pool_buffers_acquired = pool.acquires;
      stats_.pool_buffers_reused = pool.reuses;
    }

    stats_.timeline.clear();
    stats_.timeline.reserve(step_phases_.size());
    for (size_t step = 0; step < step_phases_.size(); ++step) {
      SuperstepProfile profile;
      profile.iteration = static_cast<int>(step / 2);
      profile.stage = step % 2 == 0 ? RuntimeStage::kTransfer
                                    : RuntimeStage::kCombine;
      if (step < step_bounds_.size()) {
        profile.start_s = step_bounds_[step].first;
        profile.end_s = step_bounds_[step].second;
      }
      profile.machines = std::move(step_phases_[step]);
      stats_.timeline.push_back(std::move(profile));
    }
    step_phases_.clear();
    if (sharded_ != nullptr) {
      stats_.trace_events_dropped = sharded_->total_dropped();
    }
    if (telemetry_ != nullptr) {
      stats_.telemetry_samples = telemetry_->samples_taken();
      stats_.telemetry_samples_dropped = telemetry_->total_dropped();
    }
    const obs::MemoryUsage memory = obs::ReadMemoryUsage();
    stats_.rss_bytes = memory.rss_bytes;
    stats_.peak_rss_bytes = memory.peak_rss_bytes;

    obs::MetricsRegistry* metrics = config_.metrics;
    if (metrics == nullptr) {
      return;
    }
    metrics->CounterRef("runtime_runs_total").Increment();
    metrics->CounterRef("runtime_tasks_executed")
        .Increment(stats_.tasks_executed);
    metrics->CounterRef("runtime_tasks_reexecuted")
        .Increment(stats_.tasks_reexecuted);
    metrics->CounterRef("runtime_machine_failures")
        .Increment(stats_.machine_failures);
    metrics->CounterRef("runtime_messages_sent")
        .Increment(stats_.messages_sent);
    metrics->CounterRef("runtime_buffers_sent").Increment(stats_.buffers_sent);
    metrics->CounterRef("runtime_send_stalls").Increment(stats_.send_stalls);
    metrics->CounterRef("runtime_items_stalled")
        .Increment(stats_.items_stalled);
    metrics->CounterRef("runtime_wire_batches_sent")
        .Increment(stats_.wire_batches_sent);
    metrics->CounterRef("runtime_wire_segments_sent")
        .Increment(stats_.wire_segments_sent);
    metrics->CounterRef("runtime_wire_payload_bytes")
        .Increment(stats_.wire_payload_bytes);
    metrics->CounterRef("runtime_wire_messages_combined")
        .Increment(stats_.wire_messages_combined);
    metrics->CounterRef("runtime_combine_messages_scattered")
        .Increment(stats_.combine_messages_scattered);
    metrics->CounterRef("runtime_frontier_vertices_skipped")
        .Increment(stats_.frontier_vertices_skipped);
    metrics->GaugeRef("runtime_combine_scatter_seconds")
        .Set(stats_.combine_scatter_seconds);
    metrics->CounterRef("runtime_barrier_generations")
        .Increment(stats_.barrier_generations);
    metrics->CounterRef("runtime_network_bytes")
        .Increment(stats_.TotalNetworkBytes());
    metrics->GaugeRef("runtime_wall_seconds").Set(stats_.wall_seconds);
    metrics->GaugeRef("runtime_barrier_wait_seconds")
        .Set(stats_.barrier_wait_seconds);
    metrics->GaugeRef("runtime_barrier_wait_mean_seconds")
        .Set(stats_.barrier_wait_mean_s);
    metrics->GaugeRef("runtime_barrier_wait_max_seconds")
        .Set(stats_.barrier_wait_max_s);
    metrics->CounterRef("runtime_telemetry_samples")
        .Increment(stats_.telemetry_samples);
    metrics->CounterRef("runtime_telemetry_samples_dropped")
        .Increment(stats_.telemetry_samples_dropped);
    // Plain end-of-run memory gauges, exported whether or not the sampler
    // ran: the bench plane gates peak RSS from these.
    metrics->GaugeRef("process_rss_bytes")
        .Set(static_cast<double>(stats_.rss_bytes));
    metrics->GaugeRef("process_peak_rss_bytes")
        .Set(static_cast<double>(stats_.peak_rss_bytes));
    metrics->HistogramRef("runtime_channel_depth")
        .Merge(stats_.channel_depth);
    metrics->HistogramRef("runtime_barrier_wait").Merge(stats_.barrier_wait);
    metrics->CounterRef("runtime_trace_events_dropped")
        .Increment(stats_.trace_events_dropped);
    double critical_busy = 0.0;
    for (const CriticalPathEntry& entry : ComputeCriticalPath(stats_.timeline)) {
      critical_busy += entry.busy_s;
    }
    metrics->GaugeRef("runtime_critical_path_busy_seconds").Set(critical_busy);
  }

  const PartitionedGraph* graph_;
  const ReplicatedPlacement* placement_;
  const Topology* topology_;
  App app_;
  PropagationConfig config_;
  RuntimeOptions options_;
  FaultController fault_;

  uint32_t num_machines_ = 0;
  uint32_t num_workers_ = 0;
  std::vector<std::vector<MachineId>> owned_machines_;
  std::vector<std::unique_ptr<BoundedChannel<WireBatch>>> channels_;
  std::unique_ptr<BspBarrier> barrier_;
  /// Payload freelist shared by all stagers (thread-safe on its own).
  std::unique_ptr<WireBufferPool> pool_;
  /// stagers_[m]: machine m's wire stager, touched only by m's owner worker.
  std::vector<WireStager<App>> stagers_;

  // Shared state with single-writer-per-element or barrier-separated access
  // (the data-race-freedom discipline TSan verifies):
  //  - phase_: written by main before the start barrier, read by workers
  //    after it releases;
  //  - done_[p], inboxes_[p], virtual_results_[p]: written by the one worker
  //    executing/owning that partition this round, read by main (and any
  //    re-assigned worker) only across a barrier;
  //  - combine_scratch_[p]: counts/frontier bits written by the drain worker
  //    of p's primary machine during the transfer stage (same single writer
  //    as inboxes_[p]), consumed and Reset() by p's combine executor across
  //    the stage barrier;
  //  - alive_[m], stage_tasks_done_[m]: written solely by m's owner worker
  //    (reset by main between stages, across a barrier);
  //  - states_[v]: written by the Combine executor of v's partition, read
  //    by the next iteration's Transfer executor across two barriers.
  //  - drain_phase_[w]: written and read only by worker w.
  Phase phase_;
  std::vector<uint8_t> done_;
  std::vector<uint8_t> alive_;
  std::vector<uint32_t> stage_tasks_done_;
  std::vector<std::vector<InboxChunk>> inboxes_;
  std::vector<CombineScratch> combine_scratch_;
  std::vector<VertexState> states_;
  std::vector<std::vector<std::pair<uint64_t, VirtualOutput>>> virtual_results_;
  std::vector<WorkerLocal> locals_;
  /// worker_scratch_[w]: pooled regroup/output buffers touched only by
  /// worker w (same discipline as drain_phase_[w]).
  std::vector<WorkerScratch> worker_scratch_;
  std::vector<DrainPhase> drain_phase_;

  //  - step_phases_[step][m]: written solely by m's owner worker during that
  //    superstep, read by main after the join.
  std::vector<std::vector<PhaseSeconds>> step_phases_;
  /// (start_s, end_s) of each superstep relative to run_start_, stamped by
  /// the main thread around the stage's barrier rounds.
  std::vector<std::pair<double, double>> step_bounds_;
  std::unique_ptr<obs::ShardedTracer> sharded_;  ///< null when tracing is off
  uint32_t transfer_name_id_ = 0;
  uint32_t combine_name_id_ = 0;

  // Flight-recorder plane. The atomic arrays are lock-free mirrors written
  // by the instrumented paths (relaxed, batch granularity) and read by the
  // sampler thread; the recorder itself stops before Run returns, so its
  // providers never outlive the structures they read.
  std::unique_ptr<obs::TelemetryRecorder> telemetry_;
  std::unique_ptr<std::atomic<uint64_t>[]> inbox_chunk_counts_;  ///< per part.
  std::unique_ptr<std::atomic<uint64_t>[]> staged_wire_bytes_;   ///< per mach.
  std::unique_ptr<std::atomic<uint32_t>[]> worker_state_;  ///< PhaseKind or 0
  std::chrono::steady_clock::time_point run_start_;

  std::map<uint64_t, VirtualOutput> virtual_outputs_;
  RuntimeStats stats_;
};

}  // namespace runtime
}  // namespace surfer

#endif  // SURFER_RUNTIME_EXECUTOR_H_
