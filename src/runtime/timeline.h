#ifndef SURFER_RUNTIME_TIMELINE_H_
#define SURFER_RUNTIME_TIMELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"
#include "obs/json.h"
#include "runtime/fault.h"

namespace surfer {
namespace runtime {

/// Where one machine's time went during one BSP superstep stage. The four
/// phases mirror the paper's propagation cost decomposition: user compute
/// (Transfer/Combine bodies), serialization (building and reconstructing
/// message buffers), channel-blocked (backpressure stalls on saturated
/// links), and barrier-wait (idle time behind stragglers).
struct PhaseSeconds {
  double compute_s = 0.0;
  double serialize_s = 0.0;
  double blocked_s = 0.0;
  double barrier_s = 0.0;
  /// Wire-batch payload bytes received by this machine during the stage
  /// (batch-level attribution; not a duration, but it rides the same
  /// per-(superstep, machine) slot so reports can correlate bytes with
  /// serialize time).
  double wire_bytes = 0.0;
  /// Messages this machine regrouped through the sort-free counting scatter
  /// during the stage's combine tasks (count, not a duration; rides the slot
  /// like wire_bytes so reports can derive per-stage scatter throughput).
  double scatter_messages = 0.0;
  /// Vertices the frontier-gated combine loop skipped (silent vertices of
  /// SilentVertexSkippableApp partitions; zero for non-conforming apps or
  /// when gating is off).
  double frontier_skipped = 0.0;

  /// Busy time: everything except waiting at the barrier. This is the
  /// quantity the critical path chains, because barrier wait is by
  /// definition time spent behind some *other* machine's busy time.
  double Busy() const { return compute_s + serialize_s + blocked_s; }

  void MergeFrom(const PhaseSeconds& other) {
    compute_s += other.compute_s;
    serialize_s += other.serialize_s;
    blocked_s += other.blocked_s;
    barrier_s += other.barrier_s;
    wire_bytes += other.wire_bytes;
    scatter_messages += other.scatter_messages;
    frontier_skipped += other.frontier_skipped;
  }
};

/// One superstep stage (a Transfer or Combine half of a BSP iteration) with
/// a per-machine phase breakdown. Recovery rounds triggered by faults fold
/// into the same superstep.
struct SuperstepProfile {
  int iteration = 0;
  RuntimeStage stage = RuntimeStage::kTransfer;
  /// Wall-clock bounds of the stage relative to the run's start (schema
  /// v3), stamped by the main thread around the barrier rounds. Both zero
  /// on profiles built by v1/v2-era producers; consumers correlating
  /// telemetry timestamps against supersteps must tolerate that.
  double start_s = 0.0;
  double end_s = 0.0;
  /// Indexed by machine id; machines that ran nothing stay all-zero.
  std::vector<PhaseSeconds> machines;
};

/// Straggler/skew statistics of one superstep: who was slowest, by how much
/// relative to the mean, and which phase dominated its time.
struct StragglerStats {
  MachineId machine = kInvalidMachine;
  double max_busy_s = 0.0;
  double mean_busy_s = 0.0;
  /// max/mean over machines that did any work; 1.0 means perfectly level.
  double skew = 0.0;
  /// "compute", "serialize", or "blocked" — the slowest machine's top phase.
  std::string dominant_phase;
};

/// One link of the critical path: the slowest machine of one superstep.
struct CriticalPathEntry {
  size_t step = 0;  ///< iteration * 2 + (stage == kCombine)
  int iteration = 0;
  RuntimeStage stage = RuntimeStage::kTransfer;
  MachineId machine = kInvalidMachine;
  double busy_s = 0.0;
};

const char* RuntimeStageName(RuntimeStage stage);

StragglerStats ComputeStraggler(const SuperstepProfile& step);

/// The critical path through the BSP DAG: every barrier generation is a full
/// synchronization point, so the chain of per-superstep slowest machines is
/// exactly the path that bounds response time. Entries for supersteps where
/// no machine did any work are still emitted (busy_s == 0) so the chain
/// always has one entry per superstep.
std::vector<CriticalPathEntry> ComputeCriticalPath(
    const std::vector<SuperstepProfile>& timeline);

/// Serializes the timeline into the run report's "timeline" block (schema
/// v2): {"steps": [...], "critical_path": {...}}. Each step carries its
/// per-machine phase breakdown plus derived straggler stats; the critical
/// path block chains the per-step slowest machines and sums their busy time.
obs::JsonValue TimelineToJson(const std::vector<SuperstepProfile>& timeline);

}  // namespace runtime
}  // namespace surfer

#endif  // SURFER_RUNTIME_TIMELINE_H_
