#ifndef SURFER_RUNTIME_TIMELINE_H_
#define SURFER_RUNTIME_TIMELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"
#include "obs/json.h"
#include "runtime/fault.h"

namespace surfer {
namespace runtime {

/// Where one machine's time went during one BSP superstep stage. The four
/// phases mirror the paper's propagation cost decomposition: user compute
/// (Transfer/Combine bodies), serialization (building and reconstructing
/// message buffers), channel-blocked (backpressure stalls on saturated
/// links), and barrier-wait (idle time behind stragglers).
struct PhaseSeconds {
  double compute_s = 0.0;
  double serialize_s = 0.0;
  double blocked_s = 0.0;
  double barrier_s = 0.0;
  /// Wire-batch payload bytes received by this machine during the stage
  /// (batch-level attribution; not a duration, but it rides the same
  /// per-(superstep, machine) slot so reports can correlate bytes with
  /// serialize time).
  double wire_bytes = 0.0;
  /// Messages this machine regrouped through the sort-free counting scatter
  /// during the stage's combine tasks (count, not a duration; rides the slot
  /// like wire_bytes so reports can derive per-stage scatter throughput).
  double scatter_messages = 0.0;
  /// Vertices the frontier-gated combine loop skipped (silent vertices of
  /// SilentVertexSkippableApp partitions; zero for non-conforming apps or
  /// when gating is off).
  double frontier_skipped = 0.0;

  /// Busy time: everything except waiting at the barrier. This is the
  /// quantity the critical path chains, because barrier wait is by
  /// definition time spent behind some *other* machine's busy time.
  double Busy() const { return compute_s + serialize_s + blocked_s; }

  void MergeFrom(const PhaseSeconds& other) {
    compute_s += other.compute_s;
    serialize_s += other.serialize_s;
    blocked_s += other.blocked_s;
    barrier_s += other.barrier_s;
    wire_bytes += other.wire_bytes;
    scatter_messages += other.scatter_messages;
    frontier_skipped += other.frontier_skipped;
  }
};

/// One superstep stage (a Transfer or Combine half of a BSP iteration) with
/// a per-machine phase breakdown. Recovery rounds triggered by faults fold
/// into the same superstep.
struct SuperstepProfile {
  int iteration = 0;
  RuntimeStage stage = RuntimeStage::kTransfer;
  /// Wall-clock bounds of the stage relative to the run's start (schema
  /// v3), stamped by the main thread around the barrier rounds. Both zero
  /// on profiles built by v1/v2-era producers; consumers correlating
  /// telemetry timestamps against supersteps must tolerate that.
  double start_s = 0.0;
  double end_s = 0.0;
  /// Indexed by machine id; machines that ran nothing stay all-zero.
  std::vector<PhaseSeconds> machines;
};

/// Straggler/skew statistics of one superstep: who was slowest, by how much
/// relative to the mean, and which phase dominated its time.
struct StragglerStats {
  MachineId machine = kInvalidMachine;
  double max_busy_s = 0.0;
  double mean_busy_s = 0.0;
  /// max/mean over machines that did any work; 1.0 means perfectly level.
  double skew = 0.0;
  /// "compute", "serialize", or "blocked" — the slowest machine's top phase.
  std::string dominant_phase;
};

/// One link of the critical path: the slowest machine of one superstep.
struct CriticalPathEntry {
  size_t step = 0;  ///< iteration * 2 + (stage == kCombine)
  int iteration = 0;
  RuntimeStage stage = RuntimeStage::kTransfer;
  MachineId machine = kInvalidMachine;
  double busy_s = 0.0;
};

const char* RuntimeStageName(RuntimeStage stage);

StragglerStats ComputeStraggler(const SuperstepProfile& step);

/// The critical path through the BSP DAG: every barrier generation is a full
/// synchronization point, so the chain of per-superstep slowest machines is
/// exactly the path that bounds response time. Entries for supersteps where
/// no machine did any work are still emitted (busy_s == 0) so the chain
/// always has one entry per superstep.
std::vector<CriticalPathEntry> ComputeCriticalPath(
    const std::vector<SuperstepProfile>& timeline);

/// Serializes the timeline into the run report's "timeline" block (schema
/// v2): {"steps": [...], "critical_path": {...}}. Each step carries its
/// per-machine phase breakdown plus derived straggler stats; the critical
/// path block chains the per-step slowest machines and sums their busy time.
obs::JsonValue TimelineToJson(const std::vector<SuperstepProfile>& timeline);

// ------------------------------------------------------------------ cluster
//
// The distributed engine's cluster-wide view: the coordinator records when
// it broadcast each round and when each worker *process* reported its
// barrier, and the workers' transports record per-(round, inbound link)
// frame-stamp aggregates. Folded together they attribute every round of the
// run to the process that bounded it and the link that fed that process.

/// One BSP round as the coordinator saw it: broadcast time and each
/// process's kRoundDone arrival (coordinator clock throughout).
struct ClusterRoundRecord {
  uint64_t seq = 0;
  int iteration = 0;
  int kind = 0;  ///< net::RoundKind value: 0 transfer, 1 combine, 2 resend
  uint64_t broadcast_unix_us = 0;
  std::vector<uint64_t> done_unix_us;  ///< per process; 0 = never reported
};

/// One per-(round, directed link) latency aggregate derived from frame
/// send/recv stamps. Latencies are clock-offset corrected by the caller
/// before they reach the analysis (the raw transport records are in mixed
/// clocks).
struct ClusterLinkSample {
  uint64_t seq = 0;
  uint32_t from_proc = 0;
  uint32_t to_proc = 0;
  uint32_t frames = 0;
  uint64_t bytes = 0;
  double mean_latency_us = 0.0;
  double max_latency_us = 0.0;
};

/// One round of the cluster critical path: the process whose barrier report
/// bounded the round, and the worst inbound link feeding it that round.
struct ClusterCriticalPathEntry {
  uint64_t seq = 0;
  int iteration = 0;
  int kind = 0;
  uint32_t proc = 0xFFFFFFFFu;  ///< 0xFFFFFFFF = no process reported
  double duration_s = 0.0;
  bool has_link = false;  ///< false when no data frames reached `proc`
  uint32_t link_from = 0;
  double link_mean_latency_us = 0.0;
  double link_max_latency_us = 0.0;
  uint64_t link_bytes = 0;
};

/// Stage name of a net::RoundKind value ("transfer"/"combine"/"resend").
const char* RoundKindName(int kind);

/// Chains the per-round slowest process (latest kRoundDone relative to the
/// round broadcast); every barrier is a full synchronization point, so this
/// is the cluster-level analogue of ComputeCriticalPath. Each entry is
/// annotated with the highest-latency inbound link of its process.
std::vector<ClusterCriticalPathEntry> ComputeClusterCriticalPath(
    const std::vector<ClusterRoundRecord>& rounds,
    const std::vector<ClusterLinkSample>& links);

/// Serializes the cluster view into the merged report's "cluster" block:
/// {"rounds": [...], "links": [...], "critical_path": {...},
///  "stragglers_flagged": n}.
obs::JsonValue ClusterTimelineToJson(
    const std::vector<ClusterRoundRecord>& rounds,
    const std::vector<ClusterLinkSample>& links,
    uint64_t stragglers_flagged);

}  // namespace runtime
}  // namespace surfer

#endif  // SURFER_RUNTIME_TIMELINE_H_
