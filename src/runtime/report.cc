#include "runtime/report.h"

#include <cstddef>
#include <cstdint>

namespace surfer {
namespace runtime {

namespace {

obs::JsonValue HistogramToJson(const Histogram& h) {
  obs::JsonValue out = obs::JsonValue::MakeObject();
  out.Set("count", static_cast<uint64_t>(h.count()));
  out.Set("mean", h.Mean());
  out.Set("max", h.max());
  out.Set("p50", h.Percentile(50.0));
  out.Set("p99", h.Percentile(99.0));
  return out;
}

}  // namespace

obs::JsonValue RuntimeStatsToJson(const RuntimeStats& stats) {
  obs::JsonValue block = obs::JsonValue::MakeObject();
  block.Set("num_workers", static_cast<uint64_t>(stats.num_workers));
  block.Set("num_machines", static_cast<uint64_t>(stats.num_machines));
  if (stats.num_processes > 0) {
    block.Set("num_processes", static_cast<uint64_t>(stats.num_processes));
  }
  block.Set("iterations", stats.iterations);
  block.Set("tasks_executed", stats.tasks_executed);
  block.Set("tasks_reexecuted", stats.tasks_reexecuted);
  block.Set("machine_failures", static_cast<uint64_t>(stats.machine_failures));
  block.Set("messages_sent", stats.messages_sent);
  block.Set("buffers_sent", stats.buffers_sent);
  block.Set("send_stalls", stats.send_stalls);
  block.Set("items_stalled", stats.items_stalled);
  block.Set("wire_batches_sent", stats.wire_batches_sent);
  block.Set("wire_segments_sent", stats.wire_segments_sent);
  block.Set("wire_payload_bytes", stats.wire_payload_bytes);
  block.Set("wire_messages_combined", stats.wire_messages_combined);
  block.Set("wire_flush_size", stats.wire_flush_size);
  block.Set("wire_flush_deadline", stats.wire_flush_deadline);
  block.Set("wire_flush_stage_end", stats.wire_flush_stage_end);
  block.Set("pool_buffers_acquired", stats.pool_buffers_acquired);
  block.Set("pool_buffers_reused", stats.pool_buffers_reused);
  // Fraction of staged messages merged away by wire-level combination
  // before being priced: combined / (combined + sent-on-the-wire).
  const uint64_t staged =
      stats.wire_messages_combined + stats.messages_sent;
  block.Set("wire_combine_hit_rate",
            staged > 0
                ? static_cast<double>(stats.wire_messages_combined) / staged
                : 0.0);
  block.Set("wire_serialize_bytes_per_sec",
            stats.wall_seconds > 0.0
                ? static_cast<double>(stats.wire_payload_bytes) /
                      stats.wall_seconds
                : 0.0);
  block.Set("combine_messages_scattered", stats.combine_messages_scattered);
  block.Set("combine_scatter_seconds", stats.combine_scatter_seconds);
  // The bench-gated regroup quantity: counting-scatter throughput in
  // messages per second (0 when no combine stage ran).
  block.Set("combine_scatter_msgs_per_sec",
            stats.combine_scatter_seconds > 0.0
                ? static_cast<double>(stats.combine_messages_scattered) /
                      stats.combine_scatter_seconds
                : 0.0);
  block.Set("frontier_vertices_skipped", stats.frontier_vertices_skipped);
  block.Set("barrier_wait_seconds", stats.barrier_wait_seconds);
  block.Set("barrier_wait_mean_s", stats.barrier_wait_mean_s);
  block.Set("barrier_wait_max_s", stats.barrier_wait_max_s);
  block.Set("barrier_generations", stats.barrier_generations);
  block.Set("refetch_bytes", stats.refetch_bytes);
  block.Set("tcp_bytes_sent", stats.tcp_bytes_sent);
  block.Set("tcp_frames_sent", stats.tcp_frames_sent);
  block.Set("resend_bytes", stats.resend_bytes);
  block.Set("replication_bytes", stats.replication_bytes);
  block.Set("wall_seconds", stats.wall_seconds);
  block.Set("network_bytes", stats.TotalNetworkBytes());
  block.Set("telemetry_samples", stats.telemetry_samples);
  block.Set("telemetry_samples_dropped", stats.telemetry_samples_dropped);
  // Suppressed when the memory probe was unavailable (both counters zero):
  // a zero here would read as a measurement, not a failure to measure.
  if (stats.rss_bytes > 0 || stats.peak_rss_bytes > 0) {
    block.Set("rss_bytes", stats.rss_bytes);
    block.Set("peak_rss_bytes", stats.peak_rss_bytes);
  }
  block.Set("channel_depth", HistogramToJson(stats.channel_depth));
  block.Set("barrier_wait", HistogramToJson(stats.barrier_wait));
  block.Set("batch_fill", HistogramToJson(stats.batch_fill));

  // Only non-trivial channels make it into the report: with M machines there
  // are M^2 channels but most carry nothing on sparse exchanges.
  obs::JsonValue channels = obs::JsonValue::MakeArray();
  const uint32_t n = stats.num_machines;
  for (uint32_t src = 0; src < n; ++src) {
    for (uint32_t dst = 0; dst < n; ++dst) {
      const size_t idx = static_cast<size_t>(src) * n + dst;
      if (idx >= stats.channels.size()) {
        // Engines without per-link channels (the distributed engine moves
        // bytes over TCP sockets instead) report link_bytes only.
        const uint64_t bytes =
            idx < stats.link_bytes.size() ? stats.link_bytes[idx] : 0;
        if (bytes == 0) {
          continue;
        }
        obs::JsonValue entry = obs::JsonValue::MakeObject();
        entry.Set("src", static_cast<uint64_t>(src));
        entry.Set("dst", static_cast<uint64_t>(dst));
        entry.Set("bytes", bytes);
        channels.Append(std::move(entry));
        continue;
      }
      const ChannelStats& ch = stats.channels[idx];
      if (ch.sends == 0 && ch.stall_attempts == 0) {
        continue;
      }
      obs::JsonValue entry = obs::JsonValue::MakeObject();
      entry.Set("src", static_cast<uint64_t>(src));
      entry.Set("dst", static_cast<uint64_t>(dst));
      entry.Set("capacity", static_cast<uint64_t>(ch.capacity));
      entry.Set("bytes", stats.link_bytes.empty() ? uint64_t{0}
                                                  : stats.link_bytes[idx]);
      entry.Set("sends", ch.sends);
      entry.Set("receives", ch.receives);
      // "send_stalls" keeps its historical meaning (every failed attempt)
      // for report consumers; "items_stalled" is the deduplicated count.
      entry.Set("send_stalls", ch.stall_attempts);
      entry.Set("items_stalled", ch.items_stalled);
      entry.Set("max_depth", static_cast<uint64_t>(ch.max_depth));
      channels.Append(std::move(entry));
    }
  }
  block.Set("channels", std::move(channels));
  return block;
}

}  // namespace runtime
}  // namespace surfer
