#include "runtime/combine_plan.h"

namespace surfer {
namespace runtime {

void CombineScratch::BeginRange(VertexId begin, VertexId end) {
  begin_ = begin;
  end_ = end;
  total_ = 0;
  active_ = true;
  const size_t range = static_cast<size_t>(end - begin);
  counts_.assign(range, 0);
  frontier_.assign((range + 63) / 64, 0);
}

void CombineScratch::FinishCounts() {
  const size_t range = range_size();
  offsets_.resize(range + 1);
  cursor_.resize(range);
  size_t running = 0;
  for (size_t i = 0; i < range; ++i) {
    offsets_[i] = running;
    cursor_[i] = running;
    running += counts_[i];
  }
  offsets_[range] = running;
}

size_t CombineScratch::NextReceived(size_t from) const {
  const size_t range = range_size();
  if (from >= range) {
    return range;
  }
  size_t word = from >> 6;
  // Mask off bits below `from` in the first word, then skip empty words.
  uint64_t bits = frontier_[word] & (~uint64_t{0} << (from & 63));
  while (bits == 0) {
    if (++word >= frontier_.size()) {
      return range;
    }
    bits = frontier_[word];
  }
  const size_t i = (word << 6) + static_cast<size_t>(std::countr_zero(bits));
  return i < range ? i : range;
}

uint64_t CombineScratch::ReceivedCount() const {
  uint64_t received = 0;
  for (uint64_t word : frontier_) {
    received += static_cast<uint64_t>(std::popcount(word));
  }
  return received;
}

void VirtualGroupScratch::Clear() {
  ids.clear();
  counts.clear();
  offsets.clear();
  cursor.clear();
  rank.clear();
}

CombineScratch CombineScratchPool::Acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.empty()) {
    return CombineScratch{};
  }
  CombineScratch scratch = std::move(free_.back());
  free_.pop_back();
  return scratch;
}

void CombineScratchPool::Release(CombineScratch scratch) {
  scratch.Reset();
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(scratch));
}

}  // namespace runtime
}  // namespace surfer
