#include "runtime/channel_plan.h"

#include <algorithm>
#include <cmath>

namespace surfer {
namespace runtime {

std::vector<size_t> PlanChannelCapacities(const Topology& topology,
                                          size_t base_capacity) {
  const uint32_t n = topology.num_machines();
  const size_t base = std::max<size_t>(base_capacity, 1);
  std::vector<size_t> capacities(static_cast<size_t>(n) * n, base);
  const double max_bw = topology.MaxPairBandwidth();
  if (max_bw <= 0.0) {
    return capacities;  // single machine: only the self link exists
  }
  for (uint32_t src = 0; src < n; ++src) {
    for (uint32_t dst = 0; dst < n; ++dst) {
      if (src == dst) {
        continue;  // self links carry local traffic at full width
      }
      const double share = topology.Bandwidth(src, dst) / max_bw;
      const auto scaled =
          static_cast<size_t>(std::llround(static_cast<double>(base) *
                                           std::min(share, 1.0)));
      capacities[static_cast<size_t>(src) * n + dst] =
          std::max<size_t>(scaled, 1);
    }
  }
  return capacities;
}

}  // namespace runtime
}  // namespace surfer
