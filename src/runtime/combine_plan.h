#ifndef SURFER_RUNTIME_COMBINE_PLAN_H_
#define SURFER_RUNTIME_COMBINE_PLAN_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace surfer {
namespace runtime {

/// Scratch state of the sort-free combine regroup: a stable counting scatter
/// over the partition-local vertex range that replaces the per-partition
/// `stable_sort` of (target, Message) pairs.
///
/// Protocol per combine stage:
///   1. BeginRange(meta.begin, meta.end) — zero counts + frontier (pooled
///      storage, no allocation after warm-up);
///   2. Count(target) once per record, in any order (counts and the frontier
///      bitmap are order-independent, so the concurrent executor counts
///      incrementally as chunks arrive off the wire);
///   3. FinishCounts() — exclusive prefix sum into per-vertex run offsets;
///   4. PlaceIndex(target) once per record *in sequential stream order*: the
///      returned positions reproduce, byte for byte, the permutation a
///      stable_sort by target would produce (equal keys keep input order —
///      the defining property of a stable counting sort);
///   5. read runs via RunBegin/RunEnd and the frontier via Received /
///      NextReceived, then Reset() for the next stage.
///
/// The scatter is O(M + range) against the legacy sort's O(M log M), and the
/// frontier bitmap it builds for free is what lets SilentVertexSkippableApp
/// combine loops visit only vertices that actually received messages.
class CombineScratch {
 public:
  /// Arms the scratch for the dense key range [begin, end). O(range).
  void BeginRange(VertexId begin, VertexId end);

  /// True between BeginRange and Reset.
  bool active() const { return active_; }
  VertexId range_begin() const { return begin_; }
  size_t range_size() const { return static_cast<size_t>(end_ - begin_); }
  uint64_t total() const { return total_; }

  /// Tallies one record and marks its vertex in the frontier bitmap.
  void Count(VertexId target) {
    const size_t i = static_cast<size_t>(target - begin_);
    ++counts_[i];
    frontier_[i >> 6] |= uint64_t{1} << (i & 63);
    ++total_;
  }

  /// Exclusive prefix sum: after this, PlaceIndex hands out final positions
  /// and RunBegin/RunEnd bound each vertex's grouped run.
  void FinishCounts();

  /// Final position of the next record targeting `target`; records placed in
  /// stream order land in stable-sorted order.
  size_t PlaceIndex(VertexId target) {
    return cursor_[static_cast<size_t>(target - begin_)]++;
  }

  /// Grouped-run bounds of local vertex index i (valid after FinishCounts).
  size_t RunBegin(size_t i) const { return offsets_[i]; }
  size_t RunEnd(size_t i) const { return offsets_[i + 1]; }

  /// True when local vertex index i received at least one message.
  bool Received(size_t i) const {
    return (frontier_[i >> 6] >> (i & 63)) & 1;
  }

  /// Index of the first receiving vertex at or after `from`; range_size()
  /// when none remain. Word-skipping, so a sparse frontier is traversed in
  /// O(set bits + words).
  size_t NextReceived(size_t from) const;

  /// Number of distinct vertices that received messages this stage.
  uint64_t ReceivedCount() const;

  /// Disarms the scratch; pooled storage keeps its capacity.
  void Reset() {
    active_ = false;
    total_ = 0;
  }

 private:
  std::vector<uint32_t> counts_;
  std::vector<size_t> offsets_;  ///< range_size() + 1 exclusive prefix sums
  std::vector<size_t> cursor_;   ///< running placement cursors
  std::vector<uint64_t> frontier_;
  VertexId begin_ = 0;
  VertexId end_ = 0;
  uint64_t total_ = 0;
  bool active_ = false;
};

/// Scratch of the virtual-vertex regroup. Virtual IDs are arbitrary 64-bit
/// values (VDD uses the degree), so there is no dense range to count over;
/// instead the distinct IDs are ranked (only K distinct keys are sorted, not
/// all M records) and the same stable counting scatter runs over the ranks.
struct VirtualGroupScratch {
  std::vector<uint64_t> ids;       ///< distinct ids, ascending
  std::vector<uint32_t> counts;    ///< per distinct id
  std::vector<size_t> offsets;     ///< ids.size() + 1 group bounds
  std::vector<size_t> cursor;
  std::unordered_map<uint64_t, uint32_t> rank;

  void Clear();
};

/// Mutex-guarded freelist of CombineScratch objects for engines that run
/// combine tasks on pool threads (the sequential runner's ParallelFor);
/// the concurrent executor instead keeps one scratch per partition so it
/// can count incrementally at chunk arrival.
class CombineScratchPool {
 public:
  CombineScratch Acquire();
  void Release(CombineScratch scratch);

 private:
  std::mutex mu_;
  std::vector<CombineScratch> free_;
};

/// Groups a flat record vector (already in sequential stream order) by
/// target: `grouped` ends up byte-identical to sorting `records` with a
/// stable_sort on `.first` and projecting out the messages, and `scratch`
/// holds the per-vertex run offsets plus the received-message frontier.
/// Messages are moved out of `records`.
template <typename Message>
void GroupMessagesByVertex(CombineScratch& scratch, VertexId begin,
                           VertexId end,
                           std::vector<std::pair<VertexId, Message>>& records,
                           std::vector<Message>& grouped) {
  scratch.BeginRange(begin, end);
  for (const auto& record : records) {
    scratch.Count(record.first);
  }
  scratch.FinishCounts();
  grouped.clear();
  grouped.resize(records.size());
  for (auto& [target, message] : records) {
    grouped[scratch.PlaceIndex(target)] = std::move(message);
  }
}

/// Chunked variant: `chunks` is any range of holders exposing `.real`
/// record vectors whose concatenation is the sequential stream order (the
/// engines stable-sort chunks by src partition first). Returns the total
/// number of records scattered.
template <typename Message, typename Chunks>
uint64_t GroupChunkedMessages(CombineScratch& scratch, VertexId begin,
                              VertexId end, Chunks& chunks,
                              std::vector<Message>& grouped) {
  scratch.BeginRange(begin, end);
  for (auto& chunk : chunks) {
    for (const auto& record : chunk.real) {
      scratch.Count(record.first);
    }
  }
  scratch.FinishCounts();
  grouped.clear();
  grouped.resize(static_cast<size_t>(scratch.total()));
  for (auto& chunk : chunks) {
    for (auto& [target, message] : chunk.real) {
      grouped[scratch.PlaceIndex(target)] = std::move(message);
    }
  }
  return scratch.total();
}

/// Virtual-vertex regroup: ranks the distinct IDs of `records` (ascending),
/// then stable-scatters the messages into groups. `scratch.ids[i]`'s group
/// is `grouped[scratch.offsets[i], scratch.offsets[i + 1])`; group contents
/// match the legacy stable_sort-by-id regroup byte for byte.
template <typename Message>
void GroupVirtualMessages(VirtualGroupScratch& scratch,
                          std::vector<std::pair<uint64_t, Message>>& records,
                          std::vector<Message>& grouped) {
  scratch.Clear();
  for (const auto& record : records) {
    if (scratch.rank.emplace(record.first, 0).second) {
      scratch.ids.push_back(record.first);
    }
  }
  std::sort(scratch.ids.begin(), scratch.ids.end());
  for (uint32_t i = 0; i < scratch.ids.size(); ++i) {
    scratch.rank[scratch.ids[i]] = i;
  }
  scratch.counts.assign(scratch.ids.size(), 0);
  for (const auto& record : records) {
    ++scratch.counts[scratch.rank.find(record.first)->second];
  }
  scratch.offsets.assign(scratch.ids.size() + 1, 0);
  for (size_t i = 0; i < scratch.counts.size(); ++i) {
    scratch.offsets[i + 1] = scratch.offsets[i] + scratch.counts[i];
  }
  scratch.cursor.assign(scratch.offsets.begin(), scratch.offsets.end() - 1);
  grouped.clear();
  grouped.resize(records.size());
  for (auto& [id, message] : records) {
    grouped[scratch.cursor[scratch.rank.find(id)->second]++] =
        std::move(message);
  }
}

}  // namespace runtime
}  // namespace surfer

#endif  // SURFER_RUNTIME_COMBINE_PLAN_H_
