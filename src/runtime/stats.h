#ifndef SURFER_RUNTIME_STATS_H_
#define SURFER_RUNTIME_STATS_H_

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "graph/types.h"
#include "runtime/channel.h"

namespace surfer {
namespace runtime {

/// Wall-clock execution statistics for one RuntimeExecutor run. Collected
/// after the worker threads join, so everything here is plain data.
struct RuntimeStats {
  uint32_t num_workers = 0;
  uint32_t num_machines = 0;
  int iterations = 0;

  uint64_t tasks_executed = 0;    ///< transfer + combine tasks run, incl. retries
  uint64_t tasks_reexecuted = 0;  ///< tasks re-run on a replica after a kill
  uint32_t machine_failures = 0;

  uint64_t messages_sent = 0;  ///< materialized messages through channels
  uint64_t buffers_sent = 0;   ///< channel items (one buffer per src/dst pair)
  uint64_t send_stalls = 0;    ///< backpressure events across all channels

  double barrier_wait_seconds = 0.0;  ///< summed across workers + main
  uint64_t barrier_generations = 0;
  uint64_t refetch_bytes = 0;  ///< replica re-reads triggered by recovery
  double wall_seconds = 0.0;

  /// Row-major M x M actual bytes moved per (src machine -> dst machine).
  /// Off-diagonal entries are network traffic and, absent faults, must
  /// reconcile exactly with PropagationRunner::link_network_bytes().
  std::vector<uint64_t> link_bytes;

  /// Snapshot of every channel, indexed src * M + dst.
  std::vector<ChannelStats> channels;

  Histogram channel_depth;  ///< queue depth observed at each send, merged
  Histogram barrier_wait;   ///< per-wait seconds, merged across workers

  uint64_t TotalNetworkBytes() const {
    uint64_t total = 0;
    const uint32_t n = num_machines;
    for (uint32_t src = 0; src < n; ++src) {
      for (uint32_t dst = 0; dst < n; ++dst) {
        if (src != dst) {
          total += link_bytes[static_cast<size_t>(src) * n + dst];
        }
      }
    }
    return total;
  }
};

}  // namespace runtime
}  // namespace surfer

#endif  // SURFER_RUNTIME_STATS_H_
