#ifndef SURFER_RUNTIME_STATS_H_
#define SURFER_RUNTIME_STATS_H_

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "graph/types.h"
#include "runtime/channel.h"
#include "runtime/timeline.h"

namespace surfer {
namespace runtime {

/// Wall-clock execution statistics for one RuntimeExecutor run. Collected
/// after the worker threads join, so everything here is plain data.
struct RuntimeStats {
  uint32_t num_workers = 0;
  uint32_t num_machines = 0;
  /// Worker OS processes in a distributed run (0 for in-process engines).
  uint32_t num_processes = 0;
  int iterations = 0;

  uint64_t tasks_executed = 0;    ///< transfer + combine tasks run, incl. retries
  uint64_t tasks_reexecuted = 0;  ///< tasks re-run on a replica after a kill
  uint32_t machine_failures = 0;

  uint64_t messages_sent = 0;  ///< materialized messages through channels
  uint64_t buffers_sent = 0;   ///< channel items (wire batches put on a link)
  uint64_t send_stalls = 0;    ///< stall *attempts* across all channels
  uint64_t items_stalled = 0;  ///< distinct batches that hit a full channel

  // Wire-batch plane (see runtime/wire_batch.h). A batch is one pooled
  // buffer sent to one destination machine; a segment is one (src, dst)
  // partition stream chunk inside a batch.
  uint64_t wire_batches_sent = 0;
  uint64_t wire_segments_sent = 0;
  uint64_t wire_payload_bytes = 0;       ///< serialized bytes across batches
  uint64_t wire_messages_combined = 0;   ///< messages merged away at seal time
  uint64_t wire_flush_size = 0;          ///< seals forced by max_batch_bytes
  uint64_t wire_flush_deadline = 0;      ///< seals forced by the flush deadline
  uint64_t wire_flush_stage_end = 0;     ///< seals at end-of-stage FlushAll
  uint64_t pool_buffers_acquired = 0;    ///< WireBufferPool::Acquire calls
  uint64_t pool_buffers_reused = 0;      ///< acquires served from the freelist

  // Sort-free combine regroup (see runtime/combine_plan.h). Scatter
  // throughput (messages / scatter seconds) is the bench-gated quantity:
  // it is what the counting scatter buys over the legacy O(M log M) sort.
  uint64_t combine_messages_scattered = 0;  ///< records placed by the scatter
  double combine_scatter_seconds = 0.0;     ///< prefix-sum + placement time
  /// Vertices the frontier-gated combine loop skipped (apps declaring
  /// kSkipSilentVertices only; 0 when gating is off or not opted into).
  uint64_t frontier_vertices_skipped = 0;

  double barrier_wait_seconds = 0.0;  ///< summed across workers + main
  /// Per-worker distribution of the summed wait (workers only, main thread
  /// excluded). barrier_wait_seconds adds N workers' overlapping idle time
  /// and so routinely exceeds wall_seconds on wide runs; mean and max are
  /// the per-worker quantities that compare against the wall clock.
  double barrier_wait_mean_s = 0.0;
  double barrier_wait_max_s = 0.0;
  uint64_t barrier_generations = 0;
  uint64_t refetch_bytes = 0;  ///< replica re-reads triggered by recovery
  double wall_seconds = 0.0;

  // Distributed engine (net/distributed.h) only; all zero elsewhere.
  uint64_t tcp_bytes_sent = 0;    ///< bytes on mesh sockets, headers included
  uint64_t tcp_frames_sent = 0;   ///< mesh frames (data, updates, EOS, acks)
  uint64_t resend_bytes = 0;      ///< recovery replay + re-executed transfer
  uint64_t replication_bytes = 0; ///< post-combine state updates to replicas

  /// Row-major M x M actual bytes moved per (src machine -> dst machine).
  /// Off-diagonal entries are network traffic and, absent faults, must
  /// reconcile exactly with PropagationRunner::link_network_bytes().
  std::vector<uint64_t> link_bytes;

  /// Snapshot of every channel, indexed src * M + dst.
  std::vector<ChannelStats> channels;

  Histogram channel_depth;  ///< queue depth observed at each send, merged
  Histogram barrier_wait;   ///< per-wait seconds, merged across workers
  Histogram batch_fill;     ///< sealed-batch payload bytes / max_batch_bytes

  /// Per-superstep per-machine phase breakdown ({compute, serialize,
  /// blocked, barrier}), one entry per (iteration, stage) in execution
  /// order. Feeds the run report's "timeline" block and the critical-path
  /// analysis; see runtime/timeline.h.
  std::vector<SuperstepProfile> timeline;

  /// Hot-path trace events lost to full ring shards (0 when tracing is off
  /// or every shard kept up). A nonzero value means the Chrome trace is
  /// incomplete, never that the run itself was perturbed.
  uint64_t trace_events_dropped = 0;

  /// Flight-recorder tallies (0 when RuntimeOptions::telemetry is off).
  /// Like trace drops, sample drops only mean the recorded window is
  /// partial — the oldest samples were overwritten, the run was untouched.
  uint64_t telemetry_samples = 0;
  uint64_t telemetry_samples_dropped = 0;

  /// Process memory at the end of the run (/proc/self/status; 0 where
  /// unavailable). Peak RSS is the regression-gated quantity: it is
  /// dominated by the run's buffers, pools, and inboxes, so a leak or an
  /// unpooled allocation path shows up here before it shows up in wall time.
  uint64_t rss_bytes = 0;
  uint64_t peak_rss_bytes = 0;

  uint64_t TotalNetworkBytes() const {
    // Tolerate a default-constructed or truncated matrix: stats objects are
    // plain data that callers may build by hand (reports, tests), and a
    // short `link_bytes` must degrade to "no traffic seen", not index out
    // of bounds.
    uint64_t total = 0;
    const uint32_t n = num_machines;
    for (uint32_t src = 0; src < n; ++src) {
      for (uint32_t dst = 0; dst < n; ++dst) {
        const size_t idx = static_cast<size_t>(src) * n + dst;
        if (src != dst && idx < link_bytes.size()) {
          total += link_bytes[idx];
        }
      }
    }
    return total;
  }
};

}  // namespace runtime
}  // namespace surfer

#endif  // SURFER_RUNTIME_STATS_H_
