#include "runtime/timeline.h"

namespace surfer {
namespace runtime {

const char* RuntimeStageName(RuntimeStage stage) {
  return stage == RuntimeStage::kTransfer ? "transfer" : "combine";
}

StragglerStats ComputeStraggler(const SuperstepProfile& step) {
  StragglerStats stats;
  double total_busy = 0.0;
  uint32_t active_machines = 0;
  for (MachineId m = 0; m < step.machines.size(); ++m) {
    const PhaseSeconds& phases = step.machines[m];
    const double busy = phases.Busy();
    if (busy <= 0.0) {
      continue;
    }
    ++active_machines;
    total_busy += busy;
    if (busy > stats.max_busy_s) {
      stats.max_busy_s = busy;
      stats.machine = m;
    }
  }
  if (active_machines == 0) {
    return stats;
  }
  stats.mean_busy_s = total_busy / active_machines;
  stats.skew = stats.mean_busy_s > 0.0 ? stats.max_busy_s / stats.mean_busy_s
                                       : 0.0;
  const PhaseSeconds& slowest = step.machines[stats.machine];
  stats.dominant_phase = "compute";
  double dominant = slowest.compute_s;
  if (slowest.serialize_s > dominant) {
    dominant = slowest.serialize_s;
    stats.dominant_phase = "serialize";
  }
  if (slowest.blocked_s > dominant) {
    stats.dominant_phase = "blocked";
  }
  return stats;
}

std::vector<CriticalPathEntry> ComputeCriticalPath(
    const std::vector<SuperstepProfile>& timeline) {
  std::vector<CriticalPathEntry> path;
  path.reserve(timeline.size());
  for (size_t step = 0; step < timeline.size(); ++step) {
    const SuperstepProfile& profile = timeline[step];
    CriticalPathEntry entry;
    entry.step = step;
    entry.iteration = profile.iteration;
    entry.stage = profile.stage;
    for (MachineId m = 0; m < profile.machines.size(); ++m) {
      const double busy = profile.machines[m].Busy();
      if (entry.machine == kInvalidMachine || busy > entry.busy_s) {
        entry.machine = m;
        entry.busy_s = busy;
      }
    }
    path.push_back(entry);
  }
  return path;
}

namespace {

obs::JsonValue PhasesToJson(const PhaseSeconds& phases) {
  obs::JsonValue obj = obs::JsonValue::MakeObject();
  obj.Set("compute_s", phases.compute_s);
  obj.Set("serialize_s", phases.serialize_s);
  obj.Set("blocked_s", phases.blocked_s);
  obj.Set("barrier_s", phases.barrier_s);
  obj.Set("wire_bytes", phases.wire_bytes);
  obj.Set("scatter_messages", phases.scatter_messages);
  obj.Set("frontier_skipped", phases.frontier_skipped);
  obj.Set("busy_s", phases.Busy());
  return obj;
}

}  // namespace

obs::JsonValue TimelineToJson(const std::vector<SuperstepProfile>& timeline) {
  obs::JsonValue block = obs::JsonValue::MakeObject();
  obs::JsonValue steps = obs::JsonValue::MakeArray();
  for (const SuperstepProfile& profile : timeline) {
    obs::JsonValue step = obs::JsonValue::MakeObject();
    step.Set("iteration", profile.iteration);
    step.Set("stage", RuntimeStageName(profile.stage));
    step.Set("start_s", profile.start_s);
    step.Set("end_s", profile.end_s);
    obs::JsonValue machines = obs::JsonValue::MakeArray();
    for (MachineId m = 0; m < profile.machines.size(); ++m) {
      const PhaseSeconds& phases = profile.machines[m];
      // All-zero machines are elided: with M machines and S supersteps a
      // dense dump is M x S rows, most of which say nothing on skewed runs.
      if (phases.Busy() <= 0.0 && phases.barrier_s <= 0.0) {
        continue;
      }
      obs::JsonValue row = obs::JsonValue::MakeObject();
      row.Set("machine", static_cast<uint64_t>(m));
      obs::JsonValue phase_fields = PhasesToJson(phases);
      for (auto& [key, value] : phase_fields.as_object()) {
        row.Set(key, std::move(value));
      }
      machines.Append(std::move(row));
    }
    step.Set("machines", std::move(machines));
    const StragglerStats straggler = ComputeStraggler(profile);
    obs::JsonValue skew = obs::JsonValue::MakeObject();
    skew.Set("machine", straggler.machine == kInvalidMachine
                            ? obs::JsonValue(nullptr)
                            : obs::JsonValue(
                                  static_cast<uint64_t>(straggler.machine)));
    skew.Set("max_busy_s", straggler.max_busy_s);
    skew.Set("mean_busy_s", straggler.mean_busy_s);
    skew.Set("skew", straggler.skew);
    skew.Set("dominant_phase", straggler.dominant_phase);
    step.Set("straggler", std::move(skew));
    steps.Append(std::move(step));
  }
  block.Set("steps", std::move(steps));

  const std::vector<CriticalPathEntry> path = ComputeCriticalPath(timeline);
  obs::JsonValue critical = obs::JsonValue::MakeObject();
  double total_busy = 0.0;
  obs::JsonValue entries = obs::JsonValue::MakeArray();
  for (const CriticalPathEntry& entry : path) {
    total_busy += entry.busy_s;
    obs::JsonValue e = obs::JsonValue::MakeObject();
    e.Set("step", static_cast<uint64_t>(entry.step));
    e.Set("iteration", entry.iteration);
    e.Set("stage", RuntimeStageName(entry.stage));
    e.Set("machine", entry.machine == kInvalidMachine
                         ? obs::JsonValue(nullptr)
                         : obs::JsonValue(static_cast<uint64_t>(entry.machine)));
    e.Set("busy_s", entry.busy_s);
    entries.Append(std::move(e));
  }
  critical.Set("total_busy_s", total_busy);
  critical.Set("steps", std::move(entries));
  block.Set("critical_path", std::move(critical));
  return block;
}

const char* RoundKindName(int kind) {
  switch (kind) {
    case 0:
      return "transfer";
    case 1:
      return "combine";
    case 2:
      return "resend";
    default:
      return "unknown";
  }
}

std::vector<ClusterCriticalPathEntry> ComputeClusterCriticalPath(
    const std::vector<ClusterRoundRecord>& rounds,
    const std::vector<ClusterLinkSample>& links) {
  std::vector<ClusterCriticalPathEntry> path;
  path.reserve(rounds.size());
  for (const ClusterRoundRecord& round : rounds) {
    ClusterCriticalPathEntry entry;
    entry.seq = round.seq;
    entry.iteration = round.iteration;
    entry.kind = round.kind;
    for (uint32_t p = 0; p < round.done_unix_us.size(); ++p) {
      if (round.done_unix_us[p] == 0 ||
          round.done_unix_us[p] < round.broadcast_unix_us) {
        continue;  // dead before the round, or clock went backwards
      }
      const double duration =
          static_cast<double>(round.done_unix_us[p] -
                              round.broadcast_unix_us) /
          1e6;
      if (entry.proc == 0xFFFFFFFFu || duration > entry.duration_s) {
        entry.proc = p;
        entry.duration_s = duration;
      }
    }
    if (entry.proc != 0xFFFFFFFFu) {
      // The worst inbound link into the critical process this round: the
      // one whose frames sat longest between send and receive.
      for (const ClusterLinkSample& link : links) {
        if (link.seq != round.seq || link.to_proc != entry.proc) {
          continue;
        }
        if (!entry.has_link ||
            link.max_latency_us > entry.link_max_latency_us) {
          entry.has_link = true;
          entry.link_from = link.from_proc;
          entry.link_mean_latency_us = link.mean_latency_us;
          entry.link_max_latency_us = link.max_latency_us;
          entry.link_bytes = link.bytes;
        }
      }
    }
    path.push_back(entry);
  }
  return path;
}

obs::JsonValue ClusterTimelineToJson(
    const std::vector<ClusterRoundRecord>& rounds,
    const std::vector<ClusterLinkSample>& links,
    uint64_t stragglers_flagged) {
  obs::JsonValue block = obs::JsonValue::MakeObject();
  block.Set("stragglers_flagged", stragglers_flagged);

  obs::JsonValue round_rows = obs::JsonValue::MakeArray();
  for (const ClusterRoundRecord& round : rounds) {
    obs::JsonValue row = obs::JsonValue::MakeObject();
    row.Set("seq", round.seq);
    row.Set("iteration", round.iteration);
    row.Set("stage", RoundKindName(round.kind));
    obs::JsonValue durations = obs::JsonValue::MakeArray();
    for (const uint64_t done : round.done_unix_us) {
      if (done == 0 || done < round.broadcast_unix_us) {
        durations.Append(obs::JsonValue(nullptr));
      } else {
        durations.Append(
            static_cast<double>(done - round.broadcast_unix_us) / 1e6);
      }
    }
    row.Set("proc_duration_s", std::move(durations));
    round_rows.Append(std::move(row));
  }
  block.Set("rounds", std::move(round_rows));

  obs::JsonValue link_rows = obs::JsonValue::MakeArray();
  for (const ClusterLinkSample& link : links) {
    obs::JsonValue row = obs::JsonValue::MakeObject();
    row.Set("seq", link.seq);
    row.Set("from", static_cast<uint64_t>(link.from_proc));
    row.Set("to", static_cast<uint64_t>(link.to_proc));
    row.Set("frames", static_cast<uint64_t>(link.frames));
    row.Set("bytes", link.bytes);
    row.Set("mean_latency_us", link.mean_latency_us);
    row.Set("max_latency_us", link.max_latency_us);
    link_rows.Append(std::move(row));
  }
  block.Set("links", std::move(link_rows));

  const std::vector<ClusterCriticalPathEntry> path =
      ComputeClusterCriticalPath(rounds, links);
  obs::JsonValue critical = obs::JsonValue::MakeObject();
  double total_s = 0.0;
  obs::JsonValue steps = obs::JsonValue::MakeArray();
  for (const ClusterCriticalPathEntry& entry : path) {
    total_s += entry.duration_s;
    obs::JsonValue e = obs::JsonValue::MakeObject();
    e.Set("seq", entry.seq);
    e.Set("iteration", entry.iteration);
    e.Set("stage", RoundKindName(entry.kind));
    e.Set("proc", entry.proc == 0xFFFFFFFFu
                      ? obs::JsonValue(nullptr)
                      : obs::JsonValue(static_cast<uint64_t>(entry.proc)));
    e.Set("duration_s", entry.duration_s);
    if (entry.has_link) {
      obs::JsonValue link = obs::JsonValue::MakeObject();
      link.Set("from", static_cast<uint64_t>(entry.link_from));
      link.Set("mean_latency_us", entry.link_mean_latency_us);
      link.Set("max_latency_us", entry.link_max_latency_us);
      link.Set("bytes", entry.link_bytes);
      e.Set("link", std::move(link));
    } else {
      e.Set("link", obs::JsonValue(nullptr));
    }
    steps.Append(std::move(e));
  }
  critical.Set("total_s", total_s);
  critical.Set("steps", std::move(steps));
  block.Set("critical_path", std::move(critical));
  return block;
}

}  // namespace runtime
}  // namespace surfer
