#ifndef SURFER_APPS_DEGREE_DISTRIBUTION_H_
#define SURFER_APPS_DEGREE_DISTRIBUTION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "apps/common.h"
#include "mapreduce/mapreduce.h"
#include "propagation/app_traits.h"

namespace surfer {

/// Vertex degree distribution (VDD, Appendix D): a vertex-oriented task.
/// Propagation emulates MapReduce with *virtual vertices* (Section 3.2):
/// each vertex emits its out-degree count to the virtual vertex whose ID is
/// the degree value; the virtual vertex combines the counts. This is the one
/// benchmark app where propagation has no structural advantage — matching
/// the paper, which reports VDD parity between the two primitives.
class DegreeDistributionApp {
 public:
  using VertexState = uint8_t;   // no per-vertex output
  using Message = uint64_t;      // partial count of vertices with the degree
  using VirtualOutput = uint64_t;

  /// Real-vertex Combine is a no-op (all aggregation happens on virtual
  /// vertices), so skipping silent vertices is trivially the identity —
  /// frontier gating elides the entire real combine scan for VDD.
  static constexpr bool kSkipSilentVertices = true;

  VertexState InitState(VertexId /*v*/,
                        std::span<const VertexId> /*neighbors*/) const {
    return 0;
  }

  void Transfer(VertexId /*v*/, const VertexState& /*state*/,
                std::span<const VertexId> neighbors,
                PropagationEmitter<Message>& emitter) const {
    emitter.EmitVirtual(static_cast<uint64_t>(neighbors.size()), 1);
  }

  void Combine(VertexId /*v*/, VertexState& /*state*/,
               std::span<const VertexId> /*neighbors*/,
               std::vector<Message>& /*messages*/) const {}

  Message Merge(const Message& a, const Message& b) const { return a + b; }

  VirtualOutput CombineVirtual(uint64_t /*degree*/,
                               std::vector<Message>& messages) const {
    uint64_t count = 0;
    for (Message m : messages) {
      count += m;
    }
    return count;
  }

  /// On the wire: virtual-vertex ID (the degree) + partial count.
  size_t MessageBytes(const Message&) const { return 2 * sizeof(uint64_t); }
  size_t StateBytes(const VertexState&) const { return 1; }
};

/// MapReduce form of VDD: the natural fit — map emits (degree, 1), reduce
/// counts.
class DegreeDistributionMrApp {
 public:
  using Key = uint64_t;     // degree value
  using Value = uint64_t;   // partial count
  using Output = uint64_t;  // vertices with this degree

  void Map(const PartitionView& partition,
           MapEmitter<Key, Value>& emitter) const {
    for (VertexId v = partition.begin(); v < partition.end(); ++v) {
      emitter.Emit(static_cast<uint64_t>(partition.OutDegree(v)), 1);
    }
  }

  Output Reduce(const Key& /*degree*/, std::vector<Value>& values) const {
    uint64_t count = 0;
    for (Value v : values) {
      count += v;
    }
    return count;
  }

  Value CombineValues(const Value& a, const Value& b) const { return a + b; }

  size_t PairBytes(const Key&, const Value&) const {
    return 2 * sizeof(uint64_t);
  }
  size_t OutputBytes(const Output&) const { return 2 * sizeof(uint64_t); }
};

}  // namespace surfer

#endif  // SURFER_APPS_DEGREE_DISTRIBUTION_H_
