#include "apps/benchmark_suite.h"

#include <cmath>

#include "apps/degree_distribution.h"
#include "apps/network_ranking.h"
#include "apps/recommender.h"
#include "apps/reverse_link_graph.h"
#include "apps/triangle_counting.h"
#include "apps/two_hop_friends.h"
#include "core/engine.h"
#include "mapreduce/runner.h"

namespace surfer {

namespace {

/// Mixes a per-vertex quantity into a position-independent checksum. The
/// weight depends on the *original* vertex ID so two runs with different
/// partitionings still agree.
double WeightOf(const VertexEncoding& encoding, VertexId encoded) {
  return 1.0 + static_cast<double>(encoding.ToOriginal(encoded) % 97);
}

// ---------------------------------------------------------------- NR ----

Result<AppRunResult> RunNrPropagation(const BenchmarkSetup& setup,
                                      const PropagationConfig& config,
                                      int iterations) {
  NetworkRankingApp app(setup.graph->encoded_graph().num_vertices());
  EngineOptions options;
  options.propagation = config;
  options.propagation.iterations = iterations;
  SURFER_ASSIGN_OR_RETURN(Engine engine, Engine::Open(setup, options));
  SURFER_ASSIGN_OR_RETURN(RunAppResult<NetworkRankingApp> run,
                          engine.Run(std::move(app)));
  AppRunResult result{*run.metrics, 0.0};
  for (VertexId v = 0; v < run.states.size(); ++v) {
    result.checksum += run.states[v] * WeightOf(setup.graph->encoding(), v);
  }
  return result;
}

Result<AppRunResult> RunNrMapReduce(const BenchmarkSetup& setup,
                                    int iterations) {
  JobSimulation sim(setup.topology, setup.sim_options);
  SURFER_ASSIGN_OR_RETURN(
      std::vector<double> ranks,
      RunNetworkRankingMapReduce(*setup.graph, *setup.placement,
                                 *setup.topology, &sim, iterations));
  AppRunResult result{sim.metrics(), 0.0};
  for (VertexId v = 0; v < ranks.size(); ++v) {
    result.checksum += ranks[v] * WeightOf(setup.graph->encoding(), v);
  }
  return result;
}

// ---------------------------------------------------------------- RS ----

Result<AppRunResult> RunRsPropagation(const BenchmarkSetup& setup,
                                      const PropagationConfig& config,
                                      int iterations) {
  RecommenderApp app(&setup.graph->encoding(), RecommenderParams{});
  EngineOptions options;
  options.propagation = config;
  options.propagation.iterations = iterations;
  options.propagation.cascaded = false;  // round-dependent combine
  SURFER_ASSIGN_OR_RETURN(Engine engine, Engine::Open(setup, options));
  SURFER_ASSIGN_OR_RETURN(RunAppResult<RecommenderApp> run,
                          engine.Run(std::move(app)));
  AppRunResult result{*run.metrics, 0.0};
  for (VertexId v = 0; v < run.states.size(); ++v) {
    if (run.states[v] != 0) {
      result.checksum += WeightOf(setup.graph->encoding(), v) *
                         static_cast<double>(run.states[v]);
    }
  }
  return result;
}

Result<AppRunResult> RunRsMapReduce(const BenchmarkSetup& setup,
                                    int iterations) {
  JobSimulation sim(setup.topology, setup.sim_options);
  SURFER_ASSIGN_OR_RETURN(
      std::vector<uint32_t> states,
      RunRecommenderMapReduce(*setup.graph, *setup.placement, *setup.topology,
                              &sim, iterations));
  AppRunResult result{sim.metrics(), 0.0};
  for (VertexId v = 0; v < states.size(); ++v) {
    if (states[v] != 0) {
      result.checksum += WeightOf(setup.graph->encoding(), v) *
                         static_cast<double>(states[v]);
    }
  }
  return result;
}

// --------------------------------------------------------------- VDD ----

Result<AppRunResult> RunVddPropagation(const BenchmarkSetup& setup,
                                       const PropagationConfig& config) {
  DegreeDistributionApp app;
  EngineOptions options;
  options.propagation = config;
  options.propagation.iterations = 1;
  SURFER_ASSIGN_OR_RETURN(Engine engine, Engine::Open(setup, options));
  SURFER_ASSIGN_OR_RETURN(RunAppResult<DegreeDistributionApp> run,
                          engine.Run(std::move(app)));
  AppRunResult result{*run.metrics, 0.0};
  for (const auto& [degree, count] : run.virtual_outputs) {
    result.checksum += static_cast<double>((degree + 1) * count);
  }
  return result;
}

Result<AppRunResult> RunVddMapReduce(const BenchmarkSetup& setup) {
  DegreeDistributionMrApp app;
  MapReduceRunner<DegreeDistributionMrApp> runner(
      setup.graph, setup.placement, setup.topology, app);
  SURFER_ASSIGN_OR_RETURN(RunMetrics metrics, runner.Run(setup.sim_options));
  AppRunResult result{metrics, 0.0};
  for (const auto& [degree, count] : runner.outputs()) {
    result.checksum += static_cast<double>((degree + 1) * count);
  }
  return result;
}

// --------------------------------------------------------------- RLG ----

Result<AppRunResult> RunRlgPropagation(const BenchmarkSetup& setup,
                                       const PropagationConfig& config) {
  ReverseLinkGraphApp app;
  EngineOptions options;
  options.propagation = config;
  options.propagation.iterations = 1;
  SURFER_ASSIGN_OR_RETURN(Engine engine, Engine::Open(setup, options));
  SURFER_ASSIGN_OR_RETURN(RunAppResult<ReverseLinkGraphApp> run,
                          engine.Run(std::move(app)));
  AppRunResult result{*run.metrics, 0.0};
  for (VertexId v = 0; v < run.states.size(); ++v) {
    result.checksum += static_cast<double>(run.states[v].size()) *
                       WeightOf(setup.graph->encoding(), v);
  }
  return result;
}

Result<AppRunResult> RunRlgMapReduce(const BenchmarkSetup& setup) {
  ReverseLinkGraphMrApp app;
  MapReduceRunner<ReverseLinkGraphMrApp> runner(
      setup.graph, setup.placement, setup.topology, app);
  SURFER_ASSIGN_OR_RETURN(RunMetrics metrics, runner.Run(setup.sim_options));
  AppRunResult result{metrics, 0.0};
  for (const auto& [v, list] : runner.outputs()) {
    result.checksum += static_cast<double>(list.size()) *
                       WeightOf(setup.graph->encoding(), v);
  }
  return result;
}

// ---------------------------------------------------------------- TC ----

Result<AppRunResult> RunTcPropagation(const BenchmarkSetup& setup,
                                      const PropagationConfig& config) {
  TriangleCountingApp app(&setup.graph->encoding());
  EngineOptions options;
  options.propagation = config;
  options.propagation.iterations = 1;
  SURFER_ASSIGN_OR_RETURN(Engine engine, Engine::Open(setup, options));
  SURFER_ASSIGN_OR_RETURN(RunAppResult<TriangleCountingApp> run,
                          engine.Run(std::move(app)));
  AppRunResult result{*run.metrics, 0.0};
  for (uint64_t count : run.states) {
    result.checksum += static_cast<double>(count);
  }
  return result;
}

Result<AppRunResult> RunTcMapReduce(const BenchmarkSetup& setup) {
  TriangleCountingMrApp app(&setup.graph->encoding());
  MapReduceRunner<TriangleCountingMrApp> runner(
      setup.graph, setup.placement, setup.topology, app);
  SURFER_ASSIGN_OR_RETURN(RunMetrics metrics, runner.Run(setup.sim_options));
  AppRunResult result{metrics, 0.0};
  for (const auto& [v, count] : runner.outputs()) {
    (void)v;
    result.checksum += static_cast<double>(count);
  }
  return result;
}

// --------------------------------------------------------------- TFL ----

Result<AppRunResult> RunTflPropagation(const BenchmarkSetup& setup,
                                       const PropagationConfig& config) {
  TwoHopFriendsApp app(&setup.graph->encoding());
  EngineOptions options;
  options.propagation = config;
  options.propagation.iterations = 1;
  SURFER_ASSIGN_OR_RETURN(Engine engine, Engine::Open(setup, options));
  SURFER_ASSIGN_OR_RETURN(RunAppResult<TwoHopFriendsApp> run,
                          engine.Run(std::move(app)));
  AppRunResult result{*run.metrics, 0.0};
  for (VertexId v = 0; v < run.states.size(); ++v) {
    result.checksum += static_cast<double>(run.states[v].size()) *
                       WeightOf(setup.graph->encoding(), v);
  }
  return result;
}

Result<AppRunResult> RunTflMapReduce(const BenchmarkSetup& setup) {
  TwoHopFriendsMrApp app(&setup.graph->encoding());
  MapReduceRunner<TwoHopFriendsMrApp> runner(setup.graph, setup.placement,
                                             setup.topology, app);
  SURFER_ASSIGN_OR_RETURN(RunMetrics metrics, runner.Run(setup.sim_options));
  AppRunResult result{metrics, 0.0};
  for (const auto& [v, list] : runner.outputs()) {
    result.checksum += static_cast<double>(list.size()) *
                       WeightOf(setup.graph->encoding(), v);
  }
  return result;
}

}  // namespace

const std::vector<BenchmarkApp>& BenchmarkApps() {
  static const std::vector<BenchmarkApp>* apps = new std::vector<BenchmarkApp>{
      {"VDD", "vertex degree distribution", 1,
       [](const BenchmarkSetup& s, const PropagationConfig& c) {
         return RunVddPropagation(s, c);
       },
       [](const BenchmarkSetup& s) { return RunVddMapReduce(s); }},
      {"RS", "recommender system", 3,
       [](const BenchmarkSetup& s, const PropagationConfig& c) {
         return RunRsPropagation(s, c, 3);
       },
       [](const BenchmarkSetup& s) { return RunRsMapReduce(s, 3); }},
      {"NR", "network ranking (PageRank)", 3,
       [](const BenchmarkSetup& s, const PropagationConfig& c) {
         return RunNrPropagation(s, c, 3);
       },
       [](const BenchmarkSetup& s) { return RunNrMapReduce(s, 3); }},
      {"RLG", "reverse link graph", 1,
       [](const BenchmarkSetup& s, const PropagationConfig& c) {
         return RunRlgPropagation(s, c);
       },
       [](const BenchmarkSetup& s) { return RunRlgMapReduce(s); }},
      {"TC", "triangle counting", 1,
       [](const BenchmarkSetup& s, const PropagationConfig& c) {
         return RunTcPropagation(s, c);
       },
       [](const BenchmarkSetup& s) { return RunTcMapReduce(s); }},
      {"TFL", "two-hop friends list", 1,
       [](const BenchmarkSetup& s, const PropagationConfig& c) {
         return RunTflPropagation(s, c);
       },
       [](const BenchmarkSetup& s) { return RunTflMapReduce(s); }},
  };
  return *apps;
}

const BenchmarkApp* FindBenchmarkApp(const std::string& name) {
  for (const BenchmarkApp& app : BenchmarkApps()) {
    if (app.name == name) {
      return &app;
    }
  }
  return nullptr;
}

}  // namespace surfer
