#ifndef SURFER_APPS_TRIANGLE_COUNTING_H_
#define SURFER_APPS_TRIANGLE_COUNTING_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "apps/common.h"
#include "common/result.h"
#include "engine/job_simulation.h"
#include "mapreduce/mapreduce.h"
#include "mapreduce/runner.h"
#include "propagation/app_traits.h"
#include "propagation/runner.h"

namespace surfer {

/// Triangle counting (TC, Appendix D Algorithm 3) on a sampled subgraph:
/// a 10% vertex sample is selected (by original ID, so the sample is stable
/// across layouts and primitives); each selected vertex's out-neighbor list
/// travels along every sampled edge to the target, which intersects it with
/// its own adjacency list. We count *directed* triangles a -> b, b -> c,
/// a -> c with a, b, c all selected; triple (a, b, c) is counted exactly
/// once, at b, so no duplicate elimination is needed.
class TriangleCountingApp {
 public:
  using VertexState = uint64_t;          // triangles counted at this vertex
  using Message = std::vector<VertexId>;  // the sender's out-neighbor list

  TriangleCountingApp(const VertexEncoding* encoding,
                      uint32_t sample_permille = kDefaultSamplePermille,
                      uint64_t seed = 3)
      : sampler_(encoding, sample_permille, seed) {}

  VertexState InitState(VertexId /*v*/,
                        std::span<const VertexId> /*neighbors*/) const {
    return 0;
  }

  void Transfer(VertexId v, const VertexState& /*state*/,
                std::span<const VertexId> neighbors,
                PropagationEmitter<Message>& emitter) const {
    if (!sampler_.SelectedEncoded(v)) {
      return;
    }
    Message list(neighbors.begin(), neighbors.end());
    for (VertexId neighbor : neighbors) {
      if (sampler_.SelectedEncoded(neighbor)) {
        emitter.Emit(neighbor, list);
      }
    }
  }

  void Combine(VertexId /*v*/, VertexState& state,
               std::span<const VertexId> neighbors,
               std::vector<Message>& messages) const {
    uint64_t count = 0;
    for (const Message& list : messages) {
      for (VertexId c : list) {
        if (sampler_.SelectedEncoded(c) &&
            std::binary_search(neighbors.begin(), neighbors.end(), c)) {
          ++count;
        }
      }
    }
    state = count;
  }

  /// Intersection counts distribute over concatenation, so merging message
  /// lists by concatenation keeps combine associative.
  Message Merge(const Message& a, const Message& b) const {
    Message merged = a;
    merged.insert(merged.end(), b.begin(), b.end());
    return merged;
  }

  size_t MessageBytes(const Message& m) const {
    return sizeof(uint64_t) + m.size() * kStoredVertexIdBytes;
  }
  size_t StateBytes(const VertexState&) const { return sizeof(uint64_t); }

  const VertexSampler& sampler() const { return sampler_; }

 private:
  VertexSampler sampler_;
};

/// MapReduce form of TC: the classic two-role pattern — each sampled vertex
/// sends (a) its own adjacency list to itself (the "adjacency" role) and
/// (b) its list to each sampled neighbor (the "wedge" role); reduce
/// intersects the wedge lists against the adjacency record.
class TriangleCountingMrApp {
 public:
  using Key = VertexId;
  struct Value {
    bool is_adjacency = false;
    std::vector<VertexId> list;
  };
  using Output = uint64_t;

  TriangleCountingMrApp(const VertexEncoding* encoding,
                        uint32_t sample_permille = kDefaultSamplePermille,
                        uint64_t seed = 3)
      : sampler_(encoding, sample_permille, seed) {}

  void Map(const PartitionView& partition,
           MapEmitter<Key, Value>& emitter) const {
    for (VertexId v = partition.begin(); v < partition.end(); ++v) {
      if (!sampler_.SelectedEncoded(v)) {
        continue;
      }
      const auto neighbors = partition.OutNeighbors(v);
      std::vector<VertexId> list(neighbors.begin(), neighbors.end());
      emitter.Emit(v, Value{true, list});
      for (VertexId neighbor : neighbors) {
        if (sampler_.SelectedEncoded(neighbor)) {
          emitter.Emit(neighbor, Value{false, list});
        }
      }
    }
  }

  Output Reduce(const Key& /*key*/, std::vector<Value>& values) const {
    const std::vector<VertexId>* adjacency = nullptr;
    for (const Value& value : values) {
      if (value.is_adjacency) {
        adjacency = &value.list;
        break;
      }
    }
    if (adjacency == nullptr) {
      return 0;  // the target was not sampled (or had no adjacency record)
    }
    uint64_t count = 0;
    for (const Value& value : values) {
      if (value.is_adjacency) {
        continue;
      }
      for (VertexId c : value.list) {
        if (sampler_.SelectedEncoded(c) &&
            std::binary_search(adjacency->begin(), adjacency->end(), c)) {
          ++count;
        }
      }
    }
    return count;
  }

  size_t PairBytes(const Key&, const Value& value) const {
    return sizeof(uint64_t) + 1 + value.list.size() * kStoredVertexIdBytes;
  }
  size_t OutputBytes(const Output&) const { return 2 * sizeof(uint64_t); }

 private:
  VertexSampler sampler_;
};

}  // namespace surfer

#endif  // SURFER_APPS_TRIANGLE_COUNTING_H_
