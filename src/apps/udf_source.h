#ifndef SURFER_APPS_UDF_SOURCE_H_
#define SURFER_APPS_UDF_SOURCE_H_

#include <string>
#include <string_view>
#include <vector>

namespace surfer {

/// The programmability comparison of Table 4: lines of user-defined-function
/// code per application per engine. The propagation and MapReduce snippets
/// are the UDF bodies of this repository's implementations (src/apps); the
/// Hadoop counts are quoted from the paper (Hadoop is not implemented here —
/// the paper itself only uses it for the LoC comparison).
struct UdfSourceEntry {
  std::string app;  ///< NR, RS, TC, VDD, RLG, TFL
  std::string propagation_source;
  std::string mapreduce_source;
  int paper_hadoop_loc = 0;
  int paper_homegrown_mr_loc = 0;
  int paper_propagation_loc = 0;
};

/// Counts source lines the way the paper does: non-empty lines that are not
/// pure comments or lone braces are counted.
int CountUdfLines(std::string_view source);

/// The six applications with their UDF sources and the paper's counts.
const std::vector<UdfSourceEntry>& UdfSources();

}  // namespace surfer

#endif  // SURFER_APPS_UDF_SOURCE_H_
