#ifndef SURFER_APPS_TWO_HOP_FRIENDS_H_
#define SURFER_APPS_TWO_HOP_FRIENDS_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "apps/common.h"
#include "mapreduce/mapreduce.h"
#include "propagation/app_traits.h"

namespace surfer {

/// Two-hop friends list (TFL, Appendix D): a 10% vertex sample pushes its
/// friend list to each of its friends; every vertex stores the distinct
/// vertices of the received lists — its two-hop friends reached via sampled
/// intermediaries. Messages are sorted lists merging by set-union, which is
/// what makes local combination so effective for TFL in the paper (Table 3:
/// network I/O drops 2886 GB -> 138 GB).
class TwoHopFriendsApp {
 public:
  using VertexState = std::vector<VertexId>;  // sorted two-hop list
  using Message = std::vector<VertexId>;      // a pushed friend list

  TwoHopFriendsApp(const VertexEncoding* encoding,
                   uint32_t sample_permille = kDefaultSamplePermille,
                   uint64_t seed = 17)
      : sampler_(encoding, sample_permille, seed) {}

  VertexState InitState(VertexId /*v*/,
                        std::span<const VertexId> /*neighbors*/) const {
    return {};
  }

  void Transfer(VertexId v, const VertexState& /*state*/,
                std::span<const VertexId> neighbors,
                PropagationEmitter<Message>& emitter) const {
    if (!sampler_.SelectedEncoded(v) || neighbors.empty()) {
      return;
    }
    Message list(neighbors.begin(), neighbors.end());  // already sorted
    for (VertexId neighbor : neighbors) {
      emitter.Emit(neighbor, list);
    }
  }

  void Combine(VertexId v, VertexState& state,
               std::span<const VertexId> /*neighbors*/,
               std::vector<Message>& messages) const {
    state.clear();
    for (const Message& m : messages) {
      state.insert(state.end(), m.begin(), m.end());
    }
    std::sort(state.begin(), state.end());
    state.erase(std::unique(state.begin(), state.end()), state.end());
    // A vertex is not its own two-hop friend.
    auto self = std::lower_bound(state.begin(), state.end(), v);
    if (self != state.end() && *self == v) {
      state.erase(self);
    }
  }

  /// Sorted set-union: duplicates across pushed lists collapse early.
  Message Merge(const Message& a, const Message& b) const {
    Message merged;
    merged.reserve(a.size() + b.size());
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(merged));
    return merged;
  }

  size_t MessageBytes(const Message& m) const {
    return sizeof(uint64_t) + m.size() * kStoredVertexIdBytes;
  }
  size_t StateBytes(const VertexState& s) const {
    return StoredVertexRecordBytes(s.size());
  }

  const VertexSampler& sampler() const { return sampler_; }

 private:
  VertexSampler sampler_;
};

/// MapReduce form of TFL: map pushes sampled vertices' friend lists keyed by
/// each friend; reduce unions the lists. Without graph-partition awareness
/// the full lists travel through the hash shuffle.
class TwoHopFriendsMrApp {
 public:
  using Key = VertexId;
  using Value = std::vector<VertexId>;
  using Output = std::vector<VertexId>;

  TwoHopFriendsMrApp(const VertexEncoding* encoding,
                     uint32_t sample_permille = kDefaultSamplePermille,
                     uint64_t seed = 17)
      : sampler_(encoding, sample_permille, seed) {}

  void Map(const PartitionView& partition,
           MapEmitter<Key, Value>& emitter) const {
    for (VertexId v = partition.begin(); v < partition.end(); ++v) {
      if (!sampler_.SelectedEncoded(v)) {
        continue;
      }
      const auto neighbors = partition.OutNeighbors(v);
      if (neighbors.empty()) {
        continue;
      }
      Value list(neighbors.begin(), neighbors.end());
      for (VertexId neighbor : neighbors) {
        emitter.Emit(neighbor, list);
      }
    }
  }

  Output Reduce(const Key& key, std::vector<Value>& values) const {
    Output result;
    for (const Value& list : values) {
      result.insert(result.end(), list.begin(), list.end());
    }
    std::sort(result.begin(), result.end());
    result.erase(std::unique(result.begin(), result.end()), result.end());
    auto self = std::lower_bound(result.begin(), result.end(), key);
    if (self != result.end() && *self == key) {
      result.erase(self);
    }
    return result;
  }

  size_t PairBytes(const Key&, const Value& value) const {
    return sizeof(uint64_t) + value.size() * kStoredVertexIdBytes;
  }
  size_t OutputBytes(const Output& out) const {
    return StoredVertexRecordBytes(out.size());
  }

 private:
  VertexSampler sampler_;
};

}  // namespace surfer

#endif  // SURFER_APPS_TWO_HOP_FRIENDS_H_
