#ifndef SURFER_APPS_RECOMMENDER_H_
#define SURFER_APPS_RECOMMENDER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "apps/common.h"
#include "common/result.h"
#include "engine/job_simulation.h"
#include "mapreduce/mapreduce.h"
#include "mapreduce/runner.h"
#include "propagation/app_traits.h"
#include "propagation/runner.h"

namespace surfer {

/// Default RS parameters: 1% of users seed the product; each recommendation
/// round converts receivers with probability 0.3.
struct RecommenderParams {
  uint32_t seed_permille = 10;
  uint32_t accept_permille = 300;
  uint64_t seed = 5;
};

/// Recommender system (RS, Appendix D): product adoption spreading through
/// the social network. A seed set starts with the product; each iteration,
/// users recommend it to their friends, who accept with probability
/// accept_permille/1000. Acceptance is a deterministic hash of
/// (original vertex, iteration) so every primitive computes the same spread.
class RecommenderApp {
 public:
  /// 0 = not using the product; k >= 1 = adopted at iteration k-1 (seeds: 1).
  using VertexState = uint32_t;
  /// "A friend recommends the product." Stored as one byte in memory but
  /// accounted as a full recommendation record (product ID + flag, 8 bytes)
  /// in the I/O model.
  using Message = uint8_t;

  RecommenderApp(const VertexEncoding* encoding, RecommenderParams params)
      : encoding_(encoding), params_(params) {}

  VertexState InitState(VertexId v,
                        std::span<const VertexId> /*neighbors*/) const {
    return IsSeedOriginal(encoding_->ToOriginal(v)) ? 1 : 0;
  }

  void OnIterationStart(int iteration) {
    iteration_ = static_cast<uint32_t>(iteration);
  }

  void Transfer(VertexId /*v*/, const VertexState& state,
                std::span<const VertexId> neighbors,
                PropagationEmitter<Message>& emitter) const {
    if (state == 0) {
      return;  // not a user yet: nothing to recommend
    }
    for (VertexId neighbor : neighbors) {
      emitter.Emit(neighbor, Message{1});
    }
  }

  void Combine(VertexId v, VertexState& state,
               std::span<const VertexId> /*neighbors*/,
               std::vector<Message>& messages) const {
    if (state != 0 || messages.empty()) {
      return;
    }
    if (Accepts(encoding_->ToOriginal(v), iteration_)) {
      state = iteration_ + 2;
    }
  }

  /// Duplicate recommendations collapse into one: combine is associative.
  Message Merge(const Message& a, const Message& b) const {
    return a > b ? a : b;
  }

  /// On the wire: target vertex ID + recommendation record.
  size_t MessageBytes(const Message&) const { return 16; }
  size_t StateBytes(const VertexState&) const { return sizeof(uint32_t); }

  bool IsSeedOriginal(VertexId original) const {
    return MixHash(original + params_.seed * 977ULL) % 1000 <
           params_.seed_permille;
  }
  bool Accepts(VertexId original, uint32_t iteration) const {
    return MixHash(original * 31ULL + iteration * 131071ULL + params_.seed) %
               1000 <
           params_.accept_permille;
  }

 private:
  const VertexEncoding* encoding_;
  RecommenderParams params_;
  uint32_t iteration_ = 0;
};

/// MapReduce form of RS: map emits a recommendation to every friend of every
/// current user; reduce applies the same deterministic acceptance rule.
class RecommenderMrApp {
 public:
  using Key = VertexId;    // encoded receiver
  using Value = uint8_t;   // recommendation flag
  using Output = uint8_t;  // 1 = accepted this round

  RecommenderMrApp(const VertexEncoding* encoding,
                   const std::vector<uint32_t>* states,
                   RecommenderParams params, uint32_t iteration)
      : encoding_(encoding),
        states_(states),
        params_(params),
        iteration_(iteration) {}

  void Map(const PartitionView& partition,
           MapEmitter<Key, Value>& emitter) const {
    for (VertexId v = partition.begin(); v < partition.end(); ++v) {
      if ((*states_)[v] == 0) {
        continue;
      }
      for (VertexId neighbor : partition.OutNeighbors(v)) {
        emitter.Emit(neighbor, Value{1});
      }
    }
  }

  Output Reduce(const Key& key, std::vector<Value>& values) const {
    if (values.empty() || (*states_)[key] != 0) {
      return 0;
    }
    RecommenderApp oracle(encoding_, params_);
    return oracle.Accepts(encoding_->ToOriginal(key), iteration_) ? 1 : 0;
  }

  Value CombineValues(const Value& a, const Value& b) const {
    return a > b ? a : b;
  }

  size_t PairBytes(const Key&, const Value&) const { return 16; }
  size_t OutputBytes(const Output&) const { return 16; }
  /// Each round's map reads the adoption-state file with the partition.
  size_t MapExtraReadBytes(const PartitionView& partition) const {
    return partition.num_vertices() * sizeof(uint32_t);
  }

 private:
  const VertexEncoding* encoding_;
  const std::vector<uint32_t>* states_;
  RecommenderParams params_;
  uint32_t iteration_;
};

/// Runs `iterations` of MapReduce RS, chaining jobs on one simulation.
/// Returns the final adoption states in encoded-vertex order (the same
/// semantics as RecommenderApp's states).
inline Result<std::vector<uint32_t>> RunRecommenderMapReduce(
    const PartitionedGraph& graph, const ReplicatedPlacement& placement,
    const Topology& topology, JobSimulation* sim, int iterations,
    RecommenderParams params = {}) {
  const VertexId n = graph.encoded_graph().num_vertices();
  RecommenderApp oracle(&graph.encoding(), params);
  std::vector<uint32_t> states(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    states[v] = oracle.IsSeedOriginal(graph.encoding().ToOriginal(v)) ? 1 : 0;
  }
  for (int it = 0; it < iterations; ++it) {
    RecommenderMrApp app(&graph.encoding(), &states, params,
                         static_cast<uint32_t>(it));
    MapReduceRunner<RecommenderMrApp> runner(&graph, &placement, &topology,
                                             app);
    SURFER_RETURN_IF_ERROR(runner.RunWith(sim));
    for (const auto& [v, accepted] : runner.outputs()) {
      if (accepted != 0 && states[v] == 0) {
        states[v] = static_cast<uint32_t>(it) + 2;
      }
    }
  }
  return states;
}

}  // namespace surfer

#endif  // SURFER_APPS_RECOMMENDER_H_
