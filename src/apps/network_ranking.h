#ifndef SURFER_APPS_NETWORK_RANKING_H_
#define SURFER_APPS_NETWORK_RANKING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "apps/common.h"
#include "common/result.h"
#include "engine/job_simulation.h"
#include "mapreduce/mapreduce.h"
#include "mapreduce/runner.h"
#include "propagation/app_traits.h"
#include "propagation/runner.h"

namespace surfer {

/// Network ranking (NR): PageRank over the social graph (Section 3.1,
/// Appendix D Algorithm 1). Propagation form: transfer sends
/// rank * d / |neighbors| along each out-edge; combine folds the awarded
/// partial ranks plus the random-jump term.
class NetworkRankingApp {
 public:
  using VertexState = double;  // current rank
  using Message = double;      // partial rank

  NetworkRankingApp(VertexId num_vertices, double damping = kDefaultDamping)
      : num_vertices_(num_vertices), damping_(damping) {}

  VertexState InitState(VertexId /*v*/,
                        std::span<const VertexId> /*neighbors*/) const {
    return 1.0 / static_cast<double>(num_vertices_);
  }

  void Transfer(VertexId /*v*/, const VertexState& state,
                std::span<const VertexId> neighbors,
                PropagationEmitter<Message>& emitter) const {
    if (neighbors.empty()) {
      return;  // rank leaks, matching the paper's update rule
    }
    const Message share =
        state * damping_ / static_cast<double>(neighbors.size());
    for (VertexId neighbor : neighbors) {
      emitter.Emit(neighbor, share);
    }
  }

  void Combine(VertexId /*v*/, VertexState& state,
               std::span<const VertexId> /*neighbors*/,
               std::vector<Message>& messages) const {
    double rank = (1.0 - damping_) / static_cast<double>(num_vertices_);
    for (Message m : messages) {
      rank += m;
    }
    state = rank;
  }

  /// Partial ranks add: combine is associative, enabling local combination.
  Message Merge(const Message& a, const Message& b) const { return a + b; }

  /// A partial-rank message on the wire: target vertex ID + value.
  size_t MessageBytes(const Message&) const {
    return kStoredVertexIdBytes + sizeof(double);
  }
  size_t StateBytes(const VertexState&) const { return sizeof(double); }

 private:
  VertexId num_vertices_;
  double damping_;
};

/// MapReduce form of NR (Appendix D Algorithm 2): map scans a partition and
/// accumulates partial ranks in a hash table (the map-side combiner);
/// reduce folds the partials plus the random-jump term.
class NetworkRankingMrApp {
 public:
  using Key = VertexId;
  using Value = double;   // partial rank
  using Output = double;  // new rank

  NetworkRankingMrApp(const std::vector<double>* ranks, VertexId num_vertices,
                      double damping = kDefaultDamping)
      : ranks_(ranks), num_vertices_(num_vertices), damping_(damping) {}

  void Map(const PartitionView& partition,
           MapEmitter<Key, Value>& emitter) const {
    for (VertexId v = partition.begin(); v < partition.end(); ++v) {
      const auto neighbors = partition.OutNeighbors(v);
      if (neighbors.empty()) {
        continue;
      }
      const double share = (*ranks_)[v] * damping_ /
                           static_cast<double>(neighbors.size());
      for (VertexId neighbor : neighbors) {
        emitter.Emit(neighbor, share);
      }
    }
  }

  Output Reduce(const Key& /*key*/, std::vector<Value>& values) const {
    double rank = (1.0 - damping_) / static_cast<double>(num_vertices_);
    for (Value v : values) {
      rank += v;
    }
    return rank;
  }

  /// The hash table of Algorithm 2, expressed as a combiner.
  Value CombineValues(const Value& a, const Value& b) const { return a + b; }

  size_t PairBytes(const Key&, const Value&) const {
    return sizeof(uint64_t) + sizeof(double);
  }
  size_t OutputBytes(const Output&) const {
    return sizeof(uint64_t) + sizeof(double);
  }
  /// Iterative PageRank reads the rank file alongside the partition.
  size_t MapExtraReadBytes(const PartitionView& partition) const {
    return partition.num_vertices() * sizeof(double);
  }

 private:
  const std::vector<double>* ranks_;
  VertexId num_vertices_;
  double damping_;
};

/// Runs `iterations` of MapReduce PageRank, chaining jobs on one simulation.
/// Returns the final ranks in encoded-vertex order.
inline Result<std::vector<double>> RunNetworkRankingMapReduce(
    const PartitionedGraph& graph, const ReplicatedPlacement& placement,
    const Topology& topology, JobSimulation* sim, int iterations,
    double damping = kDefaultDamping) {
  const VertexId n = graph.encoded_graph().num_vertices();
  std::vector<double> ranks(n, 1.0 / static_cast<double>(n));
  for (int it = 0; it < iterations; ++it) {
    NetworkRankingMrApp app(&ranks, n, damping);
    MapReduceRunner<NetworkRankingMrApp> runner(&graph, &placement, &topology,
                                                app);
    SURFER_RETURN_IF_ERROR(runner.RunWith(sim));
    // Vertices that received no partial rank still take the jump term.
    std::vector<double> next(n, (1.0 - damping) / static_cast<double>(n));
    for (const auto& [v, rank] : runner.outputs()) {
      next[v] = rank;
    }
    ranks.swap(next);
  }
  return ranks;
}

}  // namespace surfer

#endif  // SURFER_APPS_NETWORK_RANKING_H_
