#ifndef SURFER_APPS_REVERSE_LINK_GRAPH_H_
#define SURFER_APPS_REVERSE_LINK_GRAPH_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "apps/common.h"
#include "mapreduce/mapreduce.h"
#include "propagation/app_traits.h"

namespace surfer {

/// Reverse link graph (RLG, Appendix D): reverse every edge and store the
/// reversed graph as adjacency lists. Transfer sends the reversed edge to
/// its new source; combine collects the in-neighbor list. Edge lists travel
/// as sorted vectors and merge by set-union, so combine is associative.
class ReverseLinkGraphApp {
 public:
  /// The in-neighbor (reversed adjacency) list, sorted.
  using VertexState = std::vector<VertexId>;
  using Message = std::vector<VertexId>;

  VertexState InitState(VertexId /*v*/,
                        std::span<const VertexId> /*neighbors*/) const {
    return {};
  }

  void Transfer(VertexId v, const VertexState& /*state*/,
                std::span<const VertexId> neighbors,
                PropagationEmitter<Message>& emitter) const {
    for (VertexId neighbor : neighbors) {
      emitter.Emit(neighbor, Message{v});
    }
  }

  void Combine(VertexId /*v*/, VertexState& state,
               std::span<const VertexId> /*neighbors*/,
               std::vector<Message>& messages) const {
    state.clear();
    for (const Message& m : messages) {
      state.insert(state.end(), m.begin(), m.end());
    }
    std::sort(state.begin(), state.end());
    state.erase(std::unique(state.begin(), state.end()), state.end());
  }

  /// Sorted set-union keeps the merged message canonical.
  Message Merge(const Message& a, const Message& b) const {
    Message merged;
    merged.reserve(a.size() + b.size());
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(merged));
    return merged;
  }

  size_t MessageBytes(const Message& m) const {
    return sizeof(uint64_t) + m.size() * kStoredVertexIdBytes;
  }
  size_t StateBytes(const VertexState& s) const {
    return StoredVertexRecordBytes(s.size());
  }
};

/// MapReduce form of RLG: map reverses each edge; reduce sorts the
/// in-neighbors into an adjacency record.
class ReverseLinkGraphMrApp {
 public:
  using Key = VertexId;                  // new source (old destination)
  using Value = VertexId;                // new destination (old source)
  using Output = std::vector<VertexId>;  // reversed adjacency list

  void Map(const PartitionView& partition,
           MapEmitter<Key, Value>& emitter) const {
    for (VertexId v = partition.begin(); v < partition.end(); ++v) {
      for (VertexId neighbor : partition.OutNeighbors(v)) {
        emitter.Emit(neighbor, v);
      }
    }
  }

  Output Reduce(const Key& /*key*/, std::vector<Value>& values) const {
    Output list(values.begin(), values.end());
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    return list;
  }

  size_t PairBytes(const Key&, const Value&) const {
    return 2 * kStoredVertexIdBytes;
  }
  size_t OutputBytes(const Output& out) const {
    return StoredVertexRecordBytes(out.size());
  }
};

}  // namespace surfer

#endif  // SURFER_APPS_REVERSE_LINK_GRAPH_H_
