#ifndef SURFER_APPS_BENCHMARK_SUITE_H_
#define SURFER_APPS_BENCHMARK_SUITE_H_

#include <functional>
#include <string>
#include <vector>

#include "cluster/metrics.h"
#include "cluster/topology.h"
#include "common/result.h"
#include "engine/job_simulation.h"
#include "propagation/config.h"
#include "storage/partitioned_graph.h"
#include "storage/replication.h"

namespace surfer {

/// Everything an application run needs: the partitioned data, where the
/// partitions live, and the network it runs on.
struct BenchmarkSetup {
  const PartitionedGraph* graph = nullptr;
  const ReplicatedPlacement* placement = nullptr;
  const Topology* topology = nullptr;
  JobSimulationOptions sim_options;
};

/// The outcome of one application run: simulated metrics plus a
/// deterministic checksum of the computed result, used to verify that every
/// primitive and optimization level computes the same answer.
struct AppRunResult {
  RunMetrics metrics;
  double checksum = 0.0;
};

using PropagationRunnerFn = std::function<Result<AppRunResult>(
    const BenchmarkSetup&, const PropagationConfig&)>;
using MapReduceRunnerFn =
    std::function<Result<AppRunResult>(const BenchmarkSetup&)>;

/// One of the paper's six workloads (Section 6.1), runnable through either
/// primitive.
struct BenchmarkApp {
  std::string name;       ///< the paper's abbreviation: NR, RS, TC, ...
  std::string full_name;  ///< e.g. "network ranking"
  int default_iterations = 1;
  PropagationRunnerFn run_propagation;
  MapReduceRunnerFn run_mapreduce;
};

/// The full workload suite in the paper's Table 2 order:
/// VDD, RS, NR, RLG, TC, TFL.
const std::vector<BenchmarkApp>& BenchmarkApps();

/// Finds an app by abbreviation; nullptr if unknown.
const BenchmarkApp* FindBenchmarkApp(const std::string& name);

}  // namespace surfer

#endif  // SURFER_APPS_BENCHMARK_SUITE_H_
