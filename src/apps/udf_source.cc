#include "apps/udf_source.h"

#include <algorithm>
#include <cctype>

namespace surfer {

namespace {

// The UDF bodies of src/apps, quoted for the Table 4 line counts. Engine
// plumbing (constructors, byte-size hooks, includes) is excluded on both
// sides, mirroring the paper's "source code lines in user-defined
// functions".

constexpr std::string_view kNrPropagation = R"(
void Transfer(v, state, neighbors, emitter) {
  if (neighbors.empty()) return;
  share = state * d / neighbors.size();
  for (n : neighbors) emitter.Emit(n, share);
}
void Combine(v, state, neighbors, messages) {
  rank = (1 - d) / N;
  for (m : messages) rank += m;
  state = rank;
}
Message Merge(a, b) { return a + b; }
)";

constexpr std::string_view kNrMapReduce = R"(
void Map(partition, emitter) {
  for (v : partition.vertices()) {
    neighbors = partition.OutNeighbors(v);
    if (neighbors.empty()) continue;
    share = rank[v] * d / neighbors.size();
    for (n : neighbors) emitter.Emit(n, share);
  }
}
Output Reduce(key, values) {
  rank = (1 - d) / N;
  for (v : values) rank += v;
  return rank;
}
Value CombineValues(a, b) { return a + b; }
driver:
  ranks.assign(n, 1.0 / n);
  for (it = 0; it < iterations; ++it) {
    job = MapReduceJob(Map, Reduce, CombineValues);
    job.Run();
    next.assign(n, (1 - d) / n);
    for ((v, rank) : job.outputs()) next[v] = rank;
    ranks.swap(next);
  }
)";

constexpr std::string_view kRsPropagation = R"(
void Transfer(v, state, neighbors, emitter) {
  if (state == 0) return;
  for (n : neighbors) emitter.Emit(n, 1);
}
void Combine(v, state, neighbors, messages) {
  if (state != 0 || messages.empty()) return;
  if (Accepts(v, iteration)) state = iteration + 2;
}
Message Merge(a, b) { return max(a, b); }
)";

constexpr std::string_view kRsMapReduce = R"(
void Map(partition, emitter) {
  for (v : partition.vertices()) {
    if (states[v] == 0) continue;
    for (n : partition.OutNeighbors(v)) emitter.Emit(n, 1);
  }
}
Output Reduce(key, values) {
  if (values.empty() || states[key] != 0) return 0;
  return Accepts(key, iteration) ? 1 : 0;
}
Value CombineValues(a, b) { return max(a, b); }
driver:
  states = seeds();
  for (it = 0; it < iterations; ++it) {
    job = MapReduceJob(Map, Reduce, CombineValues);
    job.Run();
    for ((v, accepted) : job.outputs())
      if (accepted && states[v] == 0) states[v] = it + 2;
  }
)";

constexpr std::string_view kTcPropagation = R"(
void Transfer(v, state, neighbors, emitter) {
  if (!selected(v)) return;
  list = neighbors;
  for (n : neighbors)
    if (selected(n)) emitter.Emit(n, list);
}
void Combine(v, state, neighbors, messages) {
  count = 0;
  for (list : messages)
    for (c : list)
      if (selected(c) && binary_search(neighbors, c)) ++count;
  state = count;
}
Message Merge(a, b) { return concat(a, b); }
)";

constexpr std::string_view kTcMapReduce = R"(
void Map(partition, emitter) {
  for (v : partition.vertices()) {
    if (!selected(v)) continue;
    list = partition.OutNeighbors(v);
    emitter.Emit(v, {is_adjacency: true, list});
    for (n : list)
      if (selected(n)) emitter.Emit(n, {is_adjacency: false, list});
  }
}
Output Reduce(key, values) {
  adjacency = null;
  for (value : values)
    if (value.is_adjacency) { adjacency = value.list; break; }
  if (adjacency == null) return 0;
  count = 0;
  for (value : values) {
    if (value.is_adjacency) continue;
    for (c : value.list)
      if (selected(c) && binary_search(adjacency, c)) ++count;
  }
  return count;
}
)";

constexpr std::string_view kVddPropagation = R"(
void Transfer(v, state, neighbors, emitter) {
  emitter.EmitVirtual(neighbors.size(), 1);
}
void Combine(v, state, neighbors, messages) {}
Message Merge(a, b) { return a + b; }
Output CombineVirtual(degree, messages) {
  count = 0;
  for (m : messages) count += m;
  return count;
}
)";

constexpr std::string_view kVddMapReduce = R"(
void Map(partition, emitter) {
  for (v : partition.vertices())
    emitter.Emit(partition.OutDegree(v), 1);
}
Output Reduce(degree, values) {
  count = 0;
  for (v : values) count += v;
  return count;
}
Value CombineValues(a, b) { return a + b; }
)";

constexpr std::string_view kRlgPropagation = R"(
void Transfer(v, state, neighbors, emitter) {
  for (n : neighbors) emitter.Emit(n, {v});
}
void Combine(v, state, neighbors, messages) {
  state = sorted_distinct(concat(messages));
}
Message Merge(a, b) { return set_union(a, b); }
)";

constexpr std::string_view kRlgMapReduce = R"(
void Map(partition, emitter) {
  for (v : partition.vertices())
    for (n : partition.OutNeighbors(v)) emitter.Emit(n, v);
}
Output Reduce(key, values) {
  list = values;
  sort(list);
  dedupe(list);
  return list;
}
)";

constexpr std::string_view kTflPropagation = R"(
void Transfer(v, state, neighbors, emitter) {
  if (!selected(v) || neighbors.empty()) return;
  list = neighbors;
  for (n : neighbors) emitter.Emit(n, list);
}
void Combine(v, state, neighbors, messages) {
  state = sorted_distinct(concat(messages));
  state.erase(v);
}
Message Merge(a, b) { return set_union(a, b); }
)";

constexpr std::string_view kTflMapReduce = R"(
void Map(partition, emitter) {
  for (v : partition.vertices()) {
    if (!selected(v)) continue;
    list = partition.OutNeighbors(v);
    if (list.empty()) continue;
    for (n : list) emitter.Emit(n, list);
  }
}
Output Reduce(key, values) {
  result = sorted_distinct(concat(values));
  result.erase(key);
  return result;
}
)";

}  // namespace

int CountUdfLines(std::string_view source) {
  int lines = 0;
  size_t pos = 0;
  while (pos < source.size()) {
    size_t end = source.find('\n', pos);
    if (end == std::string_view::npos) {
      end = source.size();
    }
    std::string_view line = source.substr(pos, end - pos);
    pos = end + 1;
    // Trim whitespace.
    size_t first = line.find_first_not_of(" \t");
    if (first == std::string_view::npos) {
      continue;  // blank
    }
    size_t last = line.find_last_not_of(" \t");
    line = line.substr(first, last - first + 1);
    if (line == "}" || line == "{" || line.starts_with("//")) {
      continue;  // lone braces and comments do not count
    }
    ++lines;
  }
  return lines;
}

const std::vector<UdfSourceEntry>& UdfSources() {
  static const std::vector<UdfSourceEntry>* entries =
      new std::vector<UdfSourceEntry>{
          // {app, propagation, mapreduce, hadoop, homegrown MR, propagation}
          // paper LoC from Table 4.
          {"VDD", std::string(kVddPropagation), std::string(kVddMapReduce),
           24, 33, 18},
          {"NR", std::string(kNrPropagation), std::string(kNrMapReduce), 147,
           163, 21},
          {"RS", std::string(kRsPropagation), std::string(kRsMapReduce), 152,
           168, 22},
          {"RLG", std::string(kRlgPropagation), std::string(kRlgMapReduce),
           131, 144, 23},
          {"TC", std::string(kTcPropagation), std::string(kTcMapReduce), 157,
           171, 27},
          {"TFL", std::string(kTflPropagation), std::string(kTflMapReduce),
           171, 194, 25},
      };
  return *entries;
}

}  // namespace surfer
