#ifndef SURFER_APPS_COMMON_H_
#define SURFER_APPS_COMMON_H_

#include <cstdint>

#include "graph/types.h"
#include "partition/vertex_encoding.h"

namespace surfer {

/// Deterministic 64-bit mix (SplitMix64 finalizer); all probabilistic app
/// behaviour (vertex sampling, recommendation acceptance) is derived from
/// it so every primitive and optimization level computes identical results.
constexpr uint64_t MixHash(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Samples vertices by *original* ID so the selected set is identical across
/// partitionings, layouts and primitives. `permille` of 1000 selects ~all.
class VertexSampler {
 public:
  VertexSampler(const VertexEncoding* encoding, uint32_t permille,
                uint64_t seed)
      : encoding_(encoding), permille_(permille), seed_(seed) {}

  /// True when the *encoded* vertex is selected.
  bool SelectedEncoded(VertexId encoded) const {
    return SelectedOriginal(encoding_->ToOriginal(encoded));
  }
  /// True when the *original* vertex is selected.
  bool SelectedOriginal(VertexId original) const {
    return MixHash(original * 0x100000001b3ULL + seed_) % 1000 < permille_;
  }

 private:
  const VertexEncoding* encoding_;
  uint32_t permille_;
  uint64_t seed_;
};

/// The paper's default sampling ratio for TC and TFL ("the ratio of selected
/// vertices is 10% in our experiments", Appendix D).
inline constexpr uint32_t kDefaultSamplePermille = 100;

/// PageRank defaults (the paper's update rule, Section 3.1).
inline constexpr double kDefaultDamping = 0.85;

}  // namespace surfer

#endif  // SURFER_APPS_COMMON_H_
