#ifndef SURFER_PROPAGATION_RUNNER_H_
#define SURFER_PROPAGATION_RUNNER_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "cluster/metrics.h"
#include "cluster/topology.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "engine/job_simulation.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "propagation/app_traits.h"
#include "propagation/cascade.h"
#include "propagation/config.h"
#include "runtime/combine_plan.h"
#include "storage/partitioned_graph.h"
#include "storage/replication.h"

namespace surfer {

namespace internal {

/// Simulated size of one virtual-vertex output record.
inline constexpr size_t kVirtualOutputBytes = 16;

}  // namespace internal

/// Executes a propagation application on a partitioned graph over a
/// simulated cluster (Algorithm 5 plus the Section 5 optimizations).
///
/// The computation itself always runs exactly — every message is delivered
/// and every combine executes, so results are identical across optimization
/// levels (tests assert this). What the flags change is the *accounted
/// cost*:
///   - local propagation: messages to inner vertices are applied in memory
///     during the partition scan and never materialized to disk;
///   - local combination: messages to the same remote vertex are merged
///     before being priced as network bytes (requires Merge on the app;
///     semantics-preserving because Merge is associative);
///   - storage layout: cross-partition messages between partitions placed on
///     the same machine bypass the network entirely;
///   - cascaded propagation: across iterations, vertices in V_k skip
///     intermediate state round-trips (Section 5.2).
template <typename App>
  requires PropagationApp<App>
class PropagationRunner {
 public:
  using VertexState = typename App::VertexState;
  using Message = typename App::Message;
  using VirtualOutput = typename internal::VirtualOutputOf<App>::type;

  PropagationRunner(const PartitionedGraph* graph,
                    const ReplicatedPlacement* placement,
                    const Topology* topology, App app,
                    PropagationConfig config)
      : graph_(graph),
        placement_(placement),
        topology_(topology),
        app_(std::move(app)),
        config_(config) {}

  /// Runs `config.iterations` iterations on a fresh simulation and returns
  /// its metrics.
  Result<RunMetrics> Run(JobSimulationOptions sim_options = {}) {
    JobSimulation sim(topology_, sim_options);
    SURFER_RETURN_IF_ERROR(RunWith(&sim));
    return sim.metrics();
  }

  /// Runs on an externally owned simulation (fault-injection experiments,
  /// job composition); metrics accumulate into `sim`.
  Status RunWith(JobSimulation* sim) {
    SURFER_RETURN_IF_ERROR(Validate());
    InitializeStates();
    virtual_outputs_.clear();
    counters_ = PropagationCounters{};
    const uint32_t num_machines = topology_->num_machines();
    link_network_bytes_.assign(
        static_cast<size_t>(num_machines) * num_machines, 0.0);
    if (config_.cascaded && config_.iterations > 1) {
      cascade_ = ComputeCascadeInfo(*graph_);
    } else {
      cascade_ = CascadeInfo{};
    }
    for (int iteration = 0; iteration < config_.iterations; ++iteration) {
      SURFER_TRACE_SCOPE(config_.tracer,
                         "iteration[" + std::to_string(iteration) + "]",
                         "propagation");
      if constexpr (IterationAwareApp<App>) {
        app_.OnIterationStart(iteration);
      }
      SURFER_RETURN_IF_ERROR(RunIteration(sim, iteration));
    }
    PublishCounters();
    return Status::OK();
  }

  const std::vector<VertexState>& states() const { return states_; }

  /// Message-routing counters of the last Run/RunWith (see
  /// PropagationCounters for the invariants they satisfy).
  const PropagationCounters& counters() const { return counters_; }

  /// State of a vertex addressed by its *original* (pre-encoding) ID.
  const VertexState& StateOfOriginal(VertexId original) const {
    return states_[graph_->encoding().ToEncoded(original)];
  }

  /// Virtual-vertex results (empty unless the app aggregates on virtual
  /// vertices).
  const std::map<uint64_t, VirtualOutput>& virtual_outputs() const {
    return virtual_outputs_;
  }

  const CascadeInfo& cascade_info() const { return cascade_; }

  /// Analytic per-link network bytes of the last Run/RunWith: a row-major
  /// M x M matrix where entry [src * M + dst] sums the Transfer-stage bytes
  /// priced from src's primary machine to dst (the diagonal is zero — local
  /// traffic never touches the network). The concurrent runtime's measured
  /// RuntimeStats::link_bytes must reconcile with this matrix exactly, which
  /// cross-checks the cost model against real execution.
  const std::vector<double>& link_network_bytes() const {
    return link_network_bytes_;
  }

 private:
  Status Validate() const {
    if (graph_ == nullptr || placement_ == nullptr || topology_ == nullptr) {
      return Status::InvalidArgument("runner inputs must be non-null");
    }
    if (placement_->num_partitions() != graph_->num_partitions()) {
      return Status::InvalidArgument(
          "placement partition count does not match graph");
    }
    if (config_.iterations < 1) {
      return Status::InvalidArgument("iterations must be >= 1");
    }
    for (PartitionId p = 0; p < placement_->num_partitions(); ++p) {
      if (placement_->primary(p) >= topology_->num_machines()) {
        return Status::InvalidArgument("placement machine out of range");
      }
    }
    return Status::OK();
  }

  void InitializeStates() {
    const Graph& g = graph_->encoded_graph();
    states_.clear();
    states_.reserve(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      states_.push_back(app_.InitState(v, g.OutNeighbors(v)));
    }
  }

  /// True when this vertex's work in `iteration` is elided from disk
  /// accounting by cascaded propagation (its value for this iteration was
  /// already computed during an earlier scan of the phase). The phase length
  /// is the paper's d_min, or the vertex's own partition diameter with the
  /// per-partition-depth extension.
  bool CascadeSkips(VertexId v, int iteration) const {
    if (cascade_.level.empty() || iteration == 0) {
      return false;
    }
    const uint32_t level = cascade_.level[v];
    if (level == kCascadeInf) {
      return true;  // V_inf: all iterations ran in the first scan
    }
    const uint32_t c = std::max<uint32_t>(
        1, config_.cascade_per_partition_depth
               ? cascade_.partition_diameter[graph_->PartitionOf(v)]
               : cascade_.d_min);
    if (c < 2) {
      return false;
    }
    const uint32_t phase_pos = static_cast<uint32_t>(iteration) % c;
    return phase_pos >= 1 && std::min(level, c) > phase_pos;
  }

  /// Per-source-partition buffers produced by the Transfer stage.
  struct PartitionOut {
    std::vector<std::pair<VertexId, Message>> local;
    double inner_local_bytes = 0.0;
    double boundary_local_bytes = 0.0;
    std::unordered_map<PartitionId, std::vector<std::pair<VertexId, Message>>>
        remote_list;
    std::unordered_map<PartitionId, std::unordered_map<VertexId, Message>>
        remote_merged;
    std::unordered_map<PartitionId,
                       std::vector<std::pair<uint64_t, Message>>>
        virtual_list;
    std::unordered_map<PartitionId, std::unordered_map<uint64_t, Message>>
        virtual_merged;
    double emitted_bytes = 0.0;
    double state_read_bytes = 0.0;
    double skipped_state_bytes = 0.0;   // cascaded elision: states
    double skipped_record_bytes = 0.0;  // cascaded elision: adjacency records
    uint64_t skipped_vertices = 0;
    PropagationCounters counters;
  };

  Status RunIteration(JobSimulation* sim, int iteration) {
    const uint32_t num_partitions = graph_->num_partitions();
    const Graph& g = graph_->encoded_graph();
    const bool merge_remote = config_.local_combination && MergeableApp<App>;

    // ---------------- Transfer stage ----------------
    std::vector<PartitionOut> outs(num_partitions);
    std::vector<SimTask> transfer_tasks(num_partitions);

    // std::optional so the wall-clock span can close right after the
    // parallel compute, before the simulated stage runs.
    std::optional<obs::ScopedSpan> transfer_span(
        std::in_place, config_.tracer,
        "transfer_compute[" + std::to_string(iteration) + "]", "propagation");
    GlobalThreadPool().ParallelFor(num_partitions, [&](size_t pi) {
      const PartitionId p = static_cast<PartitionId>(pi);
      const PartitionMeta& meta = graph_->partition(p);
      PartitionOut& out = outs[p];
      PropagationEmitter<Message> emitter;
      // With local combination on, messages to *local* targets also merge
      // per target before they are counted (inner ones are applied in
      // memory anyway; boundary ones spill in merged form — the same
      // associativity argument as for remote merging).
      std::unordered_map<VertexId, Message> local_merged;

      for (VertexId v = meta.begin; v < meta.end; ++v) {
        const double state_bytes =
            static_cast<double>(app_.StateBytes(states_[v]));
        if (CascadeSkips(v, iteration)) {
          // This vertex's value for the current iteration was computed in a
          // batch during an earlier scan of the phase (Section 5.2): the
          // scan skips its adjacency record and state round-trip.
          out.skipped_state_bytes += state_bytes;
          out.skipped_record_bytes += static_cast<double>(
              StoredVertexRecordBytes(g.OutDegree(v)));
          ++out.skipped_vertices;
        }
        out.state_read_bytes += state_bytes;
        app_.Transfer(v, states_[v], g.OutNeighbors(v), emitter);
        // Drain() resets the emitter after streaming, so the next vertex's
        // Transfer starts from a clean slate.
        emitter.Drain(
            [&](VertexId target, Message message) {
              const double bytes =
                  static_cast<double>(app_.MessageBytes(message));
              out.emitted_bytes += bytes;
              ++out.counters.messages_emitted;
              const PartitionId pt = graph_->PartitionOf(target);
              if (pt == p) {
                if (merge_remote) {
                  if constexpr (MergeableApp<App>) {
                    auto it = local_merged.find(target);
                    if (it == local_merged.end()) {
                      local_merged.emplace(target, std::move(message));
                    } else {
                      it->second = app_.Merge(it->second, message);
                      ++out.counters.messages_locally_combined;
                    }
                  }
                } else {
                  const bool inner = meta.boundary[target - meta.begin] == 0;
                  if (inner) {
                    out.inner_local_bytes += bytes;
                    if (config_.local_propagation) {
                      ++out.counters.messages_locally_propagated;
                    } else {
                      ++out.counters.messages_materialized;
                    }
                  } else {
                    out.boundary_local_bytes += bytes;
                    ++out.counters.messages_materialized;
                  }
                  out.local.emplace_back(target, std::move(message));
                }
              } else if (merge_remote) {
                if constexpr (MergeableApp<App>) {
                  auto& bucket = out.remote_merged[pt];
                  auto it = bucket.find(target);
                  if (it == bucket.end()) {
                    bucket.emplace(target, std::move(message));
                  } else {
                    it->second = app_.Merge(it->second, message);
                    ++out.counters.messages_locally_combined;
                  }
                }
              } else {
                out.remote_list[pt].emplace_back(target, std::move(message));
              }
            },
            [&](uint64_t target, Message message) {
              const double bytes =
                  static_cast<double>(app_.MessageBytes(message));
              out.emitted_bytes += bytes;
              ++out.counters.messages_emitted;
              const PartitionId pt =
                  static_cast<PartitionId>(target % num_partitions);
              if (merge_remote) {
                if constexpr (MergeableApp<App>) {
                  auto& bucket = out.virtual_merged[pt];
                  auto it = bucket.find(target);
                  if (it == bucket.end()) {
                    bucket.emplace(target, std::move(message));
                  } else {
                    it->second = app_.Merge(it->second, message);
                    ++out.counters.messages_locally_combined;
                  }
                }
              } else {
                out.virtual_list[pt].emplace_back(target, std::move(message));
              }
            });
      }

      // Flush the merged local messages with post-merge byte counts.
      if constexpr (MergeableApp<App>) {
        for (auto& [target, message] : local_merged) {
          const double bytes =
              static_cast<double>(app_.MessageBytes(message));
          if (meta.boundary[target - meta.begin] == 0) {
            out.inner_local_bytes += bytes;
            if (config_.local_propagation) {
              ++out.counters.messages_locally_propagated;
            } else {
              ++out.counters.messages_materialized;
            }
          } else {
            out.boundary_local_bytes += bytes;
            ++out.counters.messages_materialized;
          }
          out.local.emplace_back(target, std::move(message));
        }
        local_merged.clear();
      }

      // Price the task.
      SimTask& task = transfer_tasks[p];
      task.kind = SimTaskKind::kTransfer;
      task.partition = p;
      for (MachineId m : placement_->replicas[p]) {
        if (m != kInvalidMachine) {
          task.candidate_machines.push_back(m);
        }
      }
      TaskCost& cost = task.cost;
      const double effective_state_read =
          out.state_read_bytes - out.skipped_state_bytes;
      const double effective_record_read = std::max(
          0.0, static_cast<double>(meta.stored_bytes) -
                   out.skipped_record_bytes);
      cost.disk_read_bytes = effective_record_read + effective_state_read;
      cost.cpu_bytes =
          static_cast<double>(meta.stored_bytes) + out.emitted_bytes;
      // Intermediate materialization: boundary-target local messages always
      // spill; inner-target ones only without local propagation; cascaded
      // elision removes the skipped vertices' share of the inner spill.
      double inner_spill =
          config_.local_propagation ? 0.0 : out.inner_local_bytes;
      const VertexId part_vertices = meta.num_vertices();
      if (part_vertices > 0 && out.skipped_vertices > 0) {
        const double skip_fraction = static_cast<double>(out.skipped_vertices) /
                                     static_cast<double>(part_vertices);
        inner_spill *= (1.0 - skip_fraction);
      }
      cost.disk_write_bytes = out.boundary_local_bytes + inner_spill;

      // Cross-partition traffic, merged or raw.
      const MachineId my_machine = placement_->primary(p);
      auto price_destination = [&](PartitionId dst, double bytes,
                                   uint64_t num_messages) {
        const MachineId dst_machine = placement_->primary(dst);
        // Either way the bytes spill once on this machine: as the final
        // intermediate for a co-located destination, or as the send buffer
        // for a remote one (which additionally pays the wire and a receive
        // spill on the destination).
        cost.disk_write_bytes += bytes;
        out.counters.messages_materialized += num_messages;
        if (dst_machine != my_machine) {
          cost.AddNetwork(dst_machine, bytes);
          out.counters.messages_network += num_messages;
        }
      };
      for (const auto& [dst, messages] : out.remote_list) {
        double bytes = 0.0;
        for (const auto& [target, message] : messages) {
          (void)target;
          bytes += static_cast<double>(app_.MessageBytes(message));
        }
        price_destination(dst, bytes, messages.size());
      }
      for (const auto& [dst, merged] : out.remote_merged) {
        double bytes = 0.0;
        for (const auto& [target, message] : merged) {
          (void)target;
          bytes += static_cast<double>(app_.MessageBytes(message));
        }
        price_destination(dst, bytes, merged.size());
      }
      for (const auto& [dst, messages] : out.virtual_list) {
        double bytes = 0.0;
        for (const auto& [target, message] : messages) {
          (void)target;
          bytes += static_cast<double>(app_.MessageBytes(message));
        }
        if (dst == p) {
          cost.disk_write_bytes += bytes;
          out.counters.messages_materialized += messages.size();
        } else {
          price_destination(dst, bytes, messages.size());
        }
      }
      for (const auto& [dst, merged] : out.virtual_merged) {
        double bytes = 0.0;
        for (const auto& [target, message] : merged) {
          (void)target;
          bytes += static_cast<double>(app_.MessageBytes(message));
        }
        if (dst == p) {
          cost.disk_write_bytes += bytes;
          out.counters.messages_materialized += merged.size();
        } else {
          price_destination(dst, bytes, merged.size());
        }
      }
      if (config_.memory_limit_bytes > 0) {
        const double working_set = static_cast<double>(meta.stored_bytes) +
                                   out.state_read_bytes +
                                   cost.disk_write_bytes;
        cost.random_io =
            working_set > static_cast<double>(config_.memory_limit_bytes);
      }
    });

    transfer_span.reset();
    for (const PartitionOut& out : outs) {
      counters_.MergeFrom(out.counters);
    }
    // Fold each task's priced sends into the per-link byte matrix before the
    // simulation consumes the tasks. Sources are the partitions' primaries:
    // the matrix describes the no-fault execution the runtime reproduces.
    const uint32_t nm = topology_->num_machines();
    for (PartitionId p = 0; p < num_partitions; ++p) {
      const MachineId src = placement_->primary(p);
      for (const auto& [dst, bytes] : transfer_tasks[p].cost.network_out) {
        link_network_bytes_[static_cast<size_t>(src) * nm + dst] += bytes;
      }
    }

    SURFER_RETURN_IF_ERROR(
        sim->RunStage("transfer[" + std::to_string(iteration) + "]",
                      std::move(transfer_tasks))
            .status());

    // ---------------- Delivery (zero-cost bookkeeping) ----------------
    std::vector<std::vector<std::pair<VertexId, Message>>> inbox(
        num_partitions);
    std::vector<std::vector<std::pair<uint64_t, Message>>> virtual_inbox(
        num_partitions);
    std::vector<double> incoming_remote_bytes(num_partitions, 0.0);
    std::vector<double> local_materialized_bytes(num_partitions, 0.0);

    for (PartitionId p = 0; p < num_partitions; ++p) {
      PartitionOut& out = outs[p];
      auto& own = inbox[p];
      std::move(out.local.begin(), out.local.end(), std::back_inserter(own));
      out.local.clear();
      local_materialized_bytes[p] +=
          out.boundary_local_bytes +
          (config_.local_propagation ? 0.0 : out.inner_local_bytes);
      const MachineId src_machine = placement_->primary(p);
      // Bytes from a co-located partition were already spilled to this
      // machine's disk by the Transfer task; the Combine task only re-reads
      // them. Truly remote bytes additionally pay the receive spill, and
      // are what a recovering Combine task must re-transfer.
      auto account = [&](PartitionId dst, double bytes) {
        if (placement_->primary(dst) == src_machine) {
          local_materialized_bytes[dst] += bytes;
        } else {
          incoming_remote_bytes[dst] += bytes;
        }
      };
      for (auto& [dst, messages] : out.remote_list) {
        for (auto& [target, message] : messages) {
          account(dst, static_cast<double>(app_.MessageBytes(message)));
          inbox[dst].emplace_back(target, std::move(message));
        }
      }
      for (auto& [dst, merged] : out.remote_merged) {
        for (auto& [target, message] : merged) {
          account(dst, static_cast<double>(app_.MessageBytes(message)));
          inbox[dst].emplace_back(target, std::move(message));
        }
      }
      for (auto& [dst, messages] : out.virtual_list) {
        for (auto& [target, message] : messages) {
          if (dst != p) {
            account(dst, static_cast<double>(app_.MessageBytes(message)));
          } else {
            local_materialized_bytes[p] +=
                static_cast<double>(app_.MessageBytes(message));
          }
          virtual_inbox[dst].emplace_back(target, std::move(message));
        }
      }
      for (auto& [dst, merged] : out.virtual_merged) {
        for (auto& [target, message] : merged) {
          if (dst != p) {
            account(dst, static_cast<double>(app_.MessageBytes(message)));
          } else {
            local_materialized_bytes[p] +=
                static_cast<double>(app_.MessageBytes(message));
          }
          virtual_inbox[dst].emplace_back(target, std::move(message));
        }
      }
      out = PartitionOut{};  // release buffers eagerly
    }

    // ---------------- Combine stage ----------------
    std::vector<SimTask> combine_tasks(num_partitions);
    std::vector<std::vector<std::pair<uint64_t, VirtualOutput>>>
        virtual_results(num_partitions);

    std::optional<obs::ScopedSpan> combine_span(
        std::in_place, config_.tracer,
        "combine_compute[" + std::to_string(iteration) + "]", "propagation");
    std::vector<uint64_t> skipped_per_partition(num_partitions, 0);
    GlobalThreadPool().ParallelFor(num_partitions, [&](size_t pi) {
      const PartitionId p = static_cast<PartitionId>(pi);
      const PartitionMeta& meta = graph_->partition(p);
      auto& messages = inbox[p];
      // Sort-free regroup (runtime/combine_plan.h): the inbox was filled in
      // ascending source-partition order, so a stable counting scatter by
      // target reproduces, byte for byte, the grouping the legacy
      // stable_sort produced — each vertex's messages contiguous, per-sender
      // emission order preserved.
      runtime::CombineScratch scratch = combine_pool_.Acquire();
      std::vector<Message> grouped;
      runtime::GroupMessagesByVertex(scratch, meta.begin, meta.end, messages,
                                     grouped);

      // Frontier gating skips only the Combine *call* for silent vertices
      // (legal by the app's kSkipSilentVertices contract); the simulated
      // cost model still walks and prices every vertex state, so accounted
      // costs are independent of the gate.
      bool gate = false;
      if constexpr (SilentVertexSkippableApp<App>) {
        gate = config_.frontier_gating;
      }
      double new_state_bytes = 0.0;
      double skipped_state_bytes = 0.0;
      uint64_t skipped_vertices = 0;
      std::vector<Message> vertex_messages;
      for (VertexId v = meta.begin; v < meta.end; ++v) {
        const size_t i = static_cast<size_t>(v - meta.begin);
        if (gate && !scratch.Received(i)) {
          ++skipped_vertices;
        } else {
          vertex_messages.clear();
          for (size_t j = scratch.RunBegin(i), end = scratch.RunEnd(i);
               j < end; ++j) {
            vertex_messages.push_back(std::move(grouped[j]));
          }
          app_.Combine(v, states_[v], g.OutNeighbors(v), vertex_messages);
        }
        const double state_bytes =
            static_cast<double>(app_.StateBytes(states_[v]));
        new_state_bytes += state_bytes;
        if (CascadeSkips(v, iteration)) {
          skipped_state_bytes += state_bytes;
        }
      }
      skipped_per_partition[p] = skipped_vertices;
      combine_pool_.Release(std::move(scratch));

      // Virtual vertices owned by this partition: rank-and-scatter regroup
      // (only the distinct IDs are sorted, not all records).
      double virtual_output_bytes = 0.0;
      if constexpr (VirtualVertexApp<App>) {
        auto& vmsgs = virtual_inbox[p];
        runtime::VirtualGroupScratch vgroups;
        std::vector<Message> vgrouped;
        runtime::GroupVirtualMessages(vgroups, vmsgs, vgrouped);
        std::vector<Message> group;
        for (size_t i = 0; i < vgroups.ids.size(); ++i) {
          const uint64_t id = vgroups.ids[i];
          group.clear();
          for (size_t j = vgroups.offsets[i]; j < vgroups.offsets[i + 1];
               ++j) {
            group.push_back(std::move(vgrouped[j]));
          }
          virtual_results[p].emplace_back(id, app_.CombineVirtual(id, group));
          virtual_output_bytes +=
              static_cast<double>(internal::kVirtualOutputBytes);
        }
      }

      SimTask& task = combine_tasks[p];
      task.kind = SimTaskKind::kCombine;
      task.partition = p;
      for (MachineId m : placement_->replicas[p]) {
        if (m != kInvalidMachine) {
          task.candidate_machines.push_back(m);
        }
      }
      TaskCost& cost = task.cost;
      const double incoming = incoming_remote_bytes[p];
      const double local_bytes = local_materialized_bytes[p];
      cost.network_in_bytes = incoming;  // pulled from remote transfers
      cost.disk_read_bytes = local_bytes + incoming;
      // Receive spill + the updated states (cascade skips intermediate
      // state round-trips for qualifying vertices).
      cost.disk_write_bytes =
          incoming + (new_state_bytes - skipped_state_bytes) +
          virtual_output_bytes;
      cost.cpu_bytes = incoming + local_bytes + new_state_bytes;
      task.recovery_refetch_bytes = incoming;
      if (config_.memory_limit_bytes > 0) {
        const double working_set = incoming + local_bytes + new_state_bytes;
        cost.random_io =
            working_set > static_cast<double>(config_.memory_limit_bytes);
      }
    });

    combine_span.reset();

    for (uint64_t skipped : skipped_per_partition) {
      counters_.frontier_vertices_skipped += skipped;
    }

    // Merge virtual outputs deterministically.
    if constexpr (VirtualVertexApp<App>) {
      for (auto& per_partition : virtual_results) {
        for (auto& [id, output] : per_partition) {
          virtual_outputs_[id] = std::move(output);
        }
      }
    }

    SURFER_RETURN_IF_ERROR(
        sim->RunStage("combine[" + std::to_string(iteration) + "]",
                      std::move(combine_tasks))
            .status());
    return Status::OK();
  }

  /// Publishes the run's message-routing counters to the configured
  /// registry (no-op without one). Counters accumulate across runs; the
  /// per-run values stay available via counters().
  void PublishCounters() {
    obs::MetricsRegistry* metrics = config_.metrics;
    if (metrics == nullptr) {
      return;
    }
    metrics->CounterRef("propagation_runs_total").Increment();
    metrics->CounterRef("propagation_iterations_total")
        .Increment(static_cast<uint64_t>(config_.iterations));
    metrics->CounterRef("propagation_messages_emitted")
        .Increment(counters_.messages_emitted);
    metrics->CounterRef("propagation_messages_locally_propagated")
        .Increment(counters_.messages_locally_propagated);
    metrics->CounterRef("propagation_messages_locally_combined")
        .Increment(counters_.messages_locally_combined);
    metrics->CounterRef("propagation_messages_materialized")
        .Increment(counters_.messages_materialized);
    metrics->CounterRef("propagation_messages_network")
        .Increment(counters_.messages_network);
    metrics->CounterRef("propagation_frontier_vertices_skipped")
        .Increment(counters_.frontier_vertices_skipped);
  }

  const PartitionedGraph* graph_;
  const ReplicatedPlacement* placement_;
  const Topology* topology_;
  App app_;
  PropagationConfig config_;

  std::vector<VertexState> states_;
  std::map<uint64_t, VirtualOutput> virtual_outputs_;
  CascadeInfo cascade_;
  PropagationCounters counters_;
  /// Regroup scratch freelist shared by the ParallelFor combine tasks
  /// (thread-safe; keeps counting-scatter storage warm across iterations).
  runtime::CombineScratchPool combine_pool_;
  std::vector<double> link_network_bytes_;
};

}  // namespace surfer

#endif  // SURFER_PROPAGATION_RUNNER_H_
