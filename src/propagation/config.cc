#include "propagation/config.h"

namespace surfer {

std::string OptimizationLevelName(OptimizationLevel level) {
  switch (level) {
    case OptimizationLevel::kO1:
      return "O1";
    case OptimizationLevel::kO2:
      return "O2";
    case OptimizationLevel::kO3:
      return "O3";
    case OptimizationLevel::kO4:
      return "O4";
  }
  return "?";
}

bool UsesBandwidthAwareLayout(OptimizationLevel level) {
  return level == OptimizationLevel::kO2 || level == OptimizationLevel::kO4;
}

bool UsesLocalOptimizations(OptimizationLevel level) {
  return level == OptimizationLevel::kO3 || level == OptimizationLevel::kO4;
}

}  // namespace surfer
