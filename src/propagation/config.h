#ifndef SURFER_PROPAGATION_CONFIG_H_
#define SURFER_PROPAGATION_CONFIG_H_

#include <cstdint>
#include <string>

namespace surfer {

namespace obs {
class MetricsRegistry;
class Tracer;
}  // namespace obs

/// The optimization levels evaluated in Section 6.3. The storage-layout half
/// (O2/O4 vs O1/O3) is chosen by the *placement* passed to the runner; the
/// local-optimization half (O3/O4 vs O1/O2) by these flags.
enum class OptimizationLevel {
  kO1,  ///< ParMetis layout, no local optimizations
  kO2,  ///< bandwidth-aware layout, no local optimizations
  kO3,  ///< ParMetis layout, local propagation + local combination
  kO4,  ///< bandwidth-aware layout, local propagation + local combination
};

std::string OptimizationLevelName(OptimizationLevel level);

/// True when the level uses the bandwidth-aware storage layout.
bool UsesBandwidthAwareLayout(OptimizationLevel level);
/// True when the level enables local propagation / local combination.
bool UsesLocalOptimizations(OptimizationLevel level);

/// Runtime configuration of a propagation job.
struct PropagationConfig {
  /// Local propagation (Section 5.1): messages to inner vertices are applied
  /// in memory during the partition scan, never materialized to disk.
  bool local_propagation = true;
  /// Local combination (Section 5.1): messages bound for the same remote
  /// vertex are merged before transmission when `combine` is associative
  /// (the app exposes Merge).
  bool local_combination = true;
  /// Cascaded multi-iteration propagation (Section 5.2): vertices whose
  /// k-hop neighborhood stays in the partition run k iterations per scan.
  bool cascaded = false;
  /// Extension beyond the paper: instead of one global phase length d_min
  /// ("for simplicity, we set the suitable number of iterations ... to be
  /// the smallest diameter of all the partitions"), let each partition
  /// cascade up to its *own* diameter. Results are unchanged (elision is an
  /// I/O-accounting property); which variant elides more depends on the
  /// level distribution — long phases favor deep interiors, short phases
  /// re-skip shallow vertices more often.
  bool cascade_per_partition_depth = false;
  /// Frontier gating: combine loops visit only vertices whose
  /// received-message frontier bit is set, skipping silent (converged)
  /// vertices. Takes effect only for apps that declare the
  /// SilentVertexSkippableApp trait (`kSkipSilentVertices`), whose contract
  /// makes the skip result-invariant; other apps keep the legacy full-range
  /// loop regardless of this flag. On by default — it is inert unless an
  /// app opts in — and exposed so tests can pin bit-identity with gating
  /// both on and off.
  bool frontier_gating = true;
  /// Number of propagation iterations (NR runs several; most apps run one).
  int iterations = 1;
  /// Simulated per-machine memory available to a partition's working set;
  /// exceeding it degrades the task to random disk I/O (P2). Zero disables
  /// the check.
  uint64_t memory_limit_bytes = 0;
  /// Optional observability hooks (not owned; may be null). The tracer gets
  /// wall-clock spans per iteration; the registry gets propagation_*
  /// counters. Pass the same pointers via JobSimulationOptions to also
  /// capture the simulated-clock side of the run.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;

  static PropagationConfig ForLevel(OptimizationLevel level) {
    PropagationConfig config;
    config.local_propagation = UsesLocalOptimizations(level);
    config.local_combination = UsesLocalOptimizations(level);
    return config;
  }
};

/// Message-routing counters of one propagation run, accumulated across
/// iterations. These count *messages* (not bytes) at the point the
/// optimization decision is made, so they diagnose the Section 5 levels
/// directly:
///   emitted == locally_propagated + locally_combined + materialized
/// and network <= materialized (every network message also spills once as a
/// send buffer). Cascaded elision changes byte accounting only and leaves
/// these counts untouched.
struct PropagationCounters {
  /// Messages produced by Transfer (real + virtual targets).
  uint64_t messages_emitted = 0;
  /// Inner-vertex messages applied in memory by local propagation.
  uint64_t messages_locally_propagated = 0;
  /// Messages merged away by local combination before materialization.
  uint64_t messages_locally_combined = 0;
  /// Messages spilled to disk (boundary-local, unoptimized inner-local, and
  /// every cross-partition send buffer).
  uint64_t messages_materialized = 0;
  /// Messages that crossed a machine boundary.
  uint64_t messages_network = 0;
  /// Combine calls skipped by frontier gating (SilentVertexSkippableApps
  /// under PropagationConfig::frontier_gating only; always 0 otherwise).
  uint64_t frontier_vertices_skipped = 0;

  void MergeFrom(const PropagationCounters& other) {
    messages_emitted += other.messages_emitted;
    messages_locally_propagated += other.messages_locally_propagated;
    messages_locally_combined += other.messages_locally_combined;
    messages_materialized += other.messages_materialized;
    messages_network += other.messages_network;
    frontier_vertices_skipped += other.frontier_vertices_skipped;
  }
};

}  // namespace surfer

#endif  // SURFER_PROPAGATION_CONFIG_H_
