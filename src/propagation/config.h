#ifndef SURFER_PROPAGATION_CONFIG_H_
#define SURFER_PROPAGATION_CONFIG_H_

#include <cstdint>
#include <string>

namespace surfer {

/// The optimization levels evaluated in Section 6.3. The storage-layout half
/// (O2/O4 vs O1/O3) is chosen by the *placement* passed to the runner; the
/// local-optimization half (O3/O4 vs O1/O2) by these flags.
enum class OptimizationLevel {
  kO1,  ///< ParMetis layout, no local optimizations
  kO2,  ///< bandwidth-aware layout, no local optimizations
  kO3,  ///< ParMetis layout, local propagation + local combination
  kO4,  ///< bandwidth-aware layout, local propagation + local combination
};

std::string OptimizationLevelName(OptimizationLevel level);

/// True when the level uses the bandwidth-aware storage layout.
bool UsesBandwidthAwareLayout(OptimizationLevel level);
/// True when the level enables local propagation / local combination.
bool UsesLocalOptimizations(OptimizationLevel level);

/// Runtime configuration of a propagation job.
struct PropagationConfig {
  /// Local propagation (Section 5.1): messages to inner vertices are applied
  /// in memory during the partition scan, never materialized to disk.
  bool local_propagation = true;
  /// Local combination (Section 5.1): messages bound for the same remote
  /// vertex are merged before transmission when `combine` is associative
  /// (the app exposes Merge).
  bool local_combination = true;
  /// Cascaded multi-iteration propagation (Section 5.2): vertices whose
  /// k-hop neighborhood stays in the partition run k iterations per scan.
  bool cascaded = false;
  /// Extension beyond the paper: instead of one global phase length d_min
  /// ("for simplicity, we set the suitable number of iterations ... to be
  /// the smallest diameter of all the partitions"), let each partition
  /// cascade up to its *own* diameter. Results are unchanged (elision is an
  /// I/O-accounting property); which variant elides more depends on the
  /// level distribution — long phases favor deep interiors, short phases
  /// re-skip shallow vertices more often.
  bool cascade_per_partition_depth = false;
  /// Number of propagation iterations (NR runs several; most apps run one).
  int iterations = 1;
  /// Simulated per-machine memory available to a partition's working set;
  /// exceeding it degrades the task to random disk I/O (P2). Zero disables
  /// the check.
  uint64_t memory_limit_bytes = 0;

  static PropagationConfig ForLevel(OptimizationLevel level) {
    PropagationConfig config;
    config.local_propagation = UsesLocalOptimizations(level);
    config.local_combination = UsesLocalOptimizations(level);
    return config;
  }
};

}  // namespace surfer

#endif  // SURFER_PROPAGATION_CONFIG_H_
