#ifndef SURFER_PROPAGATION_CASCADE_H_
#define SURFER_PROPAGATION_CASCADE_H_

#include <cstdint>
#include <vector>

#include "storage/partitioned_graph.h"

namespace surfer {

/// Per-vertex cascade level for multi-iteration propagation (Section 5.2).
/// level(v) is the shortest within-partition distance from any boundary
/// vertex to v along out-edges; v belongs to V_k for every k <= level(v),
/// i.e. k iterations of propagation on v are computable from one partition
/// scan. Boundary vertices have level 0 (the paper's V_0). Vertices not
/// reachable from any boundary vertex are V_inf (kCascadeInf): external
/// information never reaches them, so any number of iterations runs locally.
inline constexpr uint32_t kCascadeInf = UINT32_MAX;

struct CascadeInfo {
  /// level per encoded vertex (kCascadeInf for V_inf).
  std::vector<uint32_t> level;
  /// Pseudo-diameter per partition (max finite level observed + 1, a cheap
  /// stand-in for the partition diameter bound of Section 5.2).
  std::vector<uint32_t> partition_diameter;
  /// d_min: the paper's cascade phase length — the smallest partition
  /// diameter (at least 1).
  uint32_t d_min = 1;

  /// Fraction of vertices with level >= k (the paper reports ~7% for k=2 on
  /// the MSN graph).
  double RatioAtLeast(uint32_t k) const;
};

/// Computes cascade levels with one multi-source BFS per partition.
CascadeInfo ComputeCascadeInfo(const PartitionedGraph& pg);

}  // namespace surfer

#endif  // SURFER_PROPAGATION_CASCADE_H_
