#ifndef SURFER_PROPAGATION_APP_TRAITS_H_
#define SURFER_PROPAGATION_APP_TRAITS_H_

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "graph/types.h"

namespace surfer {

namespace internal {

/// Extracts App::VirtualOutput when present; std::monostate otherwise.
/// Shared by the analytic PropagationRunner and the concurrent
/// runtime::RuntimeExecutor, which must agree on the output type to be
/// cross-validated against each other.
template <typename App, typename = void>
struct VirtualOutputOf {
  using type = std::monostate;
};
template <typename App>
struct VirtualOutputOf<App, std::void_t<typename App::VirtualOutput>> {
  using type = typename App::VirtualOutput;
};

}  // namespace internal

/// Collects the (target, message) pairs emitted by a `transfer` call.
/// Targets are either real graph vertices or *virtual vertices* (Section 3.2)
/// addressed by an arbitrary 64-bit ID; virtual vertices emulate
/// MapReduce-style vertex-oriented aggregation (VDD uses the degree value as
/// the virtual-vertex ID).
template <typename Message>
class PropagationEmitter {
 public:
  void Emit(VertexId target, Message message) {
    real_.emplace_back(target, std::move(message));
  }
  void EmitVirtual(uint64_t target, Message message) {
    virtual_.emplace_back(target, std::move(message));
  }

  /// Streams every emission into the visitors — reals first, then virtuals,
  /// both in emission order — and resets the emitter for the next vertex.
  /// This is the only way engines consume emissions: a sink interface lets
  /// them route messages straight into wire batches or delivery buckets
  /// without copying or mutating the emitter's internals.
  template <typename RealFn, typename VirtualFn>
  void Drain(RealFn&& on_real, VirtualFn&& on_virtual) {
    for (auto& [target, message] : real_) {
      on_real(target, std::move(message));
    }
    for (auto& [target, message] : virtual_) {
      on_virtual(target, std::move(message));
    }
    real_.clear();
    virtual_.clear();
  }

  /// Move-out accessors for callers that want the raw emission vectors
  /// (tests, batch consumers); the emitter is left empty.
  std::vector<std::pair<VertexId, Message>> TakeReal() {
    return std::exchange(real_, {});
  }
  std::vector<std::pair<uint64_t, Message>> TakeVirtuals() {
    return std::exchange(virtual_, {});
  }

  void Clear() {
    real_.clear();
    virtual_.clear();
  }

 private:
  std::vector<std::pair<VertexId, Message>> real_;
  std::vector<std::pair<uint64_t, Message>> virtual_;
};

/// The propagation application interface (Section 3.2). An app provides:
///   using VertexState — per-vertex persistent state;
///   using Message — the value transferred along an edge;
///   VertexState InitState(VertexId v, std::span<const VertexId> neighbors);
///   void Transfer(VertexId v, const VertexState&,
///                 std::span<const VertexId> neighbors,
///                 PropagationEmitter<Message>&) const;
///   void Combine(VertexId v, VertexState&,
///                std::span<const VertexId> neighbors,
///                std::vector<Message>&) const;
/// (Combine receives v's adjacency list because apps like triangle counting
/// "check whether the adjacent list has overlapping with any of the awarded
/// neighbor lists", Appendix D Algorithm 3.)
///   size_t MessageBytes(const Message&) const;
///   size_t StateBytes(const VertexState&) const;
/// Optionally:
///   Message Merge(const Message&, const Message&) const — marks `combine`
///     associative, enabling local combination (Section 5.1);
///   using VirtualOutput + VirtualOutput CombineVirtual(uint64_t id,
///     std::vector<Message>&) const — handles virtual-vertex aggregation.
template <typename App>
concept PropagationApp = requires(
    const App app, VertexId v, typename App::VertexState state,
    std::span<const VertexId> neighbors,
    PropagationEmitter<typename App::Message> emitter,
    std::vector<typename App::Message> messages) {
  typename App::VertexState;
  typename App::Message;
  { app.InitState(v, neighbors) } -> std::same_as<typename App::VertexState>;
  app.Transfer(v, state, neighbors, emitter);
  app.Combine(v, state, neighbors, messages);
  { app.MessageBytes(messages[0]) } -> std::convertible_to<size_t>;
  { app.StateBytes(state) } -> std::convertible_to<size_t>;
};

/// Detected when the app's combine is associative (local combination legal).
template <typename App>
concept MergeableApp = requires(const App app, const typename App::Message m) {
  { app.Merge(m, m) } -> std::same_as<typename App::Message>;
};

/// Detected when the app wants to know the current iteration (apps whose
/// combine logic depends on the round, like the recommender's acceptance
/// epoch). Called before each iteration's Transfer stage.
template <typename App>
concept IterationAwareApp = requires(App app, int iteration) {
  app.OnIterationStart(iteration);
};

/// Opt-in frontier-gating trait (default off): an app declares
///   static constexpr bool kSkipSilentVertices = true;
/// to promise that `Combine` with an *empty* message vector leaves the
/// vertex state untouched (the call is the identity). Engines may then skip
/// silent vertices — those whose received-message frontier bit is clear —
/// instead of walking the full partition range every iteration, and results
/// stay bit-identical by the app's own contract. Apps whose Combine writes
/// state unconditionally (NR overwrites the rank with the random-jump term
/// even when no partial ranks arrive) must NOT declare this; they keep the
/// exact legacy full-range loop.
template <typename App>
concept SilentVertexSkippableApp = requires {
  requires bool(App::kSkipSilentVertices);
};

/// Detected when the app aggregates on virtual vertices.
template <typename App>
concept VirtualVertexApp = requires(
    const App app, uint64_t id, std::vector<typename App::Message> messages) {
  typename App::VirtualOutput;
  {
    app.CombineVirtual(id, messages)
  } -> std::same_as<typename App::VirtualOutput>;
};

}  // namespace surfer

#endif  // SURFER_PROPAGATION_APP_TRAITS_H_
