#include "propagation/cascade.h"

#include <algorithm>
#include <deque>

namespace surfer {

double CascadeInfo::RatioAtLeast(uint32_t k) const {
  if (level.empty()) {
    return 0.0;
  }
  size_t count = 0;
  for (uint32_t l : level) {
    if (l == kCascadeInf || l >= k) {
      ++count;
    }
  }
  return static_cast<double>(count) / static_cast<double>(level.size());
}

CascadeInfo ComputeCascadeInfo(const PartitionedGraph& pg) {
  CascadeInfo info;
  const Graph& graph = pg.encoded_graph();
  info.level.assign(graph.num_vertices(), kCascadeInf);
  info.partition_diameter.assign(pg.num_partitions(), 1);

  std::deque<VertexId> queue;
  for (PartitionId p = 0; p < pg.num_partitions(); ++p) {
    const PartitionMeta& meta = pg.partition(p);
    queue.clear();
    // Multi-source BFS from the partition's boundary vertices, restricted to
    // within-partition edges.
    for (VertexId v = meta.begin; v < meta.end; ++v) {
      if (meta.boundary[v - meta.begin]) {
        info.level[v] = 0;
        queue.push_back(v);
      }
    }
    uint32_t max_level = 0;
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      for (VertexId v : graph.OutNeighbors(u)) {
        if (v < meta.begin || v >= meta.end) {
          continue;  // cross-partition edge: the neighbor is elsewhere
        }
        if (info.level[v] == kCascadeInf) {
          info.level[v] = info.level[u] + 1;
          max_level = std::max(max_level, info.level[v]);
          queue.push_back(v);
        }
      }
    }
    info.partition_diameter[p] = std::max<uint32_t>(1, max_level + 1);
  }
  info.d_min = info.partition_diameter.empty()
                   ? 1
                   : *std::min_element(info.partition_diameter.begin(),
                                       info.partition_diameter.end());
  return info;
}

}  // namespace surfer
