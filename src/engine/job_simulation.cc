#include "engine/job_simulation.h"

#include <algorithm>
#include <deque>

#include "cluster/machine.h"
#include "common/logging.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace surfer {

namespace {

const char* TaskKindName(SimTaskKind kind) {
  switch (kind) {
    case SimTaskKind::kTransfer:
      return "transfer";
    case SimTaskKind::kCombine:
      return "combine";
    case SimTaskKind::kMap:
      return "map";
    case SimTaskKind::kReduce:
      return "reduce";
    case SimTaskKind::kGeneric:
      return "task";
  }
  return "task";
}

}  // namespace

JobSimulation::JobSimulation(const Topology* topology,
                             JobSimulationOptions options)
    : topology_(topology),
      options_(options),
      cost_model_(topology, options.cost),
      alive_(topology->num_machines(), 1),
      metrics_() {
  metrics_.disk_rate = TimeSeries(options_.timeline_bucket_s);
}

void JobSimulation::InjectFault(const FaultPlan& fault) {
  SURFER_CHECK(fault.machine < topology_->num_machines());
  pending_faults_.push_back(fault);
  std::sort(pending_faults_.begin(), pending_faults_.end(),
            [](const FaultPlan& a, const FaultPlan& b) {
              return a.fail_at_s < b.fail_at_s;
            });
}

namespace {

/// One scheduled execution of a task on a machine.
struct ExecRecord {
  const SimTask* task = nullptr;
  MachineId machine = kInvalidMachine;
  double start = 0.0;
  double end = 0.0;
  bool is_retry = false;
  bool partial = false;  ///< cut short by the machine's failure
};

struct QueueEntry {
  const SimTask* task;
  double earliest_start;
  bool is_retry;
};

}  // namespace

Result<StageMetrics> JobSimulation::RunStage(const std::string& name,
                                             std::vector<SimTask> tasks) {
  const double stage_start = now_s_;
  const uint32_t num_machines = topology_->num_machines();

  // Apply faults that already happened (before this stage).
  while (!pending_faults_.empty() &&
         pending_faults_.front().fail_at_s <= stage_start) {
    alive_[pending_faults_.front().machine] = 0;
    pending_faults_.erase(pending_faults_.begin());
  }

  auto route = [&](const SimTask& task) -> MachineId {
    return FirstAliveMachine(task.candidate_machines, alive_);
  };

  // Greedy list scheduling across replica holders: every candidate machine
  // stores a copy of the task's input, so the job manager is free to place
  // the task on whichever replica holder finishes earliest ("dispatches one
  // more task to a slave node when the slave node finishes a task",
  // Appendix B). Ties go to the primary (first candidate).
  std::vector<std::deque<QueueEntry>> queues(num_machines);
  std::vector<double> projected_load(num_machines, 0.0);
  for (const SimTask& task : tasks) {
    MachineId best = kInvalidMachine;
    double best_finish = 0.0;
    for (MachineId m : task.candidate_machines) {
      if (m >= num_machines || !alive_[m]) {
        continue;
      }
      const double finish =
          projected_load[m] + cost_model_.TaskSeconds(m, task.cost);
      if (best == kInvalidMachine || finish < best_finish) {
        best = m;
        best_finish = finish;
      }
    }
    if (best == kInvalidMachine) {
      return Status::Unavailable("no alive replica for a task in stage " +
                                 name);
    }
    projected_load[best] = best_finish;
    queues[best].push_back(QueueEntry{&task, stage_start, false});
  }

  std::vector<ExecRecord> frozen;  // executions on machines that died
  size_t reexecuted = 0;

  for (;;) {
    // Compute the serial schedule of every alive machine.
    std::vector<std::vector<ExecRecord>> schedule(num_machines);
    for (MachineId m = 0; m < num_machines; ++m) {
      if (!alive_[m]) {
        continue;
      }
      double available = stage_start;
      for (const QueueEntry& entry : queues[m]) {
        ExecRecord exec;
        exec.task = entry.task;
        exec.machine = m;
        exec.start = std::max(available, entry.earliest_start);
        double duration = cost_model_.TaskSeconds(m, entry.task->cost);
        if (entry.is_retry && entry.task->recovery_refetch_bytes > 0.0) {
          // A recovering Combine task first re-transfers its inputs from the
          // remote partitions (Appendix B); price the re-fetch at this
          // machine's average bandwidth to the cluster.
          double bw_sum = 0.0;
          uint32_t peers = 0;
          for (MachineId other = 0; other < num_machines; ++other) {
            if (other != m && alive_[other]) {
              bw_sum += topology_->Bandwidth(m, other);
              ++peers;
            }
          }
          if (peers > 0 && bw_sum > 0.0) {
            duration += entry.task->recovery_refetch_bytes * peers / bw_sum;
          }
        }
        exec.end = exec.start + duration;
        exec.is_retry = entry.is_retry;
        available = exec.end;
        schedule[m].push_back(exec);
      }
    }

    // Find the next fault that lands inside this stage's execution.
    double makespan = stage_start;
    for (MachineId m = 0; m < num_machines; ++m) {
      for (const ExecRecord& exec : schedule[m]) {
        makespan = std::max(makespan, exec.end);
      }
    }
    auto fault_it = std::find_if(
        pending_faults_.begin(), pending_faults_.end(),
        [&](const FaultPlan& f) {
          return alive_[f.machine] && f.fail_at_s < makespan;
        });
    if (fault_it == pending_faults_.end()) {
      // Stable schedule: account everything and finish the stage.
      StageMetrics stage;
      stage.name = name;
      for (const auto& machine_schedule : schedule) {
        for (const ExecRecord& exec : machine_schedule) {
          frozen.push_back(exec);
        }
      }
      double end_time = stage_start;
      for (const ExecRecord& exec : frozen) {
        const TaskCost& cost = exec.task->cost;
        const double duration = exec.end - exec.start;
        stage.busy_machine_seconds += duration;
        end_time = std::max(end_time, exec.end);
        ++stage.num_tasks;
        if (exec.is_retry) {
          ++stage.num_reexecuted_tasks;
        }
        // Partial executions did partial I/O; completed ones did it all.
        const double full_duration =
            cost_model_.TaskSeconds(exec.machine, cost);
        const double fraction =
            full_duration > 0.0
                ? std::clamp(duration / full_duration, 0.0, 1.0)
                : 1.0;
        const double disk_bytes =
            (cost.disk_read_bytes + cost.disk_write_bytes) * fraction;
        stage.disk_read_bytes += cost.disk_read_bytes * fraction;
        stage.disk_write_bytes += cost.disk_write_bytes * fraction;
        metrics_.disk_rate.AddSpan(exec.start, exec.end, disk_bytes);
        metrics_.task_seconds.Add(duration);
        for (const auto& [dst, bytes] : cost.network_out) {
          if (dst != exec.machine) {
            stage.network_bytes += bytes * fraction;
          }
        }
        if (exec.is_retry) {
          stage.network_bytes += exec.task->recovery_refetch_bytes;
        }
      }
      stage.duration_s = end_time - stage_start;
      stage.num_tasks = frozen.size();
      now_s_ = end_time;
      metrics_.Accumulate(stage);
      if (obs::Tracer* tracer = options_.tracer; tracer != nullptr) {
        // Simulated-clock spans: lane 0 is the job manager, lane m+1 is
        // machine m. Partial executions are visible as shorter task spans
        // ending at the machine's failure time.
        tracer->RecordComplete(
            obs::TraceClock::kSimulated, name, "stage", stage_start * 1e6,
            stage.duration_s * 1e6, /*tid=*/0,
            {{"tasks", std::to_string(stage.num_tasks)},
             {"reexecuted", std::to_string(stage.num_reexecuted_tasks)}});
        for (const ExecRecord& exec : frozen) {
          std::string span_name = TaskKindName(exec.task->kind);
          if (exec.task->partition != kInvalidPartition) {
            span_name += ":p" + std::to_string(exec.task->partition);
          }
          std::vector<std::pair<std::string, std::string>> args;
          if (exec.is_retry) {
            args.emplace_back("retry", "true");
          }
          if (exec.partial) {
            args.emplace_back("lost_to_failure", "true");
          }
          tracer->RecordComplete(obs::TraceClock::kSimulated,
                                 std::move(span_name), "sim_task",
                                 exec.start * 1e6, (exec.end - exec.start) * 1e6,
                                 exec.machine + 1, std::move(args));
        }
      }
      if (obs::MetricsRegistry* registry = options_.metrics;
          registry != nullptr) {
        registry->CounterRef("sim_stages_total").Increment();
        registry->CounterRef("sim_tasks_total").Increment(stage.num_tasks);
        registry->CounterRef("sim_tasks_reexecuted_total")
            .Increment(stage.num_reexecuted_tasks);
        registry->GaugeRef("sim_clock_seconds").Set(now_s_);
        auto& task_seconds = registry->HistogramRef("sim_task_seconds");
        for (const ExecRecord& exec : frozen) {
          task_seconds.Observe(exec.end - exec.start);
        }
      }
      return stage;
    }

    // Process the fault: kill the machine, keep its finished work, requeue
    // the rest after a heartbeat-detection delay.
    const FaultPlan fault = *fault_it;
    pending_faults_.erase(fault_it);
    alive_[fault.machine] = 0;
    const double detect_at = fault.fail_at_s + options_.heartbeat_interval_s;

    std::vector<QueueEntry> to_requeue;
    for (ExecRecord& exec : schedule[fault.machine]) {
      if (exec.end <= fault.fail_at_s) {
        frozen.push_back(exec);  // completed before the crash
      } else {
        if (exec.start < fault.fail_at_s) {
          // In-flight: the partial work happened (and is lost).
          ExecRecord partial = exec;
          partial.end = fault.fail_at_s;
          partial.partial = true;
          frozen.push_back(partial);
        }
        to_requeue.push_back(QueueEntry{exec.task, detect_at, true});
      }
    }
    queues[fault.machine].clear();
    for (QueueEntry& entry : to_requeue) {
      const MachineId m = route(*entry.task);
      if (m == kInvalidMachine) {
        return Status::Unavailable(
            "no alive replica to recover a task in stage " + name);
      }
      queues[m].push_back(entry);
      ++reexecuted;
    }
    SURFER_LOG(kInfo) << "stage " << name << ": machine " << fault.machine
                      << " failed at " << fault.fail_at_s << "s, requeued "
                      << to_requeue.size() << " tasks (detected at "
                      << detect_at << "s)";
    if (obs::Tracer* tracer = options_.tracer; tracer != nullptr) {
      tracer->RecordInstant(obs::TraceClock::kSimulated, "machine_failed",
                            "fault", fault.fail_at_s * 1e6, fault.machine + 1,
                            {{"machine", std::to_string(fault.machine)}});
      tracer->RecordInstant(
          obs::TraceClock::kSimulated, "fault_detected", "fault",
          detect_at * 1e6, /*tid=*/0,
          {{"machine", std::to_string(fault.machine)},
           {"requeued_tasks", std::to_string(to_requeue.size())}});
    }
    if (obs::MetricsRegistry* registry = options_.metrics;
        registry != nullptr) {
      registry->CounterRef("sim_machine_failures_total").Increment();
    }
    (void)reexecuted;
  }
}

}  // namespace surfer
