#ifndef SURFER_ENGINE_JOB_SIMULATION_H_
#define SURFER_ENGINE_JOB_SIMULATION_H_

#include <optional>
#include <string>
#include <vector>

#include "cluster/cost_model.h"
#include "cluster/metrics.h"
#include "cluster/topology.h"
#include "common/result.h"
#include "graph/types.h"

namespace surfer {

namespace obs {
class MetricsRegistry;
class Tracer;
}  // namespace obs

/// Task kinds, used by the fault-recovery policy of Appendix B: a failed
/// Transfer task is simply re-executed; a failed Combine task must first
/// re-transfer its inputs from the remote partitions along incoming edges.
enum class SimTaskKind {
  kTransfer,
  kCombine,
  kMap,
  kReduce,
  kGeneric,
};

/// One schedulable unit: a partition's work within a bulk-synchronous stage.
struct SimTask {
  SimTaskKind kind = SimTaskKind::kGeneric;
  PartitionId partition = kInvalidPartition;
  /// Machines that hold the task's input (replica order; [0] preferred).
  std::vector<MachineId> candidate_machines;
  TaskCost cost;
  /// Extra network bytes to re-fetch inputs when this task is re-executed on
  /// another machine after a failure (Combine tasks re-transfer; Transfer
  /// tasks re-read their replica, accounted as disk).
  double recovery_refetch_bytes = 0.0;
};

/// A machine failure injected at an absolute simulated time (Figure 10's
/// experiment kills a slave at t = 235 s).
struct FaultPlan {
  MachineId machine = kInvalidMachine;
  double fail_at_s = 0.0;
};

/// Options of the simulated job manager.
struct JobSimulationOptions {
  CostParameters cost;
  /// Heartbeat interval; failure detection takes one missed heartbeat.
  double heartbeat_interval_s = 5.0;
  /// Disk-rate timeline bucket width (Figure 10 plots per-second rates).
  double timeline_bucket_s = 1.0;
  /// Optional observability hooks (not owned; may be null). The tracer
  /// receives per-stage and per-task spans on the *simulated* clock plus
  /// fault/detection instants; the registry receives sim_* counters.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// A deterministic bulk-synchronous job simulation over a cluster topology.
///
/// Each stage list-schedules its tasks: every task starts on its preferred
/// (primary) machine; machines execute their queue serially; the stage ends
/// when all tasks finish. An injected fault kills a machine mid-stage: its
/// unfinished tasks (including the one in flight) are detected after a
/// heartbeat timeout and re-dispatched to the next alive replica holder,
/// paying the recovery re-fetch cost. Later stages avoid dead machines
/// entirely. All timing comes from the cost model; nothing here depends on
/// wall-clock execution.
class JobSimulation {
 public:
  JobSimulation(const Topology* topology, JobSimulationOptions options);

  /// Schedules a machine failure (must be before any affected RunStage).
  void InjectFault(const FaultPlan& fault);

  /// Runs one stage; returns its metrics and advances simulated time.
  /// Fails when a task has no alive candidate machine.
  Result<StageMetrics> RunStage(const std::string& name,
                                std::vector<SimTask> tasks);

  double now() const { return now_s_; }
  bool IsAlive(MachineId m) const { return alive_[m]; }
  const std::vector<uint8_t>& alive() const { return alive_; }
  const RunMetrics& metrics() const { return metrics_; }
  RunMetrics& mutable_metrics() { return metrics_; }
  const Topology& topology() const { return *topology_; }
  const CostModel& cost_model() const { return cost_model_; }

 private:
  const Topology* topology_;
  JobSimulationOptions options_;
  CostModel cost_model_;
  std::vector<uint8_t> alive_;
  std::vector<FaultPlan> pending_faults_;
  double now_s_ = 0.0;
  RunMetrics metrics_;
};

}  // namespace surfer

#endif  // SURFER_ENGINE_JOB_SIMULATION_H_
