#ifndef SURFER_SERVE_FRONTIER_H_
#define SURFER_SERVE_FRONTIER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace surfer {
namespace serve {

/// Dense bitmap over encoded vertex IDs — the visited/frontier sets of the
/// direction-optimizing traversal (Buluç & Madduri; Beamer's push/pull
/// switch).
class FrontierBitmap {
 public:
  explicit FrontierBitmap(size_t num_vertices)
      : bits_((num_vertices + 63) / 64, 0), num_vertices_(num_vertices) {}

  bool Test(VertexId v) const {
    return (bits_[v >> 6] >> (v & 63)) & 1u;
  }
  void Set(VertexId v) { bits_[v >> 6] |= uint64_t{1} << (v & 63); }
  size_t num_vertices() const { return num_vertices_; }

 private:
  std::vector<uint64_t> bits_;
  size_t num_vertices_;
};

/// Traversal-direction counters of one k-hop expansion, for the serving
/// plane's metrics (how often the dense pull path engaged).
struct KHopStats {
  uint32_t push_steps = 0;  ///< sparse steps: scan frontier out-edges
  uint32_t pull_steps = 0;  ///< dense steps: scan unvisited in-edges
};

/// All encoded vertices within k hops of `source` over out-edges, source
/// included, unsorted. Each BFS step picks its direction: push (iterate the
/// frontier's out-edges) while the frontier is sparse, pull (scan every
/// unvisited vertex's in-edges via the pre-transposed graph) once the
/// frontier's edge count crosses the alpha fraction of all edges. Both
/// directions visit exactly the same vertex set, so results are
/// bit-identical to a plain BFS truncated at depth k.
std::vector<VertexId> KHopFrontier(const Graph& graph, const Graph& reversed,
                                   VertexId source, uint32_t k,
                                   KHopStats* stats = nullptr);

/// Hop distance from src to dst walking only vertices inside the encoded
/// range [begin, end) — a partition-local shortest path (unit edge weights).
/// nullopt when dst is unreachable without leaving the partition.
std::optional<uint32_t> PartitionLocalDistance(const Graph& graph,
                                               VertexId begin, VertexId end,
                                               VertexId src, VertexId dst);

}  // namespace serve
}  // namespace surfer

#endif  // SURFER_SERVE_FRONTIER_H_
