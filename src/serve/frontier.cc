#include "serve/frontier.h"

#include <deque>
#include <utility>

namespace surfer {
namespace serve {
namespace {

/// Beamer's alpha: switch to the dense pull direction once the frontier's
/// out-edges exceed 1/alpha of all edges. The classic value tuned for
/// scale-free graphs.
constexpr size_t kPullAlpha = 14;

}  // namespace

std::vector<VertexId> KHopFrontier(const Graph& graph, const Graph& reversed,
                                   VertexId source, uint32_t k,
                                   KHopStats* stats) {
  const VertexId n = graph.num_vertices();
  const size_t total_edges = graph.num_edges();
  FrontierBitmap visited(n);
  visited.Set(source);
  std::vector<VertexId> frontier = {source};
  std::vector<VertexId> result = {source};

  for (uint32_t hop = 0; hop < k && !frontier.empty(); ++hop) {
    size_t frontier_edges = 0;
    for (VertexId v : frontier) {
      frontier_edges += graph.OutDegree(v);
    }
    std::vector<VertexId> next;
    if (frontier_edges * kPullAlpha > total_edges) {
      // Dense step: every unvisited vertex asks "is any of my in-neighbors
      // in the frontier?" and stops at the first yes — cheaper than pushing
      // a huge frontier's out-edges one by one.
      FrontierBitmap in_frontier(n);
      for (VertexId v : frontier) {
        in_frontier.Set(v);
      }
      for (VertexId u = 0; u < n; ++u) {
        if (visited.Test(u)) {
          continue;
        }
        for (VertexId w : reversed.OutNeighbors(u)) {
          if (in_frontier.Test(w)) {
            visited.Set(u);
            next.push_back(u);
            break;
          }
        }
      }
      if (stats != nullptr) {
        ++stats->pull_steps;
      }
    } else {
      for (VertexId v : frontier) {
        for (VertexId u : graph.OutNeighbors(v)) {
          if (!visited.Test(u)) {
            visited.Set(u);
            next.push_back(u);
          }
        }
      }
      if (stats != nullptr) {
        ++stats->push_steps;
      }
    }
    result.insert(result.end(), next.begin(), next.end());
    frontier = std::move(next);
  }
  return result;
}

std::optional<uint32_t> PartitionLocalDistance(const Graph& graph,
                                               VertexId begin, VertexId end,
                                               VertexId src, VertexId dst) {
  if (src == dst) {
    return 0;
  }
  // Local index = encoded ID - begin; the partition's vertex range is
  // contiguous by construction of the encoding.
  std::vector<uint32_t> distance(end - begin, UINT32_MAX);
  distance[src - begin] = 0;
  std::deque<VertexId> queue = {src};
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    const uint32_t d = distance[v - begin];
    for (VertexId u : graph.OutNeighbors(v)) {
      if (u < begin || u >= end || distance[u - begin] != UINT32_MAX) {
        continue;
      }
      if (u == dst) {
        return d + 1;
      }
      distance[u - begin] = d + 1;
      queue.push_back(u);
    }
  }
  return std::nullopt;
}

}  // namespace serve
}  // namespace surfer
