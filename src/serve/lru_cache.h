#ifndef SURFER_SERVE_LRU_CACHE_H_
#define SURFER_SERVE_LRU_CACHE_H_

#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <utility>

namespace surfer {
namespace serve {

/// A fixed-capacity least-recently-used map. Values are held as
/// shared_ptr<const V> so a hit can be returned without copying while an
/// eviction races the reader harmlessly. NOT thread-safe: GraphService
/// shards one cache per partition and guards each shard with its own mutex,
/// so contention stays partition-local.
template <typename K, typename V>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity > 0 ? capacity : 1) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Returns the cached value and promotes it to most-recently-used, or
  /// nullptr on miss.
  std::shared_ptr<const V> Get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return nullptr;
    }
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Inserts (or refreshes) a value, evicting the least-recently-used entry
  /// once over capacity.
  void Put(const K& key, std::shared_ptr<const V> value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    if (index_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  size_t size() const { return index_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  /// Front = most recently used.
  std::list<std::pair<K, std::shared_ptr<const V>>> order_;
  std::map<K, typename std::list<std::pair<K, std::shared_ptr<const V>>>::
                   iterator>
      index_;
};

}  // namespace serve
}  // namespace surfer

#endif  // SURFER_SERVE_LRU_CACHE_H_
