#ifndef SURFER_SERVE_GRAPH_SERVICE_H_
#define SURFER_SERVE_GRAPH_SERVICE_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <variant>
#include <vector>

#include "apps/common.h"
#include "apps/network_ranking.h"
#include "common/histogram.h"
#include "common/result.h"
#include "core/engine.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "runtime/channel.h"
#include "serve/frontier.h"
#include "serve/lru_cache.h"
#include "storage/partitioned_graph.h"

namespace surfer {
namespace serve {

/// Configuration of the long-lived serving plane (Engine::Serve).
struct ServeOptions {
  /// Worker threads draining the admission queue.
  uint32_t num_workers = 2;
  /// Spawn the workers inside Open. Tests set this to false and call
  /// Start() themselves so they can fill the admission window
  /// deterministically before anything drains.
  bool start_workers = true;
  /// Weight budget of the admission queue in cost-bytes (see
  /// EstimateCostBytes): queries that do not fit are shed immediately with
  /// kResourceExhausted — submission never blocks.
  size_t admission_window_bytes = 256 << 10;
  /// LRU entries per partition shard for k-hop / path results.
  size_t cache_capacity_per_partition = 1024;
  /// Batch NetworkRanking pass run at startup to precompute the per-vertex
  /// scores served by Rank queries.
  int rank_iterations = 3;
  double rank_damping = kDefaultDamping;
  /// Largest accepted k for k-hop queries (cost grows geometrically in k).
  uint32_t max_khop = 8;
  /// Deadline applied when a query does not carry its own: a worker that
  /// dequeues a query past its deadline sheds it with kResourceExhausted
  /// instead of doing stale work.
  std::chrono::milliseconds default_deadline{250};
  /// Optional serve_* metrics export (counters, latency histogram).
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional per-query spans ("serve" category).
  obs::Tracer* tracer = nullptr;

  Status Validate() const {
    if (num_workers == 0) {
      return Status::InvalidArgument("ServeOptions.num_workers must be > 0");
    }
    if (admission_window_bytes == 0) {
      return Status::InvalidArgument(
          "ServeOptions.admission_window_bytes must be > 0");
    }
    if (rank_iterations < 0) {
      return Status::InvalidArgument(
          "ServeOptions.rank_iterations must be >= 0");
    }
    if (rank_damping <= 0.0 || rank_damping >= 1.0) {
      return Status::InvalidArgument(
          "ServeOptions.rank_damping must be in (0, 1)");
    }
    if (max_khop == 0) {
      return Status::InvalidArgument("ServeOptions.max_khop must be > 0");
    }
    return Status::OK();
  }
};

/// Per-query overrides.
struct QueryOptions {
  /// Replaces ServeOptions.default_deadline for this query.
  std::optional<std::chrono::milliseconds> deadline;
  /// Skip the result cache (reads and writes) — the cache-correctness tests
  /// compare cached against bypassed results bit for bit.
  bool bypass_cache = false;
};

/// K-hop neighborhood answer: all vertices within k hops of the origin over
/// out-edges, as sorted *original* IDs (origin included).
struct KHopResponse {
  std::vector<VertexId> vertices;
  uint32_t k = 0;
  bool from_cache = false;
  /// Direction-optimizing steps the expansion actually took.
  uint32_t push_steps = 0;
  uint32_t pull_steps = 0;
};

/// Partition-local shortest path answer (unit weights).
struct PathResponse {
  uint32_t distance = 0;
  PartitionId partition = 0;
  bool from_cache = false;
};

/// Cached NetworkRanking score, precomputed at startup.
struct RankResponse {
  double rank = 0.0;
};

/// Counter snapshot of a service (see GraphService::stats).
struct ServiceStats {
  uint64_t submitted = 0;        ///< accepted into the admission queue
  uint64_t completed = 0;        ///< answered (ok or query-level error)
  uint64_t rejected = 0;         ///< failed submit-side validation
  uint64_t shed_admission = 0;   ///< admission window full at submit
  uint64_t shed_deadline = 0;    ///< dequeued after the deadline passed
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  Histogram latency_us;          ///< submit-to-answer, accepted queries
};

/// The long-lived query-serving plane over one opened graph session: a
/// fixed worker pool pulling from a cost-weighted admission queue
/// (BoundedChannel's weighted admission — the same backpressure machinery
/// the batch runtime uses for wire traffic), per-partition LRU result
/// caches, per-query deadlines, and load shedding with kResourceExhausted.
///
/// Obtain one through Engine::Serve, which runs the startup batch
/// NetworkRanking pass through the session's engine:
///
///   SURFER_ASSIGN_OR_RETURN(Engine engine, Engine::Open(setup));
///   SURFER_ASSIGN_OR_RETURN(auto service, engine.Serve({}));
///   auto hop = service->KHop(/*origin=*/42, /*k=*/2).get();
///
/// Thread safety: KHop/PartitionPath/Rank may be called from any number of
/// client threads concurrently; results arrive through std::future. A full
/// admission window NEVER blocks the caller — the future resolves
/// immediately with kResourceExhausted.
class GraphService {
 public:
  /// One admission-queue entry. Public only because Task::Kind appears in
  /// EstimateCostBytes' signature.
  struct Task {
    enum class Kind { kKHop, kPath, kRank };
    Kind kind = Kind::kRank;
    VertexId a = 0;  ///< encoded origin / src
    VertexId b = 0;  ///< encoded dst (paths)
    uint32_t k = 0;
    bool bypass_cache = false;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;
    std::promise<Result<KHopResponse>> khop_promise;
    std::promise<Result<PathResponse>> path_promise;
    std::promise<Result<RankResponse>> rank_promise;
  };

  /// Opens the service over a partitioned graph and its precomputed rank
  /// vector (encoded order). Engine::Serve is the usual entry point; tests
  /// that want a rank vector of their own call this directly.
  static Result<std::unique_ptr<GraphService>> Open(
      const PartitionedGraph* graph, const ReplicatedPlacement* placement,
      const Topology* topology, std::vector<double> ranks,
      ServeOptions options) {
    if (graph == nullptr) {
      return Status::InvalidArgument("GraphService requires a graph");
    }
    SURFER_RETURN_IF_ERROR(options.Validate());
    if (ranks.size() !=
        static_cast<size_t>(graph->encoded_graph().num_vertices())) {
      return Status::InvalidArgument(
          "rank vector size " + std::to_string(ranks.size()) +
          " does not match the graph's " +
          std::to_string(graph->encoded_graph().num_vertices()) +
          " vertices");
    }
    std::unique_ptr<GraphService> service(new GraphService(
        graph, placement, topology, std::move(ranks), std::move(options)));
    if (service->options_.start_workers) {
      service->Start();
    }
    return service;
  }

  ~GraphService() { Stop(); }

  GraphService(const GraphService&) = delete;
  GraphService& operator=(const GraphService&) = delete;

  /// Spawns the worker pool (idempotent). Only needed after Open with
  /// start_workers = false.
  void Start() {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!workers_.empty() || stopped_) {
      return;
    }
    for (uint32_t w = 0; w < options_.num_workers; ++w) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  /// Joins the workers and resolves every still-queued query with
  /// kUnavailable. Idempotent; the destructor calls it.
  void Stop() {
    {
      std::lock_guard<std::mutex> lock(lifecycle_mu_);
      if (stopped_) {
        return;
      }
      stopped_ = true;
    }
    stop_.store(true, std::memory_order_release);
    wake_cv_.notify_all();
    for (std::thread& worker : workers_) {
      worker.join();
    }
    workers_.clear();
    while (auto task = queue_.TryRecv()) {
      Resolve(**task, Status::Unavailable("GraphService stopped"));
    }
  }

  /// All vertices within k hops of `origin` (an original vertex ID).
  std::future<Result<KHopResponse>> KHop(VertexId origin, uint32_t k,
                                         QueryOptions query = {}) {
    auto task = std::make_unique<Task>();
    task->kind = Task::Kind::kKHop;
    task->k = k;
    task->bypass_cache = query.bypass_cache;
    std::future<Result<KHopResponse>> future =
        task->khop_promise.get_future();
    if (k == 0 || k > options_.max_khop) {
      Reject(*task, Status::InvalidArgument(
                        "k must be in [1, " +
                        std::to_string(options_.max_khop) + "], got " +
                        std::to_string(k)));
      return future;
    }
    Submit(std::move(task), origin, /*b=*/std::nullopt, query);
    return future;
  }

  /// Hop distance from src to dst without leaving their (shared) partition.
  /// Endpoints in different partitions fail with kInvalidArgument; an
  /// unreachable dst fails with kNotFound.
  std::future<Result<PathResponse>> PartitionPath(VertexId src, VertexId dst,
                                                  QueryOptions query = {}) {
    auto task = std::make_unique<Task>();
    task->kind = Task::Kind::kPath;
    task->bypass_cache = query.bypass_cache;
    std::future<Result<PathResponse>> future =
        task->path_promise.get_future();
    Submit(std::move(task), src, dst, query);
    return future;
  }

  /// The vertex's precomputed NetworkRanking score.
  std::future<Result<RankResponse>> Rank(VertexId vertex,
                                         QueryOptions query = {}) {
    auto task = std::make_unique<Task>();
    task->kind = Task::Kind::kRank;
    std::future<Result<RankResponse>> future =
        task->rank_promise.get_future();
    Submit(std::move(task), vertex, /*b=*/std::nullopt, query);
    return future;
  }

  ServiceStats stats() const {
    ServiceStats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.shed_admission = shed_admission_.load(std::memory_order_relaxed);
    s.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
    s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(latency_mu_);
      s.latency_us = latency_us_;
    }
    return s;
  }

  const PartitionedGraph* graph() const { return graph_; }
  const ReplicatedPlacement* placement() const { return placement_; }
  const Topology* topology() const { return topology_; }
  const std::vector<double>& ranks() const { return ranks_; }
  const ServeOptions& options() const { return options_; }

  /// Coarse admission weight of a query in cost-bytes: ranks are array
  /// lookups, paths scan one partition, k-hop grows geometrically with k
  /// (capped so one query can never exceed every realistic window — the
  /// channel's empty-queue escape hatch would admit it anyway).
  static size_t EstimateCostBytes(Task::Kind kind, uint32_t k);

 private:
  using CacheKey = std::tuple<int, VertexId, VertexId, uint32_t>;
  using CacheValue = std::variant<KHopResponse, PathResponse>;

  struct CacheShard {
    explicit CacheShard(size_t capacity) : cache(capacity) {}
    std::mutex mu;
    LruCache<CacheKey, CacheValue> cache;
  };

  GraphService(const PartitionedGraph* graph,
               const ReplicatedPlacement* placement, const Topology* topology,
               std::vector<double> ranks, ServeOptions options)
      : graph_(graph),
        placement_(placement),
        topology_(topology),
        ranks_(std::move(ranks)),
        options_(std::move(options)),
        reversed_(graph->encoded_graph().Reversed()),
        queue_(options_.admission_window_bytes) {
    shards_.reserve(graph_->num_partitions());
    for (uint32_t p = 0; p < graph_->num_partitions(); ++p) {
      shards_.push_back(std::make_unique<CacheShard>(
          options_.cache_capacity_per_partition));
    }
    if (options_.metrics != nullptr) {
      obs::MetricsRegistry& m = *options_.metrics;
      queries_khop_ = &m.CounterRef("serve_queries_total", {{"kind", "khop"}});
      queries_path_ = &m.CounterRef("serve_queries_total", {{"kind", "path"}});
      queries_rank_ = &m.CounterRef("serve_queries_total", {{"kind", "rank"}});
      shed_admission_metric_ =
          &m.CounterRef("serve_shed_total", {{"reason", "admission"}});
      shed_deadline_metric_ =
          &m.CounterRef("serve_shed_total", {{"reason", "deadline"}});
      cache_hits_metric_ = &m.CounterRef("serve_cache_hits_total");
      cache_misses_metric_ = &m.CounterRef("serve_cache_misses_total");
      latency_metric_ = &m.HistogramRef("serve_latency_us");
    }
  }

  void Submit(std::unique_ptr<Task> task, VertexId a,
              std::optional<VertexId> b, const QueryOptions& query) {
    const VertexId n = graph_->encoded_graph().num_vertices();
    if (a >= n || (b.has_value() && *b >= n)) {
      Reject(*task,
             Status::InvalidArgument(
                 "vertex ID out of range [0, " + std::to_string(n) + ")"));
      return;
    }
    task->a = graph_->encoding().ToEncoded(a);
    if (b.has_value()) {
      task->b = graph_->encoding().ToEncoded(*b);
      if (graph_->encoding().PartitionOf(task->a) !=
          graph_->encoding().PartitionOf(task->b)) {
        Reject(*task, Status::InvalidArgument(
                          "PartitionPath endpoints live in different "
                          "partitions (" +
                          std::to_string(a) + " and " + std::to_string(*b) +
                          "); cross-partition paths need a batch run"));
        return;
      }
    }
    task->enqueued = std::chrono::steady_clock::now();
    task->deadline =
        task->enqueued + query.deadline.value_or(options_.default_deadline);
    CountQuery(task->kind);
    const size_t weight = EstimateCostBytes(task->kind, task->k);
    if (!queue_.TrySend(task, weight)) {
      shed_admission_.fetch_add(1, std::memory_order_relaxed);
      if (shed_admission_metric_ != nullptr) {
        shed_admission_metric_->Increment();
      }
      Resolve(*task,
              Status::ResourceExhausted(
                  "admission window full (" +
                  std::to_string(options_.admission_window_bytes) +
                  " cost-bytes in flight); retry with backoff"));
      return;
    }
    // TrySend moved the task into the queue; `task` is now null.
    submitted_.fetch_add(1, std::memory_order_relaxed);
    wake_cv_.notify_one();
  }

  void Reject(Task& task, Status status) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    Resolve(task, std::move(status));
  }

  /// Fails the task's engaged promise with `status`.
  static void Resolve(Task& task, Status status) {
    switch (task.kind) {
      case Task::Kind::kKHop:
        task.khop_promise.set_value(std::move(status));
        break;
      case Task::Kind::kPath:
        task.path_promise.set_value(std::move(status));
        break;
      case Task::Kind::kRank:
        task.rank_promise.set_value(std::move(status));
        break;
    }
  }

  void CountQuery(Task::Kind kind) {
    obs::Counter* counter = nullptr;
    switch (kind) {
      case Task::Kind::kKHop:
        counter = queries_khop_;
        break;
      case Task::Kind::kPath:
        counter = queries_path_;
        break;
      case Task::Kind::kRank:
        counter = queries_rank_;
        break;
    }
    if (counter != nullptr) {
      counter->Increment();
    }
  }

  void WorkerLoop() {
    while (true) {
      std::optional<std::unique_ptr<Task>> task = queue_.TryRecv();
      if (!task.has_value()) {
        if (stop_.load(std::memory_order_acquire)) {
          return;
        }
        std::unique_lock<std::mutex> lock(wake_mu_);
        wake_cv_.wait_for(lock, std::chrono::milliseconds(5));
        continue;
      }
      Execute(**task);
    }
  }

  void Execute(Task& task) {
    const auto now = std::chrono::steady_clock::now();
    if (now > task.deadline) {
      shed_deadline_.fetch_add(1, std::memory_order_relaxed);
      if (shed_deadline_metric_ != nullptr) {
        shed_deadline_metric_->Increment();
      }
      Resolve(task, Status::ResourceExhausted(
                        "deadline exceeded before execution; the service is "
                        "overloaded"));
      return;
    }
    obs::ScopedSpan span(options_.tracer, SpanName(task.kind), "serve");
    // Counters and the latency histogram update BEFORE the promise resolves,
    // so a client that calls stats() right after future.get() returns sees
    // its own query accounted for.
    const auto finish = [this, &task] {
      completed_.fetch_add(1, std::memory_order_relaxed);
      const double latency_us =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - task.enqueued)
              .count();
      {
        std::lock_guard<std::mutex> lock(latency_mu_);
        latency_us_.Add(latency_us);
      }
      if (latency_metric_ != nullptr) {
        latency_metric_->Observe(latency_us);
      }
    };
    switch (task.kind) {
      case Task::Kind::kKHop: {
        Result<KHopResponse> result = ExecuteKHop(task);
        finish();
        task.khop_promise.set_value(std::move(result));
        break;
      }
      case Task::Kind::kPath: {
        Result<PathResponse> result = ExecutePath(task);
        finish();
        task.path_promise.set_value(std::move(result));
        break;
      }
      case Task::Kind::kRank: {
        Result<RankResponse> result = RankResponse{ranks_[task.a]};
        finish();
        task.rank_promise.set_value(std::move(result));
        break;
      }
    }
  }

  static const char* SpanName(Task::Kind kind) {
    switch (kind) {
      case Task::Kind::kKHop:
        return "serve_khop";
      case Task::Kind::kPath:
        return "serve_path";
      case Task::Kind::kRank:
        return "serve_rank";
    }
    return "serve";
  }

  Result<KHopResponse> ExecuteKHop(Task& task) {
    const CacheKey key{0, task.a, 0, task.k};
    CacheShard& shard = *shards_[graph_->encoding().PartitionOf(task.a)];
    if (!task.bypass_cache) {
      std::shared_ptr<const CacheValue> cached;
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        cached = shard.cache.Get(key);
      }
      if (cached != nullptr) {
        CountCache(/*hit=*/true);
        KHopResponse response = std::get<KHopResponse>(*cached);
        response.from_cache = true;
        return response;
      }
      CountCache(/*hit=*/false);
    }
    KHopStats hop_stats;
    std::vector<VertexId> encoded = KHopFrontier(
        graph_->encoded_graph(), reversed_, task.a, task.k, &hop_stats);
    KHopResponse response;
    response.k = task.k;
    response.push_steps = hop_stats.push_steps;
    response.pull_steps = hop_stats.pull_steps;
    response.vertices.reserve(encoded.size());
    for (VertexId v : encoded) {
      response.vertices.push_back(graph_->encoding().ToOriginal(v));
    }
    std::sort(response.vertices.begin(), response.vertices.end());
    if (!task.bypass_cache) {
      auto value = std::make_shared<const CacheValue>(response);
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.cache.Put(key, std::move(value));
    }
    return response;
  }

  Result<PathResponse> ExecutePath(Task& task) {
    const PartitionId p = graph_->encoding().PartitionOf(task.a);
    const CacheKey key{1, task.a, task.b, 0};
    CacheShard& shard = *shards_[p];
    if (!task.bypass_cache) {
      std::shared_ptr<const CacheValue> cached;
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        cached = shard.cache.Get(key);
      }
      if (cached != nullptr) {
        CountCache(/*hit=*/true);
        PathResponse response = std::get<PathResponse>(*cached);
        response.from_cache = true;
        return response;
      }
      CountCache(/*hit=*/false);
    }
    const PartitionMeta& meta = graph_->partition(p);
    std::optional<uint32_t> distance = PartitionLocalDistance(
        graph_->encoded_graph(), meta.begin, meta.end, task.a, task.b);
    if (!distance.has_value()) {
      return Status::NotFound(
          "no path inside partition " + std::to_string(p) +
          " (the vertices may connect through other partitions)");
    }
    PathResponse response;
    response.distance = *distance;
    response.partition = p;
    if (!task.bypass_cache) {
      auto value = std::make_shared<const CacheValue>(response);
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.cache.Put(key, std::move(value));
    }
    return response;
  }

  void CountCache(bool hit) {
    if (hit) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      if (cache_hits_metric_ != nullptr) {
        cache_hits_metric_->Increment();
      }
    } else {
      cache_misses_.fetch_add(1, std::memory_order_relaxed);
      if (cache_misses_metric_ != nullptr) {
        cache_misses_metric_->Increment();
      }
    }
  }

  const PartitionedGraph* graph_;
  const ReplicatedPlacement* placement_;
  const Topology* topology_;
  const std::vector<double> ranks_;
  const ServeOptions options_;
  /// Pre-transposed CSR for the pull direction, built once at Open.
  const Graph reversed_;

  runtime::BoundedChannel<std::unique_ptr<Task>> queue_;
  std::vector<std::unique_ptr<CacheShard>> shards_;

  std::mutex lifecycle_mu_;
  bool stopped_ = false;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> shed_admission_{0};
  std::atomic<uint64_t> shed_deadline_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  mutable std::mutex latency_mu_;
  Histogram latency_us_;

  obs::Counter* queries_khop_ = nullptr;
  obs::Counter* queries_path_ = nullptr;
  obs::Counter* queries_rank_ = nullptr;
  obs::Counter* shed_admission_metric_ = nullptr;
  obs::Counter* shed_deadline_metric_ = nullptr;
  obs::Counter* cache_hits_metric_ = nullptr;
  obs::Counter* cache_misses_metric_ = nullptr;
  obs::HistogramMetric* latency_metric_ = nullptr;
};

inline size_t GraphService::EstimateCostBytes(Task::Kind kind, uint32_t k) {
  switch (kind) {
    case Task::Kind::kRank:
      return 64;
    case Task::Kind::kPath:
      return 2048;
    case Task::Kind::kKHop:
      // 512 bytes at k=1, doubling per hop, capped at 16 KiB.
      return size_t{256} << (k < 6 ? k + 1 : 7);
  }
  return 64;
}

}  // namespace serve

/// Engine::Serve lives here (not in core/engine.h) so core stays free of a
/// serve dependency; including serve/graph_service.h is what makes Serve
/// callable.
inline Result<std::unique_ptr<serve::GraphService>> Engine::Serve(
    serve::ServeOptions options) const {
  SURFER_RETURN_IF_ERROR(options.Validate());
  // The startup batch pass: NetworkRanking through this session's engine
  // (analytic, concurrent, and distributed all produce bit-identical
  // states), at the serving plane's iteration count.
  EngineOptions rank_options = options_;
  rank_options.propagation.iterations = options.rank_iterations;
  SURFER_ASSIGN_OR_RETURN(
      auto rank_run,
      internal::Dispatch(graph_, placement_, topology_,
                         NetworkRankingApp(graph_->encoded_graph()
                                               .num_vertices(),
                                           options.rank_damping),
                         rank_options));
  return serve::GraphService::Open(graph_, placement_, topology_,
                                   std::move(rank_run.states),
                                   std::move(options));
}

}  // namespace surfer

#endif  // SURFER_SERVE_GRAPH_SERVICE_H_
