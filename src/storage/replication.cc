#include "storage/replication.h"

#include <algorithm>
#include <span>

#include "cluster/machine.h"
#include "common/random.h"

namespace surfer {

MachineId ReplicatedPlacement::FirstAliveReplica(
    PartitionId p, const std::vector<uint8_t>& alive) const {
  return FirstAliveMachine(std::span<const MachineId>(replicas[p]), alive);
}

Result<ReplicatedPlacement> MakeReplicatedPlacement(
    const std::vector<MachineId>& primary, const Topology& topology,
    uint64_t seed) {
  const uint32_t n = topology.num_machines();
  if (n == 0) {
    return Status::InvalidArgument("empty topology");
  }
  for (MachineId m : primary) {
    if (m >= n) {
      return Status::InvalidArgument("primary machine out of range");
    }
  }
  Rng rng(seed);
  ReplicatedPlacement placement;
  placement.replicas.resize(primary.size());

  // Index machines by pod for the same-pod / cross-pod picks.
  std::vector<std::vector<MachineId>> by_pod;
  for (MachineId m = 0; m < n; ++m) {
    const uint32_t pod = topology.machine(m).pod;
    if (by_pod.size() <= pod) {
      by_pod.resize(pod + 1);
    }
    by_pod[pod].push_back(m);
  }

  for (PartitionId p = 0; p < primary.size(); ++p) {
    auto& reps = placement.replicas[p];
    reps.fill(kInvalidMachine);
    reps[0] = primary[p];
    const uint32_t home_pod = topology.machine(primary[p]).pod;

    // Second replica: another machine in the same pod when one exists.
    const auto& pod_machines = by_pod[home_pod];
    if (pod_machines.size() > 1) {
      MachineId second = primary[p];
      while (second == primary[p]) {
        second = pod_machines[rng.Uniform(pod_machines.size())];
      }
      reps[1] = second;
    } else if (n > 1) {
      MachineId second = primary[p];
      while (second == primary[p]) {
        second = static_cast<MachineId>(rng.Uniform(n));
      }
      reps[1] = second;
    }

    // Third replica: a machine in a different pod when one exists,
    // otherwise any machine distinct from the first two.
    std::vector<MachineId> candidates;
    for (MachineId m = 0; m < n; ++m) {
      if (m == reps[0] || m == reps[1]) {
        continue;
      }
      if (by_pod.size() > 1 && topology.machine(m).pod == home_pod) {
        continue;
      }
      candidates.push_back(m);
    }
    if (candidates.empty()) {
      for (MachineId m = 0; m < n; ++m) {
        if (m != reps[0] && m != reps[1]) {
          candidates.push_back(m);
        }
      }
    }
    if (!candidates.empty()) {
      reps[2] = candidates[rng.Uniform(candidates.size())];
    }
  }
  return placement;
}

}  // namespace surfer
