#ifndef SURFER_STORAGE_REPLICATION_H_
#define SURFER_STORAGE_REPLICATION_H_

#include <array>
#include <cstdint>
#include <vector>

#include "cluster/topology.h"
#include "common/result.h"
#include "graph/types.h"

namespace surfer {

/// Number of replicas per partition ("each partition has three replicas on
/// different slave machines", Section 3, following GFS).
inline constexpr uint32_t kReplicationFactor = 3;

/// Partition-to-machine placement with replicas. replicas[p][0] is the
/// primary; further replicas follow the GFS-style policy: the second on a
/// different machine in the same pod (fast re-replication), the third in a
/// different pod (failure-domain diversity). Clusters smaller than the
/// replication factor get as many distinct machines as exist.
struct ReplicatedPlacement {
  std::vector<std::array<MachineId, kReplicationFactor>> replicas;

  MachineId primary(PartitionId p) const { return replicas[p][0]; }
  uint32_t num_partitions() const {
    return static_cast<uint32_t>(replicas.size());
  }

  /// First replica machine that `alive` reports as up; kInvalidMachine if
  /// all replicas are down.
  MachineId FirstAliveReplica(PartitionId p,
                              const std::vector<uint8_t>& alive) const;
};

/// Builds a replicated placement from primary assignments.
Result<ReplicatedPlacement> MakeReplicatedPlacement(
    const std::vector<MachineId>& primary, const Topology& topology,
    uint64_t seed);

}  // namespace surfer

#endif  // SURFER_STORAGE_REPLICATION_H_
