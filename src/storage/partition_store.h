#ifndef SURFER_STORAGE_PARTITION_STORE_H_
#define SURFER_STORAGE_PARTITION_STORE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "partition/partitioning.h"
#include "storage/partitioned_graph.h"
#include "storage/replication.h"

namespace surfer {

/// On-disk layout of a partitioned graph — the durable format behind the
/// simulated storage layer, and what a real deployment would replicate
/// across slave machines. A store directory contains:
///
///   MANIFEST            text header: vertex/edge/partition counts, the
///                       partition vertex ranges and placement
///   partition-NNNN.bin  the partition's adjacency records in the paper's
///                       <ID, d, neighbors> format (encoded vertex IDs;
///                       neighbor IDs may point outside the partition —
///                       those are the cross-partition edges)
///   encoding.bin        encoded-ID -> original-ID map
///
/// Writing is atomic per file; a load validates the manifest against the
/// partition files and rebuilds the full PartitionedGraph (including the
/// boundary indexes, which are derived data).
class PartitionStore {
 public:
  /// Writes `graph` (with its placement, for the manifest) under `dir`,
  /// creating the directory if needed.
  static Status Write(const PartitionedGraph& graph,
                      const ReplicatedPlacement& placement,
                      const std::string& dir);

  /// Loads a store directory back into a PartitionedGraph and placement.
  struct Loaded {
    PartitionedGraph graph;
    ReplicatedPlacement placement;
  };
  static Result<Loaded> Load(const std::string& dir);

  /// Reads a single partition's subgraph rows without loading the rest:
  /// returns (local vertex ranges in encoded IDs, neighbors). Used by tools
  /// that inspect one partition.
  static Result<Graph> LoadPartitionRows(const std::string& dir,
                                         PartitionId partition);
};

}  // namespace surfer

#endif  // SURFER_STORAGE_PARTITION_STORE_H_
