#include "storage/partitioned_graph.h"

namespace surfer {

Result<PartitionedGraph> PartitionedGraph::Create(
    const Graph& graph, const Partitioning& partitioning) {
  if (!partitioning.Valid(graph)) {
    return Status::InvalidArgument(
        "partitioning does not cover the graph's vertices");
  }
  VertexEncoding encoding = VertexEncoding::Create(partitioning);
  Graph encoded = encoding.Reencode(graph);
  return CreateFromEncoded(std::move(encoded), std::move(encoding));
}

Result<PartitionedGraph> PartitionedGraph::CreateFromEncoded(
    Graph encoded, VertexEncoding encoding) {
  if (encoded.num_vertices() != encoding.num_vertices()) {
    return Status::InvalidArgument(
        "encoding does not cover the encoded graph's vertices");
  }
  PartitionedGraph pg;
  pg.encoding_ = std::move(encoding);
  pg.encoded_ = std::move(encoded);

  const uint32_t p = pg.encoding_.num_partitions();
  pg.partitions_.resize(p);
  for (PartitionId i = 0; i < p; ++i) {
    PartitionMeta& meta = pg.partitions_[i];
    meta.id = i;
    const auto [begin, end] = pg.encoding_.Range(i);
    meta.begin = begin;
    meta.end = end;
    meta.boundary.assign(end - begin, 0);
    meta.cross_out_by_partition.assign(p, 0);
    meta.stored_bytes = pg.encoded_.StoredBytesOfRange(begin, end);
    pg.total_stored_bytes_ += meta.stored_bytes;
  }

  // One pass over all edges fills inner/cross counts and boundary flags on
  // both endpoints.
  for (VertexId u = 0; u < pg.encoded_.num_vertices(); ++u) {
    const PartitionId pu = pg.encoding_.PartitionOf(u);
    PartitionMeta& mu = pg.partitions_[pu];
    for (VertexId v : pg.encoded_.OutNeighbors(u)) {
      const PartitionId pv = pg.encoding_.PartitionOf(v);
      if (pu == pv) {
        ++mu.inner_edges;
      } else {
        PartitionMeta& mv = pg.partitions_[pv];
        ++mu.cross_out_edges;
        ++mv.cross_in_edges;
        ++mu.cross_out_by_partition[pv];
        mu.boundary[u - mu.begin] = 1;
        mv.boundary[v - mv.begin] = 1;
      }
    }
  }
  for (PartitionMeta& meta : pg.partitions_) {
    for (uint8_t b : meta.boundary) {
      meta.num_boundary += b;
    }
    meta.num_inner = meta.num_vertices() - meta.num_boundary;
  }
  return pg;
}

double PartitionedGraph::InnerVertexRatio() const {
  uint64_t inner = 0;
  uint64_t total = 0;
  for (const PartitionMeta& meta : partitions_) {
    inner += meta.num_inner;
    total += meta.num_vertices();
  }
  return total == 0 ? 1.0
                    : static_cast<double>(inner) / static_cast<double>(total);
}

}  // namespace surfer
