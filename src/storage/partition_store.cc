#include "storage/partition_store.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "graph/types.h"

namespace surfer {

namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kEncodingName[] = "encoding.bin";
constexpr uint64_t kPartitionMagic = 0x5355524645521002ULL;
constexpr uint64_t kEncodingMagic = 0x5355524645521003ULL;

std::string PartitionFileName(PartitionId p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "partition-%04u.bin", p);
  return buf;
}

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

Status WritePartitionFile(const PartitionedGraph& graph, PartitionId p,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open for write: " + path);
  }
  const PartitionMeta& meta = graph.partition(p);
  const Graph& encoded = graph.encoded_graph();
  WritePod(out, kPartitionMagic);
  WritePod(out, static_cast<uint64_t>(meta.begin));
  WritePod(out, static_cast<uint64_t>(meta.end));
  for (VertexId v = meta.begin; v < meta.end; ++v) {
    WritePod(out, static_cast<uint64_t>(v));
    WritePod(out, static_cast<uint32_t>(encoded.OutDegree(v)));
    for (VertexId nbr : encoded.OutNeighbors(v)) {
      WritePod(out, static_cast<uint64_t>(nbr));
    }
  }
  if (!out) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

}  // namespace

Status PartitionStore::Write(const PartitionedGraph& graph,
                             const ReplicatedPlacement& placement,
                             const std::string& dir) {
  if (placement.num_partitions() != graph.num_partitions()) {
    return Status::InvalidArgument("placement does not match graph");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory: " + dir);
  }

  // Manifest: human-readable header.
  {
    std::ofstream out(dir + "/" + kManifestName, std::ios::trunc);
    if (!out) {
      return Status::IOError("cannot write manifest in " + dir);
    }
    out << "surfer-partition-store 1\n";
    out << "vertices " << graph.encoded_graph().num_vertices() << "\n";
    out << "edges " << graph.encoded_graph().num_edges() << "\n";
    out << "partitions " << graph.num_partitions() << "\n";
    for (PartitionId p = 0; p < graph.num_partitions(); ++p) {
      const PartitionMeta& meta = graph.partition(p);
      out << "partition " << p << " " << meta.begin << " " << meta.end;
      for (MachineId m : placement.replicas[p]) {
        out << " " << (m == kInvalidMachine ? -1 : static_cast<int64_t>(m));
      }
      out << "\n";
    }
    if (!out) {
      return Status::IOError("short manifest write in " + dir);
    }
  }

  // Encoding: encoded -> original map.
  {
    std::ofstream out(dir + "/" + kEncodingName,
                      std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError("cannot write encoding in " + dir);
    }
    WritePod(out, kEncodingMagic);
    WritePod(out,
             static_cast<uint64_t>(graph.encoded_graph().num_vertices()));
    for (VertexId e = 0; e < graph.encoded_graph().num_vertices(); ++e) {
      WritePod(out, static_cast<uint64_t>(graph.encoding().ToOriginal(e)));
    }
    if (!out) {
      return Status::IOError("short encoding write in " + dir);
    }
  }

  for (PartitionId p = 0; p < graph.num_partitions(); ++p) {
    SURFER_RETURN_IF_ERROR(
        WritePartitionFile(graph, p, dir + "/" + PartitionFileName(p)));
  }
  return Status::OK();
}

namespace {

struct Manifest {
  uint64_t vertices = 0;
  uint64_t edges = 0;
  uint32_t partitions = 0;
  std::vector<VertexId> starts;  // P+1
  ReplicatedPlacement placement;
};

Result<Manifest> ReadManifest(const std::string& dir) {
  std::ifstream in(dir + "/" + kManifestName);
  if (!in) {
    return Status::IOError("cannot open manifest in " + dir);
  }
  Manifest manifest;
  std::string line;
  if (!std::getline(in, line) || line != "surfer-partition-store 1") {
    return Status::Corruption("bad manifest header in " + dir);
  }
  std::string keyword;
  while (in >> keyword) {
    if (keyword == "vertices") {
      in >> manifest.vertices;
    } else if (keyword == "edges") {
      in >> manifest.edges;
    } else if (keyword == "partitions") {
      in >> manifest.partitions;
      manifest.starts.assign(manifest.partitions + 1, 0);
      manifest.placement.replicas.resize(manifest.partitions);
    } else if (keyword == "partition") {
      uint32_t p = 0;
      uint64_t begin = 0;
      uint64_t end = 0;
      in >> p >> begin >> end;
      if (!in || p >= manifest.partitions) {
        return Status::Corruption("bad partition line in manifest");
      }
      manifest.starts[p] = static_cast<VertexId>(begin);
      manifest.starts[p + 1] = static_cast<VertexId>(end);
      for (uint32_t r = 0; r < kReplicationFactor; ++r) {
        int64_t machine = -1;
        in >> machine;
        manifest.placement.replicas[p][r] =
            machine < 0 ? kInvalidMachine : static_cast<MachineId>(machine);
      }
    } else {
      return Status::Corruption("unknown manifest keyword: " + keyword);
    }
    if (!in) {
      return Status::Corruption("truncated manifest in " + dir);
    }
  }
  if (manifest.partitions == 0 ||
      manifest.starts.back() != manifest.vertices) {
    return Status::Corruption("manifest ranges do not tile the graph");
  }
  return manifest;
}

/// Reads one partition file, appending rows for [begin, end) into the CSR
/// arrays (which must already cover [0, begin)).
Status ReadPartitionInto(const std::string& path, VertexId expect_begin,
                         VertexId expect_end, uint64_t num_vertices,
                         std::vector<EdgeIndex>* offsets,
                         std::vector<VertexId>* neighbors) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open " + path);
  }
  uint64_t magic = 0;
  uint64_t begin = 0;
  uint64_t end = 0;
  if (!ReadPod(in, &magic) || magic != kPartitionMagic ||
      !ReadPod(in, &begin) || !ReadPod(in, &end)) {
    return Status::Corruption("bad partition header in " + path);
  }
  if (begin != expect_begin || end != expect_end) {
    return Status::Corruption("partition range mismatch in " + path);
  }
  for (uint64_t v = begin; v < end; ++v) {
    uint64_t id = 0;
    uint32_t degree = 0;
    if (!ReadPod(in, &id) || id != v || !ReadPod(in, &degree)) {
      return Status::Corruption("bad record in " + path);
    }
    for (uint32_t i = 0; i < degree; ++i) {
      uint64_t nbr = 0;
      if (!ReadPod(in, &nbr) || nbr >= num_vertices) {
        return Status::Corruption("bad neighbor in " + path);
      }
      neighbors->push_back(static_cast<VertexId>(nbr));
    }
    offsets->push_back(neighbors->size());
  }
  return Status::OK();
}

}  // namespace

Result<PartitionStore::Loaded> PartitionStore::Load(const std::string& dir) {
  SURFER_ASSIGN_OR_RETURN(Manifest manifest, ReadManifest(dir));

  // Encoding map.
  std::vector<VertexId> to_original;
  {
    std::ifstream in(dir + "/" + kEncodingName, std::ios::binary);
    if (!in) {
      return Status::IOError("cannot open encoding in " + dir);
    }
    uint64_t magic = 0;
    uint64_t n = 0;
    if (!ReadPod(in, &magic) || magic != kEncodingMagic || !ReadPod(in, &n) ||
        n != manifest.vertices) {
      return Status::Corruption("bad encoding header in " + dir);
    }
    to_original.resize(n);
    for (uint64_t e = 0; e < n; ++e) {
      uint64_t original = 0;
      if (!ReadPod(in, &original) || original >= n) {
        return Status::Corruption("bad encoding entry in " + dir);
      }
      to_original[e] = static_cast<VertexId>(original);
    }
  }

  // Partitions, in range order.
  std::vector<EdgeIndex> offsets;
  offsets.reserve(manifest.vertices + 1);
  offsets.push_back(0);
  std::vector<VertexId> neighbors;
  neighbors.reserve(manifest.edges);
  for (PartitionId p = 0; p < manifest.partitions; ++p) {
    SURFER_RETURN_IF_ERROR(ReadPartitionInto(
        dir + "/" + PartitionFileName(p), manifest.starts[p],
        manifest.starts[p + 1], manifest.vertices, &offsets, &neighbors));
  }
  if (neighbors.size() != manifest.edges) {
    return Status::Corruption("edge count mismatch in " + dir);
  }

  SURFER_ASSIGN_OR_RETURN(
      VertexEncoding encoding,
      VertexEncoding::FromMapping(std::move(to_original),
                                  std::move(manifest.starts)));
  SURFER_ASSIGN_OR_RETURN(
      PartitionedGraph graph,
      PartitionedGraph::CreateFromEncoded(
          Graph(std::move(offsets), std::move(neighbors)),
          std::move(encoding)));
  return Loaded{std::move(graph), std::move(manifest.placement)};
}

Result<Graph> PartitionStore::LoadPartitionRows(const std::string& dir,
                                                PartitionId partition) {
  SURFER_ASSIGN_OR_RETURN(Manifest manifest, ReadManifest(dir));
  if (partition >= manifest.partitions) {
    return Status::NotFound("partition out of range");
  }
  // Empty rows before the partition, real rows inside, empty after.
  std::vector<EdgeIndex> offsets;
  offsets.reserve(manifest.vertices + 1);
  offsets.assign(manifest.starts[partition] + 1, 0);
  std::vector<VertexId> neighbors;
  SURFER_RETURN_IF_ERROR(ReadPartitionInto(
      dir + "/" + PartitionFileName(partition), manifest.starts[partition],
      manifest.starts[partition + 1], manifest.vertices, &offsets,
      &neighbors));
  offsets.resize(manifest.vertices + 1, neighbors.size());
  return Graph(std::move(offsets), std::move(neighbors));
}

}  // namespace surfer
