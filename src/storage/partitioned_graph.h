#ifndef SURFER_STORAGE_PARTITIONED_GRAPH_H_
#define SURFER_STORAGE_PARTITIONED_GRAPH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "partition/partitioning.h"
#include "partition/vertex_encoding.h"

namespace surfer {

/// Per-partition metadata kept alongside the partition data (Section 5.1):
/// the boundary-vertex table and the (v -> pid) cross-edge map, generated at
/// partitioning time and held in memory while processing the partition.
struct PartitionMeta {
  PartitionId id = 0;
  /// Encoded vertex range [begin, end).
  VertexId begin = 0;
  VertexId end = 0;
  /// Stored adjacency bytes of this partition (the paper's record format).
  uint64_t stored_bytes = 0;
  uint64_t inner_edges = 0;      ///< edges staying inside the partition
  uint64_t cross_out_edges = 0;  ///< out-edges leaving the partition
  uint64_t cross_in_edges = 0;   ///< in-edges arriving from other partitions
  /// Boundary flag per local vertex (local index = encoded ID - begin); a
  /// vertex is boundary iff it has any cross-partition edge, in or out.
  std::vector<uint8_t> boundary;
  uint64_t num_boundary = 0;
  uint64_t num_inner = 0;
  /// Out-edge counts toward each remote partition — the summary of the
  /// (v, pid) map used by local combination.
  std::vector<uint64_t> cross_out_by_partition;

  VertexId num_vertices() const { return end - begin; }
  double InnerVertexRatio() const {
    const VertexId n = num_vertices();
    return n == 0 ? 1.0
                  : static_cast<double>(num_inner) / static_cast<double>(n);
  }
};

/// A data graph partitioned, re-encoded (Appendix B) and indexed for the
/// runtime. The encoded graph is shared; partitions are views over vertex
/// ranges plus their metadata.
class PartitionedGraph {
 public:
  /// Builds the partitioned form of `graph` under `partitioning`. The input
  /// graph uses original IDs; the stored graph uses encoded IDs.
  static Result<PartitionedGraph> Create(const Graph& graph,
                                         const Partitioning& partitioning);

  /// Rebuilds a PartitionedGraph from its stored pieces: the encoded graph
  /// and the vertex encoding (partition ranges included). The boundary
  /// indexes and cross-edge maps are derived data and are recomputed.
  static Result<PartitionedGraph> CreateFromEncoded(Graph encoded,
                                                    VertexEncoding encoding);

  uint32_t num_partitions() const {
    return static_cast<uint32_t>(partitions_.size());
  }
  const Graph& encoded_graph() const { return encoded_; }
  const VertexEncoding& encoding() const { return encoding_; }
  const PartitionMeta& partition(PartitionId p) const {
    return partitions_[p];
  }
  const std::vector<PartitionMeta>& partitions() const { return partitions_; }

  PartitionId PartitionOf(VertexId encoded) const {
    return encoding_.PartitionOf(encoded);
  }

  /// Total stored bytes across partitions.
  uint64_t total_stored_bytes() const { return total_stored_bytes_; }

  /// Fraction of vertices that are inner vertices, graph-wide (drives the
  /// benefit of local propagation, Section 5.1).
  double InnerVertexRatio() const;

 private:
  Graph encoded_;
  VertexEncoding encoding_;
  std::vector<PartitionMeta> partitions_;
  uint64_t total_stored_bytes_ = 0;
};

}  // namespace surfer

#endif  // SURFER_STORAGE_PARTITIONED_GRAPH_H_
