#include "net/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <csignal>
#include <poll.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <utility>

#include "common/logging.h"
#include "net/frame.h"

namespace surfer {
namespace net {

namespace {

/// How long the coordinator waits for any control event before declaring the
/// run wedged. Generous: workers only go quiet while computing.
constexpr int kEventTimeoutMs = 120000;

/// Grace period between closing a child's control socket and SIGKILL.
constexpr int kReapGraceMs = 10000;

/// Completed-round history the straggler detector's trailing median uses.
constexpr size_t kRoundHistory = 16;
/// Completed rounds needed before the detector trusts its median at all.
constexpr size_t kMinRoundHistory = 3;

void AddStats(WorkerStatsMsg& into, const WorkerStatsMsg& from) {
  into.tasks_executed += from.tasks_executed;
  into.tasks_reexecuted += from.tasks_reexecuted;
  into.messages_sent += from.messages_sent;
  into.buffers_sent += from.buffers_sent;
  into.wire_batches_sent += from.wire_batches_sent;
  into.wire_segments_sent += from.wire_segments_sent;
  into.wire_payload_bytes += from.wire_payload_bytes;
  into.wire_messages_combined += from.wire_messages_combined;
  into.wire_flush_size += from.wire_flush_size;
  into.wire_flush_deadline += from.wire_flush_deadline;
  into.wire_flush_stage_end += from.wire_flush_stage_end;
  into.pool_buffers_acquired += from.pool_buffers_acquired;
  into.pool_buffers_reused += from.pool_buffers_reused;
  into.refetch_bytes += from.refetch_bytes;
  into.tcp_bytes_sent += from.tcp_bytes_sent;
  into.tcp_frames_sent += from.tcp_frames_sent;
  into.resend_bytes += from.resend_bytes;
  into.replication_bytes += from.replication_bytes;
  into.combine_messages_scattered += from.combine_messages_scattered;
  into.frontier_vertices_skipped += from.frontier_vertices_skipped;
  into.combine_scatter_micros += from.combine_scatter_micros;
  into.heartbeats_sent += from.heartbeats_sent;
  for (size_t i = 0;
       i < from.link_bytes.size() && i < into.link_bytes.size(); ++i) {
    into.link_bytes[i] += from.link_bytes[i];
  }
}

}  // namespace

DistributedCoordinator::DistributedCoordinator(CoordinatorParams params,
                                               WorkerEntry entry)
    : params_(std::move(params)), entry_(std::move(entry)) {}

Result<CoordinatorOutcome> DistributedCoordinator::Run() {
  if (params_.num_processes == 0 || params_.num_machines == 0 ||
      params_.replicas == nullptr || entry_ == nullptr) {
    return Status::InvalidArgument("coordinator params incomplete");
  }
  fault_tolerant_ = params_.placement.fault_tolerant != 0;
  alive_machines_.assign(params_.num_machines, 1);
  seq_ = 0;
  sigterm_delivered_ = false;
  live_.assign(params_.num_processes, LiveProc{});
  round_durations_s_.clear();
  stragglers_flagged_ = 0;

  CoordinatorOutcome out;
  out.totals.link_bytes.assign(
      static_cast<size_t>(params_.num_machines) * params_.num_machines, 0);
  out.worker_reports.assign(params_.num_processes, "");
  out.worker_stats.assign(params_.num_processes, WorkerStatsMsg{});

  Status st = Spawn();
  if (st.ok()) {
    st = HandshakeAll();
  }
  if (st.ok()) {
    st = RunBsp(&out);
  }
  if (st.ok()) {
    st = Finalize(&out);
  }
  Shutdown();
  if (!st.ok()) {
    return st;
  }
  out.alive = alive_machines_;
  out.machine_failures = machine_failures_;
  out.stragglers_flagged = stragglers_flagged_;
  return out;
}

Status DistributedCoordinator::Spawn() {
  procs_.clear();
  procs_.resize(params_.num_processes);
  for (uint32_t i = 0; i < params_.num_processes; ++i) {
    SURFER_ASSIGN_OR_RETURN(auto pair, Socket::Pair());
    Socket parent_end = std::move(pair.first);
    Socket child_end = std::move(pair.second);
    const pid_t pid = ::fork();
    if (pid < 0) {
      return Status::IOError("fork failed");
    }
    if (pid == 0) {
      // Child: drop every inherited parent-side control socket (earlier
      // children's and our own) so control EOF tracks process death exactly,
      // then hand off to the worker entry. The entry must _exit.
      for (uint32_t j = 0; j < i; ++j) {
        procs_[j].control.Close();
      }
      parent_end.Close();
      entry_(i, std::move(child_end));
      ::_exit(3);  // entry returned: protocol bug, die loudly
    }
    procs_[i].pid = pid;
    procs_[i].control = std::move(parent_end);
    procs_[i].alive = true;
    // child_end closes here in the parent (scope exit).
  }
  return Status::OK();
}

Status DistributedCoordinator::HandshakeAll() {
  PeersMsg peers;
  peers.ports.assign(params_.num_processes, 0);
  for (uint32_t i = 0; i < params_.num_processes; ++i) {
    SURFER_ASSIGN_OR_RETURN(Frame frame, ReadFrame(procs_[i].control));
    if (frame.type != FrameType::kHello) {
      return Status::Internal("expected kHello from worker " +
                              std::to_string(i));
    }
    SURFER_ASSIGN_OR_RETURN(HelloMsg hello, DecodeHello(frame.payload));
    if (hello.proc != i) {
      return Status::Internal("worker identity mismatch in hello");
    }
    peers.ports[i] = hello.mesh_port;
  }
  const std::vector<uint8_t> peers_payload = EncodePeers(peers);
  const std::vector<uint8_t> placement_payload =
      EncodePlacement(params_.placement);
  for (uint32_t i = 0; i < params_.num_processes; ++i) {
    SURFER_RETURN_IF_ERROR(
        WriteFrame(procs_[i].control, FrameType::kPeers, peers_payload));
    SURFER_RETURN_IF_ERROR(WriteFrame(procs_[i].control, FrameType::kPlacement,
                                      placement_payload));
  }
  for (uint32_t i = 0; i < params_.num_processes; ++i) {
    SURFER_ASSIGN_OR_RETURN(Frame frame, ReadFrame(procs_[i].control));
    if (frame.type != FrameType::kReady) {
      return Status::Internal("expected kReady from worker " +
                              std::to_string(i));
    }
  }
  return Status::OK();
}

Status DistributedCoordinator::RunBsp(CoordinatorOutcome* out) {
  for (int iteration = 0; iteration < params_.iterations; ++iteration) {
    if (params_.sigterm_machine != kInvalidMachine && !sigterm_delivered_ &&
        iteration == params_.sigterm_iteration) {
      SURFER_RETURN_IF_ERROR(DeliverSigterm(out));
    }
    SURFER_RETURN_IF_ERROR(RunStage(RoundKind::kTransfer, iteration, out));
    SURFER_RETURN_IF_ERROR(RunStage(RoundKind::kCombine, iteration, out));
  }
  return Status::OK();
}

Status DistributedCoordinator::RunStage(RoundKind stage_kind, int iteration,
                                        CoordinatorOutcome* out) {
  const uint32_t num_partitions = params_.placement.num_partitions;
  const char* stage_name =
      stage_kind == RoundKind::kTransfer ? "transfer" : "combine";
  done_.assign(num_partitions, 0);
  if (stage_kind == RoundKind::kTransfer) {
    holders_.assign(num_partitions, {});
    transfer_exec_.assign(num_partitions, kInvalidMachine);
  }
  bool recovery = false;
  for (;;) {
    std::vector<PartitionId> pending;
    for (PartitionId p = 0; p < num_partitions; ++p) {
      if (!done_[p]) {
        pending.push_back(p);
      }
    }
    if (pending.empty()) {
      return Status::OK();
    }

    if (stage_kind == RoundKind::kCombine) {
      // Partitions whose inbox holders died must be rebuilt before (or
      // instead of re-running) their combine: a resend round replays every
      // retained batch destined to them and re-executes the transfer tasks
      // whose producer died with its retained output.
      std::vector<uint8_t> rebuild(num_partitions, 0);
      bool any_rebuild = false;
      for (PartitionId p : pending) {
        for (MachineId h : holders_[p]) {
          if (!alive_machines_[h]) {
            rebuild[p] = 1;
            any_rebuild = true;
            break;
          }
        }
      }
      if (any_rebuild) {
        RoundMsg round;
        round.kind = RoundKind::kResend;
        round.iteration = iteration;
        round.recovery = 1;
        round.exec.assign(num_partitions, kInvalidMachine);
        round.route.assign(num_partitions, kInvalidMachine);
        round.reexec.assign(num_partitions, kInvalidMachine);
        for (PartitionId p = 0; p < num_partitions; ++p) {
          if (rebuild[p]) {
            const MachineId m =
                params_.replicas->FirstAliveReplica(p, alive_machines_);
            if (m == kInvalidMachine) {
              return Status::Internal(
                  "all replicas of partition " + std::to_string(p) +
                  " are dead; combine stage cannot recover");
            }
            round.exec[p] = m;
            round.route[p] = m;
          }
          if (transfer_exec_[p] != kInvalidMachine &&
              !alive_machines_[transfer_exec_[p]]) {
            const MachineId m =
                params_.replicas->FirstAliveReplica(p, alive_machines_);
            if (m == kInvalidMachine) {
              return Status::Internal(
                  "all replicas of partition " + std::to_string(p) +
                  " are dead; transfer output cannot be rebuilt");
            }
            round.reexec[p] = m;
          }
        }
        const std::vector<MachineId> assignees = round.exec;
        int deaths = 0;
        SURFER_RETURN_IF_ERROR(DriveRound(std::move(round), out, &deaths));
        ++out->recovery_rounds;
        if (deaths == 0) {
          // A clean resend collapses each rebuilt partition's holder set to
          // its new (alive) assignee. A resend interrupted by another death
          // keeps the old holder set — the dead holder it still names puts
          // the partition straight back into the next rebuild set.
          for (PartitionId p = 0; p < num_partitions; ++p) {
            if (rebuild[p]) {
              holders_[p].assign(1, assignees[p]);
            }
          }
        }
        continue;
      }
    }

    RoundMsg round;
    round.kind = stage_kind;
    round.iteration = iteration;
    round.recovery = recovery ? 1 : 0;
    round.exec.assign(num_partitions, kInvalidMachine);
    round.route.assign(num_partitions, kInvalidMachine);
    round.reexec.assign(num_partitions, kInvalidMachine);
    for (PartitionId p : pending) {
      const MachineId m =
          params_.replicas->FirstAliveReplica(p, alive_machines_);
      if (m == kInvalidMachine) {
        return Status::Internal("all replicas of partition " +
                                std::to_string(p) + " are dead; " +
                                stage_name + " stage cannot recover");
      }
      round.exec[p] = m;
    }
    if (stage_kind == RoundKind::kTransfer) {
      for (PartitionId d = 0; d < num_partitions; ++d) {
        const MachineId r =
            params_.replicas->FirstAliveReplica(d, alive_machines_);
        if (r == kInvalidMachine) {
          return Status::Internal("all replicas of partition " +
                                  std::to_string(d) +
                                  " are dead; transfer stage cannot route");
        }
        round.route[d] = r;
        // The route machine may now hold chunks of d's inbox whether or not
        // this round completes cleanly.
        if (std::find(holders_[d].begin(), holders_[d].end(), r) ==
            holders_[d].end()) {
          holders_[d].push_back(r);
        }
      }
    }
    int deaths = 0;
    SURFER_RETURN_IF_ERROR(DriveRound(std::move(round), out, &deaths));
    if (recovery) {
      ++out->recovery_rounds;
    }
    recovery = true;
  }
}

Status DistributedCoordinator::DriveRound(RoundMsg round,
                                          CoordinatorOutcome* out,
                                          int* deaths) {
  round.seq = ++seq_;
  round.alive = alive_machines_;
  const uint64_t started_us = NowUnixUs();
  runtime::ClusterRoundRecord record;
  record.seq = round.seq;
  record.iteration = round.iteration;
  record.kind = static_cast<int>(round.kind);
  record.broadcast_unix_us = started_us;
  record.done_unix_us.assign(procs_.size(), 0);
  for (LiveProc& lp : live_) {
    lp.straggler = false;
  }
  const std::vector<uint8_t> payload = EncodeRound(round);
  std::vector<uint8_t> expect(procs_.size(), 0);
  size_t waiting = 0;
  for (uint32_t i = 0; i < procs_.size(); ++i) {
    if (!procs_[i].alive) {
      continue;
    }
    if (!WriteFrame(procs_[i].control, FrameType::kRound, payload).ok()) {
      SURFER_RETURN_IF_ERROR(MarkProcDead(i));
      ++*deaths;
      continue;
    }
    expect[i] = 1;
    ++waiting;
  }
  while (waiting > 0) {
    SURFER_ASSIGN_OR_RETURN(Event event, WaitControlEvent());
    if (event.death) {
      SURFER_RETURN_IF_ERROR(MarkProcDead(event.proc));
      ++*deaths;
      if (expect[event.proc]) {
        expect[event.proc] = 0;
        --waiting;
      }
      continue;
    }
    switch (event.frame.type) {
      case FrameType::kTaskDone: {
        SURFER_ASSIGN_OR_RETURN(TaskDoneMsg task,
                                DecodeTaskDone(event.frame.payload));
        if (task.partition >= done_.size()) {
          return Status::Internal("task-done partition out of range");
        }
        if (task.kind == static_cast<uint8_t>(RoundKind::kResend)) {
          transfer_exec_[task.partition] = task.machine;
        } else {
          done_[task.partition] = 1;
          if (task.kind == static_cast<uint8_t>(RoundKind::kTransfer)) {
            transfer_exec_[task.partition] = task.machine;
          }
        }
        break;
      }
      case FrameType::kRoundDone: {
        SURFER_ASSIGN_OR_RETURN(SeqMsg done, DecodeSeq(event.frame.payload));
        if (done.seq == round.seq && expect[event.proc]) {
          record.done_unix_us[event.proc] = NowUnixUs();
          expect[event.proc] = 0;
          --waiting;
        }
        break;
      }
      case FrameType::kHeartbeat: {
        SURFER_ASSIGN_OR_RETURN(HeartbeatMsg hb,
                                DecodeHeartbeat(event.frame.payload));
        NoteHeartbeat(event.proc, hb);
        break;
      }
      default:
        break;
    }
    CheckStragglers(round, expect, started_us, out);
  }
  round_durations_s_.push_back(
      static_cast<double>(NowUnixUs() - started_us) / 1e6);
  if (round_durations_s_.size() > kRoundHistory) {
    round_durations_s_.pop_front();
  }
  out->round_records.push_back(std::move(record));
  ++out->rounds;
  return Status::OK();
}

void DistributedCoordinator::NoteHeartbeat(uint32_t proc,
                                           const HeartbeatMsg& hb) {
  if (proc >= live_.size()) {
    return;
  }
  live_[proc].hb = hb;
  live_[proc].hb_recv_us = NowUnixUs();
  EmitStatus();
}

void DistributedCoordinator::CheckStragglers(
    const RoundMsg& round, const std::vector<uint8_t>& expect,
    uint64_t started_us, CoordinatorOutcome* out) {
  if (round_durations_s_.size() < kMinRoundHistory) {
    return;
  }
  std::vector<double> window(round_durations_s_.begin(),
                             round_durations_s_.end());
  std::nth_element(window.begin(), window.begin() + window.size() / 2,
                   window.end());
  const double median_s = window[window.size() / 2];
  const double threshold_s =
      std::max(median_s * params_.straggler_multiple,
               static_cast<double>(params_.straggler_min_ms) / 1e3);
  const double elapsed_s =
      static_cast<double>(NowUnixUs() - started_us) / 1e6;
  if (elapsed_s <= threshold_s) {
    return;
  }
  bool flagged = false;
  for (uint32_t i = 0; i < expect.size(); ++i) {
    if (!expect[i] || live_[i].straggler) {
      continue;
    }
    live_[i].straggler = true;
    ++stragglers_flagged_;
    flagged = true;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "straggler: process %u still running round %u "
                  "(%s, iteration %d) after %.3fs (median %.3fs x %.1f)",
                  i, round.seq, runtime::RoundKindName(
                                    static_cast<int>(round.kind)),
                  round.iteration, elapsed_s, median_s,
                  params_.straggler_multiple);
    SURFER_LOG(kWarning) << buf;
  }
  if (flagged) {
    out->stragglers_flagged = stragglers_flagged_;
    EmitStatus();
  }
}

std::string DistributedCoordinator::RenderStatusTable() const {
  const uint64_t now_us = NowUnixUs();
  std::string table =
      "proc  state     stage     iter  round  mailbox  inflight_kb  "
      "staged_kb  rss_mb  barrier  hb_age_ms\n";
  for (uint32_t i = 0; i < procs_.size(); ++i) {
    const LiveProc& lp = live_[i];
    const char* state = !procs_[i].alive ? "dead"
                        : lp.straggler   ? "STRAGGLE"
                                         : "alive";
    const char* stage =
        lp.hb_recv_us == 0     ? "-"
        : lp.hb.stage == kIdleStage
            ? "idle"
            : runtime::RoundKindName(static_cast<int>(lp.hb.stage));
    const double hb_age_ms =
        lp.hb_recv_us == 0
            ? -1.0
            : static_cast<double>(now_us - lp.hb_recv_us) / 1e3;
    char row[192];
    std::snprintf(row, sizeof(row),
                  "%-5u %-9s %-9s %-5d %-6llu %-8llu %-12.1f %-10.1f "
                  "%-7.1f %-8u %.0f\n",
                  i, state, stage, lp.hb.iteration,
                  static_cast<unsigned long long>(lp.hb.round_seq),
                  static_cast<unsigned long long>(lp.hb.mailbox_frames),
                  static_cast<double>(lp.hb.inflight_bytes) / 1024.0,
                  static_cast<double>(lp.hb.staged_wire_bytes) / 1024.0,
                  static_cast<double>(lp.hb.rss_bytes) / (1024.0 * 1024.0),
                  lp.hb.barrier_waiting, hb_age_ms);
    table += row;
  }
  return table;
}

void DistributedCoordinator::EmitStatus() {
  if (params_.status_sink) {
    params_.status_sink(RenderStatusTable());
  }
}

Result<DistributedCoordinator::Event>
DistributedCoordinator::WaitControlEvent() {
  std::vector<pollfd> fds;
  std::vector<uint32_t> owner;
  for (uint32_t i = 0; i < procs_.size(); ++i) {
    if (procs_[i].alive) {
      fds.push_back(pollfd{procs_[i].control.fd(), POLLIN, 0});
      owner.push_back(i);
    }
  }
  if (fds.empty()) {
    return Status::Internal("no live worker processes to wait on");
  }
  int rc;
  do {
    rc = ::poll(fds.data(), fds.size(), kEventTimeoutMs);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    return Status::IOError("poll on control sockets failed");
  }
  if (rc == 0) {
    return Status::Internal("timed out waiting for worker control traffic");
  }
  for (size_t k = 0; k < fds.size(); ++k) {
    if (fds[k].revents == 0) {
      continue;
    }
    Event event;
    event.proc = owner[k];
    if ((fds[k].revents & POLLIN) != 0) {
      Result<Frame> frame = ReadFrame(procs_[owner[k]].control);
      if (!frame.ok()) {
        event.death = true;
        return event;
      }
      event.frame = std::move(*frame);
      return event;
    }
    // POLLHUP/POLLERR without readable data: the process is gone.
    event.death = true;
    return event;
  }
  return Status::Internal("poll reported readiness but no fd was ready");
}

Status DistributedCoordinator::MarkProcDead(uint32_t proc) {
  Proc& p = procs_[proc];
  if (!p.alive) {
    return Status::OK();
  }
  p.alive = false;
  p.control.Close();
  for (MachineId m = 0; m < params_.num_machines; ++m) {
    if (HostsMachine(proc, m) && alive_machines_[m]) {
      alive_machines_[m] = 0;
      ++machine_failures_;
    }
  }
  ReapChild(p, /*force_kill_after_grace=*/true);
  if (!fault_tolerant_) {
    return Status::Internal(
        "worker process " + std::to_string(proc) +
        " died during a run with no fault tolerance configured");
  }
  return Status::OK();
}

void DistributedCoordinator::ReapChild(Proc& proc,
                                       bool force_kill_after_grace) {
  if (proc.reaped || proc.pid <= 0) {
    return;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(kReapGraceMs);
  for (;;) {
    const pid_t rc = ::waitpid(proc.pid, nullptr, WNOHANG);
    if (rc == proc.pid || (rc < 0 && errno == ECHILD)) {
      proc.reaped = true;
      return;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (force_kill_after_grace) {
    ::kill(proc.pid, SIGKILL);
    ::waitpid(proc.pid, nullptr, 0);
    proc.reaped = true;
  }
}

Status DistributedCoordinator::DeliverSigterm(CoordinatorOutcome* out) {
  (void)out;
  sigterm_delivered_ = true;
  const uint32_t proc = params_.sigterm_machine % params_.num_processes;
  if (!procs_[proc].alive) {
    return Status::OK();
  }
  ::kill(procs_[proc].pid, SIGTERM);
  // The worker flushes, writes its artifacts, and exits; consume anything it
  // still says and wait for its EOF so the next round's liveness snapshot is
  // deterministic.
  for (;;) {
    Result<Frame> frame = ReadFrame(procs_[proc].control);
    if (!frame.ok()) {
      break;
    }
  }
  return MarkProcDead(proc);
}

Status DistributedCoordinator::Finalize(CoordinatorOutcome* out) {
  for (uint32_t i = 0; i < procs_.size(); ++i) {
    if (!procs_[i].alive) {
      continue;
    }
    if (!WriteFrame(procs_[i].control, FrameType::kFinalize).ok()) {
      SURFER_RETURN_IF_ERROR(MarkProcDead(i));
    }
  }
  for (uint32_t i = 0; i < procs_.size(); ++i) {
    if (!procs_[i].alive) {
      continue;
    }
    bool collecting = true;
    while (collecting) {
      Result<Frame> frame = ReadFrame(procs_[i].control);
      if (!frame.ok()) {
        SURFER_RETURN_IF_ERROR(MarkProcDead(i));
        break;
      }
      switch (frame->type) {
        case FrameType::kWorkerStats: {
          SURFER_ASSIGN_OR_RETURN(WorkerStatsMsg stats,
                                  DecodeWorkerStats(frame->payload));
          AddStats(out->totals, stats);
          out->peak_worker_rss_bytes =
              std::max(out->peak_worker_rss_bytes, stats.peak_rss_bytes);
          out->worker_stats[i] = std::move(stats);
          break;
        }
        case FrameType::kFinalState: {
          SURFER_ASSIGN_OR_RETURN(FinalStateMsg state,
                                  DecodeFinalState(frame->payload));
          out->states.push_back(std::move(state));
          break;
        }
        case FrameType::kFinalVirtual: {
          SURFER_ASSIGN_OR_RETURN(FinalVirtualMsg virtuals,
                                  DecodeFinalVirtual(frame->payload));
          out->virtuals.push_back(std::move(virtuals));
          break;
        }
        case FrameType::kWorkerReport: {
          out->worker_reports[i].assign(frame->payload.begin(),
                                        frame->payload.end());
          break;
        }
        case FrameType::kFinalDone:
          collecting = false;
          break;
        default:
          break;
      }
    }
  }
  return Status::OK();
}

void DistributedCoordinator::Shutdown() {
  for (Proc& proc : procs_) {
    if (proc.alive && proc.control.valid()) {
      (void)WriteFrame(proc.control, FrameType::kShutdown);
    }
  }
  for (Proc& proc : procs_) {
    proc.control.Close();
    ReapChild(proc, /*force_kill_after_grace=*/true);
  }
}

}  // namespace net
}  // namespace surfer
