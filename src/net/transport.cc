#include "net/transport.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <poll.h>
#include <string>
#include <sys/socket.h>
#include <utility>

namespace surfer {
namespace net {

namespace {

std::atomic<bool> g_sigterm{false};

void SigtermHandler(int) { g_sigterm.store(true, std::memory_order_relaxed); }

}  // namespace

void InstallWorkerSignalHandlers() {
  g_sigterm.store(false, std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = SigtermHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked reads must surface EINTR
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);
}

const std::atomic<bool>* SigtermFlag() { return &g_sigterm; }

Result<ClockOffsetMsg> RunClockSyncClient(Socket& sock, uint32_t pings) {
  ClockOffsetMsg best;
  int64_t best_delta = -1;
  for (uint32_t k = 0; k < pings; ++k) {
    ClockPingMsg ping;
    ping.seq = k;
    SURFER_RETURN_IF_ERROR(
        WriteFrame(sock, FrameType::kPing, EncodeClockPing(ping)));
    SURFER_ASSIGN_OR_RETURN(Frame frame, ReadFrame(sock));
    if (frame.type != FrameType::kPong) {
      return Status::Internal("expected kPong during clock sync");
    }
    SURFER_ASSIGN_OR_RETURN(ClockPongMsg pong, DecodeClockPong(frame.payload));
    if (pong.seq != k) {
      return Status::Internal("clock-sync pong out of sequence");
    }
    const int64_t t1 = static_cast<int64_t>(pong.t1);
    const int64_t t2 = static_cast<int64_t>(pong.t2);
    const int64_t t3 = static_cast<int64_t>(frame.send_unix_us);
    const int64_t t4 = static_cast<int64_t>(frame.recv_unix_us);
    const int64_t delta = (t4 - t1) - (t3 - t2);  // round trip minus server hold
    if (best_delta < 0 || delta < best_delta) {
      best_delta = delta;
      best.offset_us = ((t2 - t1) + (t3 - t4)) / 2;
      best.uncertainty_us = static_cast<uint64_t>(delta < 0 ? 0 : delta) / 2;
    }
  }
  SURFER_RETURN_IF_ERROR(
      WriteFrame(sock, FrameType::kClockOffset, EncodeClockOffset(best)));
  return best;
}

Result<ClockOffsetMsg> RunClockSyncServer(Socket& sock) {
  for (;;) {
    SURFER_ASSIGN_OR_RETURN(Frame frame, ReadFrame(sock));
    if (frame.type == FrameType::kPing) {
      SURFER_ASSIGN_OR_RETURN(ClockPingMsg ping,
                              DecodeClockPing(frame.payload));
      ClockPongMsg pong;
      pong.seq = ping.seq;
      pong.t1 = frame.send_unix_us;
      pong.t2 = frame.recv_unix_us;
      SURFER_RETURN_IF_ERROR(
          WriteFrame(sock, FrameType::kPong, EncodeClockPong(pong)));
      continue;
    }
    if (frame.type == FrameType::kClockOffset) {
      SURFER_ASSIGN_OR_RETURN(ClockOffsetMsg msg,
                              DecodeClockOffset(frame.payload));
      // The client estimated (server - client); this end wants (peer - local).
      msg.offset_us = -msg.offset_us;
      return msg;
    }
    return Status::Internal("unexpected frame during clock sync");
  }
}

WorkerTransport::WorkerTransport(uint32_t proc, Socket control)
    : proc_(proc), control_(std::move(control)) {}

Status WorkerTransport::Handshake(PlacementMsg* placement_out) {
  SURFER_ASSIGN_OR_RETURN(listener_, Listener::Bind());
  HelloMsg hello;
  hello.proc = proc_;
  hello.mesh_port = listener_.port();
  SURFER_RETURN_IF_ERROR(
      WriteFrame(control_, FrameType::kHello, EncodeHello(hello)));

  SURFER_ASSIGN_OR_RETURN(Frame peers_frame, ReadFrame(control_));
  if (peers_frame.type != FrameType::kPeers) {
    return Status::Internal("expected kPeers during handshake");
  }
  SURFER_ASSIGN_OR_RETURN(PeersMsg peers, DecodePeers(peers_frame.payload));

  SURFER_ASSIGN_OR_RETURN(Frame placement_frame, ReadFrame(control_));
  if (placement_frame.type != FrameType::kPlacement) {
    return Status::Internal("expected kPlacement during handshake");
  }
  SURFER_ASSIGN_OR_RETURN(*placement_out,
                          DecodePlacement(placement_frame.payload));
  ack_data_ = placement_out->fault_tolerant != 0;

  num_procs_ = static_cast<uint32_t>(peers.ports.size());
  peers_.clear();
  for (uint32_t i = 0; i < num_procs_; ++i) {
    peers_.push_back(std::make_unique<Peer>());
  }

  // Rendezvous: every worker's listener existed before its kHello, and the
  // coordinator broadcast kPeers only after collecting every kHello — so
  // dialing any peer's port now cannot race its bind. Process i dials every
  // j < i and accepts every j > i: exactly one TCP connection per unordered
  // pair.
  for (uint32_t j = 0; j < proc_; ++j) {
    SURFER_ASSIGN_OR_RETURN(Socket sock, ConnectLocal(peers.ports[j]));
    SeqMsg id;
    id.src_proc = proc_;
    SURFER_RETURN_IF_ERROR(
        WriteFrame(sock, FrameType::kMeshHello, EncodeSeq(id)));
    peers_[j]->sock = std::move(sock);
  }
  for (uint32_t j = proc_ + 1; j < num_procs_; ++j) {
    SURFER_ASSIGN_OR_RETURN(Socket sock, listener_.Accept());
    SURFER_ASSIGN_OR_RETURN(Frame frame, ReadFrame(sock));
    if (frame.type != FrameType::kMeshHello) {
      return Status::Internal("expected kMeshHello on mesh accept");
    }
    SURFER_ASSIGN_OR_RETURN(SeqMsg id, DecodeSeq(frame.payload));
    if (id.src_proc >= num_procs_ || id.src_proc <= proc_ ||
        peers_[id.src_proc]->sock.valid()) {
      return Status::Internal("mesh hello from unexpected process " +
                              std::to_string(id.src_proc));
    }
    peers_[id.src_proc]->sock = std::move(sock);
  }
  listener_.Close();

  // Clock-offset estimation while the mesh is still quiet and the main
  // thread owns every socket. Sessions run in a fixed pairwise order — for
  // each link the lower-index process is the client, and every process
  // walks its links in index order (serve j < proc, then dial j > proc) —
  // so no two sessions can wait on each other.
  if (placement_out->clock_sync_pings > 0) {
    for (uint32_t j = 0; j < num_procs_; ++j) {
      if (j == proc_) {
        continue;
      }
      Peer& p = *peers_[j];
      Result<ClockOffsetMsg> offset =
          j < proc_ ? RunClockSyncServer(p.sock)
                    : RunClockSyncClient(p.sock,
                                         placement_out->clock_sync_pings);
      SURFER_RETURN_IF_ERROR(offset.status());
      p.clock_offset_us = offset->offset_us;
      p.clock_uncertainty_us = offset->uncertainty_us;
    }
    clock_synced_ = true;
  }

  // Receiver threads inherit the spawn-time signal mask; block SIGTERM
  // around the spawn so only the main thread ever takes the interrupt.
  sigset_t block, old;
  sigemptyset(&block);
  sigaddset(&block, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &block, &old);
  for (uint32_t j = 0; j < num_procs_; ++j) {
    if (j == proc_) {
      continue;
    }
    peers_[j]->receiver = std::thread([this, j] { ReceiverLoop(j); });
    peers_[j]->receiver.detach();
  }
  pthread_sigmask(SIG_SETMASK, &old, nullptr);

  return WriteFrame(control_, FrameType::kReady);
}

Result<Frame> WorkerTransport::ReadControl() {
  // Poll-then-read instead of relying on EINTR alone: a SIGTERM that lands
  // between the flag check and the read syscall would otherwise leave the
  // worker blocked forever with the flag already set.
  for (;;) {
    if (SigtermFlag()->load(std::memory_order_relaxed)) {
      return Status::Unavailable("control read interrupted by SIGTERM");
    }
    pollfd fd{control_.fd(), POLLIN, 0};
    const int rc = ::poll(&fd, 1, 100);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IOError("poll on control socket failed");
    }
    if (rc == 0) {
      if (idle_tick_) {
        idle_tick_();
      }
      continue;
    }
    return ReadFrame(control_, SigtermFlag());
  }
}

Status WorkerTransport::SendControl(FrameType type,
                                    const std::vector<uint8_t>& payload) {
  return WriteFrame(control_, type, payload);
}

Status WorkerTransport::SendControl(FrameType type) {
  return WriteFrame(control_, type);
}

Status WorkerTransport::SendPeer(uint32_t peer, FrameType type,
                                 const std::vector<uint8_t>& payload) {
  Peer& p = *peers_[peer];
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (p.dead) {
      return Status::OK();
    }
  }
  Status st;
  {
    std::lock_guard<std::mutex> wlock(p.write_mu);
    st = WriteFrame(p.sock, type, payload);
  }
  if (!st.ok()) {
    // Peer death is reported through liveness (the receiver thread sees the
    // EOF too); the send itself succeeds-by-dropping.
    MarkDead(peer);
    return Status::OK();
  }
  p.frames_sent.fetch_add(1, std::memory_order_relaxed);
  if (ack_data_ &&
      (type == FrameType::kData || type == FrameType::kStateUpdate)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++p.sent_acked;
  }
  return Status::OK();
}

Status WorkerTransport::BroadcastEos(uint32_t seq) {
  SeqMsg msg;
  msg.seq = seq;
  msg.src_proc = proc_;
  const std::vector<uint8_t> payload = EncodeSeq(msg);
  for (uint32_t j = 0; j < num_procs_; ++j) {
    if (j == proc_) {
      continue;
    }
    SURFER_RETURN_IF_ERROR(SendPeer(j, FrameType::kEos, payload));
  }
  return Status::OK();
}

bool WorkerTransport::TryPopData(runtime::WireBatch* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (data_.empty()) {
    return false;
  }
  *out = std::move(data_.front());
  data_.pop_front();
  const uint64_t popped = out->payload.size();
  inflight_bytes_ -= popped < inflight_bytes_ ? popped : inflight_bytes_;
  return true;
}

bool WorkerTransport::TryPopUpdate(StateUpdateMsg* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (updates_.empty()) {
    return false;
  }
  *out = std::move(updates_.front());
  updates_.pop_front();
  const uint64_t popped = out->states.size() + out->virtuals.size();
  inflight_bytes_ -= popped < inflight_bytes_ ? popped : inflight_bytes_;
  return true;
}

bool WorkerTransport::RoundDrained(uint32_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t j = 0; j < num_procs_; ++j) {
    if (j == proc_) {
      continue;
    }
    const Peer& p = *peers_[j];
    if (!p.dead && p.eos_seq < seq) {
      return false;
    }
  }
  return true;
}

void WorkerTransport::WaitActivity() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(50));
}

Status WorkerTransport::WaitDataAcked() {
  if (!ack_data_) {
    return Status::OK();
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    for (uint32_t j = 0; j < num_procs_; ++j) {
      if (j == proc_) {
        continue;
      }
      const Peer& p = *peers_[j];
      if (!p.dead && p.acked < p.sent_acked) {
        return false;
      }
    }
    return true;
  });
  return Status::OK();
}

uint64_t WorkerTransport::tcp_bytes_sent() const {
  uint64_t total = 0;
  for (const auto& p : peers_) {
    if (p != nullptr && p->sock.valid()) {
      total += p->sock.bytes_written();
    }
  }
  return total;
}

uint64_t WorkerTransport::tcp_frames_sent() const {
  uint64_t total = 0;
  for (const auto& p : peers_) {
    if (p != nullptr) {
      total += p->frames_sent.load(std::memory_order_relaxed);
    }
  }
  return total;
}

uint64_t WorkerTransport::ApproxMailboxDepth() {
  std::lock_guard<std::mutex> lock(mu_);
  return data_.size() + updates_.size();
}

uint64_t WorkerTransport::InflightBytes() {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_bytes_;
}

std::vector<RoundLinkStat> WorkerTransport::DrainLinkStats() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RoundLinkStat> out = std::move(link_stats_);
  link_stats_.clear();
  return out;
}

std::vector<int64_t> WorkerTransport::ClockOffsets() const {
  std::vector<int64_t> out(num_procs_, 0);
  for (uint32_t j = 0; j < num_procs_; ++j) {
    if (j != proc_ && peers_[j] != nullptr) {
      out[j] = peers_[j]->clock_offset_us;
    }
  }
  return out;
}

std::vector<uint64_t> WorkerTransport::ClockUncertainties() const {
  std::vector<uint64_t> out(num_procs_, 0);
  for (uint32_t j = 0; j < num_procs_; ++j) {
    if (j != proc_ && peers_[j] != nullptr) {
      out[j] = peers_[j]->clock_uncertainty_us;
    }
  }
  return out;
}

void WorkerTransport::CloseAll() {
  for (auto& p : peers_) {
    if (p != nullptr && p->sock.valid()) {
      ::shutdown(p->sock.fd(), SHUT_RDWR);
    }
  }
  if (control_.valid()) {
    ::shutdown(control_.fd(), SHUT_RDWR);
  }
}

void WorkerTransport::ReceiverLoop(uint32_t peer_index) {
  Peer& p = *peers_[peer_index];
  // Accumulates the current round's frame stamps into the link window. A
  // link is FIFO and kEos trails the round's last data frame, so flushing
  // the window at kEos attributes every frame to exactly one round.
  const auto observe = [&](const Frame& frame) {
    const int64_t latency = static_cast<int64_t>(frame.recv_unix_us) -
                            static_cast<int64_t>(frame.send_unix_us);
    p.window.frames += 1;
    p.window.bytes += frame.payload.size();
    p.window.latency_sum_us += latency;
    if (latency > p.window.latency_max_us) {
      p.window.latency_max_us = latency;
    }
    if (p.window.first_send_us == 0 ||
        frame.send_unix_us < p.window.first_send_us) {
      p.window.first_send_us = frame.send_unix_us;
    }
    if (frame.recv_unix_us > p.window.last_recv_us) {
      p.window.last_recv_us = frame.recv_unix_us;
    }
    const uint64_t clamped =
        latency > 0 ? static_cast<uint64_t>(latency) : 0;
    last_recv_latency_us_.store(clamped, std::memory_order_relaxed);
    uint64_t prev = max_recv_latency_us_.load(std::memory_order_relaxed);
    while (clamped > prev && !max_recv_latency_us_.compare_exchange_weak(
                                 prev, clamped, std::memory_order_relaxed)) {
    }
  };
  for (;;) {
    Result<Frame> frame = ReadFrame(p.sock);
    if (!frame.ok()) {
      MarkDead(peer_index);
      return;
    }
    switch (frame->type) {
      case FrameType::kData: {
        Result<runtime::WireBatch> batch = DecodeWireBatch(frame->payload);
        if (!batch.ok()) {
          MarkDead(peer_index);
          return;
        }
        {
          std::lock_guard<std::mutex> lock(mu_);
          observe(*frame);
          inflight_bytes_ += batch->payload.size();
          data_.push_back(std::move(*batch));
        }
        cv_.notify_all();
        if (ack_data_) {
          std::lock_guard<std::mutex> wlock(p.write_mu);
          (void)WriteFrame(p.sock, FrameType::kDataAck);
        }
        break;
      }
      case FrameType::kStateUpdate: {
        Result<StateUpdateMsg> update = DecodeStateUpdate(frame->payload);
        if (!update.ok()) {
          MarkDead(peer_index);
          return;
        }
        {
          std::lock_guard<std::mutex> lock(mu_);
          observe(*frame);
          inflight_bytes_ += update->states.size() + update->virtuals.size();
          updates_.push_back(std::move(*update));
        }
        cv_.notify_all();
        if (ack_data_) {
          std::lock_guard<std::mutex> wlock(p.write_mu);
          (void)WriteFrame(p.sock, FrameType::kDataAck);
        }
        break;
      }
      case FrameType::kEos: {
        Result<SeqMsg> eos = DecodeSeq(frame->payload);
        if (!eos.ok()) {
          MarkDead(peer_index);
          return;
        }
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (eos->seq > p.eos_seq) {
            p.eos_seq = eos->seq;
          }
          if (p.window.frames > 0) {
            RoundLinkStat stat;
            stat.seq = eos->seq;
            stat.from_proc = peer_index;
            stat.frames = p.window.frames;
            stat.bytes = p.window.bytes;
            stat.latency_sum_us = p.window.latency_sum_us;
            stat.latency_max_us = p.window.latency_max_us;
            stat.first_send_us = p.window.first_send_us;
            stat.last_recv_us = p.window.last_recv_us;
            link_stats_.push_back(stat);
            p.window = LinkWindow{};
          }
        }
        cv_.notify_all();
        break;
      }
      case FrameType::kDataAck: {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++p.acked;
        }
        cv_.notify_all();
        break;
      }
      default:
        break;  // unknown mesh frame: ignore (forward compatibility)
    }
  }
}

void WorkerTransport::MarkDead(uint32_t peer_index) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    peers_[peer_index]->dead = true;
  }
  cv_.notify_all();
}

}  // namespace net
}  // namespace surfer
