#include "net/transport.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <poll.h>
#include <string>
#include <sys/socket.h>
#include <utility>

namespace surfer {
namespace net {

namespace {

std::atomic<bool> g_sigterm{false};

void SigtermHandler(int) { g_sigterm.store(true, std::memory_order_relaxed); }

}  // namespace

void InstallWorkerSignalHandlers() {
  g_sigterm.store(false, std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = SigtermHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked reads must surface EINTR
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);
}

const std::atomic<bool>* SigtermFlag() { return &g_sigterm; }

WorkerTransport::WorkerTransport(uint32_t proc, Socket control)
    : proc_(proc), control_(std::move(control)) {}

Status WorkerTransport::Handshake(PlacementMsg* placement_out) {
  SURFER_ASSIGN_OR_RETURN(listener_, Listener::Bind());
  HelloMsg hello;
  hello.proc = proc_;
  hello.mesh_port = listener_.port();
  SURFER_RETURN_IF_ERROR(
      WriteFrame(control_, FrameType::kHello, EncodeHello(hello)));

  SURFER_ASSIGN_OR_RETURN(Frame peers_frame, ReadFrame(control_));
  if (peers_frame.type != FrameType::kPeers) {
    return Status::Internal("expected kPeers during handshake");
  }
  SURFER_ASSIGN_OR_RETURN(PeersMsg peers, DecodePeers(peers_frame.payload));

  SURFER_ASSIGN_OR_RETURN(Frame placement_frame, ReadFrame(control_));
  if (placement_frame.type != FrameType::kPlacement) {
    return Status::Internal("expected kPlacement during handshake");
  }
  SURFER_ASSIGN_OR_RETURN(*placement_out,
                          DecodePlacement(placement_frame.payload));
  ack_data_ = placement_out->fault_tolerant != 0;

  num_procs_ = static_cast<uint32_t>(peers.ports.size());
  peers_.clear();
  for (uint32_t i = 0; i < num_procs_; ++i) {
    peers_.push_back(std::make_unique<Peer>());
  }

  // Rendezvous: every worker's listener existed before its kHello, and the
  // coordinator broadcast kPeers only after collecting every kHello — so
  // dialing any peer's port now cannot race its bind. Process i dials every
  // j < i and accepts every j > i: exactly one TCP connection per unordered
  // pair.
  for (uint32_t j = 0; j < proc_; ++j) {
    SURFER_ASSIGN_OR_RETURN(Socket sock, ConnectLocal(peers.ports[j]));
    SeqMsg id;
    id.src_proc = proc_;
    SURFER_RETURN_IF_ERROR(
        WriteFrame(sock, FrameType::kMeshHello, EncodeSeq(id)));
    peers_[j]->sock = std::move(sock);
  }
  for (uint32_t j = proc_ + 1; j < num_procs_; ++j) {
    SURFER_ASSIGN_OR_RETURN(Socket sock, listener_.Accept());
    SURFER_ASSIGN_OR_RETURN(Frame frame, ReadFrame(sock));
    if (frame.type != FrameType::kMeshHello) {
      return Status::Internal("expected kMeshHello on mesh accept");
    }
    SURFER_ASSIGN_OR_RETURN(SeqMsg id, DecodeSeq(frame.payload));
    if (id.src_proc >= num_procs_ || id.src_proc <= proc_ ||
        peers_[id.src_proc]->sock.valid()) {
      return Status::Internal("mesh hello from unexpected process " +
                              std::to_string(id.src_proc));
    }
    peers_[id.src_proc]->sock = std::move(sock);
  }
  listener_.Close();

  // Receiver threads inherit the spawn-time signal mask; block SIGTERM
  // around the spawn so only the main thread ever takes the interrupt.
  sigset_t block, old;
  sigemptyset(&block);
  sigaddset(&block, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &block, &old);
  for (uint32_t j = 0; j < num_procs_; ++j) {
    if (j == proc_) {
      continue;
    }
    peers_[j]->receiver = std::thread([this, j] { ReceiverLoop(j); });
    peers_[j]->receiver.detach();
  }
  pthread_sigmask(SIG_SETMASK, &old, nullptr);

  return WriteFrame(control_, FrameType::kReady);
}

Result<Frame> WorkerTransport::ReadControl() {
  // Poll-then-read instead of relying on EINTR alone: a SIGTERM that lands
  // between the flag check and the read syscall would otherwise leave the
  // worker blocked forever with the flag already set.
  for (;;) {
    if (SigtermFlag()->load(std::memory_order_relaxed)) {
      return Status::Unavailable("control read interrupted by SIGTERM");
    }
    pollfd fd{control_.fd(), POLLIN, 0};
    const int rc = ::poll(&fd, 1, 100);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IOError("poll on control socket failed");
    }
    if (rc == 0) {
      continue;
    }
    return ReadFrame(control_, SigtermFlag());
  }
}

Status WorkerTransport::SendControl(FrameType type,
                                    const std::vector<uint8_t>& payload) {
  return WriteFrame(control_, type, payload);
}

Status WorkerTransport::SendControl(FrameType type) {
  return WriteFrame(control_, type);
}

Status WorkerTransport::SendPeer(uint32_t peer, FrameType type,
                                 const std::vector<uint8_t>& payload) {
  Peer& p = *peers_[peer];
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (p.dead) {
      return Status::OK();
    }
  }
  Status st;
  {
    std::lock_guard<std::mutex> wlock(p.write_mu);
    st = WriteFrame(p.sock, type, payload);
  }
  if (!st.ok()) {
    // Peer death is reported through liveness (the receiver thread sees the
    // EOF too); the send itself succeeds-by-dropping.
    MarkDead(peer);
    return Status::OK();
  }
  p.frames_sent.fetch_add(1, std::memory_order_relaxed);
  if (ack_data_ &&
      (type == FrameType::kData || type == FrameType::kStateUpdate)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++p.sent_acked;
  }
  return Status::OK();
}

Status WorkerTransport::BroadcastEos(uint32_t seq) {
  SeqMsg msg;
  msg.seq = seq;
  msg.src_proc = proc_;
  const std::vector<uint8_t> payload = EncodeSeq(msg);
  for (uint32_t j = 0; j < num_procs_; ++j) {
    if (j == proc_) {
      continue;
    }
    SURFER_RETURN_IF_ERROR(SendPeer(j, FrameType::kEos, payload));
  }
  return Status::OK();
}

bool WorkerTransport::TryPopData(runtime::WireBatch* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (data_.empty()) {
    return false;
  }
  *out = std::move(data_.front());
  data_.pop_front();
  return true;
}

bool WorkerTransport::TryPopUpdate(StateUpdateMsg* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (updates_.empty()) {
    return false;
  }
  *out = std::move(updates_.front());
  updates_.pop_front();
  return true;
}

bool WorkerTransport::RoundDrained(uint32_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t j = 0; j < num_procs_; ++j) {
    if (j == proc_) {
      continue;
    }
    const Peer& p = *peers_[j];
    if (!p.dead && p.eos_seq < seq) {
      return false;
    }
  }
  return true;
}

void WorkerTransport::WaitActivity() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(50));
}

Status WorkerTransport::WaitDataAcked() {
  if (!ack_data_) {
    return Status::OK();
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    for (uint32_t j = 0; j < num_procs_; ++j) {
      if (j == proc_) {
        continue;
      }
      const Peer& p = *peers_[j];
      if (!p.dead && p.acked < p.sent_acked) {
        return false;
      }
    }
    return true;
  });
  return Status::OK();
}

uint64_t WorkerTransport::tcp_bytes_sent() const {
  uint64_t total = 0;
  for (const auto& p : peers_) {
    if (p != nullptr && p->sock.valid()) {
      total += p->sock.bytes_written();
    }
  }
  return total;
}

uint64_t WorkerTransport::tcp_frames_sent() const {
  uint64_t total = 0;
  for (const auto& p : peers_) {
    if (p != nullptr) {
      total += p->frames_sent.load(std::memory_order_relaxed);
    }
  }
  return total;
}

uint64_t WorkerTransport::ApproxMailboxDepth() {
  std::lock_guard<std::mutex> lock(mu_);
  return data_.size() + updates_.size();
}

void WorkerTransport::CloseAll() {
  for (auto& p : peers_) {
    if (p != nullptr && p->sock.valid()) {
      ::shutdown(p->sock.fd(), SHUT_RDWR);
    }
  }
  if (control_.valid()) {
    ::shutdown(control_.fd(), SHUT_RDWR);
  }
}

void WorkerTransport::ReceiverLoop(uint32_t peer_index) {
  Peer& p = *peers_[peer_index];
  for (;;) {
    Result<Frame> frame = ReadFrame(p.sock);
    if (!frame.ok()) {
      MarkDead(peer_index);
      return;
    }
    switch (frame->type) {
      case FrameType::kData: {
        Result<runtime::WireBatch> batch = DecodeWireBatch(frame->payload);
        if (!batch.ok()) {
          MarkDead(peer_index);
          return;
        }
        {
          std::lock_guard<std::mutex> lock(mu_);
          data_.push_back(std::move(*batch));
        }
        cv_.notify_all();
        if (ack_data_) {
          std::lock_guard<std::mutex> wlock(p.write_mu);
          (void)WriteFrame(p.sock, FrameType::kDataAck);
        }
        break;
      }
      case FrameType::kStateUpdate: {
        Result<StateUpdateMsg> update = DecodeStateUpdate(frame->payload);
        if (!update.ok()) {
          MarkDead(peer_index);
          return;
        }
        {
          std::lock_guard<std::mutex> lock(mu_);
          updates_.push_back(std::move(*update));
        }
        cv_.notify_all();
        if (ack_data_) {
          std::lock_guard<std::mutex> wlock(p.write_mu);
          (void)WriteFrame(p.sock, FrameType::kDataAck);
        }
        break;
      }
      case FrameType::kEos: {
        Result<SeqMsg> eos = DecodeSeq(frame->payload);
        if (!eos.ok()) {
          MarkDead(peer_index);
          return;
        }
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (eos->seq > p.eos_seq) {
            p.eos_seq = eos->seq;
          }
        }
        cv_.notify_all();
        break;
      }
      case FrameType::kDataAck: {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++p.acked;
        }
        cv_.notify_all();
        break;
      }
      default:
        break;  // unknown mesh frame: ignore (forward compatibility)
    }
  }
}

void WorkerTransport::MarkDead(uint32_t peer_index) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    peers_[peer_index]->dead = true;
  }
  cv_.notify_all();
}

}  // namespace net
}  // namespace surfer
