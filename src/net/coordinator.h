#ifndef SURFER_NET_COORDINATOR_H_
#define SURFER_NET_COORDINATOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <sys/types.h>
#include <vector>

#include "common/result.h"
#include "graph/types.h"
#include "net/control.h"
#include "net/socket.h"
#include "runtime/timeline.h"
#include "storage/replication.h"

namespace surfer {
namespace net {

/// Everything the coordinator needs to drive a distributed run; the
/// app-typed executor builds this and supplies a fork entry point.
struct CoordinatorParams {
  uint32_t num_processes = 0;
  uint32_t num_machines = 0;
  int iterations = 1;
  /// Broadcast to every worker after the hello round; fault_tolerant and the
  /// fault plans inside gate the recovery machinery on both sides.
  PlacementMsg placement;
  /// The replica table behind `placement` (not owned); the coordinator's
  /// source of first-alive-replica assignment.
  const ReplicatedPlacement* replicas = nullptr;
  /// Deliver a real SIGTERM to the process hosting this machine right before
  /// the given iteration (graceful-decommission drill); kInvalidMachine = off.
  MachineId sigterm_machine = kInvalidMachine;
  int sigterm_iteration = 0;
  /// Online straggler detection: a process still holding up a round after
  /// straggler_multiple x the trailing-median round duration (with an
  /// absolute floor so microsecond rounds don't false-flag) is logged and
  /// counted. Detection needs a few completed rounds of history first.
  double straggler_multiple = 4.0;
  uint32_t straggler_min_ms = 250;
  /// Live-status sink: called with the freshly rendered status table
  /// whenever a heartbeat lands or a straggler is flagged (surfer_dist
  /// --watch wires this to stderr; CI tees it to a file). Null = off.
  std::function<void(const std::string&)> status_sink;
};

/// What a completed coordinator run hands back to the executor.
struct CoordinatorOutcome {
  /// Workers' counters summed; link_bytes is the full M x M matrix.
  WorkerStatsMsg totals;
  uint32_t machine_failures = 0;
  uint64_t rounds = 0;           ///< BSP rounds driven (>= 2 per iteration)
  uint64_t recovery_rounds = 0;  ///< re-assignment + resend rounds
  std::vector<uint8_t> alive;    ///< final per-machine liveness
  /// Per-partition final states as received, possibly several versions of
  /// the same partition from different replica holders; the executor keeps
  /// the highest-version copy.
  std::vector<FinalStateMsg> states;
  std::vector<FinalVirtualMsg> virtuals;
  /// Per-process run-report JSON (empty string for processes that died).
  std::vector<std::string> worker_reports;
  /// Peak worker-process RSS reported at finalize (max across processes).
  uint64_t peak_worker_rss_bytes = 0;
  /// Per-process finalize stats, unsummed (default-constructed for dead
  /// processes): the executor needs each worker's clock-offset table and
  /// round link stats individually for the cluster critical path.
  std::vector<WorkerStatsMsg> worker_stats;
  /// Coordinator-clock timing of every round driven, in order.
  std::vector<runtime::ClusterRoundRecord> round_records;
  /// (round, process) pairs the online detector flagged as stragglers.
  uint64_t stragglers_flagged = 0;
};

/// Parent-process side of the distributed engine: forks one worker process
/// per simulated machine group, runs the setup rendezvous (hello -> peers ->
/// placement -> ready), then drives the BSP barrier over control frames.
///
/// Per stage it assigns every pending partition to its first alive replica
/// holder and broadcasts a kRound; workers report kTaskDone per task and
/// kRoundDone when their round (work + mesh drain) is complete. A worker
/// process that dies — fault-plan self-kill, delivered SIGTERM, or crash —
/// surfaces as EOF on its control socket; the coordinator marks its hosted
/// machines dead, treats its round as implicitly done, and schedules
/// recovery: re-assignment rounds for unexecuted tasks, and resend rounds
/// (retained-batch replay + transfer re-execution) to rebuild the inboxes of
/// partitions whose holders died before combining. A death in a
/// non-fault-tolerant run aborts the job instead.
class DistributedCoordinator {
 public:
  /// Runs the worker side in the forked child. Must never return; the child
  /// _exits. Receives the child's process index and control socket.
  using WorkerEntry = std::function<void(uint32_t proc, Socket control)>;

  DistributedCoordinator(CoordinatorParams params, WorkerEntry entry);

  /// Spawns, drives, collects, shuts down. Always reaps every child before
  /// returning, also on error.
  Result<CoordinatorOutcome> Run();

 private:
  struct Proc {
    pid_t pid = -1;
    Socket control;
    bool alive = false;
    bool reaped = false;
  };

  struct Event {
    bool death = false;
    uint32_t proc = 0;
    Frame frame;
  };

  Status Spawn();
  Status HandshakeAll();
  Status RunBsp(CoordinatorOutcome* out);
  Status RunStage(RoundKind stage_kind, int iteration,
                  CoordinatorOutcome* out);
  /// Broadcasts one round and pumps control events until every alive
  /// process reported kRoundDone. `deaths` counts processes lost mid-round.
  Status DriveRound(RoundMsg round, CoordinatorOutcome* out, int* deaths);
  Status Finalize(CoordinatorOutcome* out);
  void Shutdown();

  Result<Event> WaitControlEvent();
  /// Marks a process (and its hosted machines) dead and reaps it. Returns an
  /// error when the run is not fault tolerant.
  Status MarkProcDead(uint32_t proc);
  void ReapChild(Proc& proc, bool force_kill_after_grace);
  Status DeliverSigterm(CoordinatorOutcome* out);

  /// Live health plane: folds one heartbeat into the status table and
  /// pushes the re-rendered table to the sink.
  void NoteHeartbeat(uint32_t proc, const HeartbeatMsg& hb);
  /// Flags processes still holding up the current round once its elapsed
  /// time exceeds the trailing-median threshold; called on every control
  /// event while a round is in flight.
  void CheckStragglers(const RoundMsg& round, const std::vector<uint8_t>& expect,
                       uint64_t started_us, CoordinatorOutcome* out);
  std::string RenderStatusTable() const;
  void EmitStatus();

  bool HostsMachine(uint32_t proc, MachineId m) const {
    return m % params_.num_processes == proc;
  }

  CoordinatorParams params_;
  WorkerEntry entry_;
  bool fault_tolerant_ = false;

  std::vector<Proc> procs_;
  std::vector<uint8_t> alive_machines_;
  uint32_t seq_ = 0;
  uint32_t machine_failures_ = 0;
  bool sigterm_delivered_ = false;

  /// Live health plane state.
  struct LiveProc {
    HeartbeatMsg hb;
    uint64_t hb_recv_us = 0;  ///< 0 = no heartbeat yet
    bool straggler = false;   ///< flagged in the round currently in flight
  };
  std::vector<LiveProc> live_;
  std::deque<double> round_durations_s_;  ///< trailing completed rounds
  uint64_t stragglers_flagged_ = 0;

  // Per-stage scheduling state.
  std::vector<uint8_t> done_;
  /// holders_[p]: machines that may hold chunks of p's inbox this iteration
  /// (transfer-round routes, collapsed to the resend assignee after a clean
  /// resend). Any dead holder means p's inbox must be rebuilt.
  std::vector<std::vector<MachineId>> holders_;
  /// transfer_exec_[q]: machine whose process holds q's retained transfer
  /// output (last reported executor). Dead executor => re-execute during the
  /// next resend round.
  std::vector<MachineId> transfer_exec_;
};

}  // namespace net
}  // namespace surfer

#endif  // SURFER_NET_COORDINATOR_H_
