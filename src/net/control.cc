#include "net/control.h"

#include "runtime/wire_batch.h"

namespace surfer {
namespace net {

using runtime::AppendPod;

namespace {

template <typename T>
void AppendVector(std::vector<uint8_t>& out, const std::vector<T>& values) {
  static_assert(std::is_trivially_copyable_v<T>);
  AppendPod(out, static_cast<uint32_t>(values.size()));
  const size_t offset = out.size();
  out.resize(offset + values.size() * sizeof(T));
  if (!values.empty()) {
    std::memcpy(out.data() + offset, values.data(),
                values.size() * sizeof(T));
  }
}

template <typename T>
Status ReadVector(PayloadReader& reader, std::vector<T>* values) {
  static_assert(std::is_trivially_copyable_v<T>);
  uint32_t count = 0;
  SURFER_RETURN_IF_ERROR(reader.Read(&count));
  if (static_cast<size_t>(count) * sizeof(T) > reader.remaining()) {
    return Status::Corruption("control vector length exceeds payload");
  }
  values->resize(count);
  if (count > 0) {
    SURFER_RETURN_IF_ERROR(
        reader.ReadBytes(values->data(), count * sizeof(T)));
  }
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> EncodeHello(const HelloMsg& msg) {
  std::vector<uint8_t> out;
  AppendPod(out, msg.proc);
  AppendPod(out, msg.mesh_port);
  return out;
}

Result<HelloMsg> DecodeHello(const std::vector<uint8_t>& payload) {
  PayloadReader reader(payload);
  HelloMsg msg;
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.proc));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.mesh_port));
  return msg;
}

std::vector<uint8_t> EncodePeers(const PeersMsg& msg) {
  std::vector<uint8_t> out;
  AppendVector(out, msg.ports);
  return out;
}

Result<PeersMsg> DecodePeers(const std::vector<uint8_t>& payload) {
  PayloadReader reader(payload);
  PeersMsg msg;
  SURFER_RETURN_IF_ERROR(ReadVector(reader, &msg.ports));
  return msg;
}

std::vector<uint8_t> EncodePlacement(const PlacementMsg& msg) {
  std::vector<uint8_t> out;
  AppendPod(out, msg.num_machines);
  AppendPod(out, msg.num_partitions);
  AppendPod(out, msg.replication);
  AppendPod(out, msg.fault_tolerant);
  AppendVector(out, msg.replicas);
  AppendPod(out, static_cast<uint32_t>(msg.faults.size()));
  for (const runtime::RuntimeFaultPlan& plan : msg.faults) {
    AppendPod(out, static_cast<uint32_t>(plan.machine));
    AppendPod(out, static_cast<int32_t>(plan.iteration));
    AppendPod(out, static_cast<uint8_t>(plan.stage));
    AppendPod(out, plan.after_tasks);
  }
  AppendPod(out, msg.heartbeat_period_ms);
  AppendPod(out, msg.clock_sync_pings);
  AppendPod(out, msg.stall_proc);
  AppendPod(out, msg.stall_iteration);
  AppendPod(out, msg.stall_ms);
  return out;
}

Result<PlacementMsg> DecodePlacement(const std::vector<uint8_t>& payload) {
  PayloadReader reader(payload);
  PlacementMsg msg;
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.num_machines));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.num_partitions));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.replication));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.fault_tolerant));
  SURFER_RETURN_IF_ERROR(ReadVector(reader, &msg.replicas));
  uint32_t fault_count = 0;
  SURFER_RETURN_IF_ERROR(reader.Read(&fault_count));
  msg.faults.resize(fault_count);
  for (runtime::RuntimeFaultPlan& plan : msg.faults) {
    uint32_t machine = 0;
    int32_t iteration = 0;
    uint8_t stage = 0;
    SURFER_RETURN_IF_ERROR(reader.Read(&machine));
    SURFER_RETURN_IF_ERROR(reader.Read(&iteration));
    SURFER_RETURN_IF_ERROR(reader.Read(&stage));
    SURFER_RETURN_IF_ERROR(reader.Read(&plan.after_tasks));
    plan.machine = machine;
    plan.iteration = iteration;
    plan.stage = static_cast<runtime::RuntimeStage>(stage);
  }
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.heartbeat_period_ms));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.clock_sync_pings));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.stall_proc));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.stall_iteration));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.stall_ms));
  return msg;
}

std::vector<uint8_t> EncodeRound(const RoundMsg& msg) {
  std::vector<uint8_t> out;
  AppendPod(out, msg.seq);
  AppendPod(out, msg.iteration);
  AppendPod(out, static_cast<uint8_t>(msg.kind));
  AppendPod(out, msg.recovery);
  AppendVector(out, msg.alive);
  AppendVector(out, msg.exec);
  AppendVector(out, msg.route);
  AppendVector(out, msg.reexec);
  return out;
}

Result<RoundMsg> DecodeRound(const std::vector<uint8_t>& payload) {
  PayloadReader reader(payload);
  RoundMsg msg;
  uint8_t kind = 0;
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.seq));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.iteration));
  SURFER_RETURN_IF_ERROR(reader.Read(&kind));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.recovery));
  msg.kind = static_cast<RoundKind>(kind);
  SURFER_RETURN_IF_ERROR(ReadVector(reader, &msg.alive));
  SURFER_RETURN_IF_ERROR(ReadVector(reader, &msg.exec));
  SURFER_RETURN_IF_ERROR(ReadVector(reader, &msg.route));
  SURFER_RETURN_IF_ERROR(ReadVector(reader, &msg.reexec));
  return msg;
}

std::vector<uint8_t> EncodeTaskDone(const TaskDoneMsg& msg) {
  std::vector<uint8_t> out;
  AppendPod(out, msg.partition);
  AppendPod(out, msg.machine);
  AppendPod(out, msg.iteration);
  AppendPod(out, msg.kind);
  return out;
}

Result<TaskDoneMsg> DecodeTaskDone(const std::vector<uint8_t>& payload) {
  PayloadReader reader(payload);
  TaskDoneMsg msg;
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.partition));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.machine));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.iteration));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.kind));
  return msg;
}

std::vector<uint8_t> EncodeSeq(const SeqMsg& msg) {
  std::vector<uint8_t> out;
  AppendPod(out, msg.seq);
  AppendPod(out, msg.src_proc);
  return out;
}

Result<SeqMsg> DecodeSeq(const std::vector<uint8_t>& payload) {
  PayloadReader reader(payload);
  SeqMsg msg;
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.seq));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.src_proc));
  return msg;
}

std::vector<uint8_t> EncodeHeartbeat(const HeartbeatMsg& msg) {
  std::vector<uint8_t> out;
  AppendPod(out, msg.proc);
  AppendPod(out, msg.stage);
  AppendPod(out, msg.iteration);
  AppendPod(out, msg.round_seq);
  AppendPod(out, msg.mailbox_frames);
  AppendPod(out, msg.inflight_bytes);
  AppendPod(out, msg.staged_wire_bytes);
  AppendPod(out, msg.rss_bytes);
  AppendPod(out, msg.barrier_waiting);
  AppendPod(out, msg.unix_us);
  return out;
}

Result<HeartbeatMsg> DecodeHeartbeat(const std::vector<uint8_t>& payload) {
  PayloadReader reader(payload);
  HeartbeatMsg msg;
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.proc));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.stage));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.iteration));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.round_seq));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.mailbox_frames));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.inflight_bytes));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.staged_wire_bytes));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.rss_bytes));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.barrier_waiting));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.unix_us));
  return msg;
}

std::vector<uint8_t> EncodeClockPing(const ClockPingMsg& msg) {
  std::vector<uint8_t> out;
  AppendPod(out, msg.seq);
  return out;
}

Result<ClockPingMsg> DecodeClockPing(const std::vector<uint8_t>& payload) {
  PayloadReader reader(payload);
  ClockPingMsg msg;
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.seq));
  return msg;
}

std::vector<uint8_t> EncodeClockPong(const ClockPongMsg& msg) {
  std::vector<uint8_t> out;
  AppendPod(out, msg.seq);
  AppendPod(out, msg.t1);
  AppendPod(out, msg.t2);
  return out;
}

Result<ClockPongMsg> DecodeClockPong(const std::vector<uint8_t>& payload) {
  PayloadReader reader(payload);
  ClockPongMsg msg;
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.seq));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.t1));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.t2));
  return msg;
}

std::vector<uint8_t> EncodeClockOffset(const ClockOffsetMsg& msg) {
  std::vector<uint8_t> out;
  AppendPod(out, msg.offset_us);
  AppendPod(out, msg.uncertainty_us);
  return out;
}

Result<ClockOffsetMsg> DecodeClockOffset(const std::vector<uint8_t>& payload) {
  PayloadReader reader(payload);
  ClockOffsetMsg msg;
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.offset_us));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.uncertainty_us));
  return msg;
}

std::vector<uint8_t> EncodeStateUpdate(const StateUpdateMsg& msg) {
  std::vector<uint8_t> out;
  AppendPod(out, msg.partition);
  AppendPod(out, msg.iteration);
  AppendPod(out, msg.begin);
  AppendPod(out, msg.count);
  AppendVector(out, msg.states);
  AppendPod(out, msg.virtual_count);
  AppendVector(out, msg.virtuals);
  return out;
}

Result<StateUpdateMsg> DecodeStateUpdate(const std::vector<uint8_t>& payload) {
  PayloadReader reader(payload);
  StateUpdateMsg msg;
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.partition));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.iteration));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.begin));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.count));
  SURFER_RETURN_IF_ERROR(ReadVector(reader, &msg.states));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.virtual_count));
  SURFER_RETURN_IF_ERROR(ReadVector(reader, &msg.virtuals));
  return msg;
}

std::vector<uint8_t> EncodeWorkerStats(const WorkerStatsMsg& msg) {
  std::vector<uint8_t> out;
  AppendPod(out, msg.tasks_executed);
  AppendPod(out, msg.tasks_reexecuted);
  AppendPod(out, msg.messages_sent);
  AppendPod(out, msg.buffers_sent);
  AppendPod(out, msg.wire_batches_sent);
  AppendPod(out, msg.wire_segments_sent);
  AppendPod(out, msg.wire_payload_bytes);
  AppendPod(out, msg.wire_messages_combined);
  AppendPod(out, msg.wire_flush_size);
  AppendPod(out, msg.wire_flush_deadline);
  AppendPod(out, msg.wire_flush_stage_end);
  AppendPod(out, msg.pool_buffers_acquired);
  AppendPod(out, msg.pool_buffers_reused);
  AppendPod(out, msg.refetch_bytes);
  AppendPod(out, msg.tcp_bytes_sent);
  AppendPod(out, msg.tcp_frames_sent);
  AppendPod(out, msg.resend_bytes);
  AppendPod(out, msg.replication_bytes);
  AppendPod(out, msg.combine_messages_scattered);
  AppendPod(out, msg.frontier_vertices_skipped);
  AppendPod(out, msg.combine_scatter_micros);
  AppendPod(out, msg.peak_rss_bytes);
  AppendPod(out, msg.heartbeats_sent);
  AppendPod(out, msg.clock_synced);
  AppendVector(out, msg.link_bytes);
  AppendVector(out, msg.clock_offset_us);
  AppendVector(out, msg.clock_uncertainty_us);
  AppendVector(out, msg.round_link_stats);
  return out;
}

Result<WorkerStatsMsg> DecodeWorkerStats(const std::vector<uint8_t>& payload) {
  PayloadReader reader(payload);
  WorkerStatsMsg msg;
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.tasks_executed));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.tasks_reexecuted));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.messages_sent));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.buffers_sent));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.wire_batches_sent));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.wire_segments_sent));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.wire_payload_bytes));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.wire_messages_combined));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.wire_flush_size));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.wire_flush_deadline));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.wire_flush_stage_end));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.pool_buffers_acquired));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.pool_buffers_reused));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.refetch_bytes));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.tcp_bytes_sent));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.tcp_frames_sent));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.resend_bytes));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.replication_bytes));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.combine_messages_scattered));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.frontier_vertices_skipped));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.combine_scatter_micros));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.peak_rss_bytes));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.heartbeats_sent));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.clock_synced));
  SURFER_RETURN_IF_ERROR(ReadVector(reader, &msg.link_bytes));
  SURFER_RETURN_IF_ERROR(ReadVector(reader, &msg.clock_offset_us));
  SURFER_RETURN_IF_ERROR(ReadVector(reader, &msg.clock_uncertainty_us));
  SURFER_RETURN_IF_ERROR(ReadVector(reader, &msg.round_link_stats));
  return msg;
}

std::vector<uint8_t> EncodeFinalState(const FinalStateMsg& msg) {
  std::vector<uint8_t> out;
  AppendPod(out, msg.partition);
  AppendPod(out, msg.version);
  AppendPod(out, msg.begin);
  AppendPod(out, msg.count);
  AppendVector(out, msg.states);
  return out;
}

Result<FinalStateMsg> DecodeFinalState(const std::vector<uint8_t>& payload) {
  PayloadReader reader(payload);
  FinalStateMsg msg;
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.partition));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.version));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.begin));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.count));
  SURFER_RETURN_IF_ERROR(ReadVector(reader, &msg.states));
  return msg;
}

std::vector<uint8_t> EncodeFinalVirtual(const FinalVirtualMsg& msg) {
  std::vector<uint8_t> out;
  AppendPod(out, msg.entry_bytes);
  AppendPod(out, msg.count);
  AppendVector(out, msg.entries);
  return out;
}

Result<FinalVirtualMsg> DecodeFinalVirtual(
    const std::vector<uint8_t>& payload) {
  PayloadReader reader(payload);
  FinalVirtualMsg msg;
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.entry_bytes));
  SURFER_RETURN_IF_ERROR(reader.Read(&msg.count));
  SURFER_RETURN_IF_ERROR(ReadVector(reader, &msg.entries));
  return msg;
}

}  // namespace net
}  // namespace surfer
