#ifndef SURFER_NET_SOCKET_H_
#define SURFER_NET_SOCKET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "common/result.h"

namespace surfer {
namespace net {

/// Thin RAII wrapper over a POSIX stream socket (TCP on 127.0.0.1 for the
/// distributed mesh, AF_UNIX socketpairs for the coordinator control plane
/// and for tests). All transfer goes through ReadFull/WriteFull: explicit
/// loops that survive partial reads, short writes, and EINTR — the wire
/// frame layer above assumes a byte range either arrives whole or fails
/// with a diagnosable Status.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept { *this = std::move(other); }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      bytes_read_ = other.bytes_read_;
      bytes_written_ = other.bytes_written_;
      frame_seq_ = other.frame_seq_;
      other.fd_ = -1;
      other.bytes_read_ = 0;
      other.bytes_written_ = 0;
      other.frame_seq_ = 0;
    }
    return *this;
  }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Releases ownership of the descriptor without closing it.
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Reads exactly `len` bytes, looping over partial reads and retrying
  /// EINTR. A clean EOF before the first byte returns kUnavailable (the
  /// peer closed between messages); EOF mid-buffer returns kCorruption (a
  /// torn message — the peer died mid-frame). When `interrupt` is non-null
  /// and set, an EINTR wakeup returns kUnavailable("interrupted") instead
  /// of retrying, which is how a SIGTERM'd worker escapes a blocking
  /// control read to run its graceful shutdown.
  Status ReadFull(void* buf, size_t len,
                  const std::atomic<bool>* interrupt = nullptr);

  /// Writes exactly `len` bytes, looping over short writes and EINTR. Uses
  /// MSG_NOSIGNAL so a dead peer surfaces as kUnavailable (EPIPE /
  /// ECONNRESET), never as a process-killing SIGPIPE.
  Status WriteFull(const void* buf, size_t len);

  /// Gross bytes moved through this socket (payload + anything the caller
  /// framed around it); feeds the per-process TCP accounting.
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t bytes_written() const { return bytes_written_; }

  /// Monotone per-link frame sequence number, stamped into every frame
  /// header written on this socket. Callers already serialize writes per
  /// link (write_mu in the transport, single writer on control sockets), so
  /// a plain counter is sufficient.
  uint64_t NextFrameSeq() { return ++frame_seq_; }
  uint64_t frames_written() const { return frame_seq_; }

  /// An AF_UNIX stream socketpair (control plane, unit tests).
  static Result<std::pair<Socket, Socket>> Pair();

 private:
  int fd_ = -1;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t frame_seq_ = 0;
};

/// A TCP listener bound to 127.0.0.1 (port 0 = kernel-assigned ephemeral
/// port, the default for the distributed mesh rendezvous).
class Listener {
 public:
  static Result<Listener> Bind(uint16_t port = 0, int backlog = 64);

  Listener() = default;
  Listener(Listener&&) = default;
  Listener& operator=(Listener&&) = default;

  uint16_t port() const { return port_; }
  bool valid() const { return sock_.valid(); }
  void Close() { sock_.Close(); }

  Result<Socket> Accept();

 private:
  Socket sock_;
  uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:`port`, retrying ECONNREFUSED until `timeout_s`
/// elapses (the listener side may still be between bind and listen).
Result<Socket> ConnectLocal(uint16_t port, double timeout_s = 10.0);

}  // namespace net
}  // namespace surfer

#endif  // SURFER_NET_SOCKET_H_
