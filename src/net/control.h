#ifndef SURFER_NET_CONTROL_H_
#define SURFER_NET_CONTROL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/types.h"
#include "net/frame.h"
#include "runtime/fault.h"

namespace surfer {
namespace net {

/// What a BSP round asks the workers to do. kTransfer and kCombine map to
/// the two halves of a superstep; kResend is the recovery-only round that
/// rebuilds a re-homed partition's inbox (retained-batch resend plus
/// re-execution of transfer tasks whose producer died) before its combine
/// task runs on the first alive replica.
enum class RoundKind : uint8_t {
  kTransfer = 0,
  kCombine = 1,
  kResend = 2,
};

/// worker -> coordinator, first control frame: which process this is and
/// where its mesh listener is.
struct HelloMsg {
  uint32_t proc = 0;
  uint16_t mesh_port = 0;
};

/// coordinator -> workers: every process's mesh listener port, indexed by
/// process. Workers build the full mesh from this (process i dials every
/// j < i, accepts from every j > i).
struct PeersMsg {
  std::vector<uint16_t> ports;
};

/// coordinator -> workers: the replica placement table (row-major partition
/// x replica machine ids) and the fault schedule. The placement crossing the
/// control plane — rather than being inherited through fork — is what makes
/// the coordinator the single source of truth for task routing.
struct PlacementMsg {
  uint32_t num_machines = 0;
  uint32_t num_partitions = 0;
  uint32_t replication = 0;
  /// Faults (or a scheduled SIGTERM) are possible this run: workers retain
  /// sent batches for resend and replicate post-combine state to replica
  /// holders. Off on clean runs so the no-fault path pays nothing.
  uint8_t fault_tolerant = 0;
  std::vector<MachineId> replicas;  ///< partition-major, num_partitions x replication
  std::vector<runtime::RuntimeFaultPlan> faults;
  /// Health-plane knobs. heartbeat_period_ms == 0 disables heartbeats;
  /// clock_sync_pings == 0 disables the handshake clock-offset exchange.
  uint32_t heartbeat_period_ms = 0;
  uint32_t clock_sync_pings = 0;
  /// Straggler-injection knob for tests: process `stall_proc` sleeps
  /// `stall_ms` milliseconds at the start of iteration `stall_iteration`'s
  /// combine stage (UINT32_MAX = no stall).
  uint32_t stall_proc = 0xFFFFFFFFu;
  int32_t stall_iteration = 0;
  uint32_t stall_ms = 0;
};

/// coordinator -> workers: one round of the barrier protocol. `seq` is a
/// global monotone round counter (EOS frames carry it, so drain progress is
/// unambiguous across recovery rounds). `exec[p]` names the machine running
/// partition p's task this round (kInvalidMachine = not scheduled);
/// `route[d]` names the machine to which dst-partition-d traffic must be
/// sent (transfer and resend rounds); `reexec[q]` names the machine that
/// must re-run q's transfer task during a resend round because the original
/// executor died with its retained output.
struct RoundMsg {
  uint32_t seq = 0;
  int32_t iteration = 0;
  RoundKind kind = RoundKind::kTransfer;
  uint8_t recovery = 0;
  std::vector<uint8_t> alive;       ///< per machine
  std::vector<MachineId> exec;      ///< per partition
  std::vector<MachineId> route;     ///< per partition
  std::vector<MachineId> reexec;    ///< per partition
};

/// worker -> coordinator after each completed task.
struct TaskDoneMsg {
  uint32_t partition = 0;
  uint32_t machine = 0;
  int32_t iteration = 0;
  uint8_t kind = 0;  ///< RoundKind of the round the task ran in
};

/// worker -> coordinator (kRoundDone) and worker -> worker (kEos).
struct SeqMsg {
  uint32_t seq = 0;
  uint32_t src_proc = 0;
};

/// worker -> coordinator, periodic (kHeartbeat): a snapshot of the worker's
/// load, sourced from the same providers that feed the TelemetryRecorder
/// gauges. The coordinator folds these into its live status table and the
/// straggler detector; losing one is harmless (the next one supersedes it).
struct HeartbeatMsg {
  uint32_t proc = 0;
  uint32_t stage = 0;          ///< RoundKind of the active round; kIdleStage between rounds
  int32_t iteration = 0;
  uint64_t round_seq = 0;      ///< seq of the round being executed (0 = none yet)
  uint64_t mailbox_frames = 0; ///< undrained inbound frames across all links
  uint64_t inflight_bytes = 0; ///< inbound payload bytes not yet consumed
  uint64_t staged_wire_bytes = 0;  ///< bytes staged for sending
  uint64_t rss_bytes = 0;      ///< 0 when /proc-based sampling is unavailable
  uint32_t barrier_waiting = 0;    ///< 1 while blocked in the EOS drain wait
  uint64_t unix_us = 0;        ///< worker clock when the snapshot was taken
};

/// HeartbeatMsg::stage value meaning "no round is executing".
inline constexpr uint32_t kIdleStage = 0xFFFFFFFFu;

/// Clock-sync session payloads (mesh rendezvous). The interesting
/// timestamps ride in the frame headers, not here: t1 is the ping's
/// send_unix_us, t2 the ping's receive stamp at the server (echoed back in
/// the pong), t3 the pong's own send_unix_us, t4 the pong's receive stamp
/// at the client.
struct ClockPingMsg {
  uint32_t seq = 0;
};
struct ClockPongMsg {
  uint32_t seq = 0;
  uint64_t t1 = 0;  ///< echoed ping send stamp (client clock)
  uint64_t t2 = 0;  ///< ping receive stamp (server clock)
};
/// client -> server at session end: the client's offset estimate so both
/// ends of the link agree (the server stores the negation).
struct ClockOffsetMsg {
  int64_t offset_us = 0;       ///< server clock minus client clock
  uint64_t uncertainty_us = 0; ///< half the minimum observed round trip
};

/// One per-(round, inbound link) latency/queueing record accumulated by the
/// transport receiver threads from frame send/recv stamps. Latencies are in
/// raw clock terms (receiver clock minus sender clock, *not* offset
/// corrected); the analysis side applies the handshake offsets. Laid out
/// padding-free so a vector of them ships raw through the control codec.
struct RoundLinkStat {
  uint64_t seq = 0;            ///< round the frames belonged to
  int32_t iteration = 0;
  uint32_t kind = 0;           ///< RoundKind
  uint32_t from_proc = 0;      ///< sending peer (receiver is the reporting worker)
  uint32_t frames = 0;
  uint64_t bytes = 0;          ///< payload bytes received on the link this round
  int64_t latency_sum_us = 0;  ///< sum of (recv - send) per frame, raw clocks
  int64_t latency_max_us = 0;
  uint64_t first_send_us = 0;  ///< earliest send stamp (sender clock)
  uint64_t last_recv_us = 0;   ///< latest recv stamp (receiver clock)
};
static_assert(std::is_trivially_copyable_v<RoundLinkStat>);
static_assert(sizeof(RoundLinkStat) == 64);

/// worker -> worker after combining a partition (fault-tolerant runs only):
/// the partition's fresh vertex states, and the virtual-vertex outputs its
/// combine produced this iteration, shipped to the partition's other replica
/// holders so a first-alive-replica takeover starts from current state.
struct StateUpdateMsg {
  uint32_t partition = 0;
  int32_t iteration = 0;
  uint32_t begin = 0;       ///< first encoded vertex id of the partition
  uint32_t count = 0;       ///< number of vertices
  std::vector<uint8_t> states;    ///< count * sizeof(VertexState) raw bytes
  uint32_t virtual_count = 0;
  std::vector<uint8_t> virtuals;  ///< virtual_count * (u64 id + VirtualOutput)
};

/// worker -> coordinator at finalize: counters and the worker's additive
/// share of the M x M link matrix.
struct WorkerStatsMsg {
  uint64_t tasks_executed = 0;
  uint64_t tasks_reexecuted = 0;
  uint64_t messages_sent = 0;
  uint64_t buffers_sent = 0;
  uint64_t wire_batches_sent = 0;
  uint64_t wire_segments_sent = 0;
  uint64_t wire_payload_bytes = 0;
  uint64_t wire_messages_combined = 0;
  uint64_t wire_flush_size = 0;
  uint64_t wire_flush_deadline = 0;
  uint64_t wire_flush_stage_end = 0;
  uint64_t pool_buffers_acquired = 0;
  uint64_t pool_buffers_reused = 0;
  uint64_t refetch_bytes = 0;
  uint64_t tcp_bytes_sent = 0;
  uint64_t tcp_frames_sent = 0;
  uint64_t resend_bytes = 0;
  uint64_t replication_bytes = 0;
  uint64_t combine_messages_scattered = 0;
  uint64_t frontier_vertices_skipped = 0;
  uint64_t combine_scatter_micros = 0;  ///< scatter seconds * 1e6, truncated
  uint64_t peak_rss_bytes = 0;
  uint64_t heartbeats_sent = 0;
  uint8_t clock_synced = 0;  ///< handshake ping exchange ran on every link
  std::vector<uint64_t> link_bytes;  ///< row-major M x M, this worker's sends
  /// Estimated peer-clock offsets from the handshake ping exchange, indexed
  /// by process ([self] == 0): offset_us[j] = clock_j - clock_self.
  std::vector<int64_t> clock_offset_us;
  std::vector<uint64_t> clock_uncertainty_us;
  /// Per-(round, inbound link) latency records from frame stamps.
  std::vector<RoundLinkStat> round_link_stats;
};

/// worker -> coordinator at finalize: one partition's final vertex states,
/// stamped with the last iteration whose combine produced them. The
/// coordinator keeps the highest stamp per partition, which is how a replica
/// holder's copy wins over a dead primary's lost one.
struct FinalStateMsg {
  uint32_t partition = 0;
  int32_t version = -1;
  uint32_t begin = 0;
  uint32_t count = 0;
  std::vector<uint8_t> states;
};

/// worker -> coordinator at finalize: iteration-stamped virtual-vertex
/// outputs, entries of (u64 id, i32 version, VirtualOutput bytes).
struct FinalVirtualMsg {
  uint32_t entry_bytes = 0;  ///< sizeof(VirtualOutput)
  uint32_t count = 0;
  std::vector<uint8_t> entries;
};

std::vector<uint8_t> EncodeHello(const HelloMsg& msg);
Result<HelloMsg> DecodeHello(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodePeers(const PeersMsg& msg);
Result<PeersMsg> DecodePeers(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodePlacement(const PlacementMsg& msg);
Result<PlacementMsg> DecodePlacement(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeRound(const RoundMsg& msg);
Result<RoundMsg> DecodeRound(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeTaskDone(const TaskDoneMsg& msg);
Result<TaskDoneMsg> DecodeTaskDone(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeSeq(const SeqMsg& msg);
Result<SeqMsg> DecodeSeq(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeHeartbeat(const HeartbeatMsg& msg);
Result<HeartbeatMsg> DecodeHeartbeat(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeClockPing(const ClockPingMsg& msg);
Result<ClockPingMsg> DecodeClockPing(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeClockPong(const ClockPongMsg& msg);
Result<ClockPongMsg> DecodeClockPong(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeClockOffset(const ClockOffsetMsg& msg);
Result<ClockOffsetMsg> DecodeClockOffset(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeStateUpdate(const StateUpdateMsg& msg);
Result<StateUpdateMsg> DecodeStateUpdate(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeWorkerStats(const WorkerStatsMsg& msg);
Result<WorkerStatsMsg> DecodeWorkerStats(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeFinalState(const FinalStateMsg& msg);
Result<FinalStateMsg> DecodeFinalState(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeFinalVirtual(const FinalVirtualMsg& msg);
Result<FinalVirtualMsg> DecodeFinalVirtual(const std::vector<uint8_t>& payload);

}  // namespace net
}  // namespace surfer

#endif  // SURFER_NET_CONTROL_H_
