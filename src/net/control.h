#ifndef SURFER_NET_CONTROL_H_
#define SURFER_NET_CONTROL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/types.h"
#include "net/frame.h"
#include "runtime/fault.h"

namespace surfer {
namespace net {

/// What a BSP round asks the workers to do. kTransfer and kCombine map to
/// the two halves of a superstep; kResend is the recovery-only round that
/// rebuilds a re-homed partition's inbox (retained-batch resend plus
/// re-execution of transfer tasks whose producer died) before its combine
/// task runs on the first alive replica.
enum class RoundKind : uint8_t {
  kTransfer = 0,
  kCombine = 1,
  kResend = 2,
};

/// worker -> coordinator, first control frame: which process this is and
/// where its mesh listener is.
struct HelloMsg {
  uint32_t proc = 0;
  uint16_t mesh_port = 0;
};

/// coordinator -> workers: every process's mesh listener port, indexed by
/// process. Workers build the full mesh from this (process i dials every
/// j < i, accepts from every j > i).
struct PeersMsg {
  std::vector<uint16_t> ports;
};

/// coordinator -> workers: the replica placement table (row-major partition
/// x replica machine ids) and the fault schedule. The placement crossing the
/// control plane — rather than being inherited through fork — is what makes
/// the coordinator the single source of truth for task routing.
struct PlacementMsg {
  uint32_t num_machines = 0;
  uint32_t num_partitions = 0;
  uint32_t replication = 0;
  /// Faults (or a scheduled SIGTERM) are possible this run: workers retain
  /// sent batches for resend and replicate post-combine state to replica
  /// holders. Off on clean runs so the no-fault path pays nothing.
  uint8_t fault_tolerant = 0;
  std::vector<MachineId> replicas;  ///< partition-major, num_partitions x replication
  std::vector<runtime::RuntimeFaultPlan> faults;
};

/// coordinator -> workers: one round of the barrier protocol. `seq` is a
/// global monotone round counter (EOS frames carry it, so drain progress is
/// unambiguous across recovery rounds). `exec[p]` names the machine running
/// partition p's task this round (kInvalidMachine = not scheduled);
/// `route[d]` names the machine to which dst-partition-d traffic must be
/// sent (transfer and resend rounds); `reexec[q]` names the machine that
/// must re-run q's transfer task during a resend round because the original
/// executor died with its retained output.
struct RoundMsg {
  uint32_t seq = 0;
  int32_t iteration = 0;
  RoundKind kind = RoundKind::kTransfer;
  uint8_t recovery = 0;
  std::vector<uint8_t> alive;       ///< per machine
  std::vector<MachineId> exec;      ///< per partition
  std::vector<MachineId> route;     ///< per partition
  std::vector<MachineId> reexec;    ///< per partition
};

/// worker -> coordinator after each completed task.
struct TaskDoneMsg {
  uint32_t partition = 0;
  uint32_t machine = 0;
  int32_t iteration = 0;
  uint8_t kind = 0;  ///< RoundKind of the round the task ran in
};

/// worker -> coordinator (kRoundDone) and worker -> worker (kEos).
struct SeqMsg {
  uint32_t seq = 0;
  uint32_t src_proc = 0;
};

/// worker -> worker after combining a partition (fault-tolerant runs only):
/// the partition's fresh vertex states, and the virtual-vertex outputs its
/// combine produced this iteration, shipped to the partition's other replica
/// holders so a first-alive-replica takeover starts from current state.
struct StateUpdateMsg {
  uint32_t partition = 0;
  int32_t iteration = 0;
  uint32_t begin = 0;       ///< first encoded vertex id of the partition
  uint32_t count = 0;       ///< number of vertices
  std::vector<uint8_t> states;    ///< count * sizeof(VertexState) raw bytes
  uint32_t virtual_count = 0;
  std::vector<uint8_t> virtuals;  ///< virtual_count * (u64 id + VirtualOutput)
};

/// worker -> coordinator at finalize: counters and the worker's additive
/// share of the M x M link matrix.
struct WorkerStatsMsg {
  uint64_t tasks_executed = 0;
  uint64_t tasks_reexecuted = 0;
  uint64_t messages_sent = 0;
  uint64_t buffers_sent = 0;
  uint64_t wire_batches_sent = 0;
  uint64_t wire_segments_sent = 0;
  uint64_t wire_payload_bytes = 0;
  uint64_t wire_messages_combined = 0;
  uint64_t wire_flush_size = 0;
  uint64_t wire_flush_deadline = 0;
  uint64_t wire_flush_stage_end = 0;
  uint64_t pool_buffers_acquired = 0;
  uint64_t pool_buffers_reused = 0;
  uint64_t refetch_bytes = 0;
  uint64_t tcp_bytes_sent = 0;
  uint64_t tcp_frames_sent = 0;
  uint64_t resend_bytes = 0;
  uint64_t replication_bytes = 0;
  uint64_t combine_messages_scattered = 0;
  uint64_t frontier_vertices_skipped = 0;
  uint64_t combine_scatter_micros = 0;  ///< scatter seconds * 1e6, truncated
  uint64_t peak_rss_bytes = 0;
  std::vector<uint64_t> link_bytes;  ///< row-major M x M, this worker's sends
};

/// worker -> coordinator at finalize: one partition's final vertex states,
/// stamped with the last iteration whose combine produced them. The
/// coordinator keeps the highest stamp per partition, which is how a replica
/// holder's copy wins over a dead primary's lost one.
struct FinalStateMsg {
  uint32_t partition = 0;
  int32_t version = -1;
  uint32_t begin = 0;
  uint32_t count = 0;
  std::vector<uint8_t> states;
};

/// worker -> coordinator at finalize: iteration-stamped virtual-vertex
/// outputs, entries of (u64 id, i32 version, VirtualOutput bytes).
struct FinalVirtualMsg {
  uint32_t entry_bytes = 0;  ///< sizeof(VirtualOutput)
  uint32_t count = 0;
  std::vector<uint8_t> entries;
};

std::vector<uint8_t> EncodeHello(const HelloMsg& msg);
Result<HelloMsg> DecodeHello(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodePeers(const PeersMsg& msg);
Result<PeersMsg> DecodePeers(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodePlacement(const PlacementMsg& msg);
Result<PlacementMsg> DecodePlacement(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeRound(const RoundMsg& msg);
Result<RoundMsg> DecodeRound(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeTaskDone(const TaskDoneMsg& msg);
Result<TaskDoneMsg> DecodeTaskDone(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeSeq(const SeqMsg& msg);
Result<SeqMsg> DecodeSeq(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeStateUpdate(const StateUpdateMsg& msg);
Result<StateUpdateMsg> DecodeStateUpdate(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeWorkerStats(const WorkerStatsMsg& msg);
Result<WorkerStatsMsg> DecodeWorkerStats(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeFinalState(const FinalStateMsg& msg);
Result<FinalStateMsg> DecodeFinalState(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeFinalVirtual(const FinalVirtualMsg& msg);
Result<FinalVirtualMsg> DecodeFinalVirtual(const std::vector<uint8_t>& payload);

}  // namespace net
}  // namespace surfer

#endif  // SURFER_NET_CONTROL_H_
