#ifndef SURFER_NET_TRANSPORT_H_
#define SURFER_NET_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "net/control.h"
#include "net/frame.h"
#include "net/socket.h"
#include "runtime/wire_batch.h"

namespace surfer {
namespace net {

/// The two halves of the NTP-style clock-offset session run on every mesh
/// link during the rendezvous. The client sends `pings` kPing frames; the
/// server answers each with a kPong echoing the ping's send/recv stamps
/// (t1, t2); the pong's own header stamp and receive time supply t3 and t4.
/// The client keeps the minimum-round-trip sample — per NTP, the one least
/// contaminated by queueing — computes
///   offset = ((t2 - t1) + (t3 - t4)) / 2,  uncertainty = round_trip / 2,
/// and closes the session with kClockOffset so both ends agree. Both return
/// the offset as (peer clock - local clock); the server negates the client's
/// estimate. Exposed as free functions so a fork-free test can drive both
/// halves over a socketpair.
Result<ClockOffsetMsg> RunClockSyncClient(Socket& sock, uint32_t pings);
Result<ClockOffsetMsg> RunClockSyncServer(Socket& sock);

/// Installs the worker-process signal disposition: a SIGTERM handler that
/// only sets a flag (no SA_RESTART, so a blocking control read returns
/// EINTR and the worker can flush and exit gracefully), and SIGPIPE ignored.
/// Called by every worker right after fork, before any socket traffic.
void InstallWorkerSignalHandlers();

/// The flag InstallWorkerSignalHandlers' SIGTERM handler sets. Passed as the
/// `interrupt` argument of blocking control-plane reads.
const std::atomic<bool>* SigtermFlag();

/// A worker process's view of the cluster: one AF_UNIX control socket to the
/// coordinator plus a full mesh of TCP connections to every other worker.
///
/// Threading model: the worker's main thread is the *sole writer* on every
/// socket (except kDataAck frames, which the receiving thread of a peer link
/// writes back under that link's write mutex) and the sole consumer of the
/// mailbox. One receiver thread per inbound mesh link reads frames as fast
/// as they arrive and pushes the decoded batches/updates into the unbounded
/// mailbox — receivers never block on the main thread, which is what makes
/// the round protocol deadlock-free (a peer can always complete its sends).
/// Receiver threads run with SIGTERM blocked; only the main thread takes the
/// interrupt.
class WorkerTransport {
 public:
  WorkerTransport(uint32_t proc, Socket control);

  WorkerTransport(const WorkerTransport&) = delete;
  WorkerTransport& operator=(const WorkerTransport&) = delete;

  /// Runs the worker side of the setup protocol: binds an ephemeral mesh
  /// listener, sends kHello{proc, port}, reads kPeers and kPlacement,
  /// builds the mesh (dial every lower-index peer, accept every higher one),
  /// spawns the receiver threads, and reports kReady. On success
  /// `placement_out` holds the decoded placement and the transport knows the
  /// process count and whether data frames are acknowledged
  /// (placement.fault_tolerant).
  Status Handshake(PlacementMsg* placement_out);

  // ----------------------------------------------------------- control plane

  /// Blocking read of the next coordinator frame; returns kUnavailable when
  /// a SIGTERM interrupted the read or the coordinator closed the socket.
  Result<Frame> ReadControl();

  /// Installs a callback invoked from ReadControl's poll loop every time the
  /// 100 ms poll times out with no control traffic. The worker uses it to
  /// tick its heartbeat clock while idle between rounds; it runs on the main
  /// thread, which is the sole writer on the control socket.
  void SetIdleTick(std::function<void()> tick) { idle_tick_ = std::move(tick); }

  Status SendControl(FrameType type, const std::vector<uint8_t>& payload);
  Status SendControl(FrameType type);

  // -------------------------------------------------------------- data mesh

  /// Sends one frame to a peer process. A send to a peer already marked dead
  /// is silently dropped (its partitions are being recovered; the traffic is
  /// moot), and a send that fails because the peer just died marks it dead
  /// and also reports success — peer death is surfaced through liveness, not
  /// through send errors.
  Status SendPeer(uint32_t peer, FrameType type,
                  const std::vector<uint8_t>& payload);

  /// Sends kEos{seq} to every live peer: "I will send no more data frames
  /// for round seq".
  Status BroadcastEos(uint32_t seq);

  // ----------------------------------------------------------------- mailbox

  /// Pops the next decoded wire batch, FIFO across its source link.
  bool TryPopData(runtime::WireBatch* out);

  /// Pops the next decoded state-replication update.
  bool TryPopUpdate(StateUpdateMsg* out);

  /// True when every peer is dead or has sent kEos for a round >= seq. Once
  /// true, every data frame of the round is already in the mailbox: a link
  /// is FIFO and its receiver pushes each data frame before it records the
  /// trailing kEos.
  bool RoundDrained(uint32_t seq);

  /// Blocks (bounded) until mailbox/ack/liveness state may have changed.
  void WaitActivity();

  /// Blocks until every kData/kStateUpdate frame this process sent has been
  /// acknowledged by its peer's receiver thread (or the peer died). No-op
  /// when the run is not fault-tolerant (no acks flow). The guarantee a
  /// dying process needs before closing its sockets: all of its output is in
  /// peer user space, beyond the reach of a close-triggered RST.
  Status WaitDataAcked();

  // ------------------------------------------------------------- accounting

  uint32_t proc() const { return proc_; }
  uint32_t num_procs() const { return num_procs_; }

  /// Bytes actually written to mesh sockets (frame headers included).
  uint64_t tcp_bytes_sent() const;
  /// Mesh frames written (data, state updates, EOS, acks).
  uint64_t tcp_frames_sent() const;
  /// Approximate mailbox depth (telemetry gauge).
  uint64_t ApproxMailboxDepth();
  /// Payload bytes pushed into the mailbox but not yet popped by the main
  /// thread (telemetry gauge: inbound queueing pressure).
  uint64_t InflightBytes();
  /// Raw (uncorrected) one-way latency of the most recent / worst inbound
  /// data frame, from its header stamps (telemetry gauges).
  uint64_t LastRecvLatencyUs() const {
    return last_recv_latency_us_.load(std::memory_order_relaxed);
  }
  uint64_t MaxRecvLatencyUs() const {
    return max_recv_latency_us_.load(std::memory_order_relaxed);
  }

  /// Moves out the per-(round, link) latency records the receiver threads
  /// flushed at each kEos. `iteration`/`kind` are zero; the worker patches
  /// them from its own seq -> round map.
  std::vector<RoundLinkStat> DrainLinkStats();

  /// Clock-offset table from the handshake ping exchange, indexed by
  /// process ([self] == 0 and == proc()). Empty vectors before Handshake.
  bool clock_synced() const { return clock_synced_; }
  std::vector<int64_t> ClockOffsets() const;
  std::vector<uint64_t> ClockUncertainties() const;

  /// Shuts down every socket (forces FIN). Called immediately before _exit;
  /// receiver threads are reaped by process exit, never joined.
  void CloseAll();

 private:
  /// The receiver thread's accumulator for the current round's inbound
  /// frames on one link; flushed into a RoundLinkStat by the trailing kEos.
  struct LinkWindow {
    uint32_t frames = 0;
    uint64_t bytes = 0;
    int64_t latency_sum_us = 0;
    int64_t latency_max_us = 0;
    uint64_t first_send_us = 0;
    uint64_t last_recv_us = 0;
  };

  struct Peer {
    Socket sock;
    std::thread receiver;
    std::mutex write_mu;    ///< main-thread sends vs. receiver-thread acks
    bool dead = false;      ///< guarded by mu_
    uint32_t eos_seq = 0;   ///< highest kEos seq seen; guarded by mu_
    uint64_t acked = 0;     ///< acks received; guarded by mu_
    uint64_t sent_acked = 0;  ///< ack-eligible frames sent; guarded by mu_
    std::atomic<uint64_t> frames_sent{0};
    LinkWindow window;      ///< guarded by mu_
    /// Handshake clock-sync result: peer clock minus local clock. Written
    /// single-threaded during Handshake, read-only afterwards.
    int64_t clock_offset_us = 0;
    uint64_t clock_uncertainty_us = 0;
  };

  void ReceiverLoop(uint32_t peer_index);
  void MarkDead(uint32_t peer_index);

  const uint32_t proc_;
  uint32_t num_procs_ = 1;
  bool ack_data_ = false;
  bool clock_synced_ = false;
  Socket control_;
  Listener listener_;
  std::vector<std::unique_ptr<Peer>> peers_;  ///< index = process; self unused
  std::function<void()> idle_tick_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<runtime::WireBatch> data_;
  std::deque<StateUpdateMsg> updates_;
  uint64_t inflight_bytes_ = 0;               ///< guarded by mu_
  std::vector<RoundLinkStat> link_stats_;     ///< guarded by mu_
  std::atomic<uint64_t> last_recv_latency_us_{0};
  std::atomic<uint64_t> max_recv_latency_us_{0};
};

}  // namespace net
}  // namespace surfer

#endif  // SURFER_NET_TRANSPORT_H_
