#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <thread>
#include <unistd.h>

#include "common/status.h"

namespace surfer {
namespace net {

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Socket::ReadFull(void* buf, size_t len,
                        const std::atomic<bool>* interrupt) {
  if (fd_ < 0) return Status::FailedPrecondition("read on closed socket");
  uint8_t* out = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::recv(fd_, out + done, len - done, 0);
    if (n > 0) {
      done += static_cast<size_t>(n);
      bytes_read_ += static_cast<uint64_t>(n);
      continue;
    }
    if (n == 0) {
      // Peer closed. At a message boundary that is an orderly shutdown; in
      // the middle of a requested range it is a torn message.
      if (done == 0) return Status::Unavailable("connection closed by peer");
      return Status::Corruption("unexpected EOF after " +
                                std::to_string(done) + " of " +
                                std::to_string(len) + " bytes");
    }
    if (errno == EINTR) {
      if (interrupt != nullptr &&
          interrupt->load(std::memory_order_relaxed)) {
        return Status::Unavailable("read interrupted by signal");
      }
      continue;
    }
    if (errno == ECONNRESET) {
      if (done == 0) return Status::Unavailable("connection reset by peer");
      return Status::Corruption("connection reset after " +
                                std::to_string(done) + " of " +
                                std::to_string(len) + " bytes");
    }
    return Status::IOError(std::string("recv: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status Socket::WriteFull(const void* buf, size_t len) {
  if (fd_ < 0) return Status::FailedPrecondition("write on closed socket");
  const uint8_t* in = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::send(fd_, in + done, len - done, MSG_NOSIGNAL);
    if (n >= 0) {
      done += static_cast<size_t>(n);
      bytes_written_ += static_cast<uint64_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EPIPE || errno == ECONNRESET) {
      return Status::Unavailable("peer closed during write");
    }
    return Status::IOError(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

Result<std::pair<Socket, Socket>> Socket::Pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::IOError(std::string("socketpair: ") +
                           std::strerror(errno));
  }
  return std::make_pair(Socket(fds[0]), Socket(fds[1]));
}

Result<Listener> Listener::Bind(uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  Socket sock(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(fd, backlog) != 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  Listener listener;
  listener.sock_ = std::move(sock);
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<Socket> Listener::Accept() {
  if (!sock_.valid()) {
    return Status::FailedPrecondition("accept on closed listener");
  }
  for (;;) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Status::IOError(std::string("accept: ") + std::strerror(errno));
  }
}

Result<Socket> ConnectLocal(uint16_t port, double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::IOError(std::string("socket: ") + std::strerror(errno));
    }
    Socket sock(fd);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return sock;
    }
    if (errno != ECONNREFUSED ||
        std::chrono::steady_clock::now() >= deadline) {
      return Status::IOError(std::string("connect 127.0.0.1:") +
                             std::to_string(port) + ": " +
                             std::strerror(errno));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace net
}  // namespace surfer
